// Integration tests: several autonomy loops running concurrently on one
// simulated system — the composition the paper's vision requires. The
// individual per-case tests live with their packages; here we verify that
// the loops do not fight each other and that the shared substrate (one
// engine, one TSDB, one scheduler, one filesystem) serves all of them.
package autoloop_test

import (
	"fmt"
	"testing"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/cases/maintcase"
	"autoloop/internal/cases/misconfcase"
	"autoloop/internal/cases/ostcase"
	"autoloop/internal/cases/powercase"
	"autoloop/internal/cases/schedcase"
	"autoloop/internal/core"
	"autoloop/internal/facility"
	"autoloop/internal/hw"
	"autoloop/internal/knowledge"
	"autoloop/internal/pfs"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

// world assembles the full substrate shared by every loop.
type world struct {
	engine    *sim.Engine
	db        *tsdb.DB
	cl        *hw.Cluster
	plant     *facility.Plant
	fs        *pfs.FS
	scheduler *sched.Scheduler
	runtime   *app.Runtime
	kb        *knowledge.Base
}

func newWorld(t *testing.T, seed int64) *world {
	t.Helper()
	engine := sim.NewEngine(seed)
	db := tsdb.New(0)
	ccfg := hw.DefaultConfig()
	ccfg.Nodes = 16
	ccfg.SensorNoise = 0.01
	cl := hw.New(engine, ccfg)
	plant := facility.New(engine, facility.DefaultConfig(), cl)
	plant.BindAmbient(cl)
	fs := pfs.New(engine, pfs.Config{OSTs: 8, OSTBandwidthMBps: 300, DefaultStripeCount: 4})
	scheduler := sched.New(engine, cl.UpNodes(),
		sched.ExtensionPolicy{MaxPerJob: 3, MaxTotalPerJob: 6 * time.Hour, BackfillGuard: true})
	runtime := app.NewRuntime(engine, db, fs, cl)
	runtime.OnComplete = func(inst *app.Instance) { scheduler.JobFinished(inst.Job.ID) }
	scheduler.SetHooks(runtime.Start, runtime.Kill)

	reg := telemetry.NewRegistry()
	reg.Register(cl.Collector())
	reg.Register(plant.Collector())
	reg.Register(fs.Collector())
	reg.Register(scheduler.Collector())
	pipe := telemetry.NewPipeline(reg, db)
	engine.Every(30*time.Second, 30*time.Second, func() bool {
		pipe.Sample(engine.Now())
		return engine.Now() < 24*time.Hour
	})
	return &world{
		engine: engine, db: db, cl: cl, plant: plant, fs: fs,
		scheduler: scheduler, runtime: runtime, kb: knowledge.NewBase(),
	}
}

// TestFourLoopsCoexist runs the Scheduler, OST, Misconfiguration, and Power
// loops simultaneously against one system carrying a mixed workload with an
// underestimated job, a degraded OST, and a misconfigured job — every loop
// must respond to its own symptom without breaking the others.
func TestFourLoopsCoexist(t *testing.T) {
	w := newWorld(t, 3)
	horizon := 8 * time.Hour
	stop := func() bool { return w.engine.Now() >= horizon }
	clock := sim.VirtualClock{Engine: w.engine}

	schedCtl := schedcase.New(schedcase.DefaultConfig(), w.db, w.scheduler, w.runtime, w.kb, clock)
	schedLoop := schedCtl.Loop()
	schedLoop.Audit = core.NewAuditLog(4096)
	schedLoop.RunEvery(clock, 5*time.Minute, stop)

	ostCtl := ostcase.New(ostcase.DefaultConfig(), w.db, w.scheduler, w.runtime)
	ostCtl.Loop().RunEvery(clock, time.Minute, stop)

	misCtl := misconfcase.New(misconfcase.DefaultConfig(), w.db, w.scheduler, w.runtime, w.cl)
	misCtl.Loop().RunEvery(clock, time.Minute, stop)

	powCtl := powercase.New(powercase.DefaultConfig(), w.db, w.plant)
	powCtl.Loop().RunEvery(clock, 10*time.Minute, stop)

	// Workload: an underestimated job (Scheduler loop's problem), an
	// I/O-heavy writer (OST loop's problem once an OST degrades), a
	// misconfigured job (Misconfiguration loop's problem), and background
	// compute load (the Power loop optimizes around it).
	w.runtime.RegisterSpec("under", app.Spec{
		Name: "under", TotalIters: 120, IterTime: sim.Constant{V: time.Minute},
	})
	underJob, err := w.scheduler.Submit("under", "alice", 2, time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.runtime.RegisterSpec("writer", app.Spec{
		Name: "writer", TotalIters: 400, IterTime: sim.Constant{V: 20 * time.Second},
		IOEvery: 3, IOSizeMB: 600, StripeCount: 8,
	})
	writerJob, err := w.scheduler.Submit("writer", "bob", 2, 12*time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.runtime.RegisterSpec("storm", app.Spec{
		Name: "storm", TotalIters: 300, IterTime: sim.Constant{V: time.Minute},
		Misconfig: app.MisconfigThreads,
	})
	stormJob, err := w.scheduler.Submit("storm", "carol", 1, 12*time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("bg%d", i)
		w.runtime.RegisterSpec(name, app.Spec{
			Name: name, TotalIters: 600, IterTime: sim.LogNormal{MeanV: time.Minute, CV: 0.1},
		})
		if _, err := w.scheduler.Submit(name, "ops", 2, 12*time.Hour, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Degrade an OST one hour in.
	w.engine.At(time.Hour, func() { _ = w.fs.SetOSTHealth(2, 0.05) })

	// Resolve terminal jobs for the scheduler loop's Assess step.
	handled := map[int]bool{}
	w.engine.Every(time.Minute, time.Minute, func() bool {
		for _, j := range w.scheduler.Jobs() {
			if !handled[j.ID] && (j.State == sched.JobCompleted || j.State == sched.JobKilledWalltime) {
				handled[j.ID] = true
				schedCtl.NoteJobEnd(j)
			}
		}
		return w.engine.Now() < horizon
	})

	w.engine.RunUntil(horizon)

	// 1. The underestimated job must complete via extension.
	if underJob.State != sched.JobCompleted {
		t.Errorf("underestimated job state = %v, want completed", underJob.State)
	}
	if underJob.Extensions == 0 {
		t.Error("underestimated job completed without extension?")
	}
	// 2. The writer must have been steered off the degraded OST.
	if ostCtl.Responses == 0 {
		t.Error("OST loop never responded to the degraded OST")
	}
	if inst, ok := w.runtime.Instance(writerJob.ID); ok && inst.File() != nil {
		for _, o := range inst.File().OSTs() {
			if o == 2 {
				t.Error("writer still striped over degraded OST 2")
			}
		}
	}
	// 3. The misconfigured job must be detected and fixed.
	if kind, ok := misCtl.Flagged(stormJob.ID); !ok || kind != app.MisconfigThreads {
		t.Errorf("misconfig flag = %v, %v", kind, ok)
	}
	if misCtl.Fixes == 0 {
		t.Error("misconfiguration never fixed")
	}
	// 4. The power loop must have acted without breaching the limit.
	if powCtl.Raises == 0 {
		t.Error("power loop never optimized")
	}
	for _, p := range w.db.Latest("node.temp.celsius", nil) {
		if p.Value > powercase.DefaultConfig().TempLimitC {
			t.Errorf("node %s at %.1f°C exceeds limit", p.Labels["node"], p.Value)
		}
	}
	// 5. No loop starved another: the audit trail shows scheduler activity,
	// and the shared TSDB served every loop.
	if len(schedLoop.Audit.Filter("", "execute")) == 0 {
		t.Error("scheduler loop executed nothing")
	}
	if w.db.NumSeries() < 50 {
		t.Errorf("suspiciously few series: %d", w.db.NumSeries())
	}
}

// TestMaintenanceAndSchedulerLoopsCompose runs the Maintenance loop next to
// the Scheduler loop: a job that is both underestimated AND headed into a
// maintenance window must survive both hazards.
func TestMaintenanceAndSchedulerLoopsCompose(t *testing.T) {
	w := newWorld(t, 5)
	horizon := 16 * time.Hour
	stop := func() bool { return w.engine.Now() >= horizon }
	clock := sim.VirtualClock{Engine: w.engine}

	schedCtl := schedcase.New(schedcase.DefaultConfig(), w.db, w.scheduler, w.runtime, w.kb, clock)
	schedCtl.Loop().RunEvery(clock, 5*time.Minute, stop)
	maintCtl := maintcase.New(maintcase.DefaultConfig(), w.db, w.scheduler, w.runtime)
	maintCtl.Loop().RunEvery(clock, 5*time.Minute, stop)

	// 5h of real work, 3h requested, maintenance announced at t=1h for 4..6h.
	w.runtime.RegisterSpec("both", app.Spec{
		Name: "both", TotalIters: 300, IterTime: sim.Constant{V: time.Minute},
		CheckpointCost: 2 * time.Minute,
	})
	job, err := w.scheduler.Submit("both", "dave", 2, 3*time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.engine.At(time.Hour, func() {
		if err := w.scheduler.AddMaintenance(4*time.Hour, 6*time.Hour); err != nil {
			t.Error(err)
		}
	})
	handled := map[int]bool{}
	w.engine.Every(time.Minute, time.Minute, func() bool {
		for _, j := range w.scheduler.Jobs() {
			if !handled[j.ID] && (j.State == sched.JobCompleted || j.State == sched.JobKilledWalltime || j.State == sched.JobKilledMaint) {
				handled[j.ID] = true
				schedCtl.NoteJobEnd(j)
			}
		}
		return w.engine.Now() < horizon
	})
	w.engine.RunUntil(horizon)

	if job.State != sched.JobCompleted {
		t.Fatalf("job state = %v (requeues=%d ext=%d), want completed", job.State, job.Requeues, job.Extensions)
	}
	if job.Requeues == 0 {
		t.Error("job was never checkpoint-requeued for maintenance")
	}
	inst, _ := w.runtime.Instance(job.ID)
	if inst.Iter() != 300 {
		t.Errorf("iterations = %d, want 300 (work preserved across maintenance)", inst.Iter())
	}
	if maintCtl.Preserved == 0 {
		t.Error("maintenance loop preserved nothing")
	}
}

// TestDeterministicIntegration verifies the whole multi-loop world is
// reproducible: same seed, same history.
func TestDeterministicIntegration(t *testing.T) {
	run := func() (time.Duration, int, uint64) {
		w := newWorld(t, 11)
		clock := sim.VirtualClock{Engine: w.engine}
		stop := func() bool { return w.engine.Now() >= 4*time.Hour }
		schedCtl := schedcase.New(schedcase.DefaultConfig(), w.db, w.scheduler, w.runtime, w.kb, clock)
		schedCtl.Loop().RunEvery(clock, 5*time.Minute, stop)
		w.runtime.RegisterSpec("u", app.Spec{
			Name: "u", TotalIters: 90, IterTime: sim.LogNormal{MeanV: time.Minute, CV: 0.3},
		})
		j, err := w.scheduler.Submit("u", "x", 1, time.Hour, 0)
		if err != nil {
			t.Fatal(err)
		}
		w.engine.RunUntil(4 * time.Hour)
		return j.End, j.Extensions, w.db.Appended()
	}
	end1, ext1, n1 := run()
	end2, ext2, n2 := run()
	if end1 != end2 || ext1 != ext2 || n1 != n2 {
		t.Errorf("runs diverged: (%v,%d,%d) vs (%v,%d,%d)", end1, ext1, n1, end2, ext2, n2)
	}
}
