// Package autoloop is a reproduction of "Autonomy Loops for Monitoring,
// Operational Data Analytics, Feedback, and Response in HPC Operations"
// (IEEE CLUSTER 2023, arXiv:2401.16971): a framework for MAPE-K autonomy
// loops over holistic HPC telemetry, together with the complete simulated
// substrate needed to exercise them — cluster hardware, facility cooling, a
// SLURM-like batch scheduler, a Lustre-like parallel filesystem, and
// instrumented applications.
//
// The paper's five use cases (Scheduler walltime extension, Maintenance,
// I/O QoS, OST avoidance, Misconfiguration) are implemented end to end in
// internal/cases, the four Fig. 2 decentralization patterns in
// internal/core, and one experiment per figure/claim in
// internal/experiments (run them with cmd/modaloop, or via the benchmarks
// in bench_test.go).
//
// This facade re-exports the core MAPE-K vocabulary so that the README's
// snippets read from one import; the full surface lives in the internal
// packages, wired as shown in examples/.
package autoloop

import (
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/cases"
	"autoloop/internal/chaos"
	"autoloop/internal/control"
	"autoloop/internal/core"
	"autoloop/internal/experiments"
	"autoloop/internal/fleet"
	"autoloop/internal/gateway"
	"autoloop/internal/knowledge"
	"autoloop/internal/scenario"
	"autoloop/internal/sim"
	"autoloop/internal/wal"
)

// Version identifies the reproduction release.
const Version = "1.0.0"

// Core MAPE-K vocabulary (see internal/core for documentation).
type (
	// Loop is one MAPE-K autonomy loop.
	Loop = core.Loop
	// Monitor collects observations from the managed system.
	Monitor = core.Monitor
	// Analyzer turns observations into symptoms.
	Analyzer = core.Analyzer
	// Planner turns symptoms into actions.
	Planner = core.Planner
	// Executor applies actions to the managed system.
	Executor = core.Executor
	// Knowledge is the shared K of MAPE-K.
	Knowledge = knowledge.Base
	// Engine is the deterministic discrete-event simulator.
	Engine = sim.Engine
	// Result is one experiment's reproduced table.
	Result = experiments.Result
)

// Control-plane vocabulary (see internal/control and internal/fleet): loops
// are declared as specs, spawned through a registry, ticked by a fleet
// coordinator, and managed at runtime over the control.v1 wire API.
type (
	// LoopSpec declares one loop deployment (case, config, mode,
	// priority, period) in JSON-decodable form.
	LoopSpec = control.LoopSpec
	// Registry maps case names to spawnable factories.
	Registry = control.Registry
	// ControlEnv is the deployment environment specs are spawned into.
	ControlEnv = control.Env
	// ControlService serves the control.v1 wire API and the operator
	// approval queue.
	ControlService = control.Service
	// Coordinator ticks a fleet of loops concurrently with cross-loop
	// conflict arbitration.
	Coordinator = fleet.Coordinator
	// Mode selects how much autonomy a loop has over its Execute phase.
	Mode = core.Mode
	// LifecycleState is a loop's runtime state under the control plane.
	LifecycleState = core.LifecycleState
	// HumanModel models the simulated approver for human-in-the-loop mode.
	HumanModel = core.HumanModel
)

// Durability vocabulary (see internal/wal): stateful layers journal through
// a segmented write-ahead log and checkpoint via atomic snapshots, giving
// the daemon crash recovery (cmd/modad -wal-dir).
type (
	// WAL is the append-only segmented write-ahead log.
	WAL = wal.WAL
	// WALOptions tunes sync policy, group-commit interval, and segment size.
	WALOptions = wal.Options
	// SyncPolicy selects when appends reach stable storage.
	SyncPolicy = wal.SyncPolicy
	// WALRecord is one replayed log record.
	WALRecord = wal.Record
	// CorruptError is the typed error surfaced for damaged log data.
	CorruptError = wal.CorruptError
	// ControlSnapshot is the control plane's serialized state.
	ControlSnapshot = control.ServiceSnap
)

// WAL sync policies and record-kind namespace.
const (
	SyncBatch  = wal.SyncBatch
	SyncAlways = wal.SyncAlways
	SyncNone   = wal.SyncNone

	KindTSDBAppend  = wal.KindTSDBAppend
	KindBusEnvelope = wal.KindBusEnvelope
	KindKnowledgeOp = wal.KindKnowledgeOp
)

// OpenWAL opens (or creates) a write-ahead log in dir, repairing any torn
// tail left by a crash.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) { return wal.Open(dir, opts) }

// ParseSyncPolicy parses "batch", "always", or "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// WriteSnapshot atomically writes a named, CRC-guarded snapshot covering the
// WAL up to seq; LatestSnapshot returns the newest valid one.
func WriteSnapshot(dir, name string, seq uint64, payload []byte) error {
	return wal.WriteSnapshot(dir, name, seq, payload)
}

// LatestSnapshot returns the newest valid snapshot payload for name and the
// WAL sequence it covers; ok is false when none exists.
func LatestSnapshot(dir, name string) (payload []byte, seq uint64, ok bool, err error) {
	return wal.LatestSnapshot(dir, name)
}

// HTTP serving vocabulary (see internal/gateway): the /v1 query, control,
// and SSE streaming surface served by cmd/modad -http.
type (
	// Gateway serves /v1/query, /v1/control/<op>, /v1/stream (SSE),
	// /healthz, and /metrics over plain net/http.
	Gateway = gateway.Gateway
	// GatewayOptions wires the gateway to its subsystems and bearer tokens.
	GatewayOptions = gateway.Options
	// GatewayStats is a snapshot of the gateway's own counters.
	GatewayStats = gateway.Stats
	// StreamHub fans bus envelopes out to SSE subscribers with bounded
	// per-client outboxes.
	StreamHub = gateway.Hub
	// Role is an authenticated HTTP caller's capability level.
	Role = gateway.Role
)

// HTTP gateway roles.
const (
	RoleNone     = gateway.RoleNone
	RoleRead     = gateway.RoleRead
	RoleOperator = gateway.RoleOperator
)

// NewGateway builds an HTTP gateway over the given subsystems; serve it
// with Gateway.Serve or mount Gateway.Handler on an existing server.
func NewGateway(opts GatewayOptions) *Gateway { return gateway.New(opts) }

// Operating modes (§IV).
const (
	Autonomous     = core.Autonomous
	HumanOnTheLoop = core.HumanOnTheLoop
	HumanInTheLoop = core.HumanInTheLoop
)

// Lifecycle states (created → running ⇄ paused, → draining → stopped).
const (
	StateCreated  = core.StateCreated
	StateRunning  = core.StateRunning
	StatePaused   = core.StatePaused
	StateDraining = core.StateDraining
	StateStopped  = core.StateStopped
)

// NewLoop constructs a named loop from the four MAPE phases.
func NewLoop(name string, m Monitor, a Analyzer, p Planner, e Executor) *Loop {
	return core.NewLoop(name, m, a, p, e)
}

// NewEngine returns a seeded simulation engine.
func NewEngine(seed int64) *Engine { return sim.NewEngine(seed) }

// NewKnowledge returns an empty knowledge base.
func NewKnowledge() *Knowledge { return knowledge.NewBase() }

// NewRegistry returns a control registry with all six use cases registered.
func NewRegistry() *Registry { return cases.NewRegistry() }

// NewCoordinator returns a fleet coordinator; workers <= 0 selects
// GOMAXPROCS.
func NewCoordinator(workers int) *Coordinator { return fleet.New(workers) }

// NewControlService builds the runtime control plane over a registry, an
// environment, and a coordinator; base is the control round cadence.
func NewControlService(reg *Registry, env *ControlEnv, coord *Coordinator, base time.Duration) *ControlService {
	return control.NewService(reg, env, coord, base)
}

// ParseSpecs decodes a JSON array of LoopSpecs (a spec file).
func ParseSpecs(data []byte) ([]LoopSpec, error) { return control.ParseSpecs(data) }

// RunExperiment executes one of the paper-reproduction experiments
// (e.g. "EXP-F3"); see ExperimentIDs for the index.
func RunExperiment(id string, seed int64, quick bool) (*Result, error) {
	return experiments.Run(id, experiments.Options{Seed: seed, Quick: quick})
}

// ExperimentIDs lists every reproduced figure/claim experiment.
func ExperimentIDs() []string { return experiments.IDs() }

// Resilience vocabulary (see internal/chaos, internal/bus, internal/wal):
// deterministic fault injection for tests, and the production hardening it
// exercises — jittered redial backoff behind a circuit breaker, and typed
// retryable-vs-fatal storage faults.
type (
	// Backoff is a capped exponential redial schedule with full jitter.
	Backoff = chaos.Backoff
	// Breaker is a consecutive-failure circuit breaker with a half-open
	// probe after its cooldown.
	Breaker = chaos.Breaker
	// FaultInjector makes seeded per-frame fault decisions (drop, dup,
	// reorder, partition, reset, latency) for chaos conns and proxies.
	FaultInjector = chaos.Injector
	// Faults declares a network fault schedule for a FaultInjector.
	Faults = chaos.Faults
	// ChaosProxy is a frame-aware TCP relay that applies injected faults
	// between a dialer and its target.
	ChaosProxy = chaos.Proxy
	// Reconnector maintains a bridged bus client across link failures
	// under Backoff + Breaker.
	Reconnector = bus.Reconnector
	// ReconnectOptions tunes a Reconnector.
	ReconnectOptions = bus.ReconnectOptions
	// WALFaultError is the typed storage fault the WAL surfaces, carrying
	// the failed op and whether a retry can succeed.
	WALFaultError = wal.FaultError
	// WALFS is the filesystem seam the WAL writes through — swap in
	// chaos.NewFS to inject storage faults deterministically.
	WALFS = wal.FS
)

// NewBackoff returns a full-jitter backoff schedule; base/cap <= 0 select
// the defaults (50ms / 15s).
func NewBackoff(base, cap time.Duration, seed int64) *Backoff {
	return chaos.NewBackoff(base, cap, seed)
}

// NewFaultInjector returns a deterministic, seeded fault injector (disarmed
// until Arm is called with a fault schedule).
func NewFaultInjector(seed int64) *FaultInjector { return chaos.NewInjector(seed) }

// NewChaosProxy relays framed traffic from listenAddr to target through
// inj's fault schedule.
func NewChaosProxy(listenAddr, target string, inj *FaultInjector) (*ChaosProxy, error) {
	return chaos.NewProxy(listenAddr, target, inj)
}

// NewReconnector dials a bus bridge and keeps it alive across failures.
func NewReconnector(addr, exportPattern string, b *bus.Bus, opts ReconnectOptions) (*Reconnector, error) {
	return bus.NewReconnector(addr, exportPattern, b, opts)
}

// WALRetryable reports whether a WAL append error is transient backpressure
// (shed and retry later) as opposed to a fatal storage fault (halt).
func WALRetryable(err error) bool { return wal.Retryable(err) }

// Scenario-engine vocabulary (see internal/scenario): declarative chaos
// scenarios — a JSON document composes a synthetic facility, workload mix,
// loop fleet, and seeded fault-injection schedule; running one scores
// detection, MTTR, false-positive rate, and action efficiency against the
// ground-truth schedule.
type (
	// Scenario is one decoded scenario document.
	Scenario = scenario.Spec
	// ScenarioError is the typed decode/validation error naming the
	// offending field.
	ScenarioError = scenario.SpecError
	// ScenarioRuntime is one assembled scenario stack, armed but not run.
	ScenarioRuntime = scenario.Runtime
	// ScenarioReport is a run's deterministic scorecard.
	ScenarioReport = scenario.Report
	// ScenarioLoop is one fleet member plus its scoring attribution.
	ScenarioLoop = scenario.Loop
)

// DecodeScenario parses and validates a scenario document; errors are
// always *ScenarioError and decoding never panics.
func DecodeScenario(data []byte) (*Scenario, error) { return scenario.Decode(data) }

// RunScenario assembles the scenario's full stack against reg and runs it
// to the horizon, returning the scorecard.
func RunScenario(spec *Scenario, reg *Registry) (*ScenarioReport, error) {
	return scenario.Run(spec, reg)
}

// ScenarioPresets: Small is the quick-check shape, Midsize the
// chaos-diverse CI scenario, Stress10k the 10k-node scale gate.
func ScenarioSmall(seed int64) *Scenario   { return scenario.Small(seed) }
func ScenarioMidsize(seed int64) *Scenario { return scenario.Midsize(seed) }
func ScenarioStress(seed int64) *Scenario  { return scenario.Stress10k(seed) }

// ScenarioInjectors lists the fault-injector library's kinds.
func ScenarioInjectors() []string { return scenario.InjectorKinds() }

// ScenarioTemplates returns each built-in case's scenario fleet entry.
func ScenarioTemplates() []ScenarioLoop { return cases.ScenarioTemplates() }
