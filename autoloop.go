// Package autoloop is a reproduction of "Autonomy Loops for Monitoring,
// Operational Data Analytics, Feedback, and Response in HPC Operations"
// (IEEE CLUSTER 2023, arXiv:2401.16971): a framework for MAPE-K autonomy
// loops over holistic HPC telemetry, together with the complete simulated
// substrate needed to exercise them — cluster hardware, facility cooling, a
// SLURM-like batch scheduler, a Lustre-like parallel filesystem, and
// instrumented applications.
//
// The paper's five use cases (Scheduler walltime extension, Maintenance,
// I/O QoS, OST avoidance, Misconfiguration) are implemented end to end in
// internal/cases, the four Fig. 2 decentralization patterns in
// internal/core, and one experiment per figure/claim in
// internal/experiments (run them with cmd/modaloop, or via the benchmarks
// in bench_test.go).
//
// This facade re-exports the core MAPE-K vocabulary so that the README's
// snippets read from one import; the full surface lives in the internal
// packages, wired as shown in examples/.
package autoloop

import (
	"autoloop/internal/core"
	"autoloop/internal/experiments"
	"autoloop/internal/knowledge"
	"autoloop/internal/sim"
)

// Version identifies the reproduction release.
const Version = "1.0.0"

// Core MAPE-K vocabulary (see internal/core for documentation).
type (
	// Loop is one MAPE-K autonomy loop.
	Loop = core.Loop
	// Monitor collects observations from the managed system.
	Monitor = core.Monitor
	// Analyzer turns observations into symptoms.
	Analyzer = core.Analyzer
	// Planner turns symptoms into actions.
	Planner = core.Planner
	// Executor applies actions to the managed system.
	Executor = core.Executor
	// Knowledge is the shared K of MAPE-K.
	Knowledge = knowledge.Base
	// Engine is the deterministic discrete-event simulator.
	Engine = sim.Engine
	// Result is one experiment's reproduced table.
	Result = experiments.Result
)

// NewLoop constructs a named loop from the four MAPE phases.
func NewLoop(name string, m Monitor, a Analyzer, p Planner, e Executor) *Loop {
	return core.NewLoop(name, m, a, p, e)
}

// NewEngine returns a seeded simulation engine.
func NewEngine(seed int64) *Engine { return sim.NewEngine(seed) }

// NewKnowledge returns an empty knowledge base.
func NewKnowledge() *Knowledge { return knowledge.NewBase() }

// RunExperiment executes one of the paper-reproduction experiments
// (e.g. "EXP-F3"); see ExperimentIDs for the index.
func RunExperiment(id string, seed int64, quick bool) (*Result, error) {
	return experiments.Run(id, experiments.Options{Seed: seed, Quick: quick})
}

// ExperimentIDs lists every reproduced figure/claim experiment.
func ExperimentIDs() []string { return experiments.IDs() }
