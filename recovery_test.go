// Crash-recovery integration test: a full deployment (bus + TSDB + knowledge
// base + control plane) journaling through one WAL is hard-stopped
// mid-segment — journal abandoned without Close and a torn half-frame
// smashed onto the live segment, exactly what kill -9 mid-write leaves
// behind — and then recovered into fresh components. The journaled layers
// (TSDB, knowledge) must come back byte-identical to a control run that was
// never killed; the snapshot-only control plane must come back exactly as
// of its last snapshot and re-derive the identical end state when driven
// through the missed rounds.
package autoloop_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/control"
	"autoloop/internal/core"
	"autoloop/internal/fleet"
	"autoloop/internal/knowledge"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
	"autoloop/internal/wal"
)

// recoveryCase is a capability-free control case: every tick plans one
// action, and executions are recorded so the test can observe liveness.
func recoveryCase(executed *[]core.Action) control.CaseFactory {
	return control.CaseFactory{
		Name:     "script",
		Doc:      "test: plans one action per tick",
		Defaults: func() interface{} { return &struct{}{} },
		Priority: 1,
		Build: func(env *control.Env, _ interface{}) ([]control.BuiltLoop, error) {
			l := core.NewLoop("script",
				core.MonitorFunc(func(now time.Duration) (core.Observation, error) {
					return core.Observation{Time: now}, nil
				}),
				core.AnalyzerFunc(func(now time.Duration, obs core.Observation) (core.Symptoms, error) {
					return core.Symptoms{Time: now, Findings: []core.Finding{{Kind: "f", Subject: "s1", Confidence: 1}}}, nil
				}),
				core.PlannerFunc(func(now time.Duration, sym core.Symptoms) (core.Plan, error) {
					return core.Plan{Time: now, Actions: []core.Action{{Kind: "act", Subject: "s1", Amount: 1, Confidence: 1}}}, nil
				}),
				core.ExecutorFunc(func(now time.Duration, a core.Action) (core.ActionResult, error) {
					*executed = append(*executed, a)
					return core.ActionResult{Action: a, Honored: true, Granted: a.Amount}, nil
				}),
			)
			return []control.BuiltLoop{{Loop: l}}, nil
		},
	}
}

// recoveryDeployment is the stateful slice of a daemon: everything modad
// journals and snapshots.
type recoveryDeployment struct {
	b        *bus.Bus
	db       *tsdb.DB
	kb       *knowledge.Base
	ctl      *control.Service
	executed []core.Action
}

func newRecoveryDeployment(t *testing.T) *recoveryDeployment {
	t.Helper()
	d := &recoveryDeployment{b: bus.New(), db: tsdb.New(time.Hour), kb: knowledge.NewBase()}
	if err := d.db.AddRollup(tsdb.RollupRule{
		Metric: "rig.temp", Step: time.Minute, Agg: tsdb.AggMean, Retention: 24 * time.Hour,
	}); err != nil {
		t.Fatalf("AddRollup: %v", err)
	}
	reg := control.NewRegistry()
	reg.MustRegister(recoveryCase(&d.executed))
	env := &control.Env{
		Knowledge: d.kb,
		Clock:     sim.VirtualClock{Engine: sim.NewEngine(1)},
		Rng:       rand.New(rand.NewSource(1)),
		Bus:       d.b,
	}
	d.ctl = control.NewService(reg, env, fleet.New(1), time.Minute).Attach(d.b, "test")
	t.Cleanup(d.ctl.Close)
	return d
}

// spawn deploys the fleet: one human-in-the-loop loop that accumulates
// pending approvals, one autonomous loop that executes.
func (d *recoveryDeployment) spawn(t *testing.T) {
	t.Helper()
	for _, spec := range []control.LoopSpec{
		{Case: "script", Name: "gatekeeper", Mode: "human-in-the-loop"},
		{Case: "script", Name: "sweeper"},
	} {
		if _, err := d.ctl.Spawn(spec); err != nil {
			t.Fatalf("spawn %s: %v", spec.Name, err)
		}
	}
}

// attach wires the deployment's journals to w, as modad does on startup.
func (d *recoveryDeployment) attach(w *wal.WAL) {
	d.db.Journal(w)
	d.kb.Journal(w)
	d.b.Journal(func(env bus.Envelope) {
		if line, err := bus.Encode(env); err == nil {
			w.Append(wal.KindBusEnvelope, line)
		}
	})
}

// step applies one deterministic workload beat: telemetry appends (batch and
// single), one of every knowledge mutation, and a control round.
func (d *recoveryDeployment) step(t *testing.T, i int) {
	t.Helper()
	at := time.Duration(i+1) * time.Minute
	node := fmt.Sprintf("n%02d", i%4)
	if err := d.db.AppendBatch([]telemetry.Point{
		{Name: "rig.temp", Labels: telemetry.Labels{"node": node}, Time: at, Value: 20 + float64(i)*0.25},
		{Name: "rig.load", Labels: telemetry.Labels{"node": node}, Time: at, Value: float64(i % 7)},
	}); err != nil {
		t.Fatalf("AppendBatch beat %d: %v", i, err)
	}
	if err := d.db.Append(telemetry.Point{Name: "rig.power", Time: at, Value: 400 + 3*float64(i)}); err != nil {
		t.Fatalf("Append beat %d: %v", i, err)
	}
	d.kb.AddRun(knowledge.RunRecord{
		App: "lmp", User: "ops", Nodes: 4 + i%3,
		Runtime: time.Duration(40+i) * time.Minute, Walltime: time.Hour,
		Completed: i%5 != 0, At: at,
	})
	idx := d.kb.RecordPlan(knowledge.PlanRecord{Loop: "script", Action: "act", At: at, Predicted: float64(10 + i)})
	if i%2 == 0 {
		if err := d.kb.ResolvePlan(idx, float64(9+i), true); err != nil {
			t.Fatalf("ResolvePlan beat %d: %v", i, err)
		}
	}
	d.kb.ResolveCorrection("lmp", 100, 100+float64(i))
	d.kb.SetFact("beat", float64(i))
	d.ctl.Tick(at)
}

// deploySnap mirrors modad's combined snapshot payload.
type deploySnap struct {
	Seq       uint64          `json:"seq"`
	TSDB      json.RawMessage `json:"tsdb"`
	Knowledge json.RawMessage `json:"knowledge"`
	Control   json.RawMessage `json:"control"`
}

// checkpoint writes one combined snapshot covering the whole log and
// compacts the superseded segments.
func checkpoint(t *testing.T, dir string, w *wal.WAL, d *recoveryDeployment) *deploySnap {
	t.Helper()
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	snap := &deploySnap{Seq: w.LastSeq()}
	var err error
	if snap.TSDB, err = d.db.Snapshot(); err != nil {
		t.Fatalf("tsdb snapshot: %v", err)
	}
	var kbuf bytes.Buffer
	if err := d.kb.Save(&kbuf); err != nil {
		t.Fatalf("kb save: %v", err)
	}
	snap.Knowledge = kbuf.Bytes()
	if snap.Control, err = d.ctl.Snapshot(); err != nil {
		t.Fatalf("ctl snapshot: %v", err)
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	if err := wal.WriteSnapshot(dir, "deploy", snap.Seq, payload); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if _, err := w.Compact(snap.Seq + 1); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	return snap
}

// dumpJournaled serializes the journaled layers (TSDB + knowledge) to
// deterministic bytes.
func dumpJournaled(t *testing.T, d *recoveryDeployment) string {
	t.Helper()
	ts, err := d.db.Snapshot()
	if err != nil {
		t.Fatalf("dump tsdb: %v", err)
	}
	var kbuf bytes.Buffer
	if err := d.kb.Save(&kbuf); err != nil {
		t.Fatalf("dump kb: %v", err)
	}
	return string(ts) + "\n" + kbuf.String()
}

func dumpControl(t *testing.T, d *recoveryDeployment) string {
	t.Helper()
	cs, err := d.ctl.Snapshot()
	if err != nil {
		t.Fatalf("dump ctl: %v", err)
	}
	return string(cs)
}

func TestCrashRecoveryByteIdentical(t *testing.T) {
	const total, mid = 9, 5

	// Control run: the same workload, journaled, never killed.
	ctrl := newRecoveryDeployment(t)
	ctrl.spawn(t)
	wc, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatalf("open control wal: %v", err)
	}
	defer wc.Close()
	ctrl.attach(wc)
	for i := 0; i < total; i++ {
		ctrl.step(t, i)
	}
	wantJournaled := dumpJournaled(t, ctrl)
	wantControl := dumpControl(t, ctrl)

	// Crash run: small segments force rotation; checkpoint mid-way, keep
	// going, then hard-stop — the WAL is abandoned without Close and a torn
	// frame (a header promising a 64-byte body, delivering 3) lands on the
	// live segment, as a crash mid-write would leave it.
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways, SegmentBytes: 4096})
	if err != nil {
		t.Fatalf("open crash wal: %v", err)
	}
	crash := newRecoveryDeployment(t)
	crash.spawn(t)
	crash.attach(w)
	for i := 0; i < mid; i++ {
		crash.step(t, i)
	}
	snapAtMid := checkpoint(t, dir, w, crash)
	for i := mid; i < total; i++ {
		crash.step(t, i)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync before crash: %v", err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	if len(segs) < 2 {
		t.Fatalf("want rotation before the crash, got %d segment(s)", len(segs))
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open live segment: %v", err)
	}
	torn := []byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 'x', 'y', 'z'}
	if _, err := f.Write(torn); err != nil {
		t.Fatalf("write torn tail: %v", err)
	}
	f.Close()

	// Recover into fresh components.
	w2, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if w2.Metrics().Truncated == 0 {
		t.Fatal("torn tail not detected on reopen")
	}
	payload, seq, ok, err := wal.LatestSnapshot(dir, "deploy")
	if err != nil || !ok {
		t.Fatalf("LatestSnapshot: ok=%v err=%v", ok, err)
	}
	if seq != snapAtMid.Seq {
		t.Fatalf("snapshot seq = %d, want %d", seq, snapAtMid.Seq)
	}
	var snap deploySnap
	if err := json.Unmarshal(payload, &snap); err != nil {
		t.Fatalf("decode snapshot: %v", err)
	}
	rec2 := newRecoveryDeployment(t)
	if err := rec2.db.RestoreSnapshot(snap.TSDB); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if err := rec2.kb.Load(bytes.NewReader(snap.Knowledge)); err != nil {
		t.Fatalf("kb load: %v", err)
	}
	if err := rec2.ctl.Restore(snap.Control); err != nil {
		t.Fatalf("ctl restore: %v", err)
	}
	r, err := w2.Replay(seq + 1)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	defer r.Close()
	busRecords := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		switch rec.Kind {
		case wal.KindTSDBAppend:
			err = rec2.db.ApplyWAL(rec.Payload)
		case wal.KindKnowledgeOp:
			err = rec2.kb.ApplyWAL(rec.Seq, rec.Payload)
		case wal.KindBusEnvelope:
			// Audit trail: must decode, never re-publishes.
			if _, derr := bus.Decode(rec.Payload); derr != nil {
				t.Fatalf("journaled envelope seq %d does not decode: %v", rec.Seq, derr)
			}
			busRecords++
		default:
			t.Fatalf("unknown record kind 0x%02x at seq %d", rec.Kind, rec.Seq)
		}
		if err != nil {
			t.Fatalf("apply seq %d: %v", rec.Seq, err)
		}
	}
	if busRecords == 0 {
		t.Fatal("no bus envelopes journaled — hook never fired")
	}

	// The journaled layers are byte-identical to the never-killed run.
	if got := dumpJournaled(t, rec2); got != wantJournaled {
		t.Fatalf("journaled state diverges after recovery:\n got: %.2000s\nwant: %.2000s", got, wantJournaled)
	}

	// The snapshot-only control plane restores exactly as of the checkpoint
	// and, driven through the missed rounds, re-derives the identical end
	// state — including the pending-approval queue.
	if got := dumpControl(t, rec2); got != string(snapAtMid.Control) {
		t.Fatalf("control plane diverges from checkpoint:\n got: %s\nwant: %s", got, snapAtMid.Control)
	}
	for i := mid; i < total; i++ {
		rec2.ctl.Tick(time.Duration(i+1) * time.Minute)
	}
	if got := dumpControl(t, rec2); got != wantControl {
		t.Fatalf("control plane diverges after re-driving missed rounds:\n got: %s\nwant: %s", got, wantControl)
	}

	// The recovered pending queue is live: approve the oldest entry and the
	// re-spawned gatekeeper executes it on the next round.
	pr := rec2.ctl.Handle(control.Request{ID: "p", Op: control.OpPending})
	if !pr.OK || len(pr.Pending) == 0 {
		t.Fatalf("no pending approvals after recovery: %+v", pr)
	}
	rec2.b.Publish(bus.Envelope{Topic: control.TopicApprove, Time: (total + 1) * time.Minute,
		Payload: control.Verdict{ID: "v", Seq: pr.Pending[0].Seq}})
	before := len(rec2.executed)
	rec2.ctl.Tick((total + 1) * time.Minute)
	if len(rec2.executed) != before+2 { // approved action + sweeper's autonomous tick
		t.Fatalf("executed %d -> %d after approval, want +2", before, len(rec2.executed))
	}
}
