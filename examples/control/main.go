// Control: a spec-driven daemon managed live over the control.v1 wire API.
//
// Two loops are spawned from JSON LoopSpecs through the case registry. An
// "operator terminal" — a raw TCP client speaking newline-delimited JSON
// envelopes, exactly what `nc` sees against cmd/modad — then lists the
// fleet, flips the power loop to human-in-the-loop at runtime, watches a
// pending approval arrive on control.v1.pending, and approves it over the
// wire; the next control round executes the approved action.
//
// Run: go run ./examples/control
package main

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/bus"
	"autoloop/internal/cases"
	"autoloop/internal/control"
	"autoloop/internal/facility"
	"autoloop/internal/fleet"
	"autoloop/internal/hw"
	"autoloop/internal/knowledge"
	"autoloop/internal/pfs"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

func main() {
	// --- the managed system and its monitoring plane ---
	engine := sim.NewEngine(11)
	db := tsdb.New(0)
	ccfg := hw.DefaultConfig()
	ccfg.Nodes = 16
	cl := hw.New(engine, ccfg)
	plant := facility.New(engine, facility.DefaultConfig(), cl)
	fs := pfs.New(engine, pfs.Config{OSTs: 4, OSTBandwidthMBps: 300, DefaultStripeCount: 2})
	scheduler := sched.New(engine, cl.UpNodes(), sched.DefaultExtensionPolicy())
	runtime := app.NewRuntime(engine, db, fs, cl)
	runtime.OnComplete = func(inst *app.Instance) { scheduler.JobFinished(inst.Job.ID) }
	scheduler.SetHooks(runtime.Start, runtime.Kill)

	reg := telemetry.NewRegistry()
	reg.Register(cl.Collector())
	reg.Register(plant.Collector())
	reg.Register(fs.Collector())
	reg.Register(scheduler.Collector())
	b := bus.New()
	pipe := telemetry.NewPipeline(reg, db).PublishTo(b, "control-example")

	// --- the control plane: registry + env + service on the bus ---
	env := &control.Env{
		Querier: db, Plant: plant, Scheduler: scheduler, Apps: runtime,
		Cluster: cl, FS: fs, Knowledge: knowledge.NewBase(),
		Clock: sim.VirtualClock{Engine: engine}, Rng: rand.New(rand.NewSource(11)), Bus: b,
	}
	coord := fleet.New(0)
	ctl := control.NewService(cases.NewRegistry(), env, coord, time.Minute).Attach(b, "control-example")
	defer ctl.Close()

	// --- spawn the fleet from declarative JSON specs ---
	specs, err := control.ParseSpecs([]byte(`[
		{"case": "power", "period": "1m"},
		{"case": "ost", "period": "1m", "config": {"Threshold": 5}}
	]`))
	check(err)
	for _, spec := range specs {
		sp, err := ctl.Spawn(spec)
		check(err)
		fmt.Printf("spawned %-5s from spec (mode %s, period %s)\n", sp.Spec.Case, sp.Spec.Mode, sp.Spec.Period)
	}
	pipe.Drive(ctl, 2) // a control round every 2nd sample = every minute
	engine.Every(30*time.Second, 30*time.Second, func() bool {
		pipe.Sample(engine.Now())
		return true
	})

	// --- the wire: TCP bridge + an operator terminal ---
	srv, err := bus.NewServer("127.0.0.1:0", "control.*", b)
	check(err)
	defer srv.Close()
	op, err := newOperator(srv.Addr())
	check(err)
	defer op.close()

	// Let the fleet run autonomously for a while, then list it.
	engine.RunUntil(5 * time.Minute)
	reply := op.call(control.Request{ID: "r1", Op: control.OpList})
	fmt.Println("\noperator: list")
	for _, st := range reply.Loops {
		fmt.Printf("  %-10s %-8s mode=%-17s executed=%d\n", st.Name, st.State, st.Mode, st.Metrics.Executed)
	}

	// Flip the power loop to human-in-the-loop at runtime: from now on its
	// actions queue for approval instead of executing.
	reply = op.call(control.Request{ID: "r2", Op: control.OpSetMode, Loop: "power-case", Mode: "human-in-the-loop"})
	fmt.Printf("\noperator: set-mode power-case human-in-the-loop -> ok=%v state=%s\n", reply.OK, reply.Loop.State)

	// The next thermal-headroom action lands in the pending queue and is
	// announced on control.v1.pending.
	pending := op.waitPending(engine, 30*time.Minute)
	fmt.Printf("\npending approval #%d: %s(%s) %+.1f — %s\n",
		pending.Seq, pending.Action.Kind, pending.Action.Subject, pending.Action.Amount, pending.Action.Explanation)

	// Approve it over the wire; the verdict is queued and the next control
	// round executes the action, publishing the final resolution.
	ack := op.verdict(control.TopicApprove, control.Verdict{ID: "r3", Seq: pending.Seq, Reason: "operator approved"})
	fmt.Printf("operator: approve #%d -> ok=%v outcome=%s\n", pending.Seq, ack.OK, ack.Resolution.Outcome)
	res := op.waitResolved(engine, pending.Seq, 30*time.Minute)
	fmt.Printf("resolved: #%d outcome=%s executed=%v\n", res.Seq, res.Outcome, res.Executed)

	reply = op.call(control.Request{ID: "r4", Op: control.OpGet, Loop: "power-case"})
	fmt.Printf("\nfinal: power-case mode=%s executed=%d deferred=%d mean-decision-latency=%s\n",
		reply.Loop.Mode, reply.Loop.Metrics.Executed, reply.Loop.Metrics.Deferred,
		reply.Loop.Metrics.MeanDecisionLatency)
}

// operator is a raw TCP control client: it writes request envelopes as JSON
// lines and sorts the inbound stream into replies, pending announcements,
// and resolutions — the programmatic form of an `nc` session.
type operator struct {
	conn     net.Conn
	replies  chan control.Reply
	pending  chan control.PendingInfo
	resolved chan control.Resolution
}

func newOperator(addr string) (*operator, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	op := &operator{
		conn:     conn,
		replies:  make(chan control.Reply, 16),
		pending:  make(chan control.PendingInfo, 16),
		resolved: make(chan control.Resolution, 16),
	}
	go op.readLoop()
	return op, nil
}

func (op *operator) close() { op.conn.Close() }

func (op *operator) readLoop() {
	sc := bufio.NewScanner(op.conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		env, err := bus.Decode(sc.Bytes())
		if err != nil {
			continue
		}
		switch env.Topic {
		case control.TopicReply:
			var r control.Reply
			if bus.DecodePayload(env, &r) == nil {
				op.replies <- r
			}
		case control.TopicPending:
			var p control.PendingInfo
			if bus.DecodePayload(env, &p) == nil {
				op.pending <- p
			}
		case control.TopicResolved:
			var r control.Resolution
			if bus.DecodePayload(env, &r) == nil {
				op.resolved <- r
			}
		}
	}
}

// send writes one envelope line to the daemon.
func (op *operator) send(topic string, payload interface{}) {
	data, err := bus.Encode(bus.Envelope{Topic: topic, Payload: payload})
	check(err)
	_, err = op.conn.Write(data)
	check(err)
}

// call sends a request and waits for its reply.
func (op *operator) call(req control.Request) control.Reply {
	op.send(control.TopicRequest, req)
	for {
		select {
		case r := <-op.replies:
			if r.ID == req.ID {
				return r
			}
		case <-time.After(5 * time.Second):
			panic("control example: no reply for " + req.Op)
		}
	}
}

// verdict sends an approve/deny envelope and waits for the ack.
func (op *operator) verdict(topic string, v control.Verdict) control.Reply {
	op.send(topic, v)
	for {
		select {
		case r := <-op.replies:
			if r.ID == v.ID {
				return r
			}
		case <-time.After(5 * time.Second):
			panic("control example: no verdict ack")
		}
	}
}

// waitPending advances virtual time round by round until a pending
// announcement arrives over the wire.
func (op *operator) waitPending(engine *sim.Engine, horizon time.Duration) control.PendingInfo {
	deadline := engine.Now() + horizon
	for engine.Now() < deadline {
		engine.RunUntil(engine.Now() + time.Minute)
		select {
		case p := <-op.pending:
			return p
		case <-time.After(300 * time.Millisecond):
		}
	}
	panic("control example: no pending approval within the horizon")
}

// waitResolved advances virtual time until the resolution for seq arrives.
func (op *operator) waitResolved(engine *sim.Engine, seq uint64, horizon time.Duration) control.Resolution {
	deadline := engine.Now() + horizon
	for engine.Now() < deadline {
		engine.RunUntil(engine.Now() + time.Minute)
		select {
		case r := <-op.resolved:
			if r.Seq == seq {
				return r
			}
		case <-time.After(300 * time.Millisecond):
		}
	}
	panic("control example: no resolution within the horizon")
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
