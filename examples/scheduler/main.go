// Scheduler: the paper's Fig. 3 use case at fleet scale.
//
// A 32-node cluster runs a batch workload in which 40% of users
// underestimate their walltime. The walltime-extension autonomy loop
// monitors every job's progress markers, plans extensions through the
// scheduler's trust policy, falls back to checkpoints when extensions run
// out, and learns per-application corrections into the knowledge base.
// The same workload is replayed without the loop for comparison.
//
// Run: go run ./examples/scheduler
package main

import (
	"fmt"
	"math/rand"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/cases/schedcase"
	"autoloop/internal/core"
	"autoloop/internal/knowledge"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/tsdb"
)

const (
	nodes = 32
	jobs  = 80
)

type outcome struct {
	completed, killed, resubmits int
	wastedNodeH                  float64
	extensions                   int
	denied                       int
}

func main() {
	without := replay(false)
	with := replay(true)

	fmt.Println("Fig. 3 Scheduler case, 80 jobs / 32 nodes, 40% of walltimes underestimated")
	fmt.Printf("%-18s %12s %8s %10s %13s %11s %8s\n",
		"mode", "completed", "killed", "resubmits", "wasted-nodeh", "extensions", "denied")
	print := func(name string, o outcome) {
		fmt.Printf("%-18s %9d/%d %8d %10d %13.1f %11d %8d\n",
			name, o.completed, jobs, o.killed, o.resubmits, o.wastedNodeH, o.extensions, o.denied)
	}
	print("no-loop", without)
	print("autonomy-loop", with)
}

func replay(withLoop bool) outcome {
	engine := sim.NewEngine(99)
	db := tsdb.New(0)
	ids := make([]string, nodes)
	for i := range ids {
		ids[i] = fmt.Sprintf("n%03d", i)
	}
	scheduler := sched.New(engine, ids,
		sched.ExtensionPolicy{MaxPerJob: 3, MaxTotalPerJob: 6 * time.Hour, BackfillGuard: true})
	runtime := app.NewRuntime(engine, db, nil, nil)
	runtime.OnComplete = func(inst *app.Instance) { scheduler.JobFinished(inst.Job.ID) }
	scheduler.SetHooks(runtime.Start, runtime.Kill)

	kb := knowledge.NewBase()
	var ctl *schedcase.Controller
	done := false
	if withLoop {
		ctl = schedcase.New(schedcase.DefaultConfig(), db, scheduler, runtime, kb,
			sim.VirtualClock{Engine: engine})
		loop := ctl.Loop()
		loop.Mode = core.Autonomous
		loop.RunEvery(sim.VirtualClock{Engine: engine}, 5*time.Minute, func() bool { return done })
	}

	// Deterministic workload, identical across both replays.
	rng := rand.New(rand.NewSource(4))
	var at time.Duration
	terminal := 0
	var out outcome
	resubmitted := map[string]int{}
	for i := 0; i < jobs; i++ {
		at += sim.Exponential{MeanV: 5 * time.Minute}.Sample(rng)
		name := fmt.Sprintf("app%03d", i)
		iters := 40 + rng.Intn(140)
		iterMean := time.Duration(20+rng.Intn(60)) * time.Second
		spec := app.Spec{
			Name: name, TotalIters: iters,
			IterTime:       sim.LogNormal{MeanV: iterMean, CV: 0.15},
			CheckpointCost: time.Minute,
		}
		runtime.RegisterSpec(name, spec)
		trueRuntime := time.Duration(iters) * iterMean
		factor := 1.1 + rng.Float64()*0.9
		if rng.Float64() < 0.4 {
			factor = 0.55 + rng.Float64()*0.4
		}
		wall := time.Duration(float64(trueRuntime) * factor)
		if wall < 10*time.Minute {
			wall = 10 * time.Minute
		}
		nreq := 1 + rng.Intn(4)
		engine.At(at, func() {
			if _, err := scheduler.Submit(name, "u", nreq, wall, 0); err != nil {
				panic(err)
			}
		})
	}

	handled := map[int]bool{}
	walltimes := map[string]time.Duration{}
	engine.Every(time.Minute, time.Minute, func() bool {
		for _, j := range scheduler.Jobs() {
			if handled[j.ID] {
				continue
			}
			switch j.State {
			case sched.JobCompleted:
				handled[j.ID] = true
				if ctl != nil {
					ctl.NoteJobEnd(j)
				}
				out.completed++
				terminal++
			case sched.JobKilledWalltime:
				handled[j.ID] = true
				if ctl != nil {
					ctl.NoteJobEnd(j)
				}
				out.killed++
				if resubmitted[j.Name] < 2 {
					resubmitted[j.Name]++
					out.resubmits++
					if walltimes[j.Name] == 0 {
						walltimes[j.Name] = j.Walltime
					}
					walltimes[j.Name] = time.Duration(float64(walltimes[j.Name]) * 1.5)
					if _, err := scheduler.Submit(j.Name, j.User, j.Nodes, walltimes[j.Name], j.ID); err != nil {
						panic(err)
					}
				} else {
					terminal++
				}
			}
		}
		if terminal >= jobs {
			done = true
			return false
		}
		return true
	})

	engine.Run()
	st := scheduler.Stats()
	out.wastedNodeH = st.NodeSecondsWasted / 3600
	out.extensions = st.ExtensionsGranted + st.ExtensionsPartial
	out.denied = st.ExtensionsDenied
	return out
}
