// Holistic: the paper's Fig. 1 end to end.
//
// Sensors from all four domains — building infrastructure (cooling plant),
// system hardware (nodes), system software (parallel filesystem, scheduler),
// and applications — feed one monitoring plane; operational data analytics
// watch the combined stream and diagnose an injected fault in each domain.
//
// Run: go run ./examples/holistic
package main

import (
	"fmt"
	"math/rand"
	"time"

	"autoloop/internal/analytics"
	"autoloop/internal/app"
	"autoloop/internal/bus"
	"autoloop/internal/cases"
	"autoloop/internal/control"
	"autoloop/internal/facility"
	"autoloop/internal/fleet"
	"autoloop/internal/hw"
	"autoloop/internal/knowledge"
	"autoloop/internal/pfs"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
	"autoloop/internal/viz"
)

func main() {
	engine := sim.NewEngine(7)
	db := tsdb.New(0)

	// --- the managed system, one component per Fig. 1 box ---
	ccfg := hw.DefaultConfig()
	ccfg.Nodes = 16
	cl := hw.New(engine, ccfg)                                                               // system hardware
	plant := facility.New(engine, facility.DefaultConfig(), cl)                              // building infrastructure
	fs := pfs.New(engine, pfs.Config{OSTs: 8, OSTBandwidthMBps: 300, DefaultStripeCount: 4}) // system software
	scheduler := sched.New(engine, cl.UpNodes(), sched.DefaultExtensionPolicy())
	runtime := app.NewRuntime(engine, db, fs, cl) // applications
	runtime.OnComplete = func(inst *app.Instance) { scheduler.JobFinished(inst.Job.ID) }
	scheduler.SetHooks(runtime.Start, runtime.Kill)

	// --- holistic monitoring: every domain registers its sensors ---
	reg := telemetry.NewRegistry()
	reg.Register(cl.Collector())
	reg.Register(plant.Collector())
	reg.Register(fs.Collector())
	reg.Register(scheduler.Collector())
	pipe := telemetry.NewPipeline(reg, db)

	// --- autonomous response: a spec-driven fleet under one coordinator ---
	// The loops are declared as JSON specs and spawned through the control
	// registry into a deployment environment; the monitoring pipeline
	// drives the control service (a round every 2nd sample = every
	// minute): the power loop manages cooling energy under the thermal
	// limit, the OST loop steers applications off degraded storage, and
	// the coordinator's arbiter would resolve any same-subject conflict
	// between them by priority.
	b := bus.New()
	env := &control.Env{
		Querier: db, Plant: plant, Scheduler: scheduler, Apps: runtime,
		Cluster: cl, FS: fs, Knowledge: knowledge.NewBase(),
		Clock: sim.VirtualClock{Engine: engine}, Rng: rand.New(rand.NewSource(7)), Bus: b,
	}
	coord := fleet.New(0).PublishTo(b, "holistic")
	ctl := control.NewService(cases.NewRegistry(), env, coord, time.Minute).Attach(b, "holistic")
	specs, err := control.ParseSpecs([]byte(`[
		{"case": "power", "period": "1m"},
		{"case": "ost", "period": "1m"}
	]`))
	if err != nil {
		panic(err)
	}
	for _, spec := range specs {
		if _, err := ctl.Spawn(spec); err != nil {
			panic(err)
		}
	}
	pipe.Drive(ctl, 2)

	engine.Every(30*time.Second, 30*time.Second, func() bool {
		pipe.Sample(engine.Now())
		return engine.Now() < 4*time.Hour
	})

	// --- workload ---
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("steady%d", i)
		runtime.RegisterSpec(name, app.Spec{
			Name: name, TotalIters: 300, IterTime: sim.LogNormal{MeanV: time.Minute, CV: 0.1},
			IOEvery: 5, IOSizeMB: 200, StripeCount: 4,
		})
		if _, err := scheduler.Submit(name, "ops", 2, 8*time.Hour, 0); err != nil {
			panic(err)
		}
	}

	// --- injected faults, one per domain ---
	engine.At(30*time.Minute, func() { plant.SetSupplySetpointC(14) })   // facility: cooling waste
	engine.At(1*time.Hour, func() { _ = cl.SetThermalFault("n000", 6) }) // hardware: fan failure
	engine.At(90*time.Minute, func() { _ = fs.SetOSTHealth(3, 0.1) })    // storage: slow OST
	runtime.RegisterSpec("storm", app.Spec{                              // application: thread oversubscription
		Name: "storm", TotalIters: 200, IterTime: sim.Constant{V: time.Minute},
		Misconfig: app.MisconfigThreads,
	})
	engine.At(2*time.Hour, func() {
		if _, err := scheduler.Submit("storm", "bob", 1, 6*time.Hour, 0); err != nil {
			panic(err)
		}
	})

	// --- operational data analytics over the combined stream ---
	pueDetector := analytics.NewCUSUM(10, 0.005, 0.05)
	found := map[string]time.Duration{}
	// The ODA poll reads through the zero-copy LatestInto surface into
	// buffers reused across ticks — steady-state polling allocates nothing.
	var ptsBuf []telemetry.Point
	var vals []float64
	engine.Every(time.Minute, time.Minute, func() bool {
		now := engine.Now()
		if ptsBuf = db.LatestInto(ptsBuf[:0], "node.temp.celsius", nil); len(ptsBuf) > 4 {
			vals = vals[:0]
			for _, p := range ptsBuf {
				vals = append(vals, p.Value)
			}
			if len(analytics.MADOutliers(vals, 6, 1)) > 0 {
				mark(found, "hardware: node temperature outlier", now)
			}
		}
		if ptsBuf = db.LatestInto(ptsBuf[:0], "pfs.ost.lat_ms", nil); len(ptsBuf) >= 4 {
			vals = vals[:0]
			for _, p := range ptsBuf {
				if p.Value > 0.1 {
					vals = append(vals, p.Value)
				}
			}
			if len(vals) >= 4 && len(analytics.MADOutliers(vals, 5, 1)) > 0 {
				mark(found, "storage: OST latency outlier", now)
			}
		}
		ptsBuf = db.LatestInto(ptsBuf[:0], "app.ctx_switch_rate", nil)
		for _, p := range ptsBuf {
			if p.Value > 20000 {
				mark(found, "application: context-switch storm", now)
			}
		}
		if pue, ok := db.LatestValue("facility.pue", telemetry.Labels{"plant": "p0"}); ok && pueDetector.Step(pue) {
			mark(found, "facility: PUE drift", now)
		}
		return now < 4*time.Hour
	})

	engine.RunUntil(4 * time.Hour)

	fmt.Println("holistic MODA run complete")
	fmt.Printf("  %d series, %d samples across 4 domains\n", db.NumSeries(), db.Appended())
	fmt.Println("  diagnoses:")
	for what, when := range found {
		fmt.Printf("   %-42s at %v\n", what, when)
	}
	cm := coord.Metrics()
	fmt.Printf("  fleet: %d rounds, %d actions planned, %d conflicts arbitrated\n",
		cm.Rounds, cm.Planned, cm.Arbitrated)
	// The control plane reports the same fleet as LoopStatus rows — the
	// in-process form of a control.v1 list request.
	if r := ctl.Handle(control.Request{Op: control.OpList}); r.OK {
		for _, st := range r.Loops {
			fmt.Printf("   %-11s %-10s %-10s executed=%d honored=%d\n",
				st.Case, st.Name, st.State, st.Metrics.Executed, st.Metrics.Honored)
		}
	}

	// The Fig. 1 "Visualize" box: sparkline each domain's headline signal.
	fmt.Println("\n  visualize (4h of operation, one anomaly per domain):")
	show := func(name string, matcher telemetry.Labels) {
		if s, ok := db.QueryOne(name, matcher, 0, engine.Now()); ok {
			fmt.Println("   " + viz.SparkSeries(s, 48))
		}
	}
	show("facility.pue", telemetry.Labels{"plant": "p0"})
	show("node.temp.celsius", telemetry.Labels{"node": "n000"})
	show("pfs.ost.lat_ms", telemetry.Labels{"ost": "ost03"})
	show("app.ctx_switch_rate", telemetry.Labels{"app": "storm"})
}

func mark(found map[string]time.Duration, what string, now time.Duration) {
	if _, ok := found[what]; !ok {
		found[what] = now
	}
}
