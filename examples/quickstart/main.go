// Quickstart: the smallest complete MODA autonomy loop.
//
// A single "classical" MAPE-K loop watches one iterative application's
// progress markers, forecasts its time to completion, and asks the simulated
// SLURM-like scheduler for a walltime extension when the job would otherwise
// be killed — the paper's Fig. 3 in ~100 lines.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/cases/schedcase"
	"autoloop/internal/core"
	"autoloop/internal/knowledge"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/tsdb"
)

func main() {
	// 1. The substrate: event engine, telemetry store, 4-node scheduler,
	//    application runtime.
	engine := sim.NewEngine(42)
	db := tsdb.New(0)
	scheduler := sched.New(engine, []string{"n00", "n01", "n02", "n03"},
		sched.ExtensionPolicy{MaxPerJob: 3, MaxTotalPerJob: 4 * time.Hour, BackfillGuard: true})
	runtime := app.NewRuntime(engine, db, nil, nil)
	runtime.OnComplete = func(inst *app.Instance) { scheduler.JobFinished(inst.Job.ID) }
	scheduler.SetHooks(runtime.Start, runtime.Kill)

	// 2. The managed application: 100 one-minute iterations (about 100
	//    minutes of real work), but its user requested only 60 minutes.
	runtime.RegisterSpec("lbm-sim", app.Spec{
		Name:       "lbm-sim",
		TotalIters: 100,
		IterTime:   sim.LogNormal{MeanV: time.Minute, CV: 0.1},
	})
	job, err := scheduler.Submit("lbm-sim", "alice", 2, time.Hour, 0)
	if err != nil {
		panic(err)
	}

	// 3. The autonomy loop: Monitor progress markers -> Analyze TTC ->
	//    Plan an extension -> Execute through the scheduler -> Assess into
	//    the knowledge base.
	kb := knowledge.NewBase()
	ctl := schedcase.New(schedcase.DefaultConfig(), db, scheduler, runtime, kb,
		sim.VirtualClock{Engine: engine})
	loop := ctl.Loop()
	loop.Audit = core.NewAuditLog(256)
	loop.RunEvery(sim.VirtualClock{Engine: engine}, 5*time.Minute,
		func() bool { return job.State != sched.JobRunning && job.State != sched.JobPending })

	// 4. Run the world.
	engine.RunUntil(6 * time.Hour)
	ctl.NoteJobEnd(job)

	// 5. What happened?
	fmt.Printf("job %d (%s) requested %v, final state: %s\n",
		job.ID, job.Name, job.Walltime, job.State)
	fmt.Printf("ran %v wall time with %d extension(s) totalling %v\n",
		(job.End - job.Start).Truncate(time.Second), job.Extensions, job.ExtensionTotal)
	fmt.Println("\naudit trail (the loop explaining itself):")
	for _, e := range loop.Audit.Filter("", "execute") {
		fmt.Println(" ", e)
	}
	eff := kb.Assess("scheduler-case")
	fmt.Printf("\nknowledge: %d plan(s) recorded, %d honored, mean relative prediction error %.1f%%\n",
		eff.Plans, eff.Honored, eff.MeanRelErr*100)
}
