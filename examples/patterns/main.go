// Patterns: the four Fig. 2 MAPE-K design patterns side by side.
//
// Sixteen managed subsystems accumulate work; each pattern wires Monitor/
// Analyze/Plan/Execute differently. Halfway through, the demo kills part of
// each pattern's control plane and shows who keeps controlling what — the
// paper's robustness argument for decentralized autonomy, live.
//
// Run: go run ./examples/patterns
package main

import (
	"fmt"
	"time"

	"autoloop/internal/core"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
)

const n = 16

// queueSystem is a managed subsystem: work arrives, control actions drain it.
type queueSystem struct {
	name    string
	queue   float64
	actions int
}

func (q *queueSystem) monitor() core.Monitor {
	return core.MonitorFunc(func(now time.Duration) (core.Observation, error) {
		return core.Observation{Time: now, Points: []telemetry.Point{{
			Name: "queue", Labels: telemetry.Labels{"sub": q.name}, Time: now, Value: q.queue,
		}}}, nil
	})
}

func (q *queueSystem) executor() core.Executor {
	return core.ExecutorFunc(func(now time.Duration, a core.Action) (core.ActionResult, error) {
		drained := a.Amount
		if drained > q.queue {
			drained = q.queue
		}
		q.queue -= drained
		q.actions++
		return core.ActionResult{Action: a, Honored: true, Granted: drained}, nil
	})
}

func analyzer() core.Analyzer {
	return core.AnalyzerFunc(func(now time.Duration, obs core.Observation) (core.Symptoms, error) {
		sym := core.Symptoms{Time: now}
		for _, p := range obs.Points {
			if p.Value > 5 {
				sym.Findings = append(sym.Findings, core.Finding{
					Kind: "backlog", Subject: p.Labels["sub"], Value: p.Value, Confidence: 1,
				})
			}
		}
		return sym, nil
	})
}

func planner() core.Planner {
	return core.PlannerFunc(func(now time.Duration, sym core.Symptoms) (core.Plan, error) {
		plan := core.Plan{Time: now}
		for _, f := range sym.Findings {
			plan.Actions = append(plan.Actions, core.Action{Kind: "drain", Subject: f.Subject, Amount: f.Value, Confidence: 1})
		}
		return plan, nil
	})
}

func makeSystems() ([]*queueSystem, []*core.Worker) {
	subs := make([]*queueSystem, n)
	workers := make([]*core.Worker, n)
	for i := range subs {
		subs[i] = &queueSystem{name: fmt.Sprintf("s%02d", i)}
		workers[i] = core.NewWorker(subs[i].name, subs[i].monitor(), subs[i].executor())
	}
	return subs, workers
}

func run(name string, subs []*queueSystem, tick func(time.Duration), fail func(), failDesc string) {
	engine := sim.NewEngine(1)
	engine.At(60*time.Second, fail)
	engine.Every(time.Second, time.Second, func() bool {
		for _, s := range subs {
			s.queue += 3
		}
		tick(engine.Now())
		return engine.Now() < 120*time.Second
	})
	engine.Run()
	controlled, worst := 0, 0.0
	for _, s := range subs {
		if s.queue < 10 {
			controlled++
		}
		if s.queue > worst {
			worst = s.queue
		}
	}
	fmt.Printf("%-14s  failure: %-24s  subsystems still under control: %2d/%d  worst backlog: %4.0f\n",
		name, failDesc, controlled, n, worst)
}

func main() {
	fmt.Println("Fig. 2 design patterns under controller failure (injected at t=60s):")

	// (a) classical: one loop per subsystem, no failures injected — reference.
	{
		subs, _ := makeSystems()
		loops := make([]*core.Loop, n)
		for i, s := range subs {
			loops[i] = core.NewLoop(s.name, s.monitor(), analyzer(), planner(), s.executor())
		}
		run("classical", subs, func(now time.Duration) {
			for _, l := range loops {
				l.Tick(now)
			}
		}, func() {}, "none (reference)")
	}

	// (b) master-worker: central A+P; the master dies.
	{
		subs, workers := makeSystems()
		mw := core.NewMasterWorker("mw", analyzer(), planner(), workers)
		run("master-worker", subs, mw.Tick, func() { mw.SetEnabled(false) }, "master dies")
	}

	// (c) coordinated: full local loops; a quarter of them die.
	{
		subs, _ := makeSystems()
		loops := make([]*core.Loop, n)
		for i, s := range subs {
			loops[i] = core.NewLoop(s.name, s.monitor(), analyzer(), planner(), s.executor())
		}
		coord := core.NewCoordinated("coord", loops)
		run("coordinated", subs, coord.Tick, func() {
			for i := 0; i < n/4; i++ {
				loops[i].SetEnabled(false)
			}
		}, "4 of 16 loops die")
	}

	// (d) hierarchical: four group masters; one dies.
	{
		subs, workers := makeSystems()
		var masters []*core.MasterWorker
		for g := 0; g < 4; g++ {
			masters = append(masters, core.NewMasterWorker(fmt.Sprintf("g%d", g),
				analyzer(), planner(), workers[g*4:(g+1)*4]))
		}
		run("hierarchical", subs, func(now time.Duration) {
			for _, m := range masters {
				m.Tick(now)
			}
		}, func() { masters[0].SetEnabled(false) }, "1 of 4 group masters dies")
	}
}
