// IOQoS: the paper's I/O QoS use case — hierarchical MAPE-K loops of
// decreasing size and increasing automation.
//
// A deadline-dependent workflow shares a parallel filesystem with a
// saturating best-effort tenant. A slow "campaign" parent loop reallocates
// per-tenant bandwidth from global latency objectives and publishes
// setpoints on the knowledge blackboard; fast per-tenant child loops enact
// them on the filesystem's token buckets.
//
// Run: go run ./examples/ioqos
package main

import (
	"fmt"
	"time"

	"autoloop/internal/cases/ioqoscase"
	"autoloop/internal/knowledge"
	"autoloop/internal/pfs"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

func main() {
	engine := sim.NewEngine(5)
	db := tsdb.New(0)
	fs := pfs.New(engine, pfs.Config{OSTs: 4, OSTBandwidthMBps: 100, DefaultStripeCount: 2})
	kb := knowledge.NewBase()

	tenants := []ioqoscase.Tenant{
		{Name: "deadline", Priority: 3, TargetLatMS: 500},
		{Name: "batch", Priority: 1},
	}
	// Allocations start as loose "campaign" estimates (2000 MB/s of paper
	// bandwidth over a 400 MB/s backend) — the adaptation has real work to do.
	ctl := ioqoscase.New(ioqoscase.DefaultConfig(tenants, 2000), db, fs, kb)
	hierarchy := ctl.Hierarchy(3) // parent ticks once per 3 child ticks
	hierarchy.RunEvery(sim.VirtualClock{Engine: engine}, 10*time.Second,
		func() bool { return engine.Now() >= 30*time.Minute })

	// Telemetry sampling feeds the loops.
	pipe := telemetry.NewPipeline(telemetry.NewRegistryOf(fs.Collector()), db)
	engine.Every(10*time.Second, 10*time.Second, func() bool {
		pipe.Sample(engine.Now())
		return engine.Now() < 30*time.Minute
	})

	// Closed-loop interferer: 8 concurrent 150MB write streams.
	bf := fs.Open("batch", 4, nil)
	var issue func()
	issue = func() {
		if engine.Now() >= 30*time.Minute {
			return
		}
		fs.Write(bf, 150, func(time.Duration) { issue() })
	}
	for i := 0; i < 8; i++ {
		issue()
	}

	// The deadline workflow writes 50MB every 10s; track its latency.
	var lats []float64
	misses := 0
	vf := fs.Open("deadline", 2, nil)
	engine.Every(10*time.Second, 10*time.Second, func() bool {
		fs.Write(vf, 50, func(l time.Duration) {
			ms := l.Seconds() * 1000
			lats = append(lats, ms)
			if ms > 2000 {
				misses++
			}
		})
		return engine.Now() < 30*time.Minute
	})

	engine.RunUntil(35 * time.Minute)

	fmt.Println("hierarchical I/O QoS adaptation (30 virtual minutes)")
	fmt.Printf("  deadline tenant: p50 %.0fms  p99 %.0fms  deadline misses %d/%d\n",
		tsdb.Percentile(lats, 0.5), tsdb.Percentile(lats, 0.99), misses, len(lats))
	fmt.Printf("  final allocations: deadline %.0f MB/s, batch %.0f MB/s (parent observed %d violations)\n",
		ctl.Alloc("deadline"), ctl.Alloc("batch"), ctl.Violations)
	rate, burst, _ := fs.QoS("batch")
	fmt.Printf("  batch token bucket enacted by child loop: rate %.0f MB/s, burst %.0f MB\n", rate, burst)
}
