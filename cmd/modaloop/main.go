// Command modaloop runs the paper-reproduction experiments and prints their
// tables.
//
// Usage:
//
//	modaloop list                 # list experiment IDs and titles
//	modaloop run EXP-F3           # run one experiment (full scale)
//	modaloop run all              # run every experiment
//	modaloop run EXP-F3 -quick    # shrunken scenario
//	modaloop run EXP-F3 -csv      # CSV instead of a table
//	modaloop run EXP-F3 -seed 42  # alternate deterministic seed
package main

import (
	"flag"
	"fmt"
	"os"

	"autoloop/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-9s %s\n", id, title)
		}
	case "run":
		runCmd(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: modaloop list | modaloop run <EXP-ID|all> [-quick] [-csv] [-seed N]")
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	quick := fs.Bool("quick", false, "shrink the scenario for a fast run")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	seed := fs.Int64("seed", 1, "deterministic seed")
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	id := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		os.Exit(2)
	}
	opt := experiments.Options{Seed: *seed, Quick: *quick}

	emit := func(res *experiments.Result) {
		if *csv {
			fmt.Print(res.CSV())
		} else {
			fmt.Println(res.Table())
		}
	}
	if id == "all" {
		for _, res := range experiments.RunAll(opt) {
			emit(res)
		}
		return
	}
	res, err := experiments.Run(id, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "modaloop:", err)
		os.Exit(1)
	}
	emit(res)
}
