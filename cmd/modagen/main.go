// Command modagen generates the open datasets the paper promises in
// §III(iii): reproducible JSON traces of application progress markers and of
// batch workloads with user walltime-estimation error, suitable for
// offline analysis or for replaying against other MODA stacks.
//
// Usage:
//
//	modagen progress -apps 8 -seed 1 > progress.json
//	modagen workload -jobs 240 -seed 1 > workload.json
//	modagen scenario -preset midsize -seed 1 > midsize.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/scenario"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/tsdb"
)

// progressTrace is one application's marker stream.
type progressTrace struct {
	App        string    `json:"app"`
	TotalIters int       `json:"total_iters"`
	MeanIterS  float64   `json:"mean_iter_s"`
	Drift      float64   `json:"drift_per_iter"`
	TimesS     []float64 `json:"times_s"`
	Iters      []int     `json:"iters"`
}

// workloadEntry is one batch job with its (mis)estimated walltime.
type workloadEntry struct {
	Name          string  `json:"name"`
	Nodes         int     `json:"nodes"`
	SubmitS       float64 `json:"submit_s"`
	TrueRuntimeS  float64 `json:"true_runtime_s"`
	WalltimeReqS  float64 `json:"walltime_req_s"`
	Underestimate bool    `json:"underestimate"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "progress":
		progressCmd(os.Args[2:])
	case "workload":
		workloadCmd(os.Args[2:])
	case "scenario":
		scenarioCmd(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: modagen progress [-apps N] [-seed N] | modagen workload [-jobs N] [-seed N] | modagen scenario [-preset small|midsize|stress10k] [-seed N]")
}

// scenarioCmd emits a scenario-engine document (see internal/scenario) for
// one of the built-in presets, round-tripped through the decoder so the
// output is guaranteed to be a valid scenario file for modad -scenario.
func scenarioCmd(args []string) {
	fs := flag.NewFlagSet("scenario", flag.ExitOnError)
	preset := fs.String("preset", "small", "scenario preset: small, midsize, or stress10k")
	seed := fs.Int64("seed", 1, "deterministic seed")
	_ = fs.Parse(args)

	var spec *scenario.Spec
	switch *preset {
	case "small":
		spec = scenario.Small(*seed)
	case "midsize":
		spec = scenario.Midsize(*seed)
	case "stress10k":
		spec = scenario.Stress10k(*seed)
	default:
		fmt.Fprintf(os.Stderr, "modagen: unknown preset %q (have small, midsize, stress10k)\n", *preset)
		os.Exit(2)
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "modagen: %v\n", err)
		os.Exit(1)
	}
	if _, err := scenario.Decode(data); err != nil {
		fmt.Fprintf(os.Stderr, "modagen: generated scenario does not decode: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(data))
}

func progressCmd(args []string) {
	fs := flag.NewFlagSet("progress", flag.ExitOnError)
	apps := fs.Int("apps", 8, "number of applications to trace")
	seed := fs.Int64("seed", 1, "deterministic seed")
	_ = fs.Parse(args)

	rng := rand.New(rand.NewSource(*seed))
	engine := sim.NewEngine(*seed)
	db := tsdb.New(0)
	runtime := app.NewRuntime(engine, db, nil, nil)

	var traces []progressTrace
	for i := 0; i < *apps; i++ {
		name := fmt.Sprintf("app%02d", i)
		iters := 60 + rng.Intn(180)
		mean := time.Duration(20+rng.Intn(60)) * time.Second
		drift := 0.0
		if rng.Intn(3) == 0 {
			drift = 0.001 + rng.Float64()*0.003
		}
		spec := app.Spec{
			Name: name, TotalIters: iters,
			IterTime:     sim.LogNormal{MeanV: mean, CV: 0.2},
			DriftPerIter: drift,
		}
		runtime.RegisterSpec(name, spec)
		traces = append(traces, progressTrace{
			App: name, TotalIters: iters, MeanIterS: mean.Seconds(), Drift: drift,
		})
	}
	// Execute the apps on a dedicated one-node-per-app scheduler and read
	// their marker streams back from the TSDB.
	nodes := make([]string, *apps)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("n%03d", i)
	}
	scheduler := sched.New(engine, nodes, sched.DefaultExtensionPolicy())
	runtime.OnComplete = func(inst *app.Instance) { scheduler.JobFinished(inst.Job.ID) }
	scheduler.SetHooks(runtime.Start, runtime.Kill)
	for i := range traces {
		if _, err := scheduler.Submit(traces[i].App, "gen", 1, 1000*time.Hour, 0); err != nil {
			fmt.Fprintln(os.Stderr, "modagen:", err)
			os.Exit(1)
		}
	}
	engine.Run()
	for i := range traces {
		series := db.Query("app.progress", map[string]string{"app": traces[i].App}, 0, engine.Now())
		for _, s := range series {
			for _, smp := range s.Samples {
				traces[i].TimesS = append(traces[i].TimesS, smp.Time.Seconds())
				traces[i].Iters = append(traces[i].Iters, int(smp.Value))
			}
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(traces); err != nil {
		fmt.Fprintln(os.Stderr, "modagen:", err)
		os.Exit(1)
	}
}

func workloadCmd(args []string) {
	fs := flag.NewFlagSet("workload", flag.ExitOnError)
	jobs := fs.Int("jobs", 240, "number of jobs")
	seed := fs.Int64("seed", 1, "deterministic seed")
	underFrac := fs.Float64("underestimate", 0.4, "fraction of users underestimating walltime")
	_ = fs.Parse(args)

	rng := rand.New(rand.NewSource(*seed))
	var entries []workloadEntry
	var at float64
	for i := 0; i < *jobs; i++ {
		at += rng.ExpFloat64() * 360
		iters := 40 + rng.Intn(160)
		iterMean := float64(20 + rng.Intn(70))
		trueRuntime := float64(iters) * iterMean
		under := rng.Float64() < *underFrac
		var factor float64
		if under {
			factor = 0.55 + rng.Float64()*0.4
		} else {
			factor = 1.1 + rng.Float64()*0.9
		}
		entries = append(entries, workloadEntry{
			Name:          fmt.Sprintf("job%04d", i),
			Nodes:         1 + rng.Intn(4),
			SubmitS:       at,
			TrueRuntimeS:  trueRuntime,
			WalltimeReqS:  trueRuntime * factor,
			Underestimate: under,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(entries); err != nil {
		fmt.Fprintln(os.Stderr, "modagen:", err)
		os.Exit(1)
	}
}
