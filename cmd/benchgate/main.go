// Command benchgate is the CI perf-regression gate: it parses two
// `go test -bench` outputs (the PR base and head runs of the key-benchmark
// smoke set), compares the per-benchmark median ns/op, and exits non-zero
// when any benchmark present in both runs regressed by more than the
// allowed percentage. benchstat renders the human-readable comparison in the
// same job; benchgate is the machine-checkable pass/fail.
//
// Usage:
//
//	benchgate -base base.txt -head head.txt [-max-regress 20] [-json BENCH.json]
//
// Benchmarks that exist only in the head run (newly added) are reported but
// never fail the gate; with -json the head medians are written as a JSON
// artifact so the repo's perf trajectory accumulates run over run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	basePath := flag.String("base", "", "bench output of the PR base")
	headPath := flag.String("head", "", "bench output of the PR head")
	maxRegress := flag.Float64("max-regress", 20, "maximum allowed ns/op regression, percent")
	jsonPath := flag.String("json", "", "write the head run's medians as a JSON artifact")
	flag.Parse()
	if *headPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -head is required")
		os.Exit(2)
	}
	head, err := parseFile(*headPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(head) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results in", *headPath)
		os.Exit(2)
	}
	if *jsonPath != "" {
		if err := writeArtifact(*jsonPath, head); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	}
	if *basePath == "" {
		fmt.Printf("benchgate: %d head benchmarks recorded, no base to compare\n", len(head))
		return
	}
	base, err := parseFile(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	report, regressions := compare(base, head, *maxRegress)
	fmt.Print(report)
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed more than %.0f%%\n", len(regressions), *maxRegress)
		os.Exit(1)
	}
}

// parseFile reads every benchmark result line of a `go test -bench` output,
// returning name -> ns/op samples (one per -count run).
func parseFile(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

func parse(r io.Reader) (map[string][]float64, error) {
	out := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		name, ns, ok := parseLine(sc.Text())
		if ok {
			out[name] = append(out[name], ns)
		}
	}
	return out, sc.Err()
}

// parseLine extracts (name, ns/op) from one result line, e.g.
//
//	BenchmarkBusDispatch/subs=1000-2  1000  34.52 ns/op  0 B/op  0 allocs/op
func parseLine(line string) (name string, nsPerOp float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] == "ns/op" {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return "", 0, false
			}
			return fields[0], v, true
		}
	}
	return "", 0, false
}

// median returns the middle sample (mean of the middle two for even n),
// which is what makes the gate robust to one noisy CI run.
func median(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// compare renders a per-benchmark delta table and returns the names whose
// median regressed beyond maxRegress percent. Benchmarks present only in
// the base run are reported as removed — a regression can't hide by
// deleting or renaming its benchmark unnoticed — but do not fail the gate.
func compare(base, head map[string][]float64, maxRegress float64) (report string, regressions []string) {
	names := make([]string, 0, len(head))
	for name := range head {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		hm := median(head[name])
		bs, inBase := base[name]
		if !inBase {
			fmt.Fprintf(&b, "%-50s %12.1f ns/op  (new, no base)\n", name, hm)
			continue
		}
		bm := median(bs)
		delta := 100 * (hm - bm) / bm
		status := "ok"
		if delta > maxRegress {
			status = "REGRESSED"
			regressions = append(regressions, name)
		}
		fmt.Fprintf(&b, "%-50s %12.1f -> %12.1f ns/op  %+7.1f%%  %s\n", name, bm, hm, delta, status)
	}
	removed := make([]string, 0)
	for name := range base {
		if _, inHead := head[name]; !inHead {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(&b, "%-50s %12.1f ns/op  (REMOVED from head run)\n", name, median(base[name]))
	}
	return b.String(), regressions
}

// artifact is the JSON shape of one recorded bench run (BENCH_pr3.json).
type artifact struct {
	Benchmarks map[string]artifactEntry `json:"benchmarks"`
}

type artifactEntry struct {
	NsPerOp float64 `json:"ns_per_op"`
	Runs    int     `json:"runs"`
}

func writeArtifact(path string, head map[string][]float64) error {
	a := artifact{Benchmarks: make(map[string]artifactEntry, len(head))}
	for name, samples := range head {
		a.Benchmarks[name] = artifactEntry{NsPerOp: median(samples), Runs: len(samples)}
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
