package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: autoloop/internal/bus
cpu: Some CPU
BenchmarkBusDispatch/subs=1000-2         	    1000	        34.52 ns/op	       0 B/op	       0 allocs/op
BenchmarkBusDispatch/subs=1000-2         	    1000	        36.10 ns/op	       0 B/op	       0 allocs/op
BenchmarkBusDispatch/subs=1000-2         	    1000	        35.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkQueryMatcher-2                  	     500	     66229 ns/op
PASS
ok  	autoloop/internal/bus	1.2s
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	if n := len(got["BenchmarkBusDispatch/subs=1000-2"]); n != 3 {
		t.Errorf("dispatch has %d samples, want 3", n)
	}
	if v := got["BenchmarkQueryMatcher-2"][0]; v != 66229 {
		t.Errorf("matcher ns/op = %v", v)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	autoloop/internal/bus	1.2s",
		"goos: linux",
		"BenchmarkBroken only-two-fields",
		"BenchmarkNoUnit 100 42.0 MB/s",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := map[string][]float64{
		"BenchmarkA-2":    {100, 100, 100},
		"BenchmarkB-2":    {100, 100, 100},
		"BenchmarkC-2":    {100, 100, 100},
		"BenchmarkGone-2": {100, 100, 100}, // dropped in head: reported, not failing
	}
	head := map[string][]float64{
		"BenchmarkA-2":   {110, 112, 111}, // +11%: within the 20% budget
		"BenchmarkB-2":   {130, 131, 129}, // +30%: regression
		"BenchmarkC-2":   {70, 72, 71},    // improvement
		"BenchmarkNew-2": {50},            // new: never fails the gate
	}
	report, regressions := compare(base, head, 20)
	if len(regressions) != 1 || regressions[0] != "BenchmarkB-2" {
		t.Fatalf("regressions = %v, want [BenchmarkB-2]", regressions)
	}
	for _, want := range []string{"REGRESSED", "(new, no base)", "BenchmarkC-2", "BenchmarkGone-2", "REMOVED"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestWriteArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	head := map[string][]float64{"BenchmarkA-2": {10, 30, 20}}
	if err := writeArtifact(path, head); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var a artifact
	if err := json.Unmarshal(data, &a); err != nil {
		t.Fatal(err)
	}
	e := a.Benchmarks["BenchmarkA-2"]
	if e.NsPerOp != 20 || e.Runs != 3 {
		t.Errorf("artifact entry = %+v, want median 20 over 3 runs", e)
	}
}
