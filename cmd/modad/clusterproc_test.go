package main

// Real multi-process cluster test: it builds the modad binary, starts one
// coordinator and three workers as separate OS processes talking over
// loopback TCP, drives the operator surface exactly as `nc` would, then
// SIGKILLs a worker that owns loops and asserts the coordinator reschedules
// them onto the survivors within the lease window. Process logs go to
// MODAD_TEST_LOGDIR when set (the CI job uploads them as artifacts on
// failure) or to the test's temp dir otherwise.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"autoloop/internal/control"
)

// procLease is the coordinator lease TTL under test: short enough that
// failover lands well inside the test budget, long enough that three
// processes on a one-core CI box renew reliably at a 250ms heartbeat.
const procLease = 1500 * time.Millisecond

func TestClusterProcessFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	bin := buildModad(t)
	logDir := os.Getenv("MODAD_TEST_LOGDIR")
	if logDir == "" {
		logDir = t.TempDir()
	} else if err := os.MkdirAll(logDir, 0o755); err != nil {
		t.Fatal(err)
	}

	// Six single-loop groups spread across three workers: enough that every
	// worker almost surely owns something and the kill has loops to move.
	specs := filepath.Join(t.TempDir(), "specs.json")
	var sb strings.Builder
	sb.WriteString("[\n")
	for i := 0; i < 6; i++ {
		if i > 0 {
			sb.WriteString(",\n")
		}
		fmt.Fprintf(&sb, `  {"case": "power", "name": "grp%02d", "period": "1m"}`, i)
	}
	sb.WriteString("\n]\n")
	if err := os.WriteFile(specs, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	startProc(t, logDir, "coordinator", bin,
		"-role=coordinator", "-addr=127.0.0.1:0", "-cluster-addr=127.0.0.1:0",
		"-lease="+procLease.String(), "-duration=0", "-specs="+specs)
	opAddr, clusterAddr := coordinatorAddrs(t, filepath.Join(logDir, "coordinator.log"))

	workers := make(map[string]*exec.Cmd, 3)
	for _, id := range []string{"w1", "w2", "w3"} {
		workers[id] = startProc(t, logDir, id, bin,
			"-role=worker", "-join="+clusterAddr, "-node="+id,
			"-heartbeat=250ms", "-duration=0", "-speed=60")
	}

	// All three workers register and every group reaches a running loop.
	waitClusterState(t, opAddr, 60*time.Second, func(members []control.MemberInfo, loops []control.LoopStatus) error {
		alive := 0
		for _, m := range members {
			if m.State == "alive" {
				alive++
			}
		}
		if alive != 3 {
			return fmt.Errorf("%d alive members, want 3", alive)
		}
		return wantLoopsPlaced(loops, 6, "")
	})

	// Kill -9 the worker owning the most groups: no drain, no goodbye — the
	// lease expiry is the only signal the coordinator gets.
	victim := busiestWorker(t, opAddr)
	t.Logf("killing %s (SIGKILL)", victim)
	if err := workers[victim].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = workers[victim].Wait()

	// Failover: within the lease window (generous slack for a loaded CI
	// box), every group is running again on a surviving worker and the
	// victim shows as expired rather than vanishing from the directory.
	deadline := 4*procLease + 20*time.Second
	waitClusterState(t, opAddr, deadline, func(members []control.MemberInfo, loops []control.LoopStatus) error {
		expired := false
		for _, m := range members {
			if m.ID == victim && m.State == "expired" {
				expired = true
			}
		}
		if !expired {
			return fmt.Errorf("victim %s not yet expired in members", victim)
		}
		return wantLoopsPlaced(loops, 6, victim)
	})
}

// buildModad compiles the daemon once into the test's temp dir.
func buildModad(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "modad")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startProc launches one daemon process with stdout+stderr teed to
// <logDir>/<name>.log and registers teardown.
func startProc(t *testing.T, logDir, name, bin string, args ...string) *exec.Cmd {
	t.Helper()
	logf, err := os.Create(filepath.Join(logDir, name+".log"))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		t.Fatalf("start %s: %v", name, err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { _ = cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			_ = cmd.Process.Kill()
			<-done
		}
		logf.Close()
	})
	return cmd
}

var coordAddrRe = regexp.MustCompile(`operators on (\S+), cluster on (\S+)`)

// coordinatorAddrs polls the coordinator's log for the bound addresses (the
// test uses :0 ports, so the kernel picks them).
func coordinatorAddrs(t *testing.T, logPath string) (op, cluster string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		data, _ := os.ReadFile(logPath)
		if m := coordAddrRe.FindStringSubmatch(string(data)); m != nil {
			return m[1], m[2]
		}
		time.Sleep(100 * time.Millisecond)
	}
	data, _ := os.ReadFile(logPath)
	t.Fatalf("coordinator never printed its addresses; log:\n%s", data)
	return "", ""
}

// wireEnvelope is the envelope shape read back off the TCP bridge.
type wireEnvelope struct {
	Topic   string          `json:"topic"`
	Payload json.RawMessage `json:"payload"`
}

// controlRequest performs one control.v1 request over a fresh TCP
// connection and returns the matching reply.
func controlRequest(addr string, req control.Request) (control.Reply, error) {
	var rep control.Reply
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return rep, err
	}
	defer conn.Close()
	line, err := json.Marshal(map[string]interface{}{"topic": control.TopicRequest, "payload": req})
	if err != nil {
		return rep, err
	}
	if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
		return rep, err
	}
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var env wireEnvelope
		if json.Unmarshal(sc.Bytes(), &env) != nil || env.Topic != control.TopicReply {
			continue
		}
		if err := json.Unmarshal(env.Payload, &rep); err != nil {
			return rep, err
		}
		if rep.ID == req.ID {
			return rep, nil
		}
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	return rep, fmt.Errorf("connection closed before a reply to %q", req.ID)
}

// waitClusterState polls members+list until check passes or the deadline
// lapses, failing with the last error.
func waitClusterState(t *testing.T, addr string, timeout time.Duration,
	check func([]control.MemberInfo, []control.LoopStatus) error) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var lastErr error
	for i := 0; time.Now().Before(deadline); i++ {
		mrep, err := controlRequest(addr, control.Request{Op: control.OpMembers, ID: fmt.Sprintf("m%d", i)})
		if err == nil {
			var lrep control.Reply
			lrep, err = controlRequest(addr, control.Request{Op: control.OpList, ID: fmt.Sprintf("l%d", i)})
			if err == nil {
				if lastErr = check(mrep.Members, lrep.Loops); lastErr == nil {
					return
				}
			}
		}
		if err != nil {
			lastErr = err
		}
		time.Sleep(300 * time.Millisecond)
	}
	t.Fatalf("cluster never reached the expected state: %v", lastErr)
}

// wantLoopsPlaced asserts n loops are running, each stamped with an owner,
// and none owned by exclude.
func wantLoopsPlaced(loops []control.LoopStatus, n int, exclude string) error {
	if len(loops) != n {
		return fmt.Errorf("%d loops listed, want %d", len(loops), n)
	}
	for _, l := range loops {
		if l.Worker == "" {
			return fmt.Errorf("loop %s has no worker stamp", l.Name)
		}
		if exclude != "" && l.Worker == exclude {
			return fmt.Errorf("loop %s still on killed worker %s", l.Name, exclude)
		}
		if l.State != "running" && l.State != "created" {
			return fmt.Errorf("loop %s in state %s", l.Name, l.State)
		}
	}
	return nil
}

// busiestWorker returns the worker owning the most listed loops.
func busiestWorker(t *testing.T, addr string) string {
	t.Helper()
	rep, err := controlRequest(addr, control.Request{Op: control.OpList, ID: "busiest"})
	if err != nil || !rep.OK {
		t.Fatalf("list: %v (%+v)", err, rep)
	}
	counts := map[string]int{}
	for _, l := range rep.Loops {
		counts[l.Worker]++
	}
	best, n := "", 0
	for w, c := range counts {
		if c > n {
			best, n = w, c
		}
	}
	if best == "" {
		t.Fatal("no owned loops to fail over")
	}
	return best
}
