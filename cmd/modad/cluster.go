// Multi-node modad: -role=coordinator runs the placement/arbitration brain
// with no simulation of its own, -role=worker runs the usual simulation and
// loop stack but spawns only what the coordinator assigns. Both roles reuse
// the single-process building blocks — the bus bridge, the control service,
// the tsdb service — so the operator-facing wire surface is unchanged.
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/bus"
	"autoloop/internal/cases"
	"autoloop/internal/cluster"
	"autoloop/internal/control"
	"autoloop/internal/facility"
	"autoloop/internal/fleet"
	"autoloop/internal/gateway"
	"autoloop/internal/hw"
	"autoloop/internal/knowledge"
	"autoloop/internal/pfs"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
	"autoloop/internal/wal"
)

// clusterConfig carries the parsed flag values into the coordinator and
// worker entry points.
type clusterConfig struct {
	Role       string
	Addr       string // operator-facing TCP bridge (coordinator)
	HTTPAddr   string
	ReadTokens []string
	OpTokens   []string
	Speed      int
	Duration   time.Duration
	SpecsPath  string
	WALDir     string
	Fsync      string

	Join        string // worker: coordinator cluster address
	ClusterAddr string // coordinator: address workers join
	Node        string // worker: unique node name
	Lease       time.Duration
	Grace       time.Duration // suspect window past the lease before failover
	Heartbeat   time.Duration
	ArbWindow   time.Duration
}

// runCoordinator is the cluster brain: it owns the placement ring, the lease
// table, the cross-node arbiter, and the scatter-gather layer; it runs no
// simulation. Operators connect to -addr (or the HTTP gateway) and see the
// usual control.v1 and tsdb.query surface; workers join on -cluster-addr.
func runCoordinator(cfg clusterConfig) error {
	specsJSON := []byte(defaultSpecs)
	if cfg.SpecsPath != "" {
		data, err := os.ReadFile(cfg.SpecsPath)
		if err != nil {
			return err
		}
		specsJSON = data
	}
	specs, err := control.ParseSpecs(specsJSON)
	if err != nil {
		return err
	}

	b := bus.New()

	// The placement ledger: every spec admission, assignment, ack, and lease
	// expiry is journaled, so a restarted coordinator rebuilds its table and
	// reconciles against worker re-Hellos instead of re-spawning the fleet.
	var w *wal.WAL
	if cfg.WALDir != "" {
		pol, err := wal.ParseSyncPolicy(cfg.Fsync)
		if err != nil {
			return err
		}
		if w, err = wal.Open(cfg.WALDir, wal.Options{Sync: pol}); err != nil {
			return err
		}
		defer w.Close()
	}

	coord := cluster.NewCoordinator(b, cluster.Options{
		Source:    "coordinator",
		Lease:     cfg.Lease,
		Grace:     cfg.Grace,
		ArbWindow: cfg.ArbWindow,
		Registry:  cases.NewRegistry(),
		Ledger:    w,
	})
	defer coord.Close()

	recovered := 0
	if w != nil {
		r, err := w.Replay(1)
		if err != nil {
			return err
		}
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				r.Close()
				return fmt.Errorf("ledger replay: %w", err)
			}
			if rec.Kind != wal.KindClusterEvent {
				continue
			}
			if err := coord.ApplyWAL(rec.Payload); err != nil {
				r.Close()
				return fmt.Errorf("ledger replay seq %d: %w", rec.Seq, err)
			}
			recovered++
		}
		r.Close()
		coord.RestoreDone()
		if recovered > 0 {
			fmt.Printf("modad: coordinator recovered %d ledger records (%d specs) from %s\n",
				recovered, coord.Stats().Specs, cfg.WALDir)
		}
	}

	// A fresh coordinator admits the configured specs; a recovered one
	// already holds its table (re-admitting would be rejected as duplicates).
	if recovered == 0 {
		for _, spec := range specs {
			if _, err := coord.AddSpec(spec); err != nil {
				return err
			}
		}
	}

	// Two bridge servers on one bus: workers join the cluster address (and
	// receive only coordinator-to-worker topics); operators get everything.
	csrv, err := bus.NewServer(cfg.ClusterAddr, cluster.CoordExportPattern, b)
	if err != nil {
		return err
	}
	defer csrv.Close()
	srv, err := bus.NewServer(cfg.Addr, "*", b)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("modad: coordinator serving operators on %s, cluster on %s (%d specs pending placement)\n",
		srv.Addr(), csrv.Addr(), coord.Stats().Specs)

	if cfg.HTTPAddr != "" {
		gw := gateway.New(gateway.Options{
			Cluster: coord, Bus: b, WAL: w, WireServer: srv,
			ReadTokens:     cfg.ReadTokens,
			OperatorTokens: cfg.OpTokens,
		})
		if err := gw.Serve(cfg.HTTPAddr); err != nil {
			return err
		}
		defer gw.Close()
		fmt.Printf("modad: http gateway on http://%s (/v1/query, /v1/control/<op>, /v1/stream, /metrics)\n", gw.Addr())
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	start := time.Now()
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
loop:
	for {
		select {
		case <-tick.C:
			if cfg.Duration > 0 && time.Since(start) >= cfg.Duration {
				break loop
			}
			coord.Tick(time.Now())
		case sig := <-sigs:
			fmt.Printf("modad: %v: shutting down\n", sig)
			break loop
		}
	}

	if w != nil {
		if err := w.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "modad: wal close:", err)
		}
	}
	s := coord.Stats()
	fmt.Printf("modad: coordinator done; %d members (%d alive, %d suspect), %d specs (%d placed), %d assigns, %d failovers, %d fanouts (%d partial), %d digests (%d denied, %d backfilled), %d ledger faults\n",
		s.Members, s.Alive, s.Suspect, s.Specs, s.Placed, s.Assigns, s.Failovers,
		s.Fanouts, s.ScatterPartials, s.DigestsSeen, s.DigestsDenied, s.DigestsBackfilled, s.LedgerFaults)
	return nil
}

// runWorker is one simulation slice of the facility: the same engine,
// telemetry, TSDB, and control stack the single-process daemon runs — but
// no specs of its own. It joins the coordinator, renews its lease, and
// spawns whatever the coordinator assigns.
func runWorker(cfg clusterConfig) error {
	if cfg.Join == "" {
		return fmt.Errorf("-role=worker needs -join=<coordinator cluster address>")
	}
	id := cfg.Node
	if id == "" {
		host, _ := os.Hostname()
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	engine := sim.NewEngine(1)
	db := tsdb.New(2 * time.Hour)
	b := bus.New()
	for _, rule := range []tsdb.RollupRule{
		{Metric: "node.temp.celsius", Step: 5 * time.Minute, Agg: tsdb.AggMean, Retention: 24 * time.Hour},
		{Metric: "facility.pue", Step: 5 * time.Minute, Agg: tsdb.AggMean, Retention: 24 * time.Hour},
		{Metric: "pfs.ost.lat_ms", Step: 5 * time.Minute, Agg: tsdb.AggP95, Retention: 24 * time.Hour},
	} {
		if err := db.AddRollup(rule); err != nil {
			return err
		}
	}
	svc := tsdb.NewService(db).Attach(b, id)
	defer svc.Close()

	ccfg := hw.DefaultConfig()
	ccfg.Nodes = 16
	cl := hw.New(engine, ccfg)
	plant := facility.New(engine, facility.DefaultConfig(), cl)
	fs := pfs.New(engine, pfs.Config{OSTs: 8, OSTBandwidthMBps: 300, DefaultStripeCount: 4})
	scheduler := sched.New(engine, cl.UpNodes(), sched.DefaultExtensionPolicy())
	runtime := app.NewRuntime(engine, db, fs, cl)
	runtime.OnComplete = func(inst *app.Instance) { scheduler.JobFinished(inst.Job.ID) }
	scheduler.SetHooks(runtime.Start, runtime.Kill)

	reg := telemetry.NewRegistry()
	reg.Register(cl.Collector())
	reg.Register(plant.Collector())
	reg.Register(fs.Collector())
	reg.Register(scheduler.Collector())
	pipe := telemetry.NewPipeline(reg, db).PublishTo(b, id)
	q, _ := pipe.Querier()

	env := &control.Env{
		Querier:   q,
		Plant:     plant,
		Scheduler: scheduler,
		Apps:      runtime,
		Cluster:   cl,
		FS:        fs,
		Knowledge: knowledge.NewBase(),
		Clock:     sim.VirtualClock{Engine: engine},
		Rng:       rand.New(rand.NewSource(1)),
		Bus:       b,
	}
	coord := fleet.New(0).PublishTo(b, id)
	ctl := control.NewService(cases.NewRegistry(), env, coord, time.Minute).Attach(b, id)
	defer ctl.Close()
	pipe.Drive(ctl, 2)
	engine.Every(engine.Now()+30*time.Second, 30*time.Second, func() bool {
		pipe.Sample(engine.Now())
		return true
	})

	// The worker's own synthetic workload keeps its telemetry slice alive,
	// so scattered queries return per-worker series.
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("steady%02d", i)
		runtime.RegisterSpec(name, app.Spec{
			Name: name, TotalIters: 1 << 20,
			IterTime: sim.LogNormal{MeanV: time.Minute, CV: 0.2},
			IOEvery:  7, IOSizeMB: 256, StripeCount: 4,
		})
		if _, err := scheduler.Submit(name, "ops", 2, 1000*time.Hour, 0); err != nil {
			return err
		}
	}

	// The bridge link is maintained by a Reconnector: a dropped link is
	// redialed under capped exponential backoff with full jitter (a fleet of
	// workers redialing a restarted coordinator spreads out instead of
	// arriving in lockstep), behind a circuit breaker that slows probing to
	// its cooldown once the coordinator has been dead for a while. Link
	// transitions feed the agent's degraded mode: while the coordinator is
	// unreachable the loops keep ticking under local fail-open arbitration,
	// and on rejoin the agent re-Hellos and backfills its buffered digests.
	var agentRef atomic.Pointer[cluster.Agent]
	rc, err := bus.NewReconnector(cfg.Join, cluster.WorkerExportPattern, b, bus.ReconnectOptions{
		OnState: func(up bool) {
			if a := agentRef.Load(); a != nil {
				a.SetLinkState(up)
			}
		},
		Logf: func(format string, args ...any) { fmt.Printf("modad: "+format+"\n", args...) },
	})
	if err != nil {
		return fmt.Errorf("join %s: %w", cfg.Join, err)
	}
	defer rc.Close()

	agent, err := cluster.NewAgent(b, ctl, svc, cluster.AgentOptions{
		ID:        id,
		Heartbeat: cfg.Heartbeat,
		Stats: func() (int, uint64, int) {
			return db.NumSeries(), db.Appended(), coord.Metrics().Rounds
		},
		Logf: func(format string, args ...any) { fmt.Printf("modad: "+format+"\n", args...) },
	})
	if err != nil {
		return err
	}
	defer agent.Close()
	agentRef.Store(agent)
	fmt.Printf("modad: worker %s joined coordinator at %s (speed %dx)\n", id, cfg.Join, cfg.Speed)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	vbase := engine.Now()
	start := time.Now()
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
loop:
	for {
		select {
		case <-tick.C:
			wall := time.Since(start)
			if cfg.Duration > 0 && wall >= cfg.Duration {
				break loop
			}
			engine.RunUntil(vbase + time.Duration(int64(wall)*int64(cfg.Speed)))
		case sig := <-sigs:
			fmt.Printf("modad: %v: shutting down\n", sig)
			break loop
		}
	}

	agent.Close()
	cm := coord.Metrics()
	am := agent.Metrics()
	dials, failures, drops := rc.Stats()
	fmt.Printf("modad: worker %s done; %d series, %d samples stored; fleet ran %d rounds (%d actions, %d arbitrated, %d remote-denied); link: %d dials (%d failed, %d drops), %d degraded spells (%d rounds, %d digests backfilled)\n",
		id, db.NumSeries(), db.Appended(), cm.Rounds, cm.Planned, cm.Arbitrated, cm.Remote,
		dials, failures, drops, am.DegradedEntries, am.DegradedRounds, am.DigestsBackfilled)
	return nil
}
