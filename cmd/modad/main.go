// Command modad is a small MODA telemetry daemon: it runs a simulated HPC
// system in real time (wall clock, scaled), samples all sensor domains into
// a TSDB, and serves the telemetry stream, loop audit events, and the
// control.v1 runtime API over TCP as newline-delimited JSON envelopes — the
// interoperability surface the paper's question (ii) asks for. A client can
// connect with `nc`, watch the same envelopes an autonomy loop consumes,
// and manage the fleet: list loops, spawn new ones from JSON specs, pause
// and resume them, change operating modes, and approve or deny pending
// human-in-the-loop actions.
//
// Usage:
//
//	modad -addr 127.0.0.1:7675 -speed 60 -duration 2m [-specs file.json]
//
// speed compresses virtual time: 60 means one wall second carries one
// virtual minute. The fleet is built through the control registry from JSON
// loop specs; -specs replaces the built-in pair (power + ost).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/bus"
	"autoloop/internal/cases"
	"autoloop/internal/cluster"
	"autoloop/internal/control"
	"autoloop/internal/facility"
	"autoloop/internal/fleet"
	"autoloop/internal/knowledge"
	"autoloop/internal/pfs"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

// defaultSpecs is the fleet modad deploys when no -specs file is given:
// the facility cooling loop and the OST-avoidance loop, both autonomous,
// at the control round cadence.
const defaultSpecs = `[
  {"case": "power", "period": "1m"},
  {"case": "ost", "period": "1m"}
]`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "modad:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:7675", "TCP address to serve envelopes on")
	speed := flag.Int("speed", 60, "virtual seconds per wall second")
	duration := flag.Duration("duration", 2*time.Minute, "wall-clock run time (0 = forever)")
	specsPath := flag.String("specs", "", "JSON loop-spec file replacing the built-in fleet")
	flag.Parse()

	specsJSON := []byte(defaultSpecs)
	if *specsPath != "" {
		data, err := os.ReadFile(*specsPath)
		if err != nil {
			return err
		}
		specsJSON = data
	}
	specs, err := control.ParseSpecs(specsJSON)
	if err != nil {
		return err
	}

	engine := sim.NewEngine(1)
	db := tsdb.New(2 * time.Hour)
	b := bus.New()

	// Continuous rollups: coarse aggregates are maintained at append time
	// and stay queryable for a day, long past the 2h raw retention.
	for _, rule := range []tsdb.RollupRule{
		{Metric: "node.temp.celsius", Step: 5 * time.Minute, Agg: tsdb.AggMean, Retention: 24 * time.Hour},
		{Metric: "facility.pue", Step: 5 * time.Minute, Agg: tsdb.AggMean, Retention: 24 * time.Hour},
		{Metric: "pfs.ost.lat_ms", Step: 5 * time.Minute, Agg: tsdb.AggP95, Retention: 24 * time.Hour},
	} {
		if err := db.AddRollup(rule); err != nil {
			return err
		}
	}

	// The query endpoint: clients publish tsdb.QueryRequest payloads on
	// "tsdb.query" (one JSON line over the TCP bridge) and receive
	// "tsdb.result" envelopes — raw ranges, instant lookups, or registered
	// rollups via step_ms/agg.
	svc := tsdb.NewService(db).Attach(b, "modad")
	defer svc.Close()

	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = 16
	cl := cluster.New(engine, ccfg)
	plant := facility.New(engine, facility.DefaultConfig(), cl)
	fs := pfs.New(engine, pfs.Config{OSTs: 8, OSTBandwidthMBps: 300, DefaultStripeCount: 4})
	scheduler := sched.New(engine, cl.UpNodes(), sched.DefaultExtensionPolicy())
	runtime := app.NewRuntime(engine, db, fs, cl)
	runtime.OnComplete = func(inst *app.Instance) { scheduler.JobFinished(inst.Job.ID) }
	scheduler.SetHooks(runtime.Start, runtime.Kill)

	reg := telemetry.NewRegistry()
	reg.Register(cl.Collector())
	reg.Register(plant.Collector())
	reg.Register(fs.Collector())
	reg.Register(scheduler.Collector())

	// One batched pipeline stores every gathered point and fans the batch
	// out on the bus — a single ingest pass and a single PublishBatch per
	// sampling round, with each point on "telemetry.<name>".
	pipe := telemetry.NewPipeline(reg, db).PublishTo(b, "modad")
	q, _ := pipe.Querier() // the pipeline's sink is the TSDB

	// The response side is spec-driven: a control service owns the fleet
	// coordinator and spawns every loop from its JSON spec through the case
	// registry; the same service answers control.v1 requests from the wire
	// and runs the pending-approval queue for human-in-the-loop actions.
	env := &control.Env{
		Querier:   q,
		Plant:     plant,
		Scheduler: scheduler,
		Apps:      runtime,
		Cluster:   cl,
		FS:        fs,
		Knowledge: knowledge.NewBase(),
		Clock:     sim.VirtualClock{Engine: engine},
		Rng:       rand.New(rand.NewSource(1)),
		Bus:       b,
	}
	coord := fleet.New(0).PublishTo(b, "modad")
	ctl := control.NewService(cases.NewRegistry(), env, coord, time.Minute).Attach(b, "modad")
	defer ctl.Close()
	for _, spec := range specs {
		if _, err := ctl.Spawn(spec); err != nil {
			return err
		}
	}
	// One control round every 2nd sample = every virtual minute. Loop
	// lifecycle envelopes ("loop.<name>.*"), coordinator round summaries
	// ("fleet.round", "fleet.conflict"), and control.v1 traffic travel the
	// same bus as the telemetry.
	pipe.Drive(ctl, 2)

	engine.Every(30*time.Second, 30*time.Second, func() bool {
		pipe.Sample(engine.Now())
		return true
	})

	// A rolling synthetic workload keeps the signals alive.
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("steady%02d", i)
		runtime.RegisterSpec(name, app.Spec{
			Name: name, TotalIters: 1 << 20,
			IterTime: sim.LogNormal{MeanV: time.Minute, CV: 0.2},
			IOEvery:  7, IOSizeMB: 256, StripeCount: 4,
		})
		if _, err := scheduler.Submit(name, "ops", 2, 1000*time.Hour, 0); err != nil {
			return err
		}
	}

	srv, err := bus.NewServer(*addr, "*", b)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("modad: serving telemetry, loop, fleet, and control.v1 envelopes on %s (speed %dx, %d loops)\n",
		srv.Addr(), *speed, coord.Len())

	// Drive the simulation against the wall clock.
	start := time.Now()
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	for range tick.C {
		wall := time.Since(start)
		if *duration > 0 && wall >= *duration {
			break
		}
		engine.RunUntil(time.Duration(int64(wall) * int64(*speed)))
	}
	cm := coord.Metrics()
	fmt.Printf("modad: done; %d series, %d samples stored; fleet ran %d rounds (%d actions, %d arbitrated)\n",
		db.NumSeries(), db.Appended(), cm.Rounds, cm.Planned, cm.Arbitrated)
	return nil
}
