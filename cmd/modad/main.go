// Command modad is a small MODA telemetry daemon: it runs a simulated HPC
// system in real time (wall clock, scaled), samples all sensor domains into
// a TSDB, and serves the telemetry stream plus loop audit events over TCP as
// newline-delimited JSON envelopes — the interoperability surface the
// paper's question (ii) asks for. A client can connect with `nc` and watch
// the same envelopes an autonomy loop consumes.
//
// Usage:
//
//	modad -addr 127.0.0.1:7675 -speed 60 -duration 2m
//
// speed compresses virtual time: 60 means one wall second carries one
// virtual minute.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/bus"
	"autoloop/internal/cases/ostcase"
	"autoloop/internal/cases/powercase"
	"autoloop/internal/cluster"
	"autoloop/internal/facility"
	"autoloop/internal/fleet"
	"autoloop/internal/pfs"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7675", "TCP address to serve envelopes on")
	speed := flag.Int("speed", 60, "virtual seconds per wall second")
	duration := flag.Duration("duration", 2*time.Minute, "wall-clock run time (0 = forever)")
	flag.Parse()

	engine := sim.NewEngine(1)
	db := tsdb.New(2 * time.Hour)
	b := bus.New()

	// Continuous rollups: coarse aggregates are maintained at append time
	// and stay queryable for a day, long past the 2h raw retention.
	for _, rule := range []tsdb.RollupRule{
		{Metric: "node.temp.celsius", Step: 5 * time.Minute, Agg: tsdb.AggMean, Retention: 24 * time.Hour},
		{Metric: "facility.pue", Step: 5 * time.Minute, Agg: tsdb.AggMean, Retention: 24 * time.Hour},
		{Metric: "pfs.ost.lat_ms", Step: 5 * time.Minute, Agg: tsdb.AggP95, Retention: 24 * time.Hour},
	} {
		if err := db.AddRollup(rule); err != nil {
			fmt.Fprintln(os.Stderr, "modad:", err)
			os.Exit(1)
		}
	}

	// The query endpoint: clients publish tsdb.QueryRequest payloads on
	// "tsdb.query" (one JSON line over the TCP bridge) and receive
	// "tsdb.result" envelopes — raw ranges, instant lookups, or registered
	// rollups via step_ms/agg.
	svc := tsdb.NewService(db).Attach(b, "modad")
	defer svc.Close()

	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = 16
	cl := cluster.New(engine, ccfg)
	plant := facility.New(engine, facility.DefaultConfig(), cl)
	fs := pfs.New(engine, pfs.Config{OSTs: 8, OSTBandwidthMBps: 300, DefaultStripeCount: 4})
	scheduler := sched.New(engine, cl.UpNodes(), sched.DefaultExtensionPolicy())
	runtime := app.NewRuntime(engine, db, fs, cl)
	runtime.OnComplete = func(inst *app.Instance) { scheduler.JobFinished(inst.Job.ID) }
	scheduler.SetHooks(runtime.Start, runtime.Kill)

	reg := telemetry.NewRegistry()
	reg.Register(cl.Collector())
	reg.Register(plant.Collector())
	reg.Register(fs.Collector())
	reg.Register(scheduler.Collector())

	// One batched pipeline stores every gathered point and fans the batch
	// out on the bus — a single ingest pass and a single PublishBatch per
	// sampling round, with each point on "telemetry.<name>".
	pipe := telemetry.NewPipeline(reg, db).PublishTo(b, "modad")

	// The response side: the pipeline drives a fleet coordinator (one round
	// every 2nd sample = every virtual minute) running the power and OST
	// loops concurrently. Their lifecycle envelopes ("loop.<name>.*") and
	// the coordinator's round summaries ("fleet.round", "fleet.conflict")
	// travel the same bus as the telemetry.
	q, _ := pipe.Querier() // the pipeline's sink is the TSDB
	power := powercase.New(powercase.DefaultConfig(), q, plant)
	ost := ostcase.New(ostcase.DefaultConfig(), q, scheduler, runtime)
	powerLoop, ostLoop := power.Loop(), ost.Loop()
	powerLoop.Bus = b
	ostLoop.Bus = b
	coord := fleet.New(0).PublishTo(b, "modad")
	coord.Add(powerLoop, powercase.FleetPriority)
	coord.Add(ostLoop, ostcase.FleetPriority)
	pipe.Drive(coord, 2)

	engine.Every(30*time.Second, 30*time.Second, func() bool {
		pipe.Sample(engine.Now())
		return true
	})

	// A rolling synthetic workload keeps the signals alive.
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("steady%02d", i)
		runtime.RegisterSpec(name, app.Spec{
			Name: name, TotalIters: 1 << 20,
			IterTime: sim.LogNormal{MeanV: time.Minute, CV: 0.2},
			IOEvery:  7, IOSizeMB: 256, StripeCount: 4,
		})
		if _, err := scheduler.Submit(name, "ops", 2, 1000*time.Hour, 0); err != nil {
			fmt.Fprintln(os.Stderr, "modad:", err)
			os.Exit(1)
		}
	}

	srv, err := bus.NewServer(*addr, "*", b)
	if err != nil {
		fmt.Fprintln(os.Stderr, "modad:", err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("modad: serving telemetry, loop, and fleet envelopes on %s (speed %dx)\n", srv.Addr(), *speed)

	// Drive the simulation against the wall clock.
	start := time.Now()
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	for range tick.C {
		wall := time.Since(start)
		if *duration > 0 && wall >= *duration {
			break
		}
		engine.RunUntil(time.Duration(int64(wall) * int64(*speed)))
	}
	cm := coord.Metrics()
	fmt.Printf("modad: done; %d series, %d samples stored; fleet ran %d rounds (%d actions, %d arbitrated)\n",
		db.NumSeries(), db.Appended(), cm.Rounds, cm.Planned, cm.Arbitrated)
}
