// Command modad is a small MODA telemetry daemon: it runs a simulated HPC
// system in real time (wall clock, scaled), samples all sensor domains into
// a TSDB, and serves the telemetry stream, loop audit events, and the
// control.v1 runtime API over TCP as newline-delimited JSON envelopes — the
// interoperability surface the paper's question (ii) asks for. A client can
// connect with `nc`, watch the same envelopes an autonomy loop consumes,
// and manage the fleet: list loops, spawn new ones from JSON specs, pause
// and resume them, change operating modes, and approve or deny pending
// human-in-the-loop actions.
//
// Usage:
//
//	modad -addr 127.0.0.1:7675 -speed 60 -duration 2m [-specs file.json]
//	      [-wal-dir dir] [-fsync batch|always|none] [-snapshot-every 10m]
//	      [-http 127.0.0.1:7676] [-http-read-token t1,t2] [-http-op-token t3]
//
// Scenario batch mode runs a declarative chaos scenario instead of serving:
//
//	modagen scenario -preset midsize -seed 1 > midsize.json
//	modad -scenario midsize.json
//
// The scenario file describes the synthetic facility, workload mix, loop
// fleet, and fault-injection schedule (see internal/scenario); modad
// assembles the stack, runs it to the horizon on virtual time, prints the
// deterministic score table (detection, MTTR, false-positive rate, action
// efficiency), and exits.
//
// Multi-node mode splits the same daemon across processes:
//
//	modad -role=coordinator -addr :7675 -cluster-addr :7677 [-wal-dir dir]
//	modad -role=worker -join 127.0.0.1:7677 -node w1
//
// The coordinator places loop specs across the joined workers by consistent
// hashing, tracks worker leases (failing loops over on expiry), arbitrates
// contradicting actions across nodes, and answers operator list/query
// requests by scatter-gathering the workers — the operator surface (TCP and
// HTTP alike) is identical to a single process. Workers run the simulation
// and loop stack, but spawn only what the coordinator assigns.
//
// With -http the same query and control vocabulary is also served over
// HTTP: POST/GET /v1/query, POST /v1/control/<op>, live server-sent events
// on GET /v1/stream, and Prometheus-style counters on /metrics. Bearer
// tokens split read-only from operator access; with no tokens the gateway
// is open, like the TCP bridge.
//
// speed compresses virtual time: 60 means one wall second carries one
// virtual minute. The fleet is built through the control registry from JSON
// loop specs; -specs replaces the built-in pair (power + ost).
//
// With -wal-dir the daemon is durable: every accepted TSDB append, every
// knowledge-base mutation, and the loop/fleet/control bus traffic are
// journaled to a segmented write-ahead log, and the whole daemon state
// (TSDB, knowledge, control plane) is snapshotted periodically. On restart
// with the same -wal-dir, the daemon restores the newest snapshot, replays
// the WAL tail, re-spawns its fleet in the recorded lifecycle states, and
// resumes — including the pending human-approval queue. SIGINT/SIGTERM
// triggers a graceful shutdown: a final snapshot is written while the fleet
// is still live, the loops drain, and the log is fsynced and closed.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/bus"
	"autoloop/internal/cases"
	"autoloop/internal/cluster"
	"autoloop/internal/control"
	"autoloop/internal/facility"
	"autoloop/internal/fleet"
	"autoloop/internal/gateway"
	"autoloop/internal/hw"
	"autoloop/internal/knowledge"
	"autoloop/internal/pfs"
	"autoloop/internal/scenario"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
	"autoloop/internal/wal"
)

// defaultSpecs is the fleet modad deploys when no -specs file is given:
// the facility cooling loop and the OST-avoidance loop, both autonomous,
// at the control round cadence.
const defaultSpecs = `[
  {"case": "power", "period": "1m"},
  {"case": "ost", "period": "1m"}
]`

// daemonSnapshot is the combined snapshot payload stored under the "modad"
// snapshot name: the WAL sequence it covers, the virtual time it was taken
// at, and each subsystem's own serialized state.
type daemonSnapshot struct {
	Seq       uint64          `json:"seq"`
	Now       time.Duration   `json:"now"`
	TSDB      json.RawMessage `json:"tsdb"`
	Knowledge json.RawMessage `json:"knowledge"`
	Control   json.RawMessage `json:"control"`
}

// journaledTopic selects the bus traffic worth journaling: loop lifecycle
// and audit events, fleet round summaries, and control.v1 requests and
// resolutions. Telemetry topics are excluded — every accepted point is
// already journaled by the TSDB, so recording the fan-out envelopes would
// double the log for no recovery value.
func journaledTopic(topic string) bool {
	return strings.HasPrefix(topic, "loop.") ||
		strings.HasPrefix(topic, "fleet.") ||
		strings.HasPrefix(topic, "control.v1.")
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "modad:", err)
		os.Exit(1)
	}
}

// runScenario is the -scenario batch path: the full stack assembled from
// one declarative document, run to its horizon, scored, and printed.
func runScenario(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := scenario.Decode(data)
	if err != nil {
		return err
	}
	rep, err := scenario.Run(spec, cases.NewRegistry())
	if err != nil {
		return err
	}
	fmt.Print(rep.Table())
	return nil
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:7675", "TCP address to serve envelopes on")
	httpAddr := flag.String("http", "", "HTTP gateway address (empty = no HTTP; e.g. 127.0.0.1:7676)")
	httpReadTok := flag.String("http-read-token", "", "comma-separated read-only bearer tokens for the HTTP gateway")
	httpOpTok := flag.String("http-op-token", "", "comma-separated operator bearer tokens for the HTTP gateway (no tokens at all = open access)")
	speed := flag.Int("speed", 60, "virtual seconds per wall second")
	duration := flag.Duration("duration", 2*time.Minute, "wall-clock run time (0 = forever)")
	specsPath := flag.String("specs", "", "JSON loop-spec file replacing the built-in fleet")
	scenarioPath := flag.String("scenario", "", "scenario file: assemble the described facility, run it to its horizon on virtual time, print the score table, and exit (batch mode; see modagen scenario)")
	walDir := flag.String("wal-dir", "", "write-ahead-log directory (empty = no durability)")
	fsyncMode := flag.String("fsync", "batch", "WAL fsync policy: batch, always, or none")
	snapEvery := flag.Duration("snapshot-every", 10*time.Minute, "virtual time between snapshots")
	role := flag.String("role", "single", "process role: single (everything in one binary), coordinator, or worker")
	join := flag.String("join", "", "worker: coordinator cluster address to join (required with -role=worker)")
	clusterAddr := flag.String("cluster-addr", "127.0.0.1:7677", "coordinator: TCP address workers join")
	node := flag.String("node", "", "worker: unique node name (default <hostname>-<pid>)")
	leaseTTL := flag.Duration("lease", cluster.DefaultLeaseTTL, "coordinator: worker lease TTL before a worker turns suspect")
	leaseGrace := flag.Duration("lease-grace", 0, "coordinator: suspect window past the lease before failover (0 = one extra lease, negative = none)")
	heartbeat := flag.Duration("heartbeat", cluster.DefaultHeartbeat, "worker: lease-renewal period")
	arbWindow := flag.Duration("arb-window", cluster.DefaultArbWindow, "coordinator: cross-node arbitration grant window")
	flag.Parse()

	// Scenario batch mode: no serving surface, no durability, no wall clock —
	// decode, assemble, run to the horizon, print the deterministic score
	// table, exit.
	if *scenarioPath != "" {
		if *role != "single" {
			return fmt.Errorf("-scenario is a batch mode, incompatible with -role=%s", *role)
		}
		if *walDir != "" {
			return fmt.Errorf("-scenario is a batch mode, incompatible with -wal-dir")
		}
		return runScenario(*scenarioPath)
	}

	// Coordinator and worker roles branch off here; the single-process path
	// below is untouched by clustering, so dev-mode behavior (and its fixed
	// -seed experiment output) stays byte-identical.
	if *role != "single" {
		cfg := clusterConfig{
			Role: *role, Addr: *addr, HTTPAddr: *httpAddr,
			ReadTokens: splitTokens(*httpReadTok), OpTokens: splitTokens(*httpOpTok),
			Speed: *speed, Duration: *duration, SpecsPath: *specsPath,
			WALDir: *walDir, Fsync: *fsyncMode,
			Join: *join, ClusterAddr: *clusterAddr, Node: *node,
			Lease: *leaseTTL, Grace: *leaseGrace, Heartbeat: *heartbeat, ArbWindow: *arbWindow,
		}
		switch *role {
		case "coordinator":
			return runCoordinator(cfg)
		case "worker":
			return runWorker(cfg)
		default:
			return fmt.Errorf("unknown -role %q (want single, coordinator, or worker)", *role)
		}
	}

	specsJSON := []byte(defaultSpecs)
	if *specsPath != "" {
		data, err := os.ReadFile(*specsPath)
		if err != nil {
			return err
		}
		specsJSON = data
	}
	specs, err := control.ParseSpecs(specsJSON)
	if err != nil {
		return err
	}

	// Durability, part 1: open the log (repairing any torn tail left by a
	// crash) and read the newest valid snapshot BEFORE the simulation is
	// built, because the virtual clock must resume from the snapshot's time
	// — every subsystem constructed below schedules against it.
	var w *wal.WAL
	var snap *daemonSnapshot
	if *walDir != "" {
		pol, err := wal.ParseSyncPolicy(*fsyncMode)
		if err != nil {
			return err
		}
		if w, err = wal.Open(*walDir, wal.Options{Sync: pol}); err != nil {
			return err
		}
		defer w.Close()
		payload, _, ok, err := wal.LatestSnapshot(*walDir, "modad")
		if err != nil {
			return err
		}
		if ok {
			snap = &daemonSnapshot{}
			if err := json.Unmarshal(payload, snap); err != nil {
				return fmt.Errorf("decode snapshot: %w", err)
			}
		}
	}

	engine := sim.NewEngine(1)
	if snap != nil && snap.Now > 0 {
		engine.RunUntil(snap.Now) // nothing scheduled yet: jumps the clock
	}
	db := tsdb.New(2 * time.Hour)
	b := bus.New()

	// Continuous rollups: coarse aggregates are maintained at append time
	// and stay queryable for a day, long past the 2h raw retention. Rules
	// are registered before any restore so recovered series re-attach them.
	for _, rule := range []tsdb.RollupRule{
		{Metric: "node.temp.celsius", Step: 5 * time.Minute, Agg: tsdb.AggMean, Retention: 24 * time.Hour},
		{Metric: "facility.pue", Step: 5 * time.Minute, Agg: tsdb.AggMean, Retention: 24 * time.Hour},
		{Metric: "pfs.ost.lat_ms", Step: 5 * time.Minute, Agg: tsdb.AggP95, Retention: 24 * time.Hour},
	} {
		if err := db.AddRollup(rule); err != nil {
			return err
		}
	}

	// The query endpoint: clients publish tsdb.QueryRequest payloads on
	// "tsdb.query" (one JSON line over the TCP bridge) and receive
	// "tsdb.result" envelopes — raw ranges, instant lookups, or registered
	// rollups via step_ms/agg.
	svc := tsdb.NewService(db).Attach(b, "modad")
	defer svc.Close()

	ccfg := hw.DefaultConfig()
	ccfg.Nodes = 16
	cl := hw.New(engine, ccfg)
	plant := facility.New(engine, facility.DefaultConfig(), cl)
	fs := pfs.New(engine, pfs.Config{OSTs: 8, OSTBandwidthMBps: 300, DefaultStripeCount: 4})
	scheduler := sched.New(engine, cl.UpNodes(), sched.DefaultExtensionPolicy())
	runtime := app.NewRuntime(engine, db, fs, cl)
	runtime.OnComplete = func(inst *app.Instance) { scheduler.JobFinished(inst.Job.ID) }
	scheduler.SetHooks(runtime.Start, runtime.Kill)

	reg := telemetry.NewRegistry()
	reg.Register(cl.Collector())
	reg.Register(plant.Collector())
	reg.Register(fs.Collector())
	reg.Register(scheduler.Collector())

	// One batched pipeline stores every gathered point and fans the batch
	// out on the bus — a single ingest pass and a single PublishBatch per
	// sampling round, with each point on "telemetry.<name>".
	pipe := telemetry.NewPipeline(reg, db).PublishTo(b, "modad")
	q, _ := pipe.Querier() // the pipeline's sink is the TSDB

	// The response side is spec-driven: a control service owns the fleet
	// coordinator and spawns every loop from its JSON spec through the case
	// registry; the same service answers control.v1 requests from the wire
	// and runs the pending-approval queue for human-in-the-loop actions.
	kb := knowledge.NewBase()
	env := &control.Env{
		Querier:   q,
		Plant:     plant,
		Scheduler: scheduler,
		Apps:      runtime,
		Cluster:   cl,
		FS:        fs,
		Knowledge: kb,
		Clock:     sim.VirtualClock{Engine: engine},
		Rng:       rand.New(rand.NewSource(1)),
		Bus:       b,
	}
	coord := fleet.New(0).PublishTo(b, "modad")
	ctl := control.NewService(cases.NewRegistry(), env, coord, time.Minute).Attach(b, "modad")
	defer ctl.Close()

	// Durability, part 2: restore each subsystem from the snapshot, replay
	// the WAL tail on top, and only then attach the journals — replayed
	// records must never be re-journaled.
	recovered := false
	if w != nil {
		replayFrom := uint64(1)
		if snap != nil {
			if err := db.RestoreSnapshot(snap.TSDB); err != nil {
				return err
			}
			if err := kb.Load(bytes.NewReader(snap.Knowledge)); err != nil {
				return err
			}
			if err := ctl.Restore(snap.Control); err != nil {
				return err
			}
			replayFrom = snap.Seq + 1
			recovered = true
		}
		replayed := 0
		r, err := w.Replay(replayFrom)
		if err != nil {
			return err
		}
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				r.Close()
				return fmt.Errorf("wal replay: %w", err)
			}
			switch rec.Kind {
			case wal.KindTSDBAppend:
				err = db.ApplyWAL(rec.Payload)
			case wal.KindKnowledgeOp:
				err = kb.ApplyWAL(rec.Seq, rec.Payload)
			case wal.KindBusEnvelope:
				// Audit trail only: recorded traffic is not re-published.
			}
			if err != nil {
				r.Close()
				return fmt.Errorf("wal replay seq %d: %w", rec.Seq, err)
			}
			replayed++
		}
		r.Close()
		if recovered || replayed > 0 {
			fmt.Printf("modad: recovered from %s: snapshot @ seq %d + %d replayed records (%d series, %d samples)\n",
				*walDir, replayFrom-1, replayed, db.NumSeries(), db.Appended())
		}

		db.Journal(w)
		kb.Journal(w)
		// The bus audit trail is best-effort, with a shed-then-halt policy on
		// storage faults: a retryable fault (a full disk, a short write, a
		// backlogged group commit — wal.Retryable) sheds the envelope and
		// keeps going, since the WAL retries its buffered tail on the next
		// append; a fatal fault (a failed fsync: the kernel may have dropped
		// dirty pages and will not say so twice) halts journaling for good —
		// logging one line, not a corrupt trail. Loop state and telemetry
		// journaling are unaffected; their appends surface errors on their
		// own paths.
		var lastJournalErr atomic.Int64 // unix nanos of the last logged failure
		var journalHalted atomic.Bool
		b.Journal(func(env bus.Envelope) {
			if journalHalted.Load() || !journaledTopic(env.Topic) {
				return
			}
			line, err := bus.Encode(env)
			if err == nil {
				_, err = w.Append(wal.KindBusEnvelope, line)
			}
			if err != nil {
				if !wal.Retryable(err) {
					journalHalted.Store(true)
					fmt.Fprintf(os.Stderr, "modad: bus journal halted on fatal WAL fault: %v\n", err)
					return
				}
				// Rate-limited to 1/s: a broken audit trail must surface
				// while the daemon runs, not via the sticky error at Close.
				if now := time.Now().UnixNano(); now-lastJournalErr.Load() >= int64(time.Second) {
					lastJournalErr.Store(now)
					fmt.Fprintf(os.Stderr, "modad: bus journal shed %s: %v\n", env.Topic, err)
				}
			}
		})
	}

	// A recovered control plane re-spawned its fleet from the snapshot; a
	// fresh one deploys the configured specs.
	if !recovered {
		for _, spec := range specs {
			if _, err := ctl.Spawn(spec); err != nil {
				return err
			}
		}
	}
	// One control round every 2nd sample = every virtual minute. Loop
	// lifecycle envelopes ("loop.<name>.*"), coordinator round summaries
	// ("fleet.round", "fleet.conflict"), and control.v1 traffic travel the
	// same bus as the telemetry.
	pipe.Drive(ctl, 2)

	// Every takes an absolute start time: offset by Now so the schedule
	// works from a recovered clock as well as from zero. Sink errors are
	// checked after each round — a TSDB that rejects points (clock skew,
	// invalid values) must surface while the daemon runs, not be swallowed
	// into the pipeline's sticky error.
	var lastIngestLog atomic.Int64 // unix nanos of the last logged failure
	var seenIngestErrs uint64
	engine.Every(engine.Now()+30*time.Second, 30*time.Second, func() bool {
		pipe.Sample(engine.Now())
		if _, _, errs := pipe.Stats(); errs > seenIngestErrs {
			seenIngestErrs = errs
			if now := time.Now().UnixNano(); now-lastIngestLog.Load() >= int64(time.Second) {
				lastIngestLog.Store(now)
				fmt.Fprintf(os.Stderr, "modad: telemetry ingest: %d points rejected so far (latest: %v)\n",
					errs, pipe.Err())
			}
		}
		return true
	})

	// snapshot writes one combined snapshot covering everything the log
	// holds up to now, then compacts the segments it supersedes. Sync comes
	// first: a snapshot must never claim to cover records that are still
	// sitting in the group-commit buffer.
	snapshot := func() error {
		if w == nil {
			return nil
		}
		if err := w.Sync(); err != nil {
			return err
		}
		seq := w.LastSeq()
		tsnap, err := db.Snapshot()
		if err != nil {
			return err
		}
		var kbuf bytes.Buffer
		if err := kb.Save(&kbuf); err != nil {
			return err
		}
		csnap, err := ctl.Snapshot()
		if err != nil {
			return err
		}
		payload, err := json.Marshal(&daemonSnapshot{
			Seq: seq, Now: engine.Now(),
			TSDB: tsnap, Knowledge: kbuf.Bytes(), Control: csnap,
		})
		if err != nil {
			return err
		}
		if err := wal.WriteSnapshot(*walDir, "modad", seq, payload); err != nil {
			return err
		}
		_, err = w.Compact(seq + 1)
		return err
	}
	if w != nil && *snapEvery > 0 {
		engine.Every(engine.Now()+*snapEvery, *snapEvery, func() bool {
			if err := snapshot(); err != nil {
				fmt.Fprintln(os.Stderr, "modad: snapshot:", err)
			}
			return true
		})
	}

	// A rolling synthetic workload keeps the signals alive.
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("steady%02d", i)
		runtime.RegisterSpec(name, app.Spec{
			Name: name, TotalIters: 1 << 20,
			IterTime: sim.LogNormal{MeanV: time.Minute, CV: 0.2},
			IOEvery:  7, IOSizeMB: 256, StripeCount: 4,
		})
		if _, err := scheduler.Submit(name, "ops", 2, 1000*time.Hour, 0); err != nil {
			return err
		}
	}

	srv, err := bus.NewServer(*addr, "*", b)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("modad: serving telemetry, loop, fleet, and control.v1 envelopes on %s (speed %dx, %d loops)\n",
		srv.Addr(), *speed, coord.Len())

	// The HTTP gateway serves the same query and control vocabulary over
	// /v1, plus SSE subscriptions and Prometheus-style self-telemetry.
	if *httpAddr != "" {
		gw := gateway.New(gateway.Options{
			Store: db, Control: ctl, Bus: b,
			Pipeline: pipe, WAL: w, WireServer: srv,
			ReadTokens:     splitTokens(*httpReadTok),
			OperatorTokens: splitTokens(*httpOpTok),
		})
		if err := gw.Serve(*httpAddr); err != nil {
			return err
		}
		defer gw.Close()
		fmt.Printf("modad: http gateway on http://%s (/v1/query, /v1/control/<op>, /v1/stream, /metrics)\n", gw.Addr())
	}

	// Drive the simulation against the wall clock; SIGINT/SIGTERM begins a
	// graceful shutdown.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	vbase := engine.Now()
	start := time.Now()
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
loop:
	for {
		select {
		case <-tick.C:
			wall := time.Since(start)
			if *duration > 0 && wall >= *duration {
				break loop
			}
			engine.RunUntil(vbase + time.Duration(int64(wall)*int64(*speed)))
		case sig := <-sigs:
			fmt.Printf("modad: %v: shutting down\n", sig)
			break loop
		}
	}

	// Shutdown: snapshot FIRST, while the fleet still holds its live
	// lifecycle states — a restart with the same -wal-dir resumes exactly
	// here. Then drain the loops so no plan is cut mid-action, and finally
	// flush and fsync the log.
	if err := snapshot(); err != nil {
		fmt.Fprintln(os.Stderr, "modad: final snapshot:", err)
	}
	for _, st := range ctl.Handle(control.Request{Op: control.OpList}).Loops {
		if st.Name == st.Group && (st.State == "created" || st.State == "running") {
			ctl.Handle(control.Request{Op: control.OpDrain, Loop: st.Name})
		}
	}
	ctl.Tick(engine.Now() + time.Minute) // one settling round completes the drains
	if w != nil {
		if err := kb.JournalErr(); err != nil {
			fmt.Fprintln(os.Stderr, "modad: journal:", err)
		}
		if err := w.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "modad: wal close:", err)
		}
		m := w.Metrics()
		fmt.Printf("modad: wal closed; %d records, %d bytes, %d syncs, %d rotations\n",
			m.Appends, m.Bytes, m.Syncs, m.Rotations)
	}
	cm := coord.Metrics()
	_, _, sinkErrs := pipe.Stats()
	fmt.Printf("modad: done; %d series, %d samples stored (%d ingest errors); fleet ran %d rounds (%d actions, %d arbitrated)\n",
		db.NumSeries(), db.Appended(), sinkErrs, cm.Rounds, cm.Planned, cm.Arbitrated)
	return nil
}

// splitTokens parses a comma-separated token list, dropping empties.
func splitTokens(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}
