package autoloop_test

import (
	"testing"
	"time"

	"autoloop"
	"autoloop/internal/core"
	"autoloop/internal/telemetry"
)

func TestFacadeVersionAndIDs(t *testing.T) {
	if autoloop.Version == "" {
		t.Error("empty version")
	}
	ids := autoloop.ExperimentIDs()
	if len(ids) != 17 {
		t.Errorf("ExperimentIDs = %d, want 17", len(ids))
	}
}

func TestFacadeRunExperiment(t *testing.T) {
	res, err := autoloop.RunExperiment("EXP-A4", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("rows = %d", len(res.Rows))
	}
	if _, err := autoloop.RunExperiment("EXP-NOPE", 1, true); err == nil {
		t.Error("expected error")
	}
}

// TestFacadeBuildLoop exercises the facade types end to end: a user builds a
// loop from the re-exported vocabulary without importing internal packages
// directly (beyond the adapters).
func TestFacadeBuildLoop(t *testing.T) {
	engine := autoloop.NewEngine(1)
	kb := autoloop.NewKnowledge()
	acted := 0
	loop := autoloop.NewLoop("demo",
		core.MonitorFunc(func(now time.Duration) (core.Observation, error) {
			return core.Observation{Time: now, Points: []telemetry.Point{
				{Name: "x", Time: now, Value: 10},
			}}, nil
		}),
		core.AnalyzerFunc(func(now time.Duration, obs core.Observation) (core.Symptoms, error) {
			return core.Symptoms{Findings: []core.Finding{{Kind: "high", Subject: "x", Confidence: 1}}}, nil
		}),
		core.PlannerFunc(func(now time.Duration, sym core.Symptoms) (core.Plan, error) {
			return core.Plan{Actions: []core.Action{{Kind: "act", Subject: "x", Confidence: 1}}}, nil
		}),
		core.ExecutorFunc(func(now time.Duration, a core.Action) (core.ActionResult, error) {
			acted++
			return core.ActionResult{Action: a, Honored: true}, nil
		}),
	)
	loop.K = kb
	engine.At(time.Second, func() { loop.Tick(engine.Now()) })
	engine.Run()
	if acted != 1 {
		t.Errorf("acted = %d", acted)
	}
}

// TestFacadeControlPlane exercises the re-exported control vocabulary: a
// user declares a fleet as JSON specs, spawns it through the registry, and
// manages lifecycle — all from the one facade import (plus the internal
// substrate adapters).
func TestFacadeControlPlane(t *testing.T) {
	specs, err := autoloop.ParseSpecs([]byte(`[{"case": "power", "mode": "human-on-the-loop", "period": "2m"}]`))
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Mode != "human-on-the-loop" || specs[0].Period.D() != 2*time.Minute {
		t.Fatalf("spec = %+v", specs[0])
	}
	reg := autoloop.NewRegistry()
	if got := len(reg.Names()); got != 6 {
		t.Fatalf("registry has %d cases, want 6", got)
	}
	if autoloop.StatePaused.String() != "paused" || autoloop.HumanInTheLoop.String() != "human-in-the-loop" {
		t.Error("lifecycle/mode constants not wired")
	}
	coord := autoloop.NewCoordinator(1)
	if coord.Len() != 0 {
		t.Error("fresh coordinator not empty")
	}
}
