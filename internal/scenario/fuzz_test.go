package scenario

import (
	"encoding/json"
	"errors"
	"testing"
)

// FuzzScenarioDecode asserts the decode contract on arbitrary input: no
// panic ever, and the only error type that escapes is *SpecError. Accepted
// documents must survive a marshal/decode round trip.
func FuzzScenarioDecode(f *testing.F) {
	f.Add([]byte(validDoc))
	// Malformed durations.
	f.Add([]byte(`{"name":"x","horizon":"1 fortnight","facility":{"nodes":4},"loops":[]}`))
	f.Add([]byte(`{"name":"x","horizon":"-3h","facility":{"nodes":4},"loops":[]}`))
	f.Add([]byte(`{"name":"x","horizon":{"h":1},"facility":{"nodes":4},"loops":[]}`))
	// Unknown injector kinds and fields.
	f.Add([]byte(`{"name":"x","horizon":"1h","facility":{"nodes":4},"loops":[],"injections":[{"kind":"gamma-rays","at":"5m"}]}`))
	f.Add([]byte(`{"name":"x","horizon":"1h","facility":{"nodes":4},"loops":[],"injections":[{"kind":"sensor-flap","at":"5m","frequency":"2m"}]}`))
	// Overlapping / out-of-range schedules.
	f.Add([]byte(`{"name":"x","horizon":"1h","facility":{"nodes":4},"loops":[],"injections":[` +
		`{"kind":"thermal-cascade","at":"10m","duration":"50m"},` +
		`{"kind":"thermal-cascade","at":"15m","duration":"50m"},` +
		`{"kind":"disk-failures","at":"59m","duration":"50m"}]}`))
	f.Add([]byte(`{"name":"x","horizon":"1h","facility":{"nodes":4},"loops":[],"injections":[{"kind":"sensor-flap","at":"2h"}]}`))
	// Adversarial sizes and junk.
	f.Add([]byte(`{"name":"x","horizon":"1h","facility":{"nodes":1073741824},"loops":[]}`))
	f.Add([]byte(`{"name":"x","horizon":"1h","facility":{"nodes":4},"loops":[]}{"trailing":1}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Decode(data)
		if err != nil {
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("Decode returned %T, want *SpecError: %v", err, err)
			}
			if spec != nil {
				t.Fatal("Decode returned both a spec and an error")
			}
			return
		}
		// Accepted documents must re-marshal and re-decode cleanly.
		out, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		if _, err := Decode(out); err != nil {
			t.Fatalf("accepted spec does not round trip: %v\n%s", err, out)
		}
	})
}
