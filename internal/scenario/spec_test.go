package scenario

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

const validDoc = `{
	"name": "unit",
	"seed": 11,
	"horizon": "1h",
	"sample_every": "30s",
	"facility": {"nodes": 8, "plant": true, "osts": 4},
	"workload": {"jobs": 4, "classes": [
		{"name": "deadline", "weight": 1, "io_every": 5, "io_size_mb": 64},
		{"name": "batch", "weight": 2, "io_every": 3, "io_size_mb": 128}
	]},
	"loops": [{"case": "power"}, {"case": "ost", "findings": ["ost-degraded"]}],
	"injections": [
		{"kind": "thermal-cascade", "at": "10m", "count": 2},
		{"kind": "sensor-flap", "at": "30m", "flap": "90s"}
	],
	"score": {"grace": "5m"}
}`

func TestDecodeValid(t *testing.T) {
	s, err := Decode([]byte(validDoc))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if s.Name != "unit" || s.Seed != 11 {
		t.Fatalf("header mismatch: %+v", s)
	}
	if s.Horizon.D() != time.Hour || s.SampleEvery.D() != 30*time.Second {
		t.Fatalf("durations mismatch: %v %v", s.Horizon, s.SampleEvery)
	}
	if s.Facility.Nodes != 8 || !s.Facility.Plant || s.Facility.OSTs != 4 {
		t.Fatalf("facility mismatch: %+v", s.Facility)
	}
	if len(s.Loops) != 2 || s.Loops[1].Case != "ost" || s.Loops[1].Findings[0] != "ost-degraded" {
		t.Fatalf("loops mismatch: %+v", s.Loops)
	}
	if len(s.Injections) != 2 || s.Injections[1].Flap.D() != 90*time.Second {
		t.Fatalf("injections mismatch: %+v", s.Injections)
	}
	if s.Score.Grace.D() != 5*time.Minute {
		t.Fatalf("grace mismatch: %v", s.Score.Grace)
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"unknown top field", `{"name":"x","horizon":"1h","facility":{"nodes":1},"loops":[],"bogus":1}`, "bogus"},
		{"unknown facility field", `{"name":"x","horizon":"1h","facility":{"nodes":1,"zz":2},"loops":[]}`, "zz"},
		{"malformed duration", `{"name":"x","horizon":"1 fortnight","facility":{"nodes":1},"loops":[]}`, "duration"},
		{"missing name", `{"horizon":"1h","facility":{"nodes":1},"loops":[]}`, "name"},
		{"zero horizon", `{"name":"x","facility":{"nodes":1},"loops":[]}`, "horizon"},
		{"zero nodes", `{"name":"x","horizon":"1h","facility":{},"loops":[]}`, "nodes"},
		{"node bomb", `{"name":"x","horizon":"1h","facility":{"nodes":99999999},"loops":[]}`, "cap"},
		{"unknown injector", `{"name":"x","horizon":"1h","facility":{"nodes":1},"loops":[],"injections":[{"kind":"gamma-rays","at":"1m"}]}`, "gamma-rays"},
		{"injection past horizon", `{"name":"x","horizon":"1h","facility":{"nodes":1},"loops":[],"injections":[{"kind":"sensor-flap","at":"2h"}]}`, "past the horizon"},
		{"negative severity", `{"name":"x","horizon":"1h","facility":{"nodes":1},"loops":[],"injections":[{"kind":"sensor-flap","at":"1m","severity":-2}]}`, "severity"},
		{"round shorter than sample", `{"name":"x","horizon":"1h","sample_every":"1m","round_every":"30s","facility":{"nodes":1},"loops":[]}`, "round_every"},
		{"trailing data", validDoc + `{"again": true}`, "trailing"},
		{"negative maintenance", `{"name":"x","horizon":"1h","facility":{"nodes":1},"loops":[],"maintenance":[{"at":"-5m","duration":"10m"}]}`, "maintenance"},
		{"bad loop", `{"name":"x","horizon":"1h","facility":{"nodes":1},"loops":[{"case":""}]}`, "loops[0]"},
		{"nameless class", `{"name":"x","horizon":"1h","facility":{"nodes":1},"loops":[],"workload":{"jobs":2,"classes":[{"weight":1}]}}`, "classes[0]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Decode accepted %s", tc.doc)
			}
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("error is %T, want *SpecError: %v", err, err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, spec := range []*Spec{Small(3), Midsize(4), Stress10k(5)} {
		data, err := json.MarshalIndent(spec, "", "  ")
		if err != nil {
			t.Fatalf("%s: marshal: %v", spec.Name, err)
		}
		back, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: decode own marshal: %v\n%s", spec.Name, err, data)
		}
		data2, err := json.MarshalIndent(back, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(data2) {
			t.Fatalf("%s: round trip not stable:\n%s\n---\n%s", spec.Name, data, data2)
		}
	}
}

func TestTemplateFor(t *testing.T) {
	l, ok := TemplateFor("power")
	if !ok || l.Case != "power" || l.Domain != DomainHardware {
		t.Fatalf("power template: %+v ok=%v", l, ok)
	}
	if len(l.Findings) == 0 || len(l.Actions) == 0 {
		t.Fatalf("power template missing attribution: %+v", l)
	}
	if m, ok := TemplateFor("maintenance"); !ok || m.Domain != "" {
		t.Fatalf("maintenance template should exist with no domain: %+v ok=%v", m, ok)
	}
	if _, ok := TemplateFor("no-such-case"); ok {
		t.Fatal("unknown case got a template")
	}
}

func TestInjectorKindsSorted(t *testing.T) {
	kinds := InjectorKinds()
	if len(kinds) != 5 {
		t.Fatalf("want 5 kinds, got %v", kinds)
	}
	for i := 1; i < len(kinds); i++ {
		if kinds[i-1] >= kinds[i] {
			t.Fatalf("kinds not sorted: %v", kinds)
		}
	}
	for _, k := range kinds {
		if injectorDomains[k] == "" {
			t.Fatalf("kind %q has no domain", k)
		}
	}
}
