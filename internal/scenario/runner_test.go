package scenario_test

import (
	"encoding/json"
	"strings"
	"testing"

	"autoloop/internal/cases"
	"autoloop/internal/scenario"
)

// TestScenarioDeterministic is the contract the EXP-S* tables rest on: the
// same scenario document and seed produce byte-identical score tables across
// independently assembled stacks.
func TestScenarioDeterministic(t *testing.T) {
	run := func() string {
		rep, err := scenario.Run(scenario.Small(42), cases.NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		return rep.Table()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same spec+seed produced different tables:\n%s\n---\n%s", a, b)
	}
}

// TestScenarioSeedMatters guards against the opposite failure: a scorer that
// ignores the stack entirely would also be deterministic.
func TestScenarioSeedMatters(t *testing.T) {
	rep1, err := scenario.Run(scenario.Small(1), cases.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := scenario.Run(scenario.Small(2), cases.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Table() == rep2.Table() {
		t.Fatal("different seeds produced identical tables")
	}
}

// TestScenarioSmallEndToEnd pins the small preset's qualitative outcome: the
// fleet detects and responds to every real injection.
func TestScenarioSmallEndToEnd(t *testing.T) {
	rep, err := scenario.Run(scenario.Small(42), cases.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Scores
	if s.Windows != 3 {
		t.Fatalf("want 3 real windows, got %d", s.Windows)
	}
	if s.Detected != s.Windows || s.Responded != s.Windows {
		t.Fatalf("fleet missed injections: detected %d/%d responded %d/%d\n%s",
			s.Detected, s.Windows, s.Responded, s.Windows, rep.Table())
	}
	if s.MeanMTTR <= 0 {
		t.Fatalf("MTTR not measured: %v", s.MeanMTTR)
	}
	if s.Findings == 0 || s.Actions == 0 {
		t.Fatalf("no scored activity: %+v", s)
	}
	if rep.Samples == 0 || rep.Points == 0 {
		t.Fatalf("telemetry did not flow: %+v", rep)
	}
	if len(rep.Loops) != 3 {
		t.Fatalf("want 3 loops, got %v", rep.Loops)
	}
}

// TestScenarioJSONPath runs the same preset through its JSON form — the
// modad -scenario path — and requires the identical table.
func TestScenarioJSONPath(t *testing.T) {
	direct, err := scenario.Run(scenario.Small(42), cases.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(scenario.Small(42))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := scenario.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	viaJSON, err := scenario.Run(spec, cases.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if direct.Table() != viaJSON.Table() {
		t.Fatalf("JSON path diverged:\n%s\n---\n%s", direct.Table(), viaJSON.Table())
	}
}

// TestScenarioMidsizeChaos exercises the full injector library, including
// the phantom: real injections are all caught, and the phantom never counts
// as a real window.
func TestScenarioMidsizeChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("midsize scenario in -short mode")
	}
	rep, err := scenario.Run(scenario.Midsize(7), cases.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Injections) != 5 {
		t.Fatalf("want 5 injection rows, got %d", len(rep.Injections))
	}
	s := rep.Scores
	if s.Windows != 4 {
		t.Fatalf("phantom leaked into real windows: %d", s.Windows)
	}
	if s.Detected != 4 || s.Responded != 4 {
		t.Fatalf("fleet missed chaos: detected %d responded %d\n%s", s.Detected, s.Responded, rep.Table())
	}
	var phantom *scenario.InjectionOutcome
	for i := range rep.Injections {
		if rep.Injections[i].Phantom {
			phantom = &rep.Injections[i]
		}
	}
	if phantom == nil {
		t.Fatal("no phantom row")
	}
	// The flap biases sensors well past the thermal limit, so the fleet is
	// fooled — which must surface as false-positive pressure, not credit.
	if !phantom.Detected {
		t.Fatalf("phantom not even noticed — flap too weak?\n%s", rep.Table())
	}
	if s.FalseFindings == 0 || s.FPRate() <= 0 {
		t.Fatalf("phantom detection did not count as false positives: %+v", s)
	}
	if !strings.Contains(rep.Table(), "(phantom)") || !strings.Contains(rep.Table(), "fooled") {
		t.Fatalf("table does not mark the phantom:\n%s", rep.Table())
	}
}

// TestScenarioLoopOverrides checks the attribution override path: domain
// "none" drops a loop from scoring entirely.
func TestScenarioLoopOverrides(t *testing.T) {
	spec := scenario.Small(42)
	for i := range spec.Loops {
		spec.Loops[i].Domain = "none"
	}
	rep, err := scenario.Run(spec, cases.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Scores
	if s.Findings != 0 || s.Actions != 0 || s.Detected != 0 {
		t.Fatalf("domain=none loops still scored: %+v", s)
	}
}

func TestAssembleErrors(t *testing.T) {
	if _, err := scenario.Assemble(scenario.Small(1), nil); err == nil {
		t.Fatal("nil registry accepted")
	}
	bad := scenario.Small(1)
	bad.Loops[0].Case = "no-such-case"
	if _, err := scenario.Assemble(bad, cases.NewRegistry()); err == nil {
		t.Fatal("unknown case accepted")
	}
	invalid := scenario.Small(1)
	invalid.Name = ""
	if _, err := scenario.Assemble(invalid, cases.NewRegistry()); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestRuntimeRunsOnce(t *testing.T) {
	rt, err := scenario.Assemble(scenario.Small(9), cases.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err == nil {
		t.Fatal("second Run succeeded")
	}
}
