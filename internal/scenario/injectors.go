package scenario

import (
	"fmt"
	"sort"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/sim"
)

// Injector kinds — the fault library.
const (
	// KindThermalCascade fails cooling on a seed node and spreads through
	// its rack at a fixed interval (failed fans cascading down a chassis).
	KindThermalCascade = "thermal-cascade"
	// KindCongestionStorm launches a burst of I/O-heavy jobs under one
	// aggressor tenant, saturating the filesystem.
	KindCongestionStorm = "congestion-storm"
	// KindDiskFailures degrades a run of adjacent OSTs (a correlated media
	// or enclosure failure).
	KindDiskFailures = "disk-failures"
	// KindMisconfigSweep submits a wave of misconfigured applications
	// (thread oversubscription alternating with wrong-library pickups).
	KindMisconfigSweep = "misconfig-sweep"
	// KindSensorFlap toggles a biased temperature sensor on and off —
	// a phantom fault injecting pure false-positive pressure.
	KindSensorFlap = "sensor-flap"
)

// Scoring domains mapping injections onto the loops that should respond.
const (
	DomainHardware    = "hardware"
	DomainStorage     = "storage"
	DomainApplication = "application"
)

// injectorDomains maps each kind to its scoring domain; membership doubles
// as the known-kind set for validation.
var injectorDomains = map[string]string{
	KindThermalCascade:  DomainHardware,
	KindCongestionStorm: DomainStorage,
	KindDiskFailures:    DomainStorage,
	KindMisconfigSweep:  DomainApplication,
	KindSensorFlap:      DomainHardware,
}

// injectorPhantom marks kinds whose symptoms are sensor lies: any finding or
// response attributed to them is a false positive by construction.
var injectorPhantom = map[string]bool{
	KindSensorFlap: true,
}

// InjectorKinds returns the known injector kinds, sorted.
func InjectorKinds() []string {
	kinds := make([]string, 0, len(injectorDomains))
	for k := range injectorDomains {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// window is one injection's ground truth: the interval it was active, the
// domain it should surface in, and whether it is a phantom.
type window struct {
	kind    string
	domain  string
	phantom bool
	at, end time.Duration
	detail  string
}

// arm schedules one injection on the engine and records its ground-truth
// window. Assemble calls it with the clock still at zero.
func (rt *Runtime) arm(inj Injection) error {
	at := inj.At.D()
	var w *window
	var err error
	switch inj.Kind {
	case KindThermalCascade:
		w, err = rt.armThermalCascade(inj, at)
	case KindCongestionStorm:
		w, err = rt.armCongestionStorm(inj, at)
	case KindDiskFailures:
		w, err = rt.armDiskFailures(inj, at)
	case KindMisconfigSweep:
		w, err = rt.armMisconfigSweep(inj, at)
	case KindSensorFlap:
		w, err = rt.armSensorFlap(inj, at)
	default:
		return fmt.Errorf("scenario: unknown injector kind %q", inj.Kind)
	}
	if err != nil {
		return err
	}
	w.kind = inj.Kind
	w.domain = injectorDomains[inj.Kind]
	w.phantom = injectorPhantom[inj.Kind]
	rt.windows = append(rt.windows, w)
	return nil
}

// durOr returns d, or def when d is unset.
func durOr(d time.Duration, def time.Duration) time.Duration {
	if d <= 0 {
		return def
	}
	return d
}

func countOr(n, def int) int {
	if n <= 0 {
		return def
	}
	return n
}

func sevOr(s, def float64) float64 {
	if s <= 0 {
		return def
	}
	return s
}

// armThermalCascade fails cooling on a seed node, then spreads the fault
// through its rack-mates at the cascade interval. Every victim is restored
// at the window's end.
func (rt *Runtime) armThermalCascade(inj Injection, at time.Duration) (*window, error) {
	dur := durOr(inj.Duration.D(), 30*time.Minute)
	spread := durOr(inj.Spread.D(), 5*time.Minute)
	// The default severity multiplies thermal resistance enough that even a
	// lightly loaded node's reported temperature clears the power case's
	// 85°C limit.
	severity := sevOr(inj.Severity, 8)

	nodes := rt.Cluster.Nodes()
	seed := inj.Node
	if seed == "" {
		seed = nodes[rt.injRng.Intn(len(nodes))].ID
	}
	sn, ok := rt.Cluster.Node(seed)
	if !ok {
		return nil, fmt.Errorf("scenario: thermal-cascade: unknown node %q", seed)
	}
	// Victims: the seed first, then its rack-mates in ID order.
	victims := []string{sn.ID}
	for _, n := range nodes {
		if n.Rack == sn.Rack && n.ID != sn.ID {
			victims = append(victims, n.ID)
		}
	}
	if max := countOr(inj.Count, len(victims)); len(victims) > max {
		victims = victims[:max]
	}
	for i, id := range victims {
		t := at + time.Duration(i)*spread
		if t >= at+dur {
			victims = victims[:i]
			break
		}
		id := id
		// Later victims fault slightly less severely — the cascade decays.
		mult := severity * (1 - 0.1*float64(i))
		if mult < 2 {
			mult = 2
		}
		rt.Engine.At(t, func() { _ = rt.Cluster.SetThermalFault(id, mult) })
	}
	armed := append([]string(nil), victims...)
	rt.Engine.At(at+dur, func() {
		for _, id := range armed {
			_ = rt.Cluster.SetThermalFault(id, 1)
		}
	})
	return &window{
		at: at, end: at + dur,
		detail: fmt.Sprintf("%d nodes from %s", len(armed), seed),
	}, nil
}

// armCongestionStorm registers and submits a burst of write-heavy jobs under
// one aggressor tenant. Their walltime equals the storm window, so the
// scheduler reclaims the nodes when it closes.
func (rt *Runtime) armCongestionStorm(inj Injection, at time.Duration) (*window, error) {
	dur := durOr(inj.Duration.D(), 20*time.Minute)
	count := countOr(inj.Count, 8)
	sizeMB := sevOr(inj.Severity, 256)
	tenant := inj.Tenant
	if tenant == "" {
		tenant = "batch"
	}
	iterTime := 15 * time.Second
	iters := int(dur/iterTime) + 10
	for k := 0; k < count; k++ {
		name := fmt.Sprintf("storm-%s-%02d", shortDur(at), k)
		spec := app.Spec{
			Name:        name,
			TotalIters:  iters,
			IterTime:    sim.LogNormal{MeanV: iterTime, CV: 0.1},
			MarkerEvery: 1,
			UtilMean:    0.3,
			IOEvery:     1,
			IOSizeMB:    sizeMB,
			StripeCount: rt.FS.Config().DefaultStripeCount,
		}
		rt.Apps.RegisterSpec(name, spec)
		rt.Engine.At(at, func() {
			_, _ = rt.Scheduler.Submit(name, tenant, 1, dur, 0)
		})
	}
	return &window{
		at: at, end: at + dur,
		detail: fmt.Sprintf("%d writers, tenant %s, %gMB/iter", count, tenant, sizeMB),
	}, nil
}

// armDiskFailures degrades a run of adjacent OSTs to a fraction of their
// bandwidth, then restores them at the window's end.
func (rt *Runtime) armDiskFailures(inj Injection, at time.Duration) (*window, error) {
	dur := durOr(inj.Duration.D(), 20*time.Minute)
	count := countOr(inj.Count, 2)
	health := inj.Severity
	if health <= 0 || health >= 1 {
		health = 0.08
	}
	n := rt.FS.NumOSTs()
	if count > n {
		count = n
	}
	first := rt.injRng.Intn(n)
	if inj.OST != nil {
		first = *inj.OST % n
	}
	ids := make([]int, count)
	for i := range ids {
		ids[i] = (first + i) % n
	}
	rt.Engine.At(at, func() {
		for _, id := range ids {
			_ = rt.FS.SetOSTHealth(id, health)
		}
	})
	rt.Engine.At(at+dur, func() {
		for _, id := range ids {
			_ = rt.FS.SetOSTHealth(id, 1)
		}
	})
	return &window{
		at: at, end: at + dur,
		detail: fmt.Sprintf("%d OSTs from ost%02d at health %.2f", count, first, health),
	}, nil
}

// armMisconfigSweep submits a wave of misconfigured jobs spaced across the
// window, alternating thread oversubscription with wrong-library pickups —
// the two kinds the Misconfiguration case detects from live telemetry.
func (rt *Runtime) armMisconfigSweep(inj Injection, at time.Duration) (*window, error) {
	dur := durOr(inj.Duration.D(), 20*time.Minute)
	count := countOr(inj.Count, 6)
	gap := dur / time.Duration(count)
	for k := 0; k < count; k++ {
		mis := app.MisconfigThreads
		if k%2 == 1 {
			mis = app.MisconfigWrongLib
		}
		name := fmt.Sprintf("sweep-%s-%02d", shortDur(at), k)
		spec := app.Spec{
			Name:        name,
			TotalIters:  400,
			IterTime:    sim.LogNormal{MeanV: 20 * time.Second, CV: 0.1},
			MarkerEvery: 1,
			Misconfig:   mis,
		}
		rt.Apps.RegisterSpec(name, spec)
		rt.Engine.At(at+time.Duration(k)*gap, func() {
			_, _ = rt.Scheduler.Submit(name, "sweep", 1, dur, 0)
		})
	}
	return &window{
		at: at, end: at + dur,
		detail: fmt.Sprintf("%d misconfigured jobs", count),
	}, nil
}

// armSensorFlap toggles a multiplicative temperature-sensor bias on a few
// nodes — a phantom fault: the physical state is healthy, only the readings
// lie, so every attributed finding is a false positive.
func (rt *Runtime) armSensorFlap(inj Injection, at time.Duration) (*window, error) {
	dur := durOr(inj.Duration.D(), 20*time.Minute)
	flap := durOr(inj.Flap.D(), 2*time.Minute)
	severity := sevOr(inj.Severity, 1.6)
	count := countOr(inj.Count, 2)

	nodes := rt.Cluster.Nodes()
	if count > len(nodes) {
		count = len(nodes)
	}
	var victims []string
	if inj.Node != "" {
		if _, ok := rt.Cluster.Node(inj.Node); !ok {
			return nil, fmt.Errorf("scenario: sensor-flap: unknown node %q", inj.Node)
		}
		victims = append(victims, inj.Node)
	}
	for len(victims) < count {
		id := nodes[rt.injRng.Intn(len(nodes))].ID
		dup := false
		for _, have := range victims {
			if have == id {
				dup = true
				break
			}
		}
		if !dup {
			victims = append(victims, id)
		}
	}
	end := at + dur
	on := false
	rt.Engine.Every(at, flap, func() bool {
		if rt.Engine.Now() >= end {
			for _, id := range victims {
				_ = rt.Cluster.SetSensorFault(id, 1)
			}
			return false
		}
		on = !on
		mult := 1.0
		if on {
			mult = severity
		}
		for _, id := range victims {
			_ = rt.Cluster.SetSensorFault(id, mult)
		}
		return true
	})
	return &window{
		at: at, end: end,
		detail: fmt.Sprintf("%d sensors biased ×%.2g every %v", len(victims), severity, flap),
	}, nil
}

// shortDur renders a schedule time compactly for generated job names
// ("1h30m0s" -> "1h30m0s" is fine; names only need determinism+uniqueness).
func shortDur(d time.Duration) string { return d.String() }
