package scenario_test

import (
	"testing"

	"autoloop/internal/cases"
	"autoloop/internal/scenario"
)

// BenchmarkScenarioMidsize is the chaos-diverse preset end to end: assemble,
// run to the 4h horizon, score.
func BenchmarkScenarioMidsize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := scenario.Run(scenario.Midsize(7), cases.NewRegistry())
		if err != nil {
			b.Fatal(err)
		}
		if rep.Scores.Detected == 0 {
			b.Fatal("fleet detected nothing")
		}
	}
}

// BenchmarkScenarioStress10k is the scale gate: a 10240-node facility
// (51k live series) sampled for 30 virtual minutes with the fleet and three
// concurrent faults. Run with -benchtime=1x; one iteration is a full
// scenario.
func BenchmarkScenarioStress10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := scenario.Run(scenario.Stress10k(1), cases.NewRegistry())
		if err != nil {
			b.Fatal(err)
		}
		if rep.Points < 3_000_000 {
			b.Fatalf("stress scenario ingested only %d points", rep.Points)
		}
		b.ReportMetric(float64(rep.Points), "points/op")
	}
}
