package scenario

import (
	"time"

	"autoloop/internal/control"
)

func dur(d time.Duration) control.Duration { return control.Duration(d) }

func loops(cases ...string) []Loop {
	out := make([]Loop, 0, len(cases))
	for _, c := range cases {
		l, ok := TemplateFor(c)
		if !ok {
			l = Loop{LoopSpec: control.LoopSpec{Case: c}}
		}
		out = append(out, l)
	}
	return out
}

// Small is the quick-check preset: a one-rack cluster, a light workload, and
// one injection per domain inside a two-hour horizon. It is the shape used
// by EXP-S1's Quick mode and the decode fuzz corpus.
func Small(seed int64) *Spec {
	return &Spec{
		Name:    "small",
		Seed:    seed,
		Horizon: dur(2 * time.Hour),
		Facility: Facility{
			Nodes: 16,
			Plant: true,
			OSTs:  8,
		},
		Workload: &Workload{Jobs: 12},
		Loops:    loops("power", "ost", "misconfig"),
		Injections: []Injection{
			{Kind: KindThermalCascade, At: dur(20 * time.Minute), Count: 3},
			{Kind: KindDiskFailures, At: dur(60 * time.Minute)},
			{Kind: KindMisconfigSweep, At: dur(85 * time.Minute), Count: 3},
		},
	}
}

// Midsize is the chaos-diverse preset: a few racks, every built-in
// responder loop, a mixed workload, a maintenance window, and the full
// injector library including a phantom sensor flap. The scenario-smoke CI
// job runs it end-to-end under the race detector.
func Midsize(seed int64) *Spec {
	return &Spec{
		Name:    "midsize",
		Seed:    seed,
		Horizon: dur(4 * time.Hour),
		Facility: Facility{
			Nodes: 128,
			Plant: true,
			OSTs:  16,
		},
		Workload: &Workload{Jobs: 160},
		Maintenance: []Window{
			{At: dur(3 * time.Hour), Duration: dur(30 * time.Minute)},
		},
		Loops: loops("power", "ost", "ioqos", "misconfig", "maintenance"),
		Injections: []Injection{
			{Kind: KindThermalCascade, At: dur(25 * time.Minute), Count: 4},
			{Kind: KindCongestionStorm, At: dur(70 * time.Minute), Count: 24, Severity: 1024},
			{Kind: KindDiskFailures, At: dur(110 * time.Minute), Count: 3},
			{Kind: KindMisconfigSweep, At: dur(150 * time.Minute)},
			{Kind: KindSensorFlap, At: dur(130 * time.Minute), Severity: 2.6},
		},
	}
}

// Stress10k is the scale preset: a 10k-node facility feeding the sharded
// TSDB at better than 10k series, with the fleet and three concurrent
// faults, inside a tight horizon so it doubles as a benchmark row.
func Stress10k(seed int64) *Spec {
	return &Spec{
		Name:        "stress-10k",
		Seed:        seed,
		Horizon:     dur(30 * time.Minute),
		SampleEvery: dur(30 * time.Second),
		Facility: Facility{
			Nodes:        10240,
			NodesPerRack: 64,
			Plant:        true,
			OSTs:         64,
		},
		Workload: &Workload{Jobs: 64},
		Loops:    loops("power", "ost", "ioqos", "misconfig"),
		Injections: []Injection{
			{Kind: KindThermalCascade, At: dur(5 * time.Minute), Count: 8},
			{Kind: KindDiskFailures, At: dur(8 * time.Minute), Count: 4},
			{Kind: KindCongestionStorm, At: dur(12 * time.Minute)},
		},
	}
}
