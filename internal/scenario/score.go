package scenario

import (
	"fmt"
	"strings"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/core"
)

// binding is one loop's scoring attribution policy, resolved at spawn time
// from the scenario's Loop entry and the case defaults.
type binding struct {
	domain   string
	findings map[string]bool // nil counts every finding kind
	actions  map[string]bool // nil counts every action kind
}

// loopEvent is one observed lifecycle event relevant to scoring.
type loopEvent struct {
	t       time.Duration
	loop    string
	kind    string // finding or action kind
	execute bool   // false: finding
}

// scorer records the fleet's findings and honored executions off the bus.
// The bus dispatch under the simulator is effectively single-threaded (the
// fleet coordinator replays buffered loop events serially on the tick
// goroutine), so no locking is needed.
type scorer struct {
	bindings map[string]*binding
	events   []loopEvent
}

func newScorer(b *bus.Bus) *scorer {
	s := &scorer{bindings: make(map[string]*binding)}
	b.Subscribe("loop.*", func(env bus.Envelope) {
		i := strings.LastIndexByte(env.Topic, '.')
		if i < 0 {
			return
		}
		switch env.Topic[i+1:] {
		case "finding":
			if f, ok := env.Payload.(core.Finding); ok {
				s.events = append(s.events, loopEvent{t: env.Time, loop: env.Source, kind: f.Kind})
			}
		case "execute":
			if r, ok := env.Payload.(core.ActionResult); ok && r.Honored {
				s.events = append(s.events, loopEvent{t: env.Time, loop: env.Source, kind: r.Action.Kind, execute: true})
			}
		}
	})
	return s
}

// bind registers one spawned loop's attribution policy.
func (s *scorer) bind(loop string, b *binding) { s.bindings[loop] = b }

func toSet(kinds []string) map[string]bool {
	if len(kinds) == 0 {
		return nil
	}
	m := make(map[string]bool, len(kinds))
	for _, k := range kinds {
		m[k] = true
	}
	return m
}

// InjectionOutcome is one injection's scored row.
type InjectionOutcome struct {
	Kind    string
	Domain  string
	Phantom bool
	At, End time.Duration
	Detail  string

	// Detected/Responded report whether any matching-domain loop found the
	// fault and executed a response inside the attribution window. For
	// phantom injections they measure how badly the fleet was fooled.
	Detected  bool
	DetectLat time.Duration
	By        string
	Responded bool
	MTTR      time.Duration
}

// Scores aggregates a scenario run.
type Scores struct {
	// Windows counts real (non-phantom) injections; Detected/Responded how
	// many were found and responded to within their windows.
	Windows, Detected, Responded int
	// MeanMTTR averages injection-to-first-response over responded real
	// injections.
	MeanMTTR time.Duration
	// Findings counts scored findings; FalseFindings those landing outside
	// every matching real window (sensor flaps, spurious detections).
	Findings, FalseFindings int
	// Actions counts scored honored executions; AttributedActions those
	// landing inside a matching real window.
	Actions, AttributedActions int
}

// FPRate is FalseFindings / Findings (0 when no findings).
func (s Scores) FPRate() float64 {
	if s.Findings == 0 {
		return 0
	}
	return float64(s.FalseFindings) / float64(s.Findings)
}

// Efficiency is AttributedActions / Actions (0 when no actions).
func (s Scores) Efficiency() float64 {
	if s.Actions == 0 {
		return 0
	}
	return float64(s.AttributedActions) / float64(s.Actions)
}

// Report is one scenario run's deterministic scorecard.
type Report struct {
	Name       string
	Seed       int64
	Horizon    time.Duration
	Nodes      int
	Loops      []string
	Samples    uint64
	Points     uint64
	Injections []InjectionOutcome
	Scores     Scores
}

// score folds the recorded events over the ground-truth windows.
func (rt *Runtime) score() *Report {
	grace := rt.spec.Score.Grace.D()
	if grace <= 0 {
		grace = 10 * time.Minute
	}
	s := rt.scorer

	// covered reports whether a real window of the event's domain covers t.
	covered := func(domain string, t time.Duration) bool {
		for _, w := range rt.windows {
			if !w.phantom && w.domain == domain && t >= w.at && t <= w.end+grace {
				return true
			}
		}
		return false
	}

	rep := &Report{
		Name:    rt.spec.Name,
		Seed:    rt.spec.Seed,
		Horizon: rt.horizon,
		Nodes:   rt.spec.Facility.Nodes,
	}
	samples, points, _ := rt.Pipe.Stats()
	rep.Samples, rep.Points = samples, points

	// Global rates over scored events.
	for _, ev := range s.events {
		b := s.bindings[ev.loop]
		if b == nil || b.domain == "" {
			continue
		}
		if ev.execute {
			if b.actions != nil && !b.actions[ev.kind] {
				continue
			}
			rep.Scores.Actions++
			if covered(b.domain, ev.t) {
				rep.Scores.AttributedActions++
			}
		} else {
			if b.findings != nil && !b.findings[ev.kind] {
				continue
			}
			rep.Scores.Findings++
			if !covered(b.domain, ev.t) {
				rep.Scores.FalseFindings++
			}
		}
	}

	// Per-injection outcomes: first matching finding and execution.
	var mttrSum time.Duration
	for _, w := range rt.windows {
		out := InjectionOutcome{
			Kind: w.kind, Domain: w.domain, Phantom: w.phantom,
			At: w.at, End: w.end, Detail: w.detail,
		}
		for _, ev := range s.events {
			b := s.bindings[ev.loop]
			if b == nil || b.domain != w.domain {
				continue
			}
			if ev.t < w.at || ev.t > w.end+grace {
				continue
			}
			if ev.execute {
				if b.actions != nil && !b.actions[ev.kind] {
					continue
				}
				// A response only counts once the fault was detected: events
				// arrive in time order, so routine in-window actions fired
				// before the first matching finding never claim the MTTR.
				if out.Detected && !out.Responded {
					out.Responded = true
					out.MTTR = ev.t - w.at
				}
			} else {
				if b.findings != nil && !b.findings[ev.kind] {
					continue
				}
				if !out.Detected {
					out.Detected = true
					out.DetectLat = ev.t - w.at
					out.By = ev.loop
				}
			}
		}
		if !w.phantom {
			rep.Scores.Windows++
			if out.Detected {
				rep.Scores.Detected++
			}
			if out.Responded {
				rep.Scores.Responded++
				mttrSum += out.MTTR
			}
		}
		rep.Injections = append(rep.Injections, out)
	}
	if rep.Scores.Responded > 0 {
		rep.Scores.MeanMTTR = mttrSum / time.Duration(rep.Scores.Responded)
	}
	return rep
}

// Table renders the report as an aligned, deterministic text table — the
// EXP-S* artifact shape. Identical spec + seed always yields identical
// bytes.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s (seed %d, %d nodes, horizon %v)\n", r.Name, r.Seed, r.Nodes, r.Horizon)
	cols := []string{"injection", "domain", "at", "end", "detected", "detect-lat", "responded", "mttr", "by"}
	rows := make([][]string, 0, len(r.Injections))
	for _, o := range r.Injections {
		kind := o.Kind
		if o.Phantom {
			kind += " (phantom)"
		}
		det, lat, resp, mttr, by := "no", "-", "no", "-", "-"
		if o.Detected {
			det, lat, by = "yes", o.DetectLat.String(), o.By
			if o.Phantom {
				det = "fooled"
			}
		}
		if o.Responded {
			resp, mttr = "yes", o.MTTR.String()
			if o.Phantom {
				resp = "fooled"
			}
		}
		rows = append(rows, []string{kind, o.Domain, o.At.String(), o.End.String(), det, lat, resp, mttr, by})
	}
	writeAligned(&b, cols, rows)
	s := r.Scores
	fmt.Fprintf(&b, "detected %d/%d, responded %d/%d, mean MTTR %v\n",
		s.Detected, s.Windows, s.Responded, s.Windows, s.MeanMTTR)
	fmt.Fprintf(&b, "findings %d (false %d, fp-rate %.3f); actions %d (attributed %d, efficiency %.3f)\n",
		s.Findings, s.FalseFindings, s.FPRate(), s.Actions, s.AttributedActions, s.Efficiency())
	fmt.Fprintf(&b, "telemetry: %d samples, %d points\n", r.Samples, r.Points)
	return b.String()
}

// writeAligned renders one fixed-width table.
func writeAligned(b *strings.Builder, cols []string, rows [][]string) {
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(cols)
	sep := make([]string, len(cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
}
