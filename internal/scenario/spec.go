// Package scenario is the declarative chaos engine: a JSON DSL that composes
// a synthetic facility — node counts and topology, workload mixes, sensor
// models, and a library of fault injectors — with a deterministic seeded
// event schedule, then runs the autonomy-loop fleet against it and scores
// detection, MTTR, false-positive rate, and action efficiency per scenario.
//
// The DSL follows the control.LoopSpec idiom exactly: JSON documents with
// unknown fields rejected, durations as Go duration strings ("5m"), and a
// typed error (*SpecError) naming the offending field. Scenario files are
// the unit of the corpus: the same file and seed always produce byte-
// identical score tables.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"autoloop/internal/control"
)

// SpecError is the typed decode/validation error: Field is the dotted path
// of the offending field ("injections[2].kind"), Msg the complaint. Decode
// never returns any other error type.
type SpecError struct {
	Field string
	Msg   string
}

// Error implements error.
func (e *SpecError) Error() string { return fmt.Sprintf("scenario: %s: %s", e.Field, e.Msg) }

func errf(field, format string, args ...interface{}) *SpecError {
	return &SpecError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// Spec is one scenario document: the facility to synthesize, the workload to
// run on it, the loop fleet to deploy, the fault injections to fire on the
// sim clock, and the scoring policy.
type Spec struct {
	// Name labels the scenario in score tables.
	Name string `json:"name"`
	// Seed drives every random stream (engine, workload, injector targets).
	Seed int64 `json:"seed"`
	// Horizon is the virtual time the scenario runs to.
	Horizon control.Duration `json:"horizon"`
	// SampleEvery is the telemetry sampling cadence (default 30s).
	SampleEvery control.Duration `json:"sample_every,omitempty"`
	// RoundEvery is the control-round cadence driving the fleet (default
	// 1m, rounded to a whole multiple of SampleEvery).
	RoundEvery control.Duration `json:"round_every,omitempty"`

	Facility Facility  `json:"facility"`
	Workload *Workload `json:"workload,omitempty"`
	// Maintenance reserves full-system maintenance windows on the
	// scheduler (the Maintenance case's trigger).
	Maintenance []Window `json:"maintenance,omitempty"`
	// Loops is the fleet, in spawn order. Each entry is a control.LoopSpec
	// plus scoring attribution fields.
	Loops []Loop `json:"loops"`
	// Injections is the fault schedule.
	Injections []Injection `json:"injections,omitempty"`
	Score      Score       `json:"score,omitempty"`
}

// Facility describes the synthetic facility: cluster topology, sensor
// noise, the cooling plant, and the parallel filesystem.
type Facility struct {
	// Nodes is the cluster size (required).
	Nodes int `json:"nodes"`
	// NodesPerRack sets the rack topology (default 8) — thermal cascades
	// spread within a rack.
	NodesPerRack int     `json:"nodes_per_rack,omitempty"`
	CoresPerNode int     `json:"cores_per_node,omitempty"`
	MemGBPerNode float64 `json:"mem_gb_per_node,omitempty"`
	// SensorNoise is the stddev of multiplicative sensor noise; nil keeps
	// the hardware default (0.01), 0 disables noise.
	SensorNoise *float64 `json:"sensor_noise,omitempty"`
	// AmbientC overrides the initial inlet-air temperature.
	AmbientC float64 `json:"ambient_c,omitempty"`
	// Plant attaches the cooling plant and couples its supply setpoint
	// into the cluster ambient (required by the power case).
	Plant bool `json:"plant,omitempty"`
	// OSTs sizes the parallel filesystem (default 16).
	OSTs int `json:"osts,omitempty"`
	// OSTBandwidthMBps is per-OST bandwidth at full health (default 500).
	OSTBandwidthMBps float64 `json:"ost_mbps,omitempty"`
	// StripeCount is the default file striping width (default 4).
	StripeCount int `json:"stripe_count,omitempty"`
}

// Workload is the background job mix: jobs drawn from weighted classes with
// exponential inter-arrival times.
type Workload struct {
	// Jobs is how many jobs to generate over the horizon.
	Jobs int `json:"jobs"`
	// ArrivalMean is the mean inter-arrival time (default horizon/jobs).
	ArrivalMean control.Duration `json:"arrival_mean,omitempty"`
	// Classes are the weighted application classes; empty uses one
	// default compute-plus-I/O class.
	Classes []JobClass `json:"classes,omitempty"`
}

// JobClass is one weighted application template in the workload mix. Zero
// fields take defaults matching internal/app's iterative-code model.
type JobClass struct {
	Name string `json:"name"`
	// Weight is the sampling weight (default 1).
	Weight float64 `json:"weight,omitempty"`
	// Tenant is the submitting user/tenant (default the class name) — the
	// I/O QoS case manages tenants by name.
	Tenant string `json:"tenant,omitempty"`
	// ItersMin/ItersMax bound the iteration count (defaults 40/200).
	ItersMin int `json:"iters_min,omitempty"`
	ItersMax int `json:"iters_max,omitempty"`
	// IterMean is the mean iteration time (default 45s); IterCV its
	// coefficient of variation (default 0.15).
	IterMean control.Duration `json:"iter_mean,omitempty"`
	IterCV   float64          `json:"iter_cv,omitempty"`
	// NodesMin/NodesMax bound the allocation size (defaults 1/4).
	NodesMin int     `json:"nodes_min,omitempty"`
	NodesMax int     `json:"nodes_max,omitempty"`
	UtilMean float64 `json:"util_mean,omitempty"`
	// IOEvery/IOSizeMB/StripeCount describe periodic write phases
	// (0 disables I/O).
	IOEvery     int     `json:"io_every,omitempty"`
	IOSizeMB    float64 `json:"io_size_mb,omitempty"`
	StripeCount int     `json:"stripe_count,omitempty"`
	// WalltimeFactor pads the request over the expected runtime
	// (default 1.5).
	WalltimeFactor float64 `json:"walltime_factor,omitempty"`
}

// Loop is one fleet member: the control-plane spec plus the scoring
// attribution policy. Domain maps the loop onto injection domains
// ("hardware", "storage", "application"); empty takes the case's default,
// "none" excludes the loop from scoring (optimizer loops). Findings and
// Actions, when set, restrict which finding/action kinds count for scoring;
// empty takes the case default (nil counts everything).
type Loop struct {
	control.LoopSpec
	Domain   string   `json:"domain,omitempty"`
	Findings []string `json:"findings,omitempty"`
	Actions  []string `json:"actions,omitempty"`
}

// Window is a closed interval on the sim clock.
type Window struct {
	At       control.Duration `json:"at"`
	Duration control.Duration `json:"duration"`
}

// Injection fires one fault injector at a point on the sim clock. Kind
// selects the injector; the remaining fields are kind-specific knobs, each
// with a deterministic seeded default.
type Injection struct {
	// Kind is the injector ("thermal-cascade", "congestion-storm",
	// "disk-failures", "misconfig-sweep", "sensor-flap").
	Kind string `json:"kind"`
	// At is when the fault begins.
	At control.Duration `json:"at"`
	// Duration is how long it lasts (kind-specific default).
	Duration control.Duration `json:"duration,omitempty"`
	// Node seeds node-targeted injectors (default: seeded random pick).
	Node string `json:"node,omitempty"`
	// OST seeds the correlated disk-failure run (default: seeded pick).
	OST *int `json:"ost,omitempty"`
	// Tenant is the congestion storm's aggressor tenant (default "batch").
	Tenant string `json:"tenant,omitempty"`
	// Count scales the blast radius: nodes faulted, OSTs degraded, jobs
	// launched (kind-specific default).
	Count int `json:"count,omitempty"`
	// Severity is the kind-specific magnitude: thermal-resistance
	// multiplier, OST health, sensor bias, storm write size in MB.
	Severity float64 `json:"severity,omitempty"`
	// Spread is the cascade interval between successive victims.
	Spread control.Duration `json:"spread,omitempty"`
	// Flap is the sensor-flap toggle period (default 2m).
	Flap control.Duration `json:"flap,omitempty"`
}

// Score tunes the scoring policy.
type Score struct {
	// Grace extends each injection's attribution window past its end:
	// findings and responses landing within it still count (default 10m).
	Grace control.Duration `json:"grace,omitempty"`
}

// Decode parses and validates one scenario document. Unknown fields,
// malformed durations, unknown injector kinds, and out-of-range schedules
// are all rejected with a *SpecError; Decode never panics on any input.
func Decode(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, &SpecError{Field: "document", Msg: err.Error()}
	}
	if dec.More() {
		return nil, errf("document", "trailing data after scenario object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// maxNodes bounds the facility size a document can request, keeping
// adversarial inputs from turning Assemble into an allocation bomb.
const maxNodes = 1 << 20

// Validate checks the statically checkable parts of the spec and returns a
// *SpecError naming the first offending field.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return errf("name", "missing scenario name")
	}
	if s.Horizon <= 0 {
		return errf("horizon", "must be positive, got %v", s.Horizon)
	}
	if s.SampleEvery < 0 {
		return errf("sample_every", "negative cadence %v", s.SampleEvery)
	}
	if s.RoundEvery < 0 {
		return errf("round_every", "negative cadence %v", s.RoundEvery)
	}
	if s.SampleEvery > 0 && s.RoundEvery > 0 && s.RoundEvery < s.SampleEvery {
		return errf("round_every", "%v shorter than sample_every %v", s.RoundEvery, s.SampleEvery)
	}
	if err := s.Facility.validate(); err != nil {
		return err
	}
	if s.Workload != nil {
		if err := s.Workload.validate(); err != nil {
			return err
		}
	}
	for i, w := range s.Maintenance {
		field := fmt.Sprintf("maintenance[%d]", i)
		if w.At < 0 {
			return errf(field+".at", "negative time %v", w.At)
		}
		if w.Duration <= 0 {
			return errf(field+".duration", "must be positive, got %v", w.Duration)
		}
	}
	for i := range s.Loops {
		if err := s.Loops[i].LoopSpec.Validate(); err != nil {
			return errf(fmt.Sprintf("loops[%d]", i), "%v", err)
		}
	}
	for i, inj := range s.Injections {
		if err := inj.validate(fmt.Sprintf("injections[%d]", i), s.Horizon.D()); err != nil {
			return err
		}
	}
	if s.Score.Grace < 0 {
		return errf("score.grace", "negative grace %v", s.Score.Grace)
	}
	return nil
}

func (f *Facility) validate() error {
	if f.Nodes <= 0 {
		return errf("facility.nodes", "must be positive, got %d", f.Nodes)
	}
	if f.Nodes > maxNodes {
		return errf("facility.nodes", "%d exceeds the %d-node cap", f.Nodes, maxNodes)
	}
	if f.NodesPerRack < 0 || f.CoresPerNode < 0 || f.MemGBPerNode < 0 {
		return errf("facility", "negative topology field")
	}
	if f.SensorNoise != nil && *f.SensorNoise < 0 {
		return errf("facility.sensor_noise", "negative noise %g", *f.SensorNoise)
	}
	if f.OSTs < 0 || f.OSTs > maxNodes {
		return errf("facility.osts", "out of range: %d", f.OSTs)
	}
	if f.OSTBandwidthMBps < 0 {
		return errf("facility.ost_mbps", "negative bandwidth %g", f.OSTBandwidthMBps)
	}
	if f.StripeCount < 0 {
		return errf("facility.stripe_count", "negative stripe count %d", f.StripeCount)
	}
	return nil
}

func (w *Workload) validate() error {
	if w.Jobs < 0 || w.Jobs > maxNodes {
		return errf("workload.jobs", "out of range: %d", w.Jobs)
	}
	if w.ArrivalMean < 0 {
		return errf("workload.arrival_mean", "negative interval %v", w.ArrivalMean)
	}
	total := 0.0
	for i, c := range w.Classes {
		field := fmt.Sprintf("workload.classes[%d]", i)
		if c.Name == "" {
			return errf(field+".name", "missing class name")
		}
		if c.Weight < 0 {
			return errf(field+".weight", "negative weight %g", c.Weight)
		}
		if c.ItersMin < 0 || c.ItersMax < 0 || (c.ItersMax > 0 && c.ItersMin > c.ItersMax) {
			return errf(field, "bad iteration bounds [%d, %d]", c.ItersMin, c.ItersMax)
		}
		if c.IterMean < 0 {
			return errf(field+".iter_mean", "negative duration %v", c.IterMean)
		}
		if c.IterCV < 0 {
			return errf(field+".iter_cv", "negative CV %g", c.IterCV)
		}
		if c.NodesMin < 0 || c.NodesMax < 0 || (c.NodesMax > 0 && c.NodesMin > c.NodesMax) {
			return errf(field, "bad node bounds [%d, %d]", c.NodesMin, c.NodesMax)
		}
		if c.IOEvery < 0 || c.IOSizeMB < 0 || c.StripeCount < 0 {
			return errf(field, "negative I/O field")
		}
		if c.WalltimeFactor < 0 {
			return errf(field+".walltime_factor", "negative factor %g", c.WalltimeFactor)
		}
		if c.Weight == 0 {
			total++ // default weight 1
		} else {
			total += c.Weight
		}
	}
	if w.Jobs > 0 && len(w.Classes) > 0 && total <= 0 {
		return errf("workload.classes", "weights sum to zero")
	}
	return nil
}

func (inj *Injection) validate(field string, horizon time.Duration) error {
	if _, ok := injectorDomains[inj.Kind]; !ok {
		return errf(field+".kind", "unknown injector kind %q (have %v)", inj.Kind, InjectorKinds())
	}
	if inj.At < 0 {
		return errf(field+".at", "negative time %v", inj.At)
	}
	if inj.At.D() > horizon {
		return errf(field+".at", "%v is past the horizon %v", inj.At, control.Duration(horizon))
	}
	if inj.Duration < 0 {
		return errf(field+".duration", "negative duration %v", inj.Duration)
	}
	if inj.Count < 0 {
		return errf(field+".count", "negative count %d", inj.Count)
	}
	if inj.Severity < 0 {
		return errf(field+".severity", "negative severity %g", inj.Severity)
	}
	if inj.Spread < 0 {
		return errf(field+".spread", "negative spread %v", inj.Spread)
	}
	if inj.Flap < 0 {
		return errf(field+".flap", "negative flap period %v", inj.Flap)
	}
	if inj.OST != nil && *inj.OST < 0 {
		return errf(field+".ost", "negative OST index %d", *inj.OST)
	}
	return nil
}
