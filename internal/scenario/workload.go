package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/sim"
)

// genJob is one generated workload item.
type genJob struct {
	name     string
	spec     app.Spec
	tenant   string
	nodes    int
	walltime time.Duration
	submitAt time.Duration
}

// defaultClasses is the workload mix used when a scenario declares jobs but
// no classes: a latency-sensitive tenant and a throughput tenant, matching
// the I/O QoS case's default tenant vocabulary.
func defaultClasses() []JobClass {
	return []JobClass{
		{Name: "deadline", Weight: 1, IOEvery: 5, IOSizeMB: 64},
		{Name: "batch", Weight: 2, IOEvery: 3, IOSizeMB: 128},
	}
}

// generateJobs builds the background workload deterministically from the
// scenario seed, on a random stream independent of the engine's.
func generateJobs(spec *Spec, horizon time.Duration) []genJob {
	w := spec.Workload
	if w == nil || w.Jobs == 0 {
		return nil
	}
	classes := w.Classes
	if len(classes) == 0 {
		classes = defaultClasses()
	}
	total := 0.0
	for _, c := range classes {
		if c.Weight <= 0 {
			total++
		} else {
			total += c.Weight
		}
	}
	arrival := w.ArrivalMean.D()
	if arrival <= 0 {
		arrival = horizon / time.Duration(w.Jobs+1)
	}

	rng := rand.New(rand.NewSource(spec.Seed ^ 0x77073096))
	jobs := make([]genJob, 0, w.Jobs)
	var at time.Duration
	for i := 0; i < w.Jobs; i++ {
		at += sim.Exponential{MeanV: arrival}.Sample(rng)
		// Weighted class pick.
		pick := rng.Float64() * total
		cls := classes[len(classes)-1]
		for _, c := range classes {
			wgt := c.Weight
			if wgt <= 0 {
				wgt = 1
			}
			if pick < wgt {
				cls = c
				break
			}
			pick -= wgt
		}

		itMin, itMax := cls.ItersMin, cls.ItersMax
		if itMin <= 0 {
			itMin = 40
		}
		if itMax < itMin {
			itMax = itMin + 160
		}
		iters := itMin
		if itMax > itMin {
			iters += rng.Intn(itMax - itMin)
		}
		iterMean := cls.IterMean.D()
		if iterMean <= 0 {
			iterMean = 45 * time.Second
		}
		cv := cls.IterCV
		if cv <= 0 {
			cv = 0.15
		}
		nMin, nMax := cls.NodesMin, cls.NodesMax
		if nMin <= 0 {
			nMin = 1
		}
		if nMax < nMin {
			nMax = nMin + 3
		}
		nodes := nMin
		if nMax > nMin {
			nodes += rng.Intn(nMax - nMin)
		}

		name := fmt.Sprintf("%s%04d", cls.Name, i)
		aspec := app.Spec{
			Name:        name,
			TotalIters:  iters,
			IterTime:    sim.LogNormal{MeanV: iterMean, CV: cv},
			MarkerEvery: 1,
			UtilMean:    cls.UtilMean,
			IOEvery:     cls.IOEvery,
			IOSizeMB:    cls.IOSizeMB,
			StripeCount: cls.StripeCount,
		}
		factor := cls.WalltimeFactor
		if factor <= 0 {
			factor = 1.5
		}
		wall := time.Duration(float64(iters) * float64(iterMean) * factor)
		if wall < 10*time.Minute {
			wall = 10 * time.Minute
		}
		tenant := cls.Tenant
		if tenant == "" {
			tenant = cls.Name
		}
		jobs = append(jobs, genJob{
			name: name, spec: aspec, tenant: tenant,
			nodes: nodes, walltime: wall, submitAt: at,
		})
	}
	return jobs
}
