package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/bus"
	"autoloop/internal/control"
	"autoloop/internal/facility"
	"autoloop/internal/fleet"
	"autoloop/internal/hw"
	"autoloop/internal/knowledge"
	"autoloop/internal/pfs"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

// caseDefaults carries the built-in cases' scoring attribution: which
// injection domain each case answers for and which finding/action kinds
// count. Maintenance and scheduler are optimizer/stewardship loops with no
// injection domain — they run but are not scored. A scenario's Loop entry
// overrides any of it; new cases register their own defaults through their
// ScenarioTemplate.
var caseDefaults = map[string]Loop{
	"power": {
		Domain:   DomainHardware,
		Findings: []string{"thermal-pressure"},
		Actions:  []string{"lower-setpoint"},
	},
	"ost": {
		Domain:   DomainStorage,
		Findings: []string{"ost-degraded"},
		Actions:  []string{"reopen-avoiding"},
	},
	"ioqos": {
		Domain:   DomainStorage,
		Findings: []string{"latency-violation", "qos-divergence"},
		Actions:  []string{"set-qos", "set-allocation"},
	},
	"misconfig": {
		Domain:   DomainApplication,
		Findings: []string{"misconfig-threads", "misconfig-underutil", "misconfig-wronglib"},
		Actions:  []string{"fix-misconfig"},
	},
	"maintenance": {},
	"scheduler":   {},
}

// TemplateFor returns the scenario template for one of the built-in cases:
// a Loop spec carrying the case name and its default scoring attribution.
// Case packages re-export it as their ScenarioTemplate so new cases land as
// scenario + CaseFactory pairs.
func TemplateFor(caseName string) (Loop, bool) {
	d, ok := caseDefaults[caseName]
	if !ok {
		return Loop{}, false
	}
	d.LoopSpec = control.LoopSpec{Case: caseName}
	return d, true
}

// Runtime is one assembled scenario: the full single-process stack — sim
// engine, hardware, facility, filesystem, scheduler, applications,
// telemetry pipeline, sharded TSDB, and the loop fleet spawned through the
// control registry — plus the armed fault schedule and the scorer.
type Runtime struct {
	Engine    *sim.Engine
	DB        *tsdb.DB
	Bus       *bus.Bus
	Cluster   *hw.Cluster
	Plant     *facility.Plant // nil without facility.plant
	FS        *pfs.FS
	Scheduler *sched.Scheduler
	Apps      *app.Runtime
	Pipe      *telemetry.Pipeline
	Ctl       *control.Service
	Knowledge *knowledge.Base

	spec    *Spec
	horizon time.Duration
	sample  time.Duration
	windows []*window
	scorer  *scorer
	injRng  *rand.Rand
	ran     bool
}

// Assemble builds the full stack from one scenario spec, spawning the fleet
// through reg (the CaseFactory path — the same registry the control plane
// uses). The returned runtime is armed but not yet run.
func Assemble(spec *Spec, reg *control.Registry) (*Runtime, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if reg == nil {
		return nil, fmt.Errorf("scenario: Assemble requires a case registry")
	}

	horizon := spec.Horizon.D()
	sample := spec.SampleEvery.D()
	if sample <= 0 {
		sample = 30 * time.Second
	}
	round := spec.RoundEvery.D()
	if round <= 0 {
		round = time.Minute
		if round < sample {
			round = sample
		}
	}
	everyN := int(round / sample)
	if everyN < 1 {
		everyN = 1
	}

	rt := &Runtime{
		spec:    spec,
		horizon: horizon,
		sample:  sample,
		injRng:  rand.New(rand.NewSource(spec.Seed ^ 0x5bd1e995)),
	}
	rt.Engine = sim.NewEngine(spec.Seed)
	rt.DB = tsdb.New(0)
	rt.Bus = bus.New()

	// Hardware plane.
	hcfg := hw.DefaultConfig()
	hcfg.Nodes = spec.Facility.Nodes
	if spec.Facility.NodesPerRack > 0 {
		hcfg.NodesPerRack = spec.Facility.NodesPerRack
	}
	if spec.Facility.CoresPerNode > 0 {
		hcfg.CoresPerNode = spec.Facility.CoresPerNode
	}
	if spec.Facility.MemGBPerNode > 0 {
		hcfg.MemGBPerNode = spec.Facility.MemGBPerNode
	}
	if spec.Facility.SensorNoise != nil {
		hcfg.SensorNoise = *spec.Facility.SensorNoise
	}
	if spec.Facility.AmbientC != 0 {
		hcfg.AmbientC = spec.Facility.AmbientC
	}
	rt.Cluster = hw.New(rt.Engine, hcfg)

	if spec.Facility.Plant {
		rt.Plant = facility.New(rt.Engine, facility.DefaultConfig(), rt.Cluster)
		rt.Plant.BindAmbient(rt.Cluster)
	}

	pcfg := pfs.DefaultConfig()
	if spec.Facility.OSTs > 0 {
		pcfg.OSTs = spec.Facility.OSTs
	}
	if spec.Facility.OSTBandwidthMBps > 0 {
		pcfg.OSTBandwidthMBps = spec.Facility.OSTBandwidthMBps
	}
	if spec.Facility.StripeCount > 0 {
		pcfg.DefaultStripeCount = spec.Facility.StripeCount
	}
	rt.FS = pfs.New(rt.Engine, pcfg)

	policy := sched.ExtensionPolicy{MaxPerJob: 3, MaxTotalPerJob: 6 * time.Hour, BackfillGuard: true}
	rt.Scheduler = sched.New(rt.Engine, rt.Cluster.UpNodes(), policy)
	rt.Apps = app.NewRuntime(rt.Engine, rt.DB, rt.FS, rt.Cluster)
	rt.Apps.OnComplete = func(inst *app.Instance) { rt.Scheduler.JobFinished(inst.Job.ID) }
	rt.Scheduler.SetHooks(rt.Apps.Start, rt.Apps.Kill)
	rt.Knowledge = knowledge.NewBase()

	// Telemetry plane: every substrate collector into the sharded TSDB.
	treg := telemetry.NewRegistry()
	treg.Register(rt.Cluster.Collector())
	if rt.Plant != nil {
		treg.Register(rt.Plant.Collector())
	}
	treg.Register(rt.FS.Collector())
	rt.Pipe = telemetry.NewPipeline(treg, rt.DB)

	// Control plane: the fleet spawned from LoopSpecs via the registry,
	// driven by the monitoring cadence.
	env := &control.Env{
		Querier:   rt.DB,
		Plant:     rt.Plant,
		Scheduler: rt.Scheduler,
		Apps:      rt.Apps,
		Cluster:   rt.Cluster,
		FS:        rt.FS,
		Knowledge: rt.Knowledge,
		Clock:     sim.VirtualClock{Engine: rt.Engine},
		Rng:       rand.New(rand.NewSource(spec.Seed + 7)),
		Bus:       rt.Bus,
	}
	coord := fleet.New(0)
	rt.Ctl = control.NewService(reg, env, coord, round)

	// The scorer subscribes before any loop is spawned, so no event is lost.
	rt.scorer = newScorer(rt.Bus)
	for i := range spec.Loops {
		ls := &spec.Loops[i]
		sp, err := rt.Ctl.Spawn(ls.LoopSpec)
		if err != nil {
			return nil, fmt.Errorf("scenario: loops[%d]: %w", i, err)
		}
		b := resolveBinding(ls)
		for _, bl := range sp.Loops {
			rt.scorer.bind(bl.Loop.Name, b)
		}
	}
	rt.Pipe.Drive(rt.Ctl, everyN)

	// Monitoring cadence.
	rt.Engine.Every(sample, sample, func() bool {
		rt.Pipe.Sample(rt.Engine.Now())
		return rt.Engine.Now() < horizon
	})

	// Maintenance calendar.
	for _, w := range spec.Maintenance {
		if err := rt.Scheduler.AddMaintenance(w.At.D(), w.At.D()+w.Duration.D()); err != nil {
			return nil, fmt.Errorf("scenario: maintenance: %w", err)
		}
	}

	// Background workload.
	for _, j := range generateJobs(spec, horizon) {
		j := j
		rt.Apps.RegisterSpec(j.name, j.spec)
		rt.Engine.At(j.submitAt, func() {
			_, _ = rt.Scheduler.Submit(j.name, j.tenant, j.nodes, j.walltime, 0)
		})
	}

	// Fault schedule.
	for i := range spec.Injections {
		if err := rt.arm(spec.Injections[i]); err != nil {
			return nil, fmt.Errorf("scenario: injections[%d]: %w", i, err)
		}
	}
	return rt, nil
}

// resolveBinding merges a scenario Loop's attribution overrides onto the
// case defaults. Domain "none" opts the loop out of scoring.
func resolveBinding(ls *Loop) *binding {
	def := caseDefaults[ls.Case]
	b := &binding{
		domain:   ls.Domain,
		findings: toSet(ls.Findings),
		actions:  toSet(ls.Actions),
	}
	if b.domain == "" {
		b.domain = def.Domain
	}
	if b.domain == "none" {
		b.domain = ""
	}
	if b.findings == nil {
		b.findings = toSet(def.Findings)
	}
	if b.actions == nil {
		b.actions = toSet(def.Actions)
	}
	return b
}

// Run executes the scenario to its horizon and scores it. It can only be
// called once per assembled runtime.
func (rt *Runtime) Run() (*Report, error) {
	if rt.ran {
		return nil, fmt.Errorf("scenario: runtime already ran")
	}
	rt.ran = true
	rt.Engine.RunUntil(rt.horizon)
	if err := rt.Pipe.Err(); err != nil {
		return nil, fmt.Errorf("scenario: telemetry ingest: %w", err)
	}
	rep := rt.score()
	for _, ls := range rt.spec.Loops {
		name := ls.Name
		if name == "" {
			name = ls.Case
		}
		rep.Loops = append(rep.Loops, name)
	}
	return rep, nil
}

// Run assembles and runs spec in one call — the scenario-file entry point.
func Run(spec *Spec, reg *control.Registry) (*Report, error) {
	rt, err := Assemble(spec, reg)
	if err != nil {
		return nil, err
	}
	return rt.Run()
}
