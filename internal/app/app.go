// Package app models the applications running on the simulated cluster:
// iterative codes that emit progress markers ("rank 0 drops time-steps"),
// perform periodic I/O phases against the parallel filesystem, support
// checkpoint/restart, and can be launched with injected misconfigurations.
//
// The Runtime bridges the scheduler and the substrates: it implements the
// scheduler's start/kill hooks, simulates per-iteration execution on the
// event engine, drives node utilization on the cluster, emits application
// telemetry into the TSDB, and exposes the two actuators the paper's use
// cases need — RequestCheckpoint (Maintenance/Scheduler cases) and
// ReopenAvoiding (OST case) — plus FixMisconfig for the Misconfiguration
// case's "corrected on the fly" response.
package app

import (
	"fmt"
	"time"

	"autoloop/internal/hw"
	"autoloop/internal/pfs"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

// Misconfig enumerates the injectable misconfigurations of the paper's
// Misconfiguration use case.
type Misconfig int

// Misconfiguration kinds.
const (
	MisconfigNone Misconfig = iota
	// MisconfigThreads oversubscribes threads to cores: iterations slow down
	// and the context-switch rate is pathologically high.
	MisconfigThreads
	// MisconfigUnderutil allocates more nodes than the code uses: half the
	// allocation idles.
	MisconfigUnderutil
	// MisconfigWrongLib picks up an unoptimized library from a wrong search
	// path: uniform slowdown plus a loader warning metric.
	MisconfigWrongLib
)

// String implements fmt.Stringer.
func (m Misconfig) String() string {
	switch m {
	case MisconfigNone:
		return "none"
	case MisconfigThreads:
		return "threads"
	case MisconfigUnderutil:
		return "underutil"
	case MisconfigWrongLib:
		return "wronglib"
	}
	return "unknown"
}

// Slowdown factors for injected misconfigurations.
const (
	threadsSlowdown  = 1.6
	wrongLibSlowdown = 1.3
)

// Spec describes an application's behavior.
type Spec struct {
	Name       string
	TotalIters int
	IterTime   sim.Dist

	// DriftPerIter adds a fractional slowdown per completed iteration
	// (e.g. 0.0002 -> 2% slower after 100 iterations), modeling codes whose
	// cost grows as the simulated system evolves.
	DriftPerIter float64

	// PhaseAt/PhaseFactor multiply iteration cost by PhaseFactor once
	// PhaseAt iterations have completed (0 disables), modeling phase changes
	// that break naive forecasts.
	PhaseAt     int
	PhaseFactor float64

	// MarkerEvery controls progress-marker cadence in iterations (default 1).
	MarkerEvery int

	// UtilMean is the node CPU utilization while computing (default 0.9).
	UtilMean float64

	// IOEvery/IOSizeMB/StripeCount describe periodic synchronous write
	// phases (0 disables I/O).
	IOEvery     int
	IOSizeMB    float64
	StripeCount int

	// CheckpointCost is the time to write one checkpoint.
	CheckpointCost time.Duration
	// AsyncCheckpoint makes checkpoints overlap computation (the paper's
	// extensibility path for the Scheduler case).
	AsyncCheckpoint bool

	Misconfig Misconfig
}

// withDefaults normalizes zero-valued optional fields.
func (s Spec) withDefaults() Spec {
	if s.MarkerEvery <= 0 {
		s.MarkerEvery = 1
	}
	if s.UtilMean <= 0 {
		s.UtilMean = 0.9
	}
	if s.PhaseFactor <= 0 {
		s.PhaseFactor = 1
	}
	return s
}

// IdealRuntime returns the expected compute-only runtime absent drift,
// phases, misconfiguration, I/O, and checkpoints — what a well-informed user
// would base a walltime request on.
func (s Spec) IdealRuntime() time.Duration {
	return time.Duration(s.TotalIters) * s.IterTime.Mean()
}

// Instance is one execution of an application under a job.
type Instance struct {
	Job  *sched.Job
	Spec Spec

	rt      *Runtime
	iter    int // completed iterations
	gen     int // invalidates in-flight events on kill/requeue
	running bool
	inIO    bool

	file *pfs.File

	ckptIter    int  // last checkpointed iteration (persisted across restarts)
	fixedConfig bool // misconfiguration corrected on the fly

	ckptPending []func() // callbacks waiting on the next checkpoint
	avoidOSTs   map[int]bool

	// window stats for telemetry
	lastIterSec float64
}

// Iter returns completed iterations.
func (i *Instance) Iter() int { return i.iter }

// Running reports whether the instance is currently executing.
func (i *Instance) Running() bool { return i.running }

// CheckpointIter returns the last checkpointed iteration.
func (i *Instance) CheckpointIter() int { return i.ckptIter }

// LostIters returns the work (iterations) that would be lost if the job died
// now: completed minus checkpointed.
func (i *Instance) LostIters() int { return i.iter - i.ckptIter }

// File returns the instance's current output file (nil before start).
func (i *Instance) File() *pfs.File { return i.file }

// Runtime hosts application instances and bridges them to the scheduler,
// cluster, filesystem, and telemetry store.
type Runtime struct {
	engine *sim.Engine
	db     *tsdb.DB
	fs     *pfs.FS
	cl     *hw.Cluster

	specs     map[string]Spec
	instances map[int]*Instance // by job ID
	// ckpts persists checkpoint progress across requeue/resubmit, keyed by
	// job name (the "input deck" identity).
	ckpts map[string]int

	// OnComplete, if set, is invoked after a job's work finishes (before the
	// scheduler is notified).
	OnComplete func(*Instance)
}

// NewRuntime builds a runtime. db is required; fs and cl may be nil when the
// scenario involves no I/O or node-utilization modeling.
func NewRuntime(engine *sim.Engine, db *tsdb.DB, fs *pfs.FS, cl *hw.Cluster) *Runtime {
	if engine == nil || db == nil {
		panic("app: runtime requires engine and db")
	}
	return &Runtime{
		engine:    engine,
		db:        db,
		fs:        fs,
		cl:        cl,
		specs:     make(map[string]Spec),
		instances: make(map[int]*Instance),
		ckpts:     make(map[string]int),
	}
}

// RegisterSpec associates a job name with an application spec; Start looks
// specs up by job name.
func (r *Runtime) RegisterSpec(jobName string, spec Spec) {
	r.specs[jobName] = spec.withDefaults()
}

// Instance returns the instance executing job jobID.
func (r *Runtime) Instance(jobID int) (*Instance, bool) {
	inst, ok := r.instances[jobID]
	return inst, ok
}

// Start implements sched.StartFn: it begins (or resumes from checkpoint)
// execution of the job's registered application.
func (r *Runtime) Start(j *sched.Job) {
	spec, ok := r.specs[j.Name]
	if !ok {
		panic(fmt.Sprintf("app: no spec registered for job %q", j.Name))
	}
	inst := &Instance{
		Job:       j,
		Spec:      spec,
		rt:        r,
		iter:      r.ckpts[j.Name], // resume from checkpoint if any
		ckptIter:  r.ckpts[j.Name],
		running:   true,
		avoidOSTs: make(map[int]bool),
	}
	r.instances[j.ID] = inst
	if r.fs != nil && spec.IOEvery > 0 {
		inst.file = r.fs.Open(j.User, spec.StripeCount, nil)
	}
	inst.setUtil(inst.computeUtil())
	inst.emitMarker()
	inst.scheduleIteration()
}

// Kill implements sched.KillFn: it stops the instance, cancelling in-flight
// events.
func (r *Runtime) Kill(j *sched.Job, reason sched.KillReason) {
	inst, ok := r.instances[j.ID]
	if !ok {
		return
	}
	inst.stop()
	_ = reason
}

// computeUtil returns the target node utilization while computing, reflecting
// the misconfiguration model.
func (i *Instance) computeUtil() float64 {
	switch {
	case i.Spec.Misconfig == MisconfigThreads && !i.fixedConfig:
		return 0.98 // oversubscribed cores look "busy"
	default:
		return i.Spec.UtilMean
	}
}

// setUtil drives utilization on the job's assigned nodes. Under the
// underutilization misconfiguration only the first half of the allocation
// does work.
func (i *Instance) setUtil(util float64) {
	if i.rt.cl == nil {
		return
	}
	nodes := i.Job.AssignedNodes
	for idx, n := range nodes {
		u := util
		if i.Spec.Misconfig == MisconfigUnderutil && idx >= (len(nodes)+1)/2 {
			u = 0.02 // idle beyond OS noise
		}
		i.rt.cl.SetUtil(n, u)
	}
}

// slowdown returns the multiplicative iteration-cost factor at the current
// iteration.
func (i *Instance) slowdown() float64 {
	f := 1 + i.Spec.DriftPerIter*float64(i.iter)
	if i.Spec.PhaseAt > 0 && i.iter >= i.Spec.PhaseAt {
		f *= i.Spec.PhaseFactor
	}
	if !i.fixedConfig {
		switch i.Spec.Misconfig {
		case MisconfigThreads:
			f *= threadsSlowdown
		case MisconfigWrongLib:
			f *= wrongLibSlowdown
		}
	}
	return f
}

// scheduleIteration runs one iteration asynchronously.
func (i *Instance) scheduleIteration() {
	if !i.running {
		return
	}
	if i.iter >= i.Spec.TotalIters {
		i.complete()
		return
	}
	gen := i.gen
	dur := time.Duration(float64(i.Spec.IterTime.Sample(i.rt.engine.Rand())) * i.slowdown())
	i.lastIterSec = dur.Seconds()
	i.rt.engine.After(dur, func() {
		if gen != i.gen || !i.running {
			return
		}
		i.iter++
		if i.iter%i.Spec.MarkerEvery == 0 || i.iter == i.Spec.TotalIters {
			i.emitMarker()
		}
		// Serve any pending checkpoint request at the iteration boundary.
		if len(i.ckptPending) > 0 {
			i.checkpoint()
			return
		}
		if i.Spec.IOEvery > 0 && i.iter%i.Spec.IOEvery == 0 && i.iter < i.Spec.TotalIters {
			i.ioPhase()
			return
		}
		i.scheduleIteration()
	})
}

// ioPhase performs one synchronous write phase, then resumes computing.
func (i *Instance) ioPhase() {
	if i.rt.fs == nil || i.file == nil {
		i.scheduleIteration()
		return
	}
	gen := i.gen
	i.inIO = true
	i.setUtil(0.10) // mostly waiting on I/O
	start := i.rt.engine.Now()
	i.rt.fs.Write(i.file, i.Spec.IOSizeMB, func(lat time.Duration) {
		if gen != i.gen || !i.running {
			return
		}
		i.inIO = false
		i.setUtil(i.computeUtil())
		i.emit("app.io.lat_ms", lat.Seconds()*1000)
		_ = start
		i.scheduleIteration()
	})
}

// checkpoint writes a checkpoint, serves the waiting callbacks, and resumes.
// The pending queue is consumed up front so that iteration boundaries passed
// while an async checkpoint is in flight do not re-trigger it.
func (i *Instance) checkpoint() {
	gen := i.gen
	atIter := i.iter
	cbs := i.ckptPending
	i.ckptPending = nil
	finish := func() {
		if gen != i.gen {
			return
		}
		i.ckptIter = atIter
		i.rt.ckpts[i.Job.Name] = atIter
		i.emit("app.ckpt.iter", float64(atIter))
		for _, cb := range cbs {
			cb()
		}
	}
	if i.Spec.AsyncCheckpoint {
		// Overlaps computation: compute continues immediately.
		i.rt.engine.After(i.Spec.CheckpointCost, finish)
		i.scheduleIteration()
		return
	}
	i.rt.engine.After(i.Spec.CheckpointCost, func() {
		if gen != i.gen || !i.running {
			return
		}
		finish()
		i.scheduleIteration()
	})
}

// complete finishes the job's work and notifies the runtime's completion
// hook; the scheduler is notified by the caller holding the hook (the
// harness wires OnComplete to sched.JobFinished).
func (i *Instance) complete() {
	if !i.running {
		return
	}
	i.running = false
	i.gen++
	i.setUtil(0)
	i.emit("app.done", 1)
	if i.file != nil && i.rt.fs != nil {
		i.rt.fs.Close(i.file)
	}
	delete(i.rt.ckpts, i.Job.Name) // completed: no restart needed
	if i.rt.OnComplete != nil {
		i.rt.OnComplete(i)
	}
}

// stop halts execution (kill/requeue); checkpoint state persists for restart.
func (i *Instance) stop() {
	if !i.running {
		return
	}
	i.running = false
	i.gen++
	i.ckptPending = nil
	i.setUtil(0)
	if i.file != nil && i.rt.fs != nil {
		i.rt.fs.Close(i.file)
	}
}

// RequestCheckpoint asks the instance to checkpoint at the next iteration
// boundary; done (optional) fires when the checkpoint is durable. This is
// the application hook for the Maintenance and extended Scheduler cases.
func (i *Instance) RequestCheckpoint(done func()) error {
	if !i.running {
		return fmt.Errorf("app: job %d not running", i.Job.ID)
	}
	if done == nil {
		done = func() {}
	}
	i.ckptPending = append(i.ckptPending, done)
	return nil
}

// ReopenAvoiding closes the instance's output file and reopens it with a
// layout that avoids the given OSTs — the OST use case's response hook.
func (i *Instance) ReopenAvoiding(osts ...int) error {
	if i.rt.fs == nil || i.file == nil {
		return fmt.Errorf("app: job %d has no open file", i.Job.ID)
	}
	for _, o := range osts {
		i.avoidOSTs[o] = true
	}
	i.rt.fs.Close(i.file)
	i.file = i.rt.fs.Open(i.Job.User, i.Spec.StripeCount, i.avoidOSTs)
	i.emit("app.reopen", float64(len(i.avoidOSTs)))
	return nil
}

// FixMisconfig corrects a thread or library misconfiguration on the fly
// (re-pinning threads, fixing the library path). Underutilization cannot be
// fixed mid-run; the loop can only notify the user.
func (i *Instance) FixMisconfig() error {
	switch i.Spec.Misconfig {
	case MisconfigThreads, MisconfigWrongLib:
		i.fixedConfig = true
		i.setUtil(i.computeUtil())
		i.emit("app.misconfig.fixed", 1)
		return nil
	case MisconfigUnderutil:
		return fmt.Errorf("app: underutilization cannot be fixed mid-run")
	default:
		return fmt.Errorf("app: job %d has no misconfiguration", i.Job.ID)
	}
}

// Fixed reports whether a misconfiguration was corrected on the fly.
func (i *Instance) Fixed() bool { return i.fixedConfig }

// labels returns the instance's telemetry identity.
func (i *Instance) labels() telemetry.Labels {
	return telemetry.Labels{"job": fmt.Sprintf("%d", i.Job.ID), "app": i.Spec.Name, "user": i.Job.User}
}

// emit appends one application metric to the TSDB.
func (i *Instance) emit(name string, value float64) {
	_ = i.rt.db.Append(telemetry.Point{Name: name, Labels: i.labels(), Time: i.rt.engine.Now(), Value: value})
}

// emitMarker drops the progress marker set: app.progress (completed
// iterations), app.progress_total (the input deck's total), app.iter_time_ms,
// and misconfiguration signals. The whole set is ingested as one batch so a
// marker costs one TSDB lock round-trip, not one per metric.
func (i *Instance) emitMarker() {
	labels := i.labels()
	now := i.rt.engine.Now()
	batch := make([]telemetry.Point, 0, 4)
	add := func(name string, value float64) {
		batch = append(batch, telemetry.Point{Name: name, Labels: labels, Time: now, Value: value})
	}
	add("app.progress", float64(i.iter))
	add("app.progress_total", float64(i.Spec.TotalIters))
	if i.lastIterSec > 0 {
		add("app.iter_time_ms", i.lastIterSec*1000)
	}
	if !i.fixedConfig {
		switch i.Spec.Misconfig {
		case MisconfigThreads:
			// Oversubscription shows up as a context-switch storm.
			add("app.ctx_switch_rate", 50000+i.rt.engine.Rand().Float64()*20000)
		case MisconfigWrongLib:
			add("app.lib_warn", 1)
		}
	}
	if i.Spec.Misconfig == MisconfigNone || i.fixedConfig {
		add("app.ctx_switch_rate", 1000+i.rt.engine.Rand().Float64()*500)
	}
	_ = i.rt.db.AppendBatch(batch)
}
