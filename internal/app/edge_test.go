package app

import (
	"sync"
	"testing"
	"time"

	"autoloop/internal/sched"
	"autoloop/internal/telemetry"
)

// TestKillDuringIOPhaseCancelsCompletion verifies the generation guard: a
// job killed while blocked in an I/O phase must not resume computing when
// the in-flight write completes.
func TestKillDuringIOPhaseCancelsCompletion(t *testing.T) {
	r := newRig(t)
	spec := basicSpec("io", 100, time.Minute)
	spec.IOEvery = 2
	spec.IOSizeMB = 6000 // 6000MB over 2 stripes at 100MB/s = 30s per chunk
	spec.StripeCount = 2
	j := r.launch(t, spec, 1, 3*time.Hour)
	inst, _ := r.rt.Instance(j.ID)
	// Iteration 2 ends at 2m; the I/O phase runs 2m..2m30s. Requeue inside it.
	r.e.RunUntil(2*time.Minute + 10*time.Second)
	if !inst.inIO {
		t.Fatal("test setup: expected to be inside the I/O phase")
	}
	if err := r.s.Requeue(j.ID); err != nil {
		t.Fatal(err)
	}
	// The new instance (restarted) must own the job; the old one is dead and
	// its pending I/O completion must not advance anything.
	inst2, _ := r.rt.Instance(j.ID)
	if inst2 == inst {
		t.Fatal("requeue should create a fresh instance")
	}
	r.e.RunUntil(4 * time.Minute)
	if inst.Running() {
		t.Error("old instance still running after requeue")
	}
	r.e.RunUntil(3 * time.Hour)
	r.e.RunUntil(6 * time.Hour)
	if j.State != sched.JobCompleted && j.State != sched.JobKilledWalltime {
		t.Fatalf("job in non-terminal state %v", j.State)
	}
}

// TestCheckpointDuringKillIsDropped: a checkpoint requested just before a
// kill must not fire its callback afterward.
func TestCheckpointRequestDroppedOnKill(t *testing.T) {
	r := newRig(t)
	spec := basicSpec("ck", 100, time.Minute)
	spec.CheckpointCost = 10 * time.Minute
	j := r.launch(t, spec, 1, 30*time.Minute)
	inst, _ := r.rt.Instance(j.ID)
	r.e.RunUntil(28 * time.Minute)
	fired := false
	_ = inst.RequestCheckpoint(func() { fired = true })
	// Job is killed at 30m; the checkpoint (ending at ~39m) must be dropped.
	r.e.RunUntil(2 * time.Hour)
	if j.State != sched.JobKilledWalltime {
		t.Fatalf("state = %v", j.State)
	}
	if fired {
		t.Error("checkpoint callback fired after the job died")
	}
}

// TestRequestCheckpointOnDeadInstanceErrors covers the guard.
func TestRequestCheckpointOnDeadInstanceErrors(t *testing.T) {
	r := newRig(t)
	j := r.launch(t, basicSpec("s", 2, time.Minute), 1, time.Hour)
	inst, _ := r.rt.Instance(j.ID)
	r.e.Run()
	if err := inst.RequestCheckpoint(nil); err == nil {
		t.Error("checkpoint on completed instance should error")
	}
}

// TestMarkerLabelsCarryIdentity verifies loop components can select a
// specific job's markers by label.
func TestMarkerLabelsCarryIdentity(t *testing.T) {
	r := newRig(t)
	j := r.launch(t, basicSpec("idapp", 3, time.Minute), 1, time.Hour)
	r.e.Run()
	ss := r.db.Query("app.progress", telemetry.Labels{"app": "idapp", "user": "alice"}, 0, time.Hour)
	if len(ss) != 1 {
		t.Fatalf("label query matched %d series", len(ss))
	}
	_ = j
}

// TestTSDBConcurrentReadersDuringAppends exercises the store's locking the
// way cmd/modad does: network readers querying while the simulation appends.
func TestTSDBConcurrentReadersDuringAppends(t *testing.T) {
	r := newRig(t)
	r.launch(t, basicSpec("busy", 500, time.Second), 1, time.Hour)
	var wg sync.WaitGroup
	stopReaders := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
					r.db.Query("app.progress", nil, 0, time.Hour)
					r.db.Latest("app.progress", nil)
				}
			}
		}()
	}
	r.e.RunUntil(10 * time.Minute) // appends markers while readers spin
	close(stopReaders)
	wg.Wait()
	if r.db.Appended() == 0 {
		t.Error("no samples appended")
	}
}
