package app

import (
	"fmt"
	"testing"
	"time"

	"autoloop/internal/hw"
	"autoloop/internal/pfs"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

// rig assembles engine + db + fs + cluster + scheduler + runtime.
type rig struct {
	e  *sim.Engine
	db *tsdb.DB
	fs *pfs.FS
	cl *hw.Cluster
	s  *sched.Scheduler
	rt *Runtime
}

func newRig(t *testing.T) *rig {
	t.Helper()
	e := sim.NewEngine(1)
	db := tsdb.New(0)
	fs := pfs.New(e, pfs.Config{OSTs: 4, OSTBandwidthMBps: 100, DefaultStripeCount: 2})
	ccfg := hw.DefaultConfig()
	ccfg.Nodes = 4
	ccfg.SensorNoise = 0
	cl := hw.New(e, ccfg)
	s := sched.New(e, cl.UpNodes(), sched.DefaultExtensionPolicy())
	rt := NewRuntime(e, db, fs, cl)
	rt.OnComplete = func(inst *Instance) { s.JobFinished(inst.Job.ID) }
	s.SetHooks(rt.Start, rt.Kill)
	return &rig{e: e, db: db, fs: fs, cl: cl, s: s, rt: rt}
}

func (r *rig) launch(t *testing.T, spec Spec, nodes int, wall time.Duration) *sched.Job {
	t.Helper()
	r.rt.RegisterSpec(spec.Name, spec)
	j, err := r.s.Submit(spec.Name, "alice", nodes, wall, 0)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func basicSpec(name string, iters int, iterTime time.Duration) Spec {
	return Spec{Name: name, TotalIters: iters, IterTime: sim.Constant{V: iterTime}}
}

func TestRunToCompletion(t *testing.T) {
	r := newRig(t)
	j := r.launch(t, basicSpec("sim", 10, time.Minute), 1, time.Hour)
	r.e.Run()
	if j.State != sched.JobCompleted {
		t.Fatalf("state = %v", j.State)
	}
	if j.End != 10*time.Minute {
		t.Errorf("completed at %v, want 10m", j.End)
	}
	inst, _ := r.rt.Instance(j.ID)
	if inst.Iter() != 10 {
		t.Errorf("iters = %d", inst.Iter())
	}
}

func TestProgressMarkersEmitted(t *testing.T) {
	r := newRig(t)
	spec := basicSpec("sim", 10, time.Minute)
	spec.MarkerEvery = 2
	j := r.launch(t, spec, 1, time.Hour)
	r.e.Run()
	label := telemetry.Labels{"job": fmt.Sprintf("%d", j.ID)}
	ss := r.db.Query("app.progress", label, 0, time.Hour)
	if len(ss) != 1 {
		t.Fatalf("got %d progress series", len(ss))
	}
	// markers at start (0) + every 2 iterations = 6 samples.
	if got := ss[0].Len(); got != 6 {
		t.Errorf("got %d markers, want 6", got)
	}
	if last, _ := ss[0].Last(); last.Value != 10 {
		t.Errorf("final marker = %v, want 10", last.Value)
	}
	total, ok := r.db.LatestValue("app.progress_total", label)
	if !ok || total != 10 {
		t.Errorf("progress_total = %v, %v", total, ok)
	}
}

func TestWalltimeKillStopsExecution(t *testing.T) {
	r := newRig(t)
	j := r.launch(t, basicSpec("sim", 1000, time.Minute), 1, 30*time.Minute)
	r.e.RunUntil(2 * time.Hour)
	if j.State != sched.JobKilledWalltime {
		t.Fatalf("state = %v", j.State)
	}
	inst, _ := r.rt.Instance(j.ID)
	if inst.Running() {
		t.Error("instance still running after kill")
	}
	iterAtKill := inst.Iter()
	r.e.Run()
	if inst.Iter() != iterAtKill {
		t.Error("iterations advanced after kill")
	}
}

func TestIOPhases(t *testing.T) {
	r := newRig(t)
	spec := basicSpec("io", 10, time.Minute)
	spec.IOEvery = 5
	spec.IOSizeMB = 200
	spec.StripeCount = 2
	j := r.launch(t, spec, 1, 2*time.Hour)
	r.e.Run()
	if j.State != sched.JobCompleted {
		t.Fatalf("state = %v", j.State)
	}
	// One I/O phase at iteration 5 (not at 10, the final iteration).
	ss := r.db.Query("app.io.lat_ms", nil, 0, 3*time.Hour)
	if len(ss) != 1 || ss[0].Len() != 1 {
		t.Fatalf("io.lat_ms series = %+v", ss)
	}
	// 200MB over 2 stripes at 100MB/s = 1s per stripe chunk.
	if got := ss[0].Samples[0].Value; got != 1000 {
		t.Errorf("io latency = %vms, want 1000", got)
	}
	// Completion is delayed by the I/O second.
	if j.End != 10*time.Minute+time.Second {
		t.Errorf("end = %v, want 10m1s", j.End)
	}
}

func TestCheckpointAtBoundaryAndResume(t *testing.T) {
	r := newRig(t)
	spec := basicSpec("ck", 100, time.Minute)
	spec.CheckpointCost = 2 * time.Minute
	j := r.launch(t, spec, 1, 24*time.Hour)
	inst, _ := r.rt.Instance(j.ID)

	done := false
	r.e.RunUntil(10*time.Minute + 30*time.Second) // mid-iteration 11
	if err := inst.RequestCheckpoint(func() { done = true }); err != nil {
		t.Fatal(err)
	}
	r.e.RunUntil(13 * time.Minute) // iteration 11 ends at 11m, ckpt at 13m
	if !done {
		t.Fatal("checkpoint callback not fired")
	}
	if inst.CheckpointIter() != 11 {
		t.Errorf("ckpt iter = %d, want 11", inst.CheckpointIter())
	}
	// Requeue: job restarts from checkpoint, not from zero.
	if err := r.s.Requeue(j.ID); err != nil {
		t.Fatal(err)
	}
	inst2, _ := r.rt.Instance(j.ID)
	if inst2.Iter() != 11 {
		t.Errorf("restarted at iter %d, want 11", inst2.Iter())
	}
	r.e.Run()
	if j.State != sched.JobCompleted {
		t.Errorf("state = %v", j.State)
	}
}

func TestAsyncCheckpointOverlapsCompute(t *testing.T) {
	r := newRig(t)
	spec := basicSpec("ck", 10, time.Minute)
	spec.CheckpointCost = 5 * time.Minute
	spec.AsyncCheckpoint = true
	j := r.launch(t, spec, 1, time.Hour)
	inst, _ := r.rt.Instance(j.ID)
	_ = inst.RequestCheckpoint(nil)
	r.e.Run()
	// Synchronous would finish at 15m; async at 10m.
	if j.End != 10*time.Minute {
		t.Errorf("end = %v, want 10m with async checkpoint", j.End)
	}
	if inst.CheckpointIter() != 1 {
		t.Errorf("ckpt iter = %d, want 1", inst.CheckpointIter())
	}
}

func TestLostIters(t *testing.T) {
	r := newRig(t)
	spec := basicSpec("ck", 100, time.Minute)
	j := r.launch(t, spec, 1, 50*time.Minute)
	inst, _ := r.rt.Instance(j.ID)
	r.e.RunUntil(20 * time.Minute)
	_ = inst.RequestCheckpoint(nil)
	r.e.RunUntil(25 * time.Minute)
	r.e.RunUntil(2 * time.Hour) // killed at 50m with ~50 iters done, 21 checkpointed
	if j.State != sched.JobKilledWalltime {
		t.Fatalf("state = %v", j.State)
	}
	if lost := inst.LostIters(); lost != inst.Iter()-21 {
		t.Errorf("LostIters = %d, iter=%d ckpt=%d", lost, inst.Iter(), inst.CheckpointIter())
	}
}

func TestMisconfigThreadsSlowdownAndSignal(t *testing.T) {
	r := newRig(t)
	clean := basicSpec("clean", 10, time.Minute)
	bad := basicSpec("bad", 10, time.Minute)
	bad.Misconfig = MisconfigThreads
	jc := r.launch(t, clean, 1, 2*time.Hour)
	jb := r.launch(t, bad, 1, 2*time.Hour)
	r.e.Run()
	cleanDur := jc.End - jc.Start
	badDur := jb.End - jb.Start
	ratio := float64(badDur) / float64(cleanDur)
	if ratio < 1.55 || ratio > 1.65 {
		t.Errorf("threads slowdown ratio = %.2f, want ~1.6", ratio)
	}
	ctx, ok := r.db.LatestValue("app.ctx_switch_rate", telemetry.Labels{"app": "bad"})
	if !ok || ctx < 40000 {
		t.Errorf("ctx_switch_rate = %v, want pathological (>40k)", ctx)
	}
	ctxClean, _ := r.db.LatestValue("app.ctx_switch_rate", telemetry.Labels{"app": "clean"})
	if ctxClean > 5000 {
		t.Errorf("clean ctx rate = %v, want nominal", ctxClean)
	}
}

func TestMisconfigWrongLibSignal(t *testing.T) {
	r := newRig(t)
	bad := basicSpec("bad", 5, time.Minute)
	bad.Misconfig = MisconfigWrongLib
	r.launch(t, bad, 1, time.Hour)
	r.e.Run()
	if _, ok := r.db.LatestValue("app.lib_warn", telemetry.Labels{"app": "bad"}); !ok {
		t.Error("lib_warn missing")
	}
}

func TestMisconfigUnderutilIdlesHalfAllocation(t *testing.T) {
	r := newRig(t)
	bad := basicSpec("bad", 100, time.Minute)
	bad.Misconfig = MisconfigUnderutil
	j := r.launch(t, bad, 4, 3*time.Hour)
	r.e.RunUntil(5 * time.Minute)
	low, high := 0, 0
	for _, n := range j.AssignedNodes {
		if r.cl.Util(n) < 0.05 {
			low++
		} else {
			high++
		}
	}
	if low != 2 || high != 2 {
		t.Errorf("underutil split = %d low / %d high, want 2/2", low, high)
	}
}

func TestFixMisconfigRestoresSpeed(t *testing.T) {
	r := newRig(t)
	bad := basicSpec("bad", 20, time.Minute)
	bad.Misconfig = MisconfigThreads
	j := r.launch(t, bad, 1, 3*time.Hour)
	inst, _ := r.rt.Instance(j.ID)
	r.e.RunUntil(time.Minute)
	if err := inst.FixMisconfig(); err != nil {
		t.Fatal(err)
	}
	if !inst.Fixed() {
		t.Error("Fixed() should be true")
	}
	r.e.Run()
	// First iteration at 1.6x (96s), remaining 19 at 60s each.
	want := 96*time.Second + 19*time.Minute
	if got := j.End - j.Start; got != want {
		t.Errorf("duration = %v, want %v", got, want)
	}
}

func TestFixMisconfigErrors(t *testing.T) {
	r := newRig(t)
	under := basicSpec("u", 10, time.Minute)
	under.Misconfig = MisconfigUnderutil
	ju := r.launch(t, under, 2, time.Hour)
	iu, _ := r.rt.Instance(ju.ID)
	if err := iu.FixMisconfig(); err == nil {
		t.Error("underutil fix should error")
	}
	clean := basicSpec("c", 10, time.Minute)
	jc := r.launch(t, clean, 1, time.Hour)
	ic, _ := r.rt.Instance(jc.ID)
	if err := ic.FixMisconfig(); err == nil {
		t.Error("fixing a clean app should error")
	}
}

func TestReopenAvoiding(t *testing.T) {
	r := newRig(t)
	spec := basicSpec("io", 50, time.Minute)
	spec.IOEvery = 5
	spec.IOSizeMB = 10
	spec.StripeCount = 2
	j := r.launch(t, spec, 1, 3*time.Hour)
	inst, _ := r.rt.Instance(j.ID)
	r.e.RunUntil(time.Minute)
	if err := inst.ReopenAvoiding(0, 1); err != nil {
		t.Fatal(err)
	}
	for _, o := range inst.File().OSTs() {
		if o == 0 || o == 1 {
			t.Errorf("layout %v includes avoided OST", inst.File().OSTs())
		}
	}
}

func TestNodeUtilDrivenDuringRun(t *testing.T) {
	r := newRig(t)
	j := r.launch(t, basicSpec("sim", 100, time.Minute), 2, 3*time.Hour)
	r.e.RunUntil(time.Minute)
	for _, n := range j.AssignedNodes {
		if got := r.cl.Util(n); got != 0.9 {
			t.Errorf("util(%s) = %v, want 0.9", n, got)
		}
	}
	r.e.RunUntil(2 * time.Hour)
	r.e.Run()
	for _, n := range []string{"n000", "n001"} {
		if got := r.cl.Util(n); got != 0 {
			t.Errorf("util(%s) = %v after completion, want 0", n, got)
		}
	}
}

func TestUnregisteredSpecPanics(t *testing.T) {
	r := newRig(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unregistered spec")
		}
	}()
	_, _ = r.s.Submit("ghost", "u", 1, time.Hour, 0)
}

func TestDriftSlowsIterations(t *testing.T) {
	r := newRig(t)
	spec := basicSpec("drift", 100, time.Second)
	spec.DriftPerIter = 0.01 // 1% per iteration
	j := r.launch(t, spec, 1, time.Hour)
	r.e.Run()
	// Sum of 1*(1+0.01*i) for i=0..99 = 100 + 0.01*4950 = 149.5s
	want := 149500 * time.Millisecond
	if got := j.End - j.Start; got < want-time.Millisecond || got > want+time.Millisecond {
		t.Errorf("duration = %v, want ~%v", got, want)
	}
}

func TestPhaseShift(t *testing.T) {
	r := newRig(t)
	spec := basicSpec("phase", 10, time.Second)
	spec.PhaseAt = 5
	spec.PhaseFactor = 2
	j := r.launch(t, spec, 1, time.Hour)
	r.e.Run()
	// 5 iterations at 1s + 5 at 2s = 15s
	if got := j.End - j.Start; got != 15*time.Second {
		t.Errorf("duration = %v, want 15s", got)
	}
}

func TestIdealRuntime(t *testing.T) {
	s := basicSpec("x", 60, time.Minute)
	if got := s.IdealRuntime(); got != time.Hour {
		t.Errorf("IdealRuntime = %v", got)
	}
}

func TestMisconfigString(t *testing.T) {
	for m, want := range map[Misconfig]string{
		MisconfigNone: "none", MisconfigThreads: "threads",
		MisconfigUnderutil: "underutil", MisconfigWrongLib: "wronglib", Misconfig(9): "unknown",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %s", m, m.String())
		}
	}
}
