package facility

import (
	"math"
	"testing"
	"time"

	"autoloop/internal/sim"
)

type fixedLoad float64

func (f fixedLoad) TotalPowerW() float64 { return float64(f) }

func newPlant(loadW float64) (*sim.Engine, *Plant) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.SensorNoise = 0
	return e, New(e, cfg, fixedLoad(loadW))
}

func TestNilLoadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(sim.NewEngine(1), DefaultConfig(), nil)
}

func TestOutsideTemperatureCycle(t *testing.T) {
	_, p := newPlant(10000)
	min := p.OutsideC(4 * time.Hour)
	max := p.OutsideC(16 * time.Hour)
	if math.Abs(min-(15-8)) > 0.01 {
		t.Errorf("4am temp = %.2f, want 7", min)
	}
	if math.Abs(max-(15+8)) > 0.01 {
		t.Errorf("4pm temp = %.2f, want 23", max)
	}
	// Periodicity: same phase next day.
	if d := p.OutsideC(4*time.Hour) - p.OutsideC(28*time.Hour); math.Abs(d) > 0.01 {
		t.Errorf("daily cycle not periodic: delta %.3f", d)
	}
}

func TestCOPRespondsToSetpointAndWeather(t *testing.T) {
	_, p := newPlant(10000)
	base := p.COP(4 * time.Hour)
	p.SetSupplySetpointC(26)
	raised := p.COP(4 * time.Hour)
	if raised <= base {
		t.Errorf("COP should improve with higher setpoint: %v -> %v", base, raised)
	}
	hot := p.COP(16 * time.Hour)
	if hot >= raised {
		t.Errorf("COP should degrade in afternoon heat: %v -> %v", raised, hot)
	}
}

func TestSetpointClamped(t *testing.T) {
	_, p := newPlant(1)
	p.SetSupplySetpointC(100)
	if p.SupplySetpointC() != 30 {
		t.Errorf("setpoint = %v, want clamped 30", p.SupplySetpointC())
	}
	p.SetSupplySetpointC(-10)
	if p.SupplySetpointC() != 14 {
		t.Errorf("setpoint = %v, want clamped 14", p.SupplySetpointC())
	}
}

func TestPUE(t *testing.T) {
	_, p := newPlant(10000)
	pue := p.PUE(12 * time.Hour)
	if pue <= 1.0 || pue > 2.0 {
		t.Errorf("PUE = %.3f, want plausible (1,2]", pue)
	}
	// Zero load: PUE undefined -> +Inf.
	_, empty := newPlant(0)
	if !math.IsInf(empty.PUE(0), 1) {
		t.Error("zero-load PUE should be +Inf")
	}
}

func TestCoolingPowerScalesWithLoad(t *testing.T) {
	_, small := newPlant(5000)
	_, large := newPlant(20000)
	if large.CoolingPowerW(0) <= small.CoolingPowerW(0) {
		t.Error("cooling power should grow with IT load")
	}
}

func TestCollector(t *testing.T) {
	e, p := newPlant(10000)
	pts := p.Collector().Collect(e.Now())
	names := map[string]bool{}
	for _, pt := range pts {
		names[pt.Name] = true
	}
	for _, want := range []string{"facility.outside.celsius", "facility.supply.setpoint", "facility.cooling.watts", "facility.it.watts", "facility.pue"} {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
	// Zero-load plant omits PUE rather than emitting Inf.
	_, empty := newPlant(0)
	for _, pt := range empty.Collector().Collect(0) {
		if pt.Name == "facility.pue" {
			t.Error("zero-load collector must omit facility.pue")
		}
	}
}
