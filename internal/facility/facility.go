// Package facility models the building-infrastructure domain of the paper's
// Fig. 1: a cooling plant removing the cluster's IT heat load, outside and
// supply air temperatures, cooling power, and the resulting PUE.
//
// The model is first-order: cooling power is the IT load divided by a
// coefficient of performance that degrades as the outside temperature rises
// and improves with a higher supply-temperature setpoint. The setpoint is an
// actuator — facility-domain autonomy loops can raise it to save cooling
// energy at the cost of hotter component temperatures.
package facility

import (
	"math"
	"time"

	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
)

// Config parameterizes the facility model.
type Config struct {
	BaseCOP       float64 // coefficient of performance at reference temps
	OutsideMeanC  float64 // daily mean outside temperature
	OutsideSwingC float64 // daily sinusoidal swing amplitude
	SupplySetC    float64 // initial supply air setpoint
	OverheadW     float64 // fixed facility overhead (lighting, UPS losses)
	SensorNoise   float64 // multiplicative sensor noise stddev
	DayLength     time.Duration
}

// DefaultConfig returns a temperate-climate facility.
func DefaultConfig() Config {
	return Config{
		BaseCOP:       4.0,
		OutsideMeanC:  15,
		OutsideSwingC: 8,
		SupplySetC:    20,
		OverheadW:     2000,
		SensorNoise:   0.01,
		DayLength:     24 * time.Hour,
	}
}

// ITLoad reports the instantaneous IT power draw to be cooled; the cluster's
// TotalPowerW method satisfies it.
type ITLoad interface {
	TotalPowerW() float64
}

// AmbientSink receives the effective inlet-air temperature implied by the
// plant's supply setpoint; the cluster implements it, closing the
// facility-to-hardware thermal coupling.
type AmbientSink interface {
	SetAmbient(ambientC float64)
}

// Plant is the cooling plant.
type Plant struct {
	cfg    Config
	engine *sim.Engine
	load   ITLoad
	supply float64
	sink   AmbientSink
}

// New builds a plant cooling the given IT load.
func New(engine *sim.Engine, cfg Config, load ITLoad) *Plant {
	if load == nil {
		panic("facility: nil IT load")
	}
	if cfg.DayLength <= 0 {
		cfg.DayLength = 24 * time.Hour
	}
	return &Plant{cfg: cfg, engine: engine, load: load, supply: cfg.SupplySetC}
}

// OutsideC returns the outside temperature at virtual time now, following a
// sinusoidal daily cycle with its minimum at 04:00.
func (p *Plant) OutsideC(now time.Duration) float64 {
	frac := math.Mod(now.Hours(), p.cfg.DayLength.Hours()) / p.cfg.DayLength.Hours()
	// Minimum at 4am, maximum at 4pm.
	phase := 2 * math.Pi * (frac - 4.0/24.0)
	return p.cfg.OutsideMeanC - p.cfg.OutsideSwingC*math.Cos(phase)
}

// SupplySetpointC returns the current supply-air setpoint.
func (p *Plant) SupplySetpointC() float64 { return p.supply }

// BindAmbient couples the plant's supply setpoint to a consumer of inlet-air
// temperature (normally the cluster): every setpoint change propagates as
// supply + 2°C of rack-level heat pickup.
func (p *Plant) BindAmbient(sink AmbientSink) {
	p.sink = sink
	p.pushAmbient()
}

func (p *Plant) pushAmbient() {
	if p.sink != nil {
		p.sink.SetAmbient(p.supply + 2)
	}
}

// SetSupplySetpointC adjusts the supply-air setpoint actuator, clamped to a
// safe [14, 30] °C band, propagating to any bound ambient sink.
func (p *Plant) SetSupplySetpointC(c float64) {
	p.supply = math.Max(14, math.Min(30, c))
	p.pushAmbient()
}

// COP returns the plant's coefficient of performance at time now: higher
// supply setpoints and cooler outside air both improve it.
func (p *Plant) COP(now time.Duration) float64 {
	outside := p.OutsideC(now)
	cop := p.cfg.BaseCOP + 0.12*(p.supply-20) - 0.08*(outside-15)
	return math.Max(1.2, cop)
}

// CoolingPowerW returns the electrical power the plant draws at time now to
// remove the current IT heat load.
func (p *Plant) CoolingPowerW(now time.Duration) float64 {
	return p.load.TotalPowerW() / p.COP(now)
}

// PUE returns the power usage effectiveness at time now:
// (IT + cooling + overhead) / IT. Returns +Inf when the IT load is zero.
func (p *Plant) PUE(now time.Duration) float64 {
	it := p.load.TotalPowerW()
	if it <= 0 {
		return math.Inf(1)
	}
	return (it + p.CoolingPowerW(now) + p.cfg.OverheadW) / it
}

// Collector exposes the facility sensor domain: facility.outside.celsius,
// facility.supply.setpoint, facility.cooling.watts, facility.it.watts,
// facility.pue.
func (p *Plant) Collector() telemetry.Collector {
	return telemetry.CollectorFunc(func(now time.Duration) []telemetry.Point {
		noise := func() float64 {
			if p.cfg.SensorNoise <= 0 {
				return 1
			}
			return 1 + p.engine.Rand().NormFloat64()*p.cfg.SensorNoise
		}
		labels := telemetry.Labels{"plant": "p0"}
		pue := p.PUE(now)
		pts := []telemetry.Point{
			{Name: "facility.outside.celsius", Labels: labels, Time: now, Value: p.OutsideC(now) * noise()},
			{Name: "facility.supply.setpoint", Labels: labels, Time: now, Value: p.supply},
			{Name: "facility.cooling.watts", Labels: labels, Time: now, Value: p.CoolingPowerW(now) * noise()},
			{Name: "facility.it.watts", Labels: labels, Time: now, Value: p.load.TotalPowerW() * noise()},
		}
		if !math.IsInf(pue, 1) {
			pts = append(pts, telemetry.Point{Name: "facility.pue", Labels: labels, Time: now, Value: pue})
		}
		return pts
	})
}
