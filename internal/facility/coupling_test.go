package facility

import (
	"testing"
	"time"

	"autoloop/internal/hw"
	"autoloop/internal/sim"
)

// TestAmbientCouplingHeatsNodes verifies the facility→hardware coupling:
// raising the supply setpoint raises node inlet temperature and, after the
// thermal time constant, steady-state component temperature.
func TestAmbientCouplingHeatsNodes(t *testing.T) {
	e := sim.NewEngine(1)
	ccfg := hw.DefaultConfig()
	ccfg.Nodes = 4
	ccfg.SensorNoise = 0
	cl := hw.New(e, ccfg)
	plant := New(e, DefaultConfig(), cl)
	plant.BindAmbient(cl)

	if got := cl.Ambient(); got != plant.SupplySetpointC()+2 {
		t.Fatalf("ambient = %v, want setpoint+2 = %v", got, plant.SupplySetpointC()+2)
	}
	cl.SetUtil("n000", 0.8)
	col := cl.Collector()
	settle := func() float64 {
		for i := 0; i < 40; i++ {
			e.RunFor(30 * time.Second)
			col.Collect(e.Now())
		}
		var temp float64
		for _, p := range col.Collect(e.Now()) {
			if p.Name == "node.temp.celsius" && p.Labels["node"] == "n000" {
				temp = p.Value
			}
		}
		return temp
	}
	before := settle()
	plant.SetSupplySetpointC(plant.SupplySetpointC() + 6)
	after := settle()
	if after-before < 5 || after-before > 7 {
		t.Errorf("node temp moved %.1f°C for a 6°C setpoint raise, want ~6", after-before)
	}
}

// TestCouplingWithoutBindIsInert ensures the coupling is opt-in.
func TestCouplingWithoutBindIsInert(t *testing.T) {
	e := sim.NewEngine(1)
	ccfg := hw.DefaultConfig()
	ccfg.Nodes = 2
	cl := hw.New(e, ccfg)
	plant := New(e, DefaultConfig(), cl)
	ambient := cl.Ambient()
	plant.SetSupplySetpointC(28)
	if cl.Ambient() != ambient {
		t.Error("unbound plant changed cluster ambient")
	}
}

// TestEnergyThermalTradeoff demonstrates the whole point of the coupling:
// a higher setpoint costs component margin but saves cooling power.
func TestEnergyThermalTradeoff(t *testing.T) {
	e := sim.NewEngine(1)
	ccfg := hw.DefaultConfig()
	ccfg.Nodes = 8
	ccfg.SensorNoise = 0
	cl := hw.New(e, ccfg)
	plant := New(e, DefaultConfig(), cl)
	plant.BindAmbient(cl)
	for _, n := range cl.UpNodes() {
		cl.SetUtil(n, 0.9)
	}
	lowCool := plant.CoolingPowerW(e.Now())
	plant.SetSupplySetpointC(28)
	highCool := plant.CoolingPowerW(e.Now())
	if highCool >= lowCool {
		t.Errorf("cooling power should fall with higher setpoint: %.0fW -> %.0fW", lowCool, highCool)
	}
}
