package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"autoloop/internal/bus"
)

// eventLoop builds a loop that always finds one symptom and plans one action.
func eventLoop(execErr error) *Loop {
	return NewLoop("evt",
		MonitorFunc(func(now time.Duration) (Observation, error) {
			return Observation{Time: now}, nil
		}),
		AnalyzerFunc(func(now time.Duration, obs Observation) (Symptoms, error) {
			return Symptoms{Time: now, Findings: []Finding{{Kind: "hot", Subject: "n1", Value: 91}}}, nil
		}),
		PlannerFunc(func(now time.Duration, sym Symptoms) (Plan, error) {
			return Plan{Time: now, Actions: []Action{{Kind: "cool", Subject: "n1", Amount: 1}}}, nil
		}),
		ExecutorFunc(func(now time.Duration, a Action) (ActionResult, error) {
			if execErr != nil {
				return ActionResult{}, execErr
			}
			return ActionResult{Action: a, Honored: true, Granted: a.Amount}, nil
		}),
	)
}

func TestLoopPublishesLifecycleEvents(t *testing.T) {
	b := bus.New()
	var topics []string
	b.Subscribe("loop.evt.*", func(e bus.Envelope) { topics = append(topics, e.Topic) })
	var payloads []interface{}
	b.Subscribe("loop.evt.execute", func(e bus.Envelope) { payloads = append(payloads, e.Payload) })

	l := eventLoop(nil)
	l.Bus = b
	l.Tick(time.Minute)

	want := []string{"loop.evt.finding", "loop.evt.plan", "loop.evt.execute"}
	if strings.Join(topics, ",") != strings.Join(want, ",") {
		t.Fatalf("topics = %v, want %v", topics, want)
	}
	if len(payloads) != 1 {
		t.Fatalf("execute events = %d, want 1", len(payloads))
	}
	res, ok := payloads[0].(ActionResult)
	if !ok || !res.Honored || res.Action.Kind != "cool" {
		t.Errorf("execute payload = %#v", payloads[0])
	}
	// The whole tick must publish as one batch: published counts 3 envelopes.
	if pub, del := b.Stats(); pub != 3 || del != 4 {
		t.Errorf("bus stats = %d, %d; want 3, 4", pub, del)
	}
}

func TestLoopPublishesVetoAndFailedExecute(t *testing.T) {
	b := bus.New()
	counts := map[string]int{}
	b.Subscribe("loop.evt.*", func(e bus.Envelope) {
		counts[strings.TrimPrefix(e.Topic, "loop.evt.")]++
	})

	vetoed := eventLoop(nil)
	vetoed.Bus = b
	vetoed.Guards = []Guardrail{GuardrailFunc(func(now time.Duration, loop string, a Action) error {
		return fmt.Errorf("no")
	})}
	vetoed.Tick(time.Minute)
	if counts["veto"] != 1 || counts["execute"] != 0 {
		t.Errorf("after veto: %v", counts)
	}

	failing := eventLoop(fmt.Errorf("actuator offline"))
	failing.Bus = b
	failing.Tick(2 * time.Minute)
	if counts["execute"] != 1 {
		t.Errorf("after failed execute: %v", counts)
	}
}

func TestLoopWithoutBusPublishesNothing(t *testing.T) {
	l := eventLoop(nil)
	l.Tick(time.Minute) // must not panic with a nil bus
	if l.Metrics().ExecutedActions != 1 {
		t.Errorf("metrics = %+v", l.Metrics())
	}
}
