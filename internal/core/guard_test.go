package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestConfidenceGate(t *testing.T) {
	cases := []struct {
		name       string
		min, conf  float64
		wantVetoed bool
	}{
		{"above gate passes", 0.5, 0.9, false},
		{"exactly at gate passes", 0.5, 0.5, false},
		{"below gate vetoed", 0.5, 0.49, true},
		{"zero gate passes zero confidence", 0, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := ConfidenceGate{Min: tc.min}
			err := g.Check(time.Second, "l", Action{Kind: "x", Subject: "s", Confidence: tc.conf})
			if (err != nil) != tc.wantVetoed {
				t.Errorf("Check conf=%v gate=%v: err=%v, want veto=%v", tc.conf, tc.min, err, tc.wantVetoed)
			}
		})
	}
}

func TestRateLimitSlidingWindow(t *testing.T) {
	r := NewRateLimit(2, time.Minute)
	a := Action{Kind: "x", Subject: "s"}
	if err := r.Check(0, "l", a); err != nil {
		t.Fatalf("first action vetoed: %v", err)
	}
	if err := r.Check(10*time.Second, "l", a); err != nil {
		t.Fatalf("second action vetoed: %v", err)
	}
	if err := r.Check(20*time.Second, "l", a); err == nil {
		t.Fatal("third action within window must be vetoed")
	}
	// The first action (t=0) leaves the sliding window at t>60s; one slot
	// frees up. The rejected attempt at t=20s must not have consumed budget.
	if err := r.Check(61*time.Second, "l", a); err != nil {
		t.Fatalf("action after window slid must pass: %v", err)
	}
	if err := r.Check(62*time.Second, "l", a); err == nil {
		t.Fatal("window is full again; action must be vetoed")
	}
}

func TestRateLimitPanicsOnBadConfig(t *testing.T) {
	for _, fn := range []func(){
		func() { NewRateLimit(0, time.Minute) },
		func() { NewRateLimit(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on non-positive rate-limit config")
				}
			}()
			fn()
		}()
	}
}

func TestSubjectCap(t *testing.T) {
	c := NewSubjectCap("extend", 2)
	ext := func(subject string) Action { return Action{Kind: "extend", Subject: subject} }
	for i := 0; i < 2; i++ {
		if err := c.Check(0, "l", ext("job1")); err != nil {
			t.Fatalf("extend %d on job1 vetoed: %v", i+1, err)
		}
	}
	if err := c.Check(0, "l", ext("job1")); err == nil {
		t.Fatal("third extend on job1 must be vetoed")
	}
	if err := c.Check(0, "l", ext("job2")); err != nil {
		t.Fatalf("other subject must have its own budget: %v", err)
	}
	if err := c.Check(0, "l", Action{Kind: "checkpoint", Subject: "job1"}); err != nil {
		t.Fatalf("other kind must not be capped: %v", err)
	}
}

func TestSubjectCapEmptyKindMatchesAll(t *testing.T) {
	c := NewSubjectCap("", 1)
	if err := c.Check(0, "l", Action{Kind: "a", Subject: "s"}); err != nil {
		t.Fatalf("first action vetoed: %v", err)
	}
	if err := c.Check(0, "l", Action{Kind: "b", Subject: "s"}); err == nil {
		t.Fatal("kind-agnostic cap must count every kind")
	}
}

func TestDryRunVetoesEverything(t *testing.T) {
	if err := (DryRun{}).Check(0, "l", Action{Kind: "x", Subject: "s", Confidence: 1}); err == nil {
		t.Fatal("dry-run must veto")
	}
}

// guardedLoop builds a loop planning one action, with the given guards.
func guardedLoop(guards ...Guardrail) *Loop {
	l := NewLoop("guarded",
		MonitorFunc(func(now time.Duration) (Observation, error) { return Observation{Time: now}, nil }),
		AnalyzerFunc(func(now time.Duration, obs Observation) (Symptoms, error) {
			return Symptoms{Time: now, Findings: []Finding{{Kind: "f", Subject: "s", Confidence: 0.9}}}, nil
		}),
		PlannerFunc(func(now time.Duration, sym Symptoms) (Plan, error) {
			return Plan{Time: now, Actions: []Action{{Kind: "act", Subject: "s", Confidence: 0.9}}}, nil
		}),
		ExecutorFunc(func(now time.Duration, a Action) (ActionResult, error) {
			return ActionResult{Action: a, Honored: true}, nil
		}),
	)
	l.Guards = guards
	l.Audit = NewAuditLog(0)
	return l
}

func TestGuardOrderingFirstErrorWins(t *testing.T) {
	var calls []string
	mk := func(name string, err error) Guardrail {
		return GuardrailFunc(func(now time.Duration, loop string, a Action) error {
			calls = append(calls, name)
			return err
		})
	}
	l := guardedLoop(
		mk("pass", nil),
		mk("veto-a", errors.New("first veto")),
		mk("veto-b", errors.New("second veto")),
	)
	l.Tick(time.Second)

	if want := []string{"pass", "veto-a"}; strings.Join(calls, ",") != strings.Join(want, ",") {
		t.Errorf("guard calls = %v, want %v (later guards must not run after a veto)", calls, want)
	}
	m := l.Metrics()
	if m.VetoedActions != 1 || m.ExecutedActions != 0 {
		t.Errorf("metrics = %+v, want 1 veto, 0 executions", m)
	}
	entries := l.Audit.Filter("guarded", "veto")
	if len(entries) != 1 || !strings.Contains(entries[0].Msg, "first veto") {
		t.Errorf("veto audit = %v, want one entry carrying the first guard's error", entries)
	}
}

func TestGuardPassPathExecutesAndAudits(t *testing.T) {
	l := guardedLoop(ConfidenceGate{Min: 0.5}, NewSubjectCap("act", 3))
	l.Tick(time.Second)
	m := l.Metrics()
	if m.VetoedActions != 0 || m.ExecutedActions != 1 {
		t.Errorf("metrics = %+v, want a clean execution", m)
	}
	if len(l.Audit.Filter("guarded", "veto")) != 0 {
		t.Error("pass path must not audit a veto")
	}
	if len(l.Audit.Filter("guarded", "execute")) != 1 {
		t.Error("execution not audited")
	}
}

func TestEachBuiltinGuardrailVetoPathInLoop(t *testing.T) {
	cases := []struct {
		name  string
		guard Guardrail
	}{
		{"confidence gate", ConfidenceGate{Min: 0.95}},
		{"dry run", DryRun{}},
		{"exhausted subject cap", func() Guardrail {
			c := NewSubjectCap("act", 1)
			if err := c.Check(0, "warm", Action{Kind: "act", Subject: "s"}); err != nil {
				t.Fatalf("warmup: %v", err)
			}
			return c
		}()},
		{"exhausted rate limit", func() Guardrail {
			r := NewRateLimit(1, time.Hour)
			if err := r.Check(time.Second, "warm", Action{Kind: "act", Subject: "s"}); err != nil {
				t.Fatalf("warmup: %v", err)
			}
			return r
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := guardedLoop(tc.guard)
			l.Tick(time.Second)
			m := l.Metrics()
			if m.VetoedActions != 1 || m.ExecutedActions != 0 {
				t.Errorf("metrics = %+v, want 1 veto, 0 executions", m)
			}
			if got := len(l.Audit.Filter("guarded", "veto")); got != 1 {
				t.Errorf("veto audit entries = %d, want 1", got)
			}
		})
	}
}

func TestGuardErrorTextReachesAudit(t *testing.T) {
	l := guardedLoop(GuardrailFunc(func(now time.Duration, loop string, a Action) error {
		return fmt.Errorf("budget %s exhausted", a.Subject)
	}))
	l.Tick(time.Second)
	entries := l.Audit.Filter("guarded", "veto")
	if len(entries) != 1 || !strings.Contains(entries[0].Msg, "budget s exhausted") {
		t.Fatalf("veto audit = %v, want the guard's error text", entries)
	}
}
