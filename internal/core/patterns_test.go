package core

import (
	"testing"
	"time"

	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
)

// workerPair builds a worker whose monitor reports a fixed load and whose
// executor records dispatched actions into the shared map.
func workerPair(name string, load float64, sink map[string][]Action) *Worker {
	m := MonitorFunc(func(now time.Duration) (Observation, error) {
		return Observation{Time: now, Points: []telemetry.Point{
			{Name: "load", Labels: telemetry.Labels{"worker": name}, Time: now, Value: load},
		}}, nil
	})
	e := ExecutorFunc(func(now time.Duration, a Action) (ActionResult, error) {
		sink[name] = append(sink[name], a)
		return ActionResult{Action: a, Honored: true, Granted: a.Amount}, nil
	})
	return NewWorker(name, m, e)
}

// centralPlanner targets every worker whose load exceeds 0.5.
func centralAnalyzerPlanner() (Analyzer, Planner) {
	a := AnalyzerFunc(func(now time.Duration, obs Observation) (Symptoms, error) {
		var sym Symptoms
		sym.Time = now
		for _, p := range obs.Points {
			if p.Value > 0.5 {
				sym.Findings = append(sym.Findings, Finding{
					Kind: "overload", Subject: p.Labels["worker"], Value: p.Value, Confidence: 1,
				})
			}
		}
		return sym, nil
	})
	p := PlannerFunc(func(now time.Duration, sym Symptoms) (Plan, error) {
		var plan Plan
		plan.Time = now
		for _, f := range sym.Findings {
			plan.Actions = append(plan.Actions, Action{Kind: "throttle", Subject: f.Subject, Amount: 1, Confidence: 1})
		}
		return plan, nil
	})
	return a, p
}

func TestMasterWorkerDispatchesBySubject(t *testing.T) {
	sink := map[string][]Action{}
	w1 := workerPair("w1", 0.9, sink)
	w2 := workerPair("w2", 0.2, sink)
	a, p := centralAnalyzerPlanner()
	mw := NewMasterWorker("mw", a, p, []*Worker{w1, w2})
	mw.Tick(time.Second)
	if len(sink["w1"]) != 1 {
		t.Errorf("w1 actions = %d, want 1", len(sink["w1"]))
	}
	if len(sink["w2"]) != 0 {
		t.Errorf("w2 actions = %d, want 0", len(sink["w2"]))
	}
	m := mw.Metrics()
	if m.ExecutedActions != 1 || m.HonoredActions != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestMasterWorkerMasterFailureStopsControl(t *testing.T) {
	sink := map[string][]Action{}
	w1 := workerPair("w1", 0.9, sink)
	a, p := centralAnalyzerPlanner()
	mw := NewMasterWorker("mw", a, p, []*Worker{w1})
	mw.SetEnabled(false)
	mw.Tick(time.Second)
	if len(sink["w1"]) != 0 {
		t.Error("disabled master still controlled workers")
	}
	if mw.Enabled() {
		t.Error("Enabled")
	}
}

func TestMasterWorkerDeadWorkerSkipped(t *testing.T) {
	sink := map[string][]Action{}
	w1 := workerPair("w1", 0.9, sink)
	w2 := workerPair("w2", 0.9, sink)
	w2.SetEnabled(false)
	a, p := centralAnalyzerPlanner()
	mw := NewMasterWorker("mw", a, p, []*Worker{w1, w2})
	mw.Tick(time.Second)
	if len(sink["w1"]) != 1 || len(sink["w2"]) != 0 {
		t.Errorf("actions: w1=%d w2=%d", len(sink["w1"]), len(sink["w2"]))
	}
}

func TestMasterWorkerPlanCostDelaysDispatch(t *testing.T) {
	e := sim.NewEngine(1)
	sink := map[string][]Action{}
	w1 := workerPair("w1", 0.9, sink)
	a, p := centralAnalyzerPlanner()
	mw := NewMasterWorker("mw", a, p, []*Worker{w1})
	mw.Clock = sim.VirtualClock{Engine: e}
	mw.PlanCost = func(n int) time.Duration { return time.Duration(n) * time.Minute }
	e.At(0, func() { mw.Tick(0) })
	e.RunUntil(30 * time.Second)
	if len(sink["w1"]) != 0 {
		t.Fatal("dispatched before plan cost elapsed")
	}
	e.Run()
	if len(sink["w1"]) != 1 {
		t.Fatal("never dispatched")
	}
	if got := mw.Metrics().DecisionLatency; got != time.Minute {
		t.Errorf("decision latency = %v, want 1m", got)
	}
}

func TestMasterWorkerRunEvery(t *testing.T) {
	e := sim.NewEngine(1)
	sink := map[string][]Action{}
	w1 := workerPair("w1", 0.9, sink)
	a, p := centralAnalyzerPlanner()
	mw := NewMasterWorker("mw", a, p, []*Worker{w1})
	mw.RunEvery(sim.VirtualClock{Engine: e}, time.Minute, func() bool { return e.Now() >= 3*time.Minute })
	e.RunUntil(time.Hour)
	if got := mw.Metrics().Ticks; got != 2 {
		t.Errorf("ticks = %d, want 2", got)
	}
}

func TestIntentBoard(t *testing.T) {
	b := NewIntentBoard()
	b.Post(time.Second, "l1", Action{Kind: "claim", Amount: 10})
	b.Post(time.Second, "l2", Action{Kind: "claim", Amount: 20})
	b.Post(time.Second, "l3", Action{Kind: "other", Amount: 5})
	peers := b.Peers("l1")
	if len(peers) != 2 {
		t.Fatalf("peers = %d", len(peers))
	}
	if got := b.SumAmount("l1", "claim"); got != 20 {
		t.Errorf("SumAmount = %v, want 20 (only l2's claim)", got)
	}
	if got := b.SumAmount("l9", "claim"); got != 30 {
		t.Errorf("SumAmount for outsider = %v, want 30", got)
	}
	b.Clear("l2")
	if got := b.SumAmount("l9", "claim"); got != 10 {
		t.Errorf("after clear = %v, want 10", got)
	}
}

func TestCoordinatedTicksAllLoops(t *testing.T) {
	var loops []*Loop
	recs := make([]*recorder, 3)
	for i := range recs {
		l, rec := newTestLoop(1)
		l.Name = string([]byte{'l', byte('0' + i)})
		loops = append(loops, l)
		recs[i] = rec
	}
	c := NewCoordinated("coord", loops)
	c.Tick(time.Second)
	for i, rec := range recs {
		if len(rec.executed) != 1 {
			t.Errorf("loop %d executed %d", i, len(rec.executed))
		}
	}
	if c.Board == nil {
		t.Error("board missing")
	}
}

func TestCoordinatedSurvivesMemberFailure(t *testing.T) {
	l1, r1 := newTestLoop(1)
	l2, r2 := newTestLoop(1)
	l1.SetEnabled(false)
	c := NewCoordinated("coord", []*Loop{l1, l2})
	c.Tick(time.Second)
	if len(r1.executed) != 0 {
		t.Error("dead loop acted")
	}
	if len(r2.executed) != 1 {
		t.Error("surviving loop must keep controlling its subsystem")
	}
}

func TestHierarchicalParentCadence(t *testing.T) {
	parent, prec := newTestLoop(1)
	child, crec := newTestLoop(1)
	h := NewHierarchical("h", parent, []*Loop{child}, 3)
	for i := 0; i < 9; i++ {
		h.Tick(time.Duration(i) * time.Second)
	}
	if len(crec.executed) != 9 {
		t.Errorf("child executed %d, want 9", len(crec.executed))
	}
	if len(prec.executed) != 3 {
		t.Errorf("parent executed %d, want 3 (every 3rd tick)", len(prec.executed))
	}
}

func TestHierarchicalRunEvery(t *testing.T) {
	e := sim.NewEngine(1)
	parent, _ := newTestLoop(1)
	child, _ := newTestLoop(1)
	h := NewHierarchical("h", parent, []*Loop{child}, 2)
	h.RunEvery(sim.VirtualClock{Engine: e}, time.Minute, func() bool { return e.Now() >= 4*time.Minute })
	e.RunUntil(time.Hour)
	if child.Metrics().Ticks != 3 || parent.Metrics().Ticks != 1 {
		t.Errorf("child=%d parent=%d", child.Metrics().Ticks, parent.Metrics().Ticks)
	}
}

func TestHierarchicalNilParentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHierarchical("h", nil, nil, 1)
}

func TestPatternNames(t *testing.T) {
	if PatternClassical.String() != "classical" || PatternHierarchical.String() != "hierarchical" {
		t.Error("pattern names")
	}
}
