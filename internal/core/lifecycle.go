package core

import (
	"fmt"
	"time"
)

// LifecycleState is the runtime state of a Loop under the control plane:
//
//	created ──► running ◄──► paused
//	   │            │           │
//	   └────────────┴─► draining┘──► stopped
//
// A loop ticks only while created (auto-starts on its first tick) or
// running. Pausing or draining bumps the loop's lifecycle generation, which
// invalidates deferred human-approval callbacks scheduled before the
// transition — a paused or drained loop cannot fire stale actions.
type LifecycleState int32

// Lifecycle states. The zero value is StateCreated so NewLoop needs no
// explicit initialization.
const (
	// StateCreated is the initial state: the loop is wired but has not
	// ticked yet. The first tick implicitly transitions it to StateRunning.
	StateCreated LifecycleState = iota
	// StateRunning loops plan and execute on every tick.
	StateRunning
	// StatePaused loops skip ticks; pending deferred actions are
	// invalidated. Resume returns the loop to StateRunning.
	StatePaused
	// StateDraining loops accept no new work; the next tick boundary (or a
	// coordinator round) completes the drain and the loop becomes
	// StateStopped. Pending deferred actions are invalidated.
	StateDraining
	// StateStopped is terminal: the loop never ticks again.
	StateStopped
)

// String implements fmt.Stringer.
func (s LifecycleState) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateRunning:
		return "running"
	case StatePaused:
		return "paused"
	case StateDraining:
		return "draining"
	case StateStopped:
		return "stopped"
	}
	return "unknown"
}

// Tickable reports whether a loop in this state runs its MAPE phases on
// Tick. Created counts: the first tick auto-starts the loop, which keeps
// NewLoop + Tick working without an explicit Start.
func (s LifecycleState) Tickable() bool { return s == StateCreated || s == StateRunning }

// Terminal reports whether the state admits no further transitions.
func (s LifecycleState) Terminal() bool { return s == StateStopped }

// ParseLifecycleState parses the String form back into a state.
func ParseLifecycleState(text string) (LifecycleState, error) {
	for _, s := range []LifecycleState{StateCreated, StateRunning, StatePaused, StateDraining, StateStopped} {
		if s.String() == text {
			return s, nil
		}
	}
	return 0, fmt.Errorf("core: unknown lifecycle state %q", text)
}

// ParseMode parses Mode.String() output ("autonomous", "human-on-the-loop",
// "human-in-the-loop") back into a Mode — the JSON vocabulary of the control
// plane's loop specs.
func ParseMode(text string) (Mode, error) {
	for _, m := range []Mode{Autonomous, HumanOnTheLoop, HumanInTheLoop} {
		if m.String() == text {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown mode %q", text)
}

// State returns the loop's current lifecycle state.
func (l *Loop) State() LifecycleState { return LifecycleState(l.state.Load()) }

// Generation returns the lifecycle generation counter. It increments on
// every pause, drain, and stop; a deferred human-approval action captured
// under an older generation is stale and will not execute.
func (l *Loop) Generation() uint64 { return l.gen.Load() }

// transition attempts one state change, validating it against the lifecycle
// graph. bumpGen invalidates outstanding deferred actions.
func (l *Loop) transition(to LifecycleState, bumpGen bool) error {
	for {
		from := l.State()
		if from == to {
			return nil // idempotent
		}
		if !validTransition(from, to) {
			return fmt.Errorf("core: loop %s: invalid lifecycle transition %s -> %s", l.Name, from, to)
		}
		if l.state.CompareAndSwap(int32(from), int32(to)) {
			if bumpGen {
				l.gen.Add(1)
			}
			return nil
		}
	}
}

// validTransition encodes the lifecycle graph.
func validTransition(from, to LifecycleState) bool {
	switch from {
	case StateCreated:
		return to == StateRunning || to == StatePaused || to == StateDraining || to == StateStopped
	case StateRunning:
		return to == StatePaused || to == StateDraining || to == StateStopped
	case StatePaused:
		return to == StateRunning || to == StateDraining || to == StateStopped
	case StateDraining:
		return to == StateStopped
	}
	return false
}

// Start moves a created loop to running. Ticking a created loop starts it
// implicitly, so Start is only needed when the state must read "running"
// before the first tick.
func (l *Loop) Start() error { return l.transition(StateRunning, false) }

// Pause suspends the loop: ticks become no-ops and deferred human-approval
// actions already in flight are invalidated. Pausing a stopped or draining
// loop is an error.
func (l *Loop) Pause() error { return l.transition(StatePaused, true) }

// Resume returns a paused loop to running. Deferred actions invalidated by
// the pause stay invalid; only new plans execute.
func (l *Loop) Resume() error {
	if l.State() == StateCreated {
		return nil // already tickable
	}
	return l.transition(StateRunning, false)
}

// Drain begins a graceful shutdown: the loop plans no new work and its
// pending deferred actions are invalidated; the next tick boundary (or
// coordinator round) completes the drain, after which the loop is stopped.
func (l *Loop) Drain() error { return l.transition(StateDraining, true) }

// FinishDrain completes a drain at a safe point (no tick in flight). It is
// called by the loop's own next tick and by fleet coordinators at the round
// barrier; calling it in any other state is a no-op.
func (l *Loop) FinishDrain() {
	l.state.CompareAndSwap(int32(StateDraining), int32(StateStopped))
}

// Stop terminates the loop immediately, invalidating deferred actions.
// Stop is idempotent and valid from every state.
func (l *Loop) Stop() error { return l.transition(StateStopped, true) }

// Enabled reports whether the loop is active — lifecycle-state shorthand
// retained for the robustness experiments and the decentralization patterns.
func (l *Loop) Enabled() bool { return l.State().Tickable() }

// SetEnabled maps the legacy enable/disable toggle onto the lifecycle:
// disabling pauses the loop (failure injection for the robustness
// experiments; a paused loop's Tick is a no-op), enabling resumes it.
func (l *Loop) SetEnabled(on bool) {
	if on {
		_ = l.Resume()
	} else {
		_ = l.Pause()
	}
}

// deferredValid reports whether a deferred human-approval action captured at
// generation gen may still execute: the loop must be tickable and no
// pause/drain/stop may have intervened.
func (l *Loop) deferredValid(gen uint64) bool {
	return l.gen.Load() == gen && l.State().Tickable()
}

// DeferredAction is one human-in-the-loop action awaiting an approval
// verdict, as handed to an ApprovalSink. Decided is the virtual time the
// plan chose the action (the decision-latency epoch); Gen is the loop's
// lifecycle generation at deferral time — if the loop is paused, drained, or
// stopped afterwards the action goes stale and Resolve refuses to fire it.
type DeferredAction struct {
	Loop    *Loop
	Decided time.Duration
	Action  Action
	Gen     uint64
}

// Stale reports whether the deferred action can no longer execute.
func (d DeferredAction) Stale() bool { return !d.Loop.deferredValid(d.Gen) }

// Resolve settles a deferred action at virtual time now: approve executes it
// through the loop's Executor (decision latency accounted from Decided),
// deny drops it. A stale action (lifecycle generation moved on, or the loop
// is no longer tickable) is never executed regardless of the verdict;
// Resolve reports whether the action actually executed.
func (d DeferredAction) Resolve(now time.Duration, approve bool, reason string) bool {
	l := d.Loop
	if d.Stale() {
		l.metrics.StaleDeferred++
		l.audit(now, "stale", "%s(%s): deferred action invalidated by lifecycle (gen %d != %d or state %s)",
			d.Action.Kind, d.Action.Subject, d.Gen, l.gen.Load(), l.State())
		return false
	}
	if !approve {
		l.metrics.DeniedActions++
		if reason == "" {
			reason = "denied by operator"
		}
		l.audit(now, "deny", "%s(%s): %s", d.Action.Kind, d.Action.Subject, reason)
		return false
	}
	l.execute(d.Decided, now, d.Action)
	return true
}

// Drop abandons a deferred action without an operator verdict — the
// approval surface closed on it (simulated human absent, no contingency).
// It mirrors the HumanModel fallback's accounting: the action counts as
// dropped, not denied.
func (d DeferredAction) Drop(now time.Duration, reason string) {
	l := d.Loop
	if d.Stale() {
		l.metrics.StaleDeferred++
		l.audit(now, "stale", "%s(%s): deferred action invalidated by lifecycle",
			d.Action.Kind, d.Action.Subject)
		return
	}
	l.metrics.DroppedActions++
	if reason == "" {
		reason = "approval surface closed"
	}
	l.audit(now, "drop", "%s(%s): %s", d.Action.Kind, d.Action.Subject, reason)
}

// ApprovalSink receives human-in-the-loop actions instead of the loop's
// simulated HumanModel. A control plane implements it with a pending-approval
// queue surfaced to real operators; the sink (not the loop) owns timeout and
// contingency policy, and settles each action via DeferredAction.Resolve.
type ApprovalSink interface {
	Defer(d DeferredAction)
}
