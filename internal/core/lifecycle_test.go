package core

import (
	"testing"
	"time"
)

func TestLifecycleTransitions(t *testing.T) {
	l, _ := newTestLoop(0.9)
	if l.State() != StateCreated {
		t.Fatalf("new loop state = %s, want created", l.State())
	}
	if !l.Enabled() {
		t.Fatal("created loop must be tickable")
	}
	if err := l.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if l.State() != StateRunning {
		t.Fatalf("state = %s after Start", l.State())
	}
	gen := l.Generation()
	if err := l.Pause(); err != nil {
		t.Fatalf("Pause: %v", err)
	}
	if l.State() != StatePaused || l.Generation() != gen+1 {
		t.Fatalf("state = %s gen = %d, want paused gen %d", l.State(), l.Generation(), gen+1)
	}
	if err := l.Resume(); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if l.State() != StateRunning {
		t.Fatalf("state = %s after Resume", l.State())
	}
	if err := l.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := l.Pause(); err == nil {
		t.Fatal("Pause must be invalid while draining")
	}
	if err := l.Resume(); err == nil {
		t.Fatal("Resume must be invalid while draining")
	}
	l.FinishDrain()
	if l.State() != StateStopped {
		t.Fatalf("state = %s after FinishDrain", l.State())
	}
	if err := l.Resume(); err == nil {
		t.Fatal("Resume must be invalid once stopped")
	}
	if err := l.Stop(); err != nil {
		t.Fatalf("Stop must be idempotent: %v", err)
	}
}

func TestFirstTickAutoStarts(t *testing.T) {
	l, rec := newTestLoop(0.9)
	l.Tick(time.Second)
	if l.State() != StateRunning {
		t.Fatalf("state = %s after first tick, want running", l.State())
	}
	if len(rec.executed) != 1 {
		t.Fatal("first tick did not execute")
	}
}

func TestPausedLoopSkipsAndResumes(t *testing.T) {
	l, rec := newTestLoop(0.9)
	l.Tick(time.Second)
	if err := l.Pause(); err != nil {
		t.Fatal(err)
	}
	l.Tick(2 * time.Second)
	if m := l.Metrics(); m.Ticks != 1 || len(rec.executed) != 1 {
		t.Fatalf("paused loop ticked: metrics=%+v executed=%d", m, len(rec.executed))
	}
	if err := l.Resume(); err != nil {
		t.Fatal(err)
	}
	l.Tick(3 * time.Second)
	if m := l.Metrics(); m.Ticks != 2 || len(rec.executed) != 2 {
		t.Fatalf("resumed loop did not tick: metrics=%+v executed=%d", m, len(rec.executed))
	}
}

func TestDrainCompletesAtTickBoundary(t *testing.T) {
	l, rec := newTestLoop(0.9)
	l.Tick(time.Second)
	if err := l.Drain(); err != nil {
		t.Fatal(err)
	}
	if l.State() != StateDraining {
		t.Fatalf("state = %s, want draining", l.State())
	}
	l.Tick(2 * time.Second) // the tick boundary completes the drain
	if l.State() != StateStopped {
		t.Fatalf("state = %s after post-drain tick, want stopped", l.State())
	}
	if len(rec.executed) != 1 {
		t.Fatal("draining loop planned new work")
	}
}

func TestSetEnabledCompat(t *testing.T) {
	l, rec := newTestLoop(0.9)
	l.Tick(time.Second)
	l.SetEnabled(false)
	if l.Enabled() || l.State() != StatePaused {
		t.Fatalf("SetEnabled(false): enabled=%v state=%s", l.Enabled(), l.State())
	}
	l.Tick(2 * time.Second)
	l.SetEnabled(true)
	if !l.Enabled() || l.State() != StateRunning {
		t.Fatalf("SetEnabled(true): enabled=%v state=%s", l.Enabled(), l.State())
	}
	l.Tick(3 * time.Second)
	if len(rec.executed) != 2 {
		t.Fatalf("executed %d, want 2 (disabled tick skipped)", len(rec.executed))
	}
}

func TestParseModeAndState(t *testing.T) {
	for _, m := range []Mode{Autonomous, HumanOnTheLoop, HumanInTheLoop} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode accepted bogus input")
	}
	for _, s := range []LifecycleState{StateCreated, StateRunning, StatePaused, StateDraining, StateStopped} {
		got, err := ParseLifecycleState(s.String())
		if err != nil || got != s {
			t.Errorf("ParseLifecycleState(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseLifecycleState("bogus"); err == nil {
		t.Error("ParseLifecycleState accepted bogus input")
	}
}

// TestLifecycleFastPathAllocs gates the lifecycle overhead on the two hot
// paths: the running-state check itself, and the skipped tick of a paused
// loop (which must reuse the shared sentinel instead of allocating an
// execute half).
func TestLifecycleFastPathAllocs(t *testing.T) {
	l, _ := newTestLoop(0.9)
	l.Tick(time.Second)
	var ok bool
	if n := testing.AllocsPerRun(1000, func() { ok = l.Enabled() }); n != 0 {
		t.Errorf("running-state check allocates %v/op, want 0", n)
	}
	_ = ok
	if err := l.Pause(); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() { l.Tick(2 * time.Second) }); n != 0 {
		t.Errorf("paused-loop tick allocates %v/op, want 0", n)
	}
}

func BenchmarkLifecycleCheck(b *testing.B) {
	l, _ := newTestLoop(0.9)
	l.Tick(time.Second)
	b.Run("running-state", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !l.Enabled() {
				b.Fatal("loop not running")
			}
		}
	})
	b.Run("paused-tick", func(b *testing.B) {
		if err := l.Pause(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.Tick(time.Duration(i))
		}
	})
}
