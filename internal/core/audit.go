package core

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// AuditEntry is one audited loop event. Every decision an autonomy loop
// makes is explainable after the fact — the basis for operator trust and
// for the human-on-the-loop notifications of §IV.
type AuditEntry struct {
	Time  time.Duration
	Loop  string
	Phase string // "analyze", "plan", "veto", "execute", "defer", "drop", "error"
	Msg   string
}

// String implements fmt.Stringer.
func (e AuditEntry) String() string {
	return fmt.Sprintf("[%v] %s/%s: %s", e.Time, e.Loop, e.Phase, e.Msg)
}

// AuditLog is a bounded in-memory audit trail, safe for concurrent use.
type AuditLog struct {
	mu      sync.Mutex
	cap     int
	entries []AuditEntry
	dropped int
}

// NewAuditLog returns an audit log retaining up to capacity entries
// (capacity <= 0 selects 4096).
func NewAuditLog(capacity int) *AuditLog {
	if capacity <= 0 {
		capacity = 4096
	}
	return &AuditLog{cap: capacity}
}

// Append records one entry, evicting the oldest beyond capacity.
func (l *AuditLog) Append(e AuditEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, e)
	if len(l.entries) > l.cap {
		over := len(l.entries) - l.cap
		l.entries = append(l.entries[:0], l.entries[over:]...)
		l.dropped += over
	}
}

// Appendf formats and records one entry.
func (l *AuditLog) Appendf(now time.Duration, loop, phase, format string, args ...interface{}) {
	l.Append(AuditEntry{Time: now, Loop: loop, Phase: phase, Msg: fmt.Sprintf(format, args...)})
}

// Entries returns a copy of the retained entries in order.
func (l *AuditLog) Entries() []AuditEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]AuditEntry(nil), l.entries...)
}

// Len returns the number of retained entries.
func (l *AuditLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Dropped returns how many entries were evicted.
func (l *AuditLog) Dropped() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Filter returns retained entries matching the loop and phase (empty strings
// match everything).
func (l *AuditLog) Filter(loop, phase string) []AuditEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []AuditEntry
	for _, e := range l.entries {
		if (loop == "" || e.Loop == loop) && (phase == "" || e.Phase == phase) {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders the retained entries one per line.
func (l *AuditLog) Dump() string {
	var b strings.Builder
	for _, e := range l.Entries() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
