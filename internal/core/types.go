// Package core implements the paper's primary contribution: MAPE-K autonomy
// loops for MODA (monitoring and operational data analytics) in HPC
// operations, with the four decentralization design patterns of Fig. 2 —
// classical, master-worker, fully decentralized coordinated, and
// hierarchical — plus the trust machinery the paper's §III(iv) and §IV call
// for: guardrails, confidence gates, audit logging with explanations, and
// human-in/on-the-loop operating modes.
//
// A loop is wired from five interchangeable interfaces (Monitor, Analyzer,
// Planner, Executor, Assessor) over a shared Knowledge base. Use cases in
// internal/cases compose concrete phase implementations; patterns in this
// package compose whole loops.
package core

import (
	"time"

	"autoloop/internal/telemetry"
)

// Observation is the Monitor phase's output: the sensor readings relevant to
// this loop at one instant.
type Observation struct {
	Time   time.Duration
	Points []telemetry.Point
}

// Finding is one symptom identified by the Analyze phase.
type Finding struct {
	// Kind names the symptom ("ttc-exceeds-walltime", "ost-degraded", ...).
	Kind string
	// Subject identifies the affected entity (job ID, OST name, tenant).
	Subject string
	// Value carries the symptom's magnitude in kind-specific units.
	Value float64
	// Confidence in [0,1] expresses the analyzer's belief in the finding.
	Confidence float64
	// Detail is a human-readable explanation for audit and notification.
	Detail string
}

// Symptoms is the Analyze phase's output.
type Symptoms struct {
	Time     time.Duration
	Findings []Finding
}

// Action is one planned response.
type Action struct {
	// Kind names the response ("extend-walltime", "checkpoint",
	// "reopen-avoiding", "set-qos", "notify-user", ...).
	Kind string
	// Subject identifies the target entity.
	Subject string
	// Amount carries the action's magnitude in kind-specific units
	// (seconds of extension, MB/s of rate, ...).
	Amount float64
	// Confidence in [0,1] is the confidence behind the action; guardrails
	// may gate on it.
	Confidence float64
	// Explanation justifies the action to humans on the loop (§IV:
	// "sending them notifications and explanation about decisions").
	Explanation string
}

// Plan is the Plan phase's output.
type Plan struct {
	Time    time.Duration
	Actions []Action
}

// ActionResult reports the fate of one executed action. Honored reflects the
// managed system's answer — the Scheduler case "needs awareness of whether or
// not the request was honored by the scheduler".
type ActionResult struct {
	Action  Action
	Honored bool
	// Granted is the magnitude actually granted (may be less than requested).
	Granted float64
	// Detail explains denials and partial grants.
	Detail string
}

// Outcome is the Execute phase's output.
type Outcome struct {
	Time    time.Duration
	Results []ActionResult
}

// Monitor collects the loop's observations.
type Monitor interface {
	Observe(now time.Duration) (Observation, error)
}

// MonitorFunc adapts a function to Monitor.
type MonitorFunc func(now time.Duration) (Observation, error)

// Observe implements Monitor.
func (f MonitorFunc) Observe(now time.Duration) (Observation, error) { return f(now) }

// Analyzer turns observations into symptoms.
type Analyzer interface {
	Analyze(now time.Duration, obs Observation) (Symptoms, error)
}

// AnalyzerFunc adapts a function to Analyzer.
type AnalyzerFunc func(now time.Duration, obs Observation) (Symptoms, error)

// Analyze implements Analyzer.
func (f AnalyzerFunc) Analyze(now time.Duration, obs Observation) (Symptoms, error) {
	return f(now, obs)
}

// Planner turns symptoms into a plan.
type Planner interface {
	Plan(now time.Duration, sym Symptoms) (Plan, error)
}

// PlannerFunc adapts a function to Planner.
type PlannerFunc func(now time.Duration, sym Symptoms) (Plan, error)

// Plan implements Planner.
func (f PlannerFunc) Plan(now time.Duration, sym Symptoms) (Plan, error) { return f(now, sym) }

// Executor carries a plan out against the managed system.
type Executor interface {
	Execute(now time.Duration, action Action) (ActionResult, error)
}

// ExecutorFunc adapts a function to Executor.
type ExecutorFunc func(now time.Duration, action Action) (ActionResult, error)

// Execute implements Executor.
func (f ExecutorFunc) Execute(now time.Duration, action Action) (ActionResult, error) {
	return f(now, action)
}

// Assessor closes the loop: it feeds plan outcomes back into Knowledge
// ("Assess the Knowledge about the success of the Plan and refine the
// Knowledge through subsequent Monitoring").
type Assessor interface {
	Assess(now time.Duration, plan Plan, outcome Outcome)
}

// AssessorFunc adapts a function to Assessor.
type AssessorFunc func(now time.Duration, plan Plan, outcome Outcome)

// Assess implements Assessor.
func (f AssessorFunc) Assess(now time.Duration, plan Plan, outcome Outcome) { f(now, plan, outcome) }

// Notifier receives human-facing notifications in human-on-the-loop mode.
type Notifier interface {
	Notify(now time.Duration, loop string, action Action, result *ActionResult)
}

// NotifierFunc adapts a function to Notifier.
type NotifierFunc func(now time.Duration, loop string, action Action, result *ActionResult)

// Notify implements Notifier.
func (f NotifierFunc) Notify(now time.Duration, loop string, action Action, result *ActionResult) {
	f(now, loop, action, result)
}
