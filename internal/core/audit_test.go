package core

import (
	"strings"
	"testing"
	"time"
)

func TestAuditAppendAndFilter(t *testing.T) {
	l := NewAuditLog(100)
	l.Appendf(time.Second, "sched", "plan", "extend %d", 42)
	l.Appendf(2*time.Second, "sched", "execute", "done")
	l.Appendf(3*time.Second, "ost", "plan", "avoid ost03")
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if got := len(l.Filter("sched", "")); got != 2 {
		t.Errorf("Filter(sched) = %d", got)
	}
	if got := len(l.Filter("", "plan")); got != 2 {
		t.Errorf("Filter(plan) = %d", got)
	}
	if got := len(l.Filter("ost", "plan")); got != 1 {
		t.Errorf("Filter(ost,plan) = %d", got)
	}
}

func TestAuditEviction(t *testing.T) {
	l := NewAuditLog(3)
	for i := 0; i < 10; i++ {
		l.Appendf(time.Duration(i), "l", "p", "entry %d", i)
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d, want 3", l.Len())
	}
	if l.Dropped() != 7 {
		t.Errorf("Dropped = %d, want 7", l.Dropped())
	}
	entries := l.Entries()
	if !strings.Contains(entries[0].Msg, "entry 7") {
		t.Errorf("oldest retained = %q, want entry 7", entries[0].Msg)
	}
}

func TestAuditDefaultCapacity(t *testing.T) {
	l := NewAuditLog(0)
	if l.cap != 4096 {
		t.Errorf("default cap = %d", l.cap)
	}
}

func TestAuditDump(t *testing.T) {
	l := NewAuditLog(10)
	l.Appendf(time.Second, "loop", "phase", "message")
	dump := l.Dump()
	if !strings.Contains(dump, "loop/phase: message") {
		t.Errorf("Dump = %q", dump)
	}
}

func TestAuditEntryString(t *testing.T) {
	e := AuditEntry{Time: time.Second, Loop: "l", Phase: "p", Msg: "m"}
	if got := e.String(); got != "[1s] l/p: m" {
		t.Errorf("String = %q", got)
	}
}
