package core

import (
	"math/rand"
	"testing"
	"time"

	"autoloop/internal/sim"
)

// humanLoop builds a test loop on a virtual clock, ready for
// human-in-the-loop dispatch.
func humanLoop(t *testing.T, mode Mode, human HumanModel) (*Loop, *recorder, *sim.Engine) {
	t.Helper()
	engine := sim.NewEngine(1)
	l, rec := newTestLoop(0.9)
	l.Mode = mode
	l.Human = human
	l.Clock = sim.VirtualClock{Engine: engine}
	l.Rng = rand.New(rand.NewSource(1))
	return l, rec, engine
}

func TestPauseInvalidatesDeferredAction(t *testing.T) {
	l, rec, engine := humanLoop(t, HumanInTheLoop, HumanModel{
		Latency: sim.Constant{V: 10 * time.Minute}, Availability: 1,
	})
	engine.At(time.Minute, func() { l.Tick(engine.Now()) })
	engine.At(5*time.Minute, func() {
		if err := l.Pause(); err != nil {
			t.Errorf("Pause: %v", err)
		}
	})
	// Resume before the approval callback fires: the generation moved on,
	// so the pre-pause action is stale and must NOT execute even though the
	// loop is running again.
	engine.At(7*time.Minute, func() {
		if err := l.Resume(); err != nil {
			t.Errorf("Resume: %v", err)
		}
	})
	engine.RunUntil(time.Hour)
	if len(rec.executed) != 0 {
		t.Fatal("stale deferred action executed after pause/resume")
	}
}

func TestDrainInvalidatesContingency(t *testing.T) {
	l, rec, engine := humanLoop(t, HumanInTheLoop, HumanModel{
		Latency: sim.Constant{V: time.Minute}, Availability: 0,
		ContingencyAfter: 30 * time.Minute,
	})
	engine.At(time.Minute, func() { l.Tick(engine.Now()) })
	engine.At(5*time.Minute, func() {
		if err := l.Drain(); err != nil {
			t.Errorf("Drain: %v", err)
		}
	})
	engine.RunUntil(2 * time.Hour)
	if len(rec.executed) != 0 {
		t.Fatal("drained loop fired its contingency action")
	}
}

// sinkRecorder captures deferred actions routed to an ApprovalSink.
type sinkRecorder struct{ got []DeferredAction }

func (s *sinkRecorder) Defer(d DeferredAction) { s.got = append(s.got, d) }

func TestApprovalSinkReceivesInsteadOfHumanModel(t *testing.T) {
	l, rec, engine := humanLoop(t, HumanInTheLoop, HumanModel{
		Latency: sim.Constant{V: time.Minute}, Availability: 1,
	})
	sink := &sinkRecorder{}
	l.Approvals = sink
	engine.At(time.Minute, func() { l.Tick(engine.Now()) })
	engine.RunUntil(time.Hour)
	if len(rec.executed) != 0 {
		t.Fatal("sink-routed action executed without a verdict")
	}
	if len(sink.got) != 1 {
		t.Fatalf("sink received %d actions, want 1", len(sink.got))
	}
	d := sink.got[0]
	if d.Loop != l || d.Action.Kind != "lower" || d.Decided != time.Minute {
		t.Errorf("deferred action = %+v", d)
	}
	if m := l.Metrics(); m.DeferredActions != 1 {
		t.Errorf("metrics = %+v", m)
	}

	// Approve: executes with decision latency from the deferral epoch.
	if !d.Resolve(31*time.Minute, true, "") {
		t.Fatal("Resolve(approve) reported not executed")
	}
	if len(rec.executed) != 1 {
		t.Fatal("approved action did not execute")
	}
	if m := l.Metrics(); m.ExecutedActions != 1 || m.DecisionLatency != 30*time.Minute {
		t.Errorf("metrics = %+v, want 30m decision latency", m)
	}
}

func TestApprovalSinkDenyAndStale(t *testing.T) {
	l, rec, engine := humanLoop(t, HumanInTheLoop, HumanModel{})
	sink := &sinkRecorder{}
	l.Approvals = sink
	engine.At(time.Minute, func() { l.Tick(engine.Now()) })
	engine.At(2*time.Minute, func() { l.Tick(engine.Now()) })
	engine.RunUntil(10 * time.Minute)
	if len(sink.got) != 2 {
		t.Fatalf("sink received %d actions, want 2", len(sink.got))
	}

	// Deny the first.
	if d := sink.got[0]; d.Resolve(5*time.Minute, false, "not today") {
		t.Fatal("denied action executed")
	}
	if m := l.Metrics(); m.DeniedActions != 1 {
		t.Errorf("metrics = %+v, want 1 denied", m)
	}

	// Pause, then approve the second: it is stale and must not execute.
	if err := l.Pause(); err != nil {
		t.Fatal(err)
	}
	d := sink.got[1]
	if !d.Stale() {
		t.Fatal("action not stale after pause")
	}
	if d.Resolve(6*time.Minute, true, "") {
		t.Fatal("stale action executed despite approval")
	}
	if m := l.Metrics(); m.StaleDeferred != 1 || m.ExecutedActions != 0 {
		t.Errorf("metrics = %+v, want 1 stale, 0 executed", m)
	}
	if len(rec.executed) != 0 {
		t.Fatal("no action should have reached the executor")
	}
}
