package core

import (
	"fmt"
	"time"
)

// Guardrail vets planned actions before execution. A non-nil error vetoes
// the action; the veto is audited with the error's text. Guardrails are the
// paper's §III(iv) trust controls made first-class.
type Guardrail interface {
	Check(now time.Duration, loop string, action Action) error
}

// GuardrailFunc adapts a function to Guardrail.
type GuardrailFunc func(now time.Duration, loop string, action Action) error

// Check implements Guardrail.
func (f GuardrailFunc) Check(now time.Duration, loop string, action Action) error {
	return f(now, loop, action)
}

// ConfidenceGate vetoes actions whose confidence falls below Min — §IV's
// "confidence measures are required as we move beyond human-in-the-loop
// decision-making".
type ConfidenceGate struct {
	Min float64
}

// Check implements Guardrail.
func (g ConfidenceGate) Check(now time.Duration, loop string, action Action) error {
	if action.Confidence < g.Min {
		return fmt.Errorf("confidence %.2f below gate %.2f", action.Confidence, g.Min)
	}
	return nil
}

// RateLimit vetoes actions once Max actions have executed within Window
// (sliding), bounding how aggressively a loop may steer its managed system.
type RateLimit struct {
	Max    int
	Window time.Duration

	times []time.Duration
}

// NewRateLimit returns a sliding-window rate limit.
func NewRateLimit(max int, window time.Duration) *RateLimit {
	if max <= 0 || window <= 0 {
		panic("core: rate limit requires positive max and window")
	}
	return &RateLimit{Max: max, Window: window}
}

// Check implements Guardrail. An accepted check counts against the budget.
func (r *RateLimit) Check(now time.Duration, loop string, action Action) error {
	cutoff := now - r.Window
	keep := r.times[:0]
	for _, t := range r.times {
		if t > cutoff {
			keep = append(keep, t)
		}
	}
	r.times = keep
	if len(r.times) >= r.Max {
		return fmt.Errorf("rate limit: %d actions in %v", r.Max, r.Window)
	}
	r.times = append(r.times, now)
	return nil
}

// SubjectCap vetoes actions once a subject has received Max actions of a
// kind — e.g. "limits on the number ... of extensions for a single
// application".
type SubjectCap struct {
	Kind string // empty matches all kinds
	Max  int

	counts map[string]int
}

// NewSubjectCap returns a per-subject action cap.
func NewSubjectCap(kind string, max int) *SubjectCap {
	if max <= 0 {
		panic("core: subject cap requires positive max")
	}
	return &SubjectCap{Kind: kind, Max: max, counts: make(map[string]int)}
}

// Check implements Guardrail.
func (c *SubjectCap) Check(now time.Duration, loop string, action Action) error {
	if c.Kind != "" && action.Kind != c.Kind {
		return nil
	}
	if c.counts[action.Subject] >= c.Max {
		return fmt.Errorf("subject %s reached cap of %d %q actions", action.Subject, c.Max, c.Kind)
	}
	c.counts[action.Subject]++
	return nil
}

// DryRun vetoes everything, turning a loop into a pure advisor: plans and
// audit entries happen, execution does not. This is how a site builds trust
// before enabling autonomous response.
type DryRun struct{}

// Check implements Guardrail.
func (DryRun) Check(now time.Duration, loop string, action Action) error {
	return fmt.Errorf("dry-run mode")
}
