package core

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/knowledge"
	"autoloop/internal/sim"
)

// Mode selects how much autonomy a loop has over its Execute phase.
type Mode int

// Operating modes (§IV): fully autonomous execution; human-on-the-loop
// (execute immediately, notify the human with an explanation); and
// human-in-the-loop (wait for human approval before executing — the
// status-quo the paper argues "limits the speed of response").
const (
	Autonomous Mode = iota
	HumanOnTheLoop
	HumanInTheLoop
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Autonomous:
		return "autonomous"
	case HumanOnTheLoop:
		return "human-on-the-loop"
	case HumanInTheLoop:
		return "human-in-the-loop"
	}
	return "unknown"
}

// HumanModel models the human approver for human-in-the-loop mode: a
// response-latency distribution and an availability probability. An absent
// human (with probability 1-Availability) never answers, and the action is
// dropped — unless the loop has a contingency (§IV: "execution of
// contingency plans for when the humans are absent").
type HumanModel struct {
	Latency      sim.Dist
	Availability float64
	// ContingencyAfter, when positive, executes the action anyway once the
	// human has been silent this long.
	ContingencyAfter time.Duration
}

// DefaultHumanModel reflects a paged operator: 15 minutes median response,
// available 80% of the time.
func DefaultHumanModel() HumanModel {
	return HumanModel{
		Latency:      sim.LogNormal{MeanV: 15 * time.Minute, CV: 0.8},
		Availability: 0.8,
	}
}

// Metrics counts loop activity.
type Metrics struct {
	Ticks             int
	Findings          int
	PlannedActions    int
	ExecutedActions   int
	HonoredActions    int
	VetoedActions     int
	ArbitratedActions int // lost a cross-loop conflict to a fleet arbiter
	DeferredActions   int // human-in-the-loop: waiting for approval
	DroppedActions    int // human absent, no contingency
	DeniedActions     int // human-in-the-loop: operator denied the action
	StaleDeferred     int // deferred action invalidated by pause/drain/stop
	Errors            int

	// DecisionLatency accumulates time from symptom to execution (nonzero
	// only for deferred human-in-the-loop executions and pattern plan
	// costs); divide by ExecutedActions for the mean.
	DecisionLatency time.Duration
}

// Loop is one MAPE-K autonomy loop. Zero value is not usable; construct with
// NewLoop and set phases before Tick.
type Loop struct {
	Name string

	M      Monitor
	A      Analyzer
	P      Planner
	E      Executor
	Assess Assessor // optional

	// K is the shared knowledge base (optional but recommended).
	K *knowledge.Base

	// Guards veto actions in order; first error wins.
	Guards []Guardrail

	Mode  Mode
	Human HumanModel

	// Notifier receives on-the-loop notifications (optional).
	Notifier Notifier
	// Audit receives the decision trail (optional).
	Audit *AuditLog

	// Bus, when set, receives the loop's lifecycle envelopes — one per
	// finding on "loop.<name>.finding", per planned action on
	// "loop.<name>.plan", per veto on "loop.<name>.veto", per action lost to
	// cross-loop arbitration on "loop.<name>.arbitrated", and per executed
	// result on "loop.<name>.execute" — batched into a single publish per
	// tick. Deferred human-in-the-loop executions publish when they fire.
	Bus *bus.Bus

	// Clock schedules deferred executions (required for HumanInTheLoop).
	Clock sim.Clock
	// Rng drives the human model (required for HumanInTheLoop).
	Rng *rand.Rand

	// Approvals, when set, receives human-in-the-loop actions instead of
	// the simulated HumanModel: dispatch enqueues a DeferredAction and the
	// sink settles it later via Resolve. When nil, the HumanModel drives
	// approvals directly (the simulation fallback).
	Approvals ApprovalSink

	// state is the LifecycleState (atomic so control planes may inspect and
	// transition loops from outside the tick goroutine); gen counts
	// pause/drain/stop transitions to invalidate stale deferred actions.
	state atomic.Int32
	gen   atomic.Uint64

	metrics Metrics

	inTick bool
	events []bus.Envelope // per-tick event batch, reused across ticks
}

// NewLoop constructs a named loop with the given phases. The loop starts in
// StateCreated and auto-starts on its first tick.
func NewLoop(name string, m Monitor, a Analyzer, p Planner, e Executor) *Loop {
	if m == nil || a == nil || p == nil || e == nil {
		panic("core: NewLoop requires all four MAPE phases")
	}
	return &Loop{Name: name, M: m, A: a, P: p, E: e}
}

// Metrics returns a snapshot of the loop's counters.
func (l *Loop) Metrics() Metrics { return l.metrics }

// audit appends to the audit log when one is attached.
func (l *Loop) audit(now time.Duration, phase, format string, args ...interface{}) {
	if l.Audit != nil {
		l.Audit.Appendf(now, l.Name, phase, format, args...)
	}
}

// event queues one lifecycle envelope for the attached bus. Inside a tick
// events accumulate and flush as one batch; outside (deferred executions)
// they publish immediately.
func (l *Loop) event(now time.Duration, kind string, payload interface{}) {
	if l.Bus == nil {
		return
	}
	env := bus.Envelope{Topic: "loop." + l.Name + "." + kind, Time: now, Source: l.Name, Payload: payload}
	if l.inTick {
		l.events = append(l.events, env)
		return
	}
	l.Bus.Publish(env)
}

// flushEvents publishes the tick's accumulated event batch. The batch is
// detached before dispatch so a handler that re-enters this loop cannot
// double-publish it.
func (l *Loop) flushEvents() {
	l.inTick = false
	if len(l.events) == 0 {
		return
	}
	batch := l.events
	l.events = nil
	l.Bus.PublishBatch(batch)
	if l.events == nil { // no re-entrant tick: reclaim the buffer
		l.events = batch[:0]
	}
}

// Tick runs one complete MAPE pass at virtual time now. Errors from phases
// are audited and counted but do not abort the loop: an autonomy loop must
// survive bad data.
func (l *Loop) Tick(now time.Duration) {
	l.ExecutePlanned(l.PlanTick(now))
}

// bufferedEvent is one bus lifecycle event captured during PlanTick, replayed
// by ExecutePlanned in deterministic order.
type bufferedEvent struct {
	kind    string
	payload interface{}
}

// PlannedTick is the output of the Plan half of a two-phase tick: the
// Monitor/Analyze/Plan phases have run, but no action has been dispatched and
// no audit entry or bus event has been emitted yet — those are buffered so
// that PlanTick may run on a worker goroutine while ExecutePlanned replays
// them deterministically. A fleet coordinator arbitrates between the two
// halves by calling Arbitrate on actions that lose a cross-loop conflict.
type PlannedTick struct {
	loop    *Loop
	now     time.Duration
	skipped bool // loop disabled: the execute half is a no-op
	failed  bool // a MAPE phase errored: the execute half only flushes buffers

	plan     Plan
	lost     []string // lost[i] != "" marks action i arbitrated away, with the reason
	preAudit []AuditEntry
	preEvent []bufferedEvent
}

// skippedTick is the shared execute half of every skipped tick: a paused,
// draining, or stopped loop's PlanTick allocates nothing (the lifecycle
// fast path), and ExecutePlanned returns before touching loop state.
var skippedTick = &PlannedTick{skipped: true}

// Actions exposes the planned actions for arbitration. The slice is shared
// with the pending execute half and must not be mutated. A nil or skipped
// tick has no actions.
func (pt *PlannedTick) Actions() []Action {
	if pt == nil {
		return nil
	}
	return pt.plan.Actions
}

// Time returns the virtual time the plan half ran at.
func (pt *PlannedTick) Time() time.Duration { return pt.now }

// Arbitrated reports whether action i has already been marked lost to a
// cross-loop conflict, so layered arbiters (a fleet's local arbiter, then a
// cluster coordinator's cross-node arbiter) do not re-litigate losers.
func (pt *PlannedTick) Arbitrated(i int) bool {
	return pt.lost != nil && i >= 0 && i < len(pt.lost) && pt.lost[i] != ""
}

// Arbitrate marks action i as lost to a cross-loop conflict: ExecutePlanned
// will audit and publish it as arbitrated instead of dispatching it.
func (pt *PlannedTick) Arbitrate(i int, reason string) {
	if i < 0 || i >= len(pt.plan.Actions) {
		panic(fmt.Sprintf("core: Arbitrate index %d out of range (%d actions)", i, len(pt.plan.Actions)))
	}
	if pt.lost == nil {
		pt.lost = make([]string, len(pt.plan.Actions))
	}
	if reason == "" {
		reason = "lost cross-loop arbitration"
	}
	pt.lost[i] = reason
}

// bufAuditf captures one audit entry for deterministic replay, formatting
// eagerly so the cost lands on the (parallel) plan half.
func (pt *PlannedTick) bufAuditf(phase, format string, args ...interface{}) {
	if pt.loop.Audit == nil {
		return
	}
	pt.preAudit = append(pt.preAudit, AuditEntry{
		Time: pt.now, Loop: pt.loop.Name, Phase: phase, Msg: fmt.Sprintf(format, args...),
	})
}

// bufEvent captures one lifecycle event for deterministic replay.
func (pt *PlannedTick) bufEvent(kind string, payload interface{}) {
	if pt.loop.Bus == nil {
		return
	}
	pt.preEvent = append(pt.preEvent, bufferedEvent{kind: kind, payload: payload})
}

// PlanTick runs the Monitor, Analyze, and Plan phases at virtual time now and
// returns the pending execute half. It touches only loop-local state plus the
// (read-only) Monitor/Analyze/Plan phases, so a coordinator may run many
// loops' PlanTicks concurrently; audit entries and bus events are buffered
// inside the PlannedTick and replayed by ExecutePlanned.
func (l *Loop) PlanTick(now time.Duration) *PlannedTick {
	switch st := l.State(); {
	case st == StateCreated:
		_ = l.Start() // first tick auto-starts
	case st == StateDraining:
		l.FinishDrain() // tick boundary reached: the drain completes
		return skippedTick
	case !st.Tickable():
		return skippedTick
	}
	pt := &PlannedTick{loop: l, now: now}
	l.metrics.Ticks++
	obs, err := l.M.Observe(now)
	if err != nil {
		l.metrics.Errors++
		pt.bufAuditf("error", "monitor: %v", err)
		pt.failed = true
		return pt
	}
	sym, err := l.A.Analyze(now, obs)
	if err != nil {
		l.metrics.Errors++
		pt.bufAuditf("error", "analyze: %v", err)
		pt.failed = true
		return pt
	}
	l.metrics.Findings += len(sym.Findings)
	for _, f := range sym.Findings {
		pt.bufAuditf("analyze", "%s(%s)=%.4g conf=%.2f: %s", f.Kind, f.Subject, f.Value, f.Confidence, f.Detail)
		pt.bufEvent("finding", f)
	}
	plan, err := l.P.Plan(now, sym)
	if err != nil {
		l.metrics.Errors++
		pt.bufAuditf("error", "plan: %v", err)
		pt.failed = true
		return pt
	}
	l.metrics.PlannedActions += len(plan.Actions)
	pt.plan = plan
	return pt
}

// ExecutePlanned runs the Execute half of a two-phase tick: it replays the
// buffered audit entries and events, dispatches every surviving action
// through guardrails and the operating mode, skips arbitrated ones, and runs
// Assess. It must be called from a single goroutine — under a fleet
// coordinator, serially in registration order after the round barrier, which
// is what keeps concurrent rounds deterministic.
func (l *Loop) ExecutePlanned(pt *PlannedTick) {
	if pt == nil || pt.skipped {
		return
	}
	if pt.loop != l {
		panic("core: ExecutePlanned with another loop's PlannedTick")
	}
	now := pt.now
	if l.Bus != nil {
		l.inTick = true
		defer l.flushEvents()
	}
	if l.Audit != nil {
		for _, e := range pt.preAudit {
			l.Audit.Append(e)
		}
	}
	for _, ev := range pt.preEvent {
		l.event(now, ev.kind, ev.payload)
	}
	if pt.failed {
		return
	}
	outcome := Outcome{Time: now}
	for i, action := range pt.plan.Actions {
		l.audit(now, "plan", "%s(%s) amount=%.4g conf=%.2f: %s",
			action.Kind, action.Subject, action.Amount, action.Confidence, action.Explanation)
		l.event(now, "plan", action)
		if pt.lost != nil && pt.lost[i] != "" {
			l.metrics.ArbitratedActions++
			l.audit(now, "arbitrate", "%s(%s): %s", action.Kind, action.Subject, pt.lost[i])
			l.event(now, "arbitrated", action)
			continue
		}
		if res, executed := l.dispatch(now, action); executed {
			outcome.Results = append(outcome.Results, res)
		}
	}
	if l.Assess != nil {
		l.Assess.Assess(now, pt.plan, outcome)
	}
}

// dispatch applies guardrails and the operating mode to one action,
// returning the result if the action executed synchronously.
func (l *Loop) dispatch(now time.Duration, action Action) (ActionResult, bool) {
	for _, g := range l.Guards {
		if err := g.Check(now, l.Name, action); err != nil {
			l.metrics.VetoedActions++
			l.audit(now, "veto", "%s(%s): %v", action.Kind, action.Subject, err)
			l.event(now, "veto", action)
			return ActionResult{}, false
		}
	}
	switch l.Mode {
	case Autonomous:
		return l.execute(now, now, action), true
	case HumanOnTheLoop:
		res := l.execute(now, now, action)
		if l.Notifier != nil {
			l.Notifier.Notify(now, l.Name, action, &res)
		}
		return res, true
	case HumanInTheLoop:
		l.deferToHuman(now, action)
		return ActionResult{}, false
	}
	return ActionResult{}, false
}

// execute runs the action against the managed system. decidedAt is when the
// plan chose the action, for decision-latency accounting.
func (l *Loop) execute(decidedAt, now time.Duration, action Action) ActionResult {
	res, err := l.E.Execute(now, action)
	if err != nil {
		l.metrics.Errors++
		l.audit(now, "error", "execute %s(%s): %v", action.Kind, action.Subject, err)
		failed := ActionResult{Action: action, Detail: err.Error()}
		l.event(now, "execute", failed)
		return failed
	}
	l.metrics.ExecutedActions++
	l.metrics.DecisionLatency += now - decidedAt
	if res.Honored {
		l.metrics.HonoredActions++
	}
	l.audit(now, "execute", "%s(%s) honored=%v granted=%.4g %s",
		action.Kind, action.Subject, res.Honored, res.Granted, res.Detail)
	l.event(now, "execute", res)
	return res
}

// deferToHuman routes the action to the approval surface: an attached
// ApprovalSink (the control plane's pending queue) when present, otherwise
// the simulated HumanModel — the fallback driver that keeps fixed-seed
// experiments reproducible.
func (l *Loop) deferToHuman(now time.Duration, action Action) {
	if l.Approvals != nil {
		l.metrics.DeferredActions++
		l.audit(now, "defer", "%s(%s): queued for operator approval", action.Kind, action.Subject)
		l.Approvals.Defer(DeferredAction{Loop: l, Decided: now, Action: action, Gen: l.gen.Load()})
		return
	}
	if l.Clock == nil || l.Rng == nil {
		// Without a clock there is no way to wait: treat the human as absent.
		l.metrics.DroppedActions++
		l.audit(now, "drop", "%s(%s): no clock for human approval", action.Kind, action.Subject)
		return
	}
	l.metrics.DeferredActions++
	gen := l.gen.Load()
	available := l.Rng.Float64() < l.Human.Availability
	if !available {
		if l.Human.ContingencyAfter > 0 {
			l.audit(now, "defer", "%s(%s): human absent, contingency in %v",
				action.Kind, action.Subject, l.Human.ContingencyAfter)
			l.Clock.AfterFunc(l.Human.ContingencyAfter, func() {
				if l.deferredValid(gen) {
					l.execute(now, l.Clock.Now(), action)
				}
			})
			return
		}
		l.metrics.DroppedActions++
		l.audit(now, "drop", "%s(%s): human absent, no contingency", action.Kind, action.Subject)
		return
	}
	delay := l.Human.Latency.Sample(l.Rng)
	l.audit(now, "defer", "%s(%s): awaiting approval, eta %v", action.Kind, action.Subject, delay)
	l.Clock.AfterFunc(delay, func() {
		if l.deferredValid(gen) {
			l.execute(now, l.Clock.Now(), action)
		}
	})
}

// RunEvery schedules the loop to tick on clock every period until stop
// returns true (stop may be nil for "run forever").
func (l *Loop) RunEvery(clock sim.Clock, period time.Duration, stop func() bool) {
	sim.TickEvery(clock, period, stop, l.Tick)
}
