package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"autoloop/internal/sim"
)

// phases builds a trivial loop: the monitor reports a value, the analyzer
// flags it when above 10, the planner requests a "lower" action, and the
// executor records it.
type recorder struct {
	executed []Action
	honor    bool
}

func (r *recorder) Execute(now time.Duration, a Action) (ActionResult, error) {
	r.executed = append(r.executed, a)
	return ActionResult{Action: a, Honored: r.honor, Granted: a.Amount}, nil
}

func constMonitor(v float64) Monitor {
	return MonitorFunc(func(now time.Duration) (Observation, error) {
		return Observation{Time: now, Points: nil}, nil
	})
}

func alwaysFind(conf float64) Analyzer {
	return AnalyzerFunc(func(now time.Duration, obs Observation) (Symptoms, error) {
		return Symptoms{Time: now, Findings: []Finding{{Kind: "hot", Subject: "s1", Value: 42, Confidence: conf}}}, nil
	})
}

func planPerFinding(conf float64) Planner {
	return PlannerFunc(func(now time.Duration, sym Symptoms) (Plan, error) {
		var p Plan
		p.Time = now
		for _, f := range sym.Findings {
			p.Actions = append(p.Actions, Action{Kind: "lower", Subject: f.Subject, Amount: 1, Confidence: conf, Explanation: "test"})
		}
		return p, nil
	})
}

func newTestLoop(conf float64) (*Loop, *recorder) {
	rec := &recorder{honor: true}
	l := NewLoop("test", constMonitor(1), alwaysFind(conf), planPerFinding(conf), rec)
	return l, rec
}

func TestLoopTickExecutesPlan(t *testing.T) {
	l, rec := newTestLoop(0.9)
	l.Audit = NewAuditLog(100)
	l.Tick(time.Second)
	if len(rec.executed) != 1 {
		t.Fatalf("executed %d actions", len(rec.executed))
	}
	m := l.Metrics()
	if m.Ticks != 1 || m.Findings != 1 || m.PlannedActions != 1 || m.ExecutedActions != 1 || m.HonoredActions != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if len(l.Audit.Filter("test", "execute")) != 1 {
		t.Error("execute not audited")
	}
}

func TestLoopDisabledDoesNothing(t *testing.T) {
	l, rec := newTestLoop(0.9)
	l.SetEnabled(false)
	l.Tick(time.Second)
	if len(rec.executed) != 0 || l.Metrics().Ticks != 0 {
		t.Error("disabled loop acted")
	}
	if l.Enabled() {
		t.Error("Enabled should be false")
	}
}

func TestLoopPhaseErrorsAreContained(t *testing.T) {
	rec := &recorder{}
	failing := MonitorFunc(func(now time.Duration) (Observation, error) {
		return Observation{}, errors.New("sensor offline")
	})
	l := NewLoop("t", failing, alwaysFind(1), planPerFinding(1), rec)
	l.Audit = NewAuditLog(10)
	l.Tick(time.Second) // must not panic
	if l.Metrics().Errors != 1 {
		t.Errorf("errors = %d", l.Metrics().Errors)
	}
	if len(rec.executed) != 0 {
		t.Error("plan executed despite monitor failure")
	}

	badAnalyzer := AnalyzerFunc(func(time.Duration, Observation) (Symptoms, error) {
		return Symptoms{}, errors.New("model diverged")
	})
	l2 := NewLoop("t2", constMonitor(1), badAnalyzer, planPerFinding(1), rec)
	l2.Tick(time.Second)
	if l2.Metrics().Errors != 1 {
		t.Error("analyzer error not counted")
	}

	badPlanner := PlannerFunc(func(time.Duration, Symptoms) (Plan, error) {
		return Plan{}, errors.New("no feasible plan")
	})
	l3 := NewLoop("t3", constMonitor(1), alwaysFind(1), badPlanner, rec)
	l3.Tick(time.Second)
	if l3.Metrics().Errors != 1 {
		t.Error("planner error not counted")
	}

	badExec := ExecutorFunc(func(time.Duration, Action) (ActionResult, error) {
		return ActionResult{}, errors.New("hook refused")
	})
	l4 := NewLoop("t4", constMonitor(1), alwaysFind(1), planPerFinding(1), badExec)
	l4.Tick(time.Second)
	if l4.Metrics().Errors != 1 || l4.Metrics().ExecutedActions != 0 {
		t.Error("executor error not handled")
	}
}

func TestLoopNilPhasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewLoop("bad", nil, alwaysFind(1), planPerFinding(1), &recorder{})
}

func TestConfidenceGateVetoes(t *testing.T) {
	l, rec := newTestLoop(0.4)
	l.Guards = []Guardrail{ConfidenceGate{Min: 0.8}}
	l.Audit = NewAuditLog(10)
	l.Tick(time.Second)
	if len(rec.executed) != 0 {
		t.Error("low-confidence action executed")
	}
	if l.Metrics().VetoedActions != 1 {
		t.Errorf("vetoed = %d", l.Metrics().VetoedActions)
	}
	if len(l.Audit.Filter("", "veto")) != 1 {
		t.Error("veto not audited")
	}
}

func TestRateLimitGuard(t *testing.T) {
	l, rec := newTestLoop(1)
	l.Guards = []Guardrail{NewRateLimit(2, time.Hour)}
	for i := 0; i < 5; i++ {
		l.Tick(time.Duration(i) * time.Minute)
	}
	if len(rec.executed) != 2 {
		t.Errorf("executed = %d, want 2 within window", len(rec.executed))
	}
	// Window slides: an action an hour later is allowed.
	l.Tick(2 * time.Hour)
	if len(rec.executed) != 3 {
		t.Errorf("executed = %d after window slid, want 3", len(rec.executed))
	}
}

func TestRateLimitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRateLimit(0, time.Hour)
}

func TestSubjectCapGuard(t *testing.T) {
	cap := NewSubjectCap("lower", 2)
	l, rec := newTestLoop(1)
	l.Guards = []Guardrail{cap}
	for i := 0; i < 4; i++ {
		l.Tick(time.Duration(i) * time.Minute)
	}
	if len(rec.executed) != 2 {
		t.Errorf("executed = %d, want capped 2", len(rec.executed))
	}
	// Unrelated kinds are not capped.
	if err := cap.Check(0, "l", Action{Kind: "other", Subject: "s1"}); err != nil {
		t.Error("other kinds should pass")
	}
}

func TestDryRunVetoesAll(t *testing.T) {
	l, rec := newTestLoop(1)
	l.Guards = []Guardrail{DryRun{}}
	l.Tick(time.Second)
	if len(rec.executed) != 0 {
		t.Error("dry-run executed an action")
	}
	if l.Metrics().PlannedActions != 1 {
		t.Error("dry-run should still plan")
	}
}

func TestHumanOnTheLoopNotifies(t *testing.T) {
	l, rec := newTestLoop(1)
	l.Mode = HumanOnTheLoop
	var notices []string
	l.Notifier = NotifierFunc(func(now time.Duration, loop string, a Action, res *ActionResult) {
		notices = append(notices, fmt.Sprintf("%s:%s", loop, a.Kind))
	})
	l.Tick(time.Second)
	if len(rec.executed) != 1 {
		t.Error("on-the-loop must execute immediately")
	}
	if len(notices) != 1 || notices[0] != "test:lower" {
		t.Errorf("notices = %v", notices)
	}
}

func TestHumanInTheLoopDefersExecution(t *testing.T) {
	e := sim.NewEngine(1)
	l, rec := newTestLoop(1)
	l.Mode = HumanInTheLoop
	l.Clock = sim.VirtualClock{Engine: e}
	l.Rng = rand.New(rand.NewSource(1))
	l.Human = HumanModel{Latency: sim.Constant{V: 10 * time.Minute}, Availability: 1}
	e.At(time.Second, func() { l.Tick(e.Now()) })
	e.RunUntil(time.Minute)
	if len(rec.executed) != 0 {
		t.Fatal("executed before human approval")
	}
	if l.Metrics().DeferredActions != 1 {
		t.Errorf("deferred = %d", l.Metrics().DeferredActions)
	}
	e.Run()
	if len(rec.executed) != 1 {
		t.Fatal("never executed after approval latency")
	}
	if got := l.Metrics().DecisionLatency; got != 10*time.Minute {
		t.Errorf("decision latency = %v, want 10m", got)
	}
}

func TestHumanInTheLoopAbsentDrops(t *testing.T) {
	e := sim.NewEngine(1)
	l, rec := newTestLoop(1)
	l.Mode = HumanInTheLoop
	l.Clock = sim.VirtualClock{Engine: e}
	l.Rng = rand.New(rand.NewSource(1))
	l.Human = HumanModel{Latency: sim.Constant{V: time.Minute}, Availability: 0}
	e.At(time.Second, func() { l.Tick(e.Now()) })
	e.Run()
	if len(rec.executed) != 0 {
		t.Error("absent human should drop the action")
	}
	if l.Metrics().DroppedActions != 1 {
		t.Errorf("dropped = %d", l.Metrics().DroppedActions)
	}
}

func TestHumanInTheLoopContingency(t *testing.T) {
	e := sim.NewEngine(1)
	l, rec := newTestLoop(1)
	l.Mode = HumanInTheLoop
	l.Clock = sim.VirtualClock{Engine: e}
	l.Rng = rand.New(rand.NewSource(1))
	l.Human = HumanModel{Latency: sim.Constant{V: time.Minute}, Availability: 0, ContingencyAfter: 30 * time.Minute}
	e.At(time.Second, func() { l.Tick(e.Now()) })
	e.Run()
	if len(rec.executed) != 1 {
		t.Error("contingency should execute after timeout")
	}
	if got := l.Metrics().DecisionLatency; got != 30*time.Minute {
		t.Errorf("latency = %v, want 30m", got)
	}
}

func TestHumanInTheLoopWithoutClockDrops(t *testing.T) {
	l, rec := newTestLoop(1)
	l.Mode = HumanInTheLoop
	l.Tick(time.Second)
	if len(rec.executed) != 0 || l.Metrics().DroppedActions != 1 {
		t.Error("in-the-loop without clock must drop")
	}
}

func TestRunEveryTicksPeriodically(t *testing.T) {
	e := sim.NewEngine(1)
	l, _ := newTestLoop(1)
	l.RunEvery(sim.VirtualClock{Engine: e}, time.Minute, func() bool { return e.Now() >= 5*time.Minute })
	e.RunUntil(time.Hour)
	if got := l.Metrics().Ticks; got != 4 { // at 1,2,3,4 min (stop at >= 5)
		t.Errorf("ticks = %d, want 4", got)
	}
}

func TestAssessorReceivesOutcome(t *testing.T) {
	l, _ := newTestLoop(1)
	var gotPlan Plan
	var gotOutcome Outcome
	l.Assess = AssessorFunc(func(now time.Duration, p Plan, o Outcome) {
		gotPlan, gotOutcome = p, o
	})
	l.Tick(time.Second)
	if len(gotPlan.Actions) != 1 || len(gotOutcome.Results) != 1 {
		t.Errorf("assessor saw plan=%d outcome=%d", len(gotPlan.Actions), len(gotOutcome.Results))
	}
	if !gotOutcome.Results[0].Honored {
		t.Error("outcome should be honored")
	}
}

func TestModeString(t *testing.T) {
	if Autonomous.String() != "autonomous" || HumanOnTheLoop.String() != "human-on-the-loop" ||
		HumanInTheLoop.String() != "human-in-the-loop" || Mode(9).String() != "unknown" {
		t.Error("Mode.String")
	}
}
