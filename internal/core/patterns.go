package core

import (
	"sort"
	"sync"
	"time"

	"autoloop/internal/sim"
)

// This file implements the decentralized MAPE-K design patterns of the
// paper's Fig. 2 (after Weyns et al.): master-worker, fully decentralized
// coordinated control, and hierarchical control. The classical pattern is a
// plain Loop.

// Worker is the per-managed-system half of the master-worker pattern: it
// owns only Monitor and Execute; Analyze and Plan are centralized in the
// master.
type Worker struct {
	Name string
	M    Monitor
	E    Executor

	enabled bool
}

// NewWorker constructs an enabled worker.
func NewWorker(name string, m Monitor, e Executor) *Worker {
	if m == nil || e == nil {
		panic("core: worker requires monitor and executor")
	}
	return &Worker{Name: name, M: m, E: e, enabled: true}
}

// Enabled reports whether the worker is alive.
func (w *Worker) Enabled() bool { return w.enabled }

// SetEnabled toggles the worker (failure injection).
func (w *Worker) SetEnabled(on bool) { w.enabled = on }

// MasterWorker is the master-worker pattern: decentralized Monitor and
// Execute, centralized Analyze and Plan. The centralized Plan "can achieve
// global objectives and guarantees but suffers from limited scalability" —
// PlanCost models that limit as a virtual-time planning latency that grows
// with the number of workers; the scalability experiment measures both this
// modeled latency and the real CPU time of planning.
type MasterWorker struct {
	Name    string
	Workers []*Worker
	A       Analyzer
	P       Planner

	// PlanCost returns the virtual-time cost of one centralized plan over n
	// workers (nil means instantaneous).
	PlanCost func(n int) time.Duration

	Clock sim.Clock
	Audit *AuditLog

	enabled bool
	metrics Metrics
}

// NewMasterWorker builds the pattern; clock is required when PlanCost is set.
func NewMasterWorker(name string, a Analyzer, p Planner, workers []*Worker) *MasterWorker {
	if a == nil || p == nil {
		panic("core: master-worker requires analyzer and planner")
	}
	return &MasterWorker{Name: name, Workers: workers, A: a, P: p, enabled: true}
}

// Enabled reports whether the master is alive.
func (m *MasterWorker) Enabled() bool { return m.enabled }

// SetEnabled toggles the master: with the master down, *no* control happens
// anywhere — the pattern's single point of failure.
func (m *MasterWorker) SetEnabled(on bool) { m.enabled = on }

// Metrics returns the pattern's counters.
func (m *MasterWorker) Metrics() Metrics { return m.metrics }

// Tick runs one master-worker pass: gather observations from every live
// worker, analyze and plan centrally, then dispatch actions back to workers
// by subject (Action.Subject == worker name).
func (m *MasterWorker) Tick(now time.Duration) {
	if !m.enabled {
		return
	}
	m.metrics.Ticks++
	var merged Observation
	merged.Time = now
	live := make(map[string]*Worker, len(m.Workers))
	for _, w := range m.Workers {
		if !w.enabled {
			continue
		}
		obs, err := w.M.Observe(now)
		if err != nil {
			m.metrics.Errors++
			continue
		}
		merged.Points = append(merged.Points, obs.Points...)
		live[w.Name] = w
	}
	sym, err := m.A.Analyze(now, merged)
	if err != nil {
		m.metrics.Errors++
		return
	}
	m.metrics.Findings += len(sym.Findings)
	plan, err := m.P.Plan(now, sym)
	if err != nil {
		m.metrics.Errors++
		return
	}
	m.metrics.PlannedActions += len(plan.Actions)

	dispatch := func(at time.Duration) {
		for _, action := range plan.Actions {
			w, ok := live[action.Subject]
			if !ok || !w.enabled {
				m.metrics.DroppedActions++
				continue
			}
			res, err := w.E.Execute(at, action)
			if err != nil {
				m.metrics.Errors++
				continue
			}
			m.metrics.ExecutedActions++
			m.metrics.DecisionLatency += at - now
			if res.Honored {
				m.metrics.HonoredActions++
			}
			if m.Audit != nil {
				m.Audit.Appendf(at, m.Name, "execute", "%s(%s) granted=%.4g", action.Kind, action.Subject, res.Granted)
			}
		}
	}
	if m.PlanCost != nil && m.Clock != nil {
		cost := m.PlanCost(len(live))
		if cost > 0 {
			m.Clock.AfterFunc(cost, func() { dispatch(m.Clock.Now()) })
			return
		}
	}
	dispatch(now)
}

// RunEvery schedules the master on clock every period.
func (m *MasterWorker) RunEvery(clock sim.Clock, period time.Duration, stop func() bool) {
	sim.TickEvery(clock, period, stop, m.Tick)
}

// IntentBoard is the peer-coordination medium of the fully decentralized
// pattern: each loop posts its latest intended action; peer planners consult
// the board to avoid the destructive synchronization ("instability and
// side-effects due to indirect interactions") that uncoordinated local
// planners exhibit.
type IntentBoard struct {
	mu      sync.RWMutex
	intents map[string]Action
	stamps  map[string]time.Duration
}

// NewIntentBoard returns an empty board.
func NewIntentBoard() *IntentBoard {
	return &IntentBoard{intents: make(map[string]Action), stamps: make(map[string]time.Duration)}
}

// Post publishes loop's current intent.
func (b *IntentBoard) Post(now time.Duration, loop string, a Action) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.intents[loop] = a
	b.stamps[loop] = now
}

// Clear removes loop's intent.
func (b *IntentBoard) Clear(loop string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.intents, loop)
	delete(b.stamps, loop)
}

// Peers returns the intents of every loop except self, in name order.
func (b *IntentBoard) Peers(self string) []Action {
	b.mu.RLock()
	defer b.mu.RUnlock()
	names := make([]string, 0, len(b.intents))
	for n := range b.intents {
		if n != self {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	out := make([]Action, 0, len(names))
	for _, n := range names {
		out = append(out, b.intents[n])
	}
	return out
}

// SumAmount totals the Amount of peer intents of one kind — the aggregate
// demand signal coordinated planners use.
func (b *IntentBoard) SumAmount(self, kind string) float64 {
	total := 0.0
	for _, a := range b.Peers(self) {
		if a.Kind == kind {
			total += a.Amount
		}
	}
	return total
}

// Coordinated is the fully decentralized pattern: every managed system has a
// complete local loop; loops share an IntentBoard. Whether planners consult
// the board is up to the use case — the stability experiment contrasts both.
type Coordinated struct {
	Name  string
	Loops []*Loop
	Board *IntentBoard
}

// NewCoordinated groups loops around a fresh board.
func NewCoordinated(name string, loops []*Loop) *Coordinated {
	return &Coordinated{Name: name, Loops: loops, Board: NewIntentBoard()}
}

// Tick ticks every enabled loop in order.
func (c *Coordinated) Tick(now time.Duration) {
	for _, l := range c.Loops {
		l.Tick(now)
	}
}

// RunEvery schedules all member loops on one cadence.
func (c *Coordinated) RunEvery(clock sim.Clock, period time.Duration, stop func() bool) {
	sim.TickEvery(clock, period, stop, c.Tick)
}

// Hierarchical is the hierarchical control pattern: fast child loops manage
// individual subsystems while a slower parent loop observes aggregate state
// and steers the children — "separation of concerns and time scales ...
// aiming to improve scalability without compromising stability". Parent and
// children exchange state through the shared Knowledge base's fact
// blackboard (how Knowledge is "stored and exchanged among MAPE components").
type Hierarchical struct {
	Name     string
	Parent   *Loop
	Children []*Loop
	// ParentEvery makes the parent tick once per this many child ticks
	// (minimum 1).
	ParentEvery int

	childTicks int
}

// NewHierarchical builds the pattern.
func NewHierarchical(name string, parent *Loop, children []*Loop, parentEvery int) *Hierarchical {
	if parent == nil {
		panic("core: hierarchical pattern requires a parent loop")
	}
	if parentEvery < 1 {
		parentEvery = 1
	}
	return &Hierarchical{Name: name, Parent: parent, Children: children, ParentEvery: parentEvery}
}

// Tick ticks all children and, every ParentEvery-th call, the parent.
func (h *Hierarchical) Tick(now time.Duration) {
	for _, c := range h.Children {
		c.Tick(now)
	}
	h.childTicks++
	if h.childTicks%h.ParentEvery == 0 {
		h.Parent.Tick(now)
	}
}

// RunEvery schedules the hierarchy on the child cadence.
func (h *Hierarchical) RunEvery(clock sim.Clock, period time.Duration, stop func() bool) {
	sim.TickEvery(clock, period, stop, h.Tick)
}

// PatternName identifies a Fig. 2 design pattern in experiment tables.
type PatternName string

// The four design patterns.
const (
	PatternClassical    PatternName = "classical"
	PatternMasterWorker PatternName = "master-worker"
	PatternCoordinated  PatternName = "coordinated"
	PatternHierarchical PatternName = "hierarchical"
)

// String implements fmt.Stringer.
func (p PatternName) String() string { return string(p) }
