package bus

import (
	"bufio"
	"fmt"
	"net"
	"sync"
)

// Server bridges a Bus onto a TCP listener: every envelope published on the
// bus whose topic matches the server's export pattern is forwarded to all
// connected clients, and every line received from a client is decoded and
// republished locally. This is the minimal distribution fabric used by
// cmd/modad; a production deployment would substitute its site transport
// behind the same Envelope format.
type Server struct {
	ln      net.Listener
	bus     *Bus
	cancel  func()
	mu      sync.Mutex
	conns   map[net.Conn]bool
	closed  bool
	pattern string
}

// NewServer starts serving bus traffic on addr (e.g. "127.0.0.1:0").
// Envelopes matching exportPattern are pushed to clients.
func NewServer(addr, exportPattern string, b *Bus) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bus: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, bus: b, conns: make(map[net.Conn]bool), pattern: exportPattern}
	s.cancel = b.Subscribe(exportPattern, s.broadcast)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and disconnects all clients.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.cancel()
	for _, c := range conns {
		c.Close()
	}
	return s.ln.Close()
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		go s.readLoop(conn)
	}
}

func (s *Server) readLoop(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		env, err := Decode(sc.Bytes())
		if err != nil {
			continue // tolerate malformed lines from clients
		}
		s.bus.Publish(env)
	}
}

func (s *Server) broadcast(env Envelope) {
	data, err := Encode(env)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		// Best-effort: a slow or dead client must not stall the loop.
		_ = c.SetWriteDeadline(deadline())
		if _, err := c.Write(data); err != nil {
			c.Close()
			delete(s.conns, c)
		}
	}
}

// Client connects a local Bus to a remote Server: lines received from the
// server are republished locally, and locally published envelopes matching
// exportPattern are sent to the server.
type Client struct {
	conn   net.Conn
	bus    *Bus
	cancel func()
	mu     sync.Mutex
	closed bool
}

// Dial connects to a Server at addr and bridges it with b.
func Dial(addr, exportPattern string, b *Bus) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bus: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, bus: b}
	c.cancel = b.Subscribe(exportPattern, c.send)
	go c.readLoop()
	return c, nil
}

// Close disconnects the client.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.cancel()
	return c.conn.Close()
}

func (c *Client) send(env Envelope) {
	data, err := Encode(env)
	if err != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	_ = c.conn.SetWriteDeadline(deadline())
	_, _ = c.conn.Write(data)
}

func (c *Client) readLoop() {
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		env, err := Decode(sc.Bytes())
		if err != nil {
			continue
		}
		c.bus.Publish(env)
	}
}
