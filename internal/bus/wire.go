package bus

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// maxLineBytes bounds one wire line (an encoded envelope). Lines beyond it
// surface as a read error — bufio.ErrTooLong — instead of silently ending
// the connection.
const maxLineBytes = 1024 * 1024

// outboxDepth is the per-connection bounded outbox between the bus dispatch
// path and each client's writer goroutine. When a client stops draining its
// TCP stream the outbox fills and further envelopes are dropped for that
// client only (counted, never blocking the publisher).
const outboxDepth = 256

// wireConn is one accepted client connection: its socket, the bounded
// outbox its writer goroutine drains, and its dropped-frame counter.
type wireConn struct {
	c       net.Conn
	out     chan []byte
	dropped atomic.Uint64
}

// Server bridges a Bus onto a TCP listener: every envelope published on the
// bus whose topic matches the server's export pattern is forwarded to all
// connected clients, and every line received from a client is decoded and
// republished locally. This is the minimal distribution fabric used by
// cmd/modad; a production deployment would substitute its site transport
// behind the same Envelope format.
//
// Fan-out never blocks the publisher: broadcast only performs non-blocking
// sends into per-connection outboxes, and each connection's writer goroutine
// does the (deadline-bounded) socket writes. A slow or wedged client
// therefore costs dropped frames on its own connection — visible through
// DroppedFrames — instead of stalling every Publish on the bus.
type Server struct {
	ln      net.Listener
	bus     *Bus
	cancel  func()
	mu      sync.Mutex
	conns   map[net.Conn]*wireConn
	closed  bool
	pattern string

	dropped  atomic.Uint64
	readErrs atomic.Uint64
	lastLog  atomic.Int64 // unix nanos of the last read-error log line
}

// NewServer starts serving bus traffic on addr (e.g. "127.0.0.1:0").
// Envelopes matching exportPattern are pushed to clients.
func NewServer(addr, exportPattern string, b *Bus) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bus: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, bus: b, conns: make(map[net.Conn]*wireConn), pattern: exportPattern}
	s.cancel = b.Subscribe(exportPattern, s.broadcast)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// NumClients reports the number of connected clients.
func (s *Server) NumClients() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// DroppedFrames reports how many outbound frames were dropped across all
// connections because a client's outbox was full.
func (s *Server) DroppedFrames() uint64 { return s.dropped.Load() }

// ReadErrors reports how many client read loops ended with a transport or
// framing error (e.g. a line over the scanner limit) rather than a clean
// disconnect.
func (s *Server) ReadErrors() uint64 { return s.readErrs.Load() }

// Close stops the server and disconnects all clients.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.cancel()
	for _, c := range conns {
		c.Close() // unblocks the readLoop, which removes the connection
	}
	return s.ln.Close()
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		wc := &wireConn{c: conn, out: make(chan []byte, outboxDepth)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = wc
		s.mu.Unlock()
		go s.writeLoop(wc)
		go s.readLoop(wc)
	}
}

func (s *Server) readLoop(wc *wireConn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, wc.c)
		s.mu.Unlock()
		// broadcast sends only to registered connections under mu, so after
		// the delete nothing can write to the outbox and closing it stops
		// the writer goroutine.
		close(wc.out)
		wc.c.Close()
	}()
	sc := bufio.NewScanner(wc.c)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	for sc.Scan() {
		env, err := Decode(sc.Bytes())
		if err != nil {
			continue // tolerate malformed lines from clients
		}
		s.bus.Publish(env)
	}
	// A nil error is a clean EOF; net.ErrClosed is our own shutdown. Anything
	// else — notably bufio.ErrTooLong for an overlong line — used to vanish
	// as if the peer hung up; count it and log rate-limited.
	if err := sc.Err(); err != nil && !errors.Is(err, net.ErrClosed) {
		s.readErrs.Add(1)
		if now := time.Now().UnixNano(); now-s.lastLog.Load() >= int64(time.Second) {
			s.lastLog.Store(now)
			log.Printf("bus: read %s: %v", wc.c.RemoteAddr(), err)
		}
	}
}

// writeLoop drains one connection's outbox onto its socket. Writes are
// deadline-bounded; on the first failure the connection is closed (the
// readLoop then removes it) and the remaining frames are discarded.
func (s *Server) writeLoop(wc *wireConn) {
	dead := false
	for data := range wc.out {
		if dead {
			continue // keep draining until readLoop closes the outbox
		}
		_ = wc.c.SetWriteDeadline(deadline())
		if _, err := wc.c.Write(data); err != nil {
			wc.c.Close()
			dead = true
		}
	}
}

// broadcast fans one envelope into every connection's outbox. It never
// blocks: a full outbox (a client not draining its stream) costs that
// client one dropped frame.
func (s *Server) broadcast(env Envelope) {
	data, err := Encode(env)
	if err != nil {
		return
	}
	s.mu.Lock()
	for _, wc := range s.conns {
		select {
		case wc.out <- data:
		default:
			wc.dropped.Add(1)
			s.dropped.Add(1)
		}
	}
	s.mu.Unlock()
}

// Client connects a local Bus to a remote Server: lines received from the
// server are republished locally, and locally published envelopes matching
// exportPattern are sent to the server.
type Client struct {
	conn   net.Conn
	bus    *Bus
	cancel func()
	done   chan struct{}
	mu     sync.Mutex
	closed bool
	err    error
}

// Dial connects to a Server at addr and bridges it with b.
func Dial(addr, exportPattern string, b *Bus) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bus: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, bus: b, done: make(chan struct{})}
	c.cancel = b.Subscribe(exportPattern, c.send)
	go c.readLoop()
	return c, nil
}

// Done returns a channel closed when the client's read loop ends — the
// connection died (check Err for why) or Close was called. Reconnectors
// select on it instead of polling Err.
func (c *Client) Done() <-chan struct{} { return c.done }

// Close disconnects the client.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.cancel()
	return c.conn.Close()
}

// Err reports why the read loop ended, if it ended on a transport or
// framing error (e.g. a server line over the scanner limit). It is nil
// while the connection is healthy and after a clean close.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (c *Client) send(env Envelope) {
	data, err := Encode(env)
	if err != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	_ = c.conn.SetWriteDeadline(deadline())
	_, _ = c.conn.Write(data)
}

func (c *Client) readLoop() {
	defer close(c.done)
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	for sc.Scan() {
		env, err := Decode(sc.Bytes())
		if err != nil {
			continue
		}
		c.bus.Publish(env)
	}
	if err := sc.Err(); err != nil && !errors.Is(err, net.ErrClosed) {
		c.mu.Lock()
		if !c.closed {
			c.err = fmt.Errorf("bus: read %s: %w", c.conn.RemoteAddr(), err)
		}
		c.mu.Unlock()
	}
}
