package bus

import "time"

// writeTimeout bounds how long a broadcast may block on one client.
const writeTimeout = 2 * time.Second

func deadline() time.Time { return time.Now().Add(writeTimeout) }

// Expired reports whether the envelope's deadline has passed at virtual time
// now. A zero (or negative) deadline means the envelope never expires.
// Publish and PublishBatch are the expiry enforcement points: both drop
// envelopes already expired at their own publish time.
func (e Envelope) Expired(now time.Duration) bool {
	return e.Deadline > 0 && now >= e.Deadline
}
