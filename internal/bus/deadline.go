package bus

import "time"

// writeTimeout bounds how long a broadcast may block on one client.
const writeTimeout = 2 * time.Second

func deadline() time.Time { return time.Now().Add(writeTimeout) }
