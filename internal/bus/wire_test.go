package bus

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// waitUntil polls cond for up to 5s.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// saturate floods b with large export envelopes until the wedged client's
// kernel buffer and outbox are full and the server starts dropping frames.
func saturate(t *testing.T, b *Bus, srv *Server) {
	t.Helper()
	big := strings.Repeat("x", 64*1024)
	deadline := time.Now().Add(20 * time.Second)
	for srv.DroppedFrames() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timed out saturating the wedged client's outbox")
		}
		b.Publish(Envelope{Topic: "export.big", Payload: big})
	}
}

// TestStalledClientDoesNotStallPublish is the broadcast regression test: a
// connected client that never reads must cost dropped frames on its own
// connection, not publish latency on the bus. The old broadcast held the
// server mutex across a blocking 2s-deadline write per client, so a single
// wedged `nc` froze every Publish (and with it modad's simulation tick).
func TestStalledClientDoesNotStallPublish(t *testing.T) {
	b := New()
	srv, err := NewServer("127.0.0.1:0", "export.*", b)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A wedged client: connects, never reads.
	wedged, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer wedged.Close()
	waitUntil(t, "connection registered", func() bool { return srv.NumClients() == 1 })

	// Flood with large envelopes until the kernel socket buffer and the
	// connection's outbox are both full and frames start dropping.
	saturate(t, b, srv)

	// With the client fully wedged, publish latency must stay flat: the old
	// code blocked ~2s per publish here.
	start := time.Now()
	for i := 0; i < 500; i++ {
		b.Publish(Envelope{Topic: "export.ping", Payload: i})
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("500 publishes with a wedged client took %v; broadcast is blocking the bus", elapsed)
	}
	if srv.DroppedFrames() == 0 {
		t.Fatal("expected dropped frames for the wedged client")
	}
}

// TestHealthyClientUnaffectedByWedgedPeer: with one wedged client connected,
// a draining client still receives envelopes promptly.
func TestHealthyClientUnaffectedByWedgedPeer(t *testing.T) {
	b := New()
	srv, err := NewServer("127.0.0.1:0", "export.*", b)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	wedged, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer wedged.Close()

	healthyBus := New()
	received := make(chan Envelope, 64)
	healthyBus.Subscribe("export.*", func(e Envelope) {
		select {
		case received <- e:
		default:
		}
	})
	cli, err := Dial(srv.Addr(), "up.*", healthyBus)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	waitUntil(t, "both connections registered", func() bool { return srv.NumClients() == 2 })

	// Saturate the wedged client. The healthy client may drop some of the
	// flood too; the point is that it still gets envelopes afterwards.
	saturate(t, b, srv)

	// The flood may have filled (and dropped at) the healthy subscriber's
	// test channel too; keep draining and re-pinging until a ping lands.
	waitUntil(t, "healthy client delivery", func() bool {
		b.Publish(Envelope{Topic: "export.ping", Payload: "pong"})
		for {
			select {
			case e := <-received:
				if e.Topic == "export.ping" {
					return true
				}
			default:
				return false
			}
		}
	})
}

// TestServerSurfacesOverlongLine: a client line beyond the scanner limit
// must be counted as a read error, not treated as a silent hang-up.
func TestServerSurfacesOverlongLine(t *testing.T) {
	b := New()
	srv, err := NewServer("127.0.0.1:0", "export.*", b)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	line := append(bytes.Repeat([]byte("a"), maxLineBytes+1024), '\n')
	if _, err := conn.Write(line); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "read error counted", func() bool { return srv.ReadErrors() == 1 })
}

// TestClientSurfacesOverlongLine: an overlong server line surfaces through
// Client.Err as bufio.ErrTooLong instead of a silent disconnect.
func TestClientSurfacesOverlongLine(t *testing.T) {
	b := New()
	srv, err := NewServer("127.0.0.1:0", "export.*", b)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr(), "up.*", New())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	waitUntil(t, "connection registered", func() bool { return srv.NumClients() == 1 })

	// An envelope whose encoded line exceeds the client's scanner limit.
	b.Publish(Envelope{Topic: "export.huge", Payload: strings.Repeat("x", maxLineBytes+1024)})
	waitUntil(t, "client error surfaced", func() bool { return cli.Err() != nil })
	if !errors.Is(cli.Err(), bufio.ErrTooLong) {
		t.Fatalf("Err() = %v, want bufio.ErrTooLong", cli.Err())
	}
}

// TestCleanCloseLeavesNoError: closing the client (or the server closing the
// connection) must not report a transport error.
func TestCleanCloseLeavesNoError(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", "export.*", New())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr(), "up.*", New())
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := cli.Err(); err != nil {
		t.Fatalf("Err() after clean close = %v", err)
	}
	if n := srv.ReadErrors(); n != 0 {
		t.Fatalf("server ReadErrors after clean close = %d", n)
	}
}

// TestMatchTopic pins the exported matcher to the subscription semantics.
func TestMatchTopic(t *testing.T) {
	for _, tc := range []struct {
		pattern, topic string
		want           bool
	}{
		{"a.b", "a.b", true},
		{"a.b", "a.b.c", false},
		{"a.*", "a.b.c", true},
		{"*", "anything", true},
		{"a.*", "b.c", false},
	} {
		if got := MatchTopic(tc.pattern, tc.topic); got != tc.want {
			t.Errorf("MatchTopic(%q, %q) = %v, want %v", tc.pattern, tc.topic, got, tc.want)
		}
	}
}
