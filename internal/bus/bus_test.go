package bus

import (
	"sync"
	"testing"
	"time"
)

func TestPublishSubscribeExact(t *testing.T) {
	b := New()
	var got []string
	b.Subscribe("a.b", func(e Envelope) { got = append(got, e.Topic) })
	b.Publish(Envelope{Topic: "a.b"})
	b.Publish(Envelope{Topic: "a.c"})
	if len(got) != 1 || got[0] != "a.b" {
		t.Errorf("got %v, want [a.b]", got)
	}
}

func TestPublishSubscribePrefix(t *testing.T) {
	b := New()
	count := 0
	b.Subscribe("loop.*", func(Envelope) { count++ })
	b.Subscribe("*", func(Envelope) { count += 10 })
	b.Publish(Envelope{Topic: "loop.sched.plan"})
	b.Publish(Envelope{Topic: "telemetry.points"})
	if count != 21 {
		t.Errorf("count = %d, want 21 (1 prefix + 2 wildcard*10)", count)
	}
}

func TestUnsubscribe(t *testing.T) {
	b := New()
	count := 0
	cancel := b.Subscribe("t", func(Envelope) { count++ })
	b.Publish(Envelope{Topic: "t"})
	cancel()
	cancel() // double-cancel must be safe
	b.Publish(Envelope{Topic: "t"})
	if count != 1 {
		t.Errorf("count = %d, want 1", count)
	}
}

func TestDeliveryOrderIsSubscriptionOrder(t *testing.T) {
	b := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		b.Subscribe("t", func(Envelope) { order = append(order, i) })
	}
	b.Publish(Envelope{Topic: "t"})
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestStats(t *testing.T) {
	b := New()
	b.Subscribe("t", func(Envelope) {})
	b.Subscribe("t", func(Envelope) {})
	b.Publish(Envelope{Topic: "t"})
	b.Publish(Envelope{Topic: "other"})
	pub, del := b.Stats()
	if pub != 2 || del != 2 {
		t.Errorf("Stats = %d, %d; want 2, 2", pub, del)
	}
}

func TestTopicsSorted(t *testing.T) {
	b := New()
	b.Subscribe("z", func(Envelope) {})
	b.Subscribe("a", func(Envelope) {})
	tp := b.Topics()
	if len(tp) != 2 || tp[0] != "a" || tp[1] != "z" {
		t.Errorf("Topics = %v", tp)
	}
}

func TestPublishEmptyTopicPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New().Publish(Envelope{})
}

func TestSubscribeNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New().Subscribe("t", nil)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	env := Envelope{Topic: "t", Time: 3 * time.Second, Source: "s", Payload: map[string]interface{}{"x": 1.5}}
	data, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Error("wire form must be newline-terminated")
	}
	got, err := Decode(data[:len(data)-1])
	if err != nil {
		t.Fatal(err)
	}
	if got.Topic != "t" || got.Time != 3*time.Second || got.Source != "s" {
		t.Errorf("round trip = %+v", got)
	}
	payload, ok := got.Payload.(map[string]interface{})
	if !ok || payload["x"] != 1.5 {
		t.Errorf("payload = %v", got.Payload)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Error("expected decode error")
	}
	if _, err := Decode([]byte(`{"time":1}`)); err == nil {
		t.Error("expected missing-topic error")
	}
}

func TestConcurrentPublish(t *testing.T) {
	b := New()
	var mu sync.Mutex
	count := 0
	b.Subscribe("t", func(Envelope) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Publish(Envelope{Topic: "t"})
			}
		}()
	}
	wg.Wait()
	if count != 800 {
		t.Errorf("count = %d, want 800", count)
	}
}

func TestWireServerClient(t *testing.T) {
	serverBus := New()
	srv, err := NewServer("127.0.0.1:0", "export.*", serverBus)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	clientBus := New()
	received := make(chan Envelope, 10)
	clientBus.Subscribe("export.*", func(e Envelope) {
		select {
		case received <- e:
		default:
		}
	})
	cli, err := Dial(srv.Addr(), "up.*", clientBus)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Give the server a moment to register the connection.
	time.Sleep(50 * time.Millisecond)

	// Server -> client push.
	serverBus.Publish(Envelope{Topic: "export.metric", Time: time.Second, Payload: 42.0})
	select {
	case e := <-received:
		if e.Topic != "export.metric" || e.Payload != 42.0 {
			t.Errorf("got %+v", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for server push")
	}

	// Client -> server upload.
	up := make(chan Envelope, 1)
	serverBus.Subscribe("up.cmd", func(e Envelope) {
		select {
		case up <- e:
		default:
		}
	})
	clientBus.Publish(Envelope{Topic: "up.cmd", Payload: "extend"})
	select {
	case e := <-up:
		if e.Payload != "extend" {
			t.Errorf("got %+v", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for client upload")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", "*", New())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
