package bus

import (
	"testing"
	"time"
)

// TestJournalHookObservesPublishes checks the journal hook sees every
// envelope accepted for delivery — including envelopes with zero
// subscribers — in publish order, and never sees an expired drop.
func TestJournalHookObservesPublishes(t *testing.T) {
	b := New()
	var seen []string
	b.Journal(func(env Envelope) { seen = append(seen, env.Topic) })

	delivered := 0
	b.Subscribe("loop.*", func(Envelope) { delivered++ })

	b.Publish(Envelope{Topic: "loop.power.plan", Time: time.Second})
	b.Publish(Envelope{Topic: "orphan.topic", Time: time.Second}) // no subscriber, still journaled
	b.Publish(Envelope{Topic: "loop.dead", Time: 10 * time.Second, Deadline: 5 * time.Second})
	b.PublishBatch([]Envelope{
		{Topic: "loop.a", Time: time.Second},
		{Topic: "loop.expired", Time: 10 * time.Second, Deadline: time.Second},
		{Topic: "loop.b", Time: time.Second},
	})

	want := []string{"loop.power.plan", "orphan.topic", "loop.a", "loop.b"}
	if len(seen) != len(want) {
		t.Fatalf("journal saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("journal saw %v, want %v", seen, want)
		}
	}
	if delivered != 3 {
		t.Fatalf("delivered %d, want 3", delivered)
	}

	// Removing the hook stops observation.
	b.Journal(nil)
	b.Publish(Envelope{Topic: "loop.after", Time: time.Second})
	if len(seen) != len(want) {
		t.Fatalf("journal still active after removal: %v", seen)
	}
}
