package bus

import (
	"testing"
	"time"
)

func TestEnvelopeExpired(t *testing.T) {
	cases := []struct {
		name     string
		deadline time.Duration
		now      time.Duration
		want     bool
	}{
		{"zero deadline never expires", 0, 0, false},
		{"zero deadline never expires late", 0, 24 * time.Hour, false},
		{"negative deadline never expires", -time.Second, time.Hour, false},
		{"before deadline", time.Minute, 59 * time.Second, false},
		{"exactly at deadline", time.Minute, time.Minute, true},
		{"past deadline", time.Minute, 2 * time.Minute, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := Envelope{Topic: "t", Deadline: tc.deadline}
			if got := e.Expired(tc.now); got != tc.want {
				t.Errorf("Expired(%v) with deadline %v = %v, want %v", tc.now, tc.deadline, got, tc.want)
			}
		})
	}
}

func TestPublishDropsExpiredEnvelopes(t *testing.T) {
	cases := []struct {
		name          string
		env           Envelope
		wantDelivered int
	}{
		{"zero deadline delivered", Envelope{Topic: "t", Time: time.Hour}, 1},
		{"live deadline delivered", Envelope{Topic: "t", Time: time.Minute, Deadline: 2 * time.Minute}, 1},
		{"already expired dropped", Envelope{Topic: "t", Time: 2 * time.Minute, Deadline: time.Minute}, 0},
		{"expired exactly at publish dropped", Envelope{Topic: "t", Time: time.Minute, Deadline: time.Minute}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := New()
			got := 0
			b.Subscribe("t", func(Envelope) { got++ })
			b.Publish(tc.env)
			if got != tc.wantDelivered {
				t.Errorf("delivered %d, want %d", got, tc.wantDelivered)
			}
			wantExpired := uint64(1 - tc.wantDelivered)
			if b.ExpiredDropped() != wantExpired {
				t.Errorf("ExpiredDropped = %d, want %d", b.ExpiredDropped(), wantExpired)
			}
			if pub, _ := b.Stats(); pub != uint64(tc.wantDelivered) {
				t.Errorf("published = %d, want %d", pub, tc.wantDelivered)
			}
		})
	}
}

func TestPublishBatchDropsExpiredEnvelopes(t *testing.T) {
	b := New()
	var got []string
	b.Subscribe("*", func(e Envelope) { got = append(got, e.Topic) })
	b.PublishBatch([]Envelope{
		{Topic: "a", Time: time.Minute},
		{Topic: "b", Time: time.Minute, Deadline: 30 * time.Second}, // already expired
		{Topic: "a", Time: time.Minute, Deadline: 2 * time.Minute},
	})
	if len(got) != 2 || got[0] != "a" || got[1] != "a" {
		t.Fatalf("delivered topics = %v, want [a a]", got)
	}
	if b.ExpiredDropped() != 1 {
		t.Errorf("ExpiredDropped = %d, want 1", b.ExpiredDropped())
	}
	if pub, del := b.Stats(); pub != 2 || del != 2 {
		t.Errorf("stats = %d, %d; want 2, 2", pub, del)
	}
}
