package bus

import (
	"fmt"
	"sync"
	"testing"
)

// linearBus replicates the pre-index dispatcher — a flat subscription slice
// scanned on every publish, with counters folded under a second write-lock —
// as the baseline BenchmarkBusDispatch is measured against.
type linearBus struct {
	mu        sync.RWMutex
	subs      []subscription
	published uint64
	delivered uint64
}

func (b *linearBus) subscribe(pattern string, h Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.subs = append(b.subs, subscription{id: len(b.subs) + 1, pattern: pattern, h: h})
}

func (b *linearBus) publish(env Envelope) {
	b.mu.RLock()
	matched := make([]Handler, 0, 4)
	for _, s := range b.subs {
		if matches(s.pattern, env.Topic) {
			matched = append(matched, s.h)
		}
	}
	b.mu.RUnlock()
	b.mu.Lock()
	b.published++
	b.delivered += uint64(len(matched))
	b.mu.Unlock()
	for _, h := range matched {
		h(env)
	}
}

const benchSubscribers = 1000

func benchTopics() []string {
	topics := make([]string, benchSubscribers)
	for i := range topics {
		topics[i] = fmt.Sprintf("telemetry.domain%02d.metric%03d", i%16, i)
	}
	return topics
}

// BenchmarkBusDispatch publishes exact-topic envelopes into a bus holding
// 1,000 subscribers; the topic-indexed fabric resolves each publish with one
// map hit instead of a 1,000-entry scan.
func BenchmarkBusDispatch(b *testing.B) {
	bus := New()
	sink := 0
	for _, topic := range benchTopics() {
		bus.Subscribe(topic, func(Envelope) { sink++ })
	}
	env := Envelope{Topic: "telemetry.domain07.metric500"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(env)
	}
}

// BenchmarkBusDispatchLinear is the seed's linear-scan dispatcher on the
// identical workload — the baseline the acceptance speedup is counted from.
func BenchmarkBusDispatchLinear(b *testing.B) {
	bus := &linearBus{}
	sink := 0
	for _, topic := range benchTopics() {
		bus.subscribe(topic, func(Envelope) { sink++ })
	}
	env := Envelope{Topic: "telemetry.domain07.metric500"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.publish(env)
	}
}

// BenchmarkBusDispatchWildcard measures dispatch when prefix subscribers are
// in play alongside the exact index.
func BenchmarkBusDispatchWildcard(b *testing.B) {
	bus := New()
	sink := 0
	for _, topic := range benchTopics() {
		bus.Subscribe(topic, func(Envelope) { sink++ })
	}
	for i := 0; i < 16; i++ {
		bus.Subscribe(fmt.Sprintf("telemetry.domain%02d.*", i), func(Envelope) { sink++ })
	}
	env := Envelope{Topic: "telemetry.domain07.metric500"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(env)
	}
}

// BenchmarkBusPublishBatch publishes 64-point batches sharing one topic,
// the telemetry pipeline's shape, amortizing lock and handler resolution.
func BenchmarkBusPublishBatch(b *testing.B) {
	bus := New()
	sink := 0
	for _, topic := range benchTopics() {
		bus.Subscribe(topic, func(Envelope) { sink++ })
	}
	batch := make([]Envelope, 64)
	for i := range batch {
		batch[i] = Envelope{Topic: "telemetry.domain07.metric500"}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.PublishBatch(batch)
	}
}
