package bus

import (
	"encoding/json"
	"fmt"
	"time"
)

// Call publishes req and waits for the first envelope on respTopic for which
// match returns true (a nil match accepts the first envelope). It is the
// request/reply correlation helper for envelope services: in-process
// dispatch is synchronous, so the reply is usually captured before Publish
// returns; across the TCP bridge the reply arrives asynchronously, bounded
// by timeout (wall clock; <= 0 means one second).
//
// The caller owns correlation: put a unique id in the request payload and
// match on it in the reply, as control.v1 does.
func Call(b *Bus, req Envelope, respTopic string, match func(Envelope) bool, timeout time.Duration) (Envelope, error) {
	if timeout <= 0 {
		timeout = time.Second
	}
	got := make(chan Envelope, 1)
	cancel := b.Subscribe(respTopic, func(env Envelope) {
		if match != nil && !match(env) {
			return
		}
		select {
		case got <- env:
		default: // a reply is already captured
		}
	})
	defer cancel()
	b.Publish(req)
	select {
	case env := <-got:
		return env, nil
	case <-time.After(timeout):
		return Envelope{}, fmt.Errorf("bus: call %s: no reply on %s within %v", req.Topic, respTopic, timeout)
	}
}

// DecodePayload re-decodes an envelope payload into out. Payloads published
// in-process keep their original Go type while payloads that crossed the
// wire arrive as generic JSON values; a marshal/unmarshal round trip gives
// services one uniform way to read either.
func DecodePayload(env Envelope, out interface{}) error {
	data, err := json.Marshal(env.Payload)
	if err != nil {
		return fmt.Errorf("bus: payload of %s does not marshal: %w", env.Topic, err)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("bus: payload of %s: %w", env.Topic, err)
	}
	return nil
}
