package bus

import (
	"net"
	"sync"
	"testing"
	"time"

	"autoloop/internal/chaos"
)

// TestReconnectorSurvivesServerRestart drops the server out from under a
// Reconnector and verifies the link heals on the same address, with the
// down/up transitions reported in order and the backoff schedule reset by
// the success.
func TestReconnectorSurvivesServerRestart(t *testing.T) {
	serverBus := New()
	srv, err := NewServer("127.0.0.1:0", "*", serverBus)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	var mu sync.Mutex
	var states []bool
	bo := chaos.NewBackoff(5*time.Millisecond, 50*time.Millisecond, 1)
	clientBus := New()
	rc, err := NewReconnector(addr, "*", clientBus, ReconnectOptions{
		Backoff: bo,
		// The fast test backoff burns through the default breaker's
		// threshold within the outage; keep the breaker out of this
		// test's way (it has its own below).
		Breaker: &chaos.Breaker{Threshold: 1 << 20},
		OnState: func(up bool) {
			mu.Lock()
			states = append(states, up)
			mu.Unlock()
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	srv.Close() // the outage: every conn dies, the port closes

	// Hold the port down long enough for several failed redials, then
	// restart on the same address.
	time.Sleep(100 * time.Millisecond)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	ln.Close()
	srv2, err := NewServer(addr, "*", serverBus)
	if err != nil {
		t.Fatalf("restart server: %v", err)
	}
	defer srv2.Close()

	deadline := time.Now().Add(5 * time.Second)
	for rc.Client() == nil {
		if time.Now().After(deadline) {
			t.Fatal("reconnector never healed the link")
		}
		time.Sleep(5 * time.Millisecond)
	}

	dials, failures, drops := rc.Stats()
	if drops != 1 {
		t.Fatalf("drops = %d, want 1", drops)
	}
	if failures == 0 || dials < failures+2 {
		t.Fatalf("dials=%d failures=%d: want failed redials during the outage and 2 successes", dials, failures)
	}
	if bo.Attempt() != 0 {
		t.Fatalf("backoff attempt = %d after success, want reset to 0", bo.Attempt())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(states) < 3 || !states[0] || states[1] || !states[len(states)-1] {
		t.Fatalf("state transitions = %v, want up, down, ..., up", states)
	}
}

// TestReconnectorBreakerSlowsDeadPeer checks the breaker trips after the
// threshold and refuses dials during its cooldown.
func TestReconnectorBreakerSlowsDeadPeer(t *testing.T) {
	serverBus := New()
	srv, err := NewServer("127.0.0.1:0", "*", serverBus)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	brk := &chaos.Breaker{Threshold: 3, Cooldown: time.Hour}
	rc, err := NewReconnector(addr, "*", New(), ReconnectOptions{
		Backoff: chaos.NewBackoff(time.Millisecond, 2*time.Millisecond, 1),
		Breaker: brk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	srv.Close() // peer dies for good

	deadline := time.Now().Add(5 * time.Second)
	for brk.State() != "open" {
		if time.Now().After(deadline) {
			t.Fatalf("breaker state = %s, never tripped", brk.State())
		}
		time.Sleep(time.Millisecond)
	}
	_, failuresAtTrip, _ := rc.Stats()
	time.Sleep(50 * time.Millisecond) // many backoff periods inside the cooldown
	_, failuresLater, _ := rc.Stats()
	if failuresLater > failuresAtTrip+1 {
		t.Fatalf("breaker open but dials kept flowing: %d -> %d", failuresAtTrip, failuresLater)
	}
}
