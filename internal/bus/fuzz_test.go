package bus

import (
	"strings"
	"testing"
	"time"
)

// FuzzTopicMatch cross-checks the indexed dispatch path (exact map + segment
// trie + loose linear list) against the naive reference matcher `matches` on
// arbitrary topic/pattern sets: for any topic, dispatch must deliver to
// exactly the subscriptions whose pattern matches, in subscription order.
func FuzzTopicMatch(f *testing.F) {
	// Seed corpus: bare "*", ".*", empty segments, overlapping exact+prefix
	// subscriptions, loose (non-segment-aligned) wildcards.
	f.Add("a.b.c", "*", "a.*", "a.b.c")
	f.Add("loop.sched.plan", "loop.*", "loop.sched.plan", "loop*")
	f.Add("a..b", ".*", "a..*", "a.")
	f.Add("telemetry.node.temp", "telemetry.node.*", "telemetry.*", "*")
	f.Add("x", "", "x.*", "x")
	f.Add("a.b", "a.b.*", "a.b*", "a.b.")
	f.Add(".", ".*", "..*", "")
	f.Add("fleet.round", "fleet.*", "fleet.round", "fl*")

	f.Fuzz(func(t *testing.T, topic, p1, p2, p3 string) {
		if topic == "" {
			return // Publish rejects empty topics by contract
		}
		// Build an overlapping subscription set: the three fuzzed patterns
		// plus derived exact and prefix subscriptions over the same topic so
		// exact-map, trie, and root-wild paths all stay hot.
		patterns := []string{p1, p2, p3, topic, "*"}
		if i := strings.IndexByte(topic, '.'); i >= 0 {
			patterns = append(patterns, topic[:i+1]+"*")
		}

		b := New()
		var got []int
		for i, p := range patterns {
			i := i
			b.Subscribe(p, func(Envelope) { got = append(got, i) })
		}
		b.Publish(Envelope{Topic: topic, Time: time.Second})

		var want []int
		for i, p := range patterns {
			if matches(p, topic) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("topic %q patterns %q: index delivered to %v, reference says %v", topic, patterns, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("topic %q patterns %q: delivery order %v, reference order %v", topic, patterns, got, want)
			}
		}
	})
}
