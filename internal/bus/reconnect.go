package bus

import (
	"sync"
	"sync/atomic"
	"time"

	"autoloop/internal/chaos"
)

// ReconnectOptions tunes a Reconnector. The zero value gives the default
// full-jitter backoff (50ms..15s) and a 5-failure/10s-cooldown breaker.
type ReconnectOptions struct {
	// Backoff is the redial schedule; nil gets the chaos package defaults
	// seeded from the wall clock.
	Backoff *chaos.Backoff
	// Breaker gates redials once the peer looks dead; nil gets defaults.
	// Set to a Breaker with Threshold<0 semantics is not supported — pass
	// a generous Threshold instead.
	Breaker *chaos.Breaker
	// OnState, when non-nil, is called with true after each successful
	// (re)connect and false when an established link drops — the hook a
	// worker uses to enter and leave degraded mode. It is called from the
	// reconnector's goroutine; keep it brief.
	OnState func(up bool)
	// Logf, when non-nil, receives one line per state change and redial
	// failure.
	Logf func(format string, args ...any)
}

// Reconnector maintains a bridged Client to one Server across failures:
// when the link drops it redials under capped exponential backoff with
// full jitter, behind a circuit breaker that slows probing to the breaker
// cooldown once the peer has been dead for a while. This replaces the
// fixed-interval redial throttle the worker loop started with — a fleet of
// workers redialing a restarted coordinator now spreads over the jitter
// window instead of arriving in lockstep.
type Reconnector struct {
	addr    string
	pattern string
	bus     *Bus
	opts    ReconnectOptions

	mu     sync.Mutex
	client *Client
	closed bool
	stop   chan struct{}
	wg     sync.WaitGroup

	dials    atomic.Uint64 // dial attempts, successful or not
	failures atomic.Uint64 // failed dial attempts
	drops    atomic.Uint64 // established links that died
}

// NewReconnector dials addr immediately — returning the first error so
// callers keep their fail-fast startup — and then maintains the link until
// Close.
func NewReconnector(addr, exportPattern string, b *Bus, opts ReconnectOptions) (*Reconnector, error) {
	if opts.Backoff == nil {
		opts.Backoff = chaos.NewBackoff(0, 0, time.Now().UnixNano())
	}
	if opts.Breaker == nil {
		opts.Breaker = &chaos.Breaker{}
	}
	r := &Reconnector{addr: addr, pattern: exportPattern, bus: b, opts: opts, stop: make(chan struct{})}
	r.dials.Add(1)
	c, err := Dial(addr, exportPattern, b)
	if err != nil {
		r.failures.Add(1)
		return nil, err
	}
	opts.Breaker.Success()
	r.client = c
	if opts.OnState != nil {
		opts.OnState(true)
	}
	r.wg.Add(1)
	go r.run(c)
	return r, nil
}

// Client returns the current client (nil between connections). The client
// may die at any moment; callers publish through the bus, not the client,
// so this is only for introspection.
func (r *Reconnector) Client() *Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.client
}

// Stats reports dial attempts, failed attempts, and dropped links.
func (r *Reconnector) Stats() (dials, failures, drops uint64) {
	return r.dials.Load(), r.failures.Load(), r.drops.Load()
}

// Close stops reconnecting and closes the live client, if any.
func (r *Reconnector) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	c := r.client
	r.mu.Unlock()
	close(r.stop)
	if c != nil {
		c.Close()
	}
	r.wg.Wait()
	return nil
}

func (r *Reconnector) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// run watches the live client and redials when it dies.
func (r *Reconnector) run(c *Client) {
	defer r.wg.Done()
	for {
		select {
		case <-r.stop:
			return
		case <-c.Done():
		}
		r.drops.Add(1)
		if err := c.Err(); err != nil {
			r.logf("bus: link to %s dropped: %v", r.addr, err)
		} else {
			r.logf("bus: link to %s closed by peer", r.addr)
		}
		r.mu.Lock()
		r.client = nil
		closed := r.closed
		r.mu.Unlock()
		if closed {
			return
		}
		if r.opts.OnState != nil {
			r.opts.OnState(false)
		}
		c = r.redial()
		if c == nil {
			return // Close raced the redial loop
		}
		if r.opts.OnState != nil {
			r.opts.OnState(true)
		}
	}
}

// redial loops under backoff+breaker until a dial lands or Close wins.
func (r *Reconnector) redial() *Client {
	bo, brk := r.opts.Backoff, r.opts.Breaker
	for {
		if brk.Allow() {
			r.dials.Add(1)
			c, err := Dial(r.addr, r.pattern, r.bus)
			if err == nil {
				bo.Reset()
				brk.Success()
				r.mu.Lock()
				if r.closed {
					r.mu.Unlock()
					c.Close()
					return nil
				}
				r.client = c
				r.mu.Unlock()
				r.logf("bus: link to %s re-established after %d attempts", r.addr, r.failures.Load())
				return c
			}
			r.failures.Add(1)
			brk.Failure()
			if brk.State() == "open" {
				r.logf("bus: breaker open for %s after repeated dial failures", r.addr)
			}
		}
		t := time.NewTimer(bo.Next())
		select {
		case <-r.stop:
			t.Stop()
			return nil
		case <-t.C:
		}
	}
}
