// Package bus provides the topic-based publish/subscribe fabric that
// decouples MAPE-K loop components from each other and from the substrates
// they manage, plus a JSON wire codec and TCP transport so components can be
// distributed across processes.
//
// The paper's question (ii) asks what interfaces would make loop components
// interchangeable; the answer implemented here is: components never call each
// other directly, they exchange envelopes on named topics ("telemetry.points",
// "loop.<name>.plan", "sched.extension.result", ...). In-process delivery is
// synchronous and deterministic under the simulator; the wire transport
// carries the same envelopes across the network for cmd/modad.
package bus

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Envelope is the unit of exchange on the bus. Payload is JSON-marshalable;
// in-process subscribers receive the original value, wire subscribers receive
// the decoded JSON form.
type Envelope struct {
	Topic   string        `json:"topic"`
	Time    time.Duration `json:"time"`
	Source  string        `json:"source,omitempty"`
	Payload interface{}   `json:"payload,omitempty"`
}

// Handler consumes envelopes published to a subscribed topic.
type Handler func(Envelope)

// subscription pairs a handler with its registration order for deterministic
// dispatch.
type subscription struct {
	id      int
	pattern string
	h       Handler
}

// Bus is an in-process topic pub/sub hub. Delivery is synchronous: Publish
// invokes every matching handler before returning, which keeps simulated
// loops deterministic. Bus is safe for concurrent use.
type Bus struct {
	mu        sync.RWMutex
	nextID    int
	subs      []subscription
	published uint64
	delivered uint64
}

// New returns an empty bus.
func New() *Bus { return &Bus{} }

// Subscribe registers h for every envelope whose topic matches pattern.
// A pattern either names a topic exactly or ends in ".*" / "*" to match a
// prefix ("loop.*" matches "loop.sched.plan"). Subscribe returns an
// unsubscribe function.
func (b *Bus) Subscribe(pattern string, h Handler) (cancel func()) {
	if h == nil {
		panic("bus: Subscribe with nil handler")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	id := b.nextID
	b.subs = append(b.subs, subscription{id: id, pattern: pattern, h: h})
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		for i, s := range b.subs {
			if s.id == id {
				b.subs = append(b.subs[:i], b.subs[i+1:]...)
				return
			}
		}
	}
}

// matches reports whether topic matches pattern (exact, or prefix with a
// trailing "*").
func matches(pattern, topic string) bool {
	if pattern == "*" {
		return true
	}
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(topic, strings.TrimSuffix(pattern, "*"))
	}
	return pattern == topic
}

// Publish delivers env to all matching subscribers in subscription order.
func (b *Bus) Publish(env Envelope) {
	if env.Topic == "" {
		panic("bus: Publish with empty topic")
	}
	b.mu.RLock()
	matched := make([]Handler, 0, 4)
	for _, s := range b.subs {
		if matches(s.pattern, env.Topic) {
			matched = append(matched, s.h)
		}
	}
	b.mu.RUnlock()

	b.mu.Lock()
	b.published++
	b.delivered += uint64(len(matched))
	b.mu.Unlock()

	for _, h := range matched {
		h(env)
	}
}

// Stats reports how many envelopes were published and delivered.
func (b *Bus) Stats() (published, delivered uint64) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.published, b.delivered
}

// Topics returns the sorted set of currently subscribed patterns, for
// diagnostics.
func (b *Bus) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	set := map[string]bool{}
	for _, s := range b.subs {
		set[s.pattern] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Encode marshals env to a single-line JSON wire form terminated by '\n'.
func Encode(env Envelope) ([]byte, error) {
	data, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("bus: encode %s: %w", env.Topic, err)
	}
	return append(data, '\n'), nil
}

// Decode unmarshals one wire line produced by Encode.
func Decode(line []byte) (Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return Envelope{}, fmt.Errorf("bus: decode: %w", err)
	}
	if env.Topic == "" {
		return Envelope{}, fmt.Errorf("bus: decode: missing topic")
	}
	return env, nil
}
