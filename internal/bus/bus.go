// Package bus provides the topic-based publish/subscribe fabric that
// decouples MAPE-K loop components from each other and from the substrates
// they manage, plus a JSON wire codec and TCP transport so components can be
// distributed across processes.
//
// The paper's question (ii) asks what interfaces would make loop components
// interchangeable; the answer implemented here is: components never call each
// other directly, they exchange envelopes on named topics ("telemetry.points",
// "loop.<name>.plan", "sched.extension.result", ...). In-process delivery is
// synchronous and deterministic under the simulator; the wire transport
// carries the same envelopes across the network for cmd/modad.
//
// Dispatch is topic-indexed: exact-topic subscriptions live in a hash map and
// "prefix.*" subscriptions in a segment trie, so Publish costs O(topic depth)
// regardless of how many subscriptions exist. Stats are atomic counters, so
// the whole dispatch path takes a single read-lock.
package bus

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Envelope is the unit of exchange on the bus. Payload is JSON-marshalable;
// in-process subscribers receive the original value, wire subscribers receive
// the decoded JSON form.
type Envelope struct {
	Topic   string        `json:"topic"`
	Time    time.Duration `json:"time"`
	Source  string        `json:"source,omitempty"`
	Payload interface{}   `json:"payload,omitempty"`
	// Deadline, when positive, is the virtual time at which the envelope's
	// content stops being actionable (a stale telemetry point, a superseded
	// round summary). The bus drops already-expired envelopes at publish
	// time; see deadline.go.
	Deadline time.Duration `json:"deadline,omitempty"`
}

// Handler consumes envelopes published to a subscribed topic.
type Handler func(Envelope)

// subscription pairs a handler with its registration order for deterministic
// dispatch.
type subscription struct {
	id      int
	pattern string
	h       Handler
}

// trieNode is one segment of the prefix index. A subscription for "a.b.*"
// hangs its wild list off the node reached by descending "a" then "b"; the
// dispatch walk collects wild lists along the topic's segment path.
type trieNode struct {
	children map[string]*trieNode
	wild     []*subscription
}

// Bus is an in-process topic pub/sub hub. Delivery is synchronous: Publish
// invokes every matching handler before returning, which keeps simulated
// loops deterministic. Bus is safe for concurrent use.
type Bus struct {
	mu     sync.RWMutex
	nextID int
	// exact indexes literal-topic subscriptions by topic.
	exact map[string][]*subscription
	// root indexes "prefix.*" subscriptions by segment path; its own wild
	// list holds bare-"*" subscriptions, which match every topic.
	root trieNode
	// loose holds wildcard patterns whose prefix is not segment-aligned
	// ("loo*"); they are rare and matched linearly.
	loose []*subscription
	// patternCount refcounts live patterns for Topics().
	patternCount map[string]int

	published atomic.Uint64
	delivered atomic.Uint64
	expired   atomic.Uint64

	// journal, when set, observes every envelope accepted for delivery
	// (expired drops excluded) before its handlers run. It is the WAL hook:
	// the daemon records published envelopes as an audit trail. Swapped
	// atomically so the publish hot path reads one pointer.
	journal atomic.Pointer[func(Envelope)]
}

// New returns an empty bus.
func New() *Bus {
	return &Bus{
		exact:        make(map[string][]*subscription),
		patternCount: make(map[string]int),
	}
}

// Subscribe registers h for every envelope whose topic matches pattern.
// A pattern either names a topic exactly or ends in ".*" / "*" to match a
// prefix ("loop.*" matches "loop.sched.plan"). Subscribe returns an
// unsubscribe function.
func (b *Bus) Subscribe(pattern string, h Handler) (cancel func()) {
	if h == nil {
		panic("bus: Subscribe with nil handler")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.exact == nil { // keep the zero value usable, like New()
		b.exact = make(map[string][]*subscription)
		b.patternCount = make(map[string]int)
	}
	b.nextID++
	s := &subscription{id: b.nextID, pattern: pattern, h: h}
	b.insertLocked(s)
	b.patternCount[pattern]++
	done := false
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if done {
			return
		}
		done = true
		b.removeLocked(s)
		if b.patternCount[pattern]--; b.patternCount[pattern] <= 0 {
			delete(b.patternCount, pattern)
		}
	}
}

// insertLocked places s into the index matching its pattern shape.
func (b *Bus) insertLocked(s *subscription) {
	prefix, wild := wildPrefix(s.pattern)
	switch {
	case !wild:
		b.exact[s.pattern] = append(b.exact[s.pattern], s)
	case prefix == "":
		b.root.wild = append(b.root.wild, s)
	case strings.HasSuffix(prefix, "."):
		n := &b.root
		for _, seg := range strings.Split(prefix[:len(prefix)-1], ".") {
			child := n.children[seg]
			if child == nil {
				child = &trieNode{}
				if n.children == nil {
					n.children = make(map[string]*trieNode)
				}
				n.children[seg] = child
			}
			n = child
		}
		n.wild = append(n.wild, s)
	default:
		b.loose = append(b.loose, s)
	}
}

// removeLocked undoes insertLocked, pruning emptied trie nodes.
func (b *Bus) removeLocked(s *subscription) {
	prefix, wild := wildPrefix(s.pattern)
	switch {
	case !wild:
		if rest := dropSub(b.exact[s.pattern], s); len(rest) == 0 {
			delete(b.exact, s.pattern)
		} else {
			b.exact[s.pattern] = rest
		}
	case prefix == "":
		b.root.wild = dropSub(b.root.wild, s)
	case strings.HasSuffix(prefix, "."):
		segs := strings.Split(prefix[:len(prefix)-1], ".")
		path := make([]*trieNode, 0, len(segs)+1)
		n := &b.root
		path = append(path, n)
		for _, seg := range segs {
			n = n.children[seg]
			if n == nil {
				return // never inserted (unreachable in practice)
			}
			path = append(path, n)
		}
		n.wild = dropSub(n.wild, s)
		for i := len(path) - 1; i > 0; i-- {
			node := path[i]
			if len(node.wild) > 0 || len(node.children) > 0 {
				break
			}
			delete(path[i-1].children, segs[i-1])
		}
	default:
		b.loose = dropSub(b.loose, s)
	}
}

// dropSub removes s from list, preserving the id order of the rest.
func dropSub(list []*subscription, s *subscription) []*subscription {
	for i, have := range list {
		if have == s {
			out := make([]*subscription, 0, len(list)-1)
			out = append(out, list[:i]...)
			return append(out, list[i+1:]...)
		}
	}
	return list
}

// wildPrefix classifies pattern: wild reports whether it ends in "*", and
// prefix is the literal part before the "*".
func wildPrefix(pattern string) (prefix string, wild bool) {
	if strings.HasSuffix(pattern, "*") {
		return pattern[:len(pattern)-1], true
	}
	return pattern, false
}

// matches reports whether topic matches pattern (exact, or prefix with a
// trailing "*"). It is the reference semantics the index implements.
func matches(pattern, topic string) bool {
	if prefix, wild := wildPrefix(pattern); wild {
		return strings.HasPrefix(topic, prefix)
	}
	return pattern == topic
}

// MatchTopic reports whether topic matches pattern under the bus's
// subscription semantics: an exact topic, or a prefix pattern ending in
// "*" ("loop.*" matches "loop.sched.plan"). It is exported for layers that
// reuse the bus's topic vocabulary outside a subscription — e.g. the HTTP
// gateway's SSE replay filter.
func MatchTopic(pattern, topic string) bool { return matches(pattern, topic) }

// collectLocked gathers the handlers matching topic in subscription-id order.
// Callers must hold at least the read lock; the returned slice is freshly
// allocated and safe to use after the lock is released.
func (b *Bus) collectLocked(topic string) []Handler {
	// Gather the (individually id-sorted) source lists that can match.
	var store [6][]*subscription
	lists := store[:0]
	if ss := b.exact[topic]; len(ss) > 0 {
		lists = append(lists, ss)
	}
	if len(b.root.wild) > 0 {
		lists = append(lists, b.root.wild)
	}
	// Walk the segment trie: a wild list at depth d matches topics whose
	// first d segments reach its node and that continue past a "." there —
	// exactly strings.HasPrefix(topic, "seg1.…segd.").
	n, rest := &b.root, topic
	for len(n.children) > 0 {
		i := strings.IndexByte(rest, '.')
		if i < 0 {
			break
		}
		n = n.children[rest[:i]]
		if n == nil {
			break
		}
		rest = rest[i+1:]
		if len(n.wild) > 0 {
			lists = append(lists, n.wild)
		}
	}
	for _, s := range b.loose {
		if matches(s.pattern, topic) {
			lists = append(lists, []*subscription{s})
		}
	}
	switch len(lists) {
	case 0:
		return nil
	case 1:
		out := make([]Handler, len(lists[0]))
		for i, s := range lists[0] {
			out[i] = s.h
		}
		return out
	}
	// Merge by subscription id so dispatch order equals subscription order.
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]Handler, 0, total)
	pos := make([]int, len(lists))
	for len(out) < total {
		best := -1
		for li, l := range lists {
			if pos[li] < len(l) && (best < 0 || l[pos[li]].id < lists[best][pos[best]].id) {
				best = li
			}
		}
		out = append(out, lists[best][pos[best]].h)
		pos[best]++
	}
	return out
}

// Publish delivers env to all matching subscribers in subscription order.
// An envelope already past its deadline at its own publish time is dropped
// (counted by ExpiredDropped), not delivered.
func (b *Bus) Publish(env Envelope) {
	if env.Topic == "" {
		panic("bus: Publish with empty topic")
	}
	if env.Expired(env.Time) {
		b.expired.Add(1)
		return
	}
	b.mu.RLock()
	matched := b.collectLocked(env.Topic)
	b.mu.RUnlock()

	if j := b.journal.Load(); j != nil {
		(*j)(env)
	}
	b.published.Add(1)
	b.delivered.Add(uint64(len(matched)))
	for _, h := range matched {
		h(env)
	}
}

// PublishBatch delivers every envelope in order, resolving the subscriber set
// for the whole batch under one read-lock and bumping the stats counters
// once. Runs of envelopes sharing a topic — the common case for telemetry
// point batches — reuse one handler resolution.
//
// The subscriber set is snapshotted once for the whole batch: a handler that
// subscribes or cancels mid-batch changes delivery only for subsequent
// publishes, not for the remaining envelopes of this batch (Publish has the
// same property per envelope).
func (b *Bus) PublishBatch(envs []Envelope) {
	if len(envs) == 0 {
		return
	}
	for i := range envs {
		if envs[i].Topic == "" {
			panic("bus: PublishBatch with empty topic")
		}
	}
	plans := make([][]Handler, len(envs))
	var lastTopic string
	var lastHandlers []Handler
	have := false
	total, dropped := 0, 0
	b.mu.RLock()
	for i := range envs {
		if envs[i].Expired(envs[i].Time) {
			dropped++
			continue
		}
		if !have || envs[i].Topic != lastTopic {
			lastTopic = envs[i].Topic
			lastHandlers = b.collectLocked(lastTopic)
			have = true
		}
		plans[i] = lastHandlers
		total += len(lastHandlers)
	}
	b.mu.RUnlock()

	if j := b.journal.Load(); j != nil {
		for i := range envs {
			if !envs[i].Expired(envs[i].Time) {
				(*j)(envs[i])
			}
		}
	}
	b.published.Add(uint64(len(envs) - dropped))
	b.delivered.Add(uint64(total))
	b.expired.Add(uint64(dropped))
	for i, env := range envs {
		for _, h := range plans[i] {
			h(env)
		}
	}
}

// Journal registers fn as the bus's journal hook: it observes every
// envelope accepted for delivery (expired drops excluded), before the
// envelope's handlers run and in publish order per publisher. The daemon
// uses it to record traffic into the write-ahead log as an audit trail;
// journaled envelopes are never re-published on recovery. Passing nil
// removes the hook. fn must be safe for concurrent use.
func (b *Bus) Journal(fn func(Envelope)) {
	if fn == nil {
		b.journal.Store(nil)
		return
	}
	b.journal.Store(&fn)
}

// Stats reports how many envelopes were published and delivered.
func (b *Bus) Stats() (published, delivered uint64) {
	return b.published.Load(), b.delivered.Load()
}

// ExpiredDropped reports how many envelopes were dropped at publish time
// because their deadline had already passed.
func (b *Bus) ExpiredDropped() uint64 { return b.expired.Load() }

// Topics returns the sorted set of currently subscribed patterns, for
// diagnostics.
func (b *Bus) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.patternCount))
	for p := range b.patternCount {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Encode marshals env to a single-line JSON wire form terminated by '\n'.
func Encode(env Envelope) ([]byte, error) {
	data, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("bus: encode %s: %w", env.Topic, err)
	}
	return append(data, '\n'), nil
}

// Decode unmarshals one wire line produced by Encode.
func Decode(line []byte) (Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return Envelope{}, fmt.Errorf("bus: decode: %w", err)
	}
	if env.Topic == "" {
		return Envelope{}, fmt.Errorf("bus: decode: missing topic")
	}
	return env, nil
}
