package bus

import (
	"fmt"
	"sync"
	"testing"
)

// TestBareStarMatchesEverything covers the root-wildcard fast path, including
// single-segment topics that never enter the trie walk.
func TestBareStarMatchesEverything(t *testing.T) {
	b := New()
	var got []string
	b.Subscribe("*", func(e Envelope) { got = append(got, e.Topic) })
	for _, topic := range []string{"t", "loop.sched.plan", ".leading", "trailing."} {
		b.Publish(Envelope{Topic: topic})
	}
	if len(got) != 4 {
		t.Errorf("bare * matched %v, want all 4 topics", got)
	}
}

// TestDotStarPrefix covers the ".*" pattern: an empty leading segment, which
// must match only topics that start with a dot.
func TestDotStarPrefix(t *testing.T) {
	b := New()
	var got []string
	b.Subscribe(".*", func(e Envelope) { got = append(got, e.Topic) })
	b.Publish(Envelope{Topic: ".hidden"})
	b.Publish(Envelope{Topic: "visible"})
	b.Publish(Envelope{Topic: "a.b"})
	if len(got) != 1 || got[0] != ".hidden" {
		t.Errorf(".* matched %v, want [.hidden]", got)
	}
}

// TestNonSegmentAlignedPrefix covers wildcard patterns whose prefix does not
// end on a segment boundary; these take the loose linear path.
func TestNonSegmentAlignedPrefix(t *testing.T) {
	b := New()
	var got []string
	b.Subscribe("loo*", func(e Envelope) { got = append(got, e.Topic) })
	b.Publish(Envelope{Topic: "loop.sched"})
	b.Publish(Envelope{Topic: "loot"})
	b.Publish(Envelope{Topic: "lo"})
	if len(got) != 2 || got[0] != "loop.sched" || got[1] != "loot" {
		t.Errorf("loo* matched %v, want [loop.sched loot]", got)
	}
}

// TestPrefixDoesNotMatchBareParent pins the raw-prefix semantics: "loop.*"
// means "starts with loop.", so the bare topic "loop" must not match, while
// the degenerate "loop." must.
func TestPrefixDoesNotMatchBareParent(t *testing.T) {
	b := New()
	var got []string
	b.Subscribe("loop.*", func(e Envelope) { got = append(got, e.Topic) })
	b.Publish(Envelope{Topic: "loop"})
	b.Publish(Envelope{Topic: "loop."})
	b.Publish(Envelope{Topic: "loopy.x"})
	b.Publish(Envelope{Topic: "loop.x.y"})
	if len(got) != 2 || got[0] != "loop." || got[1] != "loop.x.y" {
		t.Errorf("loop.* matched %v, want [loop. loop.x.y]", got)
	}
}

// TestOverlappingExactAndPrefixOrder subscribes exact, prefix, and wildcard
// patterns that all match one topic and checks handlers still fire in
// subscription order even though they live in different index structures.
func TestOverlappingExactAndPrefixOrder(t *testing.T) {
	b := New()
	var order []int
	sub := func(i int, pattern string) {
		b.Subscribe(pattern, func(Envelope) { order = append(order, i) })
	}
	sub(0, "a.b.c")
	sub(1, "a.*")
	sub(2, "*")
	sub(3, "a.b.*")
	sub(4, "a.b.c")
	sub(5, "a.b*")
	b.Publish(Envelope{Topic: "a.b.c"})
	if len(order) != 6 {
		t.Fatalf("matched %v, want all six subscriptions", order)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("dispatch order = %v, want subscription order", order)
		}
	}
}

// TestOrderAfterUnsubscribe removes a middle subscriber and checks the
// survivors keep firing in their original relative order.
func TestOrderAfterUnsubscribe(t *testing.T) {
	b := New()
	var order []int
	cancels := make([]func(), 5)
	for i := 0; i < 5; i++ {
		i := i
		pattern := "t"
		if i%2 == 1 {
			pattern = "t*" // interleave index structures
		}
		cancels[i] = b.Subscribe(pattern, func(Envelope) { order = append(order, i) })
	}
	cancels[2]()
	b.Publish(Envelope{Topic: "t"})
	want := []int{0, 1, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestSubscribeDuringPublish registers new subscribers from inside a handler
// and from concurrent goroutines while publishes are in flight; the bus must
// neither deadlock nor deliver to a handler registered after the publish
// snapshot.
func TestSubscribeDuringPublish(t *testing.T) {
	b := New()
	var mu sync.Mutex
	late := 0
	b.Subscribe("t", func(Envelope) {
		// Reentrant subscribe from a handler must not deadlock.
		b.Subscribe("t.other", func(Envelope) {})
	})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				b.Publish(Envelope{Topic: "t"})
			}
		}()
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				cancel := b.Subscribe(fmt.Sprintf("g%d.*", g), func(Envelope) {
					mu.Lock()
					late++
					mu.Unlock()
				})
				cancel()
			}
		}(g)
	}
	wg.Wait()
	if late != 0 {
		t.Errorf("handlers on unpublished topics fired %d times", late)
	}
	if pub, _ := b.Stats(); pub != 200 {
		t.Errorf("published = %d, want 200", pub)
	}
}

// TestPublishBatch checks batch delivery order, per-envelope topic routing,
// and single-pass stats accounting.
func TestPublishBatch(t *testing.T) {
	b := New()
	var got []string
	b.Subscribe("telemetry.*", func(e Envelope) { got = append(got, "w:"+e.Topic) })
	b.Subscribe("telemetry.cpu", func(e Envelope) { got = append(got, "x:"+e.Topic) })
	b.PublishBatch([]Envelope{
		{Topic: "telemetry.cpu"},
		{Topic: "telemetry.cpu"},
		{Topic: "telemetry.mem"},
		{Topic: "other"},
	})
	want := []string{"w:telemetry.cpu", "x:telemetry.cpu", "w:telemetry.cpu", "x:telemetry.cpu", "w:telemetry.mem"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	pub, del := b.Stats()
	if pub != 4 || del != 5 {
		t.Errorf("Stats = %d, %d; want 4, 5", pub, del)
	}
	b.PublishBatch(nil) // empty batch is a no-op
	if pub, _ := b.Stats(); pub != 4 {
		t.Errorf("published = %d after empty batch, want 4", pub)
	}
}

// TestPublishBatchEmptyTopicPanics keeps batch publishes as strict as
// single ones.
func TestPublishBatchEmptyTopicPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New().PublishBatch([]Envelope{{Topic: "ok"}, {}})
}

// TestTopicsAfterUnsubscribe checks pattern bookkeeping survives duplicate
// patterns and cancellation.
func TestTopicsAfterUnsubscribe(t *testing.T) {
	b := New()
	c1 := b.Subscribe("dup", func(Envelope) {})
	b.Subscribe("dup", func(Envelope) {})
	c3 := b.Subscribe("only.*", func(Envelope) {})
	c1()
	tp := b.Topics()
	if len(tp) != 2 || tp[0] != "dup" || tp[1] != "only.*" {
		t.Errorf("Topics = %v, want [dup only.*]", tp)
	}
	c3()
	tp = b.Topics()
	if len(tp) != 1 || tp[0] != "dup" {
		t.Errorf("Topics = %v, want [dup]", tp)
	}
}

// TestDeepTopicManyWildLevels exercises the merge path with more source
// lists than the stack-allocated fast path holds.
func TestDeepTopicManyWildLevels(t *testing.T) {
	b := New()
	topic := "a.b.c.d.e.f.g.h"
	var order []int
	n := 0
	sub := func(pattern string) {
		i := n
		n++
		b.Subscribe(pattern, func(Envelope) { order = append(order, i) })
	}
	sub("*")
	sub("a.*")
	sub("a.b.*")
	sub("a.b.c.*")
	sub("a.b.c.d.*")
	sub("a.b.c.d.e.*")
	sub("a.b.c.d.e.f.*")
	sub("a.b.c.d.e.f.g.*")
	sub(topic)
	sub("a.b.c.d.e.f.g.h.x") // must not match
	b.Publish(Envelope{Topic: topic})
	if len(order) != 9 {
		t.Fatalf("matched %d subscriptions, want 9 (%v)", len(order), order)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("dispatch order = %v", order)
		}
	}
}

// TestZeroValueBusUsable pins that a Bus declared without New() still works.
func TestZeroValueBusUsable(t *testing.T) {
	var b Bus
	got := 0
	b.Subscribe("t", func(Envelope) { got++ })
	b.Publish(Envelope{Topic: "t"})
	if got != 1 {
		t.Errorf("zero-value bus delivered %d, want 1", got)
	}
}
