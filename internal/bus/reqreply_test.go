package bus

import (
	"strings"
	"testing"
	"time"
)

func TestCallCorrelatesReply(t *testing.T) {
	b := New()
	cancel := b.Subscribe("svc.req", func(env Envelope) {
		id, _ := env.Payload.(string)
		// Reply twice: a foreign id first, then the matching one — Call
		// must skip the foreign reply.
		b.Publish(Envelope{Topic: "svc.resp", Payload: "other"})
		b.Publish(Envelope{Topic: "svc.resp", Payload: id})
	})
	defer cancel()

	resp, err := Call(b, Envelope{Topic: "svc.req", Payload: "id-42"}, "svc.resp",
		func(env Envelope) bool { return env.Payload == "id-42" }, time.Second)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if resp.Payload != "id-42" {
		t.Fatalf("reply payload = %v", resp.Payload)
	}
}

func TestCallNilMatchTakesFirst(t *testing.T) {
	b := New()
	defer b.Subscribe("q", func(Envelope) { b.Publish(Envelope{Topic: "a", Payload: 1}) })()
	resp, err := Call(b, Envelope{Topic: "q"}, "a", nil, time.Second)
	if err != nil || resp.Payload != 1 {
		t.Fatalf("Call = %v, %v", resp, err)
	}
}

func TestCallTimesOut(t *testing.T) {
	b := New()
	_, err := Call(b, Envelope{Topic: "nobody.home"}, "never", nil, 10*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "no reply") {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestDecodePayloadRoundTrips(t *testing.T) {
	type payload struct {
		Name string `json:"name"`
		N    int    `json:"n"`
	}
	// In-process: original Go type.
	var got payload
	if err := DecodePayload(Envelope{Topic: "t", Payload: payload{Name: "x", N: 3}}, &got); err != nil {
		t.Fatal(err)
	}
	if got.N != 3 || got.Name != "x" {
		t.Fatalf("got %+v", got)
	}
	// Off the wire: generic JSON map.
	env, err := Decode([]byte(`{"topic":"t","payload":{"name":"y","n":7}}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodePayload(env, &got); err != nil {
		t.Fatal(err)
	}
	if got.N != 7 || got.Name != "y" {
		t.Fatalf("got %+v", got)
	}
}
