// Package powercase implements a facility-domain autonomy loop beyond the
// paper's initial five cases, exercising the §IV requirement that
// "confidence measures are required ... particularly for safe operations of
// power and energy controls": a cooling-energy optimization loop that raises
// the plant's supply-air setpoint (improving the coefficient of performance)
// whenever the fleet has thermal headroom, and backs it down the moment any
// node runs hot.
//
// The loop is deliberately asymmetric, as safe energy control must be:
// raising the setpoint (saving energy, spending thermal margin) requires
// headroom on *every* node plus a confidence gate, while lowering it
// (spending energy, restoring margin) is immediate and ungated.
package powercase

import (
	"fmt"
	"time"

	"autoloop/internal/core"
	"autoloop/internal/facility"
	"autoloop/internal/telemetry"
)

// FleetPriority is the case's recommended arbitration priority under a
// fleet coordinator: facility-domain thermal safety outranks workload-side
// loops, so on a shared subject this loop's actions win cross-loop conflicts.
const FleetPriority = 20

// Config tunes the power loop.
type Config struct {
	// TempLimitC is the component temperature that must never be exceeded.
	TempLimitC float64
	// HeadroomC is the margin below the limit required before the loop
	// spends any of it on energy savings.
	HeadroomC float64
	// StepC is the setpoint increment per action.
	StepC float64
	// MaxSetpointC bounds how far the loop may raise the supply setpoint.
	MaxSetpointC float64
}

// DefaultConfig operates against an 85°C limit with 12°C of required
// headroom, 1°C steps, and a 28°C setpoint ceiling.
func DefaultConfig() Config {
	return Config{TempLimitC: 85, HeadroomC: 12, StepC: 1, MaxSetpointC: 28}
}

// Controller wires the power/energy MAPE loop.
type Controller struct {
	cfg   Config
	db    telemetry.Querier
	plant *facility.Plant

	// ptsBuf is the observation buffer reused across ticks (the loop drops
	// observations after Analyze, so the backing array is safe to recycle).
	ptsBuf []telemetry.Point

	// Raises and Lowers count setpoint movements (experiment metrics).
	Raises int
	Lowers int
}

// New builds the controller.
func New(cfg Config, db telemetry.Querier, plant *facility.Plant) *Controller {
	if db == nil || plant == nil {
		panic("powercase: nil dependency")
	}
	return &Controller{cfg: cfg, db: db, plant: plant}
}

// Loop assembles the core loop. Callers typically add a ConfidenceGate and
// an audit log; the experiments run it both gated and ungated.
func (c *Controller) Loop() *core.Loop {
	return core.NewLoop("power-case",
		core.MonitorFunc(c.observe),
		core.AnalyzerFunc(c.analyze),
		core.PlannerFunc(c.plan),
		core.ExecutorFunc(c.execute),
	)
}

// observe reads the fleet's hottest temperature and the plant state through
// the zero-copy fill-buffer surface, reusing one point buffer across ticks.
func (c *Controller) observe(now time.Duration) (core.Observation, error) {
	obs := core.Observation{Time: now}
	c.ptsBuf = c.db.LatestInto(c.ptsBuf[:0], "node.temp.celsius", nil)
	if pue, ok := c.db.LatestValue("facility.pue", nil); ok {
		c.ptsBuf = append(c.ptsBuf, telemetry.Point{Name: "facility.pue", Time: now, Value: pue})
	}
	obs.Points = c.ptsBuf
	return obs, nil
}

// analyze classifies the thermal state: hot (must cool), headroom (may
// save energy), or neutral.
func (c *Controller) analyze(now time.Duration, obs core.Observation) (core.Symptoms, error) {
	sym := core.Symptoms{Time: now}
	hottest := -1.0
	nodes := 0
	for _, p := range obs.Points {
		if p.Name != "node.temp.celsius" {
			continue
		}
		nodes++
		if p.Value > hottest {
			hottest = p.Value
		}
	}
	if nodes == 0 {
		return sym, nil
	}
	switch {
	case hottest > c.cfg.TempLimitC-c.cfg.HeadroomC/2:
		sym.Findings = append(sym.Findings, core.Finding{
			Kind: "thermal-pressure", Subject: "plant", Value: hottest, Confidence: 1,
			Detail: fmt.Sprintf("hottest node %.1f°C within half-headroom of the %.0f°C limit", hottest, c.cfg.TempLimitC),
		})
	case hottest < c.cfg.TempLimitC-c.cfg.HeadroomC:
		// Confidence scales with how much headroom is left beyond the
		// requirement: deep margin -> confident raise; scraping the
		// requirement -> low confidence, which a gate will veto.
		margin := (c.cfg.TempLimitC - c.cfg.HeadroomC) - hottest
		conf := margin / c.cfg.HeadroomC
		if conf > 1 {
			conf = 1
		}
		sym.Findings = append(sym.Findings, core.Finding{
			Kind: "thermal-headroom", Subject: "plant", Value: hottest, Confidence: conf,
			Detail: fmt.Sprintf("hottest node %.1f°C leaves %.1f°C beyond required headroom", hottest, margin),
		})
	}
	return sym, nil
}

// plan maps the thermal state to a setpoint movement.
func (c *Controller) plan(now time.Duration, sym core.Symptoms) (core.Plan, error) {
	plan := core.Plan{Time: now}
	for _, f := range sym.Findings {
		switch f.Kind {
		case "thermal-pressure":
			plan.Actions = append(plan.Actions, core.Action{
				Kind: "lower-setpoint", Subject: "plant", Amount: c.cfg.StepC,
				Confidence:  1, // safety action: never gated
				Explanation: f.Detail,
			})
		case "thermal-headroom":
			if c.plant.SupplySetpointC() >= c.cfg.MaxSetpointC {
				continue
			}
			plan.Actions = append(plan.Actions, core.Action{
				Kind: "raise-setpoint", Subject: "plant", Amount: c.cfg.StepC,
				Confidence:  f.Confidence,
				Explanation: f.Detail,
			})
		}
	}
	return plan, nil
}

// execute moves the plant's supply-air setpoint actuator.
func (c *Controller) execute(now time.Duration, a core.Action) (core.ActionResult, error) {
	cur := c.plant.SupplySetpointC()
	switch a.Kind {
	case "raise-setpoint":
		next := cur + a.Amount
		if next > c.cfg.MaxSetpointC {
			next = c.cfg.MaxSetpointC
		}
		c.plant.SetSupplySetpointC(next)
		c.Raises++
		return core.ActionResult{Action: a, Honored: true, Granted: c.plant.SupplySetpointC() - cur}, nil
	case "lower-setpoint":
		c.plant.SetSupplySetpointC(cur - a.Amount)
		c.Lowers++
		return core.ActionResult{Action: a, Honored: true, Granted: cur - c.plant.SupplySetpointC()}, nil
	default:
		return core.ActionResult{}, fmt.Errorf("powercase: unknown action %q", a.Kind)
	}
}
