package powercase

import (
	"time"

	"autoloop/internal/control"
)

// CaseName is the spec vocabulary for this loop under the control plane.
const CaseName = "power"

// Factory registers the cooling-energy loop with the control plane:
// spawnable from a LoopSpec, requiring the telemetry query surface and the
// facility plant actuator.
func Factory() control.CaseFactory {
	return control.CaseFactory{
		Name:     CaseName,
		Doc:      "cooling-energy optimization: raise the supply-air setpoint on fleet-wide thermal headroom, back it down on pressure",
		Requires: []control.Capability{control.CapQuerier, control.CapPlant},
		Defaults: func() interface{} { cfg := DefaultConfig(); return &cfg },
		Priority: FleetPriority,
		Period:   control.Duration(time.Minute),
		Build: func(env *control.Env, cfg interface{}) ([]control.BuiltLoop, error) {
			c := New(*cfg.(*Config), env.Querier, env.Plant)
			return []control.BuiltLoop{{Loop: c.Loop()}}, nil
		},
	}
}
