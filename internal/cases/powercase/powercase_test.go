package powercase

import (
	"testing"
	"time"

	"autoloop/internal/core"
	"autoloop/internal/facility"
	"autoloop/internal/hw"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

type rig struct {
	e     *sim.Engine
	db    *tsdb.DB
	cl    *hw.Cluster
	plant *facility.Plant
	ctl   *Controller
}

func newRig(t *testing.T) *rig {
	t.Helper()
	e := sim.NewEngine(1)
	db := tsdb.New(0)
	ccfg := hw.DefaultConfig()
	ccfg.Nodes = 8
	ccfg.SensorNoise = 0
	cl := hw.New(e, ccfg)
	plant := facility.New(e, facility.DefaultConfig(), cl)
	plant.BindAmbient(cl) // setpoint changes feed back into node temps
	reg := telemetry.NewRegistry()
	reg.Register(cl.Collector())
	reg.Register(plant.Collector())
	pipe := telemetry.NewPipeline(reg, db)
	e.Every(30*time.Second, 30*time.Second, func() bool {
		pipe.Sample(e.Now())
		return e.Now() < 12*time.Hour
	})
	return &rig{e: e, db: db, cl: cl, plant: plant, ctl: New(DefaultConfig(), db, plant)}
}

func TestRaisesSetpointWithHeadroom(t *testing.T) {
	r := newRig(t)
	// Idle cluster: nodes sit near ambient, enormous headroom.
	start := r.plant.SupplySetpointC()
	r.ctl.Loop().RunEvery(sim.VirtualClock{Engine: r.e}, 5*time.Minute, func() bool { return r.e.Now() > 6*time.Hour })
	r.e.RunUntil(6 * time.Hour)
	if got := r.plant.SupplySetpointC(); got <= start {
		t.Errorf("setpoint = %v, want raised above %v", got, start)
	}
	if got := r.plant.SupplySetpointC(); got > r.ctl.cfg.MaxSetpointC {
		t.Errorf("setpoint %v exceeded ceiling %v", got, r.ctl.cfg.MaxSetpointC)
	}
	if r.ctl.Raises == 0 || r.ctl.Lowers != 0 {
		t.Errorf("raises=%d lowers=%d", r.ctl.Raises, r.ctl.Lowers)
	}
}

func TestStopsAtCeiling(t *testing.T) {
	r := newRig(t)
	r.ctl.Loop().RunEvery(sim.VirtualClock{Engine: r.e}, 5*time.Minute, func() bool { return r.e.Now() > 10*time.Hour })
	r.e.RunUntil(10 * time.Hour)
	if got := r.plant.SupplySetpointC(); got != r.ctl.cfg.MaxSetpointC {
		t.Errorf("setpoint = %v, want pinned at ceiling %v", got, r.ctl.cfg.MaxSetpointC)
	}
	raises := r.ctl.Raises
	r.e.RunUntil(11 * time.Hour)
	if r.ctl.Raises != raises {
		t.Error("kept raising past the ceiling")
	}
}

func TestLowersUnderThermalPressure(t *testing.T) {
	r := newRig(t)
	// Saturate the fleet and break one node's cooling so it runs hot.
	for _, n := range r.cl.UpNodes() {
		r.cl.SetUtil(n, 1.0)
	}
	_ = r.cl.SetThermalFault("n000", 8)
	r.ctl.Loop().RunEvery(sim.VirtualClock{Engine: r.e}, 5*time.Minute, func() bool { return r.e.Now() > 4*time.Hour })
	r.e.RunUntil(4 * time.Hour)
	if r.ctl.Lowers == 0 {
		t.Error("never lowered despite a node near the limit")
	}
	if got := r.plant.SupplySetpointC(); got >= facility.DefaultConfig().SupplySetC {
		t.Errorf("setpoint = %v, want pushed below initial under pressure", got)
	}
}

func TestConfidenceGateBlocksMarginalRaises(t *testing.T) {
	run := func(gate float64) int {
		r := newRig(t)
		// Load the fleet moderately: hottest node sits just beyond required
		// headroom, so raise confidence is marginal.
		for _, n := range r.cl.UpNodes() {
			r.cl.SetUtil(n, 0.95)
		}
		loop := r.ctl.Loop()
		if gate > 0 {
			loop.Guards = []core.Guardrail{core.ConfidenceGate{Min: gate}}
		}
		loop.RunEvery(sim.VirtualClock{Engine: r.e}, 5*time.Minute, func() bool { return r.e.Now() > 4*time.Hour })
		r.e.RunUntil(4 * time.Hour)
		return r.ctl.Raises
	}
	ungated := run(0)
	gated := run(0.95)
	if gated >= ungated {
		t.Errorf("gate should reduce marginal raises: %d -> %d", ungated, gated)
	}
}

func TestRaisingSetpointSavesCoolingEnergy(t *testing.T) {
	r := newRig(t)
	for _, n := range r.cl.UpNodes() {
		r.cl.SetUtil(n, 0.5)
	}
	before := r.plant.CoolingPowerW(r.e.Now())
	r.ctl.Loop().RunEvery(sim.VirtualClock{Engine: r.e}, 5*time.Minute, func() bool { return r.e.Now() > 6*time.Hour })
	r.e.RunUntil(6 * time.Hour)
	after := r.plant.CoolingPowerW(r.e.Now())
	if after >= before {
		t.Errorf("cooling power should drop: %.0fW -> %.0fW", before, after)
	}
}

func TestExecuteUnknownAction(t *testing.T) {
	r := newRig(t)
	if _, err := r.ctl.execute(0, core.Action{Kind: "bogus"}); err == nil {
		t.Error("expected error")
	}
}

func TestNilDependencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(DefaultConfig(), nil, nil)
}
