package powercase

import (
	"testing"
	"time"

	"autoloop/internal/core"
	"autoloop/internal/fleet"
	"autoloop/internal/sim"
)

// TestLoopUnderFleetCoordinator converts the case to the concurrent fleet
// coordinator and checks it behaves exactly as the directly ticked loop:
// same cadence, same setpoint trajectory, same raise/lower counts.
func TestLoopUnderFleetCoordinator(t *testing.T) {
	run := func(underFleet bool) (raises, lowers int, setpoint float64) {
		r := newRig(t)
		for _, n := range r.cl.UpNodes() {
			r.cl.SetUtil(n, 0.5)
		}
		stop := func() bool { return r.e.Now() > 6*time.Hour }
		if underFleet {
			coord := fleet.New(0)
			coord.Add(r.ctl.Loop(), FleetPriority)
			coord.RunEvery(sim.VirtualClock{Engine: r.e}, 5*time.Minute, stop)
		} else {
			r.ctl.Loop().RunEvery(sim.VirtualClock{Engine: r.e}, 5*time.Minute, stop)
		}
		r.e.RunUntil(6 * time.Hour)
		return r.ctl.Raises, r.ctl.Lowers, r.plant.SupplySetpointC()
	}
	dr, dl, dsp := run(false)
	fr, fl, fsp := run(true)
	if dr != fr || dl != fl || dsp != fsp {
		t.Errorf("fleet run diverged: direct raises=%d lowers=%d setpoint=%v, fleet raises=%d lowers=%d setpoint=%v",
			dr, dl, dsp, fr, fl, fsp)
	}
	if fr == 0 {
		t.Error("scenario produced no raises; equivalence check is vacuous")
	}
}

// TestLosesPlantToHigherPriorityLoop pits the case against a competing loop
// that owns the same subject with a higher priority: the case's raises must
// be arbitrated away and accounted.
func TestLosesPlantToHigherPriorityLoop(t *testing.T) {
	r := newRig(t)
	rival := core.NewLoop("plant-freeze",
		core.MonitorFunc(func(now time.Duration) (core.Observation, error) {
			return core.Observation{Time: now}, nil
		}),
		core.AnalyzerFunc(func(now time.Duration, obs core.Observation) (core.Symptoms, error) {
			return core.Symptoms{Time: now, Findings: []core.Finding{
				{Kind: "maintenance-window", Subject: "plant", Confidence: 1},
			}}, nil
		}),
		core.PlannerFunc(func(now time.Duration, sym core.Symptoms) (core.Plan, error) {
			return core.Plan{Time: now, Actions: []core.Action{
				{Kind: "hold-setpoint", Subject: "plant", Confidence: 1},
			}}, nil
		}),
		core.ExecutorFunc(func(now time.Duration, a core.Action) (core.ActionResult, error) {
			return core.ActionResult{Action: a, Honored: true}, nil
		}),
	)
	loop := r.ctl.Loop()
	coord := fleet.New(0)
	coord.Add(rival, FleetPriority+10)
	coord.Add(loop, FleetPriority)
	coord.RunEvery(sim.VirtualClock{Engine: r.e}, 5*time.Minute, func() bool { return r.e.Now() > 2*time.Hour })
	r.e.RunUntil(2 * time.Hour)

	if r.ctl.Raises != 0 || r.ctl.Lowers != 0 {
		t.Errorf("case actuated the plant (%d raises, %d lowers) despite losing every round",
			r.ctl.Raises, r.ctl.Lowers)
	}
	if m := loop.Metrics(); m.ArbitratedActions == 0 || m.PlannedActions != m.ArbitratedActions {
		t.Errorf("metrics = %+v, want every planned action arbitrated", m)
	}
}
