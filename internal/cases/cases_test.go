package cases

import (
	"testing"

	"autoloop/internal/scenario"
)

// TestScenarioTemplatesMatchFactories enforces the contribution rule: every
// registered case ships a scenario template, and every template names a
// spawnable case.
func TestScenarioTemplatesMatchFactories(t *testing.T) {
	factories := Factories()
	templates := ScenarioTemplates()
	if len(templates) != len(factories) {
		t.Fatalf("%d factories but %d scenario templates", len(factories), len(templates))
	}
	byCase := make(map[string]scenario.Loop, len(templates))
	for _, tpl := range templates {
		if tpl.Case == "" {
			t.Fatalf("template with empty case name: %+v", tpl)
		}
		if _, dup := byCase[tpl.Case]; dup {
			t.Fatalf("duplicate scenario template for case %q", tpl.Case)
		}
		byCase[tpl.Case] = tpl
	}
	for _, f := range factories {
		tpl, ok := byCase[f.Name]
		if !ok {
			t.Fatalf("case %q has no scenario template", f.Name)
		}
		// A responder template must carry a full attribution triple; an
		// optimizer template (no domain) must not claim findings or actions.
		if tpl.Domain != "" && (len(tpl.Findings) == 0 || len(tpl.Actions) == 0) {
			t.Fatalf("case %q template has domain %q but no attribution: %+v", f.Name, tpl.Domain, tpl)
		}
		if tpl.Domain == "" && (len(tpl.Findings) != 0 || len(tpl.Actions) != 0) {
			t.Fatalf("case %q template has attribution but no domain: %+v", f.Name, tpl)
		}
	}
}

// TestTemplatesSpawn spawns every template against a registry-compatible
// spec to catch template/factory drift.
func TestTemplatesSpawn(t *testing.T) {
	for _, tpl := range ScenarioTemplates() {
		if err := tpl.LoopSpec.Validate(); err != nil {
			t.Fatalf("template %q does not validate: %v", tpl.Case, err)
		}
	}
}
