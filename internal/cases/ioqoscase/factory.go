package ioqoscase

import (
	"fmt"
	"time"

	"autoloop/internal/control"
)

// CaseName is the spec vocabulary for this loop under the control plane.
const CaseName = "ioqos"

// FleetPriority is the case's recommended arbitration priority under a
// fleet coordinator: QoS enforcement outranks plain workload optimization
// but yields to maintenance and facility loops.
const FleetPriority = 8

// FactoryConfig is the JSON-facing config: the case Config plus the
// parent-loop cadence of the hierarchy (the parent reallocates once per
// ParentEvery child enforcement ticks).
type FactoryConfig struct {
	Config
	ParentEvery int
}

// Factory registers the hierarchical I/O QoS case with the control plane.
// Unlike the single-loop cases it spawns one child loop per tenant plus the
// reallocating parent; under a fleet coordinator the parent registers with
// an EveryMul of ParentEvery, reproducing the Hierarchy composition flat.
func Factory() control.CaseFactory {
	return control.CaseFactory{
		Name:     CaseName,
		Doc:      "hierarchical I/O QoS: per-tenant bandwidth enforcement children under a reallocating parent watching tail latencies",
		Requires: []control.Capability{control.CapQuerier, control.CapPFS, control.CapKnowledge},
		Defaults: func() interface{} {
			cfg := FactoryConfig{
				Config: DefaultConfig([]Tenant{
					{Name: "deadline", Priority: 3, TargetLatMS: 500},
					{Name: "batch", Priority: 1},
				}, 2000),
				ParentEvery: 3,
			}
			return &cfg
		},
		Priority: FleetPriority,
		Period:   control.Duration(10 * time.Second),
		Build: func(env *control.Env, cfg interface{}) ([]control.BuiltLoop, error) {
			fc := cfg.(*FactoryConfig)
			if len(fc.Tenants) == 0 {
				return nil, fmt.Errorf("ioqoscase: config needs at least one tenant")
			}
			if fc.ParentEvery < 1 {
				fc.ParentEvery = 1
			}
			c := New(fc.Config, env.Querier, env.FS, env.Knowledge)
			// Parent first: it is the case's primary loop (reallocation is
			// where mode/approval policy bites); children enforce setpoints.
			out := []control.BuiltLoop{{Loop: c.parentLoop(), EveryMul: fc.ParentEvery}}
			for _, t := range c.cfg.Tenants {
				out = append(out, control.BuiltLoop{Loop: c.childLoop(t)})
			}
			return out, nil
		},
	}
}
