// Package ioqoscase implements the paper's I/O QoS use case: "refinement of
// a storage system whose users receive QoS allocations through the use of
// MAPE-K loops of decreasing size and increasing automation ... to adapt QoS
// parameters based on the current application performance and system I/O
// load to decrease interference, reduce tail latency, and provide more
// consistent results for deadline dependent workflows".
//
// The implementation is the hierarchical Fig. 2(d) pattern: a slow *campaign*
// parent loop observes global latency and decides per-tenant rate
// allocations, publishing them as setpoints on the shared Knowledge fact
// blackboard; fast per-tenant child loops enact their setpoint on the
// filesystem's token-bucket actuators. Separation of time scales keeps the
// fast layer responsive without the global layer thrashing.
package ioqoscase

import (
	"fmt"
	"math"
	"time"

	"autoloop/internal/core"
	"autoloop/internal/knowledge"
	"autoloop/internal/pfs"
	"autoloop/internal/telemetry"
)

// Tenant describes one QoS tenant.
type Tenant struct {
	Name string
	// Priority weights the parent's allocation (deadline workflows high).
	Priority float64
	// TargetLatMS is the tenant's tail-latency objective; zero means
	// best-effort.
	TargetLatMS float64
}

// Config tunes the hierarchy.
type Config struct {
	Tenants []Tenant
	// CapacityMBps is the aggregate bandwidth the parent may allocate.
	CapacityMBps float64
	// MinShareMBps floors any tenant's allocation.
	MinShareMBps float64
	// ThrottleFactor shrinks an offender's allocation per violation tick.
	ThrottleFactor float64
	// RecoverFactor regrows throttled allocations when latencies are healthy.
	RecoverFactor float64
}

// DefaultConfig returns a config for the standard experiment topology.
func DefaultConfig(tenants []Tenant, capacityMBps float64) Config {
	return Config{
		Tenants:        tenants,
		CapacityMBps:   capacityMBps,
		MinShareMBps:   10,
		ThrottleFactor: 0.6,
		RecoverFactor:  1.15,
	}
}

// factKey names a tenant's allocation setpoint on the Knowledge blackboard.
func factKey(tenant string) string { return "ioqos.alloc_mbps." + tenant }

// Controller wires the hierarchical QoS loops.
type Controller struct {
	cfg Config
	db  telemetry.Querier
	fs  *pfs.FS
	kb  *knowledge.Base

	// alloc mirrors the blackboard for quick reads.
	alloc map[string]float64
	// violAlloc remembers, per best-effort tenant, the allocation in force
	// when a latency violation last occurred — Knowledge that caps recovery
	// probing below the level that caused trouble.
	violAlloc map[string]float64

	// Violations counts parent-observed latency violations (experiment
	// metric).
	Violations int
}

// New builds the controller and seeds fair-share allocations.
func New(cfg Config, db telemetry.Querier, fs *pfs.FS, kb *knowledge.Base) *Controller {
	if db == nil || fs == nil || kb == nil {
		panic("ioqoscase: nil dependency")
	}
	if len(cfg.Tenants) == 0 {
		panic("ioqoscase: no tenants")
	}
	c := &Controller{
		cfg: cfg, db: db, fs: fs, kb: kb,
		alloc: make(map[string]float64), violAlloc: make(map[string]float64),
	}
	var wsum float64
	for _, t := range cfg.Tenants {
		wsum += math.Max(t.Priority, 0.01)
	}
	for _, t := range cfg.Tenants {
		share := cfg.CapacityMBps * math.Max(t.Priority, 0.01) / wsum
		c.setAlloc(t.Name, share)
	}
	return c
}

func (c *Controller) setAlloc(tenant string, mbps float64) {
	if mbps < c.cfg.MinShareMBps {
		mbps = c.cfg.MinShareMBps
	}
	if mbps > c.cfg.CapacityMBps {
		mbps = c.cfg.CapacityMBps
	}
	c.alloc[tenant] = mbps
	c.kb.SetFact(factKey(tenant), mbps)
}

// Alloc returns a tenant's current allocation setpoint.
func (c *Controller) Alloc(tenant string) float64 { return c.alloc[tenant] }

// Hierarchy assembles the full pattern: one fast child loop per tenant plus
// the slow campaign parent, with the parent ticking once per parentEvery
// child ticks.
func (c *Controller) Hierarchy(parentEvery int) *core.Hierarchical {
	var children []*core.Loop
	for _, t := range c.cfg.Tenants {
		children = append(children, c.childLoop(t))
	}
	return core.NewHierarchical("ioqos", c.parentLoop(), children, parentEvery)
}

// childLoop enacts the tenant's setpoint: monitor the blackboard and the
// live bucket, plan a change when they diverge, execute SetQoS.
func (c *Controller) childLoop(t Tenant) *core.Loop {
	name := "ioqos-child-" + t.Name
	monitor := core.MonitorFunc(func(now time.Duration) (core.Observation, error) {
		obs := core.Observation{Time: now}
		setpoint, ok := c.kb.Fact(factKey(t.Name))
		if !ok {
			return obs, nil
		}
		rate, _, limited := c.fs.QoS(t.Name)
		if !limited {
			rate = -1 // sentinel: no bucket installed yet
		}
		obs.Points = append(obs.Points,
			telemetry.Point{Name: "ioqos.setpoint", Labels: telemetry.Labels{"tenant": t.Name}, Time: now, Value: setpoint},
			telemetry.Point{Name: "ioqos.current", Labels: telemetry.Labels{"tenant": t.Name}, Time: now, Value: rate},
		)
		return obs, nil
	})
	analyzer := core.AnalyzerFunc(func(now time.Duration, obs core.Observation) (core.Symptoms, error) {
		sym := core.Symptoms{Time: now}
		var setpoint, current float64
		seen := false
		for _, p := range obs.Points {
			switch p.Name {
			case "ioqos.setpoint":
				setpoint, seen = p.Value, true
			case "ioqos.current":
				current = p.Value
			}
		}
		if !seen {
			return sym, nil
		}
		if current < 0 || math.Abs(current-setpoint) > 0.01*setpoint {
			sym.Findings = append(sym.Findings, core.Finding{
				Kind: "qos-divergence", Subject: t.Name, Value: setpoint, Confidence: 1,
				Detail: fmt.Sprintf("bucket %.1f MB/s vs setpoint %.1f MB/s", current, setpoint),
			})
		}
		return sym, nil
	})
	planner := core.PlannerFunc(func(now time.Duration, sym core.Symptoms) (core.Plan, error) {
		plan := core.Plan{Time: now}
		for _, f := range sym.Findings {
			if f.Kind != "qos-divergence" {
				continue
			}
			plan.Actions = append(plan.Actions, core.Action{
				Kind: "set-qos", Subject: f.Subject, Amount: f.Value, Confidence: 1,
				Explanation: f.Detail,
			})
		}
		return plan, nil
	})
	executor := core.ExecutorFunc(func(now time.Duration, a core.Action) (core.ActionResult, error) {
		if a.Kind != "set-qos" {
			return core.ActionResult{}, fmt.Errorf("ioqoscase: unknown action %q", a.Kind)
		}
		c.fs.SetQoS(a.Subject, a.Amount, a.Amount*2) // burst = 2s of rate
		return core.ActionResult{Action: a, Honored: true, Granted: a.Amount}, nil
	})
	l := core.NewLoop(name, monitor, analyzer, planner, executor)
	l.K = c.kb
	return l
}

// parentLoop is the slow campaign loop: it watches per-tenant latency
// against objectives and reallocates bandwidth — throttling best-effort
// offenders when a deadline tenant suffers, and regrowing them when healthy.
func (c *Controller) parentLoop() *core.Loop {
	// The monitor fills one buffer, reused across ticks, through the
	// zero-copy LatestInto surface (the loop drops observations after
	// Analyze, so the backing array is safe to recycle).
	var ptsBuf []telemetry.Point
	monitor := core.MonitorFunc(func(now time.Duration) (core.Observation, error) {
		obs := core.Observation{Time: now}
		ptsBuf = c.db.LatestInto(ptsBuf[:0], "pfs.tenant.lat_ms", nil)
		ptsBuf = c.db.LatestInto(ptsBuf, "pfs.tenant.mbps", nil)
		obs.Points = ptsBuf
		return obs, nil
	})
	analyzer := core.AnalyzerFunc(func(now time.Duration, obs core.Observation) (core.Symptoms, error) {
		sym := core.Symptoms{Time: now}
		lat := map[string]float64{}
		for _, p := range obs.Points {
			if p.Name == "pfs.tenant.lat_ms" {
				lat[p.Labels["tenant"]] = p.Value
			}
		}
		anyViolation := false
		for _, t := range c.cfg.Tenants {
			if t.TargetLatMS <= 0 {
				continue
			}
			observed, ok := lat[t.Name]
			if !ok {
				continue
			}
			if observed > t.TargetLatMS {
				anyViolation = true
				c.Violations++
				sym.Findings = append(sym.Findings, core.Finding{
					Kind: "latency-violation", Subject: t.Name, Value: observed, Confidence: 0.9,
					Detail: fmt.Sprintf("latency %.1fms exceeds objective %.1fms", observed, t.TargetLatMS),
				})
			}
		}
		if !anyViolation {
			sym.Findings = append(sym.Findings, core.Finding{
				Kind: "headroom", Subject: "*", Value: 1, Confidence: 0.9,
				Detail: "all latency objectives met",
			})
		}
		return sym, nil
	})
	planner := core.PlannerFunc(func(now time.Duration, sym core.Symptoms) (core.Plan, error) {
		plan := core.Plan{Time: now}
		violation := false
		for _, f := range sym.Findings {
			if f.Kind == "latency-violation" {
				violation = true
			}
		}
		for _, t := range c.cfg.Tenants {
			cur := c.alloc[t.Name]
			var next float64
			switch {
			case violation && t.TargetLatMS <= 0:
				// Best-effort tenants absorb the squeeze; remember the level
				// that proved too aggressive.
				c.violAlloc[t.Name] = cur
				next = cur * c.cfg.ThrottleFactor
			case !violation && t.TargetLatMS <= 0:
				next = cur * c.cfg.RecoverFactor
				// Knowledge-capped recovery: stay below the allocation that
				// last caused a violation instead of probing back into it.
				// The memory decays while the system stays healthy, so a
				// vanished interferer eventually gets its bandwidth back.
				if bad, ok := c.violAlloc[t.Name]; ok {
					c.violAlloc[t.Name] = bad * 1.05
					if next > 0.8*bad {
						next = 0.8 * bad
					}
				}
			default:
				continue // objective tenants keep their allocation
			}
			if math.Abs(next-cur) < 0.01*cur {
				continue
			}
			verb := "throttle"
			if next > cur {
				verb = "recover"
			}
			plan.Actions = append(plan.Actions, core.Action{
				Kind: "set-allocation", Subject: t.Name, Amount: next, Confidence: 0.9,
				Explanation: fmt.Sprintf("%s best-effort tenant %s: %.1f -> %.1f MB/s", verb, t.Name, cur, next),
			})
		}
		return plan, nil
	})
	executor := core.ExecutorFunc(func(now time.Duration, a core.Action) (core.ActionResult, error) {
		if a.Kind != "set-allocation" {
			return core.ActionResult{}, fmt.Errorf("ioqoscase: unknown action %q", a.Kind)
		}
		c.setAlloc(a.Subject, a.Amount)
		return core.ActionResult{Action: a, Honored: true, Granted: c.alloc[a.Subject]}, nil
	})
	l := core.NewLoop("ioqos-campaign", monitor, analyzer, planner, executor)
	l.K = c.kb
	return l
}
