package ioqoscase

import (
	"autoloop/internal/control"
	"autoloop/internal/scenario"
)

// ScenarioTemplate is this case's scenario-engine entry: the LoopSpec to
// spawn it plus its default scoring attribution. Cases land as scenario +
// CaseFactory pairs — keep this in sync with Factory.
func ScenarioTemplate() scenario.Loop {
	if l, ok := scenario.TemplateFor(CaseName); ok {
		return l
	}
	return scenario.Loop{LoopSpec: control.LoopSpec{Case: CaseName}}
}
