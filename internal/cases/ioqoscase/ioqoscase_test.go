package ioqoscase

import (
	"testing"
	"time"

	"autoloop/internal/knowledge"
	"autoloop/internal/pfs"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

type rig struct {
	e   *sim.Engine
	db  *tsdb.DB
	fs  *pfs.FS
	kb  *knowledge.Base
	ctl *Controller
}

func tenants() []Tenant {
	return []Tenant{
		{Name: "deadline", Priority: 3, TargetLatMS: 500},
		{Name: "batch", Priority: 1},
	}
}

// newRig builds the paper's scenario: QoS allocations start as "rough
// estimates over a research campaign" — deliberately over-provisioned
// (2000 MB/s of paper allocations over a 400 MB/s backend), so a saturating
// best-effort tenant really interferes until the campaign loop tightens it.
func newRig(t *testing.T) *rig {
	t.Helper()
	e := sim.NewEngine(1)
	db := tsdb.New(0)
	fs := pfs.New(e, pfs.Config{OSTs: 4, OSTBandwidthMBps: 100, DefaultStripeCount: 2})
	kb := knowledge.NewBase()
	ctl := New(DefaultConfig(tenants(), 2000), db, fs, kb)
	pipe := telemetry.NewPipeline(telemetry.NewRegistryOf(fs.Collector()), db)
	e.Every(10*time.Second, 10*time.Second, func() bool {
		pipe.Sample(e.Now())
		return true
	})
	return &rig{e: e, db: db, fs: fs, kb: kb, ctl: ctl}
}

// interferer saturates the filesystem with a closed-loop writer: 8 streams
// of 150MB writes, each reissuing on completion (like a real I/O-bound app
// that blocks on its writes), until stopAt (0 = forever). Unthrottled, the
// streams keep the 400 MB/s backend at full queue depth.
func (r *rig) interferer(stopAt time.Duration) {
	f := r.fs.Open("batch", 4, nil)
	var issue func()
	issue = func() {
		if stopAt > 0 && r.e.Now() >= stopAt {
			return
		}
		r.fs.Write(f, 150, func(time.Duration) { issue() })
	}
	for i := 0; i < 8; i++ {
		issue()
	}
}

// victim issues the deadline tenant's modest writes, recording latencies.
func (r *rig) victim(lats *[]float64) {
	f := r.fs.Open("deadline", 2, nil)
	r.e.Every(10*time.Second, 10*time.Second, func() bool {
		r.fs.Write(f, 50, func(l time.Duration) {
			*lats = append(*lats, l.Seconds()*1000)
		})
		return r.e.Now() < 45*time.Minute
	})
}

func TestInitialAllocationsByPriority(t *testing.T) {
	r := newRig(t)
	d, b := r.ctl.Alloc("deadline"), r.ctl.Alloc("batch")
	if d != 1500 || b != 500 {
		t.Errorf("allocations = %v/%v, want 1500/500 (3:1 priority over 2000)", d, b)
	}
	if v, ok := r.kb.Fact(factKey("deadline")); !ok || v != 1500 {
		t.Errorf("blackboard fact = %v, %v", v, ok)
	}
}

func TestChildLoopEnactsSetpoint(t *testing.T) {
	r := newRig(t)
	h := r.ctl.Hierarchy(6)
	h.RunEvery(sim.VirtualClock{Engine: r.e}, 10*time.Second, nil)
	r.e.RunUntil(time.Minute)
	rate, burst, ok := r.fs.QoS("deadline")
	if !ok || rate != 1500 || burst != 3000 {
		t.Errorf("bucket = %v/%v/%v, want 1500/3000/true", rate, burst, ok)
	}
}

func TestParentThrottlesBestEffortUnderViolation(t *testing.T) {
	r := newRig(t)
	h := r.ctl.Hierarchy(3)
	h.RunEvery(sim.VirtualClock{Engine: r.e}, 10*time.Second, nil)
	var lats []float64
	r.interferer(0)
	r.victim(&lats)
	r.e.RunUntil(30 * time.Minute)
	if r.ctl.Violations == 0 {
		t.Fatal("no violations observed; interference model broken")
	}
	if got := r.ctl.Alloc("batch"); got >= 500 {
		t.Errorf("batch allocation = %v, want throttled below initial 500", got)
	}
	if got := r.ctl.Alloc("deadline"); got != 1500 {
		t.Errorf("deadline allocation = %v, want untouched 1500", got)
	}
}

func TestRecoveryAfterBurstEnds(t *testing.T) {
	r := newRig(t)
	h := r.ctl.Hierarchy(3)
	h.RunEvery(sim.VirtualClock{Engine: r.e}, 10*time.Second, nil)
	var lats []float64
	r.interferer(10 * time.Minute)
	r.victim(&lats)
	r.e.RunUntil(12 * time.Minute)
	throttled := r.ctl.Alloc("batch")
	if throttled >= 500 {
		t.Fatalf("batch not throttled during burst: %v", throttled)
	}
	r.e.RunUntil(45 * time.Minute)
	recovered := r.ctl.Alloc("batch")
	if recovered <= throttled {
		t.Errorf("batch allocation did not recover: %v -> %v", throttled, recovered)
	}
}

func TestAdaptiveBeatsStaticTailLatency(t *testing.T) {
	measure := func(adaptive bool) (mean, p99 float64) {
		r := newRig(t)
		if adaptive {
			h := r.ctl.Hierarchy(3)
			h.RunEvery(sim.VirtualClock{Engine: r.e}, 10*time.Second, nil)
		} else {
			// Static QoS: the loose campaign buckets, never adjusted.
			r.fs.SetQoS("deadline", 1500, 3000)
			r.fs.SetQoS("batch", 500, 1000)
		}
		var lats []float64
		r.interferer(0)
		r.victim(&lats)
		r.e.RunUntil(30 * time.Minute)
		if len(lats) == 0 {
			t.Fatal("no victim completions")
		}
		sum := 0.0
		for _, l := range lats {
			sum += l
		}
		return sum / float64(len(lats)), tsdb.Percentile(lats, 0.99)
	}
	adaptiveMean, adaptiveP99 := measure(true)
	staticMean, staticP99 := measure(false)
	// The closed-loop interferer bounds queue depth, so the worst-case
	// (p99) saturates during the adaptation transient; the mean must
	// clearly improve and the tail must not get worse.
	if adaptiveMean >= staticMean/2 {
		t.Errorf("adaptive mean %.0fms should be well below static %.0fms", adaptiveMean, staticMean)
	}
	if adaptiveP99 > staticP99 {
		t.Errorf("adaptive p99 %.0fms worse than static %.0fms", adaptiveP99, staticP99)
	}
}

func TestNilDependencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(DefaultConfig(tenants(), 100), nil, nil, nil)
}

func TestNoTenantsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e := sim.NewEngine(1)
	New(DefaultConfig(nil, 100), tsdb.New(0), pfs.New(e, pfs.DefaultConfig()), knowledge.NewBase())
}
