package misconfcase

import (
	"strings"
	"testing"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/bus"
	"autoloop/internal/core"
	"autoloop/internal/hw"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/tsdb"
)

type rig struct {
	e   *sim.Engine
	db  *tsdb.DB
	cl  *hw.Cluster
	s   *sched.Scheduler
	rt  *app.Runtime
	ctl *Controller
}

func newRig(t *testing.T, fix bool) *rig {
	t.Helper()
	e := sim.NewEngine(1)
	db := tsdb.New(0)
	ccfg := hw.DefaultConfig()
	ccfg.Nodes = 8
	ccfg.SensorNoise = 0
	cl := hw.New(e, ccfg)
	s := sched.New(e, cl.UpNodes(), sched.DefaultExtensionPolicy())
	rt := app.NewRuntime(e, db, nil, cl)
	rt.OnComplete = func(inst *app.Instance) { s.JobFinished(inst.Job.ID) }
	s.SetHooks(rt.Start, rt.Kill)
	cfg := DefaultConfig()
	cfg.FixOnTheFly = fix
	return &rig{e: e, db: db, cl: cl, s: s, rt: rt, ctl: New(cfg, db, s, rt, cl)}
}

func (r *rig) launch(t *testing.T, name string, m app.Misconfig, nodes int) *sched.Job {
	t.Helper()
	r.rt.RegisterSpec(name, app.Spec{
		Name: name, TotalIters: 240, IterTime: sim.Constant{V: 30 * time.Second},
		Misconfig: m,
	})
	j, err := r.s.Submit(name, "u", nodes, 6*time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestDetectsThreadsAndFixes(t *testing.T) {
	r := newRig(t, true)
	j := r.launch(t, "bad-threads", app.MisconfigThreads, 1)
	r.ctl.Loop().RunEvery(sim.VirtualClock{Engine: r.e}, time.Minute, nil)
	r.e.RunUntil(30 * time.Minute)
	kind, ok := r.ctl.Flagged(j.ID)
	if !ok || kind != app.MisconfigThreads {
		t.Fatalf("Flagged = %v, %v", kind, ok)
	}
	if r.ctl.Fixes != 1 {
		t.Errorf("Fixes = %d", r.ctl.Fixes)
	}
	inst, _ := r.rt.Instance(j.ID)
	if !inst.Fixed() {
		t.Error("instance not actually fixed")
	}
	if len(r.ctl.Detections) != 1 {
		t.Errorf("Detections = %d", len(r.ctl.Detections))
	}
}

func TestDetectsWrongLib(t *testing.T) {
	r := newRig(t, true)
	j := r.launch(t, "bad-lib", app.MisconfigWrongLib, 1)
	r.ctl.Loop().RunEvery(sim.VirtualClock{Engine: r.e}, time.Minute, nil)
	r.e.RunUntil(30 * time.Minute)
	kind, ok := r.ctl.Flagged(j.ID)
	if !ok || kind != app.MisconfigWrongLib {
		t.Fatalf("Flagged = %v, %v", kind, ok)
	}
	if r.ctl.Fixes != 1 {
		t.Errorf("Fixes = %d", r.ctl.Fixes)
	}
}

func TestDetectsUnderutilAndNotifies(t *testing.T) {
	r := newRig(t, true)
	j := r.launch(t, "bad-alloc", app.MisconfigUnderutil, 4)
	r.ctl.Loop().RunEvery(sim.VirtualClock{Engine: r.e}, time.Minute, nil)
	r.e.RunUntil(30 * time.Minute)
	kind, ok := r.ctl.Flagged(j.ID)
	if !ok || kind != app.MisconfigUnderutil {
		t.Fatalf("Flagged = %v, %v", kind, ok)
	}
	// Underutilization cannot be fixed: even with FixOnTheFly, notify.
	if r.ctl.Fixes != 0 {
		t.Errorf("Fixes = %d, want 0", r.ctl.Fixes)
	}
	if r.ctl.Notifications != 1 {
		t.Errorf("Notifications = %d", r.ctl.Notifications)
	}
}

func TestCleanJobNotFlagged(t *testing.T) {
	r := newRig(t, true)
	j := r.launch(t, "clean", app.MisconfigNone, 2)
	r.ctl.Loop().RunEvery(sim.VirtualClock{Engine: r.e}, time.Minute, nil)
	r.e.RunUntil(time.Hour)
	if _, ok := r.ctl.Flagged(j.ID); ok {
		t.Error("false positive on clean job")
	}
	if len(r.ctl.Detections) != 0 {
		t.Errorf("Detections = %d", len(r.ctl.Detections))
	}
}

func TestNotifyOnlyPolicy(t *testing.T) {
	r := newRig(t, false)
	j := r.launch(t, "bad-threads", app.MisconfigThreads, 1)
	r.ctl.Loop().RunEvery(sim.VirtualClock{Engine: r.e}, time.Minute, nil)
	r.e.RunUntil(30 * time.Minute)
	if r.ctl.Fixes != 0 {
		t.Errorf("Fixes = %d under notify-only", r.ctl.Fixes)
	}
	if r.ctl.Notifications != 1 {
		t.Errorf("Notifications = %d", r.ctl.Notifications)
	}
	inst, _ := r.rt.Instance(j.ID)
	if inst.Fixed() {
		t.Error("notify-only must not change the job")
	}
}

func TestWarmupSuppressesEarlyDetection(t *testing.T) {
	r := newRig(t, true)
	r.launch(t, "bad-threads", app.MisconfigThreads, 1)
	loop := r.ctl.Loop()
	loop.RunEvery(sim.VirtualClock{Engine: r.e}, 30*time.Second, nil)
	r.e.RunUntil(90 * time.Second) // inside the 2-minute warmup
	if len(r.ctl.Detections) != 0 {
		t.Error("detected during warmup")
	}
}

func TestFixedJobRunsFasterThanUnfixed(t *testing.T) {
	run := func(fix bool) time.Duration {
		r := newRig(t, fix)
		j := r.launch(t, "bad-threads", app.MisconfigThreads, 1)
		r.ctl.Loop().RunEvery(sim.VirtualClock{Engine: r.e}, time.Minute, nil)
		r.e.RunUntil(6 * time.Hour)
		if j.State != sched.JobCompleted {
			t.Fatalf("state = %v (fix=%v)", j.State, fix)
		}
		return j.End - j.Start
	}
	fixed := run(true)
	unfixed := run(false)
	if fixed >= unfixed {
		t.Errorf("fixed runtime %v should beat unfixed %v", fixed, unfixed)
	}
}

func TestExecuteErrors(t *testing.T) {
	r := newRig(t, true)
	if _, err := r.ctl.execute(0, core.Action{Kind: "bogus", Subject: "1"}); err == nil {
		t.Error("unknown action should error")
	}
	if _, err := r.ctl.execute(0, core.Action{Kind: "fix-misconfig", Subject: "zz"}); err == nil {
		t.Error("bad subject should error")
	}
}

// TestLoopEventsOnBus checks the misconfiguration loop publishes its
// detect-and-fix lifecycle on an attached bus.
func TestLoopEventsOnBus(t *testing.T) {
	r := newRig(t, true)
	r.launch(t, "bad-threads", app.MisconfigThreads, 1)
	b := bus.New()
	counts := map[string]int{}
	b.Subscribe("loop.*", func(e bus.Envelope) {
		counts[e.Topic[strings.LastIndexByte(e.Topic, '.')+1:]]++
	})
	loop := r.ctl.Loop()
	loop.Bus = b
	loop.RunEvery(sim.VirtualClock{Engine: r.e}, time.Minute, nil)
	r.e.RunUntil(30 * time.Minute)
	if counts["finding"] == 0 || counts["plan"] == 0 || counts["execute"] == 0 {
		t.Errorf("loop events = %v; want finding, plan, and execute envelopes", counts)
	}
}
