package misconfcase

import (
	"time"

	"autoloop/internal/control"
)

// CaseName is the spec vocabulary for this loop under the control plane.
const CaseName = "misconfig"

// FleetPriority is the case's recommended arbitration priority under a
// fleet coordinator: diagnosis-and-notify sits below every actuating loop.
const FleetPriority = 5

// Factory registers the misconfiguration-detection loop with the control
// plane. The cluster capability is optional: without node telemetry the
// underutilization detector is disabled, matching the constructor contract.
func Factory() control.CaseFactory {
	return control.CaseFactory{
		Name:     CaseName,
		Doc:      "misconfiguration detection: thread oversubscription, wrong-library I/O stalls, and underutilized allocations, with optional on-the-fly fixes",
		Requires: []control.Capability{control.CapQuerier, control.CapScheduler, control.CapApps},
		Defaults: func() interface{} { cfg := DefaultConfig(); return &cfg },
		Priority: FleetPriority,
		Period:   control.Duration(time.Minute),
		Build: func(env *control.Env, cfg interface{}) ([]control.BuiltLoop, error) {
			c := New(*cfg.(*Config), env.Querier, env.Scheduler, env.Apps, env.Cluster)
			return []control.BuiltLoop{{Loop: c.Loop()}}, nil
		},
	}
}
