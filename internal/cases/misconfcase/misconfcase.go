// Package misconfcase implements the paper's Misconfiguration use case:
// "detection of misconfiguration of user jobs such as unintended mismatch of
// threads to cores, underutilization of CPUs or GPUs, or wrong library
// search paths. Depending on the type of misconfiguration, users could
// either be informed about their mistake along with suggestions for better
// configurations, or the misconfiguration could be corrected on the fly."
//
// Detection is rule-plus-statistics over application and node telemetry:
// a context-switch storm indicates thread oversubscription, a loader warning
// indicates a wrong library path, and a bimodal utilization split across the
// allocation indicates underutilization. The response policy decides per
// type: threads and library issues are corrected on the fly; allocation
// shape cannot be changed mid-run, so the user is notified with a concrete
// suggestion.
package misconfcase

import (
	"fmt"
	"strconv"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/core"
	"autoloop/internal/hw"
	"autoloop/internal/sched"
	"autoloop/internal/telemetry"
)

// Config tunes detection.
type Config struct {
	// CtxSwitchStorm is the context-switch rate above which threads are
	// considered oversubscribed.
	CtxSwitchStorm float64
	// IdleUtil is the utilization below which an allocated node counts as
	// idle.
	IdleUtil float64
	// BusyUtil is the utilization above which a node counts as working.
	BusyUtil float64
	// Consecutive debounces each detector.
	Consecutive int
	// FixOnTheFly corrects thread/library issues instead of only notifying.
	FixOnTheFly bool
	// WarmupAfterStart ignores jobs younger than this (startup transients).
	WarmupAfterStart time.Duration
}

// DefaultConfig returns production-shaped thresholds.
func DefaultConfig() Config {
	return Config{
		CtxSwitchStorm:   20000,
		IdleUtil:         0.05,
		BusyUtil:         0.5,
		Consecutive:      2,
		FixOnTheFly:      true,
		WarmupAfterStart: 2 * time.Minute,
	}
}

// Detection records one confirmed misconfiguration finding (experiment
// ground-truth comparison).
type Detection struct {
	JobID int
	Kind  app.Misconfig
	At    time.Duration
}

// Controller wires the misconfiguration MAPE loop.
type Controller struct {
	cfg  Config
	db   telemetry.Querier
	sch  *sched.Scheduler
	apps *app.Runtime
	cl   *hw.Cluster

	streaks map[int]map[app.Misconfig]int
	flagged map[int]app.Misconfig

	// Detections lists confirmed findings in order (experiment metric).
	Detections []Detection
	// Notifications counts user notifications sent.
	Notifications int
	// Fixes counts on-the-fly corrections applied.
	Fixes int
}

// New builds the controller. cl may be nil when node telemetry is
// unavailable (underutilization detection is then disabled).
func New(cfg Config, db telemetry.Querier, sch *sched.Scheduler, apps *app.Runtime, cl *hw.Cluster) *Controller {
	if db == nil || sch == nil || apps == nil {
		panic("misconfcase: nil dependency")
	}
	if cfg.Consecutive < 1 {
		cfg.Consecutive = 1
	}
	return &Controller{
		cfg: cfg, db: db, sch: sch, apps: apps, cl: cl,
		streaks: make(map[int]map[app.Misconfig]int),
		flagged: make(map[int]app.Misconfig),
	}
}

// Flagged returns the confirmed misconfiguration for a job, if any.
func (c *Controller) Flagged(jobID int) (app.Misconfig, bool) {
	m, ok := c.flagged[jobID]
	return m, ok
}

// Loop assembles the core loop.
func (c *Controller) Loop() *core.Loop {
	return core.NewLoop("misconfig-case",
		core.MonitorFunc(c.observe),
		core.AnalyzerFunc(c.analyze),
		core.PlannerFunc(c.plan),
		core.ExecutorFunc(c.execute),
	)
}

// observe gathers per-job context-switch rates, loader warnings, and
// per-node utilization of each allocation.
func (c *Controller) observe(now time.Duration) (core.Observation, error) {
	obs := core.Observation{Time: now}
	for _, j := range c.sch.Running() {
		if now-j.Start < c.cfg.WarmupAfterStart {
			continue
		}
		label := telemetry.Labels{"job": strconv.Itoa(j.ID)}
		if v, ok := c.db.LatestValue("app.ctx_switch_rate", label); ok {
			obs.Points = append(obs.Points, telemetry.Point{Name: "app.ctx_switch_rate", Labels: label, Time: now, Value: v})
		}
		if v, ok := c.db.LatestValue("app.lib_warn", label); ok {
			obs.Points = append(obs.Points, telemetry.Point{Name: "app.lib_warn", Labels: label, Time: now, Value: v})
		}
		if c.cl != nil {
			for _, n := range j.AssignedNodes {
				obs.Points = append(obs.Points, telemetry.Point{
					Name:   "node.cpu.util",
					Labels: telemetry.Labels{"job": strconv.Itoa(j.ID), "node": n},
					Time:   now,
					Value:  c.cl.Util(n),
				})
			}
		}
	}
	return obs, nil
}

// jobObs aggregates one job's telemetry for a single analysis pass.
type jobObs struct {
	ctx     float64
	hasCtx  bool
	libWarn bool
	utils   []float64
}

// analyze classifies misconfigurations per job with debouncing.
func (c *Controller) analyze(now time.Duration, obs core.Observation) (core.Symptoms, error) {
	sym := core.Symptoms{Time: now}
	byJob := map[int]*jobObs{}
	get := func(id int) *jobObs {
		jo := byJob[id]
		if jo == nil {
			jo = &jobObs{}
			byJob[id] = jo
		}
		return jo
	}
	for _, p := range obs.Points {
		id, err := strconv.Atoi(p.Labels["job"])
		if err != nil {
			continue
		}
		switch p.Name {
		case "app.ctx_switch_rate":
			jo := get(id)
			jo.ctx, jo.hasCtx = p.Value, true
		case "app.lib_warn":
			get(id).libWarn = p.Value > 0
		case "node.cpu.util":
			jo := get(id)
			jo.utils = append(jo.utils, p.Value)
		}
	}
	for _, j := range c.sch.Running() {
		jo, ok := byJob[j.ID]
		if !ok {
			continue
		}
		if _, done := c.flagged[j.ID]; done {
			continue
		}
		kind := c.classify(jo)
		streaks := c.streaks[j.ID]
		if streaks == nil {
			streaks = make(map[app.Misconfig]int)
			c.streaks[j.ID] = streaks
		}
		for _, m := range []app.Misconfig{app.MisconfigThreads, app.MisconfigWrongLib, app.MisconfigUnderutil} {
			if m == kind {
				streaks[m]++
			} else {
				streaks[m] = 0
			}
		}
		if kind == app.MisconfigNone || streaks[kind] < c.cfg.Consecutive {
			continue
		}
		c.flagged[j.ID] = kind
		c.Detections = append(c.Detections, Detection{JobID: j.ID, Kind: kind, At: now})
		sym.Findings = append(sym.Findings, core.Finding{
			Kind:       "misconfig-" + kind.String(),
			Subject:    strconv.Itoa(j.ID),
			Value:      float64(kind),
			Confidence: 0.85,
			Detail:     c.explain(kind, jo),
		})
	}
	return sym, nil
}

// classify applies the detection rules to one job's observation. Rule order
// matters: an explicit loader warning is the most specific signal, a
// context-switch storm next, and the utilization split last (it can be a
// side effect of the other two).
func (c *Controller) classify(jo *jobObs) app.Misconfig {
	if jo.libWarn {
		return app.MisconfigWrongLib
	}
	if jo.hasCtx && jo.ctx > c.cfg.CtxSwitchStorm {
		return app.MisconfigThreads
	}
	if len(jo.utils) >= 2 {
		idle, busy := 0, 0
		for _, u := range jo.utils {
			switch {
			case u < c.cfg.IdleUtil:
				idle++
			case u > c.cfg.BusyUtil:
				busy++
			}
		}
		if idle > 0 && busy > 0 && idle+busy == len(jo.utils) {
			return app.MisconfigUnderutil
		}
	}
	return app.MisconfigNone
}

// explain renders a user-facing diagnosis.
func (c *Controller) explain(kind app.Misconfig, jo *jobObs) string {
	switch kind {
	case app.MisconfigThreads:
		return "context-switch storm indicates more threads than cores; suggest OMP_NUM_THREADS=cores"
	case app.MisconfigWrongLib:
		return "loader warning indicates an unoptimized library on LD_LIBRARY_PATH"
	case app.MisconfigUnderutil:
		return "half the allocated nodes are idle; suggest requesting fewer nodes"
	}
	return ""
}

// plan maps each finding to fix-on-the-fly or notify-user per policy.
func (c *Controller) plan(now time.Duration, sym core.Symptoms) (core.Plan, error) {
	plan := core.Plan{Time: now}
	for _, f := range sym.Findings {
		kind := app.Misconfig(int(f.Value))
		fixable := kind == app.MisconfigThreads || kind == app.MisconfigWrongLib
		if c.cfg.FixOnTheFly && fixable {
			plan.Actions = append(plan.Actions, core.Action{
				Kind: "fix-misconfig", Subject: f.Subject, Amount: f.Value,
				Confidence: f.Confidence, Explanation: f.Detail,
			})
			continue
		}
		plan.Actions = append(plan.Actions, core.Action{
			Kind: "notify-user", Subject: f.Subject, Amount: f.Value,
			Confidence: f.Confidence, Explanation: f.Detail,
		})
	}
	return plan, nil
}

// execute applies the fix or records the notification.
func (c *Controller) execute(now time.Duration, a core.Action) (core.ActionResult, error) {
	id, err := strconv.Atoi(a.Subject)
	if err != nil {
		return core.ActionResult{}, fmt.Errorf("misconfcase: bad subject %q", a.Subject)
	}
	switch a.Kind {
	case "fix-misconfig":
		inst, ok := c.apps.Instance(id)
		if !ok {
			return core.ActionResult{Action: a, Detail: "no instance"}, nil
		}
		if err := inst.FixMisconfig(); err != nil {
			return core.ActionResult{Action: a, Detail: err.Error()}, nil
		}
		c.Fixes++
		return core.ActionResult{Action: a, Honored: true, Detail: "corrected on the fly"}, nil
	case "notify-user":
		c.Notifications++
		return core.ActionResult{Action: a, Honored: true, Detail: "user notified: " + a.Explanation}, nil
	default:
		return core.ActionResult{}, fmt.Errorf("misconfcase: unknown action %q", a.Kind)
	}
}
