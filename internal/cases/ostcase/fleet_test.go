package ostcase

import (
	"testing"
	"time"

	"autoloop/internal/fleet"
	"autoloop/internal/sim"
)

// TestDetectsAndAvoidsUnderFleetCoordinator converts the case to the
// concurrent fleet coordinator: the degraded-OST response must fire exactly
// as it does with direct ticking.
func TestDetectsAndAvoidsUnderFleetCoordinator(t *testing.T) {
	r := newRig(t, 8)
	r.ioApp(t, "writer", 8)
	coord := fleet.New(0)
	coord.Add(r.ctl.Loop(), FleetPriority)
	coord.RunEvery(sim.VirtualClock{Engine: r.e}, time.Minute, nil)

	r.e.RunUntil(20 * time.Minute)
	if r.ctl.Responses != 0 {
		t.Fatalf("false positive: %d responses during healthy phase", r.ctl.Responses)
	}
	if err := r.fs.SetOSTHealth(3, 0.1); err != nil {
		t.Fatal(err)
	}
	r.e.RunUntil(60 * time.Minute)
	if r.ctl.Responses != 1 {
		t.Fatalf("Responses = %d, want 1", r.ctl.Responses)
	}
	avoided := r.ctl.Avoided()
	if len(avoided) != 1 || avoided[0] != 3 {
		t.Fatalf("Avoided = %v, want [3]", avoided)
	}
}
