package ostcase

import (
	"testing"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/core"
	"autoloop/internal/pfs"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

type rig struct {
	e   *sim.Engine
	db  *tsdb.DB
	fs  *pfs.FS
	s   *sched.Scheduler
	rt  *app.Runtime
	ctl *Controller
}

func newRig(t *testing.T, osts int) *rig {
	t.Helper()
	e := sim.NewEngine(1)
	db := tsdb.New(0)
	fs := pfs.New(e, pfs.Config{OSTs: osts, OSTBandwidthMBps: 200, DefaultStripeCount: 4})
	s := sched.New(e, []string{"n00", "n01", "n02", "n03"}, sched.DefaultExtensionPolicy())
	rt := app.NewRuntime(e, db, fs, nil)
	rt.OnComplete = func(inst *app.Instance) { s.JobFinished(inst.Job.ID) }
	s.SetHooks(rt.Start, rt.Kill)
	// Sample filesystem telemetry every 30s so the loop has data.
	pipe := telemetry.NewPipeline(telemetry.NewRegistryOf(fs.Collector()), db)
	e.Every(30*time.Second, 30*time.Second, func() bool {
		pipe.Sample(e.Now())
		return true
	})
	return &rig{e: e, db: db, fs: fs, s: s, rt: rt, ctl: New(DefaultConfig(), db, s, rt)}
}

// ioApp registers and submits an I/O heavy app.
func (r *rig) ioApp(t *testing.T, name string, stripes int) *sched.Job {
	t.Helper()
	r.rt.RegisterSpec(name, app.Spec{
		Name: name, TotalIters: 600, IterTime: sim.Constant{V: 10 * time.Second},
		IOEvery: 3, IOSizeMB: 400, StripeCount: stripes,
	})
	j, err := r.s.Submit(name, "u", 1, 12*time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestDetectsAndAvoidsDegradedOST(t *testing.T) {
	r := newRig(t, 8)
	j := r.ioApp(t, "writer", 8) // stripes over every OST
	loop := r.ctl.Loop()
	loop.Audit = core.NewAuditLog(1000)
	loop.RunEvery(sim.VirtualClock{Engine: r.e}, time.Minute, nil)

	// Healthy warmup.
	r.e.RunUntil(20 * time.Minute)
	if r.ctl.Responses != 0 {
		t.Fatalf("false positive: %d responses during healthy phase", r.ctl.Responses)
	}
	// Degrade OST 3 by 10x.
	if err := r.fs.SetOSTHealth(3, 0.1); err != nil {
		t.Fatal(err)
	}
	r.e.RunUntil(60 * time.Minute)
	if r.ctl.Responses != 1 {
		t.Fatalf("Responses = %d, want 1", r.ctl.Responses)
	}
	inst, _ := r.rt.Instance(j.ID)
	for _, o := range inst.File().OSTs() {
		if o == 3 {
			t.Error("layout still includes degraded OST 3")
		}
	}
	got := r.ctl.Avoided()
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("Avoided = %v", got)
	}
}

func TestIOTimeRecoversAfterAvoidance(t *testing.T) {
	run := func(withLoop bool) time.Duration {
		r := newRig(t, 8)
		j := r.ioApp(t, "writer", 8)
		if withLoop {
			r.ctl.Loop().RunEvery(sim.VirtualClock{Engine: r.e}, time.Minute, nil)
		}
		r.e.At(10*time.Minute, func() { _ = r.fs.SetOSTHealth(3, 0.05) })
		r.e.RunUntil(12 * time.Hour)
		if j.State != sched.JobCompleted {
			t.Fatalf("state = %v (withLoop=%v)", j.State, withLoop)
		}
		return j.End - j.Start
	}
	with := run(true)
	without := run(false)
	if with >= without {
		t.Errorf("loop runtime %v should beat baseline %v", with, without)
	}
}

func TestHealthyFleetNoFindings(t *testing.T) {
	r := newRig(t, 8)
	r.ioApp(t, "writer", 8)
	loop := r.ctl.Loop()
	loop.RunEvery(sim.VirtualClock{Engine: r.e}, time.Minute, nil)
	r.e.RunUntil(time.Hour)
	if loop.Metrics().Findings != 0 {
		t.Errorf("findings on healthy fleet: %d", loop.Metrics().Findings)
	}
}

func TestJobNotUsingDegradedOSTUntouched(t *testing.T) {
	r := newRig(t, 8)
	j := r.ioApp(t, "narrow", 2) // stripes over OSTs 0-1 (round robin from 0)
	inst, _ := r.rt.Instance(j.ID)
	layout := inst.File().OSTs()
	for _, o := range layout {
		if o == 5 {
			t.Skip("layout unexpectedly includes OST 5")
		}
	}
	r.ctl.Loop().RunEvery(sim.VirtualClock{Engine: r.e}, time.Minute, nil)
	r.e.RunUntil(10 * time.Minute)
	_ = r.fs.SetOSTHealth(5, 0.05)
	r.e.RunUntil(2 * time.Hour)
	if r.ctl.Responses != 0 {
		t.Errorf("responded for a job not touching the degraded OST (%d)", r.ctl.Responses)
	}
}

func TestExecuteErrors(t *testing.T) {
	r := newRig(t, 4)
	if _, err := r.ctl.execute(0, core.Action{Kind: "bogus"}); err == nil {
		t.Error("unknown action should error")
	}
	if _, err := r.ctl.execute(0, core.Action{Kind: "reopen-avoiding", Subject: "nope"}); err == nil {
		t.Error("bad subject should error")
	}
	res, err := r.ctl.execute(0, core.Action{Kind: "reopen-avoiding", Subject: "424242"})
	if err != nil || res.Honored {
		t.Error("missing instance should be reported unhonored, not an error")
	}
}
