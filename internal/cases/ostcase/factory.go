package ostcase

import (
	"time"

	"autoloop/internal/control"
)

// CaseName is the spec vocabulary for this loop under the control plane.
const CaseName = "ost"

// Factory registers the OST-avoidance loop with the control plane.
func Factory() control.CaseFactory {
	return control.CaseFactory{
		Name:     CaseName,
		Doc:      "storage back-end avoidance: MAD outlier test on per-OST write latency, reopen affected applications' files elsewhere",
		Requires: []control.Capability{control.CapQuerier, control.CapScheduler, control.CapApps},
		Defaults: func() interface{} { cfg := DefaultConfig(); return &cfg },
		Priority: FleetPriority,
		Period:   control.Duration(time.Minute),
		Build: func(env *control.Env, cfg interface{}) ([]control.BuiltLoop, error) {
			c := New(*cfg.(*Config), env.Querier, env.Scheduler, env.Apps)
			return []control.BuiltLoop{{Loop: c.Loop()}}, nil
		},
	}
}
