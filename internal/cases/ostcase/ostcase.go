// Package ostcase implements the paper's OST use case: "response by an
// application, from continuous evaluation of storage back-end write
// performance, to close files using a poorly performing OST ... The
// application would then reopen them using different OSTs".
//
// The loop continuously compares per-OST write latency across the fleet; a
// robust MAD outlier test (one slow OST among many healthy ones) yields a
// degraded-OST finding, the plan selects every running application whose
// file layout touches that OST, and the execute phase drives the
// application-side close/reopen hook.
package ostcase

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"autoloop/internal/analytics"
	"autoloop/internal/app"
	"autoloop/internal/core"
	"autoloop/internal/sched"
	"autoloop/internal/telemetry"
)

// FleetPriority is the case's recommended arbitration priority under a
// fleet coordinator: storage avoidance is remedial but not safety-critical,
// so it yields to facility-domain loops on a shared subject.
const FleetPriority = 10

// Config tunes the OST loop.
type Config struct {
	// Threshold is the MAD multiple beyond which an OST is an outlier.
	Threshold float64
	// MinLatMS ignores idle OSTs (no meaningful latency signal).
	MinLatMS float64
	// Consecutive requires the outlier to persist this many ticks before
	// responding (debounce against transient queueing).
	Consecutive int
}

// DefaultConfig flags an OST after 2 consecutive observations beyond 4 MADs.
func DefaultConfig() Config {
	return Config{Threshold: 4, MinLatMS: 0.5, Consecutive: 2}
}

// Controller wires the OST MAPE loop.
type Controller struct {
	cfg  Config
	db   telemetry.Querier
	sch  *sched.Scheduler
	apps *app.Runtime

	streak map[int]int // consecutive outlier observations per OST
	// avoided remembers OSTs already being avoided.
	avoided map[int]bool

	// ptsBuf is the observation buffer reused across ticks: the loop
	// machinery hands observations to Analyze and drops them, so the
	// Monitor phase can fill the same backing array every tick.
	ptsBuf []telemetry.Point
	// ids/lats are the per-tick fleet scratch for the outlier test.
	ids  []int
	lats []float64

	// Responses counts reopen actions taken (experiment metric).
	Responses int
}

// New builds the controller.
func New(cfg Config, db telemetry.Querier, sch *sched.Scheduler, apps *app.Runtime) *Controller {
	if db == nil || sch == nil || apps == nil {
		panic("ostcase: nil dependency")
	}
	if cfg.Consecutive < 1 {
		cfg.Consecutive = 1
	}
	return &Controller{
		cfg: cfg, db: db, sch: sch, apps: apps,
		streak: make(map[int]int), avoided: make(map[int]bool),
	}
}

// Avoided returns the set of OSTs currently avoided.
func (c *Controller) Avoided() []int {
	var out []int
	for id, on := range c.avoided {
		if on {
			out = append(out, id)
		}
	}
	return out
}

// Loop assembles the core loop.
func (c *Controller) Loop() *core.Loop {
	return core.NewLoop("ost-case",
		core.MonitorFunc(c.observe),
		core.AnalyzerFunc(c.analyze),
		core.PlannerFunc(c.plan),
		core.ExecutorFunc(c.execute),
	)
}

// observe reads the latest per-OST write latency through the zero-copy
// fill-buffer surface: LatestInto appends into the controller's reused
// buffer instead of materializing (and label-cloning) a fresh point slice
// every tick.
func (c *Controller) observe(now time.Duration) (core.Observation, error) {
	obs := core.Observation{Time: now}
	c.ptsBuf = c.db.LatestInto(c.ptsBuf[:0], "pfs.ost.lat_ms", nil)
	obs.Points = c.ptsBuf
	return obs, nil
}

// analyze runs the fleet outlier test on busy OSTs.
func (c *Controller) analyze(now time.Duration, obs core.Observation) (core.Symptoms, error) {
	sym := core.Symptoms{Time: now}
	ids := c.ids[:0]
	lats := c.lats[:0]
	for _, p := range obs.Points {
		if p.Name != "pfs.ost.lat_ms" || p.Value < c.cfg.MinLatMS {
			continue
		}
		id, err := strconv.Atoi(strings.TrimPrefix(p.Labels["ost"], "ost"))
		if err != nil {
			continue
		}
		ids = append(ids, id)
		lats = append(lats, p.Value)
	}
	c.ids, c.lats = ids, lats
	outliers := map[int]bool{}
	for _, idx := range analytics.MADOutliers(lats, c.cfg.Threshold, 1) {
		outliers[ids[idx]] = true
	}
	for _, id := range ids {
		if outliers[id] {
			c.streak[id]++
		} else {
			c.streak[id] = 0
		}
	}
	for i, id := range ids {
		if c.streak[id] >= c.cfg.Consecutive && !c.avoided[id] {
			sym.Findings = append(sym.Findings, core.Finding{
				Kind:       "ost-degraded",
				Subject:    fmt.Sprintf("ost%02d", id),
				Value:      lats[i],
				Confidence: 0.9,
				Detail: fmt.Sprintf("write latency %.1fms is a %d-tick high outlier across %d busy OSTs",
					lats[i], c.streak[id], len(ids)),
			})
		}
	}
	return sym, nil
}

// plan targets every running application whose file layout includes the
// degraded OST.
func (c *Controller) plan(now time.Duration, sym core.Symptoms) (core.Plan, error) {
	plan := core.Plan{Time: now}
	for _, f := range sym.Findings {
		if f.Kind != "ost-degraded" {
			continue
		}
		ostID, err := strconv.Atoi(strings.TrimPrefix(f.Subject, "ost"))
		if err != nil {
			continue
		}
		for _, j := range c.sch.Running() {
			inst, ok := c.apps.Instance(j.ID)
			if !ok || inst.File() == nil {
				continue
			}
			uses := false
			for _, o := range inst.File().OSTs() {
				if o == ostID {
					uses = true
					break
				}
			}
			if !uses {
				continue
			}
			plan.Actions = append(plan.Actions, core.Action{
				Kind:        "reopen-avoiding",
				Subject:     strconv.Itoa(j.ID),
				Amount:      float64(ostID),
				Confidence:  f.Confidence,
				Explanation: fmt.Sprintf("job %d stripes over degraded %s: %s", j.ID, f.Subject, f.Detail),
			})
		}
		// Mark the OST handled even when no job currently stripes over it,
		// so new layouts steer clear via the planner's avoided set.
		c.avoided[ostID] = true
	}
	return plan, nil
}

// execute drives the application's close/reopen hook.
func (c *Controller) execute(now time.Duration, a core.Action) (core.ActionResult, error) {
	if a.Kind != "reopen-avoiding" {
		return core.ActionResult{}, fmt.Errorf("ostcase: unknown action %q", a.Kind)
	}
	id, err := strconv.Atoi(a.Subject)
	if err != nil {
		return core.ActionResult{}, fmt.Errorf("ostcase: bad subject %q", a.Subject)
	}
	inst, ok := c.apps.Instance(id)
	if !ok {
		return core.ActionResult{Action: a, Detail: "no instance"}, nil
	}
	if err := inst.ReopenAvoiding(int(a.Amount)); err != nil {
		return core.ActionResult{Action: a, Detail: err.Error()}, nil
	}
	c.Responses++
	return core.ActionResult{Action: a, Honored: true, Granted: a.Amount, Detail: "file reopened on healthy OSTs"}, nil
}
