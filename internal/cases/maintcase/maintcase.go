// Package maintcase implements the paper's Maintenance use case: "responses
// to system maintenance events to ensure continuity of running jobs". The
// loop watches upcoming maintenance reservations, analyzes which running
// jobs cannot finish before the window opens, and executes the same
// application interaction the Scheduler case's extension path uses —
// "equivalent application interaction as invoking asynchronous
// checkpointing" — followed by a graceful requeue, so the work survives the
// outage instead of being killed with it.
package maintcase

import (
	"fmt"
	"strconv"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/core"
	"autoloop/internal/sched"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

// Config tunes the maintenance loop.
type Config struct {
	// LeadTime is how far ahead of a maintenance window the loop acts; it
	// must cover checkpoint cost plus scheduling slack.
	LeadTime time.Duration
	// SafetyMargin pads the completion estimate when deciding whether a job
	// will finish in time on its own.
	SafetyMargin time.Duration
}

// DefaultConfig acts 30 minutes ahead with a 5-minute margin.
func DefaultConfig() Config {
	return Config{LeadTime: 30 * time.Minute, SafetyMargin: 5 * time.Minute}
}

// Controller wires the maintenance MAPE loop.
type Controller struct {
	cfg  Config
	db   telemetry.Querier
	sch  *sched.Scheduler
	apps *app.Runtime

	// handled remembers jobs already checkpoint-requeued for the upcoming
	// window, so one window triggers one response per job.
	handled map[int]bool

	// Preserved counts jobs saved ahead of maintenance (experiment metric).
	Preserved int
}

// New builds the controller.
func New(cfg Config, db telemetry.Querier, sch *sched.Scheduler, apps *app.Runtime) *Controller {
	if db == nil || sch == nil || apps == nil {
		panic("maintcase: nil dependency")
	}
	return &Controller{cfg: cfg, db: db, sch: sch, apps: apps, handled: make(map[int]bool)}
}

// Loop assembles the core loop.
func (c *Controller) Loop() *core.Loop {
	return core.NewLoop("maintenance-case",
		core.MonitorFunc(c.observe),
		core.AnalyzerFunc(c.analyze),
		core.PlannerFunc(c.plan),
		core.ExecutorFunc(c.execute),
	)
}

// observe reports the next maintenance window and per-job progress rates.
func (c *Controller) observe(now time.Duration) (core.Observation, error) {
	obs := core.Observation{Time: now}
	wins := c.sch.Maintenance(now)
	if len(wins) == 0 {
		return obs, nil
	}
	obs.Points = append(obs.Points, telemetry.Point{
		Name: "maint.next.start", Time: now, Value: wins[0][0].Seconds(),
	})
	for _, j := range c.sch.Running() {
		label := telemetry.Labels{"job": strconv.Itoa(j.ID)}
		// Rate needs only the window's endpoints, so the progress series is
		// reduced during the visit instead of being copied out of the store.
		matches, n := 0, 0
		var rate float64
		c.db.QueryVisit("app.progress", label, now-c.cfg.LeadTime, now, func(_ telemetry.Labels, samples []telemetry.Sample) {
			matches++
			n = len(samples)
			rate = tsdb.Rate(telemetry.Series{Samples: samples})
		})
		if matches == 1 && n >= 2 {
			obs.Points = append(obs.Points, telemetry.Point{
				Name: "app.progress.rate", Labels: label, Time: now, Value: rate,
			})
		}
	}
	return obs, nil
}

// analyze flags running jobs that will not finish before the window.
func (c *Controller) analyze(now time.Duration, obs core.Observation) (core.Symptoms, error) {
	sym := core.Symptoms{Time: now}
	var maintStart time.Duration
	rates := map[int]float64{}
	for _, p := range obs.Points {
		switch p.Name {
		case "maint.next.start":
			maintStart = time.Duration(p.Value * float64(time.Second))
		case "app.progress.rate":
			if id, err := strconv.Atoi(p.Labels["job"]); err == nil {
				rates[id] = p.Value
			}
		}
	}
	if maintStart == 0 || maintStart-now > c.cfg.LeadTime {
		return sym, nil // no window close enough to act on
	}
	for _, j := range c.sch.Running() {
		if c.handled[j.ID] {
			continue
		}
		finishBy := c.estimateEnd(now, j, rates[j.ID])
		if finishBy+c.cfg.SafetyMargin < maintStart {
			continue // will finish on its own
		}
		sym.Findings = append(sym.Findings, core.Finding{
			Kind:       "job-hits-maintenance",
			Subject:    strconv.Itoa(j.ID),
			Value:      (maintStart - now).Seconds(),
			Confidence: 0.9,
			Detail: fmt.Sprintf("estimated completion %v vs maintenance at %v",
				finishBy.Truncate(time.Second), maintStart),
		})
	}
	return sym, nil
}

// estimateEnd projects a job's completion: progress-rate based when markers
// exist, otherwise pessimistically its deadline.
func (c *Controller) estimateEnd(now time.Duration, j *sched.Job, rate float64) time.Duration {
	label := telemetry.Labels{"job": strconv.Itoa(j.ID)}
	total, okT := c.db.LatestValue("app.progress_total", label)
	done, okD := c.db.LatestValue("app.progress", label)
	if rate > 0 && okT && okD && total > done {
		return now + time.Duration((total-done)/rate*float64(time.Second))
	}
	return j.Deadline
}

// plan orders checkpoint-then-requeue for each endangered job.
func (c *Controller) plan(now time.Duration, sym core.Symptoms) (core.Plan, error) {
	plan := core.Plan{Time: now}
	for _, f := range sym.Findings {
		if f.Kind != "job-hits-maintenance" {
			continue
		}
		plan.Actions = append(plan.Actions, core.Action{
			Kind:        "checkpoint-requeue",
			Subject:     f.Subject,
			Confidence:  f.Confidence,
			Explanation: f.Detail,
		})
	}
	return plan, nil
}

// execute checkpoints the application and requeues the job once the
// checkpoint is durable.
func (c *Controller) execute(now time.Duration, a core.Action) (core.ActionResult, error) {
	if a.Kind != "checkpoint-requeue" {
		return core.ActionResult{}, fmt.Errorf("maintcase: unknown action %q", a.Kind)
	}
	id, err := strconv.Atoi(a.Subject)
	if err != nil {
		return core.ActionResult{}, fmt.Errorf("maintcase: bad subject %q", a.Subject)
	}
	inst, ok := c.apps.Instance(id)
	if !ok {
		return core.ActionResult{Action: a, Detail: "no instance"}, nil
	}
	c.handled[id] = true
	err = inst.RequestCheckpoint(func() {
		if err := c.sch.Requeue(id); err == nil {
			c.Preserved++
		}
	})
	if err != nil {
		return core.ActionResult{Action: a, Detail: err.Error()}, nil
	}
	return core.ActionResult{Action: a, Honored: true, Detail: "checkpoint+requeue scheduled"}, nil
}
