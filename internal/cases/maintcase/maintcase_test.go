package maintcase

import (
	"strings"
	"testing"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/bus"
	"autoloop/internal/core"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/tsdb"
)

type rig struct {
	e   *sim.Engine
	db  *tsdb.DB
	s   *sched.Scheduler
	rt  *app.Runtime
	ctl *Controller
}

func newRig(t *testing.T) *rig {
	t.Helper()
	e := sim.NewEngine(1)
	db := tsdb.New(0)
	s := sched.New(e, []string{"n00", "n01"}, sched.DefaultExtensionPolicy())
	rt := app.NewRuntime(e, db, nil, nil)
	rt.OnComplete = func(inst *app.Instance) { s.JobFinished(inst.Job.ID) }
	s.SetHooks(rt.Start, rt.Kill)
	ctl := New(DefaultConfig(), db, s, rt)
	return &rig{e: e, db: db, s: s, rt: rt, ctl: ctl}
}

func (r *rig) run(period time.Duration) {
	r.ctl.Loop().RunEvery(sim.VirtualClock{Engine: r.e}, period, nil)
}

func TestCheckpointsAndRequeuesEndangeredJob(t *testing.T) {
	r := newRig(t)
	// Long job: 300 one-minute iterations with a 2-minute checkpoint.
	r.rt.RegisterSpec("big", app.Spec{
		Name: "big", TotalIters: 300, IterTime: sim.Constant{V: time.Minute},
		CheckpointCost: 2 * time.Minute,
	})
	j, err := r.s.Submit("big", "u", 1, 8*time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Maintenance at t=2h..3h. The job cannot finish by then.
	if err := r.s.AddMaintenance(2*time.Hour, 3*time.Hour); err != nil {
		t.Fatal(err)
	}
	r.run(5 * time.Minute)
	r.e.RunUntil(2 * time.Hour)
	// By maintenance start the job must have been requeued, not running.
	if j.State == sched.JobRunning {
		t.Fatal("job still running into maintenance")
	}
	if j.State == sched.JobKilledMaint {
		t.Fatal("job was killed by maintenance despite the loop")
	}
	if r.ctl.Preserved != 1 {
		t.Errorf("Preserved = %d", r.ctl.Preserved)
	}
	inst, _ := r.rt.Instance(j.ID)
	ckpt := inst.CheckpointIter()
	if ckpt < 80 {
		t.Errorf("checkpoint at iter %d, want near the window (~90+)", ckpt)
	}
	// After the window the job resumes from checkpoint and completes.
	r.e.RunUntil(12 * time.Hour)
	if j.State != sched.JobCompleted {
		t.Fatalf("final state = %v", j.State)
	}
	inst2, _ := r.rt.Instance(j.ID)
	if inst2.Iter() != 300 {
		t.Errorf("iters = %d", inst2.Iter())
	}
}

func TestShortJobLeftAlone(t *testing.T) {
	r := newRig(t)
	r.rt.RegisterSpec("small", app.Spec{
		Name: "small", TotalIters: 30, IterTime: sim.Constant{V: time.Minute},
	})
	j, err := r.s.Submit("small", "u", 1, time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.s.AddMaintenance(2*time.Hour, 3*time.Hour); err != nil {
		t.Fatal(err)
	}
	r.run(5 * time.Minute)
	r.e.RunUntil(4 * time.Hour)
	if j.State != sched.JobCompleted {
		t.Fatalf("state = %v", j.State)
	}
	if j.Requeues != 0 {
		t.Errorf("short job was needlessly requeued %d times", j.Requeues)
	}
	if r.ctl.Preserved != 0 {
		t.Errorf("Preserved = %d", r.ctl.Preserved)
	}
}

func TestNoMaintenanceNoFindings(t *testing.T) {
	r := newRig(t)
	r.rt.RegisterSpec("x", app.Spec{Name: "x", TotalIters: 600, IterTime: sim.Constant{V: time.Minute}})
	if _, err := r.s.Submit("x", "u", 1, 24*time.Hour, 0); err != nil {
		t.Fatal(err)
	}
	loop := r.ctl.Loop()
	loop.RunEvery(sim.VirtualClock{Engine: r.e}, 10*time.Minute, nil)
	r.e.RunUntil(time.Hour)
	if loop.Metrics().Findings != 0 {
		t.Errorf("findings without maintenance: %d", loop.Metrics().Findings)
	}
}

func TestActsOnlyWithinLeadTime(t *testing.T) {
	r := newRig(t)
	r.rt.RegisterSpec("big", app.Spec{
		Name: "big", TotalIters: 600, IterTime: sim.Constant{V: time.Minute},
	})
	j, err := r.s.Submit("big", "u", 1, 20*time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.s.AddMaintenance(5*time.Hour, 6*time.Hour); err != nil {
		t.Fatal(err)
	}
	r.run(10 * time.Minute)
	// Long before the lead time, nothing should happen.
	r.e.RunUntil(4 * time.Hour)
	if j.Requeues != 0 {
		t.Error("acted before lead time")
	}
	r.e.RunUntil(5 * time.Hour)
	if j.Requeues != 1 {
		t.Errorf("Requeues = %d at window start", j.Requeues)
	}
}

func TestBaselineWithoutLoopLosesWork(t *testing.T) {
	r := newRig(t)
	r.rt.RegisterSpec("big", app.Spec{
		Name: "big", TotalIters: 300, IterTime: sim.Constant{V: time.Minute},
	})
	j, err := r.s.Submit("big", "u", 1, 8*time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = r.s.AddMaintenance(2*time.Hour, 3*time.Hour)
	// No loop running.
	r.e.RunUntil(4 * time.Hour)
	if j.State != sched.JobKilledMaint {
		t.Fatalf("state = %v, want killed-maint without loop", j.State)
	}
	inst, _ := r.rt.Instance(j.ID)
	if inst.CheckpointIter() != 0 {
		t.Error("baseline should have no checkpoint")
	}
}

func TestExecuteRejectsUnknownAction(t *testing.T) {
	r := newRig(t)
	if _, err := r.ctl.execute(0, core.Action{Kind: "bogus", Subject: "1"}); err == nil {
		t.Error("expected error for unknown action")
	}
	if _, err := r.ctl.execute(0, core.Action{Kind: "checkpoint-requeue", Subject: "x"}); err == nil {
		t.Error("expected error for bad subject")
	}
}

// TestLoopEventsOnBus checks the maintenance loop's lifecycle lands on an
// attached bus as "loop.<name>.*" envelopes: the endangered-job scenario must
// produce findings, planned actions, and executed checkpoint/requeues.
func TestLoopEventsOnBus(t *testing.T) {
	r := newRig(t)
	r.rt.RegisterSpec("big", app.Spec{
		Name: "big", TotalIters: 300, IterTime: sim.Constant{V: time.Minute},
		CheckpointCost: 2 * time.Minute,
	})
	if _, err := r.s.Submit("big", "u", 1, 8*time.Hour, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.s.AddMaintenance(2*time.Hour, 3*time.Hour); err != nil {
		t.Fatal(err)
	}
	b := bus.New()
	counts := map[string]int{}
	b.Subscribe("loop.*", func(e bus.Envelope) {
		counts[e.Topic[strings.LastIndexByte(e.Topic, '.')+1:]]++
	})
	loop := r.ctl.Loop()
	loop.Bus = b
	loop.RunEvery(sim.VirtualClock{Engine: r.e}, 5*time.Minute, nil)
	r.e.RunUntil(2 * time.Hour)
	if counts["finding"] == 0 || counts["plan"] == 0 || counts["execute"] == 0 {
		t.Errorf("loop events = %v; want finding, plan, and execute envelopes", counts)
	}
}
