package maintcase

import (
	"time"

	"autoloop/internal/control"
)

// CaseName is the spec vocabulary for this loop under the control plane.
const CaseName = "maintenance"

// FleetPriority is the case's recommended arbitration priority under a
// fleet coordinator: maintenance preservation outranks workload-side
// optimizations (a job saved beats a job extended) but yields to
// facility-domain safety loops.
const FleetPriority = 15

// Factory registers the maintenance-preservation loop with the control
// plane.
func Factory() control.CaseFactory {
	return control.CaseFactory{
		Name:     CaseName,
		Doc:      "maintenance preservation: checkpoint-requeue jobs that cannot finish before the next announced maintenance window",
		Requires: []control.Capability{control.CapQuerier, control.CapScheduler, control.CapApps},
		Defaults: func() interface{} { cfg := DefaultConfig(); return &cfg },
		Priority: FleetPriority,
		Period:   control.Duration(5 * time.Minute),
		Build: func(env *control.Env, cfg interface{}) ([]control.BuiltLoop, error) {
			c := New(*cfg.(*Config), env.Querier, env.Scheduler, env.Apps)
			return []control.BuiltLoop{{Loop: c.Loop()}}, nil
		},
	}
}
