package schedcase

import (
	"strings"
	"testing"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/bus"
	"autoloop/internal/core"
	"autoloop/internal/knowledge"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/tsdb"
)

// rig is a miniature cluster: engine, db, scheduler, app runtime, controller.
type rig struct {
	e    *sim.Engine
	db   *tsdb.DB
	s    *sched.Scheduler
	rt   *app.Runtime
	kb   *knowledge.Base
	ctl  *Controller
	loop *core.Loop
}

func newRig(t *testing.T, cfg Config, policy sched.ExtensionPolicy) *rig {
	t.Helper()
	e := sim.NewEngine(1)
	db := tsdb.New(0)
	nodes := []string{"n00", "n01", "n02", "n03"}
	s := sched.New(e, nodes, policy)
	rt := app.NewRuntime(e, db, nil, nil)
	kb := knowledge.NewBase()
	ctl := New(cfg, db, s, rt, kb, sim.VirtualClock{Engine: e})
	rt.OnComplete = func(inst *app.Instance) {
		s.JobFinished(inst.Job.ID)
	}
	s.SetHooks(rt.Start, rt.Kill)
	loop := ctl.Loop()
	loop.Audit = core.NewAuditLog(1000)
	r := &rig{e: e, db: db, s: s, rt: rt, kb: kb, ctl: ctl, loop: loop}
	return r
}

// noteEnds wires terminal-state resolution the way the harness does.
func (r *rig) noteEnds() {
	seen := map[int]bool{}
	r.e.Every(time.Minute, time.Minute, func() bool {
		for _, j := range r.s.Jobs() {
			if seen[j.ID] {
				continue
			}
			switch j.State {
			case sched.JobCompleted, sched.JobKilledWalltime, sched.JobKilledMaint:
				seen[j.ID] = true
				r.ctl.NoteJobEnd(j)
			}
		}
		return true
	})
}

// launch registers a spec whose true runtime exceeds or fits the walltime.
func (r *rig) launch(t *testing.T, name string, iters int, iterTime, wall time.Duration) *sched.Job {
	t.Helper()
	r.rt.RegisterSpec(name, app.Spec{
		Name: name, TotalIters: iters,
		IterTime: sim.Constant{V: iterTime},
	})
	j, err := r.s.Submit(name, "u", 1, wall, 0)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestLoopExtendsUnderestimatedJob(t *testing.T) {
	r := newRig(t, DefaultConfig(), sched.ExtensionPolicy{MaxPerJob: 3, MaxTotalPerJob: 10 * time.Hour})
	r.noteEnds()
	// True runtime 100 min; requested walltime 60 min.
	j := r.launch(t, "under", 100, time.Minute, time.Hour)
	r.loop.RunEvery(sim.VirtualClock{Engine: r.e}, 5*time.Minute, nil)
	r.e.RunUntil(5 * time.Hour)
	if j.State != sched.JobCompleted {
		t.Fatalf("state = %v (ext=%d total=%v), want completed via extension", j.State, j.Extensions, j.ExtensionTotal)
	}
	if j.Extensions == 0 {
		t.Error("job completed without any extension?")
	}
	m := r.loop.Metrics()
	if m.ExecutedActions == 0 || m.HonoredActions == 0 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestLoopLeavesWellEstimatedJobAlone(t *testing.T) {
	r := newRig(t, DefaultConfig(), sched.DefaultExtensionPolicy())
	r.noteEnds()
	// True runtime 30 min; walltime 60 min: nothing to do.
	j := r.launch(t, "fine", 30, time.Minute, time.Hour)
	r.loop.RunEvery(sim.VirtualClock{Engine: r.e}, 5*time.Minute, nil)
	r.e.RunUntil(2 * time.Hour)
	if j.State != sched.JobCompleted {
		t.Fatalf("state = %v", j.State)
	}
	if j.Extensions != 0 {
		t.Errorf("unneeded extensions: %d", j.Extensions)
	}
}

func TestCheckpointFallbackWhenExhausted(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg, sched.ExtensionPolicy{MaxPerJob: 1, MaxTotalPerJob: 10 * time.Minute})
	r.noteEnds()
	// Needs far more than policy allows: 3h true vs 1h walltime, max ext 10m.
	spec := app.Spec{
		Name: "huge", TotalIters: 180, IterTime: sim.Constant{V: time.Minute},
		CheckpointCost: time.Minute,
	}
	r.rt.RegisterSpec("huge", spec)
	j, err := r.s.Submit("huge", "u", 1, time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.loop.RunEvery(sim.VirtualClock{Engine: r.e}, 5*time.Minute, nil)
	r.e.RunUntil(6 * time.Hour)
	if j.State != sched.JobKilledWalltime {
		t.Fatalf("state = %v, want killed (policy too tight)", j.State)
	}
	inst, _ := r.rt.Instance(j.ID)
	if inst.CheckpointIter() == 0 {
		t.Error("checkpoint fallback never checkpointed")
	}
	// A resubmission restarts from the checkpoint.
	j2, err := r.s.Submit("huge", "u", 1, 4*time.Hour, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	r.e.RunUntil(12 * time.Hour)
	if j2.State != sched.JobCompleted {
		t.Fatalf("resubmission state = %v", j2.State)
	}
	inst2, _ := r.rt.Instance(j2.ID)
	if inst2.Iter() != 180 {
		t.Errorf("resubmission iters = %d", inst2.Iter())
	}
}

func TestKnowledgeCorrectionImprovesSecondRun(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg, sched.ExtensionPolicy{MaxPerJob: 10, MaxTotalPerJob: 100 * time.Hour})
	r.noteEnds()
	r.loop.RunEvery(sim.VirtualClock{Engine: r.e}, 5*time.Minute, nil)

	// An app that decelerates: early rate looks fast, so naive TTC
	// underestimates; Knowledge learns the correction across runs.
	spec := app.Spec{
		Name: "decel", TotalIters: 120, IterTime: sim.Constant{V: time.Minute},
		DriftPerIter: 0.01,
	}
	r.rt.RegisterSpec("decel", spec)
	j1, err := r.s.Submit("decel", "u", 1, 90*time.Minute, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.e.RunUntil(10 * time.Hour)
	if j1.State != sched.JobCompleted {
		t.Fatalf("first run state = %v ext=%d", j1.State, j1.Extensions)
	}
	if r.kb.Correction("decel") == 1.0 {
		t.Error("no correction learned from first run")
	}
	if len(r.kb.RunsFor("decel")) != 1 {
		t.Error("run record missing")
	}
}

func TestAssessResolvesPredictions(t *testing.T) {
	r := newRig(t, DefaultConfig(), sched.ExtensionPolicy{MaxPerJob: 5, MaxTotalPerJob: 10 * time.Hour})
	r.noteEnds()
	j := r.launch(t, "under", 100, time.Minute, time.Hour)
	r.loop.RunEvery(sim.VirtualClock{Engine: r.e}, 5*time.Minute, nil)
	r.e.RunUntil(5 * time.Hour)
	if j.State != sched.JobCompleted {
		t.Fatalf("state = %v", j.State)
	}
	if r.ctl.Pending() != 0 {
		t.Errorf("unresolved predictions: %d", r.ctl.Pending())
	}
	eff := r.kb.Assess("scheduler-case")
	if eff.Plans == 0 || eff.Resolved != eff.Plans {
		t.Errorf("effectiveness = %+v", eff)
	}
	if eff.MeanRelErr > 0.2 {
		t.Errorf("prediction error %.2f too large for constant-rate app", eff.MeanRelErr)
	}
}

func TestConfidenceGateBlocksEarlyActions(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg, sched.ExtensionPolicy{MaxPerJob: 5, MaxTotalPerJob: 10 * time.Hour})
	r.noteEnds()
	// Gate at an unreachably high confidence: nothing executes.
	r.loop.Guards = []core.Guardrail{core.ConfidenceGate{Min: 0.999}}
	j := r.launch(t, "under", 100, time.Minute, time.Hour)
	r.loop.RunEvery(sim.VirtualClock{Engine: r.e}, 5*time.Minute, nil)
	r.e.RunUntil(5 * time.Hour)
	if j.State != sched.JobKilledWalltime {
		t.Fatalf("state = %v, want killed (loop gated)", j.State)
	}
	if r.loop.Metrics().VetoedActions == 0 {
		t.Error("gate never vetoed")
	}
	if j.Extensions != 0 {
		t.Error("extension slipped past the gate")
	}
}

func TestRestartResetsEstimator(t *testing.T) {
	r := newRig(t, DefaultConfig(), sched.DefaultExtensionPolicy())
	r.noteEnds()
	j := r.launch(t, "requeued", 300, time.Minute, 8*time.Hour)
	r.loop.RunEvery(sim.VirtualClock{Engine: r.e}, 5*time.Minute, nil)
	r.e.RunUntil(30 * time.Minute)
	if _, ok := r.ctl.estimators[j.ID]; !ok {
		t.Fatal("estimator missing")
	}
	old := r.ctl.startSeen[j.ID]
	if err := r.s.Requeue(j.ID); err != nil {
		t.Fatal(err)
	}
	r.e.RunUntil(time.Hour)
	if r.ctl.startSeen[j.ID] == old {
		t.Error("estimator not reset after restart")
	}
}

// TestProportionalBufferReducesExtensionCount documents the design choice
// DESIGN.md calls out: on a decelerating application, fixed-size buffers
// nibble at the deadline and burn the scheduler's count cap, while the
// proportional margin requests fewer, larger extensions.
func TestProportionalBufferReducesExtensionCount(t *testing.T) {
	run := func(fixedOnly bool) (extensions int, state sched.JobState) {
		cfg := DefaultConfig()
		cfg.FixedBufferOnly = fixedOnly
		r := newRig(t, cfg, sched.ExtensionPolicy{MaxPerJob: 25, MaxTotalPerJob: 100 * time.Hour})
		r.noteEnds()
		r.loop.RunEvery(sim.VirtualClock{Engine: r.e}, 5*time.Minute, nil)
		spec := app.Spec{
			Name: "decel", TotalIters: 120, IterTime: sim.Constant{V: time.Minute},
			DriftPerIter: 0.01,
		}
		r.rt.RegisterSpec("decel", spec)
		j, err := r.s.Submit("decel", "u", 1, 90*time.Minute, 0)
		if err != nil {
			t.Fatal(err)
		}
		r.e.RunUntil(12 * time.Hour)
		return j.Extensions, j.State
	}
	propExt, propState := run(false)
	fixedExt, fixedState := run(true)
	if propState != sched.JobCompleted || fixedState != sched.JobCompleted {
		t.Fatalf("states: prop=%v fixed=%v", propState, fixedState)
	}
	if propExt >= fixedExt {
		t.Errorf("proportional buffer used %d extensions, fixed used %d; want fewer", propExt, fixedExt)
	}
}

func TestRoundUp(t *testing.T) {
	if got := roundUp(7*time.Minute, 5*time.Minute); got != 10*time.Minute {
		t.Errorf("roundUp = %v", got)
	}
	if got := roundUp(10*time.Minute, 5*time.Minute); got != 10*time.Minute {
		t.Errorf("exact roundUp = %v", got)
	}
	if got := roundUp(7*time.Minute, 0); got != 7*time.Minute {
		t.Errorf("zero gran = %v", got)
	}
}

func TestNilDependencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(DefaultConfig(), nil, nil, nil, nil, nil)
}

// TestLoopEventsOnBus checks the walltime-extension loop publishes its
// lifecycle on an attached bus while extending an underestimated job.
func TestLoopEventsOnBus(t *testing.T) {
	r := newRig(t, DefaultConfig(), sched.ExtensionPolicy{MaxPerJob: 3, MaxTotalPerJob: 10 * time.Hour})
	r.noteEnds()
	r.launch(t, "under", 100, time.Minute, 60*time.Minute)
	b := bus.New()
	counts := map[string]int{}
	b.Subscribe("loop.*", func(e bus.Envelope) {
		counts[e.Topic[strings.LastIndexByte(e.Topic, '.')+1:]]++
	})
	r.loop.Bus = b
	r.loop.RunEvery(sim.VirtualClock{Engine: r.e}, 5*time.Minute, nil)
	r.e.RunUntil(3 * time.Hour)
	if counts["finding"] == 0 || counts["plan"] == 0 || counts["execute"] == 0 {
		t.Errorf("loop events = %v; want finding, plan, and execute envelopes", counts)
	}
}
