package schedcase

import (
	"time"

	"autoloop/internal/control"
)

// CaseName is the spec vocabulary for this loop under the control plane.
const CaseName = "scheduler"

// FleetPriority is the case's recommended arbitration priority under a
// fleet coordinator: walltime stewardship is a workload-side optimization,
// below facility and maintenance loops.
const FleetPriority = 5

// Factory registers the walltime-extension loop with the control plane.
func Factory() control.CaseFactory {
	return control.CaseFactory{
		Name:     CaseName,
		Doc:      "walltime stewardship: TTC projection per running job, extension requests with confidence-weighted safety margins, checkpoint fallback",
		Requires: []control.Capability{control.CapQuerier, control.CapScheduler, control.CapApps, control.CapKnowledge, control.CapClock},
		Defaults: func() interface{} { cfg := DefaultConfig(); return &cfg },
		Priority: FleetPriority,
		Period:   control.Duration(5 * time.Minute),
		Build: func(env *control.Env, cfg interface{}) ([]control.BuiltLoop, error) {
			c := New(*cfg.(*Config), env.Querier, env.Scheduler, env.Apps, env.Knowledge, env.Clock)
			return []control.BuiltLoop{{Loop: c.Loop()}}, nil
		},
	}
}
