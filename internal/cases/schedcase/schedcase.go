// Package schedcase implements the paper's initial use case (Fig. 3): a
// MAPE-K autonomy loop that monitors application progress markers, analyzes
// projected time-to-completion against the remaining allocation — informed by
// prior Knowledge of the application's history — plans a walltime extension
// (or a checkpoint, when extensions are exhausted), and executes it through
// the scheduler's extension hook, then assesses the outcome to refine the
// Knowledge.
//
// The paper prescribes each piece:
//
//   - Monitor: "progress of an application ... via markers that could be
//     output by an application (e.g., simulation time-step)".
//   - Analyze: "the progress relative to representative historical
//     application run times" stored with metadata in the knowledge base.
//   - Plan: "take into account prior Knowledge of running time and progress
//     rate", planning a run-time extension.
//   - Execute: "the scheduler may deny the request or provide a shorter
//     extension than requested" — the loop must observe whether it was
//     honored.
//   - Assess: record over/under-estimation and refine Knowledge.
package schedcase

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"autoloop/internal/analytics"
	"autoloop/internal/app"
	"autoloop/internal/core"
	"autoloop/internal/knowledge"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
)

// Config tunes the Scheduler-case loop.
type Config struct {
	// Window is the number of progress markers the rate fit uses.
	Window int
	// Z is the z-score for the TTC safety bound (1.645 ~ 90%).
	Z float64
	// Buffer is the minimum safety margin added to extensions.
	Buffer time.Duration
	// Granularity rounds extension requests up (schedulers think in
	// minutes, not nanoseconds).
	Granularity time.Duration
	// MinSamples gates analysis until enough markers arrived.
	MinSamples int
	// UseKnowledge applies learned per-app correction factors and
	// prior-run history (EXP-A1 ablates this).
	UseKnowledge bool
	// CheckpointFallback plans a checkpoint when the job still projects
	// to overrun but extensions are exhausted or denied.
	CheckpointFallback bool
	// FixedBufferOnly disables the proportional safety margin on extension
	// sizes (ablation: without it the planner nibbles small extensions and
	// exhausts the scheduler's per-job count cap on drifting applications).
	FixedBufferOnly bool
}

// DefaultConfig returns the configuration used by the headline experiment.
func DefaultConfig() Config {
	return Config{
		Window:             30,
		Z:                  1.645,
		Buffer:             5 * time.Minute,
		Granularity:        5 * time.Minute,
		MinSamples:         5,
		UseKnowledge:       true,
		CheckpointFallback: true,
	}
}

// Controller holds the loop's state and wires the MAPE phases. One
// controller manages every running job; per-job estimator state makes it
// semantically "one classical loop per application" as the paper describes,
// multiplexed for efficiency.
type Controller struct {
	cfg   Config
	db    telemetry.Querier
	sch   *sched.Scheduler
	apps  *app.Runtime
	kb    *knowledge.Base
	clock sim.Clock

	estimators map[int]*analytics.TTCEstimator
	startSeen  map[int]time.Duration
	lastPoll   map[int]time.Duration
	// conf tracks realized TTC accuracy per application name.
	conf map[string]*analytics.ConfidenceTracker
	// predictions awaiting resolution: jobID -> predicted completion time
	// and the KB plan index.
	pending map[int]prediction
}

type prediction struct {
	predictedEnd time.Duration
	planIdx      int
	honored      bool
}

// New builds the controller.
func New(cfg Config, db telemetry.Querier, sch *sched.Scheduler, apps *app.Runtime, kb *knowledge.Base, clock sim.Clock) *Controller {
	if db == nil || sch == nil || apps == nil || kb == nil {
		panic("schedcase: nil dependency")
	}
	if cfg.Window < 2 {
		cfg.Window = 30
	}
	if cfg.MinSamples < 2 {
		cfg.MinSamples = 2
	}
	return &Controller{
		cfg: cfg, db: db, sch: sch, apps: apps, kb: kb, clock: clock,
		estimators: make(map[int]*analytics.TTCEstimator),
		startSeen:  make(map[int]time.Duration),
		lastPoll:   make(map[int]time.Duration),
		conf:       make(map[string]*analytics.ConfidenceTracker),
		pending:    make(map[int]prediction),
	}
}

// Loop assembles the core.Loop around this controller. Callers may further
// configure mode, guards, audit, and notifier before running it.
func (c *Controller) Loop() *core.Loop {
	l := core.NewLoop("scheduler-case",
		core.MonitorFunc(c.observe),
		core.AnalyzerFunc(c.analyze),
		core.PlannerFunc(c.plan),
		core.ExecutorFunc(c.execute),
	)
	l.K = c.kb
	l.Clock = c.clock
	l.Assess = core.AssessorFunc(c.assess)
	return l
}

// observe is the Monitor phase: gather fresh progress markers per running
// job from the TSDB. Markers stream straight from the store into the
// observation through QueryVisit — no intermediate []Series materialization
// per job per tick.
func (c *Controller) observe(now time.Duration) (core.Observation, error) {
	obs := core.Observation{Time: now}
	for _, j := range c.sch.Running() {
		label := telemetry.Labels{"job": strconv.Itoa(j.ID)}
		from := c.lastPoll[j.ID]
		c.db.QueryVisit("app.progress", label, from, now, func(labels telemetry.Labels, samples []telemetry.Sample) {
			for _, smp := range samples {
				obs.Points = append(obs.Points, telemetry.Point{
					Name: "app.progress", Labels: labels, Time: smp.Time, Value: smp.Value,
				})
			}
		})
		if total, ok := c.db.LatestValue("app.progress_total", label); ok {
			obs.Points = append(obs.Points, telemetry.Point{
				Name: "app.progress_total", Labels: label, Time: now, Value: total,
			})
		}
		c.lastPoll[j.ID] = now + 1 // half-open window for the next poll
	}
	return obs, nil
}

// analyze is the Analyze phase: update per-job estimators and flag jobs whose
// projected completion exceeds the remaining allocation.
func (c *Controller) analyze(now time.Duration, obs core.Observation) (core.Symptoms, error) {
	sym := core.Symptoms{Time: now}
	// Feed markers into estimators.
	for _, p := range obs.Points {
		id, err := strconv.Atoi(p.Labels["job"])
		if err != nil {
			continue
		}
		j, ok := c.sch.Job(id)
		if !ok || j.State != sched.JobRunning {
			continue
		}
		est := c.estimator(j)
		switch p.Name {
		case "app.progress":
			est.Observe(p.Time.Seconds(), p.Value)
		case "app.progress_total":
			est.SetTotal(p.Value)
		}
	}
	// Evaluate every running job with a warmed-up estimator.
	for _, j := range c.sch.Running() {
		est, ok := c.estimators[j.ID]
		if !ok {
			continue
		}
		ttc := est.Estimate(c.cfg.Z)
		if !ttc.OK() || ttc.N < c.cfg.MinSamples {
			continue
		}
		remaining := j.Remaining(now)
		basis := c.correctedRemaining(j, ttc)
		if basis+c.cfg.Buffer <= remaining {
			continue // on track
		}
		// Act only when genuinely short, but then ask for proportional
		// headroom: few meaningful extensions instead of deadline nibbles
		// that exhaust the scheduler's count cap.
		shortfall := basis + c.buffer(basis) - remaining
		sym.Findings = append(sym.Findings, core.Finding{
			Kind:       "ttc-exceeds-walltime",
			Subject:    strconv.Itoa(j.ID),
			Value:      shortfall.Seconds(),
			Confidence: c.confidence(j, ttc),
			Detail: fmt.Sprintf("projected %v remaining (rate %.3f/s, n=%d) vs %v allocation left",
				basis.Truncate(time.Second), ttc.Rate, ttc.N, remaining.Truncate(time.Second)),
		})
	}
	return sym, nil
}

// estimator returns the job's estimator, resetting it when the job restarted
// (requeue/resubmit changes Start).
func (c *Controller) estimator(j *sched.Job) *analytics.TTCEstimator {
	est, ok := c.estimators[j.ID]
	if !ok || c.startSeen[j.ID] != j.Start {
		est = analytics.NewTTCEstimator(c.cfg.Window)
		c.estimators[j.ID] = est
		c.startSeen[j.ID] = j.Start
	}
	return est
}

// correctedRemaining blends the live estimate with Knowledge: the safety
// bound of the fit, scaled by the application's learned correction factor,
// and sanity-checked against the typical historical runtime.
func (c *Controller) correctedRemaining(j *sched.Job, ttc analytics.TTC) time.Duration {
	basis := ttc.Hi
	if !c.cfg.UseKnowledge {
		return basis
	}
	corr := c.kb.Correction(j.Name)
	basis = time.Duration(float64(basis) * corr)
	// Historical sanity check: the projection of remaining+elapsed should not
	// wildly exceed the historical median; if it does, trust history's scale.
	if typical, ok := c.kb.TypicalRuntime(j.Name); ok {
		elapsed := c.clock.Now() - j.Start
		projected := elapsed + basis
		if projected > 3*typical {
			basis = 3*typical - elapsed
			if basis < 0 {
				basis = ttc.Hi
			}
		}
	}
	return basis
}

// confidence combines the estimator's interval tightness with the
// application's realized forecast accuracy.
func (c *Controller) confidence(j *sched.Job, ttc analytics.TTC) float64 {
	tight := 1.0
	if ttc.Remaining > 0 {
		width := float64(ttc.Hi-ttc.Lo) / float64(2*ttc.Remaining)
		tight = 1 / (1 + width)
	}
	tracker := c.tracker(j.Name)
	conf := math.Sqrt(tight * tracker.Confidence())
	if conf > 1 {
		conf = 1
	}
	return conf
}

// buffer returns the safety margin for a projected remaining time: at least
// the configured floor, and proportionally larger for long projections so
// extensions come in few, meaningful chunks rather than nibbles that exhaust
// the scheduler's count cap.
func (c *Controller) buffer(basis time.Duration) time.Duration {
	if c.cfg.FixedBufferOnly {
		return c.cfg.Buffer
	}
	prop := time.Duration(float64(basis) * 0.15)
	if prop > c.cfg.Buffer {
		return prop
	}
	return c.cfg.Buffer
}

func (c *Controller) tracker(appName string) *analytics.ConfidenceTracker {
	tr, ok := c.conf[appName]
	if !ok {
		tr = analytics.NewConfidenceTracker(0.25, 0.3)
		c.conf[appName] = tr
	}
	return tr
}

// plan is the Plan phase: turn shortfall findings into extension requests,
// falling back to checkpoints when the scheduler can no longer extend.
func (c *Controller) plan(now time.Duration, sym core.Symptoms) (core.Plan, error) {
	plan := core.Plan{Time: now}
	policy := c.sch.Policy()
	for _, f := range sym.Findings {
		if f.Kind != "ttc-exceeds-walltime" {
			continue
		}
		id, err := strconv.Atoi(f.Subject)
		if err != nil {
			continue
		}
		j, ok := c.sch.Job(id)
		if !ok || j.State != sched.JobRunning {
			continue
		}
		need := time.Duration(f.Value * float64(time.Second))
		need = roundUp(need, c.cfg.Granularity)

		exhausted := (policy.MaxPerJob > 0 && j.Extensions >= policy.MaxPerJob) ||
			(policy.MaxTotalPerJob > 0 && j.ExtensionTotal >= policy.MaxTotalPerJob)
		if exhausted {
			if c.cfg.CheckpointFallback {
				plan.Actions = append(plan.Actions, core.Action{
					Kind: "checkpoint", Subject: f.Subject, Confidence: f.Confidence,
					Explanation: fmt.Sprintf("extensions exhausted (%d used, %v total); checkpoint to preserve work",
						j.Extensions, j.ExtensionTotal),
				})
			}
			continue
		}
		plan.Actions = append(plan.Actions, core.Action{
			Kind: "extend-walltime", Subject: f.Subject, Amount: need.Seconds(),
			Confidence:  f.Confidence,
			Explanation: f.Detail,
		})
	}
	return plan, nil
}

// execute is the Execute phase: drive the scheduler extension hook or the
// application checkpoint hook.
func (c *Controller) execute(now time.Duration, a core.Action) (core.ActionResult, error) {
	id, err := strconv.Atoi(a.Subject)
	if err != nil {
		return core.ActionResult{}, fmt.Errorf("schedcase: bad subject %q", a.Subject)
	}
	switch a.Kind {
	case "extend-walltime":
		res := c.sch.RequestExtension(id, time.Duration(a.Amount*float64(time.Second)))
		return core.ActionResult{
			Action:  a,
			Honored: res.Granted > 0,
			Granted: res.Granted.Seconds(),
			Detail:  res.Reason,
		}, nil
	case "checkpoint":
		inst, ok := c.apps.Instance(id)
		if !ok {
			return core.ActionResult{}, fmt.Errorf("schedcase: no instance for job %d", id)
		}
		if err := inst.RequestCheckpoint(nil); err != nil {
			return core.ActionResult{Action: a, Detail: err.Error()}, nil
		}
		return core.ActionResult{Action: a, Honored: true, Detail: "checkpoint requested"}, nil
	default:
		return core.ActionResult{}, fmt.Errorf("schedcase: unknown action %q", a.Kind)
	}
}

// assess is the Assess step: record executed plans in Knowledge, to be
// resolved when the job ends.
func (c *Controller) assess(now time.Duration, plan core.Plan, outcome core.Outcome) {
	for _, res := range outcome.Results {
		if res.Action.Kind != "extend-walltime" {
			continue
		}
		id, err := strconv.Atoi(res.Action.Subject)
		if err != nil {
			continue
		}
		j, ok := c.sch.Job(id)
		if !ok {
			continue
		}
		est, ok := c.estimators[id]
		if !ok {
			continue
		}
		ttc := est.Estimate(c.cfg.Z)
		predictedEnd := now + ttc.Remaining
		if p, exists := c.pending[id]; exists {
			// Re-extension: keep the first plan index, refresh the forecast.
			p.predictedEnd = predictedEnd
			p.honored = p.honored || res.Honored
			c.pending[id] = p
			continue
		}
		idx := c.kb.RecordPlan(knowledge.PlanRecord{
			Loop:      "scheduler-case",
			Action:    "extend-walltime",
			At:        now,
			Predicted: predictedEnd.Seconds(),
			Honored:   res.Honored,
			Note:      fmt.Sprintf("job %d (%s)", id, j.Name),
		})
		c.pending[id] = prediction{predictedEnd: predictedEnd, planIdx: idx, honored: res.Honored}
	}
}

// NoteJobEnd must be called by the harness whenever a job reaches a terminal
// state (completed or killed). It resolves outstanding predictions, updates
// confidence and correction factors, and records the run in Knowledge.
func (c *Controller) NoteJobEnd(j *sched.Job) {
	if p, ok := c.pending[j.ID]; ok {
		_ = c.kb.ResolvePlan(p.planIdx, j.End.Seconds(), p.honored)
		if j.State == sched.JobCompleted {
			c.tracker(j.Name).Resolve(p.predictedEnd.Seconds(), j.End.Seconds())
			if c.cfg.UseKnowledge {
				predictedRemaining := (p.predictedEnd - j.Start).Seconds()
				actualRemaining := (j.End - j.Start).Seconds()
				c.kb.ResolveCorrection(j.Name, predictedRemaining, actualRemaining)
			}
		}
		delete(c.pending, j.ID)
	}
	if j.State == sched.JobCompleted || j.State == sched.JobKilledWalltime || j.State == sched.JobKilledMaint {
		c.kb.AddRun(knowledge.RunRecord{
			App:       j.Name,
			User:      j.User,
			Nodes:     j.Nodes,
			Runtime:   j.End - j.Start,
			Walltime:  j.Walltime,
			Completed: j.State == sched.JobCompleted,
			Signature: c.signature(j),
			At:        j.End,
		})
	}
	delete(c.estimators, j.ID)
	delete(c.startSeen, j.ID)
	delete(c.lastPoll, j.ID)
}

// signature summarizes the run's behavior from its telemetry, reducing the
// iteration-time series in place during the visit instead of copying it out.
func (c *Controller) signature(j *sched.Job) analytics.Signature {
	label := telemetry.Labels{"job": strconv.Itoa(j.ID)}
	sig := analytics.Signature{"nodes": float64(j.Nodes)}
	matches := 0
	var mean float64
	c.db.QueryVisit("app.iter_time_ms", label, 0, j.End, func(_ telemetry.Labels, samples []telemetry.Sample) {
		matches++
		var sum float64
		for _, smp := range samples {
			sum += smp.Value
		}
		mean = sum / float64(len(samples))
	})
	if matches == 1 {
		sig["iter_ms"] = mean
	}
	return sig
}

// Pending reports how many extension predictions await resolution (tests).
func (c *Controller) Pending() int { return len(c.pending) }

func roundUp(d, gran time.Duration) time.Duration {
	if gran <= 0 {
		return d
	}
	if rem := d % gran; rem != 0 {
		return d + gran - rem
	}
	return d
}
