// Package cases assembles the six use-case factories into a control-plane
// registry: the one import that makes every loop in this reproduction
// spawnable from a declarative LoopSpec.
package cases

import (
	"autoloop/internal/cases/ioqoscase"
	"autoloop/internal/cases/maintcase"
	"autoloop/internal/cases/misconfcase"
	"autoloop/internal/cases/ostcase"
	"autoloop/internal/cases/powercase"
	"autoloop/internal/cases/schedcase"
	"autoloop/internal/control"
	"autoloop/internal/scenario"
)

// Factories returns the six case factories in documentation order.
func Factories() []control.CaseFactory {
	return []control.CaseFactory{
		schedcase.Factory(),
		maintcase.Factory(),
		ioqoscase.Factory(),
		ostcase.Factory(),
		misconfcase.Factory(),
		powercase.Factory(),
	}
}

// NewRegistry returns a control registry with every use case registered.
func NewRegistry() *control.Registry {
	r := control.NewRegistry()
	for _, f := range Factories() {
		r.MustRegister(f)
	}
	return r
}

// ScenarioTemplates returns every case's scenario-engine entry in
// documentation order: the building blocks for composing a scenario fleet.
func ScenarioTemplates() []scenario.Loop {
	return []scenario.Loop{
		schedcase.ScenarioTemplate(),
		maintcase.ScenarioTemplate(),
		ioqoscase.ScenarioTemplate(),
		ostcase.ScenarioTemplate(),
		misconfcase.ScenarioTemplate(),
		powercase.ScenarioTemplate(),
	}
}
