package sched

import (
	"time"
)

// JobState is the lifecycle state of a job.
type JobState int

// Job states.
const (
	JobPending JobState = iota
	JobRunning
	JobCompleted
	JobKilledWalltime // ran out of (possibly extended) walltime
	JobKilledMaint    // killed by a maintenance window
	JobRequeued       // gracefully preempted and returned to the queue
)

// String implements fmt.Stringer.
func (s JobState) String() string {
	switch s {
	case JobPending:
		return "pending"
	case JobRunning:
		return "running"
	case JobCompleted:
		return "completed"
	case JobKilledWalltime:
		return "killed-walltime"
	case JobKilledMaint:
		return "killed-maint"
	case JobRequeued:
		return "requeued"
	}
	return "unknown"
}

// KillReason explains why the scheduler terminated a job.
type KillReason int

// Kill reasons.
const (
	KillWalltime KillReason = iota
	KillMaintenance
	KillRequeue
)

// String implements fmt.Stringer.
func (r KillReason) String() string {
	switch r {
	case KillWalltime:
		return "walltime"
	case KillMaintenance:
		return "maintenance"
	case KillRequeue:
		return "requeue"
	}
	return "unknown"
}

// Job is a batch job. The scheduler owns all fields; loop components read
// them and act through scheduler methods only.
type Job struct {
	ID   int
	Name string
	User string

	Nodes    int           // whole nodes requested
	Walltime time.Duration // requested limit at submission

	Submit time.Duration
	Start  time.Duration
	End    time.Duration
	State  JobState

	// Deadline is Start + Walltime + granted extensions while running.
	Deadline time.Duration

	// AssignedNodes is the node set while running.
	AssignedNodes []string

	// Extension accounting (trust guardrails, §III(iv)).
	Extensions     int
	ExtensionTotal time.Duration

	// Backfilled records whether the job started via backfill.
	Backfilled bool

	// Requeues counts graceful preemptions (maintenance case).
	Requeues int

	// Resubmission lineage: 0 for original submissions, else the job ID this
	// one re-ran after a kill.
	ResubmitOf int
}

// Remaining returns the walltime remaining before the deadline at time now
// for a running job (zero if not running or past deadline).
func (j *Job) Remaining(now time.Duration) time.Duration {
	if j.State != JobRunning || now >= j.Deadline {
		return 0
	}
	return j.Deadline - now
}

// Wait returns the queue wait the job experienced (valid once started).
func (j *Job) Wait() time.Duration {
	if j.Start < j.Submit {
		return 0
	}
	return j.Start - j.Submit
}
