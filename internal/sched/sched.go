// Package sched implements a SLURM-like batch scheduler for the simulated
// cluster: an FCFS queue with EASY backfill, whole-node allocation, walltime
// enforcement, maintenance reservations, graceful requeue, and — central to
// the paper's Scheduler use case — a run-time extension API equivalent to
// SLURM's `scontrol update TimeLimit`, governed by a trust policy
// (extension-count and total caps, backfill guard).
//
// The scheduler is a *managed system* in MAPE-K terms: autonomy loops observe
// it through telemetry and job state, and act on it only through Submit,
// RequestExtension, and Requeue — the same narrow hooks a production
// deployment would expose.
package sched

import (
	"fmt"
	"sort"
	"time"

	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
)

// ExtensionPolicy is the trust policy for run-time extensions (§III(iv):
// "additional controls, such as limits on the number and overall time of
// extensions for a single application").
type ExtensionPolicy struct {
	// MaxPerJob caps how many extensions one job may receive (0 = none).
	MaxPerJob int
	// MaxTotalPerJob caps the cumulative extension per job.
	MaxTotalPerJob time.Duration
	// BackfillGuard denies extensions that would delay the queue-head job's
	// reservation, protecting other users (the paper's trust concern).
	BackfillGuard bool
}

// DefaultExtensionPolicy allows three extensions totalling at most 4h, with
// the backfill guard on.
func DefaultExtensionPolicy() ExtensionPolicy {
	return ExtensionPolicy{MaxPerJob: 3, MaxTotalPerJob: 4 * time.Hour, BackfillGuard: true}
}

// ExtensionResult reports the outcome of an extension request.
type ExtensionResult struct {
	Granted time.Duration // zero when denied
	Reason  string        // human-readable explanation for the audit trail
}

// StartFn is invoked when the scheduler starts a job; the application
// framework begins simulated execution.
type StartFn func(j *Job)

// KillFn is invoked when the scheduler terminates a running job.
type KillFn func(j *Job, reason KillReason)

// Stats aggregates scheduler-level outcomes; experiments read these to build
// the paper's incentive metrics (§III(v)).
type Stats struct {
	Submitted     int
	Started       int
	Completed     int
	KilledWall    int
	KilledMaint   int
	Requeued      int
	BackfillStart int

	WaitSum   time.Duration
	WaitCount int

	// NodeSecondsUsed counts productive occupancy (completed jobs);
	// NodeSecondsWasted counts occupancy of jobs killed at the walltime or
	// maintenance limit — work thrown away.
	NodeSecondsUsed   float64
	NodeSecondsWasted float64

	ExtensionRequests int
	ExtensionsGranted int
	ExtensionsPartial int
	ExtensionsDenied  int
	ExtensionGranted  time.Duration

	// UntakenBackfillDelay accumulates how much granted extensions delayed
	// the queue head's reservation (only when the guard is off), quantifying
	// the paper's "untaken backfill opportunities".
	UntakenBackfillDelay time.Duration
}

// MeanWait returns the average queue wait of started jobs.
func (s Stats) MeanWait() time.Duration {
	if s.WaitCount == 0 {
		return 0
	}
	return s.WaitSum / time.Duration(s.WaitCount)
}

// window is a full-system maintenance reservation.
type window struct{ start, end time.Duration }

// Scheduler is the batch scheduler.
type Scheduler struct {
	engine *sim.Engine
	policy ExtensionPolicy

	nodes []string
	free  map[string]bool

	pending []*Job
	jobs    map[int]*Job
	nextID  int

	startFn StartFn
	killFn  KillFn

	maint []window
	stats Stats
}

// New builds a scheduler over the given node IDs.
func New(engine *sim.Engine, nodes []string, policy ExtensionPolicy) *Scheduler {
	if len(nodes) == 0 {
		panic("sched: no nodes")
	}
	s := &Scheduler{
		engine: engine,
		policy: policy,
		nodes:  append([]string(nil), nodes...),
		free:   make(map[string]bool, len(nodes)),
		jobs:   make(map[int]*Job),
	}
	sort.Strings(s.nodes)
	for _, n := range s.nodes {
		s.free[n] = true
	}
	return s
}

// SetHooks installs the start/kill callbacks. It must be called before the
// first Submit.
func (s *Scheduler) SetHooks(start StartFn, kill KillFn) {
	s.startFn = start
	s.killFn = kill
}

// Policy returns the active extension policy.
func (s *Scheduler) Policy() ExtensionPolicy { return s.policy }

// SetPolicy replaces the extension policy (experiments sweep it).
func (s *Scheduler) SetPolicy(p ExtensionPolicy) { s.policy = p }

// NumNodes returns the size of the managed node pool.
func (s *Scheduler) NumNodes() int { return len(s.nodes) }

// Job returns the job with the given ID.
func (s *Scheduler) Job(id int) (*Job, bool) {
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns all jobs ever submitted, in ID order.
func (s *Scheduler) Jobs() []*Job {
	ids := make([]int, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]*Job, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.jobs[id])
	}
	return out
}

// Running returns the currently running jobs in ID order.
func (s *Scheduler) Running() []*Job {
	var out []*Job
	for _, j := range s.Jobs() {
		if j.State == JobRunning {
			out = append(out, j)
		}
	}
	return out
}

// QueueLen returns the number of pending jobs.
func (s *Scheduler) QueueLen() int { return len(s.pending) }

// Stats returns a snapshot of scheduler statistics.
func (s *Scheduler) Stats() Stats { return s.stats }

// Submit enqueues a job and triggers a scheduling pass. resubmitOf links a
// resubmission to the killed job it re-runs (0 for none).
func (s *Scheduler) Submit(name, user string, nodes int, walltime time.Duration, resubmitOf int) (*Job, error) {
	if nodes <= 0 || nodes > len(s.nodes) {
		return nil, fmt.Errorf("sched: job %q requests %d nodes, cluster has %d", name, nodes, len(s.nodes))
	}
	if walltime <= 0 {
		return nil, fmt.Errorf("sched: job %q has non-positive walltime", name)
	}
	s.nextID++
	j := &Job{
		ID:         s.nextID,
		Name:       name,
		User:       user,
		Nodes:      nodes,
		Walltime:   walltime,
		Submit:     s.engine.Now(),
		State:      JobPending,
		ResubmitOf: resubmitOf,
	}
	s.jobs[j.ID] = j
	s.pending = append(s.pending, j)
	s.stats.Submitted++
	s.schedule()
	return j, nil
}

// JobFinished is called by the application framework when a job's work
// completes before its deadline.
func (s *Scheduler) JobFinished(jobID int) {
	j, ok := s.jobs[jobID]
	if !ok || j.State != JobRunning {
		return
	}
	j.State = JobCompleted
	j.End = s.engine.Now()
	s.stats.Completed++
	s.stats.NodeSecondsUsed += (j.End - j.Start).Seconds() * float64(j.Nodes)
	s.releaseNodes(j)
	s.schedule()
}

// Requeue gracefully preempts a running job back into the pending queue (the
// maintenance loop checkpoints the application first, then requeues).
func (s *Scheduler) Requeue(jobID int) error {
	j, ok := s.jobs[jobID]
	if !ok {
		return fmt.Errorf("sched: unknown job %d", jobID)
	}
	if j.State != JobRunning {
		return fmt.Errorf("sched: job %d is %s, not running", jobID, j.State)
	}
	if s.killFn != nil {
		s.killFn(j, KillRequeue)
	}
	s.stats.NodeSecondsUsed += (s.engine.Now() - j.Start).Seconds() * float64(j.Nodes)
	s.releaseNodes(j)
	j.State = JobPending
	j.Requeues++
	j.Submit = s.engine.Now()
	s.stats.Requeued++
	s.pending = append(s.pending, j)
	s.sortPending()
	s.schedule()
	return nil
}

// AddMaintenance reserves a full-system maintenance window. Jobs running at
// its start are killed; nothing starts that would overlap it.
func (s *Scheduler) AddMaintenance(start, end time.Duration) error {
	now := s.engine.Now()
	if end <= start || start < now {
		return fmt.Errorf("sched: invalid maintenance window [%v, %v] at %v", start, end, now)
	}
	s.maint = append(s.maint, window{start, end})
	sort.Slice(s.maint, func(i, k int) bool { return s.maint[i].start < s.maint[k].start })
	s.engine.At(start, func() { s.beginMaintenance(start, end) })
	s.engine.At(end, func() { s.schedule() })
	return nil
}

// Maintenance returns upcoming or active maintenance windows at time now.
func (s *Scheduler) Maintenance(now time.Duration) [][2]time.Duration {
	var out [][2]time.Duration
	for _, w := range s.maint {
		if w.end > now {
			out = append(out, [2]time.Duration{w.start, w.end})
		}
	}
	return out
}

func (s *Scheduler) beginMaintenance(start, end time.Duration) {
	for _, j := range s.Running() {
		s.kill(j, KillMaintenance)
	}
	_ = start
	_ = end
}

// kill terminates a running job with the given reason.
func (s *Scheduler) kill(j *Job, reason KillReason) {
	if j.State != JobRunning {
		return
	}
	if s.killFn != nil {
		s.killFn(j, reason)
	}
	j.End = s.engine.Now()
	occupied := (j.End - j.Start).Seconds() * float64(j.Nodes)
	switch reason {
	case KillWalltime:
		j.State = JobKilledWalltime
		s.stats.KilledWall++
		s.stats.NodeSecondsWasted += occupied
	case KillMaintenance:
		j.State = JobKilledMaint
		s.stats.KilledMaint++
		s.stats.NodeSecondsWasted += occupied
	}
	s.releaseNodes(j)
	s.schedule()
}

func (s *Scheduler) releaseNodes(j *Job) {
	for _, n := range j.AssignedNodes {
		s.free[n] = true
	}
	j.AssignedNodes = nil
}

func (s *Scheduler) freeCount() int {
	c := 0
	for _, ok := range s.free {
		if ok {
			c++
		}
	}
	return c
}

func (s *Scheduler) sortPending() {
	sort.SliceStable(s.pending, func(i, k int) bool {
		if s.pending[i].Submit != s.pending[k].Submit {
			return s.pending[i].Submit < s.pending[k].Submit
		}
		return s.pending[i].ID < s.pending[k].ID
	})
}

// maintenanceBlocks reports whether a job starting at t with limit wall would
// overlap any maintenance window.
func (s *Scheduler) maintenanceBlocks(t, wall time.Duration) bool {
	end := t + wall
	for _, w := range s.maint {
		if t < w.end && end > w.start {
			return true
		}
	}
	return false
}

// nextMaintenanceEndAfter returns the end of the maintenance window that
// blocks a start at t with the given walltime, or t if none blocks.
func (s *Scheduler) nextMaintenanceEndAfter(t, wall time.Duration) time.Duration {
	for _, w := range s.maint {
		if t < w.end && t+wall > w.start {
			return w.end
		}
	}
	return t
}

// start launches job j on free nodes now.
func (s *Scheduler) start(j *Job, backfilled bool) {
	now := s.engine.Now()
	assigned := make([]string, 0, j.Nodes)
	for _, n := range s.nodes {
		if s.free[n] {
			assigned = append(assigned, n)
			if len(assigned) == j.Nodes {
				break
			}
		}
	}
	if len(assigned) < j.Nodes {
		panic("sched: start called without capacity")
	}
	for _, n := range assigned {
		s.free[n] = false
	}
	j.AssignedNodes = assigned
	j.State = JobRunning
	j.Start = now
	j.Deadline = now + j.Walltime
	j.Backfilled = backfilled
	s.stats.Started++
	if backfilled {
		s.stats.BackfillStart++
	}
	s.stats.WaitSum += j.Wait()
	s.stats.WaitCount++
	s.scheduleDeadlineCheck(j)
	if s.startFn != nil {
		s.startFn(j)
	}
}

// scheduleDeadlineCheck arms the walltime kill for j's current deadline. A
// later extension re-arms; stale checks notice the moved deadline and do
// nothing.
func (s *Scheduler) scheduleDeadlineCheck(j *Job) {
	deadline := j.Deadline
	s.engine.At(deadline, func() {
		if j.State == JobRunning && j.Deadline <= s.engine.Now() {
			s.kill(j, KillWalltime)
		}
	})
}

// canStartNow reports whether j could start at the current instant.
func (s *Scheduler) canStartNow(j *Job) bool {
	now := s.engine.Now()
	return s.freeCount() >= j.Nodes && !s.maintenanceBlocks(now, j.Walltime)
}

// headReservation computes, for the blocked queue head, the EASY shadow time
// (earliest instant it could start given running jobs' deadlines and
// maintenance) and the number of extra nodes free at that instant beyond the
// head's need.
func (s *Scheduler) headReservation(head *Job) (shadow time.Duration, extra int) {
	now := s.engine.Now()
	avail := s.freeCount()
	type rel struct {
		at    time.Duration
		nodes int
	}
	var rels []rel
	for _, j := range s.Jobs() {
		if j.State == JobRunning {
			rels = append(rels, rel{j.Deadline, j.Nodes})
		}
	}
	sort.Slice(rels, func(i, k int) bool { return rels[i].at < rels[k].at })
	shadow = now
	for avail < head.Nodes && len(rels) > 0 {
		avail += rels[0].nodes
		shadow = rels[0].at
		rels = rels[1:]
	}
	if avail < head.Nodes {
		// Should not happen (Submit validates nodes <= cluster), but guard.
		return shadow, 0
	}
	// Push past maintenance windows the head would overlap.
	for s.maintenanceBlocks(shadow, head.Walltime) {
		shadow = s.nextMaintenanceEndAfter(shadow, head.Walltime)
	}
	return shadow, avail - head.Nodes
}

// schedule runs one FCFS + EASY backfill dispatch pass.
func (s *Scheduler) schedule() {
	now := s.engine.Now()
	s.sortPending()
	for len(s.pending) > 0 {
		head := s.pending[0]
		if s.canStartNow(head) {
			s.pending = s.pending[1:]
			s.start(head, false)
			continue
		}
		// Head is blocked: reserve it, then try to backfill one job.
		shadow, extra := s.headReservation(head)
		backfilled := false
		for i := 1; i < len(s.pending); i++ {
			j := s.pending[i]
			if s.freeCount() < j.Nodes || s.maintenanceBlocks(now, j.Walltime) {
				continue
			}
			if now+j.Walltime <= shadow || j.Nodes <= extra {
				s.pending = append(s.pending[:i], s.pending[i+1:]...)
				s.start(j, true)
				backfilled = true
				break
			}
		}
		if !backfilled {
			return
		}
	}
}

// RequestExtension implements the paper's Execute hook: ask the scheduler to
// extend a running job's walltime. The scheduler may grant in full, grant
// partially (maintenance ahead, caps), or deny (policy, backfill guard) —
// "the scheduler may deny the request or provide a shorter extension than
// requested".
func (s *Scheduler) RequestExtension(jobID int, extra time.Duration) ExtensionResult {
	s.stats.ExtensionRequests++
	j, ok := s.jobs[jobID]
	if !ok || j.State != JobRunning {
		s.stats.ExtensionsDenied++
		return ExtensionResult{Reason: "job not running"}
	}
	if extra <= 0 {
		s.stats.ExtensionsDenied++
		return ExtensionResult{Reason: "non-positive extension"}
	}
	if s.policy.MaxPerJob > 0 && j.Extensions >= s.policy.MaxPerJob {
		s.stats.ExtensionsDenied++
		return ExtensionResult{Reason: fmt.Sprintf("extension count cap (%d) reached", s.policy.MaxPerJob)}
	}
	grant := extra
	reason := "granted"
	if s.policy.MaxTotalPerJob > 0 {
		room := s.policy.MaxTotalPerJob - j.ExtensionTotal
		if room <= 0 {
			s.stats.ExtensionsDenied++
			return ExtensionResult{Reason: fmt.Sprintf("extension total cap (%v) reached", s.policy.MaxTotalPerJob)}
		}
		if grant > room {
			grant = room
			reason = "partial: total cap"
		}
	}
	// A maintenance window truncates the grant.
	for _, w := range s.maint {
		if w.start >= j.Deadline && j.Deadline+grant > w.start {
			grant = w.start - j.Deadline
			reason = "partial: maintenance window"
		}
	}
	if grant <= 0 {
		s.stats.ExtensionsDenied++
		return ExtensionResult{Reason: "maintenance window leaves no room"}
	}
	// Backfill guard: would the head job's reservation slip?
	if len(s.pending) > 0 {
		head := s.pending[0]
		before, _ := s.headReservation(head)
		j.Deadline += grant // trial
		after, _ := s.headReservation(head)
		j.Deadline -= grant
		if delay := after - before; delay > 0 {
			if s.policy.BackfillGuard {
				s.stats.ExtensionsDenied++
				return ExtensionResult{Reason: fmt.Sprintf("backfill guard: would delay job %d by %v", head.ID, delay)}
			}
			s.stats.UntakenBackfillDelay += delay
		}
	}
	j.Deadline += grant
	j.Extensions++
	j.ExtensionTotal += grant
	s.stats.ExtensionGranted += grant
	if grant < extra {
		s.stats.ExtensionsPartial++
	} else {
		s.stats.ExtensionsGranted++
	}
	s.scheduleDeadlineCheck(j)
	return ExtensionResult{Granted: grant, Reason: reason}
}

// Collector exposes the scheduler sensor domain: sched.queue.len,
// sched.jobs.running, sched.nodes.busy, sched.util.
func (s *Scheduler) Collector() telemetry.Collector {
	return telemetry.CollectorFunc(func(now time.Duration) []telemetry.Point {
		busy := len(s.nodes) - s.freeCount()
		running := 0
		for _, j := range s.jobs {
			if j.State == JobRunning {
				running++
			}
		}
		labels := telemetry.Labels{"sched": "main"}
		return []telemetry.Point{
			{Name: "sched.queue.len", Labels: labels, Time: now, Value: float64(len(s.pending))},
			{Name: "sched.jobs.running", Labels: labels, Time: now, Value: float64(running)},
			{Name: "sched.nodes.busy", Labels: labels, Time: now, Value: float64(busy)},
			{Name: "sched.util", Labels: labels, Time: now, Value: float64(busy) / float64(len(s.nodes))},
		}
	})
}
