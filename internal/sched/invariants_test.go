package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"autoloop/internal/sim"
)

// invariantRig runs a random workload while continuously checking scheduler
// invariants.
type invariantRig struct {
	e *sim.Engine
	s *Scheduler
	n int

	violations []string
}

func newInvariantRig(seed int64, nodes int) *invariantRig {
	e := sim.NewEngine(seed)
	ids := make([]string, nodes)
	for i := range ids {
		ids[i] = nodeName(i)
	}
	r := &invariantRig{e: e, n: nodes}
	r.s = New(e, ids, DefaultExtensionPolicy())
	return r
}

// check records an invariant violation.
func (r *invariantRig) check() {
	// Invariant 1: allocated nodes never exceed the pool, and no node is
	// double-allocated.
	seen := map[string]int{}
	busy := 0
	for _, j := range r.s.Jobs() {
		if j.State != JobRunning {
			continue
		}
		if len(j.AssignedNodes) != j.Nodes {
			r.violations = append(r.violations, "running job with wrong node count")
		}
		for _, n := range j.AssignedNodes {
			seen[n]++
			busy++
		}
	}
	for n, c := range seen {
		if c > 1 {
			r.violations = append(r.violations, "node "+n+" double-allocated")
		}
	}
	if busy > r.n {
		r.violations = append(r.violations, "more nodes busy than exist")
	}
	// Invariant 2: no running job is past its deadline (the kill event at
	// the deadline fires before any later event).
	for _, j := range r.s.Jobs() {
		if j.State == JobRunning && r.e.Now() > j.Deadline {
			r.violations = append(r.violations, "running job past deadline")
		}
	}
}

// TestSchedulerInvariantsUnderRandomWorkload drives random submissions,
// completions, extensions, and requeues, checking invariants continuously.
func TestSchedulerInvariantsUnderRandomWorkload(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := newInvariantRig(seed, 8)
		r.s.SetHooks(func(j *Job) {
			// Jobs complete after a random fraction of their walltime
			// (sometimes exceeding it -> killed).
			frac := 0.3 + rng.Float64()
			d := time.Duration(float64(j.Walltime) * frac)
			id := j.ID
			r.e.After(d, func() { r.s.JobFinished(id) })
		}, nil)

		for i := 0; i < 40; i++ {
			at := time.Duration(rng.Int63n(int64(4 * time.Hour)))
			nodes := 1 + rng.Intn(8)
			wall := time.Duration(10+rng.Intn(120)) * time.Minute
			name := "j" + string([]byte{byte('a' + i%26)})
			r.e.At(at, func() {
				_, _ = r.s.Submit(name, "u", nodes, wall, 0)
			})
		}
		// Random extensions and requeues against running jobs.
		r.e.Every(7*time.Minute, 7*time.Minute, func() bool {
			r.check()
			running := r.s.Running()
			if len(running) > 0 {
				j := running[rng.Intn(len(running))]
				switch rng.Intn(3) {
				case 0:
					r.s.RequestExtension(j.ID, time.Duration(1+rng.Intn(60))*time.Minute)
				case 1:
					_ = r.s.Requeue(j.ID)
				}
			}
			return r.e.Now() < 12*time.Hour
		})
		r.e.RunUntil(12 * time.Hour)
		r.check()
		if len(r.violations) > 0 {
			t.Logf("seed %d violations: %v", seed, r.violations[:min(3, len(r.violations))])
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestNoJobLostUnderChurn: every submitted job reaches a terminal state or
// is still legitimately queued/running at the end; none vanish.
func TestNoJobLostUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	r := newInvariantRig(77, 4)
	r.s.SetHooks(func(j *Job) {
		id := j.ID
		r.e.After(time.Duration(rng.Int63n(int64(2*time.Hour))), func() { r.s.JobFinished(id) })
	}, nil)
	_ = r.s.AddMaintenance(3*time.Hour, 4*time.Hour)
	for i := 0; i < 60; i++ {
		at := time.Duration(rng.Int63n(int64(8 * time.Hour)))
		r.e.At(at, func() {
			_, _ = r.s.Submit("x", "u", 1+rng.Intn(4), time.Duration(20+rng.Intn(100))*time.Minute, 0)
		})
	}
	r.e.RunUntil(48 * time.Hour)
	counts := map[JobState]int{}
	for _, j := range r.s.Jobs() {
		counts[j.State]++
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != r.s.Stats().Submitted {
		t.Errorf("job accounting mismatch: %d tracked vs %d submitted", total, r.s.Stats().Submitted)
	}
	if counts[JobPending] != 0 || counts[JobRunning] != 0 {
		t.Errorf("jobs stuck after 48h drain: %v", counts)
	}
	if counts[JobCompleted]+counts[JobKilledWalltime]+counts[JobKilledMaint] != total {
		t.Errorf("non-terminal states remain: %v", counts)
	}
}

// TestBackfillNeverExceedsCapacity exercises heavy backfill pressure.
func TestBackfillNeverExceedsCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := newInvariantRig(5, 6)
	r.s.SetHooks(func(j *Job) {
		id := j.ID
		d := time.Duration(float64(j.Walltime) * (0.5 + rng.Float64()*0.4))
		r.e.After(d, func() { r.s.JobFinished(id) })
	}, nil)
	// Burst of mixed-size jobs at t=0 maximizes backfill decisions.
	for i := 0; i < 30; i++ {
		_, _ = r.s.Submit("b", "u", 1+rng.Intn(6), time.Duration(15+rng.Intn(180))*time.Minute, 0)
	}
	r.e.Every(time.Minute, time.Minute, func() bool {
		r.check()
		return r.e.Now() < 24*time.Hour
	})
	r.e.RunUntil(24 * time.Hour)
	if len(r.violations) > 0 {
		t.Fatalf("violations: %v", r.violations[:min(5, len(r.violations))])
	}
	if r.s.Stats().BackfillStart == 0 {
		t.Error("scenario produced no backfill at all — not exercising the path")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
