package sched

import (
	"testing"
	"time"

	"autoloop/internal/sim"
)

// testRig wires a scheduler whose jobs complete after a per-job "actual
// runtime" registered before submission, mimicking the app framework.
type testRig struct {
	e *sim.Engine
	s *Scheduler
	// actual runtime keyed by job name; zero means run forever (until killed)
	actual map[string]time.Duration
	killed map[int]KillReason
}

func newRig(t *testing.T, nodes int) *testRig {
	t.Helper()
	e := sim.NewEngine(1)
	ids := make([]string, nodes)
	for i := range ids {
		ids[i] = nodeName(i)
	}
	r := &testRig{e: e, actual: map[string]time.Duration{}, killed: map[int]KillReason{}}
	r.s = New(e, ids, DefaultExtensionPolicy())
	r.s.SetHooks(
		func(j *Job) {
			if d, ok := r.actual[j.Name]; ok && d > 0 {
				id := j.ID
				e.After(d, func() { r.s.JobFinished(id) })
			}
		},
		func(j *Job, reason KillReason) { r.killed[j.ID] = reason },
	)
	return r
}

func nodeName(i int) string {
	return string([]byte{'n', byte('0' + i/10), byte('0' + i%10)})
}

func (r *testRig) submit(t *testing.T, name string, nodes int, wall, actual time.Duration) *Job {
	t.Helper()
	r.actual[name] = actual
	j, err := r.s.Submit(name, "u", nodes, wall, 0)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestFCFSStartAndCompletion(t *testing.T) {
	r := newRig(t, 4)
	j := r.submit(t, "a", 2, time.Hour, 30*time.Minute)
	r.e.Run()
	if j.State != JobCompleted {
		t.Fatalf("state = %v", j.State)
	}
	if j.End-j.Start != 30*time.Minute {
		t.Errorf("ran %v, want 30m", j.End-j.Start)
	}
	st := r.s.Stats()
	if st.Completed != 1 || st.Started != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.NodeSecondsUsed != 30*60*2 {
		t.Errorf("NodeSecondsUsed = %v", st.NodeSecondsUsed)
	}
}

func TestWalltimeKill(t *testing.T) {
	r := newRig(t, 2)
	j := r.submit(t, "a", 1, time.Hour, 0) // runs forever
	r.e.RunUntil(2 * time.Hour)
	if j.State != JobKilledWalltime {
		t.Fatalf("state = %v, want killed-walltime", j.State)
	}
	if r.killed[j.ID] != KillWalltime {
		t.Errorf("kill reason = %v", r.killed[j.ID])
	}
	if j.End != time.Hour {
		t.Errorf("killed at %v, want 1h", j.End)
	}
	if got := r.s.Stats().NodeSecondsWasted; got != 3600 {
		t.Errorf("wasted = %v, want 3600", got)
	}
}

func TestQueueingWhenFull(t *testing.T) {
	r := newRig(t, 2)
	a := r.submit(t, "a", 2, time.Hour, 30*time.Minute)
	b := r.submit(t, "b", 2, time.Hour, 10*time.Minute)
	if a.State != JobRunning {
		t.Fatalf("a should start immediately")
	}
	if b.State != JobPending {
		t.Fatalf("b should queue")
	}
	r.e.Run()
	if b.Start != 30*time.Minute {
		t.Errorf("b started at %v, want 30m", b.Start)
	}
	if got := r.s.Stats().MeanWait(); got != 15*time.Minute {
		t.Errorf("mean wait = %v, want 15m", got)
	}
}

func TestEASYBackfillStartsShortJob(t *testing.T) {
	r := newRig(t, 4)
	// a occupies all 4 nodes for 2h (walltime 2h).
	a := r.submit(t, "a", 4, 2*time.Hour, 2*time.Hour-time.Minute)
	// b needs all 4 nodes: blocked until a ends -> shadow at 2h.
	b := r.submit(t, "b", 4, time.Hour, 30*time.Minute)
	// c is small and short: fits before the shadow, must backfill... but a
	// holds all nodes, so nothing is free. Give a only 3 nodes instead.
	_ = a
	_ = b
	r2 := newRig(t, 4)
	a2 := r2.submit(t, "a", 3, 2*time.Hour, 2*time.Hour-time.Minute)
	b2 := r2.submit(t, "b", 4, time.Hour, 30*time.Minute)
	c2 := r2.submit(t, "c", 1, time.Hour, 50*time.Minute) // 1 free node, ends 1h < shadow 2h
	if a2.State != JobRunning {
		t.Fatal("a2 should run")
	}
	if c2.State != JobRunning {
		t.Fatal("c2 should backfill onto the free node")
	}
	if !c2.Backfilled {
		t.Error("c2 should be marked backfilled")
	}
	r2.e.Run()
	if b2.Start < 2*time.Hour-time.Minute {
		t.Errorf("b2 started at %v, must wait for a2", b2.Start)
	}
	if r2.s.Stats().BackfillStart != 1 {
		t.Errorf("BackfillStart = %d", r2.s.Stats().BackfillStart)
	}
}

func TestBackfillDoesNotDelayHead(t *testing.T) {
	r := newRig(t, 4)
	// a: 3 nodes for 1h. Head b: 4 nodes (shadow = 1h).
	r.submit(t, "a", 3, time.Hour, time.Hour-time.Minute)
	b := r.submit(t, "b", 4, time.Hour, 10*time.Minute)
	// c: 1 node, 2h walltime — would run past the shadow and needs the head's
	// nodes (extra = 0), so EASY must NOT backfill it.
	c := r.submit(t, "c", 1, 2*time.Hour, 5*time.Minute)
	if c.State == JobRunning {
		t.Fatal("c must not backfill: it would delay the head")
	}
	r.e.Run()
	if b.Start > time.Hour {
		t.Errorf("head b delayed to %v", b.Start)
	}
}

func TestExtensionGrantedMovesDeadline(t *testing.T) {
	r := newRig(t, 2)
	j := r.submit(t, "a", 1, time.Hour, 90*time.Minute)
	r.e.RunUntil(30 * time.Minute)
	res := r.s.RequestExtension(j.ID, time.Hour)
	if res.Granted != time.Hour {
		t.Fatalf("granted = %v (%s)", res.Granted, res.Reason)
	}
	r.e.Run()
	if j.State != JobCompleted {
		t.Errorf("state = %v, want completed after extension", j.State)
	}
	st := r.s.Stats()
	if st.ExtensionsGranted != 1 || st.ExtensionGranted != time.Hour {
		t.Errorf("stats = %+v", st)
	}
}

func TestExtensionCountCap(t *testing.T) {
	r := newRig(t, 2)
	r.s.SetPolicy(ExtensionPolicy{MaxPerJob: 1, MaxTotalPerJob: 10 * time.Hour})
	j := r.submit(t, "a", 1, time.Hour, 0)
	r.e.RunUntil(10 * time.Minute)
	if res := r.s.RequestExtension(j.ID, 30*time.Minute); res.Granted == 0 {
		t.Fatalf("first extension denied: %s", res.Reason)
	}
	if res := r.s.RequestExtension(j.ID, 30*time.Minute); res.Granted != 0 {
		t.Error("second extension should be denied by count cap")
	}
	if r.s.Stats().ExtensionsDenied != 1 {
		t.Errorf("denied = %d", r.s.Stats().ExtensionsDenied)
	}
}

func TestExtensionTotalCapGrantsPartial(t *testing.T) {
	r := newRig(t, 2)
	r.s.SetPolicy(ExtensionPolicy{MaxPerJob: 10, MaxTotalPerJob: time.Hour})
	j := r.submit(t, "a", 1, 2*time.Hour, 0)
	r.e.RunUntil(10 * time.Minute)
	res := r.s.RequestExtension(j.ID, 90*time.Minute)
	if res.Granted != time.Hour {
		t.Errorf("granted = %v, want partial 1h (%s)", res.Granted, res.Reason)
	}
	if r.s.Stats().ExtensionsPartial != 1 {
		t.Errorf("partial = %d", r.s.Stats().ExtensionsPartial)
	}
	if res := r.s.RequestExtension(j.ID, time.Minute); res.Granted != 0 {
		t.Error("cap exhausted, should deny")
	}
}

func TestExtensionDeniedWhenNotRunning(t *testing.T) {
	r := newRig(t, 2)
	j := r.submit(t, "a", 1, time.Hour, time.Minute)
	r.e.Run()
	if res := r.s.RequestExtension(j.ID, time.Minute); res.Granted != 0 {
		t.Error("completed job must not be extendable")
	}
	if res := r.s.RequestExtension(999, time.Minute); res.Granted != 0 {
		t.Error("unknown job must be denied")
	}
	r2 := newRig(t, 2)
	j2 := r2.submit(t, "a", 1, time.Hour, 0)
	r2.e.RunUntil(time.Minute)
	if res := r2.s.RequestExtension(j2.ID, -time.Minute); res.Granted != 0 {
		t.Error("negative extension must be denied")
	}
}

func TestExtensionBackfillGuard(t *testing.T) {
	r := newRig(t, 2)
	r.s.SetPolicy(ExtensionPolicy{MaxPerJob: 5, MaxTotalPerJob: 10 * time.Hour, BackfillGuard: true})
	a := r.submit(t, "a", 2, time.Hour, 0)
	r.e.RunUntil(10 * time.Minute)
	b := r.submit(t, "b", 2, time.Hour, 10*time.Minute) // queued head, shadow = a's deadline
	if b.State != JobPending {
		t.Fatal("b should be pending")
	}
	res := r.s.RequestExtension(a.ID, time.Hour)
	if res.Granted != 0 {
		t.Errorf("guard should deny extension that delays head (%s)", res.Reason)
	}
	// Without the guard the same request is granted and the delay recorded.
	r.s.SetPolicy(ExtensionPolicy{MaxPerJob: 5, MaxTotalPerJob: 10 * time.Hour, BackfillGuard: false})
	res = r.s.RequestExtension(a.ID, time.Hour)
	if res.Granted != time.Hour {
		t.Errorf("ungated extension denied: %s", res.Reason)
	}
	if got := r.s.Stats().UntakenBackfillDelay; got != time.Hour {
		t.Errorf("UntakenBackfillDelay = %v, want 1h", got)
	}
}

func TestMaintenanceKillsRunningJobs(t *testing.T) {
	r := newRig(t, 2)
	j := r.submit(t, "a", 1, 4*time.Hour, 0)
	if err := r.s.AddMaintenance(time.Hour, 2*time.Hour); err != nil {
		t.Fatal(err)
	}
	r.e.RunUntil(90 * time.Minute)
	if j.State != JobKilledMaint {
		t.Fatalf("state = %v, want killed-maint", j.State)
	}
	if r.killed[j.ID] != KillMaintenance {
		t.Errorf("reason = %v", r.killed[j.ID])
	}
}

func TestMaintenanceBlocksOverlappingStarts(t *testing.T) {
	r := newRig(t, 2)
	if err := r.s.AddMaintenance(time.Hour, 2*time.Hour); err != nil {
		t.Fatal(err)
	}
	// 90-minute walltime submitted at t=0 would overlap the window: must wait
	// until the window ends.
	j := r.submit(t, "a", 1, 90*time.Minute, 10*time.Minute)
	if j.State != JobPending {
		t.Fatal("job should be blocked by upcoming maintenance")
	}
	r.e.Run()
	if j.Start != 2*time.Hour {
		t.Errorf("started at %v, want 2h (after maintenance)", j.Start)
	}
	// A short job fits before the window and starts immediately.
	r2 := newRig(t, 2)
	_ = r2.s.AddMaintenance(time.Hour, 2*time.Hour)
	k := r2.submit(t, "b", 1, 30*time.Minute, 10*time.Minute)
	if k.State != JobRunning {
		t.Error("short job should start before maintenance")
	}
}

func TestExtensionTruncatedByMaintenance(t *testing.T) {
	r := newRig(t, 2)
	j := r.submit(t, "a", 1, time.Hour, 0)
	if err := r.s.AddMaintenance(90*time.Minute, 2*time.Hour); err != nil {
		t.Fatal(err)
	}
	r.e.RunUntil(10 * time.Minute)
	res := r.s.RequestExtension(j.ID, 2*time.Hour)
	if res.Granted != 30*time.Minute {
		t.Errorf("granted = %v, want 30m (truncated at maintenance)", res.Granted)
	}
}

func TestRequeue(t *testing.T) {
	r := newRig(t, 2)
	j := r.submit(t, "a", 2, time.Hour, 0)
	r.e.RunUntil(20 * time.Minute)
	if err := r.s.Requeue(j.ID); err != nil {
		t.Fatal(err)
	}
	if j.State != JobRunning { // immediately rescheduled: cluster is empty
		t.Fatalf("state = %v, want running after requeue onto free cluster", j.State)
	}
	if j.Requeues != 1 {
		t.Errorf("Requeues = %d", j.Requeues)
	}
	if r.killed[j.ID] != KillRequeue {
		t.Errorf("kill hook reason = %v", r.killed[j.ID])
	}
	if err := r.s.Requeue(999); err == nil {
		t.Error("unknown job requeue should error")
	}
}

func TestRequeuedJobNotKilledByStaleDeadline(t *testing.T) {
	r := newRig(t, 2)
	j := r.submit(t, "a", 1, time.Hour, 0)
	r.e.RunUntil(30 * time.Minute)
	_ = r.s.Requeue(j.ID) // restarts immediately, new deadline = 30m + 1h
	r.e.RunUntil(70 * time.Minute)
	if j.State != JobRunning {
		t.Fatalf("stale deadline killed requeued job: %v", j.State)
	}
	r.e.RunUntil(2 * time.Hour)
	if j.State != JobKilledWalltime {
		t.Errorf("state = %v, want killed at new deadline", j.State)
	}
	if j.End != 90*time.Minute {
		t.Errorf("killed at %v, want 90m", j.End)
	}
}

func TestSubmitValidation(t *testing.T) {
	r := newRig(t, 2)
	if _, err := r.s.Submit("a", "u", 0, time.Hour, 0); err == nil {
		t.Error("zero nodes should error")
	}
	if _, err := r.s.Submit("a", "u", 3, time.Hour, 0); err == nil {
		t.Error("too many nodes should error")
	}
	if _, err := r.s.Submit("a", "u", 1, 0, 0); err == nil {
		t.Error("zero walltime should error")
	}
}

func TestAddMaintenanceValidation(t *testing.T) {
	r := newRig(t, 2)
	if err := r.s.AddMaintenance(2*time.Hour, time.Hour); err == nil {
		t.Error("inverted window should error")
	}
	r.e.RunUntil(time.Hour)
	if err := r.s.AddMaintenance(30*time.Minute, 2*time.Hour); err == nil {
		t.Error("window in the past should error")
	}
}

func TestCollector(t *testing.T) {
	r := newRig(t, 4)
	r.submit(t, "a", 2, time.Hour, 0)
	r.submit(t, "b", 4, time.Hour, 0)
	pts := r.s.Collector().Collect(r.e.Now())
	vals := map[string]float64{}
	for _, p := range pts {
		vals[p.Name] = p.Value
	}
	if vals["sched.queue.len"] != 1 {
		t.Errorf("queue.len = %v", vals["sched.queue.len"])
	}
	if vals["sched.jobs.running"] != 1 {
		t.Errorf("jobs.running = %v", vals["sched.jobs.running"])
	}
	if vals["sched.nodes.busy"] != 2 {
		t.Errorf("nodes.busy = %v", vals["sched.nodes.busy"])
	}
	if vals["sched.util"] != 0.5 {
		t.Errorf("util = %v", vals["sched.util"])
	}
}

func TestJobAccessors(t *testing.T) {
	r := newRig(t, 2)
	j := r.submit(t, "a", 1, time.Hour, 0)
	r.e.RunUntil(20 * time.Minute)
	if got := j.Remaining(r.e.Now()); got != 40*time.Minute {
		t.Errorf("Remaining = %v, want 40m", got)
	}
	if _, ok := r.s.Job(j.ID); !ok {
		t.Error("Job lookup failed")
	}
	if len(r.s.Running()) != 1 {
		t.Error("Running should have 1 job")
	}
	if r.s.NumNodes() != 2 {
		t.Error("NumNodes")
	}
	if JobPending.String() != "pending" || KillWalltime.String() != "walltime" {
		t.Error("String methods")
	}
}

func TestDeterministicSchedule(t *testing.T) {
	runOnce := func() []time.Duration {
		r := newRig(t, 8)
		for i := 0; i < 20; i++ {
			name := string([]byte{'j', byte('a' + i)})
			wall := time.Duration(30+i*7) * time.Minute
			actual := time.Duration(20+i*5) * time.Minute
			nodes := 1 + i%4
			r.actual[name] = actual
			r.e.After(time.Duration(i)*time.Minute, func() {
				_, _ = r.s.Submit(name, "u", nodes, wall, 0)
			})
		}
		r.e.Run()
		var starts []time.Duration
		for _, j := range r.s.Jobs() {
			starts = append(starts, j.Start)
		}
		return starts
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule not deterministic at job %d: %v vs %v", i, a[i], b[i])
		}
	}
}
