package analytics

import (
	"math/rand"
	"testing"
)

func TestZScoreFlagsSpike(t *testing.T) {
	z := NewZScore(20, 3, 5)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		if z.Step(10 + rng.NormFloat64()) {
			t.Fatalf("false positive at %d", i)
		}
	}
	if !z.Step(30) {
		t.Error("missed a 20-sigma spike")
	}
}

func TestZScoreWarmup(t *testing.T) {
	z := NewZScore(20, 3, 5)
	for i := 0; i < 4; i++ {
		if z.Step(float64(i * 100)) {
			t.Error("must not fire during warmup")
		}
	}
}

func TestZScoreConstantSeries(t *testing.T) {
	z := NewZScore(10, 3, 3)
	for i := 0; i < 10; i++ {
		z.Step(5)
	}
	if z.Step(5) {
		t.Error("constant value should not alarm")
	}
	if !z.Step(6) {
		t.Error("deviation from constant series should alarm")
	}
	z.Reset()
	if z.Step(100) {
		t.Error("post-reset warmup should not alarm")
	}
}

func TestZScorePanicsOnTinyWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewZScore(1, 3, 2)
}

func TestMADRobustToPriorOutliers(t *testing.T) {
	m := NewMAD(20, 4, 5)
	// Base distribution around 10, with occasional prior spikes that would
	// inflate a stddev but not the MAD.
	vals := []float64{10, 10.1, 9.9, 10, 50, 10.05, 9.95, 10, 10.1, 9.9}
	for _, v := range vals {
		m.Step(v)
	}
	if !m.Step(60) {
		t.Error("missed gross outlier despite contaminated window")
	}
	if m.Step(10.02) {
		t.Error("normal value flagged")
	}
}

func TestMADPanicsOnTinyWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMAD(2, 3, 3)
}

func TestMADOutliersFleet(t *testing.T) {
	// 8 OSTs, one slow (index 5).
	bw := []float64{500, 498, 503, 501, 499, 50, 502, 500}
	low := MADOutliers(bw, 5, -1)
	if len(low) != 1 || low[0] != 5 {
		t.Errorf("low outliers = %v, want [5]", low)
	}
	if high := MADOutliers(bw, 5, 1); len(high) != 0 {
		t.Errorf("high outliers = %v, want none", high)
	}
	both := MADOutliers(bw, 5, 0)
	if len(both) != 1 || both[0] != 5 {
		t.Errorf("both outliers = %v", both)
	}
}

func TestMADOutliersDegenerateFleet(t *testing.T) {
	same := []float64{5, 5, 5, 5, 7}
	out := MADOutliers(same, 3, 1)
	if len(out) != 1 || out[0] != 4 {
		t.Errorf("degenerate outliers = %v, want [4]", out)
	}
	if MADOutliers([]float64{1, 2}, 3, 0) != nil {
		t.Error("tiny fleet should return nil")
	}
}

func TestCUSUMDetectsSlowDrift(t *testing.T) {
	c := NewCUSUM(20, 0.5, 5)
	rng := rand.New(rand.NewSource(5))
	fired := -1
	for i := 0; i < 200; i++ {
		v := 10 + rng.NormFloat64()*0.5
		if i >= 50 {
			// tiny persistent shift of +1 (2 sigma of noise, invisible to
			// a single-sample z-test at 3 sigma)
			v += 1
		}
		if c.Step(v) {
			fired = i
			break
		}
	}
	if fired < 50 {
		t.Fatalf("fired at %d (before or without shift)", fired)
	}
	if fired > 80 {
		t.Errorf("took too long: fired at %d", fired)
	}
}

func TestCUSUMResetAndPanic(t *testing.T) {
	c := NewCUSUM(5, 0.5, 3)
	for i := 0; i < 30; i++ {
		c.Step(10 + float64(i))
	}
	c.Reset()
	if c.Step(100) {
		t.Error("post-reset warmup should not fire")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCUSUM(0, 1, 1)
}

func TestThresholdDetector(t *testing.T) {
	hi := &Threshold{Bound: 10, High: true}
	if hi.Step(9) || !hi.Step(11) {
		t.Error("high threshold")
	}
	lo := &Threshold{Bound: 10, High: false}
	if lo.Step(11) || !lo.Step(9) {
		t.Error("low threshold")
	}
	hi.Reset() // no-op, must not panic
}
