package analytics

import "math"

// ConfidenceTracker turns a model's realized forecast errors into a [0,1]
// confidence score, implementing §IV's requirement that "our analyses will
// also be expanded to include determination of confidence in the models for
// decision-making". Loops gate irreversible actions on this score.
//
// The score is derived from the exponentially weighted mean absolute
// percentage error (MAPE) of resolved predictions: confidence = 1/(1+MAPE/S),
// where S is the error scale at which confidence halves.
type ConfidenceTracker struct {
	// HalfErr is the relative error at which confidence drops to 0.5
	// (default 0.25, i.e. 25% MAPE).
	HalfErr float64
	// Alpha is the EW weight of the newest resolved error (default 0.2).
	Alpha float64

	mape float64
	n    int
}

// NewConfidenceTracker returns a tracker with the given half-error scale and
// smoothing; zero values select the defaults.
func NewConfidenceTracker(halfErr, alpha float64) *ConfidenceTracker {
	if halfErr <= 0 {
		halfErr = 0.25
	}
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	return &ConfidenceTracker{HalfErr: halfErr, Alpha: alpha}
}

// Resolve records a completed prediction against its realized value.
func (c *ConfidenceTracker) Resolve(predicted, actual float64) {
	denom := math.Abs(actual)
	if denom < 1e-12 {
		denom = 1e-12
	}
	err := math.Abs(predicted-actual) / denom
	if c.n == 0 {
		c.mape = err
	} else {
		c.mape = (1-c.Alpha)*c.mape + c.Alpha*err
	}
	c.n++
}

// N returns how many predictions have been resolved.
func (c *ConfidenceTracker) N() int { return c.n }

// MAPE returns the current smoothed relative error.
func (c *ConfidenceTracker) MAPE() float64 { return c.mape }

// Confidence returns the current confidence in [0,1]. With no resolved
// predictions it returns 0.5 — the neutral prior under which conservative
// loops stay in advisory mode.
func (c *ConfidenceTracker) Confidence() float64 {
	if c.n == 0 {
		return 0.5
	}
	return 1 / (1 + c.mape/c.HalfErr)
}

// Reset clears all state.
func (c *ConfidenceTracker) Reset() { c.mape, c.n = 0, 0 }
