package analytics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEWMAConvergesToLevel(t *testing.T) {
	e := NewEWMA(0.3)
	for i := 0; i < 100; i++ {
		e.Observe(float64(i), 10)
	}
	f := e.Predict(5)
	if !f.OK() {
		t.Fatal("forecast should be OK")
	}
	if math.Abs(f.Value-10) > 1e-9 {
		t.Errorf("level = %v, want 10", f.Value)
	}
	if f.Stddev > 1e-9 {
		t.Errorf("stddev = %v, want ~0 on constant series", f.Stddev)
	}
}

func TestEWMATracksShift(t *testing.T) {
	e := NewEWMA(0.5)
	for i := 0; i < 20; i++ {
		e.Observe(float64(i), 10)
	}
	for i := 20; i < 40; i++ {
		e.Observe(float64(i), 20)
	}
	if f := e.Predict(0); math.Abs(f.Value-20) > 0.1 {
		t.Errorf("level = %v, want ~20 after shift", f.Value)
	}
}

func TestEWMAInvalidAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewEWMA(0)
}

func TestHoltLearnsTrend(t *testing.T) {
	h := NewHolt(0.5, 0.3)
	// Perfect line: v = 2t + 3.
	for i := 0; i <= 50; i++ {
		tt := float64(i)
		h.Observe(tt, 2*tt+3)
	}
	f := h.Predict(10)
	want := 2*60.0 + 3
	if math.Abs(f.Value-want) > 1.0 {
		t.Errorf("forecast = %v, want ~%v", f.Value, want)
	}
	if math.Abs(h.Trend()-2) > 0.05 {
		t.Errorf("trend = %v, want ~2", h.Trend())
	}
}

func TestHoltIrregularSampling(t *testing.T) {
	h := NewHolt(0.5, 0.3)
	ts := []float64{0, 1, 3, 7, 8, 12, 20, 21, 30}
	for _, tt := range ts {
		h.Observe(tt, 5*tt)
	}
	f := h.Predict(10)
	if math.Abs(f.Value-5*40) > 8 {
		t.Errorf("forecast = %v, want ~200", f.Value)
	}
}

func TestHoltReset(t *testing.T) {
	h := NewHolt(0.5, 0.3)
	h.Observe(0, 5)
	h.Observe(1, 10)
	h.Reset()
	if h.Level() != 0 || h.Trend() != 0 {
		t.Error("Reset did not clear state")
	}
	if h.Predict(1).OK() {
		t.Error("forecast after reset should not be OK")
	}
}

func TestWindowOLSExactLine(t *testing.T) {
	w := NewWindowOLS(10)
	for i := 0; i < 10; i++ {
		w.Observe(float64(i), 3*float64(i)+1)
	}
	intercept, slope, resStd, ok := w.Fit()
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(slope-3) > 1e-9 || math.Abs(intercept-1) > 1e-9 {
		t.Errorf("fit = %v + %v t", intercept, slope)
	}
	if resStd > 1e-9 {
		t.Errorf("resStd = %v, want 0", resStd)
	}
	f := w.Predict(5)
	if math.Abs(f.Value-(3*14+1)) > 1e-9 {
		t.Errorf("predict = %v, want 43", f.Value)
	}
}

func TestWindowOLSSlidesWindow(t *testing.T) {
	w := NewWindowOLS(5)
	// Old regime slope 1, then slope 10; the window must forget the old regime.
	for i := 0; i < 10; i++ {
		w.Observe(float64(i), float64(i))
	}
	for i := 10; i < 15; i++ {
		w.Observe(float64(i), float64(i)*10-90)
	}
	if s := w.Slope(); math.Abs(s-10) > 1e-6 {
		t.Errorf("slope = %v, want 10 after window slides", s)
	}
}

func TestWindowOLSDegenerate(t *testing.T) {
	w := NewWindowOLS(5)
	if _, _, _, ok := w.Fit(); ok {
		t.Error("empty fit should fail")
	}
	w.Observe(1, 5)
	w.Observe(1, 7) // same timestamp: Sxx = 0
	if _, _, _, ok := w.Fit(); ok {
		t.Error("degenerate fit should fail")
	}
	if w.Slope() != 0 {
		t.Error("degenerate slope should be 0")
	}
	if f := w.Predict(1); !math.IsNaN(f.Value) {
		t.Error("degenerate predict should be NaN")
	}
}

func TestWindowOLSPanicsOnTinyWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewWindowOLS(1)
}

func TestForecastInterval(t *testing.T) {
	f := Forecast{Value: 100, Stddev: 10, N: 5}
	lo, hi := f.Interval(1.96)
	if lo != 100-19.6 || hi != 100+19.6 {
		t.Errorf("interval = [%v, %v]", lo, hi)
	}
}

// Property: on noiseless linear data, OLS slope recovery is exact for any
// slope/intercept.
func TestOLSRecoversLineProperty(t *testing.T) {
	f := func(slope, intercept float64) bool {
		if math.Abs(slope) > 1e6 || math.Abs(intercept) > 1e6 {
			return true
		}
		w := NewWindowOLS(20)
		for i := 0; i < 20; i++ {
			tt := float64(i)
			w.Observe(tt, slope*tt+intercept)
		}
		_, got, _, ok := w.Fit()
		return ok && math.Abs(got-slope) < 1e-6*(1+math.Abs(slope))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestForecastersUnderNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mkData := func() ([]float64, []float64) {
		var ts, vs []float64
		for i := 0; i < 200; i++ {
			ts = append(ts, float64(i))
			vs = append(vs, 4*float64(i)+rng.NormFloat64()*5)
		}
		return ts, vs
	}
	for _, fc := range []Forecaster{NewHolt(0.3, 0.2), NewWindowOLS(50)} {
		ts, vs := mkData()
		for i := range ts {
			fc.Observe(ts[i], vs[i])
		}
		f := fc.Predict(20)
		want := 4 * 219.0
		if math.Abs(f.Value-want) > 25 {
			t.Errorf("%T forecast = %v, want ~%v", fc, f.Value, want)
		}
		if f.Stddev <= 0 {
			t.Errorf("%T stddev = %v, want positive under noise", fc, f.Stddev)
		}
	}
}
