package analytics_test

import (
	"testing"
	"time"

	"autoloop/internal/analytics"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

func TestWindowValues(t *testing.T) {
	db := tsdb.New(0)
	for i := 0; i < 10; i++ {
		for _, node := range []string{"n1", "n2"} {
			p := telemetry.Point{Name: "m", Labels: telemetry.Labels{"node": node}, Time: time.Duration(i) * time.Second, Value: float64(i)}
			if err := db.Append(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	vals := analytics.WindowValues(db, "m", nil, 2*time.Second, 4*time.Second)
	// Two series × t=2..4, concatenated in label-key order.
	want := []float64{2, 3, 4, 2, 3, 4}
	if len(vals) != len(want) {
		t.Fatalf("got %d values, want %d: %v", len(vals), len(want), vals)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Errorf("vals[%d] = %v, want %v", i, vals[i], want[i])
		}
	}
	one := analytics.WindowValues(db, "m", telemetry.Labels{"node": "n2"}, 0, time.Hour)
	if len(one) != 10 {
		t.Errorf("matcher window has %d values, want 10", len(one))
	}
	if none := analytics.WindowValues(db, "nope", nil, 0, time.Hour); none != nil {
		t.Errorf("unknown metric window = %v, want nil", none)
	}
}

func TestReplayWarmsForecaster(t *testing.T) {
	s := telemetry.Series{Name: "m"}
	for i := 0; i < 20; i++ {
		s.Samples = append(s.Samples, telemetry.Sample{Time: time.Duration(i) * time.Second, Value: float64(2 * i)})
	}
	h := analytics.NewHolt(0.5, 0.3)
	analytics.Replay(h, s)
	f := h.Predict(1)
	if !f.OK() {
		t.Fatal("forecast not OK after replay")
	}
	if f.N != 20 {
		t.Errorf("forecast N = %d, want 20", f.N)
	}
	// The series grows by 2/s; one second ahead of 38 should be near 40.
	if f.Value < 38 || f.Value > 42 {
		t.Errorf("forecast = %v, want ~40", f.Value)
	}
}
