package analytics

import (
	"math"
	"sort"
)

// fltLess orders float64s exactly as sort.Float64s does: NaNs first, then
// ascending. Every order-statistic structure in this package uses it so that
// incremental results are bit-compatible with a sort-based reference.
func fltLess(x, y float64) bool {
	return x < y || (math.IsNaN(x) && !math.IsNaN(y))
}

// isNonFinite reports whether v is NaN or ±Inf — the values that poison
// rolling sums and force the detectors onto their exact (reference) paths.
func isNonFinite(v float64) bool {
	return math.IsNaN(v) || math.IsInf(v, 0)
}

// sortedWindow maintains the last W observations of a stream twice: in
// arrival order (a ring, so the evicted value is known in O(1)) and in the
// exact order sort.Float64s would produce (NaNs first, then ascending), so
// order statistics of the current window never require a re-sort.
//
// Insert and evict find their position by binary search (O(log W)) and shift
// with copy; one slide costs a bounded memmove and no allocation, versus the
// two O(W log W) sorts plus two allocations per observation of the naive
// median/MAD detectors this structure replaces.
type sortedWindow struct {
	ring   []float64 // arrival order; ring[(head+i)%W] is the i-th oldest
	sorted []float64 // the same multiset, in sort.Float64s order
	head   int
	n      int
	// nonFinite counts NaN/±Inf values currently in the window; while it is
	// nonzero medianMAD takes the exact sort-based deviation path so IEEE
	// propagation matches the naive reference bit for bit.
	nonFinite int
	// devs is the exact path's deviation scratch, allocated on first use.
	devs []float64
}

// init sizes the window for w observations, reusing prior capacity.
func (sw *sortedWindow) init(w int) {
	if cap(sw.ring) < w {
		sw.ring = make([]float64, w)
		sw.sorted = make([]float64, 0, w)
	}
	sw.ring = sw.ring[:w]
	sw.reset()
}

// reset empties the window without releasing its arrays.
func (sw *sortedWindow) reset() {
	sw.head, sw.n, sw.nonFinite = 0, 0, 0
	sw.sorted = sw.sorted[:0]
}

// push appends v, evicting the oldest observation once the window is full.
func (sw *sortedWindow) push(v float64) {
	w := len(sw.ring)
	if sw.n == w {
		old := sw.ring[sw.head]
		sw.head++
		if sw.head == w {
			sw.head = 0
		}
		sw.n--
		sw.removeSorted(old)
		if isNonFinite(old) {
			sw.nonFinite--
		}
	}
	pos := sw.head + sw.n
	if pos >= w {
		pos -= w
	}
	sw.ring[pos] = v
	sw.insertSorted(v)
	if isNonFinite(v) {
		sw.nonFinite++
	}
	sw.n++
}

// insertSorted places v at its sort.Float64s position.
func (sw *sortedWindow) insertSorted(v float64) {
	s := sw.sorted
	i := sort.Search(len(s), func(i int) bool { return !fltLess(s[i], v) })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	sw.sorted = s
}

// removeSorted drops one element equivalent to v (ordering-equal values such
// as ±0 or two NaNs are interchangeable for every quantile computed here).
func (sw *sortedWindow) removeSorted(v float64) {
	s := sw.sorted
	i := sort.Search(len(s), func(i int) bool { return !fltLess(s[i], v) })
	copy(s[i:], s[i+1:])
	sw.sorted = s[:len(s)-1]
}

// medianMAD returns the window's median and median absolute deviation with
// the same interpolation (and therefore the same bits) as sorting the window
// and its deviations would produce, without sorting either: the median reads
// the sorted ring directly, and the deviation quantile is selected by merging
// the two deviation sequences that fan out from the median — each already
// sorted — until the target ranks are reached.
func (sw *sortedWindow) medianMAD() (median, mad float64) {
	n := sw.n
	s := sw.sorted[:n]
	median = quantileSorted(s, 0.5)
	if sw.nonFinite > 0 {
		// NaN/Inf deviations do not interleave predictably with finite ones
		// (|Inf-Inf| is NaN); defer to the exact sort-based path.
		return median, sw.exactMAD(median)
	}
	pos := 0.5 * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	// Values below the median yield deviations median-s[i], ascending as i
	// walks left from the split; values at or above it yield s[j]-median,
	// ascending as j walks right. Merge the two runs to the hi-th rank.
	split := sort.SearchFloat64s(s, median)
	i, j := split-1, split
	var dLo, dHi float64
	for k := 0; k <= hi; k++ {
		var d float64
		if i >= 0 && (j >= n || median-s[i] <= s[j]-median) {
			d = median - s[i]
			i--
		} else {
			d = s[j] - median
			j++
		}
		if k == lo {
			dLo = d
		}
		dHi = d
	}
	if lo == hi {
		return median, dHi
	}
	frac := pos - float64(lo)
	return median, dLo*(1-frac) + dHi*frac
}

// exactMAD is the non-finite fallback: materialize |v-median| into scratch,
// sort, and take the interpolated median — the naive computation verbatim.
func (sw *sortedWindow) exactMAD(median float64) float64 {
	if cap(sw.devs) < sw.n {
		sw.devs = make([]float64, sw.n)
	}
	devs := sw.devs[:sw.n]
	for i, v := range sw.sorted[:sw.n] {
		devs[i] = math.Abs(v - median)
	}
	sort.Float64s(devs)
	return quantileSorted(devs, 0.5)
}
