package analytics

import (
	"math"
	"sort"
)

// Signature is a behavioral fingerprint of an application run: a named
// vector of characteristics (mean iteration time, I/O fraction, utilization,
// ...). The paper's Analyze phase requires "a strategy ... to map the
// application to a set of measurements of behavioral characteristics to
// enable comparison against past and future runs"; signatures plus
// nearest-neighbor lookup are that strategy, shared by the Scheduler, I/O
// QoS, OST, and Misconfiguration cases.
type Signature map[string]float64

// Distance returns the normalized Euclidean distance between two signatures
// over their shared keys, where each dimension is scaled by the magnitude of
// the larger operand so heterogeneous units compare fairly. Disjoint
// signatures are maximally distant (+Inf).
func (s Signature) Distance(o Signature) float64 {
	shared := 0
	sum := 0.0
	for k, a := range s {
		b, ok := o[k]
		if !ok {
			continue
		}
		shared++
		scale := math.Max(math.Abs(a), math.Abs(b))
		if scale == 0 {
			continue // both zero: identical in this dimension
		}
		// Divide before subtracting so extreme magnitudes cannot overflow.
		d := a/scale - b/scale
		sum += d * d
	}
	if shared == 0 {
		return math.Inf(1)
	}
	return math.Sqrt(sum / float64(shared))
}

// Neighbor is one nearest-neighbor result.
type Neighbor struct {
	Index    int
	Distance float64
}

// NearestNeighbors returns the k candidates closest to query, ascending by
// distance (ties broken by index for determinism).
func NearestNeighbors(query Signature, candidates []Signature, k int) []Neighbor {
	ns := make([]Neighbor, 0, len(candidates))
	for i, c := range candidates {
		ns = append(ns, Neighbor{Index: i, Distance: query.Distance(c)})
	}
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Distance != ns[j].Distance {
			return ns[i].Distance < ns[j].Distance
		}
		return ns[i].Index < ns[j].Index
	})
	if k > len(ns) {
		k = len(ns)
	}
	return ns[:k]
}
