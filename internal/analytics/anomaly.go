package analytics

import (
	"math"
	"sort"
)

// Detector is a streaming anomaly detector over a univariate series.
type Detector interface {
	// Step feeds one observation and reports whether it is anomalous.
	Step(v float64) bool
	// Reset clears all state.
	Reset()
}

// ZScore flags observations more than Threshold standard deviations from the
// mean of a sliding window. It needs MinN observations before it fires.
type ZScore struct {
	Window    int
	Threshold float64
	MinN      int

	vals []float64
}

// NewZScore returns a z-score detector (window, threshold sigma, minimum
// samples before alerting).
func NewZScore(window int, threshold float64, minN int) *ZScore {
	if window < 2 {
		panic("analytics: z-score window must be >= 2")
	}
	if minN < 2 {
		minN = 2
	}
	return &ZScore{Window: window, Threshold: threshold, MinN: minN}
}

// Step implements Detector: v is compared against the window *before* v is
// added, so a level shift fires on its first sample.
func (z *ZScore) Step(v float64) bool {
	defer func() {
		z.vals = append(z.vals, v)
		if len(z.vals) > z.Window {
			z.vals = z.vals[1:]
		}
	}()
	if len(z.vals) < z.MinN {
		return false
	}
	m := meanOf(z.vals)
	s := stddevOf(z.vals, m)
	if s == 0 {
		return v != m
	}
	return math.Abs(v-m)/s > z.Threshold
}

// Reset implements Detector.
func (z *ZScore) Reset() { z.vals = nil }

// MAD flags observations whose distance from the window median exceeds
// Threshold x MAD (median absolute deviation), the robust detector used for
// fleet outliers (one slow OST among sixteen).
type MAD struct {
	Window    int
	Threshold float64
	MinN      int

	vals []float64
}

// NewMAD returns a MAD detector.
func NewMAD(window int, threshold float64, minN int) *MAD {
	if window < 3 {
		panic("analytics: MAD window must be >= 3")
	}
	if minN < 3 {
		minN = 3
	}
	return &MAD{Window: window, Threshold: threshold, MinN: minN}
}

// Step implements Detector (comparison precedes insertion, as in ZScore).
func (m *MAD) Step(v float64) bool {
	defer func() {
		m.vals = append(m.vals, v)
		if len(m.vals) > m.Window {
			m.vals = m.vals[1:]
		}
	}()
	if len(m.vals) < m.MinN {
		return false
	}
	med, mad := medianMAD(m.vals)
	if mad == 0 {
		return v != med
	}
	// 1.4826 scales MAD to the stddev of a normal distribution.
	return math.Abs(v-med)/(1.4826*mad) > m.Threshold
}

// Reset implements Detector.
func (m *MAD) Reset() { m.vals = nil }

// MADOutliers returns the indices of fleet members whose value deviates from
// the fleet median by more than threshold x scaled MAD — the cross-sectional
// form used to pick out a degraded OST from its peers. direction < 0 flags
// only low outliers, > 0 only high ones, 0 both.
func MADOutliers(values []float64, threshold float64, direction int) []int {
	if len(values) < 3 {
		return nil
	}
	med, mad := medianMAD(values)
	if mad == 0 {
		// Degenerate fleet: anything different from the median is an outlier.
		var out []int
		for i, v := range values {
			if v != med && ((direction < 0 && v < med) || (direction > 0 && v > med) || direction == 0) {
				out = append(out, i)
			}
		}
		return out
	}
	scale := 1.4826 * mad
	var out []int
	for i, v := range values {
		dev := (v - med) / scale
		switch {
		case direction < 0 && dev < -threshold:
			out = append(out, i)
		case direction > 0 && dev > threshold:
			out = append(out, i)
		case direction == 0 && math.Abs(dev) > threshold:
			out = append(out, i)
		}
	}
	return out
}

// CUSUM detects small persistent shifts in the mean: it accumulates
// deviations beyond a dead band K around a reference mean and fires when the
// cumulative sum crosses H. Used for slow drifts that z-scores miss.
type CUSUM struct {
	K, H float64

	ref    float64
	n      int
	warmup int
	pos    float64
	neg    float64
}

// NewCUSUM returns a CUSUM detector calibrating its reference mean over
// warmup samples, with dead band k and decision threshold h (both in the
// series' units).
func NewCUSUM(warmup int, k, h float64) *CUSUM {
	if warmup < 1 {
		panic("analytics: CUSUM warmup must be >= 1")
	}
	return &CUSUM{K: k, H: h, warmup: warmup}
}

// Step implements Detector.
func (c *CUSUM) Step(v float64) bool {
	if c.n < c.warmup {
		c.ref += (v - c.ref) / float64(c.n+1)
		c.n++
		return false
	}
	c.pos = math.Max(0, c.pos+v-c.ref-c.K)
	c.neg = math.Max(0, c.neg+c.ref-v-c.K)
	return c.pos > c.H || c.neg > c.H
}

// Reset implements Detector.
func (c *CUSUM) Reset() { c.ref, c.n, c.pos, c.neg = 0, 0, 0, 0 }

// Threshold is the trivial detector: fire when the value crosses a fixed
// bound (above when High, below otherwise).
type Threshold struct {
	Bound float64
	High  bool
}

// Step implements Detector.
func (t *Threshold) Step(v float64) bool {
	if t.High {
		return v > t.Bound
	}
	return v < t.Bound
}

// Reset implements Detector.
func (t *Threshold) Reset() {}

func meanOf(vals []float64) float64 {
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

func stddevOf(vals []float64, mean float64) float64 {
	if len(vals) < 2 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		d := v - mean
		s += d * d
	}
	return math.Sqrt(s / float64(len(vals)-1))
}

func medianMAD(vals []float64) (median, mad float64) {
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	median = quantileSorted(sorted, 0.5)
	devs := make([]float64, len(vals))
	for i, v := range vals {
		devs[i] = math.Abs(v - median)
	}
	sort.Float64s(devs)
	mad = quantileSorted(devs, 0.5)
	return median, mad
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
