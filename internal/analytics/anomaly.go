package analytics

import (
	"math"
	"sync"
)

// Detector is a streaming anomaly detector over a univariate series.
//
// Every windowed detector here steps in amortized O(1)-ish time with zero
// steady-state allocations: detector stepping is the inner loop of every
// autonomy loop's Analyze phase, so at fleet scale (thousands of loops per
// monitoring tick) a per-observation rescan or sort would dominate tick
// latency. Decision semantics are identical to the naive rescan reference
// (compare-before-insert, degenerate zero-spread paths, MinN gating): the
// rolling state falls back to an exact recompute wherever floating-point
// drift could change a decision.
type Detector interface {
	// Step feeds one observation and reports whether it is anomalous.
	Step(v float64) bool
	// Reset clears all state.
	Reset()
}

// ZScore flags observations more than Threshold standard deviations from the
// mean of a sliding window. It needs MinN observations before it fires.
//
// The window mean and variance are maintained as rolling sums over a ring
// buffer — O(1) per observation instead of rescanning the window — with an
// exact recompute every Window steps (and whenever the rolling variance
// cancels to zero or the window holds non-finite values) for numerical
// safety.
type ZScore struct {
	Window    int
	Threshold float64
	MinN      int

	ring    []float64
	head, n int
	// sum and sumsq accumulate (v - pivot) and (v - pivot)², centered so
	// that cancellation scales with the window's spread rather than with its
	// absolute level (progress counters sit at 1e6 with unit noise; raw
	// sums of squares would drown the variance in rounding error). The pivot
	// re-anchors to a current window value at every periodic recompute.
	sum, sumsq float64
	pivot      float64
	// peak is the largest sumsq since the last recompute: rolling error is
	// bounded by ~Window*eps*peak, so after a large-magnitude burst leaves
	// the window, stats divert to the exact path until a recompute
	// re-anchors (small contributions absorbed into a huge sumsq and then
	// "uncovered" by cancellation are pure noise).
	peak float64
	// nonFinite counts NaN/±Inf values in the window: they poison rolling
	// sums beyond eviction, so stats are computed exactly while any are
	// present and the sums are rebuilt when the last one leaves.
	nonFinite int
	// constRun is the length of the trailing run of identical observations;
	// constRun >= n means the window is constant, the one case where the
	// reference's s==0 degenerate path can fire and rolling cancellation
	// cannot be trusted.
	constRun int
	lastV    float64
	// toRecompute counts down to the periodic exact rebuild of the sums.
	toRecompute int
	// Cached exact stats for a constant window, keyed by (value, length), so
	// long constant stretches stay O(1) per step.
	constN              int
	constOf             float64
	constMean, constStd float64
}

// NewZScore returns a z-score detector (window, threshold sigma, minimum
// samples before alerting).
func NewZScore(window int, threshold float64, minN int) *ZScore {
	if window < 2 {
		panic("analytics: z-score window must be >= 2")
	}
	if minN < 2 {
		minN = 2
	}
	return &ZScore{Window: window, Threshold: threshold, MinN: minN, ring: make([]float64, window)}
}

// Step implements Detector: v is compared against the window *before* v is
// added, so a level shift fires on its first sample.
func (z *ZScore) Step(v float64) bool {
	if z.ring == nil {
		w := z.Window
		if w < 2 {
			w = 2
		}
		z.ring = make([]float64, w)
	}
	fire := false
	if z.n >= z.MinN {
		m, s := z.stats()
		if s == 0 {
			fire = v != m
		} else {
			fire = math.Abs(v-m)/s > z.Threshold
		}
	}
	z.push(v)
	return fire
}

// ulpEps is the double-precision unit roundoff, the scale of both the
// rolling sums' drift and the naive reference's own two-pass noise.
const ulpEps = 2.3e-16

// stats returns the current window mean and sample standard deviation.
func (z *ZScore) stats() (m, s float64) {
	if z.nonFinite > 0 {
		return z.exactStats()
	}
	if z.constRun >= z.n {
		// Constant window: take (and cache) the exact path so the reference's
		// s==0 decision branch is reproduced bit for bit.
		if z.constN == z.n && z.constOf == z.lastV {
			return z.constMean, z.constStd
		}
		m, s = z.exactStats()
		z.constN, z.constOf, z.constMean, z.constStd = z.n, z.lastV, m, s
		return m, s
	}
	fn := float64(z.n)
	m = z.pivot + z.sum/fn
	ss := z.sumsq - z.sum*z.sum/fn
	// Degenerate-window guards: fall back to the exact two-pass whenever the
	// rolling sums (cancelled to or below their own drift scale) or the
	// reference arithmetic (spread at the rounding noise of the mean's
	// magnitude, where a rescan's answer is itself noise) cannot be trusted.
	// Both floors are far below any statistically meaningful spread, so real
	// signals stay on the O(1) path.
	naiveFloor := fn * ulpEps * m
	drift := float64(len(z.ring)) * ulpEps * z.peak * 1e4
	if ss <= 0 || ss <= drift || ss <= fn*naiveFloor*naiveFloor*100 {
		return z.exactStats()
	}
	return m, math.Sqrt(ss / (fn - 1))
}

// exactStats is the reference two-pass mean/stddev over the window in
// arrival order — identical arithmetic to the naive rescan.
func (z *ZScore) exactStats() (m, s float64) {
	w := len(z.ring)
	sum := 0.0
	for i := 0; i < z.n; i++ {
		sum += z.ring[(z.head+i)%w]
	}
	m = sum / float64(z.n)
	if z.n < 2 {
		return m, 0
	}
	ss := 0.0
	for i := 0; i < z.n; i++ {
		d := z.ring[(z.head+i)%w] - m
		ss += d * d
	}
	return m, math.Sqrt(ss / float64(z.n-1))
}

// push slides the window over v, maintaining the centered rolling sums.
func (z *ZScore) push(v float64) {
	w := len(z.ring)
	if z.n == w {
		old := z.ring[z.head]
		z.head++
		if z.head == w {
			z.head = 0
		}
		z.n--
		a := old - z.pivot
		z.sum -= a
		z.sumsq -= a * a
		if isNonFinite(old) {
			if z.nonFinite--; z.nonFinite == 0 {
				z.recompute()
			}
		}
	}
	pos := z.head + z.n
	if pos >= w {
		pos -= w
	}
	z.ring[pos] = v
	if z.n == 0 {
		z.pivot = v
		if isNonFinite(v) {
			z.pivot = 0
		}
	}
	z.n++
	a := v - z.pivot
	z.sum += a
	z.sumsq += a * a
	if z.sumsq > z.peak {
		z.peak = z.sumsq
	}
	if isNonFinite(v) {
		z.nonFinite++
	}
	if z.constRun > 0 && v == z.lastV {
		z.constRun++
	} else {
		z.constRun = 1
	}
	z.lastV = v
	if z.toRecompute--; z.toRecompute <= 0 {
		if z.nonFinite == 0 {
			z.recompute()
		}
		z.toRecompute = w
	}
}

// recompute re-anchors the pivot to a current window value and rebuilds the
// rolling sums exactly from the ring, bounding drift to one window's worth
// of updates.
func (z *ZScore) recompute() {
	w := len(z.ring)
	if z.n > 0 {
		z.pivot = z.ring[z.head]
	}
	z.sum, z.sumsq = 0, 0
	for i := 0; i < z.n; i++ {
		a := z.ring[(z.head+i)%w] - z.pivot
		z.sum += a
		z.sumsq += a * a
	}
	z.peak = z.sumsq
}

// Reset implements Detector, retaining the window's capacity.
func (z *ZScore) Reset() {
	z.head, z.n, z.sum, z.sumsq, z.peak = 0, 0, 0, 0, 0
	z.nonFinite, z.constRun, z.toRecompute, z.constN = 0, 0, 0, 0
}

// MAD flags observations whose distance from the window median exceeds
// Threshold x MAD (median absolute deviation), the robust detector used for
// fleet outliers (one slow OST among sixteen).
//
// The window is kept in a sorted sliding structure, so each step reads the
// median directly and selects the deviation median by a bounded merge walk —
// no per-observation sorting or allocation.
type MAD struct {
	Window    int
	Threshold float64
	MinN      int

	win sortedWindow
}

// NewMAD returns a MAD detector.
func NewMAD(window int, threshold float64, minN int) *MAD {
	if window < 3 {
		panic("analytics: MAD window must be >= 3")
	}
	if minN < 3 {
		minN = 3
	}
	m := &MAD{Window: window, Threshold: threshold, MinN: minN}
	m.win.init(window)
	return m
}

// Step implements Detector (comparison precedes insertion, as in ZScore).
func (m *MAD) Step(v float64) bool {
	if m.win.ring == nil {
		w := m.Window
		if w < 3 {
			w = 3
		}
		m.win.init(w)
	}
	fire := false
	if m.win.n >= m.MinN {
		med, mad := m.win.medianMAD()
		if mad == 0 {
			fire = v != med
		} else {
			// 1.4826 scales MAD to the stddev of a normal distribution.
			fire = math.Abs(v-med)/(1.4826*mad) > m.Threshold
		}
	}
	m.win.push(v)
	return fire
}

// Reset implements Detector, retaining the window's capacity.
func (m *MAD) Reset() { m.win.reset() }

// MADOutliers returns the indices of fleet members whose value deviates from
// the fleet median by more than threshold x scaled MAD — the cross-sectional
// form used to pick out a degraded OST from its peers. direction < 0 flags
// only low outliers, > 0 only high ones, 0 both. It allocates only for the
// returned indices: the median and MAD are selected in place over a pooled
// scratch copy, never by sorting.
func MADOutliers(values []float64, threshold float64, direction int) []int {
	if len(values) < 3 {
		return nil
	}
	med, mad := medianMAD(values)
	if mad == 0 {
		// Degenerate fleet: anything different from the median is an outlier.
		var out []int
		for i, v := range values {
			if v != med && ((direction < 0 && v < med) || (direction > 0 && v > med) || direction == 0) {
				out = append(out, i)
			}
		}
		return out
	}
	scale := 1.4826 * mad
	var out []int
	for i, v := range values {
		dev := (v - med) / scale
		switch {
		case direction < 0 && dev < -threshold:
			out = append(out, i)
		case direction > 0 && dev > threshold:
			out = append(out, i)
		case direction == 0 && math.Abs(dev) > threshold:
			out = append(out, i)
		}
	}
	return out
}

// CUSUM detects small persistent shifts in the mean: it accumulates
// deviations beyond a dead band K around a reference mean and fires when the
// cumulative sum crosses H. Used for slow drifts that z-scores miss.
type CUSUM struct {
	K, H float64

	ref    float64
	n      int
	warmup int
	pos    float64
	neg    float64
}

// NewCUSUM returns a CUSUM detector calibrating its reference mean over
// warmup samples, with dead band k and decision threshold h (both in the
// series' units).
func NewCUSUM(warmup int, k, h float64) *CUSUM {
	if warmup < 1 {
		panic("analytics: CUSUM warmup must be >= 1")
	}
	return &CUSUM{K: k, H: h, warmup: warmup}
}

// Step implements Detector.
func (c *CUSUM) Step(v float64) bool {
	if c.n < c.warmup {
		c.ref += (v - c.ref) / float64(c.n+1)
		c.n++
		return false
	}
	c.pos = math.Max(0, c.pos+v-c.ref-c.K)
	c.neg = math.Max(0, c.neg+c.ref-v-c.K)
	return c.pos > c.H || c.neg > c.H
}

// Reset implements Detector.
func (c *CUSUM) Reset() { c.ref, c.n, c.pos, c.neg = 0, 0, 0, 0 }

// Threshold is the trivial detector: fire when the value crosses a fixed
// bound (above when High, below otherwise).
type Threshold struct {
	Bound float64
	High  bool
}

// Step implements Detector.
func (t *Threshold) Step(v float64) bool {
	if t.High {
		return v > t.Bound
	}
	return v < t.Bound
}

// Reset implements Detector.
func (t *Threshold) Reset() {}

func meanOf(vals []float64) float64 {
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

func stddevOf(vals []float64, mean float64) float64 {
	if len(vals) < 2 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		d := v - mean
		s += d * d
	}
	return math.Sqrt(s / float64(len(vals)-1))
}

// selScratch pools the partition buffer behind medianMAD, so the per-tick
// cross-sectional outlier scans (one per fleet per loop) allocate nothing in
// steady state.
var selScratch = sync.Pool{New: func() interface{} { return new([]float64) }}

// medianMAD returns the median and median absolute deviation of vals, leaving
// vals untouched. Both quantiles are quickselected over one pooled scratch
// buffer — two O(n) selections instead of the two O(n log n) sorts (and two
// allocations) of the sort-based form, with identical results: selection
// yields the same order statistics, interpolated by the same formula.
func medianMAD(vals []float64) (median, mad float64) {
	bp := selScratch.Get().(*[]float64)
	buf := *bp
	if cap(buf) < len(vals) {
		buf = make([]float64, len(vals))
	}
	buf = buf[:len(vals)]
	copy(buf, vals)
	median = quantileSelect(buf, 0.5)
	for i, v := range vals {
		buf[i] = math.Abs(v - median)
	}
	mad = quantileSelect(buf, 0.5)
	*bp = buf
	selScratch.Put(bp)
	return median, mad
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// quantileSelect is quantileSorted without the sort: it partitions a around
// the needed order statistics in place (sort.Float64s ordering, NaNs first)
// and interpolates exactly as quantileSorted would.
func quantileSelect(a []float64, q float64) float64 {
	n := len(a)
	if n == 0 {
		return math.NaN()
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	loV := selectKth(a, lo)
	if lo == hi {
		return loV
	}
	// selectKth left a fully partitioned: the hi-th order statistic is the
	// minimum of the right partition.
	hiV := a[lo+1]
	for _, v := range a[lo+2:] {
		if fltLess(v, hiV) {
			hiV = v
		}
	}
	frac := pos - float64(lo)
	return loV*(1-frac) + hiV*frac
}

// selectKth partitions a in place so that a[k] is the k-th order statistic in
// fltLess order, everything before it orders no higher, and everything after
// it no lower. Iterative Hoare quickselect with a median-of-three pivot.
func selectKth(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if fltLess(a[mid], a[lo]) {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if fltLess(a[hi], a[lo]) {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if fltLess(a[hi], a[mid]) {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]
		// Hoare partition; a[lo] <= pivot <= a[hi] act as sentinels, so the
		// inner scans cannot leave the range.
		i, j := lo-1, hi+1
		for {
			for {
				i++
				if !fltLess(a[i], pivot) {
					break
				}
			}
			for {
				j--
				if !fltLess(pivot, a[j]) {
					break
				}
			}
			if i >= j {
				break
			}
			a[i], a[j] = a[j], a[i]
		}
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	return a[k]
}
