package analytics

import (
	"time"

	"autoloop/internal/telemetry"
)

// WindowValues gathers the values of every series of name matching matcher
// in [from, to] from q, concatenated in label-key order — the windowing step
// in front of value-shaped operators (percentiles, MADOutliers, detectors
// replayed over history). It is the Analyze side of the telemetry.Querier
// surface: operators never touch the store directly.
func WindowValues(q telemetry.Querier, name string, matcher telemetry.Labels, from, to time.Duration) []float64 {
	return q.WindowInto(nil, name, matcher, from, to)
}

// Replay feeds every sample of s into f in time order, so a fresh forecaster
// can be warmed from a queried window (timestamps are converted to seconds,
// the forecasters' time unit).
func Replay(f Forecaster, s telemetry.Series) {
	for _, smp := range s.Samples {
		f.Observe(smp.Time.Seconds(), smp.Value)
	}
}
