//go:build !race

package analytics

const raceEnabled = false
