package analytics

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkDetectorStep measures one detector observation for the streaming
// engine against the retained naive (rescan/re-sort per step) reference, at
// a small and a large window. The incremental rows are the gated numbers;
// the naive rows document the gap the engine buys (O(W)–O(W log W) per step
// plus allocations vs amortized O(1) and none).
func BenchmarkDetectorStep(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	data := make([]float64, 1<<16)
	for i := range data {
		data[i] = 100 + rng.NormFloat64()*5
	}
	for _, w := range []int{64, 1024} {
		b.Run(fmt.Sprintf("zscore/w=%d/incremental", w), func(b *testing.B) {
			d := NewZScore(w, 3, 5)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.Step(data[i&(len(data)-1)])
			}
		})
		b.Run(fmt.Sprintf("zscore/w=%d/naive", w), func(b *testing.B) {
			d := &naiveZScore{Window: w, Threshold: 3, MinN: 5}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.Step(data[i&(len(data)-1)])
			}
		})
		b.Run(fmt.Sprintf("mad/w=%d/incremental", w), func(b *testing.B) {
			d := NewMAD(w, 4, 5)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.Step(data[i&(len(data)-1)])
			}
		})
		b.Run(fmt.Sprintf("mad/w=%d/naive", w), func(b *testing.B) {
			d := &naiveMAD{Window: w, Threshold: 4, MinN: 5}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.Step(data[i&(len(data)-1)])
			}
		})
		b.Run(fmt.Sprintf("ols/w=%d/incremental", w), func(b *testing.B) {
			d := NewWindowOLS(w)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.Observe(float64(i), data[i&(len(data)-1)])
				d.Fit()
			}
		})
		b.Run(fmt.Sprintf("ols/w=%d/naive", w), func(b *testing.B) {
			d := &naiveWindowOLS{Window: w}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.Observe(float64(i), data[i&(len(data)-1)])
				d.Fit()
			}
		})
	}
	// The cross-sectional scan every fleet loop runs per tick.
	fleet := make([]float64, 64)
	for i := range fleet {
		fleet[i] = 100 + rng.NormFloat64()
	}
	b.Run("madoutliers/n=64/quickselect", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MADOutliers(fleet, 50, 0)
		}
	})
	b.Run("madoutliers/n=64/sort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			naiveMADOutliers(fleet, 50, 0)
		}
	})
}
