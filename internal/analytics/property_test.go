package analytics

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// genStream builds an adversarial detector input: gaussian regimes, exact
// constant runs (including values like 0.1 whose repeated sums round), level
// shifts, near-constant ulp jitter, NaN and ±Inf bursts, and ramps — the
// segments where incremental state could drift away from the rescan
// reference if the degenerate paths were not exact.
func genStream(rng *rand.Rand, n int) []float64 {
	out := make([]float64, 0, n)
	consts := []float64{0, 1, 0.1, -3.7, 1e9, 5}
	for len(out) < n {
		seg := 5 + rng.Intn(40)
		switch rng.Intn(8) {
		case 0, 1, 2: // gaussian regime
			level := rng.NormFloat64() * 100
			scale := math.Exp(rng.NormFloat64() * 2)
			for i := 0; i < seg; i++ {
				out = append(out, level+rng.NormFloat64()*scale)
			}
		case 3: // exact constant run
			c := consts[rng.Intn(len(consts))]
			for i := 0; i < seg; i++ {
				out = append(out, c)
			}
		case 4: // near-constant: ulp-scale jitter around a constant
			c := consts[rng.Intn(len(consts))]
			for i := 0; i < seg; i++ {
				v := c
				if rng.Intn(3) == 0 {
					v = math.Nextafter(c, c+1)
				}
				out = append(out, v)
			}
		case 5: // NaN burst
			for i := 0; i < seg/2+1; i++ {
				out = append(out, math.NaN())
			}
		case 6: // ±Inf spikes into noise
			for i := 0; i < seg; i++ {
				if rng.Intn(4) == 0 {
					out = append(out, math.Inf(1-2*rng.Intn(2)))
				} else {
					out = append(out, rng.NormFloat64())
				}
			}
		default: // ramp
			slope := rng.NormFloat64()
			base := rng.NormFloat64() * 10
			for i := 0; i < seg; i++ {
				out = append(out, base+slope*float64(i))
			}
		}
	}
	return out[:n]
}

// TestZScoreMatchesReference feeds identical adversarial streams through the
// incremental ZScore and the retained rescan reference, requiring the same
// decision at every step.
func TestZScoreMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		window := 2 + rng.Intn(64)
		minN := 2 + rng.Intn(window)
		thr := []float64{0.5, 2, 3, 4}[rng.Intn(4)]
		inc := NewZScore(window, thr, minN)
		ref := &naiveZScore{Window: window, Threshold: thr, MinN: inc.MinN}
		stream := genStream(rng, 2000)
		for i, v := range stream {
			got, want := inc.Step(v), ref.Step(v)
			if got != want {
				t.Fatalf("trial %d (w=%d minN=%d thr=%v): step %d (v=%v): incremental=%v reference=%v",
					trial, window, minN, thr, i, v, got, want)
			}
			if rng.Intn(997) == 0 {
				inc.Reset()
				ref.Reset()
			}
		}
	}
}

// TestMADMatchesReference is the same equivalence gate for the sorted-window
// MAD detector, whose order statistics must match the sort-based form bit
// for bit.
func TestMADMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		window := 3 + rng.Intn(64)
		minN := 3 + rng.Intn(window)
		thr := []float64{0.5, 2, 4, 6}[rng.Intn(4)]
		inc := NewMAD(window, thr, minN)
		ref := &naiveMAD{Window: window, Threshold: thr, MinN: inc.MinN}
		stream := genStream(rng, 2000)
		for i, v := range stream {
			got, want := inc.Step(v), ref.Step(v)
			if got != want {
				t.Fatalf("trial %d (w=%d minN=%d thr=%v): step %d (v=%v): incremental=%v reference=%v",
					trial, window, minN, thr, i, v, got, want)
			}
			if rng.Intn(997) == 0 {
				inc.Reset()
				ref.Reset()
			}
		}
	}
}

// TestMADDuplicateHeavyStreams stresses the sorted window's insert/remove
// and the deviation merge with massive ties: values drawn from a handful of
// integers, where every quantile interpolates between duplicates.
func TestMADDuplicateHeavyStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	vals := []float64{1, 2, 2, 3, 5}
	inc := NewMAD(16, 2, 3)
	ref := &naiveMAD{Window: 16, Threshold: 2, MinN: 3}
	for i := 0; i < 20000; i++ {
		v := vals[rng.Intn(len(vals))]
		if got, want := inc.Step(v), ref.Step(v); got != want {
			t.Fatalf("step %d (v=%v): incremental=%v reference=%v", i, v, got, want)
		}
	}
}

// TestMADOutliersMatchesReference compares the quickselect cross-sectional
// outlier test against the sort-based reference on random fleets, including
// constant and duplicate-heavy ones.
func TestMADOutliersMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 500; trial++ {
		n := 3 + rng.Intn(40)
		vals := make([]float64, n)
		switch trial % 4 {
		case 0:
			for i := range vals {
				vals[i] = rng.NormFloat64() * 100
			}
		case 1: // constant fleet with occasional deviants
			c := []float64{5, 0.1, -2}[rng.Intn(3)]
			for i := range vals {
				vals[i] = c
				if rng.Intn(5) == 0 {
					vals[i] = c + rng.NormFloat64()
				}
			}
		case 2: // duplicate-heavy
			for i := range vals {
				vals[i] = float64(rng.Intn(4))
			}
		default: // one gross outlier among peers
			for i := range vals {
				vals[i] = 500 + rng.NormFloat64()*2
			}
			vals[rng.Intn(n)] = 50
		}
		dir := rng.Intn(3) - 1
		thr := []float64{2, 3, 5}[rng.Intn(3)]
		cp := append([]float64(nil), vals...)
		got := MADOutliers(vals, thr, dir)
		want := naiveMADOutliers(vals, thr, dir)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d (thr=%v dir=%d vals=%v): quickselect=%v sort=%v", trial, thr, dir, vals, got, want)
		}
		for i := range vals {
			if vals[i] != cp[i] && !(math.IsNaN(vals[i]) && math.IsNaN(cp[i])) {
				t.Fatalf("trial %d: MADOutliers mutated its input at %d", trial, i)
			}
		}
	}
}

// TestWindowOLSMatchesReference compares the rolling-sums OLS against the
// rescan reference. Fits on well-posed windows must agree to floating-point
// noise; degenerate windows (constant time, too few points, non-finite
// values) must agree exactly on the ok flag, and non-finite windows must
// take the bit-exact reference path.
func TestWindowOLSMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	within := func(a, b, tol float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return math.IsNaN(a) == math.IsNaN(b)
		}
		return math.Abs(a-b) <= tol
	}
	for trial := 0; trial < 20; trial++ {
		window := 2 + rng.Intn(60)
		inc := NewWindowOLS(window)
		ref := &naiveWindowOLS{Window: window}
		tt := 1e5 * rng.Float64() // realistic epoch-offset timestamps
		vals := genStream(rng, 3000)
		for i, v := range vals {
			// Mostly advancing time; occasional repeats and stalls exercise
			// the constant-timestamp degenerate path.
			switch rng.Intn(10) {
			case 0: // stall: same timestamp
			case 1:
				tt += 30
			default:
				tt += rng.Float64() * 60
			}
			if math.IsInf(v, 0) {
				v = rng.NormFloat64() // Inf*Inf overflows both forms differently; NaNs still covered
			}
			inc.Observe(tt, v)
			ref.Observe(tt, v)
			gi, gs, gr, gok := inc.Fit()
			wi, ws, wr, wok := ref.Fit()
			if gok != wok {
				t.Fatalf("trial %d step %d: ok=%v reference ok=%v", trial, i, gok, wok)
			}
			if !gok {
				continue
			}
			// Scale-aware tolerances: a slope near zero is only determined
			// to (value spread / time spread) resolution, an intercept to
			// |mt| times that, and a residual near the fit's noise floor to
			// a fraction of itself — exactly the floating-point resolution
			// the three-pass reference itself carries.
			tMin, tMax, vAbs, mt := ref.ts[0], ref.ts[0], 0.0, 0.0
			for k, tv := range ref.ts {
				tMin = math.Min(tMin, tv)
				tMax = math.Max(tMax, tv)
				vAbs = math.Max(vAbs, math.Abs(ref.vs[k]))
				mt += tv
			}
			mt /= float64(len(ref.ts))
			slopeScale := math.Abs(ws) + (vAbs+1)/math.Max(tMax-tMin, 1) + 1e-12
			if !within(gs, ws, 1e-6*slopeScale) ||
				!within(gi, wi, 1e-6*(math.Abs(wi)+math.Abs(mt)*slopeScale+vAbs+1)) ||
				!within(gr, wr, 0.01*wr+1e-9*(vAbs+1)) {
				t.Fatalf("trial %d step %d: fit (%v,%v,%v) vs reference (%v,%v,%v)",
					trial, i, gi, gs, gr, wi, ws, wr)
			}
			if rng.Intn(499) == 0 {
				inc.Reset()
				ref.ts, ref.vs = nil, nil
			}
		}
	}
}

// TestWindowOLSConstantTimeDegenerate pins the degenerate contract directly:
// a window whose timestamps are all identical must be rejected exactly as
// the reference rejects it, for every prefix.
func TestWindowOLSConstantTimeDegenerate(t *testing.T) {
	inc := NewWindowOLS(8)
	ref := &naiveWindowOLS{Window: 8}
	for i := 0; i < 40; i++ {
		inc.Observe(100, float64(i))
		ref.Observe(100, float64(i))
		_, _, _, gok := inc.Fit()
		_, _, _, wok := ref.Fit()
		if gok != wok {
			t.Fatalf("step %d: ok=%v, reference=%v", i, gok, wok)
		}
	}
}

// TestDetectorStepAllocs is the steady-state allocation gate: once warm, no
// detector step, forecaster observation, fit, or TTC estimate allocates.
func TestDetectorStepAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the gate runs in the non-race jobs")
	}
	rng := rand.New(rand.NewSource(61))
	data := make([]float64, 4096)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	idx := 0
	next := func() float64 {
		idx++
		return data[idx%len(data)]
	}

	z := NewZScore(64, 3, 5)
	m := NewMAD(64, 4, 5)
	c := NewCUSUM(10, 0.1, 1)
	for i := 0; i < 256; i++ { // warm every window
		v := next()
		z.Step(v)
		m.Step(v)
		c.Step(v)
	}
	for name, step := range map[string]func() bool{
		"zscore": func() bool { return z.Step(next()) },
		"mad":    func() bool { return m.Step(next()) },
		"cusum":  func() bool { return c.Step(next()) },
	} {
		if allocs := testing.AllocsPerRun(1000, func() { step() }); allocs != 0 {
			t.Errorf("%s.Step allocates %v per step; want 0", name, allocs)
		}
	}

	ols := NewWindowOLS(64)
	ttc := NewTTCEstimator(30)
	ttc.SetTotal(1e9)
	tt := 0.0
	for i := 0; i < 128; i++ {
		tt += 1 + rng.Float64()
		ols.Observe(tt, next())
		ttc.Observe(tt, float64(i))
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		tt += 1
		ols.Observe(tt, next())
		ols.Fit()
	}); allocs != 0 {
		t.Errorf("WindowOLS Observe+Fit allocates %v per step; want 0", allocs)
	}
	n := 128.0
	if allocs := testing.AllocsPerRun(1000, func() {
		tt += 1
		n++
		ttc.Observe(tt, n)
		ttc.Estimate(1.645)
	}); allocs != 0 {
		t.Errorf("TTCEstimator Observe+Estimate allocates %v per step; want 0", allocs)
	}

	// Cross-sectional scan: with no outliers to return, the pooled-scratch
	// quickselect allocates nothing.
	fleet := make([]float64, 64)
	for i := range fleet {
		fleet[i] = 100 + rng.Float64()
	}
	if allocs := testing.AllocsPerRun(1000, func() { MADOutliers(fleet, 50, 0) }); allocs != 0 {
		t.Errorf("MADOutliers allocates %v per scan with no outliers; want 0", allocs)
	}
}
