package analytics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSignatureDistanceIdentity(t *testing.T) {
	s := Signature{"iter_ms": 100, "io_frac": 0.2, "util": 0.9}
	if d := s.Distance(s); d != 0 {
		t.Errorf("self distance = %v", d)
	}
}

func TestSignatureDistanceOrdering(t *testing.T) {
	base := Signature{"iter_ms": 100, "util": 0.9}
	near := Signature{"iter_ms": 105, "util": 0.88}
	far := Signature{"iter_ms": 300, "util": 0.3}
	if base.Distance(near) >= base.Distance(far) {
		t.Errorf("near (%v) should be closer than far (%v)", base.Distance(near), base.Distance(far))
	}
}

func TestSignatureDisjointIsInfinite(t *testing.T) {
	a := Signature{"x": 1}
	b := Signature{"y": 1}
	if !math.IsInf(a.Distance(b), 1) {
		t.Error("disjoint signatures should be infinitely distant")
	}
}

func TestSignatureZeroDimensions(t *testing.T) {
	a := Signature{"x": 0, "y": 1}
	b := Signature{"x": 0, "y": 1}
	if d := a.Distance(b); d != 0 {
		t.Errorf("distance = %v, want 0 with zero-valued shared dims", d)
	}
}

func TestSignatureSymmetryProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 float64) bool {
		if anyBad(a1, a2, b1, b2) {
			return true
		}
		a := Signature{"p": a1, "q": a2}
		b := Signature{"p": b1, "q": b2}
		return math.Abs(a.Distance(b)-b.Distance(a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func anyBad(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

func TestNearestNeighbors(t *testing.T) {
	query := Signature{"iter_ms": 100}
	candidates := []Signature{
		{"iter_ms": 500}, // 0
		{"iter_ms": 101}, // 1: nearest
		{"iter_ms": 120}, // 2
		{"iter_ms": 99},  // 3: second nearest
	}
	ns := NearestNeighbors(query, candidates, 2)
	if len(ns) != 2 {
		t.Fatalf("got %d neighbors", len(ns))
	}
	if ns[0].Index != 1 || ns[1].Index != 3 {
		t.Errorf("neighbors = %+v", ns)
	}
}

func TestNearestNeighborsKExceedsCandidates(t *testing.T) {
	ns := NearestNeighbors(Signature{"x": 1}, []Signature{{"x": 2}}, 10)
	if len(ns) != 1 {
		t.Errorf("got %d, want 1", len(ns))
	}
	if got := NearestNeighbors(Signature{"x": 1}, nil, 3); len(got) != 0 {
		t.Error("no candidates should yield no neighbors")
	}
}

func TestNearestNeighborsDeterministicTies(t *testing.T) {
	query := Signature{"x": 1}
	candidates := []Signature{{"x": 2}, {"x": 2}, {"x": 2}}
	ns := NearestNeighbors(query, candidates, 3)
	for i, n := range ns {
		if n.Index != i {
			t.Errorf("tie order = %+v", ns)
		}
	}
}
