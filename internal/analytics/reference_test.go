package analytics

import (
	"math"
	"sort"
)

// This file retains the pre-streaming (naive) detector implementations
// verbatim: every Step rescans — and for MAD re-sorts — its whole window.
// They are the ground truth for the equivalence property tests and the
// baseline side of BenchmarkDetectorStep; the shipping detectors must match
// their decisions exactly on any input stream.

// naiveZScore is the reference rescan z-score detector.
type naiveZScore struct {
	Window    int
	Threshold float64
	MinN      int

	vals []float64
}

func (z *naiveZScore) Step(v float64) bool {
	defer func() {
		z.vals = append(z.vals, v)
		if len(z.vals) > z.Window {
			z.vals = z.vals[1:]
		}
	}()
	if len(z.vals) < z.MinN {
		return false
	}
	m := meanOf(z.vals)
	s := stddevOf(z.vals, m)
	if s == 0 {
		return v != m
	}
	return math.Abs(v-m)/s > z.Threshold
}

func (z *naiveZScore) Reset() { z.vals = nil }

// naiveMAD is the reference sort-per-step MAD detector.
type naiveMAD struct {
	Window    int
	Threshold float64
	MinN      int

	vals []float64
}

func (m *naiveMAD) Step(v float64) bool {
	defer func() {
		m.vals = append(m.vals, v)
		if len(m.vals) > m.Window {
			m.vals = m.vals[1:]
		}
	}()
	if len(m.vals) < m.MinN {
		return false
	}
	med, mad := naiveMedianMAD(m.vals)
	if mad == 0 {
		return v != med
	}
	return math.Abs(v-med)/(1.4826*mad) > m.Threshold
}

func (m *naiveMAD) Reset() { m.vals = nil }

// naiveMedianMAD is the sort-based median/MAD the quickselect form replaced.
func naiveMedianMAD(vals []float64) (median, mad float64) {
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	median = quantileSorted(sorted, 0.5)
	devs := make([]float64, len(vals))
	for i, v := range vals {
		devs[i] = math.Abs(v - median)
	}
	sort.Float64s(devs)
	mad = quantileSorted(devs, 0.5)
	return median, mad
}

// naiveMADOutliers is MADOutliers over the sort-based medianMAD.
func naiveMADOutliers(values []float64, threshold float64, direction int) []int {
	if len(values) < 3 {
		return nil
	}
	med, mad := naiveMedianMAD(values)
	if mad == 0 {
		var out []int
		for i, v := range values {
			if v != med && ((direction < 0 && v < med) || (direction > 0 && v > med) || direction == 0) {
				out = append(out, i)
			}
		}
		return out
	}
	scale := 1.4826 * mad
	var out []int
	for i, v := range values {
		dev := (v - med) / scale
		switch {
		case direction < 0 && dev < -threshold:
			out = append(out, i)
		case direction > 0 && dev > threshold:
			out = append(out, i)
		case direction == 0 && math.Abs(dev) > threshold:
			out = append(out, i)
		}
	}
	return out
}

// naiveWindowOLS is the reference reslice-and-rescan sliding OLS.
type naiveWindowOLS struct {
	Window int

	ts, vs []float64
}

func (w *naiveWindowOLS) Observe(t, v float64) {
	w.ts = append(w.ts, t)
	w.vs = append(w.vs, v)
	if len(w.ts) > w.Window {
		w.ts = w.ts[1:]
		w.vs = w.vs[1:]
	}
}

func (w *naiveWindowOLS) Fit() (intercept, slope, resStd float64, ok bool) {
	n := len(w.ts)
	if n < 2 {
		return 0, 0, 0, false
	}
	var st, sv float64
	for i := 0; i < n; i++ {
		st += w.ts[i]
		sv += w.vs[i]
	}
	mt, mv := st/float64(n), sv/float64(n)
	var stt, stv float64
	for i := 0; i < n; i++ {
		dt := w.ts[i] - mt
		stt += dt * dt
		stv += dt * (w.vs[i] - mv)
	}
	if stt == 0 {
		return 0, 0, 0, false
	}
	slope = stv / stt
	intercept = mv - slope*mt
	var sse float64
	for i := 0; i < n; i++ {
		r := w.vs[i] - (intercept + slope*w.ts[i])
		sse += r * r
	}
	dof := n - 2
	if dof < 1 {
		dof = 1
	}
	return intercept, slope, math.Sqrt(sse / float64(dof)), true
}
