package analytics

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestTTCSteadyRate(t *testing.T) {
	e := NewTTCEstimator(30)
	e.SetTotal(1000)
	// 2 iterations/second observed every 10s for 100s -> 200 done.
	for i := 0; i <= 10; i++ {
		tt := float64(i * 10)
		e.Observe(tt, 2*tt)
	}
	est := e.Estimate(1.96)
	if !est.OK() {
		t.Fatal("estimate should be OK")
	}
	// 800 remaining at 2/s = 400s.
	want := 400 * time.Second
	if est.Remaining != want {
		t.Errorf("remaining = %v, want %v", est.Remaining, want)
	}
	if est.Rate != 2 {
		t.Errorf("rate = %v", est.Rate)
	}
	if est.Lo > est.Remaining || est.Hi < est.Remaining {
		t.Errorf("interval [%v, %v] excludes mean %v", est.Lo, est.Hi, est.Remaining)
	}
}

func TestTTCNoisyRateHasWiderInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mk := func(noise float64) TTC {
		e := NewTTCEstimator(30)
		e.SetTotal(10000)
		done := 0.0
		for i := 0; i < 30; i++ {
			done += 10 + rng.NormFloat64()*noise
			e.Observe(float64(i*10), done)
		}
		return e.Estimate(1.96)
	}
	clean := mk(0.1)
	noisy := mk(5)
	cleanWidth := clean.Hi - clean.Lo
	noisyWidth := noisy.Hi - noisy.Lo
	if noisyWidth <= cleanWidth {
		t.Errorf("noisy interval (%v) should exceed clean (%v)", noisyWidth, cleanWidth)
	}
}

func TestTTCWithoutTotalNotOK(t *testing.T) {
	e := NewTTCEstimator(10)
	for i := 0; i < 10; i++ {
		e.Observe(float64(i), float64(i))
	}
	if e.Estimate(1.96).OK() {
		t.Error("estimate without total must not be OK")
	}
	if _, ok := e.Total(); ok {
		t.Error("Total should report unset")
	}
}

func TestTTCStalledProgressNotOK(t *testing.T) {
	e := NewTTCEstimator(10)
	e.SetTotal(100)
	for i := 0; i < 10; i++ {
		e.Observe(float64(i*10), 50) // no progress
	}
	if e.Estimate(1.96).OK() {
		t.Error("zero-rate estimate must not be OK")
	}
}

func TestTTCCompletedWork(t *testing.T) {
	e := NewTTCEstimator(10)
	e.SetTotal(100)
	for i := 0; i <= 10; i++ {
		e.Observe(float64(i), float64(i*10))
	}
	est := e.Estimate(1.96)
	if est.Remaining != 0 {
		t.Errorf("remaining = %v, want 0 at completion", est.Remaining)
	}
}

func TestTTCReset(t *testing.T) {
	e := NewTTCEstimator(10)
	e.SetTotal(100)
	e.Observe(0, 0)
	e.Observe(10, 20)
	e.Reset()
	if e.Estimate(1.96).OK() {
		t.Error("estimate after reset must not be OK")
	}
}

func TestSecDurBounds(t *testing.T) {
	if secDur(-5) != 0 {
		t.Error("negative seconds should clamp to 0")
	}
	if secDur(math.Inf(1)) <= 0 {
		t.Error("infinite seconds should clamp to a large positive duration")
	}
}
