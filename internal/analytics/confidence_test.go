package analytics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfidenceNeutralPrior(t *testing.T) {
	c := NewConfidenceTracker(0, 0)
	if got := c.Confidence(); got != 0.5 {
		t.Errorf("prior confidence = %v, want 0.5", got)
	}
}

func TestConfidenceRisesWithAccuracy(t *testing.T) {
	c := NewConfidenceTracker(0.25, 0.2)
	for i := 0; i < 20; i++ {
		c.Resolve(100, 101) // 1% error
	}
	if got := c.Confidence(); got < 0.9 {
		t.Errorf("confidence = %v, want > 0.9 for 1%% errors", got)
	}
	if c.N() != 20 {
		t.Errorf("N = %d", c.N())
	}
}

func TestConfidenceFallsWithError(t *testing.T) {
	c := NewConfidenceTracker(0.25, 0.2)
	for i := 0; i < 20; i++ {
		c.Resolve(200, 100) // 100% error
	}
	if got := c.Confidence(); got > 0.25 {
		t.Errorf("confidence = %v, want low for 100%% errors", got)
	}
	if math.Abs(c.MAPE()-1.0) > 0.01 {
		t.Errorf("MAPE = %v, want ~1.0", c.MAPE())
	}
}

func TestConfidenceHalfErrCalibration(t *testing.T) {
	c := NewConfidenceTracker(0.25, 1.0)
	c.Resolve(125, 100) // exactly 25% error
	if got := c.Confidence(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("confidence at half-error = %v, want 0.5", got)
	}
}

func TestConfidenceRecovers(t *testing.T) {
	c := NewConfidenceTracker(0.25, 0.3)
	for i := 0; i < 10; i++ {
		c.Resolve(200, 100)
	}
	low := c.Confidence()
	for i := 0; i < 30; i++ {
		c.Resolve(100, 100)
	}
	if got := c.Confidence(); got <= low {
		t.Errorf("confidence should recover: %v -> %v", low, got)
	}
	c.Reset()
	if c.N() != 0 || c.Confidence() != 0.5 {
		t.Error("Reset")
	}
}

func TestConfidenceZeroActual(t *testing.T) {
	c := NewConfidenceTracker(0.25, 0.2)
	c.Resolve(1, 0) // guarded division
	if got := c.Confidence(); got < 0 || got > 1 || math.IsNaN(got) {
		t.Errorf("confidence = %v, want valid [0,1]", got)
	}
}

// Property: confidence is always in [0,1].
func TestConfidenceBoundedProperty(t *testing.T) {
	f := func(pairs [][2]float64) bool {
		c := NewConfidenceTracker(0.25, 0.2)
		for _, p := range pairs {
			if math.IsNaN(p[0]) || math.IsNaN(p[1]) || math.IsInf(p[0], 0) || math.IsInf(p[1], 0) {
				continue
			}
			c.Resolve(p[0], p[1])
		}
		got := c.Confidence()
		return got >= 0 && got <= 1 && !math.IsNaN(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
