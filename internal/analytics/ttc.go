package analytics

import (
	"math"
	"time"
)

// TTC is a time-to-completion estimate with uncertainty, the quantity the
// Scheduler use case's Plan phase consumes: "a few simple measurable
// quantities can be used to forecast time to completion which will be used,
// in conjunction with the remaining allocation time, to plan what action,
// if any, to take."
type TTC struct {
	// Remaining is the expected time until the work completes.
	Remaining time.Duration
	// Lo/Hi bound Remaining at the requested confidence.
	Lo, Hi time.Duration
	// Rate is the estimated progress rate (units of work per second).
	Rate float64
	// N is the number of progress observations used.
	N int
}

// OK reports whether the estimate is actionable.
func (t TTC) OK() bool { return t.N >= 2 && t.Rate > 0 }

// TTCEstimator turns progress-marker observations (work done vs time) into
// time-to-completion estimates by fitting the recent progress rate.
type TTCEstimator struct {
	ols       *WindowOLS
	total     float64
	lastT     float64
	lastV     float64
	haveTotal bool
}

// NewTTCEstimator builds an estimator over a sliding window of the given
// number of progress markers (e.g. 30).
func NewTTCEstimator(window int) *TTCEstimator {
	return &TTCEstimator{ols: NewWindowOLS(window)}
}

// SetTotal declares the total work (e.g. the input deck's iteration count).
func (e *TTCEstimator) SetTotal(total float64) {
	e.total = total
	e.haveTotal = true
}

// Total returns the declared total work.
func (e *TTCEstimator) Total() (float64, bool) { return e.total, e.haveTotal }

// Observe feeds one progress marker: at time t (seconds), done units of work
// were complete.
func (e *TTCEstimator) Observe(t, done float64) {
	e.ols.Observe(t, done)
	e.lastT, e.lastV = t, done
}

// Reset clears the observation window (used at restarts).
func (e *TTCEstimator) Reset() { e.ols.Reset() }

// Estimate returns the time-to-completion estimate at z standard deviations
// of rate uncertainty (1.96 for ~95%). It degrades gracefully: without a
// total or rate it returns a non-OK estimate.
func (e *TTCEstimator) Estimate(z float64) TTC {
	_, slope, resStd, sxx, ok := e.ols.fit()
	n := e.ols.Len()
	if !ok || !e.haveTotal || slope <= 0 {
		return TTC{N: n}
	}
	left := e.total - e.lastV
	if left <= 0 {
		return TTC{N: n, Rate: slope} // already done
	}
	mean := left / slope

	// Rate uncertainty: propagate the OLS slope's standard error into the
	// remaining-time estimate. SE(slope) = resStd / sqrt(Sxx); the fit
	// already carries the centered time spread, so no pass over the window.
	rateSE := 0.0
	if sxx > 0 {
		rateSE = resStd / math.Sqrt(sxx)
	}
	loRate := slope - z*rateSE
	hiRate := slope + z*rateSE
	lo := left / hiRate
	hi := mean * 3 // cap when the slow-rate bound collapses
	if loRate > 0 {
		hi = left / loRate
	}
	return TTC{
		Remaining: secDur(mean),
		Lo:        secDur(lo),
		Hi:        secDur(hi),
		Rate:      slope,
		N:         n,
	}
}

func secDur(s float64) time.Duration {
	if math.IsInf(s, 1) || s > 1e12 {
		return time.Duration(math.MaxInt64 / 4)
	}
	if s < 0 {
		s = 0
	}
	return time.Duration(s * float64(time.Second))
}
