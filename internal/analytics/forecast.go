// Package analytics provides the Analyze-phase building blocks of the MODA
// autonomy loops: streaming forecasters with uncertainty, time-to-completion
// estimation, anomaly detectors, model-confidence tracking, and behavioral
// signatures for comparing application runs against history.
//
// Everything here is deliberately lightweight — the paper's §IV argues that
// "large models with millions of parameters ... may not be efficient when
// complex optimizations for real-time decisions must be made" and calls for
// efficient, interpretable models; these are closed-form streaming estimators
// with O(1) or O(window) state whose outputs carry explicit uncertainty.
package analytics

import (
	"fmt"
	"math"
)

// Forecast is a point prediction with a symmetric uncertainty band.
type Forecast struct {
	Value float64
	// Stddev is the predictive standard deviation estimated from recent
	// one-step-ahead residuals.
	Stddev float64
	// N is the number of observations behind the forecast.
	N int
}

// OK reports whether the forecast is backed by enough data to act on.
func (f Forecast) OK() bool { return f.N >= 2 && !math.IsNaN(f.Value) }

// Interval returns the forecast's symmetric confidence interval at z standard
// deviations (z=1.96 for ~95%).
func (f Forecast) Interval(z float64) (lo, hi float64) {
	return f.Value - z*f.Stddev, f.Value + z*f.Stddev
}

// Forecaster consumes a time series one observation at a time and predicts
// the value horizon seconds ahead.
type Forecaster interface {
	// Observe feeds one observation at time t (seconds).
	Observe(t, v float64)
	// Predict forecasts the value at time t+horizon given the data so far.
	Predict(horizon float64) Forecast
	// Reset clears all state.
	Reset()
}

// EWMA is an exponentially weighted moving average forecaster: it predicts a
// flat continuation of the smoothed level. Alpha in (0, 1] is the smoothing
// weight of the newest observation.
type EWMA struct {
	Alpha float64

	level  float64
	n      int
	resVar float64 // EW variance of one-step residuals
}

// NewEWMA returns an EWMA forecaster with the given alpha.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("analytics: EWMA alpha %v out of (0,1]", alpha))
	}
	return &EWMA{Alpha: alpha}
}

// Observe implements Forecaster.
func (e *EWMA) Observe(t, v float64) {
	_ = t
	if e.n == 0 {
		e.level = v
		e.n = 1
		return
	}
	res := v - e.level
	e.resVar = (1-e.Alpha)*e.resVar + e.Alpha*res*res
	e.level += e.Alpha * res
	e.n++
}

// Predict implements Forecaster.
func (e *EWMA) Predict(horizon float64) Forecast {
	_ = horizon
	return Forecast{Value: e.level, Stddev: math.Sqrt(e.resVar), N: e.n}
}

// Reset implements Forecaster.
func (e *EWMA) Reset() { *e = EWMA{Alpha: e.Alpha} }

// Holt is double exponential smoothing (level + trend), the workhorse for
// progress-rate series that drift. Alpha smooths the level, Beta the trend.
type Holt struct {
	Alpha, Beta float64

	level, trend float64
	lastT        float64
	n            int
	resVar       float64
}

// NewHolt returns a Holt linear-trend forecaster.
func NewHolt(alpha, beta float64) *Holt {
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		panic(fmt.Sprintf("analytics: Holt parameters (%v, %v) out of (0,1]", alpha, beta))
	}
	return &Holt{Alpha: alpha, Beta: beta}
}

// Observe implements Forecaster. Observations carry their own timestamps, so
// irregular sampling is handled by scaling the trend per second.
func (h *Holt) Observe(t, v float64) {
	if h.n == 0 {
		h.level, h.lastT, h.n = v, t, 1
		return
	}
	dt := t - h.lastT
	if dt <= 0 {
		dt = 1e-9
	}
	pred := h.level + h.trend*dt
	res := v - pred
	h.resVar = (1-h.Alpha)*h.resVar + h.Alpha*res*res
	newLevel := pred + h.Alpha*res
	h.trend = (1-h.Beta)*h.trend + h.Beta*(newLevel-h.level)/dt
	h.level = newLevel
	h.lastT = t
	h.n++
}

// Predict implements Forecaster.
func (h *Holt) Predict(horizon float64) Forecast {
	return Forecast{Value: h.level + h.trend*horizon, Stddev: math.Sqrt(h.resVar), N: h.n}
}

// Reset implements Forecaster.
func (h *Holt) Reset() { *h = Holt{Alpha: h.Alpha, Beta: h.Beta} }

// Trend returns the current per-second trend estimate.
func (h *Holt) Trend() float64 { return h.trend }

// Level returns the current level estimate.
func (h *Holt) Level() float64 { return h.level }

// WindowOLS fits ordinary least squares over a sliding window of the last
// Window observations, predicting by extrapolating the fitted line. It is
// the estimator the Scheduler case uses on progress markers: slope = progress
// rate, with a residual-based predictive interval.
//
// Observations live in fixed ring buffers (no backing-array churn) and the
// fit's moments are maintained as rolling sums, so Observe is O(1) and Fit
// is O(1) instead of three passes over the window. The sums are rebuilt
// exactly from the rings every Window observations, and the fit falls back
// to the exact three-pass reference whenever the window is degenerate
// (constant timestamps, cancelled spread, non-finite values), so decision
// behavior matches the naive form.
type WindowOLS struct {
	Window int

	ts, vs  []float64
	head, n int
	// Rolling moments of (t - kt) and (v - kv), centered on pivots so that
	// cancellation scales with the window's spread rather than its absolute
	// offset (timestamps sit at 1e5 seconds with a few hundred seconds of
	// window span; raw Σt² would lose five digits to cancellation). The
	// pivots re-anchor to current window values at every periodic recompute.
	st, sv, stt, stv, svv float64
	kt, kv                float64
	// peakTT/peakVV are the largest second moments since the last recompute:
	// rolling error is bounded by ~Window*eps*peak, so once a large-magnitude
	// burst leaves the window the fit diverts to the exact path until a
	// recompute re-anchors.
	peakTT, peakVV float64
	// nonFinite counts NaN/±Inf observations (either coordinate) in the
	// window: they poison rolling sums beyond eviction, so fits go through
	// the exact path while any are present.
	nonFinite int
	// tRun is the trailing run of identical timestamps; tRun >= n means the
	// time spread may be exactly zero, which only the exact path decides.
	tRun        int
	lastT       float64
	toRecompute int
}

// NewWindowOLS returns a sliding-window OLS forecaster.
func NewWindowOLS(window int) *WindowOLS {
	if window < 2 {
		panic("analytics: OLS window must be >= 2")
	}
	return &WindowOLS{Window: window, ts: make([]float64, window), vs: make([]float64, window)}
}

// Len returns the number of observations currently in the window.
func (w *WindowOLS) Len() int { return w.n }

// Observe implements Forecaster.
func (w *WindowOLS) Observe(t, v float64) {
	if w.ts == nil {
		win := w.Window
		if win < 2 {
			win = 2
		}
		w.ts = make([]float64, win)
		w.vs = make([]float64, win)
	}
	win := len(w.ts)
	if w.n == win {
		ot, ov := w.ts[w.head], w.vs[w.head]
		w.head++
		if w.head == win {
			w.head = 0
		}
		w.n--
		a, b := ot-w.kt, ov-w.kv
		w.st -= a
		w.sv -= b
		w.stt -= a * a
		w.stv -= a * b
		w.svv -= b * b
		if isNonFinite(ot) || isNonFinite(ov) {
			if w.nonFinite--; w.nonFinite == 0 {
				w.recompute()
			}
		}
	}
	pos := w.head + w.n
	if pos >= win {
		pos -= win
	}
	w.ts[pos] = t
	w.vs[pos] = v
	if w.n == 0 {
		w.kt, w.kv = t, v
		if isNonFinite(t) {
			w.kt = 0
		}
		if isNonFinite(v) {
			w.kv = 0
		}
	}
	w.n++
	a, b := t-w.kt, v-w.kv
	w.st += a
	w.sv += b
	w.stt += a * a
	w.stv += a * b
	w.svv += b * b
	if w.stt > w.peakTT {
		w.peakTT = w.stt
	}
	if w.svv > w.peakVV {
		w.peakVV = w.svv
	}
	if isNonFinite(t) || isNonFinite(v) {
		w.nonFinite++
	}
	if w.tRun > 0 && t == w.lastT {
		w.tRun++
	} else {
		w.tRun = 1
	}
	w.lastT = t
	if w.toRecompute--; w.toRecompute <= 0 {
		if w.nonFinite == 0 {
			w.recompute()
		}
		w.toRecompute = win
	}
}

// recompute re-anchors the pivots to current window values and rebuilds the
// rolling moments exactly from the rings, bounding drift to one window's
// worth of updates.
func (w *WindowOLS) recompute() {
	win := len(w.ts)
	if w.n > 0 {
		w.kt, w.kv = w.ts[w.head], w.vs[w.head]
	}
	w.st, w.sv, w.stt, w.stv, w.svv = 0, 0, 0, 0, 0
	for i := 0; i < w.n; i++ {
		idx := (w.head + i) % win
		a, b := w.ts[idx]-w.kt, w.vs[idx]-w.kv
		w.st += a
		w.sv += b
		w.stt += a * a
		w.stv += a * b
		w.svv += b * b
	}
	w.peakTT, w.peakVV = w.stt, w.svv
}

// Fit returns the current intercept, slope, and residual stddev; ok is false
// with fewer than two points or a degenerate time spread.
func (w *WindowOLS) Fit() (intercept, slope, resStd float64, ok bool) {
	intercept, slope, resStd, _, ok = w.fit()
	return intercept, slope, resStd, ok
}

// fit is Fit plus the centered time spread Sxx (the slope's standard-error
// denominator), computed from the rolling moments on the fast path.
func (w *WindowOLS) fit() (intercept, slope, resStd, sxx float64, ok bool) {
	n := w.n
	if n < 2 {
		return 0, 0, 0, 0, false
	}
	if w.nonFinite > 0 || w.tRun >= n {
		return w.fitExact()
	}
	fn := float64(n)
	// Centered first moments: ma/mb are the means of (t-kt)/(v-kv).
	ma, mb := w.st/fn, w.sv/fn
	mt, mv := w.kt+ma, w.kv+mb
	sxx = w.stt - fn*ma*ma
	// Degenerate-spread guards, mirroring ZScore's: when the centered sums
	// cancel to their own drift scale, or the spread sits at the rounding
	// noise of the timestamps' magnitude (where the reference's answer is
	// itself noise), only the exact pass is meaningful.
	wf := float64(len(w.ts))
	tFloor := fn * ulpEps * mt
	if sxx <= 0 || sxx <= wf*ulpEps*w.peakTT*1e4 || sxx <= fn*tFloor*tFloor*100 {
		return w.fitExact()
	}
	syy := w.svv - fn*mb*mb
	if syy <= wf*ulpEps*w.peakVV*1e4 {
		return w.fitExact()
	}
	sxy := w.stv - fn*ma*mb
	slope = sxy / sxx
	intercept = mv - slope*mt
	sse := syy - slope*sxy
	// Residual floor: below the larger of the reference's two-pass noise and
	// the rolling sums' cancellation scale, an O(1) SSE is indistinguishable
	// from zero — let the exact pass produce the reference's answer.
	vFloor := fn * ulpEps * (math.Abs(mv) + math.Abs(slope*mt))
	rollFloor := wf * ulpEps * (w.peakVV + slope*slope*w.peakTT)
	if sse <= 0 || sse <= fn*vFloor*vFloor*100 || sse <= rollFloor*256 {
		return w.fitExact()
	}
	dof := n - 2
	if dof < 1 {
		dof = 1
	}
	return intercept, slope, math.Sqrt(sse / float64(dof)), sxx, true
}

// fitExact is the reference three-pass fit over the window in arrival order.
func (w *WindowOLS) fitExact() (intercept, slope, resStd, sxx float64, ok bool) {
	n := w.n
	win := len(w.ts)
	var st, sv float64
	for i := 0; i < n; i++ {
		idx := (w.head + i) % win
		st += w.ts[idx]
		sv += w.vs[idx]
	}
	mt, mv := st/float64(n), sv/float64(n)
	var stt, stv float64
	for i := 0; i < n; i++ {
		idx := (w.head + i) % win
		dt := w.ts[idx] - mt
		stt += dt * dt
		stv += dt * (w.vs[idx] - mv)
	}
	if stt == 0 {
		return 0, 0, 0, 0, false
	}
	slope = stv / stt
	intercept = mv - slope*mt
	var sse float64
	for i := 0; i < n; i++ {
		idx := (w.head + i) % win
		r := w.vs[idx] - (intercept + slope*w.ts[idx])
		sse += r * r
	}
	dof := n - 2
	if dof < 1 {
		dof = 1
	}
	return intercept, slope, math.Sqrt(sse / float64(dof)), stt, true
}

// Predict implements Forecaster.
func (w *WindowOLS) Predict(horizon float64) Forecast {
	n := w.n
	intercept, slope, resStd, _, ok := w.fit()
	if !ok {
		return Forecast{N: n, Value: math.NaN()}
	}
	last := w.ts[(w.head+n-1)%len(w.ts)]
	return Forecast{Value: intercept + slope*(last+horizon), Stddev: resStd, N: n}
}

// Reset implements Forecaster, retaining the window's capacity.
func (w *WindowOLS) Reset() {
	w.head, w.n = 0, 0
	w.st, w.sv, w.stt, w.stv, w.svv = 0, 0, 0, 0, 0
	w.peakTT, w.peakVV = 0, 0
	w.nonFinite, w.tRun, w.toRecompute = 0, 0, 0
}

// Slope returns the fitted slope (zero when underdetermined).
func (w *WindowOLS) Slope() float64 {
	_, slope, _, ok := w.Fit()
	if !ok {
		return 0
	}
	return slope
}
