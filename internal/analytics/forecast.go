// Package analytics provides the Analyze-phase building blocks of the MODA
// autonomy loops: streaming forecasters with uncertainty, time-to-completion
// estimation, anomaly detectors, model-confidence tracking, and behavioral
// signatures for comparing application runs against history.
//
// Everything here is deliberately lightweight — the paper's §IV argues that
// "large models with millions of parameters ... may not be efficient when
// complex optimizations for real-time decisions must be made" and calls for
// efficient, interpretable models; these are closed-form streaming estimators
// with O(1) or O(window) state whose outputs carry explicit uncertainty.
package analytics

import (
	"fmt"
	"math"
)

// Forecast is a point prediction with a symmetric uncertainty band.
type Forecast struct {
	Value float64
	// Stddev is the predictive standard deviation estimated from recent
	// one-step-ahead residuals.
	Stddev float64
	// N is the number of observations behind the forecast.
	N int
}

// OK reports whether the forecast is backed by enough data to act on.
func (f Forecast) OK() bool { return f.N >= 2 && !math.IsNaN(f.Value) }

// Interval returns the forecast's symmetric confidence interval at z standard
// deviations (z=1.96 for ~95%).
func (f Forecast) Interval(z float64) (lo, hi float64) {
	return f.Value - z*f.Stddev, f.Value + z*f.Stddev
}

// Forecaster consumes a time series one observation at a time and predicts
// the value horizon seconds ahead.
type Forecaster interface {
	// Observe feeds one observation at time t (seconds).
	Observe(t, v float64)
	// Predict forecasts the value at time t+horizon given the data so far.
	Predict(horizon float64) Forecast
	// Reset clears all state.
	Reset()
}

// EWMA is an exponentially weighted moving average forecaster: it predicts a
// flat continuation of the smoothed level. Alpha in (0, 1] is the smoothing
// weight of the newest observation.
type EWMA struct {
	Alpha float64

	level  float64
	n      int
	resVar float64 // EW variance of one-step residuals
}

// NewEWMA returns an EWMA forecaster with the given alpha.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("analytics: EWMA alpha %v out of (0,1]", alpha))
	}
	return &EWMA{Alpha: alpha}
}

// Observe implements Forecaster.
func (e *EWMA) Observe(t, v float64) {
	_ = t
	if e.n == 0 {
		e.level = v
		e.n = 1
		return
	}
	res := v - e.level
	e.resVar = (1-e.Alpha)*e.resVar + e.Alpha*res*res
	e.level += e.Alpha * res
	e.n++
}

// Predict implements Forecaster.
func (e *EWMA) Predict(horizon float64) Forecast {
	_ = horizon
	return Forecast{Value: e.level, Stddev: math.Sqrt(e.resVar), N: e.n}
}

// Reset implements Forecaster.
func (e *EWMA) Reset() { *e = EWMA{Alpha: e.Alpha} }

// Holt is double exponential smoothing (level + trend), the workhorse for
// progress-rate series that drift. Alpha smooths the level, Beta the trend.
type Holt struct {
	Alpha, Beta float64

	level, trend float64
	lastT        float64
	n            int
	resVar       float64
}

// NewHolt returns a Holt linear-trend forecaster.
func NewHolt(alpha, beta float64) *Holt {
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		panic(fmt.Sprintf("analytics: Holt parameters (%v, %v) out of (0,1]", alpha, beta))
	}
	return &Holt{Alpha: alpha, Beta: beta}
}

// Observe implements Forecaster. Observations carry their own timestamps, so
// irregular sampling is handled by scaling the trend per second.
func (h *Holt) Observe(t, v float64) {
	if h.n == 0 {
		h.level, h.lastT, h.n = v, t, 1
		return
	}
	dt := t - h.lastT
	if dt <= 0 {
		dt = 1e-9
	}
	pred := h.level + h.trend*dt
	res := v - pred
	h.resVar = (1-h.Alpha)*h.resVar + h.Alpha*res*res
	newLevel := pred + h.Alpha*res
	h.trend = (1-h.Beta)*h.trend + h.Beta*(newLevel-h.level)/dt
	h.level = newLevel
	h.lastT = t
	h.n++
}

// Predict implements Forecaster.
func (h *Holt) Predict(horizon float64) Forecast {
	return Forecast{Value: h.level + h.trend*horizon, Stddev: math.Sqrt(h.resVar), N: h.n}
}

// Reset implements Forecaster.
func (h *Holt) Reset() { *h = Holt{Alpha: h.Alpha, Beta: h.Beta} }

// Trend returns the current per-second trend estimate.
func (h *Holt) Trend() float64 { return h.trend }

// Level returns the current level estimate.
func (h *Holt) Level() float64 { return h.level }

// WindowOLS fits ordinary least squares over a sliding window of the last
// Window observations, predicting by extrapolating the fitted line. It is
// the estimator the Scheduler case uses on progress markers: slope = progress
// rate, with a residual-based predictive interval.
type WindowOLS struct {
	Window int

	ts, vs []float64
}

// NewWindowOLS returns a sliding-window OLS forecaster.
func NewWindowOLS(window int) *WindowOLS {
	if window < 2 {
		panic("analytics: OLS window must be >= 2")
	}
	return &WindowOLS{Window: window}
}

// Observe implements Forecaster.
func (w *WindowOLS) Observe(t, v float64) {
	w.ts = append(w.ts, t)
	w.vs = append(w.vs, v)
	if len(w.ts) > w.Window {
		w.ts = w.ts[1:]
		w.vs = w.vs[1:]
	}
}

// Fit returns the current intercept, slope, and residual stddev; ok is false
// with fewer than two points or a degenerate time spread.
func (w *WindowOLS) Fit() (intercept, slope, resStd float64, ok bool) {
	n := len(w.ts)
	if n < 2 {
		return 0, 0, 0, false
	}
	var st, sv float64
	for i := 0; i < n; i++ {
		st += w.ts[i]
		sv += w.vs[i]
	}
	mt, mv := st/float64(n), sv/float64(n)
	var stt, stv float64
	for i := 0; i < n; i++ {
		dt := w.ts[i] - mt
		stt += dt * dt
		stv += dt * (w.vs[i] - mv)
	}
	if stt == 0 {
		return 0, 0, 0, false
	}
	slope = stv / stt
	intercept = mv - slope*mt
	var sse float64
	for i := 0; i < n; i++ {
		r := w.vs[i] - (intercept + slope*w.ts[i])
		sse += r * r
	}
	dof := n - 2
	if dof < 1 {
		dof = 1
	}
	return intercept, slope, math.Sqrt(sse / float64(dof)), true
}

// Predict implements Forecaster.
func (w *WindowOLS) Predict(horizon float64) Forecast {
	n := len(w.ts)
	intercept, slope, resStd, ok := w.Fit()
	if !ok {
		return Forecast{N: n, Value: math.NaN()}
	}
	last := w.ts[n-1]
	return Forecast{Value: intercept + slope*(last+horizon), Stddev: resStd, N: n}
}

// Reset implements Forecaster.
func (w *WindowOLS) Reset() { w.ts, w.vs = nil, nil }

// Slope returns the fitted slope (zero when underdetermined).
func (w *WindowOLS) Slope() float64 {
	_, slope, _, ok := w.Fit()
	if !ok {
		return 0
	}
	return slope
}
