package telemetry

import "time"

// Querier is the read surface of the telemetry store: everything a loop's
// Monitor/Analyze phases need from the Knowledge raw-data plane. The cases
// and analytics helpers depend on this interface rather than on a concrete
// database, so a production deployment can put DCDB/Prometheus/Examon behind
// the same calls (paper question (ii)); *tsdb.DB is the in-tree
// implementation.
type Querier interface {
	// Query returns every series of name whose labels match the matcher,
	// restricted to samples in [from, to], sorted by label key.
	Query(name string, matcher Labels, from, to time.Duration) []Series
	// QueryOne is Query for callers expecting exactly one match.
	QueryOne(name string, matcher Labels, from, to time.Duration) (Series, bool)
	// Latest returns the newest point of every matching series.
	Latest(name string, matcher Labels) []Point
	// LatestValue returns the newest value of the last matching series in
	// label-key order, allocation-free.
	LatestValue(name string, matcher Labels) (float64, bool)
}

// Store combines the ingest and query halves of a telemetry database — what
// a Pipeline's sink offers when it is a full TSDB rather than a plain sink.
type Store interface {
	Sink
	Querier
}
