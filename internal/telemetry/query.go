package telemetry

import "time"

// SeriesVisitor receives one matching series during QueryVisit. The samples
// slice aliases store memory and is valid only for the duration of the call
// (the store may hold internal locks while visiting); labels alias the
// store's canonical label set and must not be mutated. Copy anything that
// must outlive the visit.
type SeriesVisitor func(labels Labels, samples []Sample)

// Querier is the read surface of the telemetry store: everything a loop's
// Monitor/Analyze phases need from the Knowledge raw-data plane. The cases
// and analytics helpers depend on this interface rather than on a concrete
// database, so a production deployment can put DCDB/Prometheus/Examon behind
// the same calls (paper question (ii)); *tsdb.DB is the in-tree
// implementation.
//
// The surface comes in two halves. Query/QueryOne/Latest materialize
// independent copies — convenient for one-shot reporting, but they allocate
// per call. The visitor/fill-buffer half (QueryVisit, WindowInto, LatestInto)
// streams the same data into a callback or a caller-owned buffer with zero
// steady-state allocations; tick-time readers (detector polls, Monitor
// phases) should use it.
type Querier interface {
	// Query returns every series of name whose labels match the matcher,
	// restricted to samples in [from, to], sorted by label key.
	Query(name string, matcher Labels, from, to time.Duration) []Series
	// QueryOne is Query for callers expecting exactly one match.
	QueryOne(name string, matcher Labels, from, to time.Duration) (Series, bool)
	// Latest returns the newest point of every matching series.
	Latest(name string, matcher Labels) []Point
	// LatestValue returns the newest value of the last matching series in
	// label-key order, allocation-free.
	LatestValue(name string, matcher Labels) (float64, bool)
	// QueryVisit streams every series Query would return to visit, without
	// materializing copies: one call per matching series with at least one
	// sample in [from, to]. Visit order is unspecified (unlike Query's
	// label-key order); callers that need deterministic concatenation use
	// WindowInto.
	QueryVisit(name string, matcher Labels, from, to time.Duration, visit SeriesVisitor)
	// WindowInto appends the values of every matching series in [from, to]
	// to buf — concatenated in label-key order, exactly the values Query
	// would carry — and returns the extended buffer. With a warm buffer it
	// performs no allocations.
	WindowInto(buf []float64, name string, matcher Labels, from, to time.Duration) []float64
	// LatestInto appends the newest point of every matching series to buf in
	// label-key order and returns the extended buffer. Unlike Latest, the
	// appended points' Labels alias the store's canonical (immutable) label
	// sets instead of cloning them; treat them as read-only.
	LatestInto(buf []Point, name string, matcher Labels) []Point
}

// Store combines the ingest and query halves of a telemetry database — what
// a Pipeline's sink offers when it is a full TSDB rather than a plain sink.
type Store interface {
	Sink
	Querier
}
