// Package telemetry defines the metric data model shared by every monitored
// substrate and every MAPE-K loop: labeled points, series, collectors, and
// registries.
//
// The model follows the conventions of production HPC monitoring stacks
// (LDMS, DCDB, Prometheus): a metric has a name, a set of string labels
// identifying the emitting entity (node, job, OST, tenant, ...), and
// float64 samples at virtual timestamps. Keeping the model this small is
// what makes loop components interchangeable (paper question (ii)): any
// Monitor implementation produces Points, any Analyze implementation
// consumes series of them.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Labels identifies the entity a metric describes, e.g.
// {"node": "n012", "job": "1234"}.
type Labels map[string]string

// Clone returns an independent copy of l.
func (l Labels) Clone() Labels {
	if l == nil {
		return nil
	}
	c := make(Labels, len(l))
	for k, v := range l {
		c[k] = v
	}
	return c
}

// Key returns a canonical string form of l ("a=1,b=2" with sorted keys),
// usable as a map key. The empty label set yields "".
func (l Labels) Key() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(l[k])
	}
	return b.String()
}

// Matches reports whether every label in matcher is present in l with an
// equal value. A nil or empty matcher matches everything.
func (l Labels) Matches(matcher Labels) bool {
	for k, v := range matcher {
		if l[k] != v {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (l Labels) String() string { return "{" + l.Key() + "}" }

// Point is a single observation of a metric.
type Point struct {
	Name   string
	Labels Labels
	Time   time.Duration // virtual time since the simulation epoch
	Value  float64
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("%s%s=%g@%v", p.Name, p.Labels, p.Value, p.Time)
}

// Sample is one (time, value) pair within a series.
type Sample struct {
	Time  time.Duration
	Value float64
}

// Series is an ordered sequence of samples for one (name, labels) identity.
type Series struct {
	Name    string
	Labels  Labels
	Samples []Sample
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Samples) }

// Values returns the sample values as a slice, for feeding analytics.
func (s *Series) Values() []float64 {
	vs := make([]float64, len(s.Samples))
	for i, smp := range s.Samples {
		vs[i] = smp.Value
	}
	return vs
}

// Last returns the most recent sample and whether one exists.
func (s *Series) Last() (Sample, bool) {
	if len(s.Samples) == 0 {
		return Sample{}, false
	}
	return s.Samples[len(s.Samples)-1], true
}

// Collector is implemented by every monitored substrate component. Collect
// reports the component's current sensor readings at virtual time now.
type Collector interface {
	Collect(now time.Duration) []Point
}

// CollectorFunc adapts a plain function to the Collector interface.
type CollectorFunc func(now time.Duration) []Point

// Collect implements Collector.
func (f CollectorFunc) Collect(now time.Duration) []Point { return f(now) }

// Registry aggregates collectors, forming the "Sensors" plane of the paper's
// Fig. 1: facility, hardware, system software, and application collectors all
// register here, and the monitoring pipeline gathers them at one sampling
// cadence.
type Registry struct {
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// NewRegistryOf returns a registry pre-populated with cs, in order.
func NewRegistryOf(cs ...Collector) *Registry {
	r := NewRegistry()
	for _, c := range cs {
		r.Register(c)
	}
	return r
}

// Register adds c to the registry.
func (r *Registry) Register(c Collector) {
	if c == nil {
		panic("telemetry: Register called with nil collector")
	}
	r.collectors = append(r.collectors, c)
}

// Size reports the number of registered collectors.
func (r *Registry) Size() int { return len(r.collectors) }

// Gather collects from every registered collector in registration order.
func (r *Registry) Gather(now time.Duration) []Point {
	return r.GatherInto(now, nil)
}

// GatherInto is Gather appending into buf, so steady-state sampling loops
// can reuse one buffer across rounds instead of reallocating per sample.
func (r *Registry) GatherInto(now time.Duration, buf []Point) []Point {
	for _, c := range r.collectors {
		buf = append(buf, c.Collect(now)...)
	}
	return buf
}
