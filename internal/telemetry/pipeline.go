package telemetry

import (
	"time"

	"autoloop/internal/bus"
)

// TopicPrefix is the envelope topic namespace for telemetry points: a point
// named "node.temp.celsius" travels on "telemetry.node.temp.celsius", so
// subscribers pick metrics with exact topics and domains with "telemetry.*".
const TopicPrefix = "telemetry."

// Sink ingests gathered point batches in one pass; *tsdb.DB implements it.
// The batch slice is only valid for the duration of the call.
type Sink interface {
	AppendBatch(pts []Point) error
}

// WirePoint is the envelope payload for telemetry points: stable lowercase
// JSON keys for wire clients (matching Envelope's own topic/time/source
// fields), and a typed value for in-process subscribers. The sample time is
// carried by the envelope's Time field, not duplicated here.
type WirePoint struct {
	Name   string  `json:"name"`
	Labels Labels  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// Pipeline is the batched monitoring plane of the paper's Fig. 1: one
// sampling cadence gathers every registered collector, hands the whole batch
// to the storage sink in a single pass, and (optionally) publishes the batch
// on the bus — one PublishBatch per sample instead of one envelope per
// point, which removes the per-point lock and dispatch overhead from every
// experiment's inner loop. Gather and envelope buffers are reused across
// samples, so steady-state sampling does not allocate.
//
// Pipeline is not safe for concurrent Sample calls; under the simulator all
// sampling is single-threaded on the event engine.
type Pipeline struct {
	reg    *Registry
	sink   Sink
	bus    *bus.Bus
	source string
	drives []driven

	pts  []Point
	envs []bus.Envelope

	samples uint64
	points  uint64
	errs    uint64
	lastErr error
}

// Ticker is anything advanced on the monitoring cadence — a core.Loop or a
// fleet.Coordinator.
type Ticker interface {
	Tick(now time.Duration)
}

// driven is one Ticker with its sampling divisor and phase counter.
type driven struct {
	t     Ticker
	every int
	n     int
}

// NewPipeline builds a pipeline draining reg into sink. sink may be nil when
// the points are only fanned out on a bus (attach one with PublishTo).
func NewPipeline(reg *Registry, sink Sink) *Pipeline {
	if reg == nil {
		panic("telemetry: NewPipeline requires a registry")
	}
	return &Pipeline{reg: reg, sink: sink}
}

// PublishTo additionally fans every sampled batch out on b, one envelope per
// point on TopicPrefix+name, published as a single batch. source tags the
// envelopes' Source field. Returns p for chaining.
func (p *Pipeline) PublishTo(b *bus.Bus, source string) *Pipeline {
	p.bus = b
	p.source = source
	return p
}

// Drive arranges for t.Tick(now) to run after every n-th sample (n <= 1
// ticks on every sample), so the response side of the loop always runs
// against freshly ingested telemetry — the monitoring plane of Fig. 1
// driving the feedback plane, instead of two cadences racing on the event
// schedule. Returns p for chaining.
func (p *Pipeline) Drive(t Ticker, every int) *Pipeline {
	if t == nil {
		panic("telemetry: Drive with nil ticker")
	}
	if every < 1 {
		every = 1
	}
	p.drives = append(p.drives, driven{t: t, every: every})
	return p
}

// Sample gathers one round at virtual time now, ingests it, and fans it out.
// It returns the number of points gathered.
func (p *Pipeline) Sample(now time.Duration) int {
	p.pts = p.reg.GatherInto(now, p.pts[:0])
	p.samples++
	p.points += uint64(len(p.pts))
	if p.sink != nil && len(p.pts) > 0 {
		if err := p.sink.AppendBatch(p.pts); err != nil {
			p.errs++
			p.lastErr = err
		}
	}
	if p.bus != nil && len(p.pts) > 0 {
		p.envs = p.envs[:0]
		for _, pt := range p.pts {
			p.envs = append(p.envs, bus.Envelope{
				Topic: TopicPrefix + pt.Name, Time: now, Source: p.source,
				Payload: WirePoint{Name: pt.Name, Labels: pt.Labels, Value: pt.Value},
			})
		}
		p.bus.PublishBatch(p.envs)
	}
	for i := range p.drives {
		d := &p.drives[i]
		if d.n++; d.n >= d.every {
			d.n = 0
			d.t.Tick(now)
		}
	}
	return len(p.pts)
}

// Querier exposes the pipeline's sink as a query surface when it has one
// (the sink is a Store, e.g. *tsdb.DB), so loop constructors can take their
// Knowledge raw-data plane from the same pipeline that feeds it. ok is false
// for write-only sinks.
func (p *Pipeline) Querier() (Querier, bool) {
	q, ok := p.sink.(Querier)
	return q, ok
}

// Stats reports sampling rounds, total points gathered, and sink errors.
func (p *Pipeline) Stats() (samples, points, errs uint64) {
	return p.samples, p.points, p.errs
}

// Err returns the most recent sink error, or nil.
func (p *Pipeline) Err() error { return p.lastErr }
