package telemetry

import (
	"time"

	"autoloop/internal/bus"
)

// TopicPrefix is the envelope topic namespace for telemetry points: a point
// named "node.temp.celsius" travels on "telemetry.node.temp.celsius", so
// subscribers pick metrics with exact topics and domains with "telemetry.*".
const TopicPrefix = "telemetry."

// Sink ingests gathered point batches in one pass; *tsdb.DB implements it.
// The batch slice is only valid for the duration of the call.
type Sink interface {
	AppendBatch(pts []Point) error
}

// WirePoint is the envelope payload for telemetry points: stable lowercase
// JSON keys for wire clients (matching Envelope's own topic/time/source
// fields), and a typed value for in-process subscribers. The sample time is
// carried by the envelope's Time field, not duplicated here.
type WirePoint struct {
	Name   string  `json:"name"`
	Labels Labels  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// Pipeline is the batched monitoring plane of the paper's Fig. 1: one
// sampling cadence gathers every registered collector, hands the whole batch
// to the storage sink in a single pass, and (optionally) publishes the batch
// on the bus — one PublishBatch per sample instead of one envelope per
// point, which removes the per-point lock and dispatch overhead from every
// experiment's inner loop. Gather and envelope buffers are reused across
// samples, so steady-state sampling does not allocate.
//
// Pipeline is not safe for concurrent Sample calls; under the simulator all
// sampling is single-threaded on the event engine.
type Pipeline struct {
	reg    *Registry
	sink   Sink
	bus    *bus.Bus
	source string

	pts  []Point
	envs []bus.Envelope

	samples uint64
	points  uint64
	errs    uint64
	lastErr error
}

// NewPipeline builds a pipeline draining reg into sink. sink may be nil when
// the points are only fanned out on a bus (attach one with PublishTo).
func NewPipeline(reg *Registry, sink Sink) *Pipeline {
	if reg == nil {
		panic("telemetry: NewPipeline requires a registry")
	}
	return &Pipeline{reg: reg, sink: sink}
}

// PublishTo additionally fans every sampled batch out on b, one envelope per
// point on TopicPrefix+name, published as a single batch. source tags the
// envelopes' Source field. Returns p for chaining.
func (p *Pipeline) PublishTo(b *bus.Bus, source string) *Pipeline {
	p.bus = b
	p.source = source
	return p
}

// Sample gathers one round at virtual time now, ingests it, and fans it out.
// It returns the number of points gathered.
func (p *Pipeline) Sample(now time.Duration) int {
	p.pts = p.reg.GatherInto(now, p.pts[:0])
	p.samples++
	p.points += uint64(len(p.pts))
	if p.sink != nil && len(p.pts) > 0 {
		if err := p.sink.AppendBatch(p.pts); err != nil {
			p.errs++
			p.lastErr = err
		}
	}
	if p.bus != nil && len(p.pts) > 0 {
		p.envs = p.envs[:0]
		for _, pt := range p.pts {
			p.envs = append(p.envs, bus.Envelope{
				Topic: TopicPrefix + pt.Name, Time: now, Source: p.source,
				Payload: WirePoint{Name: pt.Name, Labels: pt.Labels, Value: pt.Value},
			})
		}
		p.bus.PublishBatch(p.envs)
	}
	return len(p.pts)
}

// Stats reports sampling rounds, total points gathered, and sink errors.
func (p *Pipeline) Stats() (samples, points, errs uint64) {
	return p.samples, p.points, p.errs
}

// Err returns the most recent sink error, or nil.
func (p *Pipeline) Err() error { return p.lastErr }
