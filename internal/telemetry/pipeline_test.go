package telemetry

import (
	"fmt"
	"testing"
	"time"

	"autoloop/internal/bus"
)

// captureSink records batches handed to it and can inject errors.
type captureSink struct {
	batches [][]Point
	fail    error
}

func (s *captureSink) AppendBatch(pts []Point) error {
	cp := make([]Point, len(pts))
	copy(cp, pts)
	s.batches = append(s.batches, cp)
	return s.fail
}

func testRegistry(points int) *Registry {
	reg := NewRegistry()
	reg.Register(CollectorFunc(func(now time.Duration) []Point {
		pts := make([]Point, points)
		for i := range pts {
			pts[i] = Point{Name: fmt.Sprintf("m%d", i), Time: now, Value: float64(i)}
		}
		return pts
	}))
	return reg
}

func TestPipelineSampleFeedsSink(t *testing.T) {
	sink := &captureSink{}
	p := NewPipeline(testRegistry(3), sink)
	if n := p.Sample(time.Second); n != 3 {
		t.Fatalf("Sample = %d points, want 3", n)
	}
	p.Sample(2 * time.Second)
	if len(sink.batches) != 2 || len(sink.batches[0]) != 3 {
		t.Fatalf("sink saw %d batches (%v)", len(sink.batches), sink.batches)
	}
	if sink.batches[1][0].Time != 2*time.Second {
		t.Errorf("second batch time = %v", sink.batches[1][0].Time)
	}
	samples, points, errs := p.Stats()
	if samples != 2 || points != 6 || errs != 0 {
		t.Errorf("Stats = %d, %d, %d; want 2, 6, 0", samples, points, errs)
	}
}

func TestPipelinePublishesBatchedEnvelopes(t *testing.T) {
	b := bus.New()
	var exact, domain int
	var lastPayload interface{}
	b.Subscribe("telemetry.m1", func(e bus.Envelope) { exact++; lastPayload = e.Payload })
	b.Subscribe("telemetry.*", func(bus.Envelope) { domain++ })
	p := NewPipeline(testRegistry(3), nil).PublishTo(b, "test")
	p.Sample(time.Second)
	if exact != 1 || domain != 3 {
		t.Fatalf("exact = %d, domain = %d; want 1, 3", exact, domain)
	}
	pt, ok := lastPayload.(WirePoint)
	if !ok || pt.Name != "m1" || pt.Value != 1 {
		t.Errorf("payload = %#v, want the m1 WirePoint", lastPayload)
	}
	if pub, del := b.Stats(); pub != 3 || del != 4 {
		t.Errorf("bus stats = %d, %d; want 3, 4", pub, del)
	}
}

func TestPipelineSinkErrorCounted(t *testing.T) {
	sink := &captureSink{fail: fmt.Errorf("boom")}
	p := NewPipeline(testRegistry(1), sink)
	p.Sample(time.Second)
	if _, _, errs := p.Stats(); errs != 1 {
		t.Errorf("errs = %d, want 1", errs)
	}
	if p.Err() == nil {
		t.Error("Err() = nil, want the sink error")
	}
}

func TestPipelineEmptyGatherSkipsSinkAndBus(t *testing.T) {
	sink := &captureSink{}
	b := bus.New()
	p := NewPipeline(NewRegistry(), sink).PublishTo(b, "test")
	if n := p.Sample(time.Second); n != 0 {
		t.Fatalf("Sample = %d, want 0", n)
	}
	if len(sink.batches) != 0 {
		t.Errorf("sink saw %d batches, want 0", len(sink.batches))
	}
	if pub, _ := b.Stats(); pub != 0 {
		t.Errorf("published = %d, want 0", pub)
	}
}
