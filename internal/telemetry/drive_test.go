package telemetry

import (
	"testing"
	"time"
)

type tickRecorder struct{ ticks []time.Duration }

func (r *tickRecorder) Tick(now time.Duration) { r.ticks = append(r.ticks, now) }

func TestPipelineDrivesTickers(t *testing.T) {
	reg := NewRegistry()
	reg.Register(CollectorFunc(func(now time.Duration) []Point {
		return []Point{{Name: "m", Time: now, Value: 1}}
	}))
	everySample := &tickRecorder{}
	everyThird := &tickRecorder{}
	p := NewPipeline(reg, nil).Drive(everySample, 1).Drive(everyThird, 3)

	for i := 1; i <= 6; i++ {
		p.Sample(time.Duration(i) * time.Minute)
	}
	if len(everySample.ticks) != 6 {
		t.Errorf("every-sample ticker ran %d times, want 6", len(everySample.ticks))
	}
	if len(everyThird.ticks) != 2 || everyThird.ticks[0] != 3*time.Minute || everyThird.ticks[1] != 6*time.Minute {
		t.Errorf("every-third ticker ran at %v, want [3m 6m]", everyThird.ticks)
	}
}

func TestDriveTickSeesFreshSample(t *testing.T) {
	reg := NewRegistry()
	val := 0.0
	reg.Register(CollectorFunc(func(now time.Duration) []Point {
		return []Point{{Name: "m", Time: now, Value: val}}
	}))
	var seen []float64
	sink := sinkFunc(func(pts []Point) error { return nil })
	p := NewPipeline(reg, sink)
	p.Drive(tickFunc(func(now time.Duration) { seen = append(seen, val) }), 1)
	val = 42
	p.Sample(time.Minute)
	if len(seen) != 1 || seen[0] != 42 {
		t.Fatalf("driven tick observed %v, want the freshly sampled 42", seen)
	}
}

type sinkFunc func(pts []Point) error

func (f sinkFunc) AppendBatch(pts []Point) error { return f(pts) }

type tickFunc func(now time.Duration)

func (f tickFunc) Tick(now time.Duration) { f(now) }
