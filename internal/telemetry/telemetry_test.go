package telemetry

import (
	"testing"
	"testing/quick"
	"time"
)

func TestLabelsKeyCanonical(t *testing.T) {
	a := Labels{"b": "2", "a": "1"}
	b := Labels{"a": "1", "b": "2"}
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	if a.Key() != "a=1,b=2" {
		t.Errorf("Key = %q, want a=1,b=2", a.Key())
	}
	if (Labels{}).Key() != "" {
		t.Error("empty labels key should be empty string")
	}
	if Labels(nil).Key() != "" {
		t.Error("nil labels key should be empty string")
	}
}

func TestLabelsClone(t *testing.T) {
	a := Labels{"x": "1"}
	c := a.Clone()
	c["x"] = "2"
	if a["x"] != "1" {
		t.Error("Clone is not independent")
	}
	if Labels(nil).Clone() != nil {
		t.Error("nil Clone should be nil")
	}
}

func TestLabelsMatches(t *testing.T) {
	l := Labels{"node": "n1", "job": "42"}
	cases := []struct {
		matcher Labels
		want    bool
	}{
		{nil, true},
		{Labels{}, true},
		{Labels{"node": "n1"}, true},
		{Labels{"node": "n1", "job": "42"}, true},
		{Labels{"node": "n2"}, false},
		{Labels{"rack": "r1"}, false},
	}
	for _, c := range cases {
		if got := l.Matches(c.matcher); got != c.want {
			t.Errorf("Matches(%v) = %v, want %v", c.matcher, got, c.want)
		}
	}
}

// Property: two label sets with equal canonical keys match each other.
func TestLabelsKeyMatchesProperty(t *testing.T) {
	f := func(ks, vs []string) bool {
		l := Labels{}
		for i, k := range ks {
			if i < len(vs) && k != "" {
				l[k] = vs[i]
			}
		}
		m := l.Clone()
		if m == nil {
			m = Labels{}
		}
		return l.Key() == m.Key() && l.Matches(m) && m.Matches(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := &Series{Name: "m", Samples: []Sample{{1, 1.0}, {2, 2.0}, {3, 3.0}}}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	vs := s.Values()
	if len(vs) != 3 || vs[2] != 3.0 {
		t.Errorf("Values = %v", vs)
	}
	last, ok := s.Last()
	if !ok || last.Value != 3.0 {
		t.Errorf("Last = %v, %v", last, ok)
	}
	empty := &Series{}
	if _, ok := empty.Last(); ok {
		t.Error("empty series Last should report false")
	}
}

func TestRegistryGather(t *testing.T) {
	r := NewRegistry()
	r.Register(CollectorFunc(func(now time.Duration) []Point {
		return []Point{{Name: "a", Time: now, Value: 1}}
	}))
	r.Register(CollectorFunc(func(now time.Duration) []Point {
		return []Point{{Name: "b", Time: now, Value: 2}}
	}))
	pts := r.Gather(5 * time.Second)
	if len(pts) != 2 {
		t.Fatalf("Gather returned %d points, want 2", len(pts))
	}
	if pts[0].Name != "a" || pts[1].Name != "b" {
		t.Errorf("order not preserved: %v", pts)
	}
	if pts[0].Time != 5*time.Second {
		t.Errorf("time not propagated: %v", pts[0].Time)
	}
	if r.Size() != 2 {
		t.Errorf("Size = %d", r.Size())
	}
}

func TestRegistryNilCollectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for nil collector")
		}
	}()
	NewRegistry().Register(nil)
}

func TestPointString(t *testing.T) {
	p := Point{Name: "cpu", Labels: Labels{"n": "1"}, Time: time.Second, Value: 0.5}
	if got := p.String(); got != "cpu{n=1}=0.5@1s" {
		t.Errorf("String = %q", got)
	}
}
