package telemetry_test

import (
	"testing"
	"time"

	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

// TestPipelineQuerier verifies the pipeline exposes its sink's query surface
// when the sink is a full store (*tsdb.DB implements telemetry.Store).
func TestPipelineQuerier(t *testing.T) {
	db := tsdb.New(0)
	var _ telemetry.Store = db // the TSDB is ingest + query
	reg := telemetry.NewRegistryOf(telemetry.CollectorFunc(func(now time.Duration) []telemetry.Point {
		return []telemetry.Point{{Name: "m", Labels: telemetry.Labels{"n": "1"}, Time: now, Value: 7}}
	}))
	pipe := telemetry.NewPipeline(reg, db)
	q, ok := pipe.Querier()
	if !ok {
		t.Fatal("pipeline with a *tsdb.DB sink must expose a Querier")
	}
	pipe.Sample(time.Second)
	if v, ok := q.LatestValue("m", nil); !ok || v != 7 {
		t.Errorf("LatestValue through pipeline querier = %v, %v; want 7", v, ok)
	}

	// A write-only sink exposes no query surface.
	sinkOnly := telemetry.NewPipeline(reg, sinkFunc(func([]telemetry.Point) error { return nil }))
	if _, ok := sinkOnly.Querier(); ok {
		t.Error("write-only sink must not expose a Querier")
	}
}

type sinkFunc func(pts []telemetry.Point) error

func (f sinkFunc) AppendBatch(pts []telemetry.Point) error { return f(pts) }
