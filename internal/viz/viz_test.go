package viz

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"

	"autoloop/internal/telemetry"
)

func TestSparklineBasics(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("rune count = %d, want 8", utf8.RuneCountInString(s))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("sparkline = %q, want ascending ▁..█", s)
	}
}

func TestSparklineEmptyAndDegenerate(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Error("empty input should yield empty string")
	}
	if Sparkline([]float64{1}, 0) != "" {
		t.Error("zero width should yield empty string")
	}
	flat := Sparkline([]float64{5, 5, 5}, 3)
	if utf8.RuneCountInString(flat) != 3 {
		t.Errorf("flat sparkline = %q", flat)
	}
}

func TestSparklineRebuckets(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	s := Sparkline(vals, 10)
	if utf8.RuneCountInString(s) != 10 {
		t.Errorf("rebucketed width = %d, want 10", utf8.RuneCountInString(s))
	}
}

// Property: the sparkline never exceeds the requested width and is
// monotone-safe (no panic) for arbitrary inputs.
func TestSparklineWidthProperty(t *testing.T) {
	f := func(vals []float64, width uint8) bool {
		w := int(width%40) + 1
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if !isBad(v) {
				clean = append(clean, v)
			}
		}
		s := Sparkline(clean, w)
		return utf8.RuneCountInString(s) <= w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func isBad(v float64) bool {
	return v != v || v > 1e308 || v < -1e308
}

func TestSparkSeries(t *testing.T) {
	s := telemetry.Series{Name: "facility.pue", Samples: []telemetry.Sample{
		{Time: 1, Value: 1.3}, {Time: 2, Value: 1.5},
	}}
	out := SparkSeries(s, 10)
	if !strings.Contains(out, "facility.pue") || !strings.Contains(out, "[1.3, 1.5]") {
		t.Errorf("SparkSeries = %q", out)
	}
	empty := SparkSeries(telemetry.Series{Name: "x"}, 10)
	if !strings.Contains(empty, "no data") {
		t.Errorf("empty SparkSeries = %q", empty)
	}
}

func TestChart(t *testing.T) {
	out := Chart([]float64{0, 5, 10}, 3, 4)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("chart rows = %d, want 4", len(lines))
	}
	if !strings.Contains(lines[0], "10") {
		t.Errorf("top row should carry max label: %q", lines[0])
	}
	if !strings.Contains(lines[3], "0") {
		t.Errorf("bottom row should carry min label: %q", lines[3])
	}
	// The tallest column must reach the top row.
	if !strings.ContainsRune(lines[0], '█') && !strings.ContainsAny(lines[0], "▁▂▃▄▅▆▇") {
		t.Errorf("max value not visible in top row: %q", lines[0])
	}
	if Chart(nil, 3, 4) != "" {
		t.Error("empty chart should be empty string")
	}
}

func TestHistogram(t *testing.T) {
	vals := []float64{1, 1, 1, 1, 2, 2, 9}
	out := Histogram(vals, 4, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("histogram lines = %d, want 4", len(lines))
	}
	if !strings.Contains(lines[0], "6") {
		t.Errorf("first bin [1,3) should hold 6: %q", lines[0])
	}
	// The fullest bin gets the longest bar.
	if strings.Count(lines[0], "█") <= strings.Count(lines[3], "█") {
		t.Errorf("bar scaling wrong:\n%s", out)
	}
	if Histogram(nil, 4, 20) != "" {
		t.Error("empty histogram should be empty")
	}
}

func TestRebucketAveraging(t *testing.T) {
	got := rebucket([]float64{0, 10, 20, 30}, 2)
	if len(got) != 2 || got[0] != 5 || got[1] != 25 {
		t.Errorf("rebucket = %v, want [5 25]", got)
	}
	same := rebucket([]float64{1, 2}, 5)
	if len(same) != 2 {
		t.Errorf("rebucket should pass through short input: %v", same)
	}
}
