// Package viz renders telemetry series as terminal graphics — the
// "Visualize" box of the paper's Fig. 1. Sparklines compress a series into
// one line for dashboards and audit trails; Chart renders a full
// height-binned plot for reports; Histogram summarizes distributions
// (latencies, wait times).
//
// Everything returns plain strings so renderers compose with loggers, the
// CLI tools, and tests.
package viz

import (
	"fmt"
	"math"
	"strings"

	"autoloop/internal/telemetry"
)

// sparkRunes are the eight block heights used by Sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a one-line unicode sparkline of at most width
// cells (values are bucketed by mean when len(values) > width). Empty input
// yields an empty string.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	buckets := rebucket(values, width)
	lo, hi := bounds(buckets)
	var b strings.Builder
	for _, v := range buckets {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// SparkSeries renders a labeled sparkline with min/max annotations, e.g.
//
//	facility.pue ▁▂▄▇█▆▃ [1.32, 1.51]
func SparkSeries(s telemetry.Series, width int) string {
	vals := s.Values()
	if len(vals) == 0 {
		return s.Name + " (no data)"
	}
	lo, hi := bounds(vals)
	return fmt.Sprintf("%s %s [%.4g, %.4g]", s.Name, Sparkline(vals, width), lo, hi)
}

// Chart renders values as a rows-high, width-wide block chart with an
// axis legend. Empty input yields an empty string.
func Chart(values []float64, width, rows int) string {
	if len(values) == 0 || width <= 0 || rows <= 0 {
		return ""
	}
	buckets := rebucket(values, width)
	lo, hi := bounds(buckets)
	span := hi - lo
	if span == 0 {
		span = 1
	}
	grid := make([][]rune, rows)
	for r := range grid {
		grid[r] = make([]rune, len(buckets))
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for c, v := range buckets {
		// fill from the bottom row up to the value's height
		h := (v - lo) / span * float64(rows)
		full := int(h)
		for r := 0; r < full && r < rows; r++ {
			grid[rows-1-r][c] = '█'
		}
		if full < rows {
			frac := h - float64(full)
			if idx := int(frac * float64(len(sparkRunes))); idx > 0 {
				grid[rows-1-full][c] = sparkRunes[idx-1]
			}
		}
	}
	var b strings.Builder
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.4g ", hi)
		case rows - 1:
			label = fmt.Sprintf("%7.4g ", lo)
		}
		b.WriteString(label)
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	return b.String()
}

// Histogram renders a horizontal-bar histogram of values with the given
// number of bins, each line showing the bin range, count, and a bar scaled
// to maxBar characters.
func Histogram(values []float64, bins, maxBar int) string {
	if len(values) == 0 || bins <= 0 {
		return ""
	}
	if maxBar <= 0 {
		maxBar = 40
	}
	lo, hi := bounds(values)
	span := hi - lo
	if span == 0 {
		span = 1
	}
	counts := make([]int, bins)
	for _, v := range values {
		idx := int((v - lo) / span * float64(bins))
		if idx >= bins {
			idx = bins - 1
		}
		if idx < 0 {
			idx = 0
		}
		counts[idx]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		binLo := lo + span*float64(i)/float64(bins)
		binHi := lo + span*float64(i+1)/float64(bins)
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("█", c*maxBar/maxCount)
		}
		fmt.Fprintf(&b, "[%10.4g, %10.4g) %6d %s\n", binLo, binHi, c, bar)
	}
	return b.String()
}

// rebucket reduces values to at most width buckets by averaging.
func rebucket(values []float64, width int) []float64 {
	if len(values) <= width {
		return values
	}
	out := make([]float64, width)
	for i := range out {
		lo := i * len(values) / width
		hi := (i + 1) * len(values) / width
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

func bounds(values []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
