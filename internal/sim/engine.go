// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every substrate in this repository (cluster, scheduler, filesystem,
// applications, facility) and every MAPE-K autonomy loop is driven by a
// sim.Engine: events are scheduled at virtual timestamps and executed in
// timestamp order, with ties broken by scheduling sequence so that runs are
// reproducible bit-for-bit for a given seed.
//
// Virtual time is represented as time.Duration elapsed since the simulation
// epoch. The helper VirtualClock adapts an Engine to the core.Clock interface
// used by loop components, so the same loop code runs unchanged on wall-clock
// time in daemons.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// event is a scheduled callback. seq orders events with equal timestamps in
// scheduling order, which keeps the simulation deterministic.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// eventHeap implements heap.Interface ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all simulated components run in event callbacks on the
// engine's single logical thread, which is what makes runs deterministic.
type Engine struct {
	now     time.Duration
	pending eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool

	// Executed counts events that have run, for diagnostics and tests.
	executed uint64
}

// NewEngine returns an engine at time zero whose random source is seeded with
// seed. Two engines constructed with the same seed and fed the same schedule
// produce identical histories.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time (elapsed since the simulation epoch).
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Executed reports how many events have run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are currently scheduled.
func (e *Engine) Pending() int { return len(e.pending) }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// (before Now) panics: it would silently reorder history.
func (e *Engine) At(at time.Duration, fn func()) {
	if fn == nil {
		panic("sim: At called with nil fn")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.pending, &event{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time. Negative d is treated
// as zero (run at the current instant, after already-queued events at Now).
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Every schedules fn to run at start and then every period thereafter, for as
// long as fn returns true. A non-positive period panics.
func (e *Engine) Every(start, period time.Duration, fn func() bool) {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	var tick func()
	tick = func() {
		if e.stopped {
			return
		}
		if fn() {
			e.At(e.now+period, tick)
		}
	}
	e.At(start, tick)
}

// Stop halts the run loop after the current event completes and discards any
// remaining schedule on the next Run call.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single next event, advancing virtual time to it. It
// returns false when no events remain or the engine is stopped.
func (e *Engine) Step() bool {
	if e.stopped || len(e.pending) == 0 {
		return false
	}
	ev := heap.Pop(&e.pending).(*event)
	e.now = ev.at
	e.executed++
	ev.fn()
	return true
}

// Run executes events until the schedule is empty or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to deadline. Events scheduled beyond the deadline remain pending.
func (e *Engine) RunUntil(deadline time.Duration) {
	for !e.stopped && len(e.pending) > 0 && e.pending[0].at <= deadline {
		e.Step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// RunFor runs the simulation for d beyond the current time, like RunUntil.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }
