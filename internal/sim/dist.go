package sim

import (
	"math"
	"math/rand"
	"time"
)

// Dist is a distribution over durations, used for arrival processes, service
// times, iteration times, and human response latencies throughout the
// simulated substrates.
type Dist interface {
	// Sample draws one value using rng.
	Sample(rng *rand.Rand) time.Duration
	// Mean returns the distribution mean.
	Mean() time.Duration
}

// Constant is a degenerate distribution that always returns V.
type Constant struct{ V time.Duration }

// Sample implements Dist.
func (c Constant) Sample(*rand.Rand) time.Duration { return c.V }

// Mean implements Dist.
func (c Constant) Mean() time.Duration { return c.V }

// Uniform samples uniformly from [Low, High].
type Uniform struct{ Low, High time.Duration }

// Sample implements Dist.
func (u Uniform) Sample(rng *rand.Rand) time.Duration {
	if u.High <= u.Low {
		return u.Low
	}
	return u.Low + time.Duration(rng.Int63n(int64(u.High-u.Low)+1))
}

// Mean implements Dist.
func (u Uniform) Mean() time.Duration { return (u.Low + u.High) / 2 }

// Exponential samples an exponential distribution with the given mean,
// suitable for Poisson arrival processes.
type Exponential struct{ MeanV time.Duration }

// Sample implements Dist.
func (e Exponential) Sample(rng *rand.Rand) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(e.MeanV))
}

// Mean implements Dist.
func (e Exponential) Mean() time.Duration { return e.MeanV }

// Normal samples a normal distribution truncated at zero.
type Normal struct {
	MeanV  time.Duration
	Stddev time.Duration
}

// Sample implements Dist.
func (n Normal) Sample(rng *rand.Rand) time.Duration {
	v := rng.NormFloat64()*float64(n.Stddev) + float64(n.MeanV)
	if v < 0 {
		v = 0
	}
	return time.Duration(v)
}

// Mean implements Dist.
func (n Normal) Mean() time.Duration { return n.MeanV }

// LogNormal samples a log-normal distribution parameterized by the desired
// mean and coefficient of variation of the resulting values. Log-normal
// run-time and iteration-time variability is the standard model for HPC
// workloads and gives the heavy right tail that stresses forecasting.
type LogNormal struct {
	MeanV time.Duration
	CV    float64 // coefficient of variation (stddev/mean) of the samples
}

// Sample implements Dist.
func (l LogNormal) Sample(rng *rand.Rand) time.Duration {
	if l.CV <= 0 {
		return l.MeanV
	}
	sigma2 := math.Log(1 + l.CV*l.CV)
	mu := math.Log(float64(l.MeanV)) - sigma2/2
	v := math.Exp(rng.NormFloat64()*math.Sqrt(sigma2) + mu)
	return time.Duration(v)
}

// Mean implements Dist.
func (l LogNormal) Mean() time.Duration { return l.MeanV }

// Seconds is a convenience for building durations from float seconds, used
// heavily by experiment configuration.
func Seconds(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// Hours is a convenience for building durations from float hours.
func Hours(h float64) time.Duration { return time.Duration(h * float64(time.Hour)) }

// Minutes is a convenience for building durations from float minutes.
func Minutes(m float64) time.Duration { return time.Duration(m * float64(time.Minute)) }
