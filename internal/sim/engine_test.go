package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineRunsEventsInTimestampOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30*time.Second, func() { got = append(got, 3) })
	e.At(10*time.Second, func() { got = append(got, 1) })
	e.At(20*time.Second, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*time.Second {
		t.Errorf("Now = %v, want 30s", e.Now())
	}
}

func TestEngineTiesBreakInSchedulingOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie order = %v, want ascending", got)
		}
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(10*time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(5*time.Second, func() {})
	})
	e.Run()
}

func TestEngineNilFnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for nil fn")
		}
	}()
	NewEngine(1).At(0, nil)
}

func TestEngineAfterNegativeClampsToNow(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.At(5*time.Second, func() {
		e.After(-time.Second, func() { ran = true })
	})
	e.Run()
	if !ran {
		t.Error("negative After never ran")
	}
	if e.Now() != 5*time.Second {
		t.Errorf("Now = %v, want 5s", e.Now())
	}
}

func TestEngineEvery(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Every(time.Second, time.Second, func() bool {
		count++
		return count < 5
	})
	e.Run()
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if e.Now() != 5*time.Second {
		t.Errorf("Now = %v, want 5s", e.Now())
	}
}

func TestEngineEveryZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero period")
		}
	}()
	NewEngine(1).Every(0, 0, func() bool { return true })
}

func TestEngineRunUntilLeavesFutureEventsPending(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.At(time.Second, func() { ran++ })
	e.At(time.Minute, func() { ran++ })
	e.RunUntil(30 * time.Second)
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
	if e.Now() != 30*time.Second {
		t.Errorf("Now = %v, want 30s", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if ran != 2 {
		t.Errorf("after Run ran = %d, want 2", ran)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.At(time.Second, func() { ran++; e.Stop() })
	e.At(2*time.Second, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Errorf("ran = %d, want 1 after Stop", ran)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		e := NewEngine(seed)
		var times []time.Duration
		e.Every(0, time.Second, func() bool {
			jitter := time.Duration(e.Rand().Int63n(int64(time.Second)))
			e.After(jitter, func() { times = append(times, e.Now()) })
			return len(times) < 50
		})
		e.RunUntil(100 * time.Second)
		return times
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("histories diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestVirtualClock(t *testing.T) {
	e := NewEngine(1)
	c := VirtualClock{Engine: e}
	var at time.Duration
	c.AfterFunc(7*time.Second, func() { at = c.Now() })
	e.Run()
	if at != 7*time.Second {
		t.Errorf("fired at %v, want 7s", at)
	}
}

func TestDistributionsNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := []Dist{
		Constant{time.Second},
		Uniform{time.Second, 3 * time.Second},
		Exponential{time.Second},
		Normal{time.Second, 2 * time.Second},
		LogNormal{time.Second, 1.5},
	}
	for _, d := range dists {
		for i := 0; i < 1000; i++ {
			if v := d.Sample(rng); v < 0 {
				t.Fatalf("%T produced negative sample %v", d, v)
			}
		}
	}
}

func TestLogNormalMeanApproximately(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := LogNormal{MeanV: 10 * time.Second, CV: 0.5}
	var sum time.Duration
	n := 20000
	for i := 0; i < n; i++ {
		sum += d.Sample(rng)
	}
	mean := float64(sum) / float64(n)
	want := float64(10 * time.Second)
	if mean < 0.95*want || mean > 1.05*want {
		t.Errorf("empirical mean %.3gs, want ~10s", mean/1e9)
	}
}

func TestUniformDegenerateRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := Uniform{5 * time.Second, 5 * time.Second}
	if v := d.Sample(rng); v != 5*time.Second {
		t.Errorf("degenerate uniform = %v, want 5s", v)
	}
}

// Property: RunUntil never executes an event scheduled after the deadline,
// and always advances Now to exactly the deadline.
func TestRunUntilProperty(t *testing.T) {
	f := func(offsets []uint16, deadline uint16) bool {
		e := NewEngine(3)
		dl := time.Duration(deadline) * time.Millisecond
		violated := false
		for _, o := range offsets {
			at := time.Duration(o) * time.Millisecond
			e.At(at, func() {
				if e.Now() > dl {
					violated = true
				}
			})
		}
		e.RunUntil(dl)
		return !violated && e.Now() == dl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSecondsHelpers(t *testing.T) {
	if Seconds(1.5) != 1500*time.Millisecond {
		t.Error("Seconds(1.5)")
	}
	if Minutes(2) != 2*time.Minute {
		t.Error("Minutes(2)")
	}
	if Hours(0.5) != 30*time.Minute {
		t.Error("Hours(0.5)")
	}
}
