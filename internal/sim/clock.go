package sim

import "time"

// Clock abstracts the passage of time for loop components so that the same
// code runs under simulated virtual time and under the wall clock. It is
// deliberately minimal: autonomy-loop phases only ever need "what time is it"
// and "run this later"; periodic behavior is built from those.
type Clock interface {
	// Now returns the current time as elapsed duration since the epoch.
	Now() time.Duration
	// AfterFunc arranges for fn to run d from now.
	AfterFunc(d time.Duration, fn func())
}

// VirtualClock adapts an Engine to the Clock interface.
type VirtualClock struct{ Engine *Engine }

// Now implements Clock.
func (c VirtualClock) Now() time.Duration { return c.Engine.Now() }

// AfterFunc implements Clock.
func (c VirtualClock) AfterFunc(d time.Duration, fn func()) { c.Engine.After(d, fn) }

// TickEvery schedules tick to run on clock every period until stop returns
// true (stop may be nil for "run forever"). It is the one periodic-driver
// shape shared by loops, decentralization patterns, and fleet coordinators.
func TickEvery(clock Clock, period time.Duration, stop func() bool, tick func(now time.Duration)) {
	if period <= 0 {
		panic("sim: TickEvery requires a positive period")
	}
	var run func()
	run = func() {
		if stop != nil && stop() {
			return
		}
		tick(clock.Now())
		clock.AfterFunc(period, run)
	}
	clock.AfterFunc(period, run)
}

// WallClock implements Clock against real time, measured from the moment the
// WallClock was created. It is used by cmd/modad to run loops in real time.
type WallClock struct{ start time.Time }

// NewWallClock returns a WallClock whose epoch is the current instant.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Now implements Clock.
func (c *WallClock) Now() time.Duration { return time.Since(c.start) }

// AfterFunc implements Clock.
func (c *WallClock) AfterFunc(d time.Duration, fn func()) { time.AfterFunc(d, fn) }
