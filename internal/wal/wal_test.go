package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// collect replays the whole log from seq 1 into owned copies.
func collect(t *testing.T, w *WAL) []Record {
	t.Helper()
	r, err := w.Replay(1)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	defer r.Close()
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, Record{Seq: rec.Seq, Kind: rec.Kind, Payload: append([]byte(nil), rec.Payload...)})
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := make([]Record, 0, 100)
	for i := 0; i < 100; i++ {
		payload := []byte(fmt.Sprintf("record-%03d", i))
		seq, err := w.Append(uint8(i%3+1), payload)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
		want = append(want, Record{Seq: seq, Kind: uint8(i%3 + 1), Payload: payload})
	}
	got := collect(t, w)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].Kind != want[i].Kind || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if w.LastSeq() != 100 {
		t.Fatalf("LastSeq = %d", w.LastSeq())
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestReplayFrom(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNone, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Close()
	for i := 1; i <= 50; i++ {
		if _, err := w.Append(1, []byte(fmt.Sprintf("r%02d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := w.Sync(); err != nil { // force per-record flushes so rotation happens
			t.Fatalf("Sync: %v", err)
		}
	}
	if n := len(w.Segments()); n < 3 {
		t.Fatalf("expected rotation across >= 3 segments, got %d", n)
	}
	r, err := w.Replay(33)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	defer r.Close()
	for want := uint64(33); want <= 50; want++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if rec.Seq != want || string(rec.Payload) != fmt.Sprintf("r%02d", want) {
			t.Fatalf("rec = %d %q, want %d", rec.Seq, rec.Payload, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("tail err = %v, want EOF", err)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNone, SegmentBytes: 128})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 20; i++ {
		if _, err := w.Append(1, []byte("first-open-record")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w, err = Open(dir, Options{Sync: SyncNone, SegmentBytes: 128})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w.Close()
	if w.LastSeq() != 20 {
		t.Fatalf("LastSeq after reopen = %d, want 20", w.LastSeq())
	}
	seq, err := w.Append(2, []byte("after-reopen"))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if seq != 21 {
		t.Fatalf("seq after reopen = %d, want 21", seq)
	}
	recs := collect(t, w)
	if len(recs) != 21 || recs[20].Seq != 21 || string(recs[20].Payload) != "after-reopen" {
		t.Fatalf("replay after reopen: got %d records, tail %+v", len(recs), recs[len(recs)-1])
	}
}

func TestOpenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := w.Append(1, []byte(fmt.Sprintf("intact-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate a crash mid-write: append half a frame to the segment.
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	torn := appendFrame(nil, 1, []byte("this record is torn"))
	f, err := os.OpenFile(segs[0], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	if _, err := f.Write(torn[:len(torn)-7]); err != nil {
		t.Fatalf("write torn: %v", err)
	}
	f.Close()

	w, err = Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	defer w.Close()
	if w.Metrics().Truncated == 0 {
		t.Fatal("expected torn bytes to be counted")
	}
	if w.LastSeq() != 10 {
		t.Fatalf("LastSeq = %d, want 10 (torn record dropped)", w.LastSeq())
	}
	if _, err := w.Append(1, []byte("post-recovery")); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	recs := collect(t, w)
	if len(recs) != 11 || string(recs[10].Payload) != "post-recovery" {
		t.Fatalf("replay after torn-tail recovery: %d records", len(recs))
	}
}

func TestReplaySurfacesMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := w.Append(1, []byte("payload-payload-payload")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	data[len(data)/2] ^= 0x40 // bit-flip in the middle of the log
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatalf("write segment: %v", err)
	}

	r, err := w.Replay(1)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	defer r.Close()
	var lastErr error
	for {
		_, err := r.Next()
		if err != nil {
			lastErr = err
			break
		}
	}
	var ce *CorruptError
	if !errors.As(lastErr, &ce) {
		t.Fatalf("mid-log bit flip surfaced as %v, want *CorruptError", lastErr)
	}
	if ce.Reason == "" || ce.Segment == "" {
		t.Fatalf("CorruptError missing context: %+v", ce)
	}
	w.Close()
}

func TestCompactDropsCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNone, SegmentBytes: 128})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Close()
	for i := 1; i <= 60; i++ {
		if _, err := w.Append(1, []byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := w.Sync(); err != nil {
			t.Fatalf("Sync: %v", err)
		}
	}
	before := len(w.Segments())
	if before < 4 {
		t.Fatalf("expected >= 4 segments, got %d", before)
	}
	removed, err := w.Compact(41) // a snapshot covering seq 40
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if removed == 0 {
		t.Fatal("expected segments to be removed")
	}
	// Every record >= 41 must survive compaction.
	r, err := w.Replay(41)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	defer r.Close()
	want := uint64(41)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if rec.Seq != want {
			t.Fatalf("seq = %d, want %d", rec.Seq, want)
		}
		want++
	}
	if want != 61 {
		t.Fatalf("replayed through %d, want 61", want)
	}
	// The active segment is never removed even with an aggressive keep.
	if _, err := w.Compact(1 << 60); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if n := len(w.Segments()); n != 1 {
		t.Fatalf("segments after full compact = %d, want 1 (active)", n)
	}
}

func TestGroupCommitSync(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncBatch, BatchInterval: time.Hour}) // flusher effectively off
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Close()
	for i := 0; i < 5; i++ {
		if _, err := w.Append(1, []byte("buffered")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	m := w.Metrics()
	if m.Syncs == 0 {
		t.Fatal("Sync did not fsync")
	}
	if got := collect(t, w); len(got) != 5 {
		t.Fatalf("replayed %d, want 5", len(got))
	}
}

func TestClosedWALRefusesOps(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := w.Append(1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after close: %v", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after close: %v", err)
	}
	if _, err := w.Replay(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Replay after close: %v", err)
	}
	if err := w.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Close: %v", err)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Close()
	if _, err := w.Append(1, make([]byte, MaxRecord)); err == nil {
		t.Fatal("oversize append accepted")
	}
	if w.LastSeq() != 0 {
		t.Fatalf("LastSeq = %d after rejected append", w.LastSeq())
	}
}

func TestSnapshotRoundTripAndPrune(t *testing.T) {
	dir := t.TempDir()
	for seq := uint64(10); seq <= 50; seq += 10 {
		payload := []byte(fmt.Sprintf(`{"state":"at-%d"}`, seq))
		if err := WriteSnapshot(dir, "modad", seq, payload); err != nil {
			t.Fatalf("WriteSnapshot(%d): %v", seq, err)
		}
	}
	payload, seq, ok, err := LatestSnapshot(dir, "modad")
	if err != nil || !ok {
		t.Fatalf("LatestSnapshot: %v ok=%v", err, ok)
	}
	if seq != 50 || string(payload) != `{"state":"at-50"}` {
		t.Fatalf("latest = %d %q", seq, payload)
	}
	seqs, err := snapshotSeqs(dir, "modad")
	if err != nil {
		t.Fatalf("snapshotSeqs: %v", err)
	}
	if len(seqs) != 2 || seqs[0] != 40 || seqs[1] != 50 {
		t.Fatalf("pruned set = %v, want [40 50]", seqs)
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, "modad", 10, []byte("good-old")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if err := WriteSnapshot(dir, "modad", 20, []byte("bad-new")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	path := filepath.Join(dir, snapshotName("modad", 20))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write snapshot: %v", err)
	}
	payload, seq, ok, err := LatestSnapshot(dir, "modad")
	if err != nil || !ok {
		t.Fatalf("LatestSnapshot: %v ok=%v", err, ok)
	}
	if seq != 10 || string(payload) != "good-old" {
		t.Fatalf("fallback = %d %q, want 10 good-old", seq, payload)
	}
	// No valid snapshot at all: ok=false, no error.
	if _, _, ok, err := LatestSnapshot(dir, "missing"); err != nil || ok {
		t.Fatalf("missing family: ok=%v err=%v", ok, err)
	}
}

func TestSnapshotNameValidation(t *testing.T) {
	if err := WriteSnapshot(t.TempDir(), "No/Slash", 1, nil); err == nil {
		t.Fatal("invalid snapshot name accepted")
	}
	if _, _, _, err := LatestSnapshot(t.TempDir(), "UPPER"); err == nil {
		t.Fatal("invalid snapshot name accepted by LatestSnapshot")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"batch": SyncBatch, "always": SyncAlways, "none": SyncNone, "": SyncBatch} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
		if s != "" && got.String() != s {
			t.Fatalf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParseSyncPolicy("yolo"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestReplayConcurrentWithGroupCommit regression-tests the Replay/commit
// lock order: Replay flushes buffered appends itself, and if that write were
// allowed to interleave with a group commit's detached write (which runs
// with mu released, holding only syncMu), frames would land in the segment
// out of order — permanent corruption. Hammering Replay against a fast
// flusher under live appends must leave the log replayable and gap-free.
func TestReplayConcurrentWithGroupCommit(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncNone, BatchInterval: time.Millisecond, SegmentBytes: 1 << 16})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	stop := make(chan struct{})
	appendErr := make(chan error, 1)
	go func() {
		payload := []byte("interleave-me-interleave-me")
		for {
			select {
			case <-stop:
				appendErr <- nil
				return
			default:
			}
			if _, err := w.Append(1, payload); err != nil {
				appendErr <- err
				return
			}
		}
	}()
	for i := 0; i < 500; i++ {
		r, err := w.Replay(1)
		if err != nil {
			t.Fatalf("Replay %d: %v", i, err)
		}
		r.Close()
	}
	close(stop)
	if err := <-appendErr; err != nil {
		t.Fatalf("append: %v", err)
	}
	n := w.LastSeq()
	recs := collect(t, w)
	if uint64(len(recs)) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("seq %d at index %d", rec.Seq, i)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestConcurrentAppendersReplayCleanly(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Sync: SyncBatch, BatchInterval: time.Millisecond, SegmentBytes: 4096})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const goroutines, per = 8, 200
	done := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			payload := []byte(fmt.Sprintf("writer-%d-payload", g))
			for i := 0; i < per; i++ {
				if _, err := w.Append(uint8(g+1), payload); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-done; err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	recs := collect(t, w)
	if len(recs) != goroutines*per {
		t.Fatalf("replayed %d, want %d", len(recs), goroutines*per)
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("seq %d at index %d", rec.Seq, i)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
