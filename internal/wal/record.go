package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record framing on disk. Every record is one frame:
//
//	[4B little-endian length n of body][4B CRC32C of body][body]
//	body = [1B kind][payload]
//
// The CRC covers the whole body, so a bit flip in either the kind or the
// payload is detected; the length prefix is validated against MaxRecord
// before any allocation, so a corrupted length cannot drive an OOM. Record
// sequence numbers are not stored per frame: a segment's first sequence
// number is its file name, and frames within a segment are numbered
// consecutively, which keeps the frame overhead at eight bytes.
const (
	frameHeader = 8 // 4B length + 4B crc
	// MaxRecord bounds one record body (kind byte + payload). A frame
	// declaring a larger body is corruption by definition, never a read.
	MaxRecord = 1 << 26 // 64 MiB
)

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64), the checksum production WALs (RocksDB, etcd) frame with.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record kinds journaled by this repo's subsystems. The WAL itself is
// agnostic to kinds — it stores and replays (kind, payload) pairs — but the
// daemon's subsystems share one log, so their kind bytes are registered here
// to keep the namespace collision-free. New subsystems claim a new constant.
const (
	// KindTSDBAppend carries one or more binary-encoded telemetry points
	// accepted by a tsdb shard (see tsdb's journal encoding).
	KindTSDBAppend uint8 = 0x10
	// KindBusEnvelope carries one JSON-encoded bus envelope (topic, time,
	// source, payload, deadline) recorded by the bus journal hook.
	KindBusEnvelope uint8 = 0x20
	// KindKnowledgeOp carries one JSON-encoded knowledge.Base mutation.
	KindKnowledgeOp uint8 = 0x30
	// KindClusterEvent carries one JSON-encoded cluster placement-ledger
	// event (spec added/removed, assignment, ack, lease expiry) recorded by
	// a cluster coordinator so a restart can rebuild its placement table.
	KindClusterEvent uint8 = 0x40
)

// ErrClosed is returned by operations on a closed WAL.
var ErrClosed = errors.New("wal: closed")

// CorruptError reports an invalid frame: a truncated header or body, an
// out-of-range length, or a checksum mismatch. Replay surfaces it as a typed
// error so callers can distinguish real corruption from a clean end of log;
// Open tolerates it only as a torn tail of the final segment (the expected
// leftover of a crash mid-write), which it truncates away.
type CorruptError struct {
	Segment string // segment file path
	Offset  int64  // byte offset of the bad frame within the segment
	Reason  string // human-readable cause ("crc mismatch", "truncated body", ...)
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt record in %s at offset %d: %s", e.Segment, e.Offset, e.Reason)
}

// Record is one replayed WAL entry. Payload aliases the reader's internal
// buffer and is only valid until the next call to Next; consumers that keep
// it must copy.
type Record struct {
	Seq     uint64
	Kind    uint8
	Payload []byte
}

// appendFrame appends the frame for (kind, payload) to buf and returns the
// extended slice. It allocates only when buf must grow.
func appendFrame(buf []byte, kind uint8, payload []byte) []byte {
	n := 1 + len(payload)
	start := len(buf)
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	buf = append(buf, hdr[:]...)
	buf = append(buf, kind)
	buf = append(buf, payload...)
	// Checksum the body in place so the hot path stays allocation-free.
	crc := crc32.Checksum(buf[start+frameHeader:], castagnoli)
	binary.LittleEndian.PutUint32(buf[start+4:start+8], crc)
	return buf
}

// frameSize returns the on-disk size of a frame carrying a payload of n
// bytes.
func frameSize(n int) int64 { return int64(frameHeader + 1 + n) }
