package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"syscall"
)

// FS is the narrow filesystem surface the WAL writes through. Production
// code uses the process filesystem (the zero value of Options); tests
// inject a fault-simulating implementation (internal/chaos.FS) to exercise
// short writes, fsync failures, and ENOSPC without touching real storage
// semantics. The interface is deliberately minimal: exactly the calls the
// WAL makes, nothing speculative.
type FS interface {
	MkdirAll(dir string, perm os.FileMode) error
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadDir(dir string) ([]os.DirEntry, error)
	Remove(name string) error
	// SyncDir fsyncs a directory so a just-created or just-removed file's
	// directory entry is durable.
	SyncDir(dir string) error
}

// File is the per-file surface of FS. *os.File satisfies it structurally
// (osFile wraps it only to return the interface type).
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Seek(offset int64, whence int) (int64, error)
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadDir(dir string) ([]os.DirEntry, error) { return os.ReadDir(dir) }
func (osFS) Remove(name string) error                  { return os.Remove(name) }
func (osFS) SyncDir(dir string) error                  { return syncDir(dir) }

// ErrBacklog is returned by Append when the in-memory frame buffer has
// grown past Options.MaxBacklog — the group committer is stalled or the
// storage underneath it is faulting faster than it recovers. It is a
// retryable condition: the caller should shed or retry the record, not
// tear the WAL down (see Retryable).
var ErrBacklog = errors.New("wal: append backlog full (storage stalled or faulting)")

// FaultError is a typed storage fault surfaced by the WAL: a failed or
// short segment write, a failed fsync, or a failed segment create. Op is
// the operation ("write", "fsync", "create"), Path the segment involved.
//
// The retryable-vs-fatal split follows the post-fsyncgate consensus:
//
//   - write faults from ENOSPC or a short write are retryable — the
//     unwritten tail is still in the WAL's buffer, space may free up, and
//     the retry writes exactly the missing bytes at the right offset;
//   - fsync faults are fatal — after a failed fsync the kernel may have
//     dropped the dirty pages while clearing the error, so no retry can
//     restore the durability claim. The WAL goes sticky-failed and every
//     later operation returns the same error.
//
// Callers that only need the policy, not the anatomy, should use the
// package-level Retryable.
type FaultError struct {
	Op   string // "write", "fsync", "create"
	Path string // segment file involved
	Err  error  // underlying cause
}

// Error implements error.
func (e *FaultError) Error() string {
	return fmt.Sprintf("wal: %s %s: %v", e.Op, e.Path, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *FaultError) Unwrap() error { return e.Err }

// Retryable reports whether the fault is transient by the taxonomy above.
func (e *FaultError) Retryable() bool {
	if e.Op == "fsync" {
		return false
	}
	return errors.Is(e.Err, syscall.ENOSPC) || errors.Is(e.Err, io.ErrShortWrite)
}

// Retryable reports whether err is a storage condition worth retrying
// (backlog pressure or a retryable *FaultError) as opposed to a fatal
// fault that has wedged the WAL. It is the single predicate journal hooks
// key their shed-then-halt policy on.
func Retryable(err error) bool {
	if errors.Is(err, ErrBacklog) {
		return true
	}
	var fe *FaultError
	if errors.As(err, &fe) {
		return fe.Retryable()
	}
	return false
}
