// Package wal implements the durable event ledger under the daemon's
// stateful planes: an append-only segmented log of CRC32C-framed records
// with group-commit fsync batching, segment rotation and compaction, a
// buffered replay reader with typed corruption errors, and an atomic
// snapshot codec that records the WAL offset each snapshot covers.
//
// The design is the embedded, dependency-free equivalent of the replayable
// ledger production ODA stacks sit on (NRG-CHAMP routes every MAPE phase
// through Kafka topics with consumer offsets): subsystems journal their
// mutations as (kind, payload) records, recovery is snapshot-load plus
// tail-replay, and the log survives kill -9 — a torn frame at the tail of
// the final segment is truncated away at Open, anything else invalid
// surfaces as a *CorruptError, never a panic and never silently bad state.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncBatch groups commits: appends buffer in memory and a background
	// goroutine writes and fsyncs the batch every Options.BatchInterval.
	// This is the default — it bounds the loss window to one interval while
	// keeping the append hot path free of syscalls.
	SyncBatch SyncPolicy = iota
	// SyncAlways writes and fsyncs every append before returning — the
	// zero-loss-window policy, at one fsync per record.
	SyncAlways
	// SyncNone writes through the OS page cache and never fsyncs (except
	// on explicit Sync and Close). Durability is then bounded by the OS
	// flush horizon; useful for benchmarks and tests.
	SyncNone
)

// String implements fmt.Stringer ("batch", "always", "none").
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	}
	return "batch"
}

// ParseSyncPolicy parses the string forms String produces (the -fsync flag
// vocabulary).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "batch", "":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return SyncBatch, fmt.Errorf("wal: unknown sync policy %q (want batch, always, or none)", s)
}

// Options configures a WAL.
type Options struct {
	// Sync selects the fsync policy (default SyncBatch).
	Sync SyncPolicy
	// BatchInterval is the group-commit cadence under SyncBatch; the
	// default is 5ms.
	BatchInterval time.Duration
	// SegmentBytes is the rotation threshold: once a segment reaches it,
	// the next flush starts a new segment. It is a soft limit — a flushed
	// batch is never split across segments. Default 8 MiB.
	SegmentBytes int64
	// MaxBacklog bounds the in-memory frame buffer. When storage is
	// faulting or the group committer is stalled, appends keep buffering
	// until the backlog reaches this many bytes; past it Append returns
	// ErrBacklog (a retryable condition) instead of growing without bound.
	// Default 4 MiB.
	MaxBacklog int64
	// FS is the filesystem the log writes through; nil means the process
	// filesystem. Tests inject a fault-simulating FS here.
	FS FS
}

func (o *Options) fill() {
	if o.BatchInterval <= 0 {
		o.BatchInterval = 5 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.MaxBacklog <= 0 {
		o.MaxBacklog = 4 << 20
	}
	if o.FS == nil {
		o.FS = osFS{}
	}
}

// Metrics counts a WAL's lifetime activity.
type Metrics struct {
	Appends   uint64 // records appended
	Bytes     uint64 // frame bytes appended (incl. headers)
	Syncs     uint64 // fsync calls
	Rotations uint64 // segments started beyond the first
	Truncated uint64 // torn-tail bytes dropped at Open

	StorageFaults  uint64 // storage faults surfaced as *FaultError
	WriteRetries   uint64 // retryable write faults whose unwritten tail was requeued
	BacklogRejects uint64 // appends rejected with ErrBacklog
}

// WAL is an append-only segmented log. It is safe for concurrent use.
type WAL struct {
	dir string
	opt Options
	fs  FS

	// syncMu serializes group committers (the flusher goroutine, Sync, and
	// Close): the buffered frames are written under mu, but the fsync runs
	// with mu released — appenders only ever wait on memory work, never on
	// storage.
	syncMu sync.Mutex

	// mu guards everything below. Appends under SyncBatch only encode into
	// buf (no syscalls); the flusher goroutine and Sync drain it.
	mu       sync.Mutex
	f        File   // active segment
	segFirst uint64 // first seq stored in the active segment
	segSize  int64  // durable bytes in the active segment (excl. buf)
	nextSeq  uint64 // seq the next Append assigns
	buf      []byte // encoded frames not yet written
	spare    []byte // commit's detached buffer, swapped back after the write
	dirty    bool   // written since the last fsync
	closed   bool
	err      error // sticky I/O error; every later op returns it
	metrics  Metrics

	// segments is the ordered list of closed+active segment file names
	// (base names), kept in memory so replay and compaction need no
	// directory rescan.
	segments []segmentInfo

	done chan struct{}
	wg   sync.WaitGroup
}

// segmentInfo is one segment file and the first record sequence it holds.
type segmentInfo struct {
	name  string
	first uint64
}

const segmentSuffix = ".wal"

// segmentName formats the file name of the segment whose first record is
// seq ("%016x.wal") — lexical order equals sequence order.
func segmentName(seq uint64) string {
	return fmt.Sprintf("%016x%s", seq, segmentSuffix)
}

// parseSegmentName inverts segmentName.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasSuffix(name, segmentSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(name, segmentSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hex, 16, 64)
	if err != nil || seq == 0 {
		return 0, false
	}
	return seq, true
}

// Open opens (or creates) the log in dir, recovering from a previous crash:
// the final segment is scanned and a torn frame at its tail — the expected
// leftover of a kill mid-write — is truncated away so appends resume at a
// clean record boundary. Corruption anywhere else is not repaired here; it
// surfaces as a *CorruptError during Replay.
func Open(dir string, opt Options) (*WAL, error) {
	opt.fill()
	if err := opt.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	w := &WAL{
		dir:  dir,
		opt:  opt,
		fs:   opt.FS,
		done: make(chan struct{}),
	}
	entries, err := opt.FS.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegmentName(e.Name()); ok {
			w.segments = append(w.segments, segmentInfo{name: e.Name(), first: first})
		}
	}
	sort.Slice(w.segments, func(i, j int) bool { return w.segments[i].first < w.segments[j].first })

	if len(w.segments) == 0 {
		if err := w.startSegmentLocked(1); err != nil {
			return nil, err
		}
	} else {
		last := w.segments[len(w.segments)-1]
		count, validSize, truncated, err := scanSegment(w.fs, filepath.Join(dir, last.name), last.first)
		if err != nil {
			return nil, err
		}
		f, err := w.fs.OpenFile(filepath.Join(dir, last.name), os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: open: %w", err)
		}
		if truncated > 0 {
			if err := f.Truncate(validSize); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", last.name, err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: open: %w", err)
			}
			w.metrics.Truncated = uint64(truncated)
		}
		if _, err := f.Seek(validSize, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: open: %w", err)
		}
		w.f = f
		w.segFirst = last.first
		w.segSize = validSize
		w.nextSeq = last.first + count
	}

	if w.opt.Sync != SyncAlways {
		// The flusher drains buffered appends for both SyncBatch (write +
		// group fsync) and SyncNone (write through the page cache only).
		w.wg.Add(1)
		go w.flusher()
	}
	return w, nil
}

// scanSegment walks one segment counting valid frames. It returns the frame
// count, the byte offset of the first invalid frame (== file size when the
// segment is fully valid), and how many trailing bytes are torn. Invalid
// bytes are tolerated only as a tail: this is Open's crash recovery, where
// a torn final frame is expected and everything before it must be intact.
func scanSegment(fsys FS, path string, first uint64) (count uint64, validSize int64, torn int64, err error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: open: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: open: %w", err)
	}
	sr := newSegmentReader(f, path, first)
	for {
		_, err := sr.next()
		if err == errSegmentEnd {
			break
		}
		if err != nil {
			// Torn tail: everything from the bad frame on is dropped.
			return sr.count, sr.offset, info.Size() - sr.offset, nil
		}
	}
	return sr.count, sr.offset, 0, nil
}

// startSegmentLocked creates and activates the segment whose first record
// will be seq. Caller holds mu (or is Open, pre-publication).
func (w *WAL) startSegmentLocked(seq uint64) error {
	// Create the new segment before retiring the old one: a failed create
	// (ENOSPC, say) then leaves the active segment open and writable, so
	// the retryable fault really can be retried at the next flush — the
	// segment limit is soft by contract.
	name := segmentName(seq)
	f, err := w.fs.OpenFile(filepath.Join(w.dir, name), os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o644)
	if err != nil {
		w.metrics.StorageFaults++
		return &FaultError{Op: "create", Path: filepath.Join(w.dir, name), Err: err}
	}
	if w.f != nil {
		if err := w.fsyncLocked(); err != nil { // completed segments are always durable
			f.Close()
			_ = w.fs.Remove(filepath.Join(w.dir, name))
			return err
		}
		if err := w.f.Close(); err != nil {
			f.Close()
			_ = w.fs.Remove(filepath.Join(w.dir, name))
			return fmt.Errorf("wal: rotate: %w", err)
		}
		w.metrics.Rotations++
	}
	w.f = f
	w.segFirst = seq
	w.segSize = 0
	if w.nextSeq == 0 {
		w.nextSeq = seq
	}
	w.segments = append(w.segments, segmentInfo{name: name, first: seq})
	return w.fs.SyncDir(w.dir)
}

// segPath returns the active segment's file path. Caller holds mu.
func (w *WAL) segPath() string {
	return filepath.Join(w.dir, segmentName(w.segFirst))
}

// syncDir fsyncs a directory so a just-created or just-renamed file's
// directory entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// Append journals one record and returns its sequence number. Under
// SyncBatch the record is buffered (no syscall on the hot path) and becomes
// durable at the next group commit; under SyncAlways it is written and
// fsynced before Append returns; under SyncNone it is written through the
// page cache at the flusher cadence. Steady state allocates nothing: the
// frame is encoded into a reused internal buffer.
//
// Storage faults surface as typed errors: ErrBacklog when the in-memory
// buffer has hit Options.MaxBacklog (retryable — the record was NOT
// accepted), and *FaultError once the log has taken a disk fault. Under
// SyncAlways a retryable *FaultError is returned alongside a valid seq:
// the record is accepted and buffered, durability just hasn't been
// achieved yet — callers must not re-append it.
func (w *WAL) Append(kind uint8, payload []byte) (uint64, error) {
	if len(payload) >= MaxRecord {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecord", len(payload))
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, ErrClosed
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	if int64(len(w.buf)) >= w.opt.MaxBacklog {
		w.metrics.BacklogRejects++
		w.mu.Unlock()
		return 0, ErrBacklog
	}
	seq := w.nextSeq
	w.nextSeq++
	w.buf = appendFrame(w.buf, kind, payload)
	w.metrics.Appends++
	w.metrics.Bytes += uint64(frameSize(len(payload)))
	var err error
	if w.opt.Sync == SyncAlways {
		if err = w.flushLocked(); err == nil {
			err = w.fsyncLocked()
		}
	}
	w.mu.Unlock()
	if err != nil {
		return seq, err
	}
	return seq, nil
}

// flushLocked writes the buffered frames to the active segment and rotates
// when the segment has outgrown the threshold. Caller holds mu.
//
// A retryable write fault (ENOSPC, short write) keeps the unwritten tail
// of the buffer in place — the partial frame on disk is completed by the
// next flush, so the segment stays contiguous — and leaves the WAL usable.
// Anything else goes sticky-fatal.
func (w *WAL) flushLocked() error {
	if w.err != nil {
		return w.err
	}
	if len(w.buf) > 0 {
		n, err := w.f.Write(w.buf)
		if n > 0 {
			w.segSize += int64(n)
			w.dirty = true
		}
		if err != nil {
			fe := &FaultError{Op: "write", Path: w.segPath(), Err: err}
			w.metrics.StorageFaults++
			if fe.Retryable() {
				w.metrics.WriteRetries++
				w.buf = w.buf[:copy(w.buf, w.buf[n:])]
				return fe
			}
			w.err = fe
			return w.err
		}
		w.buf = w.buf[:0]
	}
	if w.segSize >= w.opt.SegmentBytes {
		if err := w.startSegmentLocked(w.nextSeq); err != nil {
			if !Retryable(err) {
				w.err = err
			}
			return err
		}
	}
	return nil
}

// fsyncLocked makes the written frames durable. Caller holds mu. A failed
// fsync is always fatal: the kernel may have dropped the dirty pages while
// clearing the error, so no retry can restore the durability claim.
func (w *WAL) fsyncLocked() error {
	if w.err != nil {
		return w.err
	}
	if !w.dirty {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.metrics.StorageFaults++
		w.err = &FaultError{Op: "fsync", Path: w.segPath(), Err: err}
		return w.err
	}
	w.dirty = false
	w.metrics.Syncs++
	return nil
}

// commit is one group commit: write the buffered frames under mu, then
// fsync with mu released so concurrent appends keep buffering at memory
// speed while the storage stall happens off to the side. syncMu serializes
// committers, so no new write can land on the file between the write and
// the fsync — when commit returns, every record appended before the call is
// written, and durable when fsync was requested. Appends never trigger a
// commit early: a per-append wakeup would degenerate group commit into a
// flush per record under steady load.
func (w *WAL) commit(fsync bool) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if w.opt.Sync == SyncAlways {
		// Appends write and fsync inline under mu in this mode; nothing is
		// ever buffered, so there is nothing to commit.
		w.mu.Unlock()
		return nil
	}
	detached := w.buf
	w.buf = w.spare[:0]
	f := w.f
	w.mu.Unlock()

	// syncMu makes this the only writer: the buffered frames go out, and
	// the fsync runs, with appenders free to keep filling the other buffer.
	var n int
	var werr error
	if len(detached) > 0 {
		n, werr = f.Write(detached)
	}

	w.mu.Lock()
	w.segSize += int64(n)
	if n > 0 {
		w.dirty = true
	}
	if werr != nil {
		fe := &FaultError{Op: "write", Path: w.segPath(), Err: werr}
		w.metrics.StorageFaults++
		if fe.Retryable() {
			// Requeue the unwritten tail ahead of any frames appended
			// while the write was in flight, so on-disk order stays
			// sequence order; the partial frame on disk is completed by
			// the next commit. The WAL stays usable.
			w.metrics.WriteRetries++
			rem := detached[n:]
			if len(w.buf) > 0 {
				merged := make([]byte, 0, len(rem)+len(w.buf))
				merged = append(merged, rem...)
				merged = append(merged, w.buf...)
				w.spare = w.buf[:0]
				w.buf = merged
			} else {
				w.buf = rem
			}
			w.mu.Unlock()
			return fe
		}
		if w.err == nil {
			w.err = fe
		}
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.spare = detached[:0]
	if w.segSize >= w.opt.SegmentBytes {
		// Rotation must see an empty buffer (segment files are named by
		// their first sequence): flush the few frames that arrived during
		// the write, then rotate — under mu, paid once per SegmentBytes.
		// startSegmentLocked fsyncs the finished segment, clearing dirty.
		if err := w.flushLocked(); err != nil {
			w.mu.Unlock()
			return err
		}
	}
	doSync := fsync && w.dirty
	w.mu.Unlock()
	if !doSync {
		return nil
	}
	err := f.Sync()
	w.mu.Lock()
	defer w.mu.Unlock()
	if err != nil {
		if w.err == nil {
			w.metrics.StorageFaults++
			w.err = &FaultError{Op: "fsync", Path: w.segPath(), Err: err}
		}
		return w.err
	}
	w.dirty = false
	w.metrics.Syncs++
	return nil
}

// flusher is the group-commit goroutine: every BatchInterval it commits the
// buffer — written through for SyncNone, written and fsynced for SyncBatch.
func (w *WAL) flusher() {
	defer w.wg.Done()
	ticker := time.NewTicker(w.opt.BatchInterval)
	defer ticker.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-ticker.C:
		}
		_ = w.commit(w.opt.Sync == SyncBatch)
	}
}

// Sync forces an immediate group commit: every record appended before the
// call is written and fsynced when Sync returns, regardless of policy.
func (w *WAL) Sync() error { return w.commit(true) }

// Close drains the buffer, fsyncs, stops the group-commit goroutine, and
// closes the active segment. The WAL must not be used afterwards.
func (w *WAL) Close() error {
	w.syncMu.Lock() // waits out any in-flight group commit
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		w.syncMu.Unlock()
		return ErrClosed
	}
	w.closed = true
	err := w.flushLocked()
	if err == nil {
		err = w.fsyncLocked()
	}
	w.mu.Unlock()
	w.syncMu.Unlock() // before wg.Wait: the flusher may be blocked on syncMu
	close(w.done)
	w.wg.Wait()
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: close: %w", cerr)
	}
	return err
}

// LastSeq returns the sequence number of the most recently appended record
// (0 when the log is empty). Records up to LastSeq are durable only after a
// Sync or group commit; snapshot writers Sync first and then record LastSeq
// as the covered offset.
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq - 1
}

// Dir returns the directory the log lives in.
func (w *WAL) Dir() string { return w.dir }

// Metrics returns a snapshot of the WAL's counters.
func (w *WAL) Metrics() Metrics {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.metrics
}

// Segments returns the current segment file names in sequence order.
func (w *WAL) Segments() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, len(w.segments))
	for i, s := range w.segments {
		out[i] = s.name
	}
	return out
}

// Replay returns a reader over every record with sequence >= from, flushing
// buffered appends first so the reader observes everything appended so far.
// The reader must be exhausted or abandoned before Compact runs; appends may
// continue concurrently (the reader sees a prefix).
func (w *WAL) Replay(from uint64) (*Reader, error) {
	// syncMu first, mirroring Close: a group commit writes its detached
	// buffer with mu released, so flushing under mu alone could interleave
	// this flush with that in-flight write (or rotate the segment out from
	// under it). With syncMu held no commit is mid-write.
	w.syncMu.Lock()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		w.syncMu.Unlock()
		return nil, ErrClosed
	}
	if err := w.flushLocked(); err != nil {
		w.mu.Unlock()
		w.syncMu.Unlock()
		return nil, err
	}
	segs := make([]segmentInfo, len(w.segments))
	copy(segs, w.segments)
	w.mu.Unlock()
	w.syncMu.Unlock()
	return newReader(w.fs, w.dir, segs, from), nil
}

// Compact removes whole segments every record of which has sequence < keep
// — typically the sequence a snapshot covers, plus one. The active segment
// is never removed. It returns how many segment files were deleted.
func (w *WAL) Compact(keep uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	removed := 0
	for len(w.segments) > 1 {
		// The first segment's records span [first, next.first); it is
		// removable only when the whole range is below keep.
		if w.segments[1].first > keep {
			break
		}
		if err := w.fs.Remove(filepath.Join(w.dir, w.segments[0].name)); err != nil {
			return removed, fmt.Errorf("wal: compact: %w", err)
		}
		w.segments = w.segments[1:]
		removed++
	}
	if removed > 0 {
		if err := w.fs.SyncDir(w.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}
