package wal

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes through the frame decoder and
// cross-checks the codec's contract: decoding never panics, anything
// invalid surfaces as a typed *CorruptError (never silently bad state), a
// valid log round-trips exactly, and a single bit flip inside any frame
// body is always detected by the CRC.
func FuzzWALDecode(f *testing.F) {
	// Seed corpus: empty input, a bare header, one valid frame, a torn
	// frame, an oversize length prefix, and high-entropy garbage.
	f.Add([]byte{}, uint32(0))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, uint32(3))
	f.Add(appendFrame(nil, KindTSDBAppend, []byte("one valid point record")), uint32(17))
	valid := appendFrame(nil, KindBusEnvelope, []byte(`{"topic":"loop.power.plan","time":60000000000}`))
	f.Add(valid[:len(valid)-5], uint32(9))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5}, uint32(21))
	f.Add([]byte("\x10\x00\x00\x00garbage-that-is-not-a-frame-at-all"), uint32(40))
	f.Add(appendFrame(appendFrame(nil, 1, []byte("first")), 2, []byte("second")), uint32(100))

	f.Fuzz(func(t *testing.T, data []byte, flipBit uint32) {
		// 1. Arbitrary bytes: no panics, typed errors only, and every
		// yielded record must carry a self-consistent checksum (re-encoding
		// it must reproduce the input bytes it was decoded from).
		decodeAll := func(b []byte) (recs []Record, err error) {
			sr := newSegmentReader(bytes.NewReader(b), "fuzz", 1)
			for {
				rec, err := sr.next()
				if err == errSegmentEnd {
					return recs, nil
				}
				if err != nil {
					var ce *CorruptError
					if !errors.As(err, &ce) {
						t.Fatalf("decoder returned untyped error %v", err)
					}
					return recs, err
				}
				recs = append(recs, Record{Seq: rec.Seq, Kind: rec.Kind, Payload: append([]byte(nil), rec.Payload...)})
			}
		}
		got, _ := decodeAll(data)
		var reenc []byte
		for _, rec := range got {
			reenc = appendFrame(reenc, rec.Kind, rec.Payload)
		}
		if !bytes.Equal(reenc, data[:len(reenc)]) {
			t.Fatalf("decoded records do not re-encode to the input prefix")
		}

		// 2. A valid log built from the fuzzed payload round-trips exactly.
		payload := data
		if len(payload) > 1<<12 {
			payload = payload[:1<<12]
		}
		log := appendFrame(nil, 1, payload)
		log = appendFrame(log, 2, []byte("sentinel"))
		recs, err := decodeAll(log)
		if err != nil || len(recs) != 2 {
			t.Fatalf("valid log: %d records, err %v", len(recs), err)
		}
		if recs[0].Kind != 1 || !bytes.Equal(recs[0].Payload, payload) || string(recs[1].Payload) != "sentinel" {
			t.Fatalf("round trip mismatch")
		}

		// 3. One bit flip inside a frame body must be caught by the CRC:
		// the flipped frame is never yielded, the decoder errors instead.
		bit := int(flipBit) % (len(log) * 8)
		pos := bit / 8
		flipped := append([]byte(nil), log...)
		flipped[pos] ^= 1 << (bit % 8)
		frame0End := frameSize(len(payload))
		inBody := (pos >= frameHeader && int64(pos) < frame0End) ||
			(int64(pos) >= frame0End+frameHeader)
		recs, err = decodeAll(flipped)
		if inBody {
			if err == nil {
				t.Fatalf("bit flip at %d inside a body yielded a clean decode", pos)
			}
			// The frame holding the flip must not have been yielded.
			flippedFrame := 0
			if int64(pos) >= frame0End {
				flippedFrame = 1
			}
			if len(recs) > flippedFrame {
				t.Fatalf("bit flip at %d: corrupted frame %d was yielded", pos, flippedFrame)
			}
		}
		// Header flips may truncate or misframe; the only contract there is
		// no panic and typed errors, already checked by decodeAll.
	})
}
