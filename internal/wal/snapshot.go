package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshot codec. A snapshot is the serialized state of one subsystem (or
// the whole daemon) together with the WAL sequence it covers: every record
// with seq <= that offset is already reflected in the snapshot, so recovery
// loads the snapshot and replays only the tail. Files are written
// atomically (temp + fsync + rename + dir fsync) and framed with a magic
// header and a CRC32C, so a half-written or bit-flipped snapshot is
// detected and skipped in favor of an older valid one.
//
// File name: <name>-<seq %016x>.snap in the WAL directory.

const (
	snapshotSuffix = ".snap"
	snapshotMagic  = "WSNAP1\x00\x00" // 8 bytes: format name + version
)

// snapshotName formats the file name of name's snapshot covering seq.
func snapshotName(name string, seq uint64) string {
	return fmt.Sprintf("%s-%016x%s", name, seq, snapshotSuffix)
}

// parseSnapshotName inverts snapshotName for the given snapshot name.
func parseSnapshotName(file, name string) (uint64, bool) {
	prefix := name + "-"
	if !strings.HasPrefix(file, prefix) || !strings.HasSuffix(file, snapshotSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(file, prefix), snapshotSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// validSnapshotName reports whether name is usable as a snapshot family
// name (it becomes part of a file name and must not collide with the seq
// suffix parsing).
func validSnapshotName(name string) bool {
	if name == "" {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
		default:
			return false
		}
	}
	return true
}

// WriteSnapshot atomically writes payload as the snapshot of the named
// subsystem covering WAL sequence seq, then prunes older snapshots of the
// same name (the latest two are kept, so one corrupt write never strands
// recovery). Callers must Sync the WAL before recording seq as covered.
func WriteSnapshot(dir, name string, seq uint64, payload []byte) error {
	if !validSnapshotName(name) {
		return fmt.Errorf("wal: invalid snapshot name %q", name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	final := filepath.Join(dir, snapshotName(name, seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	var hdr [12]byte
	copy(hdr[:8], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.Checksum(payload, castagnoli))
	_, err = f.Write(hdr[:])
	if err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	return pruneSnapshots(dir, name, 2)
}

// snapshotSeqs lists the covered sequences of name's snapshots in dir,
// ascending.
func snapshotSeqs(dir, name string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: snapshot: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSnapshotName(e.Name(), name); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// pruneSnapshots removes all but the newest keep snapshots of name.
func pruneSnapshots(dir, name string, keep int) error {
	seqs, err := snapshotSeqs(dir, name)
	if err != nil {
		return err
	}
	for len(seqs) > keep {
		if err := os.Remove(filepath.Join(dir, snapshotName(name, seqs[0]))); err != nil {
			return fmt.Errorf("wal: snapshot prune: %w", err)
		}
		seqs = seqs[1:]
	}
	return nil
}

// LatestSnapshot returns the newest valid snapshot of the named subsystem
// and the WAL sequence it covers. A snapshot with a bad magic or checksum
// is skipped (recovery falls back to the previous one); ok is false when no
// valid snapshot exists.
func LatestSnapshot(dir, name string) (payload []byte, seq uint64, ok bool, err error) {
	if !validSnapshotName(name) {
		return nil, 0, false, fmt.Errorf("wal: invalid snapshot name %q", name)
	}
	seqs, err := snapshotSeqs(dir, name)
	if err != nil {
		return nil, 0, false, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(dir, snapshotName(name, seqs[i])))
		if err != nil {
			return nil, 0, false, fmt.Errorf("wal: snapshot: %w", err)
		}
		if len(data) < 12 || string(data[:8]) != snapshotMagic {
			continue // half-written or foreign file
		}
		body := data[12:]
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(data[8:12]) {
			continue // bit-flipped; fall back to the previous snapshot
		}
		return body, seqs[i], true, nil
	}
	return nil, 0, false, nil
}
