package wal_test

// Storage-fault behavior under the injected filesystem: typed error
// propagation from group commit, the retryable-vs-fatal taxonomy, no
// silent record loss across a retried fault, and the fault counters. Lives
// in package wal_test because the injector (internal/chaos.FS) imports wal
// for the FS interface.

import (
	"errors"
	"io"
	"syscall"
	"testing"
	"time"

	"autoloop/internal/chaos"
	"autoloop/internal/wal"
)

// openFaulty opens a WAL on a fresh dir over a chaos FS with group commit
// effectively disabled (an hour), so the test's explicit Sync calls are
// the only committers and every fault lands deterministically.
func openFaulty(t *testing.T, opt wal.Options) (*wal.WAL, *chaos.FS) {
	t.Helper()
	fs := chaos.NewFS()
	opt.FS = fs
	if opt.BatchInterval == 0 {
		opt.BatchInterval = time.Hour
	}
	w, err := wal.Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w, fs
}

// replayAll drains the log and returns the payloads.
func replayAll(t *testing.T, w *wal.WAL) []string {
	t.Helper()
	r, err := w.Replay(1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var out []string
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		out = append(out, string(rec.Payload))
	}
}

func TestGroupCommitENOSPCIsRetryable(t *testing.T) {
	w, fs := openFaulty(t, wal.Options{})
	for i := 0; i < 3; i++ {
		if _, err := w.Append(wal.KindBusEnvelope, []byte{'a' + byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	fs.Arm(chaos.FSFaults{FailWrites: 1})
	err := w.Sync()
	var fe *wal.FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("Sync under ENOSPC = %v, want *wal.FaultError", err)
	}
	if fe.Op != "write" || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("fault = %+v, want a write/ENOSPC", fe)
	}
	if !fe.Retryable() || !wal.Retryable(err) {
		t.Fatal("ENOSPC write fault must classify retryable")
	}

	// The fault must not wedge the log: the retry commits every record.
	if _, err := w.Append(wal.KindBusEnvelope, []byte("d")); err != nil {
		t.Fatalf("append after retryable fault: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("retry sync: %v", err)
	}
	if got := replayAll(t, w); len(got) != 4 || got[0] != "a" || got[3] != "d" {
		t.Fatalf("replay after retry = %q, want all 4 records in order", got)
	}
	m := w.Metrics()
	if m.StorageFaults != 1 || m.WriteRetries != 1 {
		t.Fatalf("metrics = %+v, want StorageFaults=1 WriteRetries=1", m)
	}
}

func TestGroupCommitShortWriteCompletesFrame(t *testing.T) {
	w, fs := openFaulty(t, wal.Options{})
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := w.Append(wal.KindTSDBAppend, payload); err != nil {
		t.Fatal(err)
	}
	fs.Arm(chaos.FSFaults{ShortWrites: 1})
	err := w.Sync()
	if !wal.Retryable(err) || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("Sync under short write = %v, want retryable short-write fault", err)
	}
	// The retry must write exactly the unwritten tail: the half-frame on
	// disk plus the requeued remainder reassemble into one valid frame.
	if err := w.Sync(); err != nil {
		t.Fatalf("retry sync: %v", err)
	}
	got := replayAll(t, w)
	if len(got) != 1 || got[0] != string(payload) {
		t.Fatalf("replay after short-write retry: %d records, frame intact=%v", len(got), len(got) == 1 && got[0] == string(payload))
	}
}

func TestFsyncFaultIsFatalAndSticky(t *testing.T) {
	w, fs := openFaulty(t, wal.Options{})
	if _, err := w.Append(wal.KindKnowledgeOp, []byte("x")); err != nil {
		t.Fatal(err)
	}
	fs.Arm(chaos.FSFaults{FailFsyncs: 1})
	err := w.Sync()
	var fe *wal.FaultError
	if !errors.As(err, &fe) || fe.Op != "fsync" {
		t.Fatalf("Sync under fsync fault = %v, want *wal.FaultError{Op: fsync}", err)
	}
	if fe.Retryable() || wal.Retryable(err) {
		t.Fatal("a failed fsync must never classify retryable")
	}
	// Sticky: the wedged log returns the same fault for every later op,
	// no silent acceptance of records whose durability it cannot promise.
	if _, aerr := w.Append(wal.KindKnowledgeOp, []byte("y")); !errors.Is(aerr, err) {
		t.Fatalf("append after fatal fault = %v, want sticky %v", aerr, err)
	}
	if serr := w.Sync(); !errors.Is(serr, err) {
		t.Fatalf("sync after fatal fault = %v, want sticky %v", serr, err)
	}
	if m := w.Metrics(); m.StorageFaults != 1 {
		t.Fatalf("StorageFaults = %d, want 1", m.StorageFaults)
	}
}

func TestSyncAlwaysENOSPCKeepsRecordBuffered(t *testing.T) {
	w, fs := openFaulty(t, wal.Options{Sync: wal.SyncAlways})
	fs.Arm(chaos.FSFaults{FailWrites: 1})
	seq, err := w.Append(wal.KindClusterEvent, []byte("first"))
	if !wal.Retryable(err) {
		t.Fatalf("SyncAlways append under ENOSPC = %v, want retryable", err)
	}
	if seq == 0 {
		t.Fatal("retryable SyncAlways append must still assign a seq (record is buffered, not lost)")
	}
	// The next append's inline flush retries the buffered frame too.
	if _, err := w.Append(wal.KindClusterEvent, []byte("second")); err != nil {
		t.Fatalf("append after retryable fault: %v", err)
	}
	if got := replayAll(t, w); len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("replay = %q, want both records in order", got)
	}
}

func TestAppendBacklogSheds(t *testing.T) {
	w, _ := openFaulty(t, wal.Options{MaxBacklog: 256})
	var rejected error
	for i := 0; i < 1024 && rejected == nil; i++ {
		_, err := w.Append(wal.KindBusEnvelope, make([]byte, 32))
		if err != nil {
			rejected = err
		}
	}
	if !errors.Is(rejected, wal.ErrBacklog) || !wal.Retryable(rejected) {
		t.Fatalf("overfull backlog append = %v, want retryable ErrBacklog", rejected)
	}
	if m := w.Metrics(); m.BacklogRejects == 0 {
		t.Fatal("BacklogRejects not counted")
	}
	// Draining the backlog reopens the gate.
	if err := w.Sync(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := w.Append(wal.KindBusEnvelope, []byte("ok")); err != nil {
		t.Fatalf("append after drain: %v", err)
	}
}

func TestRotationCreateFaultRetries(t *testing.T) {
	w, fs := openFaulty(t, wal.Options{SegmentBytes: 64})
	if _, err := w.Append(wal.KindBusEnvelope, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	fs.Arm(chaos.FSFaults{FailCreates: 1})
	err := w.Sync() // write lands, rotation's segment create fails
	if !wal.Retryable(err) {
		t.Fatalf("Sync under create fault = %v, want retryable (segment limit is soft)", err)
	}
	// Next commit retries the rotation; the log keeps accepting.
	if _, err := w.Append(wal.KindBusEnvelope, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("retry sync: %v", err)
	}
	if got := replayAll(t, w); len(got) != 2 {
		t.Fatalf("replay = %d records, want 2", len(got))
	}
	if segs := w.Segments(); len(segs) < 2 {
		t.Fatalf("segments = %v, want rotation to have happened on retry", segs)
	}
}
