package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// errSegmentEnd is the internal clean-end sentinel of one segment.
var errSegmentEnd = errors.New("wal: segment end")

// segmentReader decodes frames from one segment, tracking the byte offset
// and frame count so corruption reports are precise.
type segmentReader struct {
	br     *bufio.Reader
	path   string
	first  uint64
	count  uint64 // frames decoded so far
	offset int64  // byte offset of the next frame
	body   []byte // reused body buffer
}

func newSegmentReader(r io.Reader, path string, first uint64) *segmentReader {
	return &segmentReader{br: bufio.NewReaderSize(r, 1<<16), path: path, first: first}
}

// next decodes one frame. It returns errSegmentEnd at a clean end of the
// segment and a *CorruptError for anything invalid: a truncated header or
// body, an out-of-range length, or a checksum mismatch.
func (sr *segmentReader) next() (Record, error) {
	var hdr [frameHeader]byte
	n, err := io.ReadFull(sr.br, hdr[:])
	if n == 0 && (err == io.EOF || err == io.ErrUnexpectedEOF) {
		return Record{}, errSegmentEnd
	}
	if err != nil {
		return Record{}, sr.corrupt("truncated frame header")
	}
	size := binary.LittleEndian.Uint32(hdr[0:4])
	if size < 1 || size > MaxRecord {
		return Record{}, sr.corrupt(fmt.Sprintf("frame length %d out of range", size))
	}
	if cap(sr.body) < int(size) {
		sr.body = make([]byte, size)
	}
	body := sr.body[:size]
	if _, err := io.ReadFull(sr.br, body); err != nil {
		return Record{}, sr.corrupt("truncated frame body")
	}
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return Record{}, sr.corrupt("crc mismatch")
	}
	rec := Record{Seq: sr.first + sr.count, Kind: body[0], Payload: body[1:]}
	sr.count++
	sr.offset += frameSize(len(body) - 1)
	return rec, nil
}

func (sr *segmentReader) corrupt(reason string) error {
	return &CorruptError{Segment: sr.path, Offset: sr.offset, Reason: reason}
}

// Reader replays a WAL's records in sequence order across segments. Obtain
// one with (*WAL).Replay. The Payload of each returned Record aliases an
// internal buffer valid only until the next call to Next.
type Reader struct {
	fs   FS
	dir  string
	segs []segmentInfo
	from uint64
	idx  int
	cur  *segmentReader
	f    File
	err  error
}

func newReader(fsys FS, dir string, segs []segmentInfo, from uint64) *Reader {
	return &Reader{fs: fsys, dir: dir, segs: segs, from: from}
}

// Next returns the next record with sequence >= the replay start. It
// returns io.EOF at the clean end of the log and a *CorruptError when a
// frame is invalid; after any error the reader is exhausted.
func (r *Reader) Next() (Record, error) {
	if r.err != nil {
		return Record{}, r.err
	}
	for {
		if r.cur == nil {
			if r.idx >= len(r.segs) {
				return r.fail(io.EOF)
			}
			seg := r.segs[r.idx]
			// Skip whole segments below the replay start: the next
			// segment's first seq bounds this one's range.
			if r.idx+1 < len(r.segs) && r.segs[r.idx+1].first <= r.from {
				r.idx++
				continue
			}
			f, err := r.fs.OpenFile(filepath.Join(r.dir, seg.name), os.O_RDONLY, 0)
			if err != nil {
				return r.fail(fmt.Errorf("wal: replay: %w", err))
			}
			r.f = f
			r.cur = newSegmentReader(f, filepath.Join(r.dir, seg.name), seg.first)
		}
		rec, err := r.cur.next()
		if err == errSegmentEnd {
			next := r.cur.first + r.cur.count
			r.closeCurrent()
			r.idx++
			if r.idx < len(r.segs) && r.segs[r.idx].first != next {
				return r.fail(&CorruptError{
					Segment: filepath.Join(r.dir, r.segs[r.idx].name),
					Reason:  fmt.Sprintf("segment gap: expected first seq %d, file says %d", next, r.segs[r.idx].first),
				})
			}
			continue
		}
		if err != nil {
			return r.fail(err)
		}
		if rec.Seq < r.from {
			continue
		}
		return rec, nil
	}
}

func (r *Reader) fail(err error) (Record, error) {
	r.closeCurrent()
	r.err = err
	return Record{}, err
}

func (r *Reader) closeCurrent() {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
	r.cur = nil
}

// Close releases the reader's open segment file; it is safe to call at any
// point and after exhaustion.
func (r *Reader) Close() error {
	r.closeCurrent()
	if r.err == nil {
		r.err = ErrClosed
	}
	return nil
}
