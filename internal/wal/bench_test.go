package wal

import (
	"io"
	"testing"
	"time"
)

// BenchmarkWALAppend measures the journal hot path under each fsync policy
// with a payload shaped like one encoded telemetry point batch. The "none"
// and "batch" rows are the steady-state cost the daemon pays per journaled
// record (batch amortizes its fsyncs through the group-commit goroutine);
// "always" is the zero-loss-window worst case, dominated by fsync latency.
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 128)
	for i := range payload {
		payload[i] = byte(i)
	}
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"sync=none", Options{Sync: SyncNone}},
		{"sync=batch", Options{Sync: SyncBatch, BatchInterval: 5 * time.Millisecond}},
		{"sync=always", Options{Sync: SyncAlways}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			w, err := Open(b.TempDir(), tc.opt)
			if err != nil {
				b.Fatalf("Open: %v", err)
			}
			defer w.Close()
			b.ReportAllocs()
			b.SetBytes(int64(frameSize(len(payload))))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Append(KindTSDBAppend, payload); err != nil {
					b.Fatalf("Append: %v", err)
				}
			}
		})
	}
}

// BenchmarkRecovery measures replay throughput: one op replays a log of
// 100k 128-byte records into a no-op consumer, reporting ns per million
// records as the headline recovery-time metric.
func BenchmarkRecovery(b *testing.B) {
	const records = 100_000
	payload := make([]byte, 128)
	dir := b.TempDir()
	// MaxBacklog is lifted well past the seeded volume: this bench measures
	// replay, and on a slow disk the default 4MB append bound would shed
	// records while the log is being written.
	w, err := Open(dir, Options{Sync: SyncNone, SegmentBytes: 32 << 20, MaxBacklog: 64 << 20})
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	for i := 0; i < records; i++ {
		if _, err := w.Append(KindTSDBAppend, payload); err != nil {
			b.Fatalf("Append: %v", err)
		}
	}
	if err := w.Sync(); err != nil {
		b.Fatalf("Sync: %v", err)
	}
	b.ReportAllocs()
	b.SetBytes(records * frameSize(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := w.Replay(1)
		if err != nil {
			b.Fatalf("Replay: %v", err)
		}
		n := 0
		for {
			if _, err := r.Next(); err != nil {
				if err != io.EOF {
					b.Fatalf("Next: %v", err)
				}
				break
			}
			n++
		}
		r.Close()
		if n != records {
			b.Fatalf("replayed %d, want %d", n, records)
		}
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(perOp*(1e6/records)/1e6, "ms/Mrecords")
	w.Close()
}

// TestWALAppendAllocs gates the journal hot path at zero steady-state
// allocations per record: the frame is encoded into a reused buffer and the
// flusher owns every syscall.
func TestWALAppendAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gate skipped under the race detector")
	}
	w, err := Open(t.TempDir(), Options{Sync: SyncNone, SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Close()
	payload := make([]byte, 128)
	// Warm the frame buffer past its steady-state size.
	for i := 0; i < 4096; i++ {
		if _, err := w.Append(KindTSDBAppend, payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := w.Append(KindTSDBAppend, payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("WAL append allocates %.1f/op, want 0", allocs)
	}
}
