//go:build !race

package wal

// raceEnabled reports whether the race detector is active. Allocation gates
// are skipped under -race because the detector's instrumentation allocates.
const raceEnabled = false
