package cluster

import (
	"strconv"

	"autoloop/internal/bus"
	"autoloop/internal/control"
	"autoloop/internal/tsdb"
)

// This file is the coordinator's operator-facing surface: it serves the same
// control.v1 request/verdict topics and tsdb query topic a single-process
// modad serves, but answers them by consulting its own placement state or by
// scatter-gathering across workers. Operator tooling (nc, the HTTP gateway)
// cannot tell a coordinator from a single process — same ops, same reply
// shapes, plus the additive Members/Placement fields.

// handleControlRequest answers one control.v1 request envelope. It runs on
// the publishing connection's goroutine and may block for up to the scatter
// timeout; worker replies arrive on their own connections, so the gather
// cannot deadlock.
func (c *Coordinator) handleControlRequest(env bus.Envelope) {
	var req control.Request
	if err := bus.DecodePayload(env, &req); err != nil {
		c.publishReply(env, control.Reply{Op: "?", OK: false, Error: err.Error()})
		return
	}
	c.publishReply(env, c.Handle(req))
}

func (c *Coordinator) publishReply(env bus.Envelope, r control.Reply) {
	c.b.Publish(bus.Envelope{
		Topic: control.TopicReply, Time: env.Time, Source: c.opts.Source, Payload: r,
	})
}

// Handle executes one control request against the cluster and returns the
// merged reply. Exported so the HTTP gateway can serve the same surface.
func (c *Coordinator) Handle(req control.Request) control.Reply {
	r := control.Reply{ID: req.ID, Op: req.Op}
	switch req.Op {
	case control.OpMembers:
		r.Members = c.Members()
		r.OK = true
		return r

	case control.OpCases:
		// The coordinator's registry copy is authoritative: every worker
		// runs the same binary, hence the same case factories.
		if c.opts.Registry == nil {
			r.Error = "coordinator has no case registry"
			return r
		}
		for _, name := range c.opts.Registry.Names() {
			f, _ := c.opts.Registry.Lookup(name)
			reqs := make([]string, 0, len(f.Requires))
			for _, cap := range f.Requires {
				reqs = append(reqs, string(cap))
			}
			r.Cases = append(r.Cases, control.CaseInfo{
				Case: f.Name, Doc: f.Doc, Requires: reqs,
				Defaults: f.DefaultsJSON(), Priority: f.Priority, Period: f.Period,
			})
		}
		r.OK = true
		return r

	case control.OpSpawn:
		if req.Spec == nil {
			r.Error = "spawn without spec"
			return r
		}
		info, err := c.AddSpec(*req.Spec)
		if err != nil {
			r.Error = err.Error()
			return r
		}
		// Placement is asynchronous: the reply reports where the spec went
		// (or that it is pending a worker), not a live loop status.
		r.Placement = &info
		r.OK = true
		return r

	case control.OpList, control.OpPending:
		workers := c.dir.Alive()
		if len(workers) == 0 {
			r.OK = true // an empty cluster has no loops and nothing pending
			return r
		}
		replies := c.scatter.Fan(workers, func(w, id string) Fanout {
			fr := req
			fr.ID = id
			return Fanout{Worker: w, ID: id, Control: &fr}
		})
		merged := mergeControlLists(req.Op, req.ID, replies)
		merged.ID = req.ID
		if merged.Partial {
			c.scatter.partials.Add(1)
		}
		return merged

	default:
		// Loop-addressed ops route to the owner; unknown loops and unknown
		// ops fail the same way a single-process service fails them.
		return c.routeLoopOp(req)
	}
}

// routeLoopOp forwards a loop-addressed op (get, pause, resume, drain,
// remove, set-mode, set-guard) to the worker owning the loop.
func (c *Coordinator) routeLoopOp(req control.Request) control.Reply {
	r := control.Reply{ID: req.ID, Op: req.Op}
	group, worker := c.ownerOf(req.Loop)
	if worker == "" || !c.dir.IsAlive(worker) {
		if group == "" {
			r.Error = "unknown loop " + strconv.Quote(req.Loop)
		} else {
			r.Error = "loop " + strconv.Quote(req.Loop) + " is not placed on an alive worker"
		}
		return r
	}
	replies := c.scatter.Fan([]string{worker}, func(w, id string) Fanout {
		fr := req
		fr.ID = id
		return Fanout{Worker: w, ID: id, Control: &fr}
	})
	if len(replies) == 0 || replies[0].Control == nil {
		err := "no reply from worker " + worker
		if len(replies) > 0 && replies[0].Err != "" {
			err = worker + ": " + replies[0].Err
		}
		r.Error = err
		return r
	}
	out := *replies[0].Control
	out.ID = req.ID
	stampWorker(&out, worker)
	if out.OK && req.Op == control.OpRemove {
		// The worker already tore the loops down; drop the spec so the next
		// rebalance does not resurrect it (no revoke needed).
		c.dropGroup(group)
	}
	return out
}

// stampWorker fills the Worker field on loop statuses and pending entries of
// a single-worker reply.
func stampWorker(r *control.Reply, worker string) {
	for i := range r.Loops {
		r.Loops[i].Worker = worker
	}
	if r.Loop != nil {
		r.Loop.Worker = worker
	}
	for i := range r.Pending {
		r.Pending[i].Worker = worker
	}
}

// ownerOf resolves a loop name (or group name) to its placement.
func (c *Coordinator) ownerOf(loop string) (group, worker string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	group = c.byLoop[loop]
	if group == "" {
		if _, ok := c.specs[loop]; ok {
			group = loop
		}
	}
	if p := c.specs[group]; p != nil {
		return group, p.worker
	}
	return group, ""
}

// dropGroup removes a group's spec and loop-index entries after its worker
// confirmed removal.
func (c *Coordinator) dropGroup(group string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.specs, group)
	for loop, g := range c.byLoop {
		if g == group {
			delete(c.byLoop, loop)
		}
	}
	c.ledger(ledgerEvent{Op: "unspec", Group: group})
}

// handleVerdict forwards an operator approve/deny to the worker holding the
// pending action. Pending sequence numbers are per-worker, so the verdict
// fans to every alive worker with the loop name as a cross-check; only the
// owner answers OK, and its resolution wins the merged reply.
func (c *Coordinator) handleVerdict(env bus.Envelope, approve bool) {
	var v control.Verdict
	if err := bus.DecodePayload(env, &v); err != nil {
		return
	}
	c.publishReply(env, c.Verdict(approve, v))
}

// Verdict settles one pending approval across the cluster and returns the
// owning worker's reply. Exported so the HTTP gateway can serve approvals
// against a coordinator the same way it serves them against a local
// control.Service.
func (c *Coordinator) Verdict(approve bool, v control.Verdict) control.Reply {
	workers := c.dir.Alive()
	if v.Loop != "" {
		// With the cross-check present the owner is known: route narrowly.
		if _, worker := c.ownerOf(v.Loop); worker != "" && c.dir.IsAlive(worker) {
			workers = []string{worker}
		}
	}
	op := control.OpApprove
	if !approve {
		op = control.OpDeny
	}
	if len(workers) == 0 {
		return control.Reply{ID: v.ID, Op: op, Error: "no alive workers"}
	}
	replies := c.scatter.Fan(workers, func(w, id string) Fanout {
		fv := v
		f := Fanout{Worker: w, ID: id}
		if approve {
			f.ApproveVerdict = &fv
		} else {
			f.DenyVerdict = &fv
		}
		return f
	})
	var best *control.Reply
	var firstErr string
	for i := range replies {
		switch {
		case replies[i].Err != "":
			if firstErr == "" {
				firstErr = replies[i].Worker + ": " + replies[i].Err
			}
		case replies[i].Control == nil:
			if firstErr == "" {
				firstErr = replies[i].Worker + ": empty reply"
			}
		case replies[i].Control.OK:
			best = replies[i].Control
		case firstErr == "":
			firstErr = replies[i].Worker + ": " + replies[i].Control.Error
		}
	}
	if best == nil {
		return control.Reply{ID: v.ID, Op: op, Error: firstErr}
	}
	out := *best
	out.ID = v.ID
	return out
}

// handleQuery answers one tsdb query by scatter-gathering it across every
// alive worker and merging the per-worker responses: each worker stores the
// series its own simulation slice emits, so the union is the facility view.
func (c *Coordinator) handleQuery(env bus.Envelope) {
	req, err := tsdb.DecodeRequest(env.Payload)
	publish := func(resp tsdb.QueryResponse) {
		c.b.Publish(bus.Envelope{
			Topic: tsdb.ResultTopic, Time: env.Time, Source: c.opts.Source, Payload: resp,
		})
	}
	if err != nil {
		publish(tsdb.QueryResponse{Err: err.Error()})
		return
	}
	publish(c.Answer(req))
}

// Answer scatter-gathers one already-decoded query across the alive workers
// and returns the merged facility-wide response. Exported for the HTTP
// gateway's /v1/query path, which has no local store on a coordinator.
func (c *Coordinator) Answer(req tsdb.QueryRequest) tsdb.QueryResponse {
	workers := c.dir.Alive()
	if len(workers) == 0 {
		return tsdb.QueryResponse{ID: req.ID}
	}
	replies := c.scatter.Fan(workers, func(w, id string) Fanout {
		fr := req
		fr.ID = id
		return Fanout{Worker: w, ID: id, Query: &fr}
	})
	resp := MergeQuery(req.ID, replies)
	if resp.Partial {
		c.scatter.partials.Add(1)
	}
	return resp
}
