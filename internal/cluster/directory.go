package cluster

import (
	"sort"
	"sync"
	"time"
)

// Directory is the coordinator's member table: who has joined, when each
// member last renewed its lease, and each member's last-reported load. Time
// is the caller's wall clock, passed in explicitly so tests control it.
type Directory struct {
	mu      sync.Mutex
	ttl     time.Duration
	members map[string]*memberEntry
}

type memberEntry struct {
	id       string
	lastBeat time.Time
	expired  bool
	hb       Heartbeat
}

// DefaultLeaseTTL is the lease window: a worker that has not been heard from
// for this long is declared dead and its loops fail over.
const DefaultLeaseTTL = 5 * time.Second

// NewDirectory returns an empty directory; ttl <= 0 selects DefaultLeaseTTL.
func NewDirectory(ttl time.Duration) *Directory {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	return &Directory{ttl: ttl, members: make(map[string]*memberEntry)}
}

// TTL returns the lease window.
func (d *Directory) TTL() time.Duration { return d.ttl }

// Hello registers (or revives) a member and reports whether it was not
// previously alive — i.e. whether the caller should add it to the ring.
func (d *Directory) Hello(id string, now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.members[id]
	if e == nil {
		e = &memberEntry{id: id}
		d.members[id] = e
	}
	wasDead := e.expired || e.lastBeat.IsZero()
	e.lastBeat = now
	e.expired = false
	return wasDead
}

// Beat renews a member's lease with its reported stats. An unknown or
// expired member returns false — the worker must re-Hello (heartbeats from
// the dead are not resurrections: its loops may already be replaced).
func (d *Directory) Beat(hb Heartbeat, now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.members[hb.Worker]
	if e == nil || e.expired {
		return false
	}
	e.lastBeat = now
	e.hb = hb
	return true
}

// Sweep expires every alive member whose lease lapsed before now and returns
// their IDs in sorted order. Expired members stay in the directory (visible
// as "expired" in Members) until the same worker re-Hellos.
func (d *Directory) Sweep(now time.Time) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for id, e := range d.members {
		if !e.expired && now.Sub(e.lastBeat) > d.ttl {
			e.expired = true
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Alive returns the alive member IDs in sorted order.
func (d *Directory) Alive() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for id, e := range d.members {
		if !e.expired {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// IsAlive reports whether id is a current (non-expired) member.
func (d *Directory) IsAlive(id string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.members[id]
	return e != nil && !e.expired
}

// snapshot returns every member's entry for reporting, sorted by ID.
func (d *Directory) snapshot(now time.Time) []memberView {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]memberView, 0, len(d.members))
	for _, e := range d.members {
		out = append(out, memberView{
			id: e.id, expired: e.expired, sinceBeat: now.Sub(e.lastBeat), hb: e.hb,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

type memberView struct {
	id        string
	expired   bool
	sinceBeat time.Duration
	hb        Heartbeat
}
