package cluster

import (
	"sort"
	"sync"
	"time"
)

// Directory is the coordinator's member table: who has joined, when each
// member last renewed its lease, and each member's last-reported load. Time
// is the caller's wall clock, passed in explicitly so tests control it.
//
// Leases have two tiers, distinguishing "worker slow" from "worker dead":
// a member silent past the TTL turns suspect — still in the ring, loops
// untouched, just flagged — and only a member silent past TTL+grace
// expires and has its loops failed over. A heartbeat received while
// suspect revives the member in place, with no re-Hello and no ring churn:
// the 1-beat blip (GC pause, dropped frame, congested link) costs nothing.
type Directory struct {
	mu      sync.Mutex
	ttl     time.Duration
	grace   time.Duration
	members map[string]*memberEntry
}

// Member lease states.
const (
	stateAlive = iota
	stateSuspect
	stateExpired
)

type memberEntry struct {
	id       string
	lastBeat time.Time
	state    int
	hb       Heartbeat
}

// DefaultLeaseTTL is the lease window: a worker that has not been heard
// from for this long is suspect; one silent past TTL+grace is declared
// dead and its loops fail over.
const DefaultLeaseTTL = 5 * time.Second

// NewDirectory returns an empty directory; ttl <= 0 selects
// DefaultLeaseTTL. grace == 0 selects one extra lease window (grace =
// ttl); a negative grace disables the suspect tier, restoring the single
// TTL cliff.
func NewDirectory(ttl, grace time.Duration) *Directory {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	if grace == 0 {
		grace = ttl
	}
	if grace < 0 {
		grace = 0
	}
	return &Directory{ttl: ttl, grace: grace, members: make(map[string]*memberEntry)}
}

// TTL returns the lease window.
func (d *Directory) TTL() time.Duration { return d.ttl }

// Grace returns the suspect window appended to the lease.
func (d *Directory) Grace() time.Duration { return d.grace }

// Hello registers (or revives) a member and reports whether it was not
// previously alive — i.e. whether the caller should add it to the ring.
func (d *Directory) Hello(id string, now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.members[id]
	if e == nil {
		e = &memberEntry{id: id}
		d.members[id] = e
	}
	wasDead := e.state == stateExpired || e.lastBeat.IsZero()
	e.lastBeat = now
	e.state = stateAlive
	return wasDead
}

// Beat renews a member's lease with its reported stats. A suspect member
// is revived in place — resuming within the grace window re-acquires the
// lease without re-Hello churn. An unknown or expired member returns false:
// the worker must re-Hello (heartbeats from the dead are not resurrections;
// its loops may already be replaced).
func (d *Directory) Beat(hb Heartbeat, now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.members[hb.Worker]
	if e == nil || e.state == stateExpired {
		return false
	}
	e.lastBeat = now
	e.state = stateAlive
	e.hb = hb
	return true
}

// Sweep advances lease tiers at wall time now: alive members lapsed past
// the TTL turn suspect, suspect members lapsed past TTL+grace expire. Both
// transitions are reported once, in sorted order. Expired members stay in
// the directory (visible as "expired" in Members) until the same worker
// re-Hellos.
func (d *Directory) Sweep(now time.Time) (suspects, expired []string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for id, e := range d.members {
		lapse := now.Sub(e.lastBeat)
		switch e.state {
		case stateAlive:
			if lapse > d.ttl+d.grace {
				e.state = stateExpired
				expired = append(expired, id)
			} else if lapse > d.ttl {
				e.state = stateSuspect
				suspects = append(suspects, id)
			}
		case stateSuspect:
			if lapse > d.ttl+d.grace {
				e.state = stateExpired
				expired = append(expired, id)
			}
		}
	}
	sort.Strings(suspects)
	sort.Strings(expired)
	return suspects, expired
}

// Alive returns the non-expired member IDs (alive and suspect) in sorted
// order — the set still owning ring positions.
func (d *Directory) Alive() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for id, e := range d.members {
		if e.state != stateExpired {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// IsAlive reports whether id is a current (non-expired) member.
func (d *Directory) IsAlive(id string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.members[id]
	return e != nil && e.state != stateExpired
}

// snapshot returns every member's entry for reporting, sorted by ID.
func (d *Directory) snapshot(now time.Time) []memberView {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]memberView, 0, len(d.members))
	for _, e := range d.members {
		out = append(out, memberView{
			id: e.id, state: e.state, sinceBeat: now.Sub(e.lastBeat), hb: e.hb,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

type memberView struct {
	id        string
	state     int
	sinceBeat time.Duration
	hb        Heartbeat
}

// stateName renders a lease tier for wire reporting.
func stateName(state int) string {
	switch state {
	case stateSuspect:
		return "suspect"
	case stateExpired:
		return "expired"
	}
	return "alive"
}
