package cluster

import (
	"fmt"
	"sync"
	"time"

	"autoloop/internal/fleet"
)

// Arbiter resolves cross-node conflicts: loops on different workers acting
// on the same shared subject (a facility plant setpoint, a parallel-fs
// stripe policy). Worker rounds are not synchronized across processes, so
// instead of a round barrier the arbiter keeps a subject-grant table: when a
// digest's action is granted, the (worker, loop, kind, rank, priority) grant
// holds the subject for a wall-clock window, and a later conflicting action
// — different kind, from a different worker — is denied unless it outranks
// the holder (kind rank first, then priority, mirroring fleet.Arbiter). A
// same-worker action is never denied here: the worker's own fleet arbiter
// already resolved local conflicts.
type Arbiter struct {
	mu       sync.Mutex
	window   time.Duration
	kindRank map[string]int
	grants   map[string]grant // by subject

	denied uint64
}

type grant struct {
	worker   string
	loop     string
	kind     string
	rank     int
	priority int
	until    time.Time
}

// DefaultArbWindow is the grant window: a granted action holds its subject
// against conflicting cross-node actions for this long.
const DefaultArbWindow = 2 * time.Second

// NewArbiter returns an arbiter; window <= 0 selects DefaultArbWindow.
func NewArbiter(window time.Duration) *Arbiter {
	if window <= 0 {
		window = DefaultArbWindow
	}
	return &Arbiter{window: window, kindRank: make(map[string]int), grants: make(map[string]grant)}
}

// RankKind declares that actions of this kind dominate lower-ranked kinds on
// the same subject regardless of priority, mirroring fleet.Arbiter.RankKind.
func (a *Arbiter) RankKind(kind string, rank int) *Arbiter {
	a.mu.Lock()
	a.kindRank[kind] = rank
	a.mu.Unlock()
	return a
}

// Denied reports how many digest actions have been denied so far.
func (a *Arbiter) Denied() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.denied
}

// Decide arbitrates one worker digest at wall time now, returning the
// verdict to send back. Granted actions take (or renew) their subject's
// grant; denied ones are annotated with the holder they lost to.
func (a *Arbiter) Decide(d Digest, now time.Time) Verdict {
	v := Verdict{Worker: d.Worker, Seq: d.Seq}
	if len(d.Actions) == 0 {
		return v
	}
	v.Deny = make([]bool, len(d.Actions))
	v.Reasons = make([]string, len(d.Actions))
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, act := range d.Actions {
		if act.Subject == "" {
			continue
		}
		g, held := a.grants[act.Subject]
		if held && now.After(g.until) {
			held = false
		}
		rank := a.kindRank[act.Kind]
		// A conflict needs a different worker and a contradicting kind —
		// two workers granting the same kind on a subject is redundancy,
		// not contradiction, matching fleet.DefaultConflictPolicy.
		if held && g.worker != d.Worker && g.kind != act.Kind {
			if rank < g.rank || (rank == g.rank && act.Priority <= g.priority) {
				v.Deny[i] = true
				v.Reasons[i] = fmt.Sprintf(
					"subject %s held by %s/%s/%s (kind rank %d vs %d, priority %d vs %d)",
					act.Subject, g.worker, g.loop, g.kind, rank, g.rank, act.Priority, g.priority)
				a.denied++
				continue
			}
		}
		a.grants[act.Subject] = grant{
			worker: d.Worker, loop: act.Loop, kind: act.Kind,
			rank: rank, priority: act.Priority, until: now.Add(a.window),
		}
	}
	return v
}

// Forget drops every grant held by a worker (called when its lease expires,
// so a dead worker cannot hold subjects against the living).
func (a *Arbiter) Forget(worker string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for subject, g := range a.grants {
		if g.worker == worker {
			delete(a.grants, subject)
		}
	}
}

// digestFromFleet adapts a worker fleet's digest slice to the wire form.
func digestFromFleet(worker string, seq uint64, ds []fleet.ActionDigest) Digest {
	return Digest{Worker: worker, Seq: seq, Actions: ds}
}
