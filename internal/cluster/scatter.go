package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/control"
	"autoloop/internal/tsdb"
)

// DefaultScatterTimeout bounds one scatter-gather fan-out: workers that have
// not replied by then are reported as errors in the merged result instead of
// stalling the caller.
const DefaultScatterTimeout = 2 * time.Second

// scatter fans Fanout envelopes across workers and gathers their FanReply
// envelopes by correlation ID. One scatter instance serves a coordinator;
// its handler is attached to TopicReply on the coordinator bus.
type scatter struct {
	b       *bus.Bus
	source  string
	timeout time.Duration

	nextID atomic.Uint64
	mu     sync.Mutex
	flight map[string]*fan

	fanned   atomic.Uint64
	timeous  atomic.Uint64
	partials atomic.Uint64
}

type fan struct {
	want    map[string]bool
	replies []FanReply
	done    chan struct{}
	mu      sync.Mutex
}

func newScatter(b *bus.Bus, source string, timeout time.Duration) *scatter {
	if timeout <= 0 {
		timeout = DefaultScatterTimeout
	}
	return &scatter{b: b, source: source, timeout: timeout, flight: make(map[string]*fan)}
}

// handleReply routes one FanReply to its in-flight fan; stray replies (late
// arrivals after a timeout) are dropped.
func (s *scatter) handleReply(env bus.Envelope) {
	var r FanReply
	if err := bus.DecodePayload(env, &r); err != nil {
		return
	}
	s.mu.Lock()
	f := s.flight[r.ID]
	s.mu.Unlock()
	if f == nil {
		return
	}
	f.mu.Lock()
	if f.want[r.Worker] {
		delete(f.want, r.Worker)
		f.replies = append(f.replies, r)
		if len(f.want) == 0 {
			close(f.done)
		}
	}
	f.mu.Unlock()
}

// Fan sends build(worker, id) to every worker and waits for all replies or
// the timeout. The returned slice holds one entry per worker in worker-ID
// order; workers that never answered get a synthesized Err entry, so merges
// can always report partial coverage explicitly.
func (s *scatter) Fan(workers []string, build func(worker, id string) Fanout) []FanReply {
	if len(workers) == 0 {
		return nil
	}
	id := "fan-" + strconv.FormatUint(s.nextID.Add(1), 10)
	f := &fan{want: make(map[string]bool, len(workers)), done: make(chan struct{})}
	for _, w := range workers {
		f.want[w] = true
	}
	s.mu.Lock()
	s.flight[id] = f
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.flight, id)
		s.mu.Unlock()
	}()

	for _, w := range workers {
		s.fanned.Add(1)
		s.b.Publish(bus.Envelope{Topic: TopicFanout, Source: s.source, Payload: build(w, id)})
	}
	select {
	case <-f.done:
	case <-time.After(s.timeout):
		s.timeous.Add(1)
	}

	f.mu.Lock()
	replies := append([]FanReply(nil), f.replies...)
	for w := range f.want {
		replies = append(replies, FanReply{
			Worker: w, ID: id, Err: fmt.Sprintf("no reply within %v", s.timeout),
		})
	}
	f.mu.Unlock()
	sort.Slice(replies, func(i, j int) bool { return replies[i].Worker < replies[j].Worker })
	return replies
}

// MergeQuery merges per-worker tsdb responses into one: series concatenate
// (each worker owns its own slice of the facility, so series never need
// deduplication) and sort by metric, then label fingerprint, for a
// deterministic wire order. Workers that timed out or errored do not void
// the answer — the merge is typed partial: Partial is set, Failed
// attributes each missing slice to its worker, and Err keeps the flat
// human-readable join for older callers.
func MergeQuery(id string, replies []FanReply) tsdb.QueryResponse {
	out := tsdb.QueryResponse{ID: id}
	var errs []string
	fail := func(worker, msg string) {
		errs = append(errs, worker+": "+msg)
		out.Failed = append(out.Failed, tsdb.SourceError{Source: worker, Err: msg})
	}
	for _, r := range replies {
		switch {
		case r.Err != "":
			fail(r.Worker, r.Err)
		case r.Query == nil:
			fail(r.Worker, "empty reply")
		case r.Query.Err != "":
			fail(r.Worker, r.Query.Err)
		default:
			out.Series = append(out.Series, r.Query.Series...)
		}
	}
	sort.Slice(out.Series, func(i, j int) bool {
		a, b := &out.Series[i], &out.Series[j]
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		return labelFingerprint(a.Labels) < labelFingerprint(b.Labels)
	})
	out.Err = strings.Join(errs, "; ")
	out.Partial = len(out.Failed) > 0 && len(out.Failed) < len(replies)
	return out
}

func labelFingerprint(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(labels[k])
		sb.WriteByte(',')
	}
	return sb.String()
}

// mergeControlLists merges per-worker control replies for the list and
// pending ops: loop statuses and pending entries concatenate with their
// Worker field stamped, sorted by (group, name) / (worker, seq).
func mergeControlLists(op, id string, replies []FanReply) control.Reply {
	out := control.Reply{ID: id, Op: op, OK: true}
	var errs []string
	for _, r := range replies {
		switch {
		case r.Err != "":
			errs = append(errs, r.Worker+": "+r.Err)
		case r.Control == nil:
			errs = append(errs, r.Worker+": empty reply")
		case !r.Control.OK:
			errs = append(errs, r.Worker+": "+r.Control.Error)
		default:
			for _, st := range r.Control.Loops {
				st.Worker = r.Worker
				out.Loops = append(out.Loops, st)
			}
			for _, p := range r.Control.Pending {
				p.Worker = r.Worker
				out.Pending = append(out.Pending, p)
			}
		}
	}
	sort.Slice(out.Loops, func(i, j int) bool {
		a, b := &out.Loops[i], &out.Loops[j]
		if a.Group != b.Group {
			return a.Group < b.Group
		}
		return a.Name < b.Name
	})
	sort.Slice(out.Pending, func(i, j int) bool {
		a, b := &out.Pending[i], &out.Pending[j]
		if a.Worker != b.Worker {
			return a.Worker < b.Worker
		}
		return a.Seq < b.Seq
	})
	if len(errs) > 0 {
		// Partial coverage is reported, not hidden: the merged reply stays
		// OK — and typed Partial — when at least one worker answered, with
		// Error naming the gaps.
		out.Error = strings.Join(errs, "; ")
		if len(errs) == len(replies) {
			out.OK = false
		} else {
			out.Partial = true
		}
	}
	return out
}
