package cluster

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/control"
	"autoloop/internal/tsdb"
	"autoloop/internal/wal"
)

// DefaultAssignTimeout is how long the coordinator waits for an assignment
// ack before re-sending it.
const DefaultAssignTimeout = 3 * time.Second

// Options configures a Coordinator.
type Options struct {
	// Source tags outbound envelopes (defaults to "coordinator").
	Source string
	// Lease is the worker lease window (default DefaultLeaseTTL): a worker
	// silent for longer turns suspect, and past Lease+Grace is declared
	// dead and its loops fail over.
	Lease time.Duration
	// Grace is the suspect window between "worker slow" and "worker dead":
	// a suspect worker keeps its ring position and loops, and a heartbeat
	// arriving within the window re-acquires the lease without re-Hello
	// churn. 0 selects one extra lease window; negative disables the tier.
	Grace time.Duration
	// Replicas is the consistent-hash virtual-point count per worker
	// (default DefaultReplicas).
	Replicas int
	// ArbWindow is the cross-node subject-grant window (default
	// DefaultArbWindow).
	ArbWindow time.Duration
	// ScatterTimeout bounds each scatter-gather fan-out (default
	// DefaultScatterTimeout).
	ScatterTimeout time.Duration
	// AssignTimeout bounds one unacked assignment before re-send (default
	// DefaultAssignTimeout).
	AssignTimeout time.Duration
	// Registry, when set, answers the cases op locally (workers all run
	// the same registry, so the coordinator's copy is authoritative).
	Registry *control.Registry
	// Ledger, when set, journals every placement event (KindClusterEvent
	// records) so a coordinator restart rebuilds its table via ApplyWAL.
	Ledger *wal.WAL
}

// Stats is a snapshot of the coordinator's counters.
type Stats struct {
	Members           int    // directory entries (alive + suspect + expired)
	Alive             int    // fully-alive workers
	Suspect           int    // workers in the lease grace tier ("slow, not dead")
	Specs             int    // specs in the placement table
	Placed            int    // specs acked by their worker
	Unplaced          int    // specs pending, in flight, or failed
	Assigns           uint64 // assignments sent (incl. re-sends and failovers)
	Failovers         uint64 // placements moved off an expired worker
	LeaseExpiries     uint64 // worker leases expired
	SuspectEvents     uint64 // alive→suspect lease transitions
	Fanouts           uint64 // scatter-gather requests fanned out
	FanTimeouts       uint64 // scatters that hit the timeout with replies missing
	ScatterPartials   uint64 // scatters answered with partial coverage
	DigestsSeen       uint64 // arbitration digests processed
	DigestsDenied     uint64 // digest actions denied cross-node
	DigestsBackfilled uint64 // stale digests re-delivered by rejoining workers
	LedgerFaults      uint64 // placement-ledger appends that failed
}

// placement is one spec's placement record.
type placement struct {
	group  string
	spec   control.LoopSpec
	worker string // current owner ("" while unplaced)
	state  string // "pending", "assigned", "placed", "failed"
	loops  []string
	sentAt time.Time
	sentID string
}

// Placement states.
const (
	placePending  = "pending"
	placeAssigned = "assigned"
	placePlaced   = "placed"
	placeFailed   = "failed"
)

// Coordinator places LoopSpecs across worker processes over the bus bridge,
// tracks their leases, fails their loops over on expiry, arbitrates shared
// subjects across nodes, and scatter-gathers queries. Attach it to the bus
// the cluster-facing bus.Server exports, then drive Tick from a wall-clock
// ticker.
type Coordinator struct {
	b    *bus.Bus
	opts Options

	ring    *Ring
	dir     *Directory
	arb     *Arbiter
	scatter *scatter

	mu     sync.Mutex
	specs  map[string]*placement // by group
	byLoop map[string]string     // loop name -> group (from acks)
	nextID uint64

	assigns      atomic.Uint64
	failovers    atomic.Uint64
	expiries     atomic.Uint64
	suspects     atomic.Uint64
	digests      atomic.Uint64
	backfilled   atomic.Uint64
	ledgerFaults atomic.Uint64

	cancels []func()
}

// NewCoordinator builds a coordinator over b and subscribes its handlers:
// the cluster worker topics, the operator-facing control.v1 request and
// verdict topics, and the tsdb query topic (answered by scatter-gather).
func NewCoordinator(b *bus.Bus, opts Options) *Coordinator {
	if opts.Source == "" {
		opts.Source = "coordinator"
	}
	if opts.AssignTimeout <= 0 {
		opts.AssignTimeout = DefaultAssignTimeout
	}
	c := &Coordinator{
		b:       b,
		opts:    opts,
		ring:    NewRing(opts.Replicas),
		dir:     NewDirectory(opts.Lease, opts.Grace),
		arb:     NewArbiter(opts.ArbWindow),
		scatter: newScatter(b, opts.Source, opts.ScatterTimeout),
		specs:   make(map[string]*placement),
		byLoop:  make(map[string]string),
	}
	c.cancels = append(c.cancels,
		b.Subscribe(TopicHello, c.handleHello),
		b.Subscribe(TopicHeartbeat, c.handleHeartbeat),
		b.Subscribe(TopicAck, c.handleAck),
		b.Subscribe(TopicDigest, c.handleDigest),
		b.Subscribe(TopicReply, c.scatter.handleReply),
		b.Subscribe(control.TopicRequest, c.handleControlRequest),
		b.Subscribe(control.TopicApprove, func(env bus.Envelope) { c.handleVerdict(env, true) }),
		b.Subscribe(control.TopicDeny, func(env bus.Envelope) { c.handleVerdict(env, false) }),
		b.Subscribe(tsdb.QueryTopic, c.handleQuery),
	)
	return c
}

// Close unsubscribes the coordinator from its bus topics.
func (c *Coordinator) Close() {
	for _, cancel := range c.cancels {
		cancel()
	}
	c.cancels = nil
}

// Arbiter exposes the cross-node arbiter for kind-rank configuration.
func (c *Coordinator) Arbiter() *Arbiter { return c.arb }

// Directory exposes the member directory (lease table).
func (c *Coordinator) Directory() *Directory { return c.dir }

// Stats returns a snapshot of the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	now := time.Now()
	views := c.dir.snapshot(now)
	s := Stats{
		Members:           len(views),
		Assigns:           c.assigns.Load(),
		Failovers:         c.failovers.Load(),
		LeaseExpiries:     c.expiries.Load(),
		SuspectEvents:     c.suspects.Load(),
		Fanouts:           c.scatter.fanned.Load(),
		FanTimeouts:       c.scatter.timeous.Load(),
		ScatterPartials:   c.scatter.partials.Load(),
		DigestsSeen:       c.digests.Load(),
		DigestsDenied:     c.arb.Denied(),
		DigestsBackfilled: c.backfilled.Load(),
		LedgerFaults:      c.ledgerFaults.Load(),
	}
	for _, v := range views {
		switch v.state {
		case stateAlive:
			s.Alive++
		case stateSuspect:
			s.Suspect++
		}
	}
	c.mu.Lock()
	s.Specs = len(c.specs)
	for _, p := range c.specs {
		if p.state == placePlaced {
			s.Placed++
		} else {
			s.Unplaced++
		}
	}
	c.mu.Unlock()
	return s
}

// Members reports the directory as control wire MemberInfo rows, with each
// member's current placement count.
func (c *Coordinator) Members() []control.MemberInfo {
	now := time.Now()
	perWorker := make(map[string]int)
	c.mu.Lock()
	for _, p := range c.specs {
		if p.worker != "" && p.state != placePending {
			perWorker[p.worker]++
		}
	}
	c.mu.Unlock()
	var out []control.MemberInfo
	for _, v := range c.dir.snapshot(now) {
		out = append(out, control.MemberInfo{
			ID: v.id, State: stateName(v.state), Loops: perWorker[v.id],
			Series: v.hb.Series, Samples: v.hb.Samples, Rounds: v.hb.Rounds,
			LastBeatMS: v.sinceBeat.Milliseconds(),
		})
	}
	return out
}

// Placements reports the placement table sorted by group.
func (c *Coordinator) Placements() []control.PlacementInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]control.PlacementInfo, 0, len(c.specs))
	for _, p := range c.specs {
		out = append(out, control.PlacementInfo{
			Group: p.group, Case: p.spec.Case, Worker: p.worker, State: p.state,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out
}

// groupKey names a spec's placement group: the explicit loop name when set,
// else the case name. Every spec in one cluster needs a distinct group, so
// running the same case twice requires naming the second deployment — the
// same rule the single-process service enforces through loop-name
// uniqueness.
func groupKey(spec control.LoopSpec) string {
	if spec.Name != "" {
		return spec.Name
	}
	return spec.Case
}

// AddSpec admits one spec into the placement table and places it if a
// worker is available; with no workers it stays pending until one joins.
func (c *Coordinator) AddSpec(spec control.LoopSpec) (control.PlacementInfo, error) {
	if err := spec.Validate(); err != nil {
		return control.PlacementInfo{}, err
	}
	group := groupKey(spec)
	c.mu.Lock()
	if _, dup := c.specs[group]; dup {
		c.mu.Unlock()
		return control.PlacementInfo{}, fmt.Errorf("cluster: group %q already placed (name the spec to run a case twice)", group)
	}
	p := &placement{group: group, spec: spec, state: placePending}
	c.specs[group] = p
	c.ledger(ledgerEvent{Op: "spec", Group: group, Spec: &spec})
	c.placeLocked(p, time.Now())
	info := placementInfo(p)
	c.mu.Unlock()
	return info, nil
}

// RemoveSpec drops a group from the table, revoking it from its worker.
func (c *Coordinator) RemoveSpec(group string) bool {
	c.mu.Lock()
	p := c.specs[group]
	if p == nil {
		c.mu.Unlock()
		return false
	}
	delete(c.specs, group)
	for loop, g := range c.byLoop {
		if g == group {
			delete(c.byLoop, loop)
		}
	}
	worker, alive := p.worker, p.worker != "" && c.dir.IsAlive(p.worker)
	c.ledger(ledgerEvent{Op: "unspec", Group: group})
	c.mu.Unlock()
	if alive {
		c.publish(TopicRevoke, Revoke{Worker: worker, ID: c.newID("rev"), Group: group})
	}
	return true
}

func placementInfo(p *placement) control.PlacementInfo {
	return control.PlacementInfo{Group: p.group, Case: p.spec.Case, Worker: p.worker, State: p.state}
}

func (c *Coordinator) newID(prefix string) string {
	c.nextID++
	return prefix + "-" + strconv.FormatUint(c.nextID, 10)
}

// placeLocked assigns p to its ring owner if one is alive. Caller holds mu.
func (c *Coordinator) placeLocked(p *placement, now time.Time) {
	owner := c.ring.Owner(p.group)
	if owner == "" {
		p.state = placePending
		p.worker = ""
		return
	}
	p.worker = owner
	p.state = placeAssigned
	p.sentAt = now
	p.sentID = c.newID("asg")
	c.assigns.Add(1)
	c.ledger(ledgerEvent{Op: "assign", Group: p.group, Worker: owner})
	c.publish(TopicAssign, Assign{Worker: owner, ID: p.sentID, Group: p.group, Spec: p.spec})
}

// rebalance re-derives every placement's owner after a membership change:
// groups whose owner moved are revoked from a still-alive old owner and
// assigned to the new one. Caller holds mu.
func (c *Coordinator) rebalanceLocked(now time.Time) {
	groups := make([]string, 0, len(c.specs))
	for g := range c.specs {
		groups = append(groups, g)
	}
	sort.Strings(groups) // deterministic assignment order
	for _, g := range groups {
		p := c.specs[g]
		desired := c.ring.Owner(p.group)
		if desired == "" {
			p.state = placePending
			p.worker = ""
			continue
		}
		if desired == p.worker && p.state != placePending && p.state != placeFailed {
			continue
		}
		if p.worker != "" && p.worker != desired && c.dir.IsAlive(p.worker) {
			c.publish(TopicRevoke, Revoke{Worker: p.worker, ID: c.newID("rev"), Group: p.group})
		}
		c.placeLocked(p, now)
	}
}

// Tick drives lease sweeping, failover, and assignment retry at wall time
// now. Call it from a ticker (modad uses its 250ms drive loop).
func (c *Coordinator) Tick(now time.Time) {
	suspects, expired := c.dir.Sweep(now)
	c.suspects.Add(uint64(len(suspects)))
	c.mu.Lock()
	if len(expired) > 0 {
		for _, id := range expired {
			c.expiries.Add(1)
			c.ring.Remove(id)
			c.arb.Forget(id)
			c.ledger(ledgerEvent{Op: "expire", Worker: id})
			for _, p := range c.specs {
				if p.worker == id {
					c.failovers.Add(1)
				}
			}
		}
		c.rebalanceLocked(now)
	}
	// Re-send assignments that were never acked (a lost line, a worker that
	// restarted between assign and ack). Assigns are idempotent on the
	// worker: re-assigning a held group acks OK without re-spawning.
	for _, p := range c.specs {
		switch p.state {
		case placeAssigned:
			if now.Sub(p.sentAt) > c.opts.AssignTimeout {
				c.placeLocked(p, now)
			}
		case placePending:
			c.placeLocked(p, now)
		}
	}
	c.mu.Unlock()
}

// handleHello admits a worker: directory entry, ring membership, and a
// rebalance that moves it its share of the groups.
func (c *Coordinator) handleHello(env bus.Envelope) {
	var h Hello
	if err := bus.DecodePayload(env, &h); err != nil || h.Worker == "" {
		return
	}
	now := time.Now()
	fresh := c.dir.Hello(h.Worker, now)
	c.mu.Lock()
	defer c.mu.Unlock()
	if fresh {
		c.ring.Add(h.Worker)
	}
	// Reconcile groups the worker already holds (it outlived a coordinator
	// restart): placements the ledger assigned to it are confirmed placed
	// without a re-spawn.
	held := make(map[string]bool, len(h.Groups))
	for _, g := range h.Groups {
		held[g] = true
	}
	for _, p := range c.specs {
		if held[p.group] && p.worker == h.Worker {
			p.state = placePlaced
		}
	}
	// Rejoin reconciliation, the other direction: revoke held groups that
	// are no longer this worker's to run — unspec'd while it was away, or
	// failed over to another owner during a partition. Groups the ring
	// will hand straight back are left alone; the rebalance below
	// re-assigns them and the worker's idempotent assign handler acks
	// without a re-spawn.
	for _, g := range h.Groups {
		p := c.specs[g]
		if p != nil && (p.worker == h.Worker || c.ring.Owner(g) == h.Worker) {
			continue
		}
		c.publish(TopicRevoke, Revoke{Worker: h.Worker, ID: c.newID("rev"), Group: g})
	}
	c.rebalanceLocked(now)
}

func (c *Coordinator) handleHeartbeat(env bus.Envelope) {
	var hb Heartbeat
	if err := bus.DecodePayload(env, &hb); err != nil || hb.Worker == "" {
		return
	}
	if !c.dir.Beat(hb, time.Now()) {
		// Unknown or expired: the worker must re-register. Nothing to send
		// — the worker's next heartbeat gap or its own re-Hello resolves it;
		// modad workers re-Hello on a timer whenever unplaced.
		return
	}
}

func (c *Coordinator) handleAck(env bus.Envelope) {
	var a Ack
	if err := bus.DecodePayload(env, &a); err != nil || a.Group == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.specs[a.Group]
	if p == nil || p.worker != a.Worker {
		return // a stale ack from a revoked owner
	}
	if !a.OK {
		p.state = placeFailed
		return
	}
	p.state = placePlaced
	p.loops = a.Loops
	for _, loop := range a.Loops {
		c.byLoop[loop] = a.Group
	}
	c.ledger(ledgerEvent{Op: "placed", Group: a.Group, Worker: a.Worker})
}

func (c *Coordinator) handleDigest(env bus.Envelope) {
	var d Digest
	if err := bus.DecodePayload(env, &d); err != nil || d.Worker == "" {
		return
	}
	if d.Backfill {
		// A rejoined worker re-delivering what it executed while
		// partitioned (degraded standalone mode, local fail-open). The
		// actions already ran and predate the arbitration window, so they
		// are recorded, not arbitrated — and no verdict is owed.
		c.backfilled.Add(1)
		return
	}
	c.digests.Add(1)
	c.publish(TopicVerdict, c.arb.Decide(d, time.Now()))
}

// publish sends one envelope on the coordinator bus.
func (c *Coordinator) publish(topic string, payload interface{}) {
	c.b.Publish(bus.Envelope{Topic: topic, Source: c.opts.Source, Payload: payload})
}

// ledger journals one placement event when a ledger WAL is attached.
// Failures are counted (cluster_ledger_faults_total) but never block
// placement: the ledger is a restart optimization, and placement state is
// reconstructible from worker hellos even with a torn ledger. Retryable
// faults (backlog, ENOSPC) heal inside the WAL; a fatal fault leaves the
// WAL sticky-failed and every later append lands here once per event.
func (c *Coordinator) ledger(ev ledgerEvent) {
	if c.opts.Ledger == nil {
		return
	}
	if _, err := c.opts.Ledger.Append(wal.KindClusterEvent, mustJSON(ev)); err != nil {
		c.ledgerFaults.Add(1)
	}
}

// ledgerEvent is one KindClusterEvent record.
type ledgerEvent struct {
	Op     string            `json:"op"` // "spec", "unspec", "assign", "placed", "expire"
	Group  string            `json:"group,omitempty"`
	Worker string            `json:"worker,omitempty"`
	Spec   *control.LoopSpec `json:"spec,omitempty"`
}

// ApplyWAL replays one KindClusterEvent payload into the placement table —
// the coordinator-restart half of failover: specs and their last known
// owners come back from the ledger, worker hellos then reconcile reality.
func (c *Coordinator) ApplyWAL(payload []byte) error {
	var ev ledgerEvent
	if err := json.Unmarshal(payload, &ev); err != nil {
		return fmt.Errorf("cluster: ledger replay: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch ev.Op {
	case "spec":
		if ev.Spec == nil {
			return fmt.Errorf("cluster: ledger spec event without spec")
		}
		c.specs[ev.Group] = &placement{group: ev.Group, spec: *ev.Spec, state: placePending}
	case "unspec":
		delete(c.specs, ev.Group)
	case "assign":
		if p := c.specs[ev.Group]; p != nil {
			p.worker = ev.Worker
			p.state = placeAssigned
		}
	case "placed":
		if p := c.specs[ev.Group]; p != nil && p.worker == ev.Worker {
			p.state = placePlaced
		}
	case "expire":
		for _, p := range c.specs {
			if p.worker == ev.Worker {
				p.worker = ""
				p.state = placePending
			}
		}
	default:
		return fmt.Errorf("cluster: unknown ledger op %q", ev.Op)
	}
	return nil
}

// RestoreDone marks the end of ledger replay: every restored placement is
// downgraded to assigned-at-best until its worker's hello confirms it, and
// assignment timers restart from now.
func (c *Coordinator) RestoreDone() {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.specs {
		if p.state == placePlaced {
			p.state = placeAssigned
		}
		p.sentAt = now
	}
}
