package cluster

import (
	"testing"

	"autoloop/internal/bus"
	"autoloop/internal/control"
	"autoloop/internal/fleet"
)

// seedEnvelopes is one well-formed envelope per cluster topic — the decode
// test matrix and the fuzz seed corpus.
func seedEnvelopes(t testing.TB) [][]byte {
	envs := []bus.Envelope{
		{Topic: TopicHello, Source: "w1", Payload: Hello{Worker: "w1", Groups: []string{"power"}}},
		{Topic: TopicHeartbeat, Source: "w1", Payload: Heartbeat{Worker: "w1", Seq: 3, Groups: 2, Series: 10, Samples: 1000, Rounds: 7}},
		{Topic: TopicAck, Source: "w1", Payload: Ack{Worker: "w1", ID: "asg-1", Group: "power", OK: true, Loops: []string{"power"}}},
		{Topic: TopicDigest, Source: "w1", Payload: Digest{Worker: "w1", Seq: 1, Actions: []fleet.ActionDigest{
			{Loop: "power", Kind: "cap.power", Subject: "plant", Priority: 5, Amount: 2.5, Confidence: 0.9},
		}}},
		{Topic: TopicReply, Source: "w1", Payload: FanReply{Worker: "w1", ID: "fan-1", Control: &control.Reply{Op: "list", OK: true}}},
		{Topic: TopicAssign, Source: "coordinator", Payload: Assign{Worker: "w1", ID: "asg-1", Group: "power", Spec: control.LoopSpec{Case: "power"}}},
		{Topic: TopicRevoke, Source: "coordinator", Payload: Revoke{Worker: "w1", ID: "rev-1", Group: "power"}},
		{Topic: TopicVerdict, Source: "coordinator", Payload: Verdict{Worker: "w1", Seq: 1, Deny: []bool{true}, Reasons: []string{"lost plant"}}},
		{Topic: TopicFanout, Source: "coordinator", Payload: Fanout{Worker: "w1", ID: "fan-1", Control: &control.Request{Op: "list"}}},
	}
	lines := make([][]byte, 0, len(envs))
	for _, env := range envs {
		line, err := bus.Encode(env)
		if err != nil {
			t.Fatalf("encode %s: %v", env.Topic, err)
		}
		lines = append(lines, line)
	}
	return lines
}

// TestDecodeLineRoundTrip decodes every topic's seed envelope and checks the
// payload type dispatch.
func TestDecodeLineRoundTrip(t *testing.T) {
	wantTypes := []interface{}{
		&Hello{}, &Heartbeat{}, &Ack{}, &Digest{}, &FanReply{},
		&Assign{}, &Revoke{}, &Verdict{}, &Fanout{},
	}
	for i, line := range seedEnvelopes(t) {
		env, payload, err := DecodeLine(line)
		if err != nil {
			t.Fatalf("DecodeLine(#%d): %v", i, err)
		}
		if payload == nil {
			t.Fatalf("DecodeLine(#%d) on topic %s returned no payload", i, env.Topic)
		}
		got, want := payload, wantTypes[i]
		if gt, wt := typeName(got), typeName(want); gt != wt {
			t.Fatalf("DecodeLine(#%d) type = %s, want %s", i, gt, wt)
		}
	}
	// Round-trip one payload's content.
	line, _ := bus.Encode(bus.Envelope{Topic: TopicHello, Payload: Hello{Worker: "w9", Groups: []string{"a", "b"}}})
	_, payload, err := DecodeLine(line)
	if err != nil {
		t.Fatalf("DecodeLine: %v", err)
	}
	h := payload.(*Hello)
	if h.Worker != "w9" || len(h.Groups) != 2 {
		t.Fatalf("Hello round trip = %+v", h)
	}
}

func typeName(v interface{}) string {
	switch v.(type) {
	case *Hello:
		return "Hello"
	case *Heartbeat:
		return "Heartbeat"
	case *Ack:
		return "Ack"
	case *Digest:
		return "Digest"
	case *FanReply:
		return "FanReply"
	case *Assign:
		return "Assign"
	case *Revoke:
		return "Revoke"
	case *Verdict:
		return "Verdict"
	case *Fanout:
		return "Fanout"
	}
	return "?"
}

// TestDecodeEnvelopeForeignTopic checks non-cluster topics pass through as
// (nil, nil) — the bridge carries plenty of other control.v1 traffic.
func TestDecodeEnvelopeForeignTopic(t *testing.T) {
	payload, err := DecodeEnvelope(bus.Envelope{Topic: "control.v1.req", Payload: map[string]interface{}{"op": "list"}})
	if err != nil || payload != nil {
		t.Fatalf("foreign topic = (%v, %v), want (nil, nil)", payload, err)
	}
}

// FuzzClusterDecode fuzzes the cluster wire decoder with raw bridge lines:
// whatever arrives off the TCP socket, DecodeLine must return an error or a
// payload, never panic. Seeds cover every topic plus malformed shapes.
func FuzzClusterDecode(f *testing.F) {
	for _, line := range seedEnvelopes(f) {
		f.Add(line)
	}
	f.Add([]byte(`{"topic":"control.v1.cluster.w.hello","payload":42}`))
	f.Add([]byte(`{"topic":"control.v1.cluster.c.assign","payload":{"spec":{"case":[]}}}`))
	f.Add([]byte(`{"topic":"control.v1.cluster.w.digest","payload":{"actions":[{"priority":"high"}]}}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, line []byte) {
		env, payload, err := DecodeLine(line)
		if err == nil && env.Topic == "" {
			t.Fatal("decoded an envelope without a topic")
		}
		_ = payload
	})
}
