package cluster

import (
	"fmt"
	"testing"
)

// TestRingDeterministic verifies that two rings built from the same
// membership — in different insertion orders — agree on every owner, the
// property that lets coordinator and workers compute placement independently.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(0)
	b := NewRing(0)
	for _, m := range []string{"w1", "w2", "w3"} {
		a.Add(m)
	}
	for _, m := range []string{"w3", "w1", "w2"} {
		b.Add(m)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("loop-%d", i)
		if got, want := b.Owner(key), a.Owner(key); got != want {
			t.Fatalf("Owner(%q) differs across insertion orders: %q vs %q", key, got, want)
		}
	}
}

// TestRingBalance places 100k keys on 4 members and checks the load spread
// stays within the bound the virtual-point count is chosen for.
func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	members := []string{"w1", "w2", "w3", "w4"}
	for _, m := range members {
		r.Add(m)
	}
	counts := make(map[string]int)
	const keys = 100_000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("loop-%d", i))]++
	}
	min, max := keys, 0
	for _, m := range members {
		if counts[m] < min {
			min = counts[m]
		}
		if counts[m] > max {
			max = counts[m]
		}
	}
	if min == 0 {
		t.Fatalf("a member owns no keys: %v", counts)
	}
	if ratio := float64(max) / float64(min); ratio > 1.6 {
		t.Fatalf("load ratio %.2f too skewed: %v", ratio, counts)
	}
}

// TestRingMinimalMovement removes one of four members and checks that only
// keys owned by the removed member move — the consistent-hashing contract
// that keeps failover from reshuffling the whole facility.
func TestRingMinimalMovement(t *testing.T) {
	r := NewRing(0)
	for _, m := range []string{"w1", "w2", "w3", "w4"} {
		r.Add(m)
	}
	const keys = 10_000
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Owner(fmt.Sprintf("loop-%d", i))
	}
	r.Remove("w2")
	for i := range before {
		after := r.Owner(fmt.Sprintf("loop-%d", i))
		if before[i] != "w2" && after != before[i] {
			t.Fatalf("key loop-%d moved %s -> %s though its owner survived", i, before[i], after)
		}
		if after == "w2" {
			t.Fatalf("key loop-%d still owned by removed member", i)
		}
	}
}

// TestRingEmpty checks the empty ring yields no owner (specs stay pending).
func TestRingEmpty(t *testing.T) {
	r := NewRing(0)
	if got := r.Owner("anything"); got != "" {
		t.Fatalf("empty ring Owner = %q, want empty", got)
	}
	r.Add("w1")
	r.Remove("w1")
	if got := r.Owner("anything"); got != "" {
		t.Fatalf("drained ring Owner = %q, want empty", got)
	}
}
