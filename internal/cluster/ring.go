package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash placement ring: members project `replicas`
// virtual points onto a 64-bit circle and a key is owned by the first point
// clockwise of its hash. Adding or removing a member therefore moves only
// the keys in the arcs it gains or loses — the property that keeps failover
// from reshuffling the whole facility. Hashing is FNV-64a, deterministic
// across processes and runs, so every node that sees the same membership
// computes the same placement. Ring is not goroutine-safe; the Coordinator
// guards it with its own mutex.
type Ring struct {
	replicas int
	members  map[string]bool
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member string
}

// DefaultReplicas is the virtual-point count per member; 128 keeps the
// max/min load ratio under ~1.25 at realistic member counts.
const DefaultReplicas = 128

// NewRing returns an empty ring; replicas <= 0 selects DefaultReplicas.
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, members: make(map[string]bool)}
}

// ringHash hashes a key or virtual point onto the circle: FNV-64a for the
// byte mixing, then a 64-bit avalanche finalizer (the murmur3 fmix64
// constants). Raw FNV clusters badly on short keys differing in one
// character — loop names like "g0".."g8" all land in one arc — because its
// multiply only propagates entropy upward; the finalizer spreads every input
// bit across the word.
func ringHash(s string) uint64 {
	f := fnv.New64a()
	_, _ = f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Add inserts a member (idempotent).
func (r *Ring) Add(member string) {
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{
			hash:   ringHash(member + "#" + strconv.Itoa(i)),
			member: member,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member and its points (idempotent).
func (r *Ring) Remove(member string) {
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	keep := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			keep = append(keep, p)
		}
	}
	r.points = keep
}

// Len reports the member count.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the members in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Owner returns the member owning key, or "" on an empty ring. Loop groups
// hash by group name; a worker's telemetry series follow its loops (each
// worker stores what its slice of the facility emits), so group ownership is
// series ownership.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point owns the arc past the largest hash
	}
	return r.points[i].member
}
