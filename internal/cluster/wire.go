// Package cluster distributes the control plane over the wire: one
// coordinator process places LoopSpecs across N worker processes, each
// running its own simulation slice, telemetry store, and fleet — the
// facility-wide deployment shape of site-scale ODA stacks (DCDB Wintermute,
// LRZ's production ODA), where collection and analysis run on many daemons
// and a central service decides placement.
//
// The pieces:
//
//   - Ring: a consistent-hash placement ring assigning loop groups (and,
//     through them, the telemetry series their subjects emit) to workers,
//     so membership changes move only the affected keys.
//   - Directory: the member table — worker registration, periodic
//     heartbeats, and lease expiry.
//   - Coordinator: the placement brain. It owns the ring, the directory,
//     the spec table, cross-node arbitration, and the scatter-gather query
//     layer, and journals every placement event to an optional WAL ledger
//     so a restart rebuilds its table.
//   - Agent: the worker side. It dials the coordinator over the existing
//     bus/TCP bridge, registers, heartbeats, spawns assigned specs into its
//     local control.Service, and answers fanned-out queries.
//
// Everything crosses the wire as ordinary bus envelopes under the
// control.v1 version prefix ("control.v1.cluster.*"); the vocabulary is
// additive-only, like the rest of control.v1. Topics are split into two
// disjoint direction prefixes — "control.v1.cluster.w.*" worker→coordinator
// and "control.v1.cluster.c.*" coordinator→worker — so each side can bridge
// its own direction without echo loops, and every payload names its worker
// so broadcast fan-out still addresses one member.
package cluster

import (
	"encoding/json"
	"fmt"

	"autoloop/internal/bus"
	"autoloop/internal/control"
	"autoloop/internal/fleet"
	"autoloop/internal/tsdb"
)

// Cluster wire topics. Worker→coordinator traffic lives under the "w."
// prefix, coordinator→worker traffic under "c."; the two patterns are the
// export patterns each side's bridge uses (see WorkerExportPattern and
// CoordExportPattern).
const (
	// TopicHello announces a worker joining (Hello payload).
	TopicHello = "control.v1.cluster.w.hello"
	// TopicHeartbeat renews a worker's lease (Heartbeat payload).
	TopicHeartbeat = "control.v1.cluster.w.hb"
	// TopicAck answers an assignment or revocation (Ack payload).
	TopicAck = "control.v1.cluster.w.ack"
	// TopicDigest submits one round's surviving action digests for
	// cross-node arbitration (Digest payload).
	TopicDigest = "control.v1.cluster.w.digest"
	// TopicReply answers a fanned-out request (FanReply payload).
	TopicReply = "control.v1.cluster.w.reply"

	// TopicAssign places one LoopSpec on a worker (Assign payload).
	TopicAssign = "control.v1.cluster.c.assign"
	// TopicRevoke removes a placed group from a worker (Revoke payload).
	TopicRevoke = "control.v1.cluster.c.revoke"
	// TopicVerdict answers a digest with the deny mask (Verdict payload).
	TopicVerdict = "control.v1.cluster.c.verdict"
	// TopicFanout carries one scattered request to a worker (Fanout
	// payload).
	TopicFanout = "control.v1.cluster.c.fanout"
)

// WorkerExportPattern is the bus pattern a worker's bridge client exports to
// its coordinator; CoordExportPattern is the pattern the coordinator's
// cluster-facing bus server exports to its workers. The two are disjoint by
// construction, so an envelope can never echo back through the bridge.
const (
	WorkerExportPattern = "control.v1.cluster.w.*"
	CoordExportPattern  = "control.v1.cluster.c.*"
)

// Hello announces a worker joining (or rejoining) the cluster.
type Hello struct {
	Worker string `json:"worker"`
	// Groups lists the loop groups the worker already holds — empty on a
	// fresh start, populated when a worker reconnects after a coordinator
	// restart so placements can be reconciled instead of re-spawned.
	Groups []string `json:"groups,omitempty"`
}

// Heartbeat renews a worker's lease and reports its load.
type Heartbeat struct {
	Worker  string `json:"worker"`
	Seq     uint64 `json:"seq"`
	Groups  int    `json:"groups"`
	Series  int    `json:"series,omitempty"`
	Samples uint64 `json:"samples,omitempty"`
	Rounds  int    `json:"rounds,omitempty"`
}

// Assign places one spec on one worker. ID correlates the worker's Ack.
type Assign struct {
	Worker string           `json:"worker"`
	ID     string           `json:"id"`
	Group  string           `json:"group"`
	Spec   control.LoopSpec `json:"spec"`
}

// Revoke removes one placed group from a worker (rebalance or operator
// remove). ID correlates the worker's Ack.
type Revoke struct {
	Worker string `json:"worker"`
	ID     string `json:"id"`
	Group  string `json:"group"`
}

// Ack answers one Assign or Revoke.
type Ack struct {
	Worker string `json:"worker"`
	ID     string `json:"id"`
	Group  string `json:"group"`
	OK     bool   `json:"ok"`
	Error  string `json:"error,omitempty"`
	// Loops lists the loop names the assignment spawned (a multi-loop case
	// reports every member), so the coordinator can route loop-addressed
	// ops without guessing naming conventions.
	Loops []string `json:"loops,omitempty"`
}

// Digest submits the actions of one worker fleet round that survived local
// arbitration. Seq correlates the coordinator's Verdict; the coordinator
// answers every digest, even when nothing is denied.
type Digest struct {
	Worker  string               `json:"worker"`
	Seq     uint64               `json:"seq"`
	Actions []fleet.ActionDigest `json:"actions"`
	// Backfill marks a digest re-delivered from a worker's degraded-mode
	// buffer after the link healed. The actions it describes already ran
	// under the worker's local fail-open arbitration; the coordinator
	// records them for observability but owes no verdict.
	Backfill bool `json:"backfill,omitempty"`
}

// Verdict answers one Digest: Deny[i] suppresses Actions[i] on the worker,
// exactly like a local arbitration loss.
type Verdict struct {
	Worker string `json:"worker"`
	Seq    uint64 `json:"seq"`
	Deny   []bool `json:"deny,omitempty"`
	// Reasons annotates denied indices ("" for allowed ones).
	Reasons []string `json:"reasons,omitempty"`
}

// Fanout carries one scattered request to one worker. Exactly one of the
// request fields is set: Control for control.v1 ops, Query for tsdb
// queries, Approve/Deny verdicts travel as Control ops via Verdicts.
type Fanout struct {
	Worker string `json:"worker"`
	ID     string `json:"id"`
	// Control is a control.v1 request executed against the worker's local
	// control.Service.
	Control *control.Request `json:"control,omitempty"`
	// Query is a tsdb query answered from the worker's local store.
	Query *tsdb.QueryRequest `json:"query,omitempty"`
	// ApproveVerdict / DenyVerdict settle a pending approval on the worker
	// owning it (per-worker sequence numbers; the Loop field cross-checks).
	ApproveVerdict *control.Verdict `json:"approve,omitempty"`
	DenyVerdict    *control.Verdict `json:"deny,omitempty"`
}

// FanReply answers one Fanout.
type FanReply struct {
	Worker  string              `json:"worker"`
	ID      string              `json:"id"`
	Control *control.Reply      `json:"control,omitempty"`
	Query   *tsdb.QueryResponse `json:"query,omitempty"`
	Err     string              `json:"err,omitempty"`
}

// DecodeEnvelope decodes one cluster wire envelope into its typed payload
// (one of the structs above, returned as interface{}), dispatching on the
// topic. Envelopes on non-cluster topics return (nil, nil); malformed
// payloads return an error, never a panic — the fuzz target for the cluster
// vocabulary drives this entry point.
func DecodeEnvelope(env bus.Envelope) (interface{}, error) {
	decode := func(out interface{}) (interface{}, error) {
		if err := bus.DecodePayload(env, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	switch env.Topic {
	case TopicHello:
		return decode(&Hello{})
	case TopicHeartbeat:
		return decode(&Heartbeat{})
	case TopicAck:
		return decode(&Ack{})
	case TopicDigest:
		return decode(&Digest{})
	case TopicReply:
		return decode(&FanReply{})
	case TopicAssign:
		return decode(&Assign{})
	case TopicRevoke:
		return decode(&Revoke{})
	case TopicVerdict:
		return decode(&Verdict{})
	case TopicFanout:
		return decode(&Fanout{})
	}
	return nil, nil
}

// DecodeLine decodes one raw wire line (as read off the TCP bridge) into its
// envelope and typed cluster payload. It is DecodeEnvelope over bus.Decode.
func DecodeLine(line []byte) (bus.Envelope, interface{}, error) {
	env, err := bus.Decode(line)
	if err != nil {
		return bus.Envelope{}, nil, err
	}
	payload, err := DecodeEnvelope(env)
	return env, payload, err
}

// mustJSON marshals v for ledger records; cluster wire types always marshal.
func mustJSON(v interface{}) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("cluster: marshal %T: %v", v, err))
	}
	return data
}
