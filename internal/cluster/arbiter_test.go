package cluster

import (
	"strings"
	"testing"
	"time"

	"autoloop/internal/fleet"
)

func digest(worker string, seq uint64, actions ...fleet.ActionDigest) Digest {
	return Digest{Worker: worker, Seq: seq, Actions: actions}
}

func TestArbiterCrossNodeConflict(t *testing.T) {
	a := NewArbiter(2 * time.Second)
	now := time.Unix(50, 0)

	// w1's power-cap on the plant wins the grant.
	v := a.Decide(digest("w1", 1, fleet.ActionDigest{
		Loop: "power", Kind: "cap.power", Subject: "plant", Priority: 5,
	}), now)
	if len(v.Deny) != 1 || v.Deny[0] {
		t.Fatalf("first grant denied: %+v", v)
	}

	// w2's contradicting raise on the same subject, lower priority, inside
	// the window: denied with the holder named.
	v = a.Decide(digest("w2", 1, fleet.ActionDigest{
		Loop: "boost", Kind: "raise.power", Subject: "plant", Priority: 3,
	}), now.Add(time.Second))
	if !v.Deny[0] {
		t.Fatal("conflicting lower-priority action was not denied")
	}
	if !strings.Contains(v.Reasons[0], "w1") {
		t.Fatalf("denial reason does not name the holder: %q", v.Reasons[0])
	}
	if a.Denied() != 1 {
		t.Fatalf("Denied = %d, want 1", a.Denied())
	}

	// A higher-priority contradiction takes the grant over.
	v = a.Decide(digest("w3", 1, fleet.ActionDigest{
		Loop: "urgent", Kind: "raise.power", Subject: "plant", Priority: 9,
	}), now.Add(time.Second))
	if v.Deny[0] {
		t.Fatal("higher-priority action was denied")
	}

	// Past the window the grant lapses and anyone may act.
	v = a.Decide(digest("w1", 2, fleet.ActionDigest{
		Loop: "power", Kind: "cap.power", Subject: "plant", Priority: 1,
	}), now.Add(10*time.Second))
	if v.Deny[0] {
		t.Fatal("action denied after the grant window lapsed")
	}
}

func TestArbiterSameWorkerAndSameKindAllowed(t *testing.T) {
	a := NewArbiter(2 * time.Second)
	now := time.Unix(0, 0)
	a.Decide(digest("w1", 1, fleet.ActionDigest{
		Loop: "l1", Kind: "cap.power", Subject: "plant", Priority: 5,
	}), now)

	// Same worker, contradicting kind: its local arbiter already ruled.
	v := a.Decide(digest("w1", 2, fleet.ActionDigest{
		Loop: "l2", Kind: "raise.power", Subject: "plant", Priority: 1,
	}), now)
	if v.Deny[0] {
		t.Fatal("same-worker action denied by the cross-node arbiter")
	}

	// Different worker, same kind: redundancy, not contradiction.
	v = a.Decide(digest("w2", 1, fleet.ActionDigest{
		Loop: "l3", Kind: "raise.power", Subject: "plant", Priority: 1,
	}), now)
	if v.Deny[0] {
		t.Fatal("same-kind action denied by the cross-node arbiter")
	}
}

func TestArbiterKindRankBeatsPriority(t *testing.T) {
	a := NewArbiter(2*time.Second).RankKind("emergency.cap", 10)
	now := time.Unix(0, 0)
	a.Decide(digest("w1", 1, fleet.ActionDigest{
		Loop: "opt", Kind: "raise.power", Subject: "plant", Priority: 100,
	}), now)
	v := a.Decide(digest("w2", 1, fleet.ActionDigest{
		Loop: "safety", Kind: "emergency.cap", Subject: "plant", Priority: 1,
	}), now)
	if v.Deny[0] {
		t.Fatal("ranked kind lost to an unranked high-priority action")
	}
	// And the reverse contradiction is now denied.
	v = a.Decide(digest("w1", 2, fleet.ActionDigest{
		Loop: "opt", Kind: "raise.power", Subject: "plant", Priority: 100,
	}), now.Add(time.Second))
	if !v.Deny[0] {
		t.Fatal("unranked action beat a held ranked grant")
	}
}

func TestArbiterForgetDropsDeadWorkersGrants(t *testing.T) {
	a := NewArbiter(time.Hour) // a window long enough to otherwise block
	now := time.Unix(0, 0)
	a.Decide(digest("w1", 1, fleet.ActionDigest{
		Loop: "l", Kind: "cap.power", Subject: "plant", Priority: 5,
	}), now)
	a.Forget("w1")
	v := a.Decide(digest("w2", 1, fleet.ActionDigest{
		Loop: "l", Kind: "raise.power", Subject: "plant", Priority: 1,
	}), now.Add(time.Second))
	if v.Deny[0] {
		t.Fatal("dead worker's grant still held after Forget")
	}
}

func TestArbiterSubjectlessActionsIgnored(t *testing.T) {
	a := NewArbiter(time.Second)
	v := a.Decide(digest("w1", 1, fleet.ActionDigest{Loop: "l", Kind: "k"}), time.Unix(0, 0))
	if v.Deny[0] {
		t.Fatal("subjectless action denied")
	}
	if a.Denied() != 0 {
		t.Fatal("subjectless action counted as denied")
	}
}
