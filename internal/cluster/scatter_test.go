package cluster

import (
	"strings"
	"testing"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/control"
	"autoloop/internal/tsdb"
)

// TestScatterAllReply fans a request to two in-process responders and checks
// the gather returns both replies in worker order without waiting out the
// timeout.
func TestScatterAllReply(t *testing.T) {
	b := bus.New()
	s := newScatter(b, "test", 5*time.Second)
	cancel := b.Subscribe(TopicReply, s.handleReply)
	defer cancel()
	for _, id := range []string{"w1", "w2"} {
		id := id
		c := b.Subscribe(TopicFanout, func(env bus.Envelope) {
			var f Fanout
			if bus.DecodePayload(env, &f) != nil || f.Worker != id {
				return
			}
			b.Publish(bus.Envelope{Topic: TopicReply, Payload: FanReply{
				Worker: id, ID: f.ID, Control: &control.Reply{Op: "list", OK: true},
			}})
		})
		defer c()
	}

	start := time.Now()
	replies := s.Fan([]string{"w2", "w1"}, func(w, id string) Fanout {
		return Fanout{Worker: w, ID: id, Control: &control.Request{Op: "list"}}
	})
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("full gather waited %v despite all replies arriving", elapsed)
	}
	if len(replies) != 2 || replies[0].Worker != "w1" || replies[1].Worker != "w2" {
		t.Fatalf("replies = %+v, want w1 then w2", replies)
	}
	for _, r := range replies {
		if r.Err != "" || r.Control == nil || !r.Control.OK {
			t.Fatalf("reply = %+v", r)
		}
	}
}

// TestScatterTimeoutSynthesizesErrors checks a silent worker yields an Err
// entry rather than a missing row or a stall.
func TestScatterTimeoutSynthesizesErrors(t *testing.T) {
	b := bus.New()
	s := newScatter(b, "test", 100*time.Millisecond)
	cancel := b.Subscribe(TopicReply, s.handleReply)
	defer cancel()
	c := b.Subscribe(TopicFanout, func(env bus.Envelope) {
		var f Fanout
		if bus.DecodePayload(env, &f) != nil || f.Worker != "w1" {
			return // w2 never answers
		}
		b.Publish(bus.Envelope{Topic: TopicReply, Payload: FanReply{
			Worker: "w1", ID: f.ID, Control: &control.Reply{Op: "list", OK: true},
		}})
	})
	defer c()

	replies := s.Fan([]string{"w1", "w2"}, func(w, id string) Fanout {
		return Fanout{Worker: w, ID: id, Control: &control.Request{Op: "list"}}
	})
	if len(replies) != 2 {
		t.Fatalf("got %d replies, want 2", len(replies))
	}
	if replies[0].Worker != "w1" || replies[0].Err != "" {
		t.Fatalf("w1 reply = %+v", replies[0])
	}
	if replies[1].Worker != "w2" || replies[1].Err == "" {
		t.Fatalf("w2 reply should carry a timeout error: %+v", replies[1])
	}
	if s.timeous.Load() != 1 {
		t.Fatalf("timeouts = %d, want 1", s.timeous.Load())
	}
}

// TestMergeQuery merges two worker responses and one failure into a single
// deterministic response with the gap reported.
func TestMergeQuery(t *testing.T) {
	resp := MergeQuery("q1", []FanReply{
		{Worker: "w1", Query: &tsdb.QueryResponse{Series: []tsdb.WireSeries{
			{Metric: "node.temp", Labels: map[string]string{"node": "w1"}},
			{Metric: "app.rate", Labels: map[string]string{"node": "w1"}},
		}}},
		{Worker: "w2", Query: &tsdb.QueryResponse{Series: []tsdb.WireSeries{
			{Metric: "node.temp", Labels: map[string]string{"node": "w2"}},
		}}},
		{Worker: "w3", Err: "no reply within 2s"},
	})
	if resp.ID != "q1" {
		t.Fatalf("ID = %q", resp.ID)
	}
	if len(resp.Series) != 3 {
		t.Fatalf("merged %d series, want 3", len(resp.Series))
	}
	// Sorted by metric then label fingerprint.
	if resp.Series[0].Metric != "app.rate" ||
		resp.Series[1].Labels["node"] != "w1" || resp.Series[2].Labels["node"] != "w2" {
		t.Fatalf("merge order wrong: %+v", resp.Series)
	}
	if !strings.Contains(resp.Err, "w3") {
		t.Fatalf("missing worker not reported: %q", resp.Err)
	}
}

// TestMergeControlLists checks partial coverage stays OK with the gap named,
// and total failure flips OK off.
func TestMergeControlLists(t *testing.T) {
	merged := mergeControlLists(control.OpList, "r1", []FanReply{
		{Worker: "w2", Control: &control.Reply{OK: true, Loops: []control.LoopStatus{
			{Name: "b", Group: "b"},
		}}},
		{Worker: "w1", Control: &control.Reply{OK: true, Loops: []control.LoopStatus{
			{Name: "a", Group: "a"},
		}}},
		{Worker: "w3", Err: "timeout"},
	})
	if !merged.OK {
		t.Fatalf("partial coverage should stay OK: %+v", merged)
	}
	if len(merged.Loops) != 2 || merged.Loops[0].Name != "a" || merged.Loops[0].Worker != "w1" {
		t.Fatalf("merged loops = %+v", merged.Loops)
	}
	if !strings.Contains(merged.Error, "w3") {
		t.Fatalf("gap not named: %q", merged.Error)
	}

	dead := mergeControlLists(control.OpList, "r2", []FanReply{
		{Worker: "w1", Err: "timeout"},
		{Worker: "w2", Err: "timeout"},
	})
	if dead.OK {
		t.Fatalf("all-failed merge should not be OK: %+v", dead)
	}
}
