package cluster

import (
	"fmt"
	"io"
	"testing"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/control"
	"autoloop/internal/wal"
)

// TestCoordinatorLedgerRestart restarts a coordinator from its placement
// ledger: the spec table and last known owners come back from the WAL, the
// still-running worker re-Hellos, and every placement reconciles to placed
// without a single re-spawn on the worker.
func TestCoordinatorLedgerRestart(t *testing.T) {
	ledger, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatalf("open ledger: %v", err)
	}
	defer ledger.Close()

	tc := newTestCluster(t, Options{Lease: 2 * time.Second, Ledger: ledger})
	// HelloEvery 2 keeps re-announcement fast, so the restarted coordinator
	// re-learns the worker quickly.
	w := newTestWorker(t, tc.addr, "w1", AgentOptions{HelloEvery: 2})

	const groups = 3
	for i := 0; i < groups; i++ {
		if _, err := tc.coord.AddSpec(control.LoopSpec{Case: "script", Name: fmt.Sprintf("g%d", i)}); err != nil {
			t.Fatalf("AddSpec: %v", err)
		}
	}
	waitFor(t, 5*time.Second, "all specs placed", func() bool {
		return placedCount(tc.coord) == groups
	})
	spawnedBefore := len(w.agent.Held())

	// "Restart": the old coordinator detaches, a new one replays the ledger
	// on the same bus (the bridge server and worker connection survive, as
	// they would across a fast coordinator process restart on one host).
	tc.coord.Close()
	if err := ledger.Sync(); err != nil {
		t.Fatalf("sync ledger: %v", err)
	}
	coord2 := NewCoordinator(tc.b, Options{Lease: 2 * time.Second, Ledger: ledger})
	t.Cleanup(coord2.Close)
	r, err := ledger.Replay(0)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("replay next: %v", err)
		}
		if rec.Kind != wal.KindClusterEvent {
			continue
		}
		if err := coord2.ApplyWAL(rec.Payload); err != nil {
			t.Fatalf("ApplyWAL: %v", err)
		}
	}
	r.Close()
	coord2.RestoreDone()

	// The table is back immediately (state degraded until the hello).
	if got := len(coord2.Placements()); got != groups {
		t.Fatalf("restored %d placements, want %d", got, groups)
	}

	// The worker's periodic hello reconciles everything back to placed.
	waitFor(t, 5*time.Second, "placements reconciled", func() bool {
		coord2.Tick(time.Now())
		return placedCount(coord2) == groups && len(coord2.Directory().Alive()) == 1
	})
	// No re-spawn happened: the worker holds exactly what it held before.
	if got := len(w.agent.Held()); got != spawnedBefore {
		t.Fatalf("worker holds %d groups after restart, held %d before", got, spawnedBefore)
	}
}

// TestApplyWALRejectsGarbage checks ledger replay surfaces corruption
// instead of silently building a wrong placement table.
func TestApplyWALRejectsGarbage(t *testing.T) {
	c := NewCoordinator(bus.New(), Options{})
	defer c.Close()
	if err := c.ApplyWAL([]byte("not json")); err == nil {
		t.Fatal("malformed ledger payload accepted")
	}
	if err := c.ApplyWAL([]byte(`{"op":"warp","group":"g"}`)); err == nil {
		t.Fatal("unknown ledger op accepted")
	}
	if err := c.ApplyWAL([]byte(`{"op":"spec","group":"g"}`)); err == nil {
		t.Fatal("spec event without a spec accepted")
	}
	// A valid sequence builds the table.
	for _, payload := range []string{
		`{"op":"spec","group":"g","spec":{"case":"script","name":"g"}}`,
		`{"op":"assign","group":"g","worker":"w1"}`,
		`{"op":"placed","group":"g","worker":"w1"}`,
	} {
		if err := c.ApplyWAL([]byte(payload)); err != nil {
			t.Fatalf("ApplyWAL(%s): %v", payload, err)
		}
	}
	ps := c.Placements()
	if len(ps) != 1 || ps[0].Worker != "w1" || ps[0].State != placePlaced {
		t.Fatalf("replayed placements = %+v", ps)
	}
	// An expire event releases the dead worker's groups.
	if err := c.ApplyWAL([]byte(`{"op":"expire","worker":"w1"}`)); err != nil {
		t.Fatalf("expire: %v", err)
	}
	ps = c.Placements()
	if ps[0].Worker != "" || ps[0].State != placePending {
		t.Fatalf("placements after expire = %+v", ps)
	}
}
