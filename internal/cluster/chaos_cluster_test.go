package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"autoloop/internal/chaos"
	"autoloop/internal/control"
	"autoloop/internal/wal"
)

// TestChaosCluster is the resilience capstone: a coordinator and three
// workers bridged through seeded chaos proxies, driven through a fixed
// fault schedule — sustained frame loss with duplication on one link, a
// storage-fault burst on the placement ledger, and a full partition of one
// worker held past the lease grace window — asserting the cluster keeps
// every invariant the README's failure-mode matrix promises: lossy links
// do not evict members, duplicated frames do not double-spawn, ledger
// faults are counted not fatal, a partitioned worker degrades to
// standalone ticking and journals its digests, and after the heal the
// placement table reconverges (each group held by exactly one alive
// worker) within a bounded window, with the buffered digests backfilled.
//
// The schedule is deterministic for a fixed seed: every drop/dup/partition
// decision comes from the per-link seeded injectors, so a failure here
// replays exactly under the same seed. CI runs this under -race as the
// chaos-smoke gate.
func TestChaosCluster(t *testing.T) {
	const seed = 42

	// The placement ledger runs over the fault-injecting filesystem, with
	// per-append syncs so storage faults surface on the append path.
	fsys := chaos.NewFS()
	ledger, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncAlways, FS: fsys})
	if err != nil {
		t.Fatalf("open ledger: %v", err)
	}
	defer ledger.Close()

	const lease = 600 * time.Millisecond
	tc := newTestCluster(t, Options{Lease: lease, Grace: lease, Ledger: ledger})

	ids := []string{"w1", "w2", "w3"}
	injs := make(map[string]*chaos.Injector, len(ids))
	workers := make(map[string]*testWorker, len(ids))
	for i, id := range ids {
		inj := chaos.NewInjector(seed + int64(i))
		proxy, err := chaos.NewProxy("127.0.0.1:0", tc.addr, inj)
		if err != nil {
			t.Fatalf("proxy for %s: %v", id, err)
		}
		t.Cleanup(func() { proxy.Close() })
		injs[id] = inj
		workers[id] = newTestWorker(t, proxy.Addr(), id, AgentOptions{
			ArbTimeout:   50 * time.Millisecond,
			DegradeAfter: 2,
		})
	}
	waitFor(t, 5*time.Second, "3 alive members", func() bool {
		return len(tc.coord.Directory().Alive()) == 3
	})

	addSpec := func(name string) {
		t.Helper()
		cfg := fmt.Sprintf(`{"kind":"act","subject":"%s"}`, name)
		spec := control.LoopSpec{Case: "script", Name: name, Config: []byte(cfg)}
		if _, err := tc.coord.AddSpec(spec); err != nil {
			t.Fatalf("AddSpec %s: %v", name, err)
		}
	}
	groups := 0
	for i := 0; i < 6; i++ {
		addSpec(fmt.Sprintf("g%d", i))
		groups++
	}
	waitFor(t, 5*time.Second, "initial placement", func() bool {
		return placedCount(tc.coord) == groups
	})

	// Background tickers keep every worker's loops running through all
	// fault phases — a partitioned worker's rounds are what exercise the
	// arbitration timeouts and the degraded-mode digest buffer.
	stopTicks := make(chan struct{})
	var tickers sync.WaitGroup
	for _, w := range workers {
		tickers.Add(1)
		go func(w *testWorker) {
			defer tickers.Done()
			for {
				select {
				case <-stopTicks:
					return
				case <-time.After(30 * time.Millisecond):
					w.tick()
				}
			}
		}(w)
	}
	defer tickers.Wait()
	defer close(stopTicks)

	// Phase 1 — lossy link: 30% frame loss plus duplication on w2. A lossy
	// link is "worker slow", not "worker dead": heartbeats outnumber the
	// loss, so w2 must ride out the whole phase without a lease expiry,
	// and placement of new specs must still converge (assign re-sends
	// cover the dropped frames; idempotent assigns absorb the duplicates).
	injs["w2"].Arm(chaos.Faults{DropRate: 0.3, DupRate: 0.2})
	for i := 6; i < 8; i++ {
		addSpec(fmt.Sprintf("g%d", i))
		groups++
	}
	waitFor(t, 10*time.Second, "placement through a lossy link", func() bool {
		return placedCount(tc.coord) == groups
	})
	lossWindow := time.Now().Add(3 * lease)
	for time.Now().Before(lossWindow) {
		if !tc.coord.Directory().IsAlive("w2") {
			t.Fatal("30% frame loss evicted w2: loss must not look like death")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if s := tc.coord.Stats(); s.Failovers != 0 {
		t.Fatalf("lossy link caused %d failovers, want 0", s.Failovers)
	}
	if dropped, _, _, _ := injs["w2"].Counters(); dropped == 0 {
		t.Fatal("loss phase dropped no frames — the schedule never fired")
	}
	injs["w2"].Disarm()

	// Phase 2 — storage-fault burst on the placement ledger: two ENOSPC
	// write faults. The faults are typed retryable, so the coordinator
	// counts them and keeps placing; the buffered records commit on the
	// next clean append — no placement event is silently lost.
	fsys.Arm(chaos.FSFaults{FailWrites: 2})
	addSpec("g-burst")
	groups++
	waitFor(t, 5*time.Second, "placement during the ledger fault burst", func() bool {
		return placedCount(tc.coord) == groups
	})
	waitFor(t, 5*time.Second, "ledger faults counted", func() bool {
		return tc.coord.Stats().LedgerFaults > 0
	})
	fsys.Disarm()
	if m := ledger.Metrics(); m.StorageFaults == 0 || m.WriteRetries == 0 {
		t.Fatalf("ledger WAL metrics = %+v, want storage faults and retries", m)
	}

	// Phase 3 — full partition of w1, held past lease+grace. The
	// coordinator walks w1 through suspect to expired and fails its groups
	// over to the survivors; w1, unable to arbitrate, drops into degraded
	// standalone mode and journals its round digests locally.
	injs["w1"].Arm(chaos.Faults{PartitionToTarget: true, PartitionFromTarget: true})
	waitFor(t, 10*time.Second, "w1 degraded", func() bool {
		return workers["w1"].agent.Degraded()
	})
	waitFor(t, 10*time.Second, "failover off the partitioned worker", func() bool {
		if tc.coord.Directory().IsAlive("w1") || placedCount(tc.coord) != groups {
			return false
		}
		for _, p := range tc.coord.Placements() {
			if p.Worker == "w1" {
				return false
			}
		}
		return true
	})
	if s := tc.coord.Stats(); s.SuspectEvents == 0 {
		t.Fatal("partition skipped the suspect tier: slow/dead distinction lost")
	}
	waitFor(t, 10*time.Second, "degraded worker journaling digests", func() bool {
		return workers["w1"].agent.Metrics().DigestsBuffered > 0
	})

	// Phase 4 — heal, then bounded reconvergence: within 15 seconds w1
	// must rejoin (re-Hello over the healed link), leave degraded mode,
	// backfill its buffered digests, and the placement table must settle
	// with every group placed on exactly one alive worker.
	healed := time.Now()
	injs["w1"].Disarm()
	waitFor(t, 15*time.Second, "post-heal convergence", func() bool {
		if !tc.coord.Directory().IsAlive("w1") || workers["w1"].agent.Degraded() {
			return false
		}
		if placedCount(tc.coord) != groups {
			return false
		}
		owners := make(map[string]string, groups)
		for _, p := range tc.coord.Placements() {
			if p.Worker == "" || !tc.coord.Directory().IsAlive(p.Worker) {
				return false
			}
			owners[p.Group] = p.Worker
		}
		// The workers' held sets must be disjoint and exactly cover the
		// placement table — no group executing on two nodes, none orphaned.
		held := 0
		for id, w := range workers {
			for _, g := range w.agent.Held() {
				held++
				if owners[g] != id {
					return false
				}
			}
		}
		return held == groups
	})
	if took := time.Since(healed); took > 15*time.Second {
		t.Fatalf("reconvergence took %v, want <= 15s of the heal", took)
	}
	waitFor(t, 5*time.Second, "digest backfill recorded", func() bool {
		return tc.coord.Stats().DigestsBackfilled > 0
	})
	if m := workers["w1"].agent.Metrics(); m.DegradedEntries == 0 || m.DigestsBackfilled == 0 {
		t.Fatalf("w1 agent metrics = %+v, want degraded entry and backfill", m)
	}

	// The whole run executed real actions on every worker; the no-dup
	// invariant is structural (disjoint held sets above), but make sure the
	// cluster was actually doing work, not vacuously converging.
	for id, w := range workers {
		if len(w.executedActions()) == 0 {
			t.Fatalf("worker %s executed nothing through the chaos run", id)
		}
	}
}
