package cluster

import (
	"testing"
	"time"
)

func TestDirectoryLeaseLifecycle(t *testing.T) {
	d := NewDirectory(5 * time.Second)
	t0 := time.Unix(100, 0)

	if !d.Hello("w1", t0) {
		t.Fatal("first Hello should report a fresh member")
	}
	if d.Hello("w1", t0.Add(time.Second)) {
		t.Fatal("repeat Hello of an alive member should not report fresh")
	}
	if !d.Beat(Heartbeat{Worker: "w1", Seq: 1}, t0.Add(2*time.Second)) {
		t.Fatal("Beat of an alive member should succeed")
	}
	if d.Beat(Heartbeat{Worker: "ghost"}, t0) {
		t.Fatal("Beat of an unknown member should fail")
	}

	// Within the lease nothing expires.
	if expired := d.Sweep(t0.Add(6 * time.Second)); len(expired) != 0 {
		t.Fatalf("Sweep expired %v inside the lease window", expired)
	}
	// Past the lease the member expires, exactly once.
	expired := d.Sweep(t0.Add(8 * time.Second))
	if len(expired) != 1 || expired[0] != "w1" {
		t.Fatalf("Sweep = %v, want [w1]", expired)
	}
	if expired := d.Sweep(t0.Add(9 * time.Second)); len(expired) != 0 {
		t.Fatalf("second Sweep re-expired %v", expired)
	}
	if d.IsAlive("w1") {
		t.Fatal("expired member reported alive")
	}
	// Heartbeats from the dead are not resurrections.
	if d.Beat(Heartbeat{Worker: "w1", Seq: 9}, t0.Add(9*time.Second)) {
		t.Fatal("Beat of an expired member should fail")
	}
	// A re-Hello revives it and reports fresh (ring re-add).
	if !d.Hello("w1", t0.Add(10*time.Second)) {
		t.Fatal("re-Hello of an expired member should report fresh")
	}
	if !d.IsAlive("w1") {
		t.Fatal("revived member not alive")
	}
}

func TestDirectoryAliveSorted(t *testing.T) {
	d := NewDirectory(0)
	now := time.Unix(0, 0)
	for _, id := range []string{"w3", "w1", "w2"} {
		d.Hello(id, now)
	}
	got := d.Alive()
	want := []string{"w1", "w2", "w3"}
	if len(got) != len(want) {
		t.Fatalf("Alive = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Alive = %v, want %v", got, want)
		}
	}
}
