package cluster

import (
	"testing"
	"time"
)

func TestDirectoryLeaseLifecycle(t *testing.T) {
	d := NewDirectory(5*time.Second, 3*time.Second)
	t0 := time.Unix(100, 0)

	if !d.Hello("w1", t0) {
		t.Fatal("first Hello should report a fresh member")
	}
	if d.Hello("w1", t0.Add(time.Second)) {
		t.Fatal("repeat Hello of an alive member should not report fresh")
	}
	if !d.Beat(Heartbeat{Worker: "w1", Seq: 1}, t0.Add(2*time.Second)) {
		t.Fatal("Beat of an alive member should succeed")
	}
	if d.Beat(Heartbeat{Worker: "ghost"}, t0) {
		t.Fatal("Beat of an unknown member should fail")
	}

	// Within the lease nothing happens. Last beat was at +2s, TTL 5s.
	if sus, exp := d.Sweep(t0.Add(6 * time.Second)); len(sus) != 0 || len(exp) != 0 {
		t.Fatalf("Sweep inside the lease window moved tiers: suspect=%v expired=%v", sus, exp)
	}
	// Past the lease the member turns suspect — once — and keeps its ring
	// position ("worker slow", not "worker dead").
	sus, exp := d.Sweep(t0.Add(8 * time.Second))
	if len(sus) != 1 || sus[0] != "w1" || len(exp) != 0 {
		t.Fatalf("Sweep past TTL = suspect %v expired %v, want suspect [w1]", sus, exp)
	}
	if !d.IsAlive("w1") {
		t.Fatal("suspect member must keep its membership")
	}
	if sus, exp := d.Sweep(t0.Add(9 * time.Second)); len(sus) != 0 || len(exp) != 0 {
		t.Fatalf("second Sweep re-reported: suspect=%v expired=%v", sus, exp)
	}
	// Past TTL+grace (2s + 5s + 3s) the suspect expires, exactly once.
	if sus, exp := d.Sweep(t0.Add(11 * time.Second)); len(sus) != 0 || len(exp) != 1 || exp[0] != "w1" {
		t.Fatalf("Sweep past grace = suspect %v expired %v, want expired [w1]", sus, exp)
	}
	if d.IsAlive("w1") {
		t.Fatal("expired member reported alive")
	}
	// Heartbeats from the dead are not resurrections.
	if d.Beat(Heartbeat{Worker: "w1", Seq: 9}, t0.Add(11*time.Second)) {
		t.Fatal("Beat of an expired member should fail")
	}
	// A re-Hello revives it and reports fresh (ring re-add).
	if !d.Hello("w1", t0.Add(12*time.Second)) {
		t.Fatal("re-Hello of an expired member should report fresh")
	}
	if !d.IsAlive("w1") {
		t.Fatal("revived member not alive")
	}
}

// TestDirectoryBlipDoesNotReassign is the flapping regression: one missed
// beat pushes a worker into the suspect tier, and the next heartbeat —
// arriving within the grace window — re-acquires the lease with no
// re-Hello and no expiry. Since reassignment is driven only by the expired
// list, a 1-beat blip can never move loops.
func TestDirectoryBlipDoesNotReassign(t *testing.T) {
	d := NewDirectory(time.Second, time.Second)
	t0 := time.Unix(0, 0)
	d.Hello("w1", t0)
	d.Hello("w2", t0)

	// w1 misses one beat: sweep at +1.5s marks it suspect.
	d.Beat(Heartbeat{Worker: "w2", Seq: 1}, t0.Add(1200*time.Millisecond))
	sus, exp := d.Sweep(t0.Add(1500 * time.Millisecond))
	if len(sus) != 1 || sus[0] != "w1" || len(exp) != 0 {
		t.Fatalf("blip sweep = suspect %v expired %v, want suspect [w1] only", sus, exp)
	}

	// The delayed beat lands inside the grace window: plain Beat (no
	// Hello) must re-acquire the lease.
	if !d.Beat(Heartbeat{Worker: "w1", Seq: 2}, t0.Add(1800*time.Millisecond)) {
		t.Fatal("beat within grace window must re-acquire the lease without a re-Hello")
	}
	// No sweep from here on expires anyone — no reassignment trigger.
	// (Bounded at +2.1s: past that the members' fresh leases lapse again.)
	for ms := 1900; ms <= 2100; ms += 100 {
		if sus, exp := d.Sweep(t0.Add(time.Duration(ms) * time.Millisecond)); len(sus) != 0 || len(exp) != 0 {
			t.Fatalf("sweep at +%dms after recovery: suspect=%v expired=%v, want none", ms, sus, exp)
		}
	}
	if got := d.Alive(); len(got) != 2 {
		t.Fatalf("Alive after blip = %v, want both members", got)
	}
	// And a Hello was never needed: w1 is plain alive, not "fresh".
	if d.Hello("w1", t0.Add(3*time.Second)) {
		t.Fatal("recovered member re-Hello reported fresh — the blip churned membership")
	}
}

func TestDirectoryAliveSorted(t *testing.T) {
	d := NewDirectory(0, 0)
	now := time.Unix(0, 0)
	for _, id := range []string{"w3", "w1", "w2"} {
		d.Hello(id, now)
	}
	got := d.Alive()
	want := []string{"w1", "w2", "w3"}
	if len(got) != len(want) {
		t.Fatalf("Alive = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Alive = %v, want %v", got, want)
		}
	}
}
