package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/control"
	"autoloop/internal/fleet"
	"autoloop/internal/tsdb"
)

// Worker-side defaults.
const (
	// DefaultHeartbeat is the lease-renewal period; keep it well under the
	// coordinator's lease TTL.
	DefaultHeartbeat = 1 * time.Second
	// DefaultHelloEvery re-announces membership every N heartbeats, so a
	// restarted coordinator (empty directory) re-learns its workers within
	// N×heartbeat without any negative acknowledgement on the wire.
	DefaultHelloEvery = 5
	// DefaultArbTimeout bounds the digest/verdict round trip per fleet
	// round; on timeout the round proceeds un-arbitrated (fail open), so a
	// slow or absent coordinator degrades to single-node behavior instead
	// of stalling the loops.
	DefaultArbTimeout = 250 * time.Millisecond
)

// AgentOptions configures a worker Agent.
type AgentOptions struct {
	// ID names the worker; it must be unique in the cluster.
	ID string
	// Heartbeat is the lease-renewal period (default DefaultHeartbeat).
	Heartbeat time.Duration
	// HelloEvery re-Hellos every N heartbeats (default DefaultHelloEvery).
	HelloEvery int
	// ArbTimeout bounds the cross-node arbitration round trip (default
	// DefaultArbTimeout). Zero selects the default; negative disables the
	// digest hook entirely (rounds stay byte-identical to single-node).
	ArbTimeout time.Duration
	// Stats, when set, fills the telemetry fields of each heartbeat.
	Stats func() (series int, samples uint64, rounds int)
}

// Agent is the worker side of the cluster: it registers with the
// coordinator over the bus bridge, renews its lease, spawns assigned specs
// into the local control.Service, answers fanned-out control and tsdb
// requests, and submits fleet-round digests for cross-node arbitration.
type Agent struct {
	opts AgentOptions
	b    *bus.Bus
	ctl  *control.Service
	db   *tsdb.Service

	mu     sync.Mutex
	held   map[string][]string // group -> spawned loop names
	seq    uint64              // heartbeat sequence
	digSeq uint64              // digest sequence
	waits  map[uint64]chan Verdict

	cancels  []func()
	stop     chan struct{}
	stopOnce sync.Once
	done     sync.WaitGroup
}

// NewAgent attaches a worker agent to the local bus b, whose bridge client
// must export WorkerExportPattern to the coordinator (the caller dials; the
// agent only speaks topics). ctl serves assignments and fanned control ops;
// db, when non-nil, answers fanned tsdb queries. The agent installs the
// cross-node arbitration hook on ctl's fleet coordinator unless ArbTimeout
// is negative. Call Close to detach.
func NewAgent(b *bus.Bus, ctl *control.Service, db *tsdb.Service, opts AgentOptions) (*Agent, error) {
	if opts.ID == "" {
		return nil, fmt.Errorf("cluster: agent needs an ID")
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = DefaultHeartbeat
	}
	if opts.HelloEvery <= 0 {
		opts.HelloEvery = DefaultHelloEvery
	}
	if opts.ArbTimeout == 0 {
		opts.ArbTimeout = DefaultArbTimeout
	}
	a := &Agent{
		opts:  opts,
		b:     b,
		ctl:   ctl,
		db:    db,
		held:  make(map[string][]string),
		waits: make(map[uint64]chan Verdict),
		stop:  make(chan struct{}),
	}
	a.cancels = append(a.cancels,
		b.Subscribe(TopicAssign, a.handleAssign),
		b.Subscribe(TopicRevoke, a.handleRevoke),
		b.Subscribe(TopicFanout, a.handleFanout),
		b.Subscribe(TopicVerdict, a.handleVerdict),
	)
	if opts.ArbTimeout > 0 {
		ctl.Coordinator().SetExternalArbiter(a.arbitrate)
	}
	a.sendHello()
	a.done.Add(1)
	go a.heartbeatLoop()
	return a, nil
}

// Close stops the heartbeat loop and detaches the agent from the bus. The
// control service keeps running its loops; only cluster participation ends.
// Close is idempotent.
func (a *Agent) Close() {
	a.stopOnce.Do(func() {
		close(a.stop)
		a.done.Wait()
		for _, cancel := range a.cancels {
			cancel()
		}
		a.cancels = nil
		a.ctl.Coordinator().SetExternalArbiter(nil)
	})
}

// Held returns the groups the agent currently holds, sorted.
func (a *Agent) Held() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.held))
	for g := range a.held {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

func (a *Agent) publish(topic string, payload interface{}) {
	a.b.Publish(bus.Envelope{Topic: topic, Source: a.opts.ID, Payload: payload})
}

func (a *Agent) sendHello() {
	a.publish(TopicHello, Hello{Worker: a.opts.ID, Groups: a.Held()})
}

func (a *Agent) heartbeatLoop() {
	defer a.done.Done()
	t := time.NewTicker(a.opts.Heartbeat)
	defer t.Stop()
	beats := 0
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
		}
		beats++
		if beats%a.opts.HelloEvery == 0 {
			a.sendHello()
		}
		hb := Heartbeat{Worker: a.opts.ID}
		a.mu.Lock()
		a.seq++
		hb.Seq = a.seq
		hb.Groups = len(a.held)
		a.mu.Unlock()
		if a.opts.Stats != nil {
			hb.Series, hb.Samples, hb.Rounds = a.opts.Stats()
		}
		a.publish(TopicHeartbeat, hb)
	}
}

// handleAssign spawns one assigned spec. Assigns are idempotent: re-assigning
// a held group acks OK with the existing loop names (the coordinator re-sends
// unacked assigns, and a rebalance may re-affirm ownership).
func (a *Agent) handleAssign(env bus.Envelope) {
	var as Assign
	if err := bus.DecodePayload(env, &as); err != nil || as.Worker != a.opts.ID {
		return
	}
	ack := Ack{Worker: a.opts.ID, ID: as.ID, Group: as.Group}
	a.mu.Lock()
	loops, have := a.held[as.Group]
	a.mu.Unlock()
	if have {
		ack.OK = true
		ack.Loops = loops
		a.publish(TopicAck, ack)
		return
	}
	sp, err := a.ctl.Spawn(as.Spec)
	if err != nil {
		ack.Error = err.Error()
		a.publish(TopicAck, ack)
		return
	}
	for _, bl := range sp.Loops {
		ack.Loops = append(ack.Loops, bl.Loop.Name)
	}
	ack.OK = true
	a.mu.Lock()
	a.held[as.Group] = ack.Loops
	a.mu.Unlock()
	a.publish(TopicAck, ack)
}

// handleRevoke removes a held group (rebalance moved it, or the operator
// removed the spec).
func (a *Agent) handleRevoke(env bus.Envelope) {
	var rv Revoke
	if err := bus.DecodePayload(env, &rv); err != nil || rv.Worker != a.opts.ID {
		return
	}
	ack := Ack{Worker: a.opts.ID, ID: rv.ID, Group: rv.Group}
	a.mu.Lock()
	loops, have := a.held[rv.Group]
	delete(a.held, rv.Group)
	a.mu.Unlock()
	if !have {
		ack.OK = true // already gone; revokes are idempotent too
		a.publish(TopicAck, ack)
		return
	}
	r := a.ctl.Handle(control.Request{Op: control.OpRemove, Loop: loops[0]})
	ack.OK = r.OK
	ack.Error = r.Error
	a.publish(TopicAck, ack)
}

// handleFanout answers one scattered request from the local services.
func (a *Agent) handleFanout(env bus.Envelope) {
	var f Fanout
	if err := bus.DecodePayload(env, &f); err != nil || f.Worker != a.opts.ID {
		return
	}
	reply := FanReply{Worker: a.opts.ID, ID: f.ID}
	switch {
	case f.Control != nil:
		r := a.ctl.Handle(*f.Control)
		reply.Control = &r
	case f.ApproveVerdict != nil:
		r := a.ctl.Verdict(true, *f.ApproveVerdict)
		reply.Control = &r
	case f.DenyVerdict != nil:
		r := a.ctl.Verdict(false, *f.DenyVerdict)
		reply.Control = &r
	case f.Query != nil:
		if a.db == nil {
			reply.Err = "worker has no tsdb service"
		} else {
			r := a.db.Answer(*f.Query)
			reply.Query = &r
		}
	default:
		reply.Err = "empty fanout"
	}
	a.publish(TopicReply, reply)
}

// arbitrate is the fleet coordinator's external-arbiter hook: it submits the
// round's digests and waits for the coordinator's verdict, failing open on
// timeout. It runs on the worker's tick goroutine; the verdict arrives on
// the bridge client's read goroutine.
func (a *Agent) arbitrate(now time.Duration, digests []fleet.ActionDigest) []bool {
	ch := make(chan Verdict, 1)
	a.mu.Lock()
	a.digSeq++
	seq := a.digSeq
	a.waits[seq] = ch
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		delete(a.waits, seq)
		a.mu.Unlock()
	}()
	a.publish(TopicDigest, digestFromFleet(a.opts.ID, seq, digests))
	select {
	case v := <-ch:
		if len(v.Deny) != len(digests) {
			return nil // malformed verdict: fail open
		}
		return v.Deny
	case <-time.After(a.opts.ArbTimeout):
		return nil
	case <-a.stop:
		return nil
	}
}

// handleVerdict routes a coordinator verdict to the round waiting on it.
func (a *Agent) handleVerdict(env bus.Envelope) {
	var v Verdict
	if err := bus.DecodePayload(env, &v); err != nil || v.Worker != a.opts.ID {
		return
	}
	a.mu.Lock()
	ch := a.waits[v.Seq]
	a.mu.Unlock()
	if ch != nil {
		select {
		case ch <- v:
		default:
		}
	}
}
