package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/control"
	"autoloop/internal/fleet"
	"autoloop/internal/tsdb"
)

// Worker-side defaults.
const (
	// DefaultHeartbeat is the lease-renewal period; keep it well under the
	// coordinator's lease TTL.
	DefaultHeartbeat = 1 * time.Second
	// DefaultHelloEvery re-announces membership every N heartbeats, so a
	// restarted coordinator (empty directory) re-learns its workers within
	// N×heartbeat without any negative acknowledgement on the wire.
	DefaultHelloEvery = 5
	// DefaultArbTimeout bounds the digest/verdict round trip per fleet
	// round; on timeout the round proceeds un-arbitrated (fail open), so a
	// slow or absent coordinator degrades to single-node behavior instead
	// of stalling the loops.
	DefaultArbTimeout = 250 * time.Millisecond
	// DefaultDegradeAfter is how many consecutive arbitration timeouts the
	// agent tolerates before declaring the coordinator unreachable and
	// entering degraded standalone mode.
	DefaultDegradeAfter = 3
	// degradedProbeEvery: while degraded, every Nth fleet round still
	// submits its digest and waits the arbitration timeout, probing for a
	// healed link; the rounds between skip the wait entirely.
	degradedProbeEvery = 8
	// digestBufferCap bounds the degraded-mode digest ring; beyond it the
	// oldest buffered digest is dropped (and counted).
	digestBufferCap = 256
)

// AgentOptions configures a worker Agent.
type AgentOptions struct {
	// ID names the worker; it must be unique in the cluster.
	ID string
	// Heartbeat is the lease-renewal period (default DefaultHeartbeat).
	Heartbeat time.Duration
	// HelloEvery re-Hellos every N heartbeats (default DefaultHelloEvery).
	HelloEvery int
	// ArbTimeout bounds the cross-node arbitration round trip (default
	// DefaultArbTimeout). Zero selects the default; negative disables the
	// digest hook entirely (rounds stay byte-identical to single-node).
	ArbTimeout time.Duration
	// Stats, when set, fills the telemetry fields of each heartbeat.
	Stats func() (series int, samples uint64, rounds int)
	// DegradeAfter is the consecutive-arb-timeout threshold for entering
	// degraded mode (default DefaultDegradeAfter); negative disables
	// timeout-driven degradation (SetLinkState still works).
	DegradeAfter int
	// Logf, when non-nil, receives one line per degraded-mode transition.
	Logf func(format string, args ...any)
}

// AgentMetrics counts the agent's resilience events. All fields are
// monotonic totals.
type AgentMetrics struct {
	// DegradedEntries is how many times the agent entered degraded mode.
	DegradedEntries uint64
	// DegradedRounds is how many fleet rounds ticked while degraded —
	// rounds that ran under local fail-open arbitration with no verdict
	// round trip.
	DegradedRounds uint64
	// DigestsBuffered is how many digests were journaled to the degraded
	// ring instead of being arbitrated.
	DigestsBuffered uint64
	// DigestsDropped is how many buffered digests the bounded ring evicted.
	DigestsDropped uint64
	// DigestsBackfilled is how many buffered digests were re-delivered to
	// the coordinator after the link healed.
	DigestsBackfilled uint64
}

// Agent is the worker side of the cluster: it registers with the
// coordinator over the bus bridge, renews its lease, spawns assigned specs
// into the local control.Service, answers fanned-out control and tsdb
// requests, and submits fleet-round digests for cross-node arbitration.
type Agent struct {
	opts AgentOptions
	b    *bus.Bus
	ctl  *control.Service
	db   *tsdb.Service

	mu     sync.Mutex
	held   map[string][]string // group -> spawned loop names
	seq    uint64              // heartbeat sequence
	digSeq uint64              // digest sequence
	waits  map[uint64]chan Verdict

	// Degraded standalone mode: entered after DegradeAfter consecutive
	// arbitration timeouts (or an explicit SetLinkState(false) from the
	// link maintainer), exited on any coordinator contact. While degraded,
	// rounds skip the verdict wait and digests buffer locally.
	degraded  bool
	arbMisses int      // consecutive arbitration timeouts
	degRounds int      // rounds ticked while degraded (probe cadence)
	buffered  []Digest // bounded degraded-mode digest ring
	metrics   AgentMetrics

	cancels  []func()
	stop     chan struct{}
	stopOnce sync.Once
	done     sync.WaitGroup
}

// NewAgent attaches a worker agent to the local bus b, whose bridge client
// must export WorkerExportPattern to the coordinator (the caller dials; the
// agent only speaks topics). ctl serves assignments and fanned control ops;
// db, when non-nil, answers fanned tsdb queries. The agent installs the
// cross-node arbitration hook on ctl's fleet coordinator unless ArbTimeout
// is negative. Call Close to detach.
func NewAgent(b *bus.Bus, ctl *control.Service, db *tsdb.Service, opts AgentOptions) (*Agent, error) {
	if opts.ID == "" {
		return nil, fmt.Errorf("cluster: agent needs an ID")
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = DefaultHeartbeat
	}
	if opts.HelloEvery <= 0 {
		opts.HelloEvery = DefaultHelloEvery
	}
	if opts.ArbTimeout == 0 {
		opts.ArbTimeout = DefaultArbTimeout
	}
	if opts.DegradeAfter == 0 {
		opts.DegradeAfter = DefaultDegradeAfter
	}
	a := &Agent{
		opts:  opts,
		b:     b,
		ctl:   ctl,
		db:    db,
		held:  make(map[string][]string),
		waits: make(map[uint64]chan Verdict),
		stop:  make(chan struct{}),
	}
	a.cancels = append(a.cancels,
		b.Subscribe(TopicAssign, a.handleAssign),
		b.Subscribe(TopicRevoke, a.handleRevoke),
		b.Subscribe(TopicFanout, a.handleFanout),
		b.Subscribe(TopicVerdict, a.handleVerdict),
	)
	if opts.ArbTimeout > 0 {
		ctl.Coordinator().SetExternalArbiter(a.arbitrate)
	}
	a.sendHello()
	a.done.Add(1)
	go a.heartbeatLoop()
	return a, nil
}

// Close stops the heartbeat loop and detaches the agent from the bus. The
// control service keeps running its loops; only cluster participation ends.
// Close is idempotent.
func (a *Agent) Close() {
	a.stopOnce.Do(func() {
		close(a.stop)
		a.done.Wait()
		for _, cancel := range a.cancels {
			cancel()
		}
		a.cancels = nil
		a.ctl.Coordinator().SetExternalArbiter(nil)
	})
}

// Degraded reports whether the agent is in degraded standalone mode:
// partitioned from the coordinator, ticking its loops under local fail-open
// arbitration, journaling digests for backfill on rejoin.
func (a *Agent) Degraded() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.degraded
}

// Metrics returns a snapshot of the agent's resilience counters.
func (a *Agent) Metrics() AgentMetrics {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.metrics
}

// SetLinkState feeds the agent explicit link-state transitions — the hook a
// bus.Reconnector's OnState calls. Down enters degraded mode immediately
// (no need to burn DegradeAfter arbitration timeouts first); up exits it,
// re-delivering buffered digests and re-announcing membership.
func (a *Agent) SetLinkState(up bool) {
	if up {
		a.rejoin()
		return
	}
	a.mu.Lock()
	a.enterDegradedLocked("link down")
	a.mu.Unlock()
}

func (a *Agent) logf(format string, args ...any) {
	if a.opts.Logf != nil {
		a.opts.Logf(format, args...)
	}
}

// enterDegradedLocked flips into degraded mode (idempotent).
func (a *Agent) enterDegradedLocked(reason string) {
	if a.degraded {
		return
	}
	a.degraded = true
	a.degRounds = 0
	a.metrics.DegradedEntries++
	a.logf("cluster: worker %s entering degraded standalone mode (%s); loops keep ticking fail-open", a.opts.ID, reason)
}

// noteContact records proof the coordinator can reach us (an assign, revoke,
// fanout, or verdict arrived) — it resets the arbitration-miss streak and, if
// degraded, rejoins.
func (a *Agent) noteContact() {
	a.mu.Lock()
	a.arbMisses = 0
	if !a.degraded {
		a.mu.Unlock()
		return
	}
	flush := a.exitDegradedLocked()
	a.mu.Unlock()
	a.deliverBackfill(flush)
}

// rejoin exits degraded mode (if in it), flushing the digest buffer and
// re-announcing membership.
func (a *Agent) rejoin() {
	a.mu.Lock()
	if !a.degraded {
		a.arbMisses = 0
		a.mu.Unlock()
		return
	}
	flush := a.exitDegradedLocked()
	a.mu.Unlock()
	a.deliverBackfill(flush)
}

// exitDegradedLocked clears degraded state and detaches the buffered
// digests for the caller to deliver outside the lock.
func (a *Agent) exitDegradedLocked() []Digest {
	a.degraded = false
	a.arbMisses = 0
	flush := a.buffered
	a.buffered = nil
	a.metrics.DigestsBackfilled += uint64(len(flush))
	a.logf("cluster: worker %s rejoined the coordinator; backfilling %d buffered digests", a.opts.ID, len(flush))
	return flush
}

// deliverBackfill re-delivers buffered digests flagged Backfill — the
// coordinator records them for observability but owes no verdicts (the
// actions already ran under local fail-open arbitration) — and re-Hellos so
// the coordinator reconciles placement with what the worker actually holds.
func (a *Agent) deliverBackfill(flush []Digest) {
	for i := range flush {
		flush[i].Backfill = true
		a.publish(TopicDigest, flush[i])
	}
	a.sendHello()
}

// bufferLocked journals one digest in the bounded degraded-mode ring.
func (a *Agent) bufferLocked(d Digest) {
	if len(a.buffered) >= digestBufferCap {
		a.buffered = a.buffered[1:]
		a.metrics.DigestsDropped++
	}
	a.buffered = append(a.buffered, d)
	a.metrics.DigestsBuffered++
}

// Held returns the groups the agent currently holds, sorted.
func (a *Agent) Held() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.held))
	for g := range a.held {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

func (a *Agent) publish(topic string, payload interface{}) {
	a.b.Publish(bus.Envelope{Topic: topic, Source: a.opts.ID, Payload: payload})
}

func (a *Agent) sendHello() {
	a.publish(TopicHello, Hello{Worker: a.opts.ID, Groups: a.Held()})
}

func (a *Agent) heartbeatLoop() {
	defer a.done.Done()
	t := time.NewTicker(a.opts.Heartbeat)
	defer t.Stop()
	beats := 0
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
		}
		beats++
		if beats%a.opts.HelloEvery == 0 {
			a.sendHello()
		}
		hb := Heartbeat{Worker: a.opts.ID}
		a.mu.Lock()
		a.seq++
		hb.Seq = a.seq
		hb.Groups = len(a.held)
		a.mu.Unlock()
		if a.opts.Stats != nil {
			hb.Series, hb.Samples, hb.Rounds = a.opts.Stats()
		}
		a.publish(TopicHeartbeat, hb)
	}
}

// handleAssign spawns one assigned spec. Assigns are idempotent: re-assigning
// a held group acks OK with the existing loop names (the coordinator re-sends
// unacked assigns, and a rebalance may re-affirm ownership).
func (a *Agent) handleAssign(env bus.Envelope) {
	var as Assign
	if err := bus.DecodePayload(env, &as); err != nil || as.Worker != a.opts.ID {
		return
	}
	a.noteContact()
	ack := Ack{Worker: a.opts.ID, ID: as.ID, Group: as.Group}
	a.mu.Lock()
	loops, have := a.held[as.Group]
	a.mu.Unlock()
	if have {
		ack.OK = true
		ack.Loops = loops
		a.publish(TopicAck, ack)
		return
	}
	sp, err := a.ctl.Spawn(as.Spec)
	if err != nil {
		ack.Error = err.Error()
		a.publish(TopicAck, ack)
		return
	}
	for _, bl := range sp.Loops {
		ack.Loops = append(ack.Loops, bl.Loop.Name)
	}
	ack.OK = true
	a.mu.Lock()
	a.held[as.Group] = ack.Loops
	a.mu.Unlock()
	a.publish(TopicAck, ack)
}

// handleRevoke removes a held group (rebalance moved it, or the operator
// removed the spec).
func (a *Agent) handleRevoke(env bus.Envelope) {
	var rv Revoke
	if err := bus.DecodePayload(env, &rv); err != nil || rv.Worker != a.opts.ID {
		return
	}
	a.noteContact()
	ack := Ack{Worker: a.opts.ID, ID: rv.ID, Group: rv.Group}
	a.mu.Lock()
	loops, have := a.held[rv.Group]
	delete(a.held, rv.Group)
	a.mu.Unlock()
	if !have {
		ack.OK = true // already gone; revokes are idempotent too
		a.publish(TopicAck, ack)
		return
	}
	r := a.ctl.Handle(control.Request{Op: control.OpRemove, Loop: loops[0]})
	ack.OK = r.OK
	ack.Error = r.Error
	a.publish(TopicAck, ack)
}

// handleFanout answers one scattered request from the local services.
func (a *Agent) handleFanout(env bus.Envelope) {
	var f Fanout
	if err := bus.DecodePayload(env, &f); err != nil || f.Worker != a.opts.ID {
		return
	}
	a.noteContact()
	reply := FanReply{Worker: a.opts.ID, ID: f.ID}
	switch {
	case f.Control != nil:
		r := a.ctl.Handle(*f.Control)
		reply.Control = &r
	case f.ApproveVerdict != nil:
		r := a.ctl.Verdict(true, *f.ApproveVerdict)
		reply.Control = &r
	case f.DenyVerdict != nil:
		r := a.ctl.Verdict(false, *f.DenyVerdict)
		reply.Control = &r
	case f.Query != nil:
		if a.db == nil {
			reply.Err = "worker has no tsdb service"
		} else {
			r := a.db.Answer(*f.Query)
			reply.Query = &r
		}
	default:
		reply.Err = "empty fanout"
	}
	a.publish(TopicReply, reply)
}

// arbitrate is the fleet coordinator's external-arbiter hook: it submits the
// round's digests and waits for the coordinator's verdict, failing open on
// timeout. It runs on the worker's tick goroutine; the verdict arrives on
// the bridge client's read goroutine.
//
// Degraded mode keeps the loops ticking when the coordinator is
// unreachable: after DegradeAfter consecutive timeouts the agent stops
// paying the arbitration timeout every round — it journals each round's
// digest in a bounded local ring and fails open immediately, probing with a
// real digest/verdict round trip every degradedProbeEvery rounds. Any
// coordinator contact (a verdict, assign, revoke, or fanout) rejoins:
// buffered digests re-deliver flagged Backfill and the agent re-Hellos.
func (a *Agent) arbitrate(now time.Duration, digests []fleet.ActionDigest) []bool {
	a.mu.Lock()
	a.digSeq++
	seq := a.digSeq
	if a.degraded {
		a.degRounds++
		a.metrics.DegradedRounds++
		if a.degRounds%degradedProbeEvery != 0 {
			// Non-probe degraded round: journal and fail open without
			// waiting — the partition must not slow the loops down.
			a.bufferLocked(digestFromFleet(a.opts.ID, seq, digests))
			a.mu.Unlock()
			return nil
		}
	}
	ch := make(chan Verdict, 1)
	a.waits[seq] = ch
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		delete(a.waits, seq)
		a.mu.Unlock()
	}()
	a.publish(TopicDigest, digestFromFleet(a.opts.ID, seq, digests))
	select {
	case v := <-ch:
		// handleVerdict already counted the contact (and rejoined if
		// degraded) before handing us the verdict.
		if len(v.Deny) != len(digests) {
			return nil // malformed verdict: fail open
		}
		return v.Deny
	case <-time.After(a.opts.ArbTimeout):
		a.mu.Lock()
		if a.degraded {
			// Failed probe: the round's digest still matters — journal it.
			a.bufferLocked(digestFromFleet(a.opts.ID, seq, digests))
		} else if a.opts.DegradeAfter > 0 {
			a.arbMisses++
			if a.arbMisses >= a.opts.DegradeAfter {
				a.enterDegradedLocked(fmt.Sprintf("%d consecutive arbitration timeouts", a.arbMisses))
				// This round's digest may never have arrived; journal it
				// so the backfill covers the transition round too.
				a.bufferLocked(digestFromFleet(a.opts.ID, seq, digests))
			}
		}
		a.mu.Unlock()
		return nil
	case <-a.stop:
		return nil
	}
}

// handleVerdict routes a coordinator verdict to the round waiting on it.
func (a *Agent) handleVerdict(env bus.Envelope) {
	var v Verdict
	if err := bus.DecodePayload(env, &v); err != nil || v.Worker != a.opts.ID {
		return
	}
	a.noteContact()
	a.mu.Lock()
	ch := a.waits[v.Seq]
	a.mu.Unlock()
	if ch != nil {
		select {
		case ch <- v:
		default:
		}
	}
}
