package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/control"
	"autoloop/internal/core"
	"autoloop/internal/fleet"
	"autoloop/internal/knowledge"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

// scriptCfg configures the test case: what kind of action each tick plans,
// against which subject. It rides the LoopSpec.Config path over the wire.
type scriptCfg struct {
	Kind    string `json:"kind"`
	Subject string `json:"subject"`
}

// testWorker is one in-process worker node: its own bus, bridge client,
// control service, telemetry store, and cluster agent — the same stack modad
// -role=worker runs, minus the simulation substrates.
type testWorker struct {
	id     string
	b      *bus.Bus
	client *bus.Client
	ctl    *control.Service
	db     *tsdb.DB
	dbsvc  *tsdb.Service
	agent  *Agent

	mu       sync.Mutex
	executed []core.Action
	now      time.Duration
}

func (w *testWorker) record(a core.Action) {
	w.mu.Lock()
	w.executed = append(w.executed, a)
	w.mu.Unlock()
}

func (w *testWorker) executedActions() []core.Action {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]core.Action(nil), w.executed...)
}

// tick runs one control round of virtual time on the worker.
func (w *testWorker) tick() {
	w.now += time.Minute
	w.ctl.Tick(w.now)
}

func newTestWorker(t *testing.T, addr, id string, opts AgentOptions) *testWorker {
	t.Helper()
	w := &testWorker{id: id, b: bus.New(), db: tsdb.New(time.Hour)}
	reg := control.NewRegistry()
	reg.MustRegister(control.CaseFactory{
		Name: "script",
		Doc:  "test: plans one configurable action per tick",
		Defaults: func() interface{} {
			return &scriptCfg{Kind: "act"}
		},
		Priority: 1,
		Build: func(env *control.Env, cfg interface{}) ([]control.BuiltLoop, error) {
			c := *cfg.(*scriptCfg)
			l := core.NewLoop("script",
				core.MonitorFunc(func(now time.Duration) (core.Observation, error) {
					return core.Observation{Time: now}, nil
				}),
				core.AnalyzerFunc(func(now time.Duration, obs core.Observation) (core.Symptoms, error) {
					return core.Symptoms{Time: now, Findings: []core.Finding{{Kind: "f", Subject: c.Subject, Confidence: 1}}}, nil
				}),
				core.PlannerFunc(func(now time.Duration, sym core.Symptoms) (core.Plan, error) {
					return core.Plan{Time: now, Actions: []core.Action{{
						Kind: c.Kind, Subject: c.Subject, Amount: 1, Confidence: 1,
					}}}, nil
				}),
				core.ExecutorFunc(func(now time.Duration, a core.Action) (core.ActionResult, error) {
					w.record(a)
					return core.ActionResult{Action: a, Honored: true, Granted: a.Amount}, nil
				}),
			)
			return []control.BuiltLoop{{Loop: l}}, nil
		},
	})
	env := &control.Env{
		Knowledge: knowledge.NewBase(),
		Clock:     sim.VirtualClock{Engine: sim.NewEngine(1)},
		Rng:       rand.New(rand.NewSource(1)),
		Bus:       w.b,
	}
	w.ctl = control.NewService(reg, env, fleet.New(1), time.Minute)
	w.dbsvc = tsdb.NewService(w.db)

	client, err := bus.Dial(addr, WorkerExportPattern, w.b)
	if err != nil {
		t.Fatalf("worker %s dial %s: %v", id, addr, err)
	}
	w.client = client
	t.Cleanup(func() { client.Close() })

	opts.ID = id
	if opts.Heartbeat == 0 {
		opts.Heartbeat = 50 * time.Millisecond
	}
	agent, err := NewAgent(w.b, w.ctl, w.dbsvc, opts)
	if err != nil {
		t.Fatalf("worker %s agent: %v", id, err)
	}
	w.agent = agent
	t.Cleanup(agent.Close)
	return w
}

// kill simulates a dead worker process: the agent stops heartbeating and the
// TCP connection drops, with no goodbye on the wire.
func (w *testWorker) kill() {
	w.agent.Close()
	w.client.Close()
}

// testCluster is a coordinator plus its cluster-facing bridge server and a
// background wall-clock Tick driver.
type testCluster struct {
	coord *Coordinator
	b     *bus.Bus
	addr  string
}

func newTestCluster(t *testing.T, opts Options) *testCluster {
	t.Helper()
	b := bus.New()
	coord := NewCoordinator(b, opts)
	t.Cleanup(coord.Close)
	srv, err := bus.NewServer("127.0.0.1:0", CoordExportPattern, b)
	if err != nil {
		t.Fatalf("cluster server: %v", err)
	}
	t.Cleanup(func() { srv.Close() })

	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	go func() {
		ticker := time.NewTicker(25 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-ticker.C:
				coord.Tick(now)
			}
		}
	}()
	return &testCluster{coord: coord, b: b, addr: srv.Addr()}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func placedCount(c *Coordinator) int {
	n := 0
	for _, p := range c.Placements() {
		if p.State == placePlaced {
			n++
		}
	}
	return n
}

// TestClusterPlacementAndScatter drives the full placement path over a real
// TCP loopback bridge: three workers join, nine specs spread across them,
// and the operator surface (list, get, lifecycle, members, tsdb queries)
// answers with merged cluster-wide views.
func TestClusterPlacementAndScatter(t *testing.T) {
	tc := newTestCluster(t, Options{Lease: 2 * time.Second})
	workers := make(map[string]*testWorker)
	for _, id := range []string{"w1", "w2", "w3"} {
		workers[id] = newTestWorker(t, tc.addr, id, AgentOptions{})
	}
	waitFor(t, 5*time.Second, "3 alive members", func() bool {
		return len(tc.coord.Directory().Alive()) == 3
	})

	const groups = 9
	for i := 0; i < groups; i++ {
		spec := control.LoopSpec{Case: "script", Name: fmt.Sprintf("g%d", i)}
		if _, err := tc.coord.AddSpec(spec); err != nil {
			t.Fatalf("AddSpec g%d: %v", i, err)
		}
	}
	waitFor(t, 5*time.Second, "all specs placed", func() bool {
		return placedCount(tc.coord) == groups
	})

	// Placement is spread, not piled on one node.
	owners := make(map[string]int)
	for _, p := range tc.coord.Placements() {
		owners[p.Worker]++
	}
	if len(owners) < 2 {
		t.Fatalf("all %d groups landed on one worker: %v", groups, owners)
	}
	held := 0
	for _, w := range workers {
		held += len(w.agent.Held())
	}
	if held != groups {
		t.Fatalf("workers hold %d groups, want %d", held, groups)
	}

	// Duplicate groups are rejected at admission.
	if _, err := tc.coord.AddSpec(control.LoopSpec{Case: "script", Name: "g0"}); err == nil {
		t.Fatal("duplicate group admitted")
	}

	// Run a few rounds everywhere so loops have live metrics.
	for _, w := range workers {
		for i := 0; i < 3; i++ {
			w.tick()
		}
	}

	// list: a merged facility-wide view with Worker stamped on every row.
	r := tc.coord.Handle(control.Request{Op: control.OpList})
	if !r.OK {
		t.Fatalf("list failed: %s", r.Error)
	}
	if len(r.Loops) != groups {
		t.Fatalf("list returned %d loops, want %d", len(r.Loops), groups)
	}
	for _, st := range r.Loops {
		if st.Worker == "" {
			t.Fatalf("loop %s has no worker stamp", st.Name)
		}
		if st.Metrics.Ticks == 0 {
			t.Fatalf("loop %s never ticked on %s", st.Name, st.Worker)
		}
	}

	// members: three alive workers reporting held groups.
	r = tc.coord.Handle(control.Request{Op: control.OpMembers})
	if !r.OK || len(r.Members) != 3 {
		t.Fatalf("members = %+v", r)
	}
	totalLoops := 0
	for _, m := range r.Members {
		if m.State != "alive" {
			t.Fatalf("member %s state %s", m.ID, m.State)
		}
		totalLoops += m.Loops
	}
	if totalLoops != groups {
		t.Fatalf("members report %d loops, want %d", totalLoops, groups)
	}

	// Lifecycle routed to the owner: pause g0, observe it paused via get.
	r = tc.coord.Handle(control.Request{Op: control.OpPause, Loop: "g0"})
	if !r.OK {
		t.Fatalf("pause g0: %s", r.Error)
	}
	r = tc.coord.Handle(control.Request{Op: control.OpGet, Loop: "g0"})
	if !r.OK || r.Loop == nil {
		t.Fatalf("get g0: %+v", r)
	}
	if r.Loop.State != "paused" || r.Loop.Worker == "" {
		t.Fatalf("get g0 = state %s worker %q, want paused on a worker", r.Loop.State, r.Loop.Worker)
	}

	// tsdb scatter-gather: each worker stores one distinct series; a query
	// published on the coordinator bus returns the merged facility view.
	for i, id := range []string{"w1", "w2", "w3"} {
		if err := workers[id].db.Append(telemetry.Point{
			Name: "node.temp", Labels: telemetry.Labels{"node": id},
			Time: time.Minute, Value: float64(40 + i),
		}); err != nil {
			t.Fatalf("append on %s: %v", id, err)
		}
	}
	results := make(chan tsdb.QueryResponse, 1)
	cancel := tc.b.Subscribe(tsdb.ResultTopic, func(env bus.Envelope) {
		if resp, ok := env.Payload.(tsdb.QueryResponse); ok {
			select {
			case results <- resp:
			default:
			}
		}
	})
	defer cancel()
	tc.b.Publish(bus.Envelope{Topic: tsdb.QueryTopic, Payload: tsdb.QueryRequest{
		ID: "q1", Metric: "node.temp", Latest: true,
	}})
	select {
	case resp := <-results:
		if resp.Err != "" {
			t.Fatalf("query error: %s", resp.Err)
		}
		if len(resp.Series) != 3 {
			t.Fatalf("merged query returned %d series, want 3: %+v", len(resp.Series), resp)
		}
		for i := 1; i < len(resp.Series); i++ {
			if resp.Series[i-1].Labels["node"] > resp.Series[i].Labels["node"] {
				t.Fatalf("merged series not in deterministic order: %+v", resp.Series)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no merged query response")
	}

	// remove: routed to the owner and dropped from the placement table.
	r = tc.coord.Handle(control.Request{Op: control.OpRemove, Loop: "g0"})
	if !r.OK {
		t.Fatalf("remove g0: %s", r.Error)
	}
	if got := len(tc.coord.Placements()); got != groups-1 {
		t.Fatalf("placements after remove = %d, want %d", got, groups-1)
	}
}

// TestClusterFailover kills one worker without a goodbye and asserts its
// loops are re-placed on the survivors within the lease window.
func TestClusterFailover(t *testing.T) {
	const lease = 500 * time.Millisecond
	tc := newTestCluster(t, Options{Lease: lease})
	workers := map[string]*testWorker{
		"w1": newTestWorker(t, tc.addr, "w1", AgentOptions{}),
		"w2": newTestWorker(t, tc.addr, "w2", AgentOptions{}),
		"w3": newTestWorker(t, tc.addr, "w3", AgentOptions{}),
	}
	waitFor(t, 5*time.Second, "3 alive members", func() bool {
		return len(tc.coord.Directory().Alive()) == 3
	})
	const groups = 6
	for i := 0; i < groups; i++ {
		if _, err := tc.coord.AddSpec(control.LoopSpec{Case: "script", Name: fmt.Sprintf("g%d", i)}); err != nil {
			t.Fatalf("AddSpec: %v", err)
		}
	}
	waitFor(t, 5*time.Second, "all specs placed", func() bool {
		return placedCount(tc.coord) == groups
	})

	// Pick a victim that owns at least one group.
	victim := ""
	for _, p := range tc.coord.Placements() {
		if p.Worker != "" {
			victim = p.Worker
			break
		}
	}
	start := time.Now()
	workers[victim].kill()

	waitFor(t, 4*lease+2*time.Second, "failover to survivors", func() bool {
		if placedCount(tc.coord) != groups {
			return false
		}
		for _, p := range tc.coord.Placements() {
			if p.Worker == victim {
				return false
			}
		}
		return true
	})
	elapsed := time.Since(start)

	s := tc.coord.Stats()
	if s.Failovers == 0 {
		t.Fatal("no failovers counted")
	}
	if s.LeaseExpiries == 0 {
		t.Fatal("no lease expiry counted")
	}
	// The lease window bounds detection; allow generous scheduling slack on
	// top for CI, but a failover taking many multiples of the lease means
	// the sweep is broken.
	if elapsed > 4*lease+2*time.Second {
		t.Fatalf("failover took %v with a %v lease", elapsed, lease)
	}
	// The victim stays visible as expired until it re-Hellos.
	found := false
	for _, m := range tc.coord.Members() {
		if m.ID == victim {
			found = true
			if m.State != "expired" {
				t.Fatalf("victim %s state %s, want expired", victim, m.State)
			}
		}
	}
	if !found {
		t.Fatalf("victim %s vanished from the member table", victim)
	}
	// Survivors actually spawned the moved loops.
	held := 0
	for id, w := range workers {
		if id != victim {
			held += len(w.agent.Held())
		}
	}
	if held != groups {
		t.Fatalf("survivors hold %d groups, want %d", held, groups)
	}
}

// TestClusterSeveredConnection severs one worker's TCP connection mid-flight
// — the worker process is alive and still heartbeating into its local bus,
// but nothing crosses the bridge — and asserts the coordinator expires the
// lease and moves the work, exactly as for a dead process.
func TestClusterSeveredConnection(t *testing.T) {
	const lease = 500 * time.Millisecond
	tc := newTestCluster(t, Options{Lease: lease})
	w1 := newTestWorker(t, tc.addr, "w1", AgentOptions{})
	w2 := newTestWorker(t, tc.addr, "w2", AgentOptions{})
	_ = w1
	waitFor(t, 5*time.Second, "2 alive members", func() bool {
		return len(tc.coord.Directory().Alive()) == 2
	})
	const groups = 4
	for i := 0; i < groups; i++ {
		if _, err := tc.coord.AddSpec(control.LoopSpec{Case: "script", Name: fmt.Sprintf("g%d", i)}); err != nil {
			t.Fatalf("AddSpec: %v", err)
		}
	}
	waitFor(t, 5*time.Second, "all specs placed", func() bool {
		return placedCount(tc.coord) == groups
	})

	// Sever w2's wire only: its agent keeps running and publishing
	// heartbeats locally, but the bridge is gone.
	w2.client.Close()

	waitFor(t, 4*lease+2*time.Second, "lease expiry and takeover", func() bool {
		if tc.coord.Directory().IsAlive("w2") {
			return false
		}
		for _, p := range tc.coord.Placements() {
			if p.Worker != "w1" || p.State != placePlaced {
				return false
			}
		}
		return true
	})
	// The severed worker's later heartbeats cannot resurrect it: only a
	// re-Hello (a reconnect in production) could, and its wire is gone.
	time.Sleep(3 * time.Duration(DefaultHeartbeat))
	if tc.coord.Directory().IsAlive("w2") {
		t.Fatal("severed worker came back alive without a wire")
	}
	if len(w1.agent.Held()) != groups {
		t.Fatalf("survivor holds %d groups, want %d", len(w1.agent.Held()), groups)
	}
}

// TestClusterCrossNodeArbitration runs two workers whose loops contradict
// each other on a shared subject and asserts the coordinator's arbiter
// suppresses the later, lower-priority action across the wire.
func TestClusterCrossNodeArbitration(t *testing.T) {
	tc := newTestCluster(t, Options{Lease: 2 * time.Second, ArbWindow: 10 * time.Second})
	agentOpts := AgentOptions{ArbTimeout: 2 * time.Second}
	workers := map[string]*testWorker{
		"w1": newTestWorker(t, tc.addr, "w1", agentOpts),
		"w2": newTestWorker(t, tc.addr, "w2", agentOpts),
	}
	waitFor(t, 5*time.Second, "2 alive members", func() bool {
		return len(tc.coord.Directory().Alive()) == 2
	})

	// Pick group names the ring provably places on different workers, using
	// the same deterministic ring the coordinator computes with.
	ring := NewRing(0)
	ring.Add("w1")
	ring.Add("w2")
	capper := "capper"
	capOwner := ring.Owner(capper)
	raiser := ""
	for i := 0; i < 1000 && raiser == ""; i++ {
		name := fmt.Sprintf("raiser-%d", i)
		if ring.Owner(name) != capOwner {
			raiser = name
		}
	}
	if raiser == "" {
		t.Fatal("could not find a group hashing to the other worker")
	}

	hi, lo := 9, 1
	for _, s := range []control.LoopSpec{
		{Case: "script", Name: capper, Priority: &hi,
			Config: []byte(`{"kind":"cap.power","subject":"plant"}`)},
		{Case: "script", Name: raiser, Priority: &lo,
			Config: []byte(`{"kind":"raise.power","subject":"plant"}`)},
	} {
		if _, err := tc.coord.AddSpec(s); err != nil {
			t.Fatalf("AddSpec %s: %v", s.Name, err)
		}
	}
	waitFor(t, 5*time.Second, "both specs placed", func() bool {
		return placedCount(tc.coord) == 2
	})

	// The capper's round grants it the subject; the raiser's round inside
	// the window is denied across nodes.
	workers[capOwner].tick()
	raiseOwner := "w1"
	if capOwner == "w1" {
		raiseOwner = "w2"
	}
	workers[raiseOwner].tick()

	if got := workers[capOwner].executedActions(); len(got) != 1 || got[0].Kind != "cap.power" {
		t.Fatalf("capper executed %+v, want one cap.power", got)
	}
	if got := workers[raiseOwner].executedActions(); len(got) != 0 {
		t.Fatalf("raiser executed %+v despite cross-node denial", got)
	}
	m := workers[raiseOwner].ctl.Coordinator().Metrics()
	if m.Remote != 1 || m.Arbitrated != 1 {
		t.Fatalf("raiser fleet metrics = %+v, want Remote=1 Arbitrated=1", m)
	}
	if tc.coord.Stats().DigestsDenied != 1 {
		t.Fatalf("coordinator denied %d digests, want 1", tc.coord.Stats().DigestsDenied)
	}

	// Outside the window the raiser is free again.
	time.Sleep(50 * time.Millisecond) // let nothing linger on the wire
	a := tc.coord.Arbiter()
	a.Forget(capOwner)
	workers[raiseOwner].tick()
	if got := workers[raiseOwner].executedActions(); len(got) != 1 {
		t.Fatalf("raiser still suppressed after the grant was dropped: %+v", got)
	}
}
