package cluster

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/control"
	"autoloop/internal/fleet"
)

// BenchmarkRingOwner is the placement hot path: one consistent-hash lookup
// against an 8-member ring (hash + binary search over 1024 virtual points).
func BenchmarkRingOwner(b *testing.B) {
	r := NewRing(0)
	for i := 0; i < 8; i++ {
		r.Add("worker-" + strconv.Itoa(i))
	}
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = "group-" + strconv.Itoa(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Owner(keys[i%len(keys)]) == "" {
			b.Fatal("empty owner")
		}
	}
}

// BenchmarkRingMembership is the failover path: removing a member and
// re-adding it, each a full point-slice rebuild and resort.
func BenchmarkRingMembership(b *testing.B) {
	r := NewRing(0)
	for i := 0; i < 8; i++ {
		r.Add("worker-" + strconv.Itoa(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Remove("worker-0")
		r.Add("worker-0")
	}
}

// BenchmarkArbiterDecide is the per-round cross-node arbitration cost: one
// four-action digest against a grant table holding other workers' subjects.
func BenchmarkArbiterDecide(b *testing.B) {
	a := NewArbiter(time.Hour)
	now := time.Unix(0, 0)
	a.Decide(Digest{Worker: "w9", Seq: 1, Actions: []fleet.ActionDigest{
		{Loop: "other", Kind: "cap.power", Subject: "rack7", Priority: 5},
	}}, now)
	d := Digest{Worker: "w1", Actions: []fleet.ActionDigest{
		{Loop: "l1", Kind: "cap.power", Subject: "plant", Priority: 5},
		{Loop: "l2", Kind: "migrate.ost", Subject: "ost3", Priority: 3},
		{Loop: "l3", Kind: "extend.job", Subject: "job42", Priority: 1},
		{Loop: "l4", Kind: "cap.power", Subject: "rack7", Priority: 9},
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Seq = uint64(i)
		if v := a.Decide(d, now); len(v.Deny) != 4 {
			b.Fatal("short verdict")
		}
	}
}

// BenchmarkScatterGather is one full fan-out/gather over the in-process bus:
// correlation-ID bookkeeping, N responder dispatches, and the ordered merge —
// the per-request floor a coordinator pays before any wire latency.
func BenchmarkScatterGather(b *testing.B) {
	for _, n := range []int{4} {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			bb := bus.New()
			s := newScatter(bb, "bench", 5*time.Second)
			defer bb.Subscribe(TopicReply, s.handleReply)()
			workers := make([]string, n)
			for i := range workers {
				workers[i] = "w" + strconv.Itoa(i)
			}
			defer bb.Subscribe(TopicFanout, func(env bus.Envelope) {
				var f Fanout
				if bus.DecodePayload(env, &f) != nil {
					return
				}
				bb.Publish(bus.Envelope{Topic: TopicReply, Payload: FanReply{
					Worker: f.Worker, ID: f.ID,
					Control: &control.Reply{Op: control.OpList, OK: true},
				}})
			})()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				replies := s.Fan(workers, func(w, id string) Fanout {
					return Fanout{Worker: w, ID: id, Control: &control.Request{Op: control.OpList}}
				})
				for _, r := range replies {
					if r.Err != "" {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkClusterFanoutTCP is the same gather over real loopback TCP
// bridges: three worker processes' worth of encode/decode and socket round
// trips per operator request — the number a multi-node list or query
// actually costs.
func BenchmarkClusterFanoutTCP(b *testing.B) {
	cb := bus.New()
	s := newScatter(cb, "bench", 10*time.Second)
	defer cb.Subscribe(TopicReply, s.handleReply)()
	srv, err := bus.NewServer("127.0.0.1:0", CoordExportPattern, cb)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	workers := []string{"w1", "w2", "w3"}
	for _, id := range workers {
		id := id
		wb := bus.New()
		client, err := bus.Dial(srv.Addr(), WorkerExportPattern, wb)
		if err != nil {
			b.Fatal(err)
		}
		defer client.Close()
		defer wb.Subscribe(TopicFanout, func(env bus.Envelope) {
			var f Fanout
			if bus.DecodePayload(env, &f) != nil || f.Worker != id {
				return
			}
			wb.Publish(bus.Envelope{Topic: TopicReply, Payload: FanReply{
				Worker: id, ID: f.ID,
				Control: &control.Reply{Op: control.OpList, OK: true},
			}})
		})()
	}

	// One warm-up gather proves every bridge is live before timing starts.
	warm := s.Fan(workers, func(w, id string) Fanout {
		return Fanout{Worker: w, ID: id, Control: &control.Request{Op: control.OpList}}
	})
	for _, r := range warm {
		if r.Err != "" {
			b.Fatalf("warm-up: %s: %s", r.Worker, r.Err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replies := s.Fan(workers, func(w, id string) Fanout {
			return Fanout{Worker: w, ID: id, Control: &control.Request{Op: control.OpList}}
		})
		for _, r := range replies {
			if r.Err != "" {
				b.Fatal(r.Err)
			}
		}
	}
}
