package tsdb

import (
	"sync"
	"time"

	"autoloop/internal/telemetry"
)

// This file is the zero-copy half of the query surface: QueryVisit streams
// samples to a callback while the owning shard's read lock is held, and
// WindowInto/LatestInto fill caller-owned buffers with no per-call
// allocations. The materializing forms (Query, Latest) stay available for
// one-shot reporting; tick-time readers use these.

// valueChunk records where one series' values landed in the output buffer,
// so WindowInto can restore label-key order after visiting in shard order.
type valueChunk struct {
	key    string
	off, n int
}

// latestItem is one series' tail sample plus its ordering key.
type latestItem struct {
	key string
	p   telemetry.Point
}

// visitScratch is the pooled per-call ordering state of WindowInto and
// LatestInto. Matching-series counts are small (a fleet of nodes or OSTs,
// not the whole database), so ordering uses an insertion sort over the
// scratch rather than allocation-heavy sort.Slice closures.
type visitScratch struct {
	chunks []valueChunk
	vals   []float64
	items  []latestItem
}

var visitPool = sync.Pool{New: func() interface{} { return new(visitScratch) }}

// QueryVisit implements telemetry.Querier: it calls visit for every series
// matching (name, matcher) that has at least one sample in [from, to],
// passing the live sample window without copying it. The callback runs under
// the owning shard's read lock: the samples and labels alias store memory,
// are valid only during the call, and must not be retained or mutated. Visit
// order is unspecified.
func (db *DB) QueryVisit(name string, matcher telemetry.Labels, from, to time.Duration, visit telemetry.SeriesVisitor) {
	db.forEachMatch(name, matcher, func(s *memSeries) {
		live := s.live()
		lo, hi := rangeBounds(live, from, to)
		if lo >= hi {
			return
		}
		visit(s.labels, live[lo:hi])
	})
}

// WindowInto implements telemetry.Querier: it appends the values of every
// matching series in [from, to] to buf, concatenated in label-key order (the
// same values, in the same order, that concatenating Query results would
// yield), and returns the extended buffer. Values are copied out under each
// shard's read lock; once buf has capacity the call performs no allocations.
func (db *DB) WindowInto(buf []float64, name string, matcher telemetry.Labels, from, to time.Duration) []float64 {
	sc := visitPool.Get().(*visitScratch)
	sc.chunks = sc.chunks[:0]
	start := len(buf)
	sorted := true
	db.forEachMatch(name, matcher, func(s *memSeries) {
		live := s.live()
		lo, hi := rangeBounds(live, from, to)
		if lo >= hi {
			return
		}
		off := len(buf)
		for _, smp := range live[lo:hi] {
			buf = append(buf, smp.Value)
		}
		if len(sc.chunks) > 0 && s.key < sc.chunks[len(sc.chunks)-1].key {
			sorted = false
		}
		sc.chunks = append(sc.chunks, valueChunk{key: s.key, off: off, n: hi - lo})
	})
	if !sorted {
		// Restore label-key order: stage the appended region, reorder the
		// chunk index, and copy the chunks back in key order.
		sc.vals = append(sc.vals[:0], buf[start:]...)
		ch := sc.chunks
		for i := 1; i < len(ch); i++ {
			c := ch[i]
			j := i - 1
			for j >= 0 && ch[j].key > c.key {
				ch[j+1] = ch[j]
				j--
			}
			ch[j+1] = c
		}
		out := buf[:start]
		for _, c := range ch {
			out = append(out, sc.vals[c.off-start:c.off-start+c.n]...)
		}
		buf = out
	}
	for i := range sc.chunks {
		sc.chunks[i] = valueChunk{}
	}
	visitPool.Put(sc)
	return buf
}

// LatestInto implements telemetry.Querier: it appends the newest point of
// every matching series to buf in label-key order and returns the extended
// buffer. The points' Labels alias the store's canonical (immutable) label
// maps — read-only for callers — which is what makes the call allocation-free
// with a warm buffer, unlike Latest's per-point clones.
func (db *DB) LatestInto(buf []telemetry.Point, name string, matcher telemetry.Labels) []telemetry.Point {
	sc := visitPool.Get().(*visitScratch)
	sc.items = sc.items[:0]
	db.forEachMatch(name, matcher, func(s *memSeries) {
		live := s.live()
		if len(live) == 0 {
			return
		}
		last := live[len(live)-1]
		sc.items = append(sc.items, latestItem{
			key: s.key,
			p:   telemetry.Point{Name: name, Labels: s.labels, Time: last.Time, Value: last.Value},
		})
	})
	its := sc.items
	for i := 1; i < len(its); i++ {
		it := its[i]
		j := i - 1
		for j >= 0 && its[j].key > it.key {
			its[j+1] = its[j]
			j--
		}
		its[j+1] = it
	}
	for i := range its {
		buf = append(buf, its[i].p)
	}
	// Drop label/key references before pooling so the scratch does not pin
	// series metadata of a dead DB.
	for i := range its {
		its[i] = latestItem{}
	}
	visitPool.Put(sc)
	return buf
}
