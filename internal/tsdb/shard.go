package tsdb

import (
	"hash/maphash"
	"sort"
	"sync"
	"time"

	"autoloop/internal/telemetry"
)

// numShards is the lock-stripe width of the store. Series are distributed
// across shards by an order-independent hash of their (name, labels)
// identity, so concurrent appenders touching different series contend on
// different locks. A power of two keeps shard selection a mask; 64 stripes
// keep the collision probability low even for wide parallel ingest while
// full-database queries still only take 64 brief read locks.
const numShards = 64

// labelPair is the inverted-index key for one label: every series carrying
// k=v appears on the posting list of {k, v}. A struct key lets lookups build
// the key without allocating a concatenated string.
type labelPair struct{ k, v string }

// memSeries stores one (name, labels) identity's samples in time order.
// Retention drops samples by advancing head; the dead prefix is compacted
// only once it outgrows the live part, so expiry is O(1) amortized instead
// of copying the whole window on every append.
type memSeries struct {
	name   string
	labels telemetry.Labels
	// key is labels.Key(), computed once at creation; query paths sort
	// results by it without re-canonicalizing the label map.
	key     string
	samples []telemetry.Sample
	head    int // index of the first live sample
	// rollups holds the continuous-rollup states attached to this series,
	// one per registered rule matching the series' metric name.
	rollups []*seriesRollup
}

// live returns the retained samples.
func (s *memSeries) live() []telemetry.Sample { return s.samples[s.head:] }

// truncateBefore drops samples strictly older than cutoff.
func (s *memSeries) truncateBefore(cutoff time.Duration) {
	live := s.live()
	i := sort.Search(len(live), func(i int) bool { return live[i].Time >= cutoff })
	if i == 0 {
		return
	}
	s.head += i
	if s.head > len(s.samples)-s.head {
		n := copy(s.samples, s.samples[s.head:])
		s.samples = s.samples[:n]
		s.head = 0
	}
}

// rangeBounds binary-searches the live window for [from, to], returning the
// half-open sample index range.
func rangeBounds(live []telemetry.Sample, from, to time.Duration) (lo, hi int) {
	lo = sort.Search(len(live), func(i int) bool { return live[i].Time >= from })
	hi = sort.Search(len(live), func(i int) bool { return live[i].Time > to })
	return lo, hi
}

// shard is one lock stripe: a name-indexed series map plus the shard's slice
// of the inverted label index. All fields are guarded by mu.
type shard struct {
	mu sync.RWMutex
	// byName maps metric name -> label key -> series.
	byName map[string]map[string]*memSeries
	// postings maps k=v -> every series (any metric) carrying that label,
	// in creation order. Posting lists only grow: series are never deleted,
	// retention drops samples, not identities.
	postings map[labelPair][]*memSeries
	// byHash maps the series identity hash to its (rarely >1) collision
	// bucket. The append hot path resolves a point to its series through
	// this map without materializing the canonical label-key string, so
	// steady-state ingestion does not allocate.
	byHash map[uint64][]*memSeries
	// appended counts samples stored via this shard; kept under mu instead
	// of a DB-global atomic so parallel appenders do not bounce one counter
	// cache line. Padding rounds the struct to two cache lines so
	// neighbouring shards in the DB's array never share one.
	appended uint64
	_        [9]uint64
}

// lookup resolves a point to its existing series via the identity hash,
// verifying name and labels against hash collisions. Callers must hold at
// least the read lock.
func (sh *shard) lookup(h uint64, p *telemetry.Point) *memSeries {
	for _, s := range sh.byHash[h] {
		if s.name == p.Name && labelsEqual(s.labels, p.Labels) {
			return s
		}
	}
	return nil
}

// labelsEqual reports exact equality of two label sets without allocating.
func labelsEqual(a, b telemetry.Labels) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// candidates returns the cheapest superset of series in this shard that can
// match (name, matcher): the name family map, or the shortest matcher
// posting list if one is shorter. Callers must hold at least the read lock
// and must verify each candidate with s.name == name && s.labels.Matches.
// The bool result is false when the index proves no series can match.
func (sh *shard) candidates(name string, matcher telemetry.Labels) (fams map[string]*memSeries, list []*memSeries, ok bool) {
	fams = sh.byName[name]
	if len(fams) == 0 {
		return nil, nil, false
	}
	for k, v := range matcher {
		pl, have := sh.postings[labelPair{k, v}]
		if !have {
			return nil, nil, false // no series anywhere in the shard has k=v
		}
		if list == nil || len(pl) < len(list) {
			list = pl
		}
	}
	if list != nil && len(list) < len(fams) {
		return nil, list, true
	}
	return fams, nil, true
}

// create inserts a new series for p's identity, registering it in the hash
// map, the inverted index, and on matching rollup rules. Callers must hold
// the write lock and must have checked lookup first; rules must be loaded
// while the lock is held, so a series racing AddRollup either attaches the
// new rule at birth or exists by the time the backfill locks this shard —
// never neither.
func (sh *shard) create(p *telemetry.Point, h uint64, rules []RollupRule, onCreate func(name string)) *memSeries {
	fams := sh.byName[p.Name]
	if fams == nil {
		fams = make(map[string]*memSeries)
		sh.byName[p.Name] = fams
	}
	s := &memSeries{name: p.Name, labels: p.Labels.Clone(), key: p.Labels.Key()}
	fams[s.key] = s
	sh.byHash[h] = append(sh.byHash[h], s)
	for k, v := range s.labels {
		pair := labelPair{k, v}
		sh.postings[pair] = append(sh.postings[pair], s)
	}
	for i := range rules {
		if rules[i].Metric == p.Name {
			s.rollups = append(s.rollups, newSeriesRollup(rules[i]))
		}
	}
	if onCreate != nil {
		onCreate(p.Name)
	}
	return s
}

// hashSeed keys the identity hash for this process. Placement only needs to
// be stable within one DB's lifetime, never across processes.
var hashSeed = maphash.MakeSeed()

// identityOf hashes a point's series identity using the runtime's hardware-
// accelerated string hash. The label part is an order-independent
// (XOR-combined) mix so the map's iteration order never matters and no
// canonical key string has to be allocated; collisions are harmless because
// lookups verify name and labels.
func identityOf(p *telemetry.Point) uint64 {
	h := maphash.String(hashSeed, p.Name)
	var lh uint64
	for k, v := range p.Labels {
		lh ^= pairHash(k, v)
	}
	return mix(h ^ lh)
}

// shardIndex maps an identity hash to its lock stripe.
func shardIndex(h uint64) int { return int(h & (numShards - 1)) }

// pairHash hashes one label pair asymmetrically so swapping key and value
// changes the result.
func pairHash(k, v string) uint64 {
	return mix(maphash.String(hashSeed, k)) ^ maphash.String(hashSeed, v)
}

// mix is a 64-bit finalizer (splitmix64's) spreading entropy into the low
// bits shardIndex masks out.
func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
