package tsdb

import (
	"fmt"
	"testing"
	"time"

	"autoloop/internal/telemetry"
	"autoloop/internal/wal"
)

// BenchmarkJournalOverhead compares the batched ingest path with and
// without a WAL attached, at the default group-commit policy. The wal=off
// row is the in-memory baseline; the wal=on delta is what durability costs
// the caller: point encoding plus a buffered frame append — the write and
// fsync happen on the group-commit goroutine, off the append path. Not part
// of the CI bench gate: at benchmark rates the log sustains >100 MB/s, so
// on a shared box the wal=on row measures disk throughput as much as CPU;
// run locally on fast storage for the overhead ratio (≈1.7× here).
func BenchmarkJournalOverhead(b *testing.B) {
	for _, journaled := range []bool{false, true} {
		b.Run(fmt.Sprintf("wal=%v", journaled), func(b *testing.B) {
			db := New(0)
			if journaled {
				w, err := wal.Open(b.TempDir(), wal.Options{})
				if err != nil {
					b.Fatalf("Open: %v", err)
				}
				defer w.Close()
				db.Journal(w)
			}
			pts := make([]telemetry.Point, 128)
			for i := range pts {
				pts[i] = telemetry.Point{
					Name:   "node.temp.celsius",
					Labels: telemetry.Labels{"node": fmt.Sprintf("node%03d", i), "rack": fmt.Sprintf("r%d", i/16)},
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range pts {
					pts[j].Time = time.Duration(i) * time.Millisecond
					pts[j].Value = float64(i)
				}
				if err := db.AppendBatch(pts); err != nil {
					b.Fatalf("AppendBatch: %v", err)
				}
			}
		})
	}
}
