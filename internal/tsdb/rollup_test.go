package tsdb

import (
	"testing"
	"time"

	"autoloop/internal/telemetry"
)

func TestRollupMatchesDownsample(t *testing.T) {
	db := New(0)
	rule := RollupRule{Metric: "m", Step: 5 * time.Second, Agg: AggMean}
	if err := db.AddRollup(rule); err != nil {
		t.Fatal(err)
	}
	l := telemetry.Labels{"n": "1"}
	for i := 0; i < 23; i++ {
		if err := db.Append(pt("m", l, time.Duration(i)*time.Second, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := db.QueryRollup("m", nil, 5*time.Second, AggMean, 0, time.Hour)
	if !ok || len(got) != 1 {
		t.Fatalf("QueryRollup = %v, %v", got, ok)
	}
	raw, _ := db.QueryOne("m", nil, 0, time.Hour)
	want := Downsample(raw, 5*time.Second, AggMean)
	if len(got[0].Samples) != len(want.Samples) {
		t.Fatalf("rollup has %d buckets, Downsample %d", len(got[0].Samples), len(want.Samples))
	}
	for i := range want.Samples {
		if got[0].Samples[i] != want.Samples[i] {
			t.Errorf("bucket %d: rollup %v, Downsample %v", i, got[0].Samples[i], want.Samples[i])
		}
	}
}

func TestRollupSurvivesRawRetention(t *testing.T) {
	db := New(30 * time.Second) // raw window: 30s
	rule := RollupRule{Metric: "m", Step: 10 * time.Second, Agg: AggMax}
	if err := db.AddRollup(rule); err != nil {
		t.Fatal(err)
	}
	l := telemetry.Labels{"n": "1"}
	for i := 0; i <= 300; i++ {
		if err := db.Append(pt("m", l, time.Duration(i)*time.Second, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	raw := db.Query("m", nil, 0, time.Hour)
	if first := raw[0].Samples[0].Time; first < 270*time.Second {
		t.Fatalf("raw retention kept %v, want >= 270s", first)
	}
	rolled, ok := db.QueryRollup("m", nil, 10*time.Second, AggMax, 0, time.Hour)
	if !ok || len(rolled) != 1 {
		t.Fatalf("QueryRollup = %v, %v", rolled, ok)
	}
	// The first flushed bucket covers t=0..9 (max 9), long expired from raw.
	if got := rolled[0].Samples[0]; got.Time != 10*time.Second || got.Value != 9 {
		t.Errorf("oldest rollup bucket = %v, want max 9 @10s", got)
	}
}

func TestRollupOwnRetention(t *testing.T) {
	db := New(0)
	rule := RollupRule{Metric: "m", Step: 2 * time.Second, Agg: AggLast, Retention: 10 * time.Second}
	if err := db.AddRollup(rule); err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 60; i++ {
		_ = db.Append(pt("m", nil, time.Duration(i)*time.Second, float64(i)))
	}
	rolled, _ := db.QueryRollup("m", nil, 2*time.Second, AggLast, 0, time.Hour)
	if len(rolled) != 1 {
		t.Fatal("series missing")
	}
	first := rolled[0].Samples[0].Time
	if first < 50*time.Second {
		t.Errorf("rollup retention kept bucket at %v, want >= 50s", first)
	}
}

func TestRollupBackfillAndOverwrite(t *testing.T) {
	db := New(0)
	l := telemetry.Labels{"n": "1"}
	for i := 0; i < 8; i++ {
		_ = db.Append(pt("m", l, time.Duration(i)*time.Second, float64(i)))
	}
	// Register after ingestion: existing samples must be replayed.
	if err := db.AddRollup(RollupRule{Metric: "m", Step: 4 * time.Second, Agg: AggSum}); err != nil {
		t.Fatal(err)
	}
	// Overwrite the tail: the open bucket must track the newest value.
	if err := db.Append(pt("m", l, 7*time.Second, 100)); err != nil {
		t.Fatal(err)
	}
	rolled, _ := db.QueryRollup("m", nil, 4*time.Second, AggSum, 0, time.Hour)
	if len(rolled) != 1 || len(rolled[0].Samples) != 2 {
		t.Fatalf("rollup = %v", rolled)
	}
	if got := rolled[0].Samples[0].Value; got != 0+1+2+3 {
		t.Errorf("bucket 0 sum = %v, want 6", got)
	}
	if got := rolled[0].Samples[1].Value; got != 4+5+6+100 {
		t.Errorf("open bucket sum = %v, want 115 (overwrite applied)", got)
	}
}

func TestAddRollupValidation(t *testing.T) {
	db := New(0)
	if err := db.AddRollup(RollupRule{Metric: "", Step: time.Second}); err == nil {
		t.Error("want error for empty metric")
	}
	if err := db.AddRollup(RollupRule{Metric: "m", Step: 0}); err == nil {
		t.Error("want error for zero step")
	}
	rule := RollupRule{Metric: "m", Step: time.Second, Agg: AggMean}
	if err := db.AddRollup(rule); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRollup(rule); err == nil {
		t.Error("want error for duplicate rule")
	}
	if got := len(db.Rollups()); got != 1 {
		t.Errorf("Rollups() = %d rules, want 1", got)
	}
	if _, ok := db.QueryRollup("m", nil, 2*time.Second, AggMean, 0, time.Hour); ok {
		t.Error("unregistered (metric, step, agg) must report ok=false")
	}
}

func TestParseAgg(t *testing.T) {
	for a := AggMean; a <= AggStddev; a++ {
		got, ok := ParseAgg(a.String())
		if !ok || got != a {
			t.Errorf("ParseAgg(%q) = %v, %v", a.String(), got, ok)
		}
	}
	if _, ok := ParseAgg("nope"); ok {
		t.Error("ParseAgg should reject unknown names")
	}
}
