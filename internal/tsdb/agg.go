package tsdb

import (
	"math"
	"sort"
	"time"

	"autoloop/internal/telemetry"
)

// Agg selects an aggregation function for Downsample and Reduce.
type Agg int

// Supported aggregations.
const (
	AggMean Agg = iota
	AggSum
	AggMin
	AggMax
	AggCount
	AggLast
	AggP50
	AggP95
	AggP99
	AggStddev
)

// String implements fmt.Stringer.
func (a Agg) String() string {
	switch a {
	case AggMean:
		return "mean"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggCount:
		return "count"
	case AggLast:
		return "last"
	case AggP50:
		return "p50"
	case AggP95:
		return "p95"
	case AggP99:
		return "p99"
	case AggStddev:
		return "stddev"
	}
	return "unknown"
}

// ParseAgg is the inverse of String: it resolves an aggregation by its wire
// name ("mean", "p95", ...), reporting ok=false for unknown names.
func ParseAgg(name string) (Agg, bool) {
	for a := AggMean; a <= AggStddev; a++ {
		if a.String() == name {
			return a, true
		}
	}
	return 0, false
}

// apply reduces values (may be reordered in place for percentiles).
func (a Agg) apply(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	switch a {
	case AggMean:
		return mean(values)
	case AggSum:
		s := 0.0
		for _, v := range values {
			s += v
		}
		return s
	case AggMin:
		m := values[0]
		for _, v := range values[1:] {
			if v < m {
				m = v
			}
		}
		return m
	case AggMax:
		m := values[0]
		for _, v := range values[1:] {
			if v > m {
				m = v
			}
		}
		return m
	case AggCount:
		return float64(len(values))
	case AggLast:
		return values[len(values)-1]
	case AggP50:
		return Percentile(values, 0.50)
	case AggP95:
		return Percentile(values, 0.95)
	case AggP99:
		return Percentile(values, 0.99)
	case AggStddev:
		return stddev(values)
	}
	return math.NaN()
}

func mean(values []float64) float64 {
	s := 0.0
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

func stddev(values []float64) float64 {
	if len(values) < 2 {
		return 0
	}
	m := mean(values)
	s := 0.0
	for _, v := range values {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(values)-1))
}

// Percentile returns the q-quantile (0 <= q <= 1) of values using linear
// interpolation between order statistics. It copies the input, so the caller's
// slice is left untouched. An empty input yields NaN.
func Percentile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Downsample buckets s into fixed windows of width step aligned to the epoch
// and reduces each non-empty bucket with agg. Bucket timestamps are the
// bucket end, so downsampled points never claim knowledge of the future.
func Downsample(s telemetry.Series, step time.Duration, agg Agg) telemetry.Series {
	if step <= 0 || len(s.Samples) == 0 {
		return s
	}
	out := telemetry.Series{Name: s.Name, Labels: s.Labels}
	var bucket []float64
	bucketIdx := int64(-1)
	flush := func(idx int64) {
		if len(bucket) == 0 {
			return
		}
		end := time.Duration(idx+1) * step
		out.Samples = append(out.Samples, telemetry.Sample{Time: end, Value: agg.apply(bucket)})
		bucket = bucket[:0]
	}
	for _, smp := range s.Samples {
		idx := int64(smp.Time / step)
		if idx != bucketIdx {
			flush(bucketIdx)
			bucketIdx = idx
		}
		bucket = append(bucket, smp.Value)
	}
	flush(bucketIdx)
	return out
}

// Reduce collapses all samples of s in [from, to] to a single value.
func Reduce(s telemetry.Series, agg Agg) float64 {
	return agg.apply(s.Values())
}

// ReduceAcross applies agg to the latest value of each series, answering
// fleet-level questions like "p99 of per-OST latencies right now".
func ReduceAcross(series []telemetry.Series, agg Agg) float64 {
	var values []float64
	for i := range series {
		if last, ok := series[i].Last(); ok {
			values = append(values, last.Value)
		}
	}
	return agg.apply(values)
}

// Rate estimates the per-second rate of change of a monotonically increasing
// counter series over its full range, tolerating equal endpoints by returning
// zero. It is used to turn progress-marker counters into progress rates.
func Rate(s telemetry.Series) float64 {
	n := len(s.Samples)
	if n < 2 {
		return 0
	}
	first, last := s.Samples[0], s.Samples[n-1]
	dt := last.Time - first.Time
	if dt <= 0 {
		return 0
	}
	return (last.Value - first.Value) / dt.Seconds()
}
