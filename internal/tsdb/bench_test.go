package tsdb

import (
	"fmt"
	"testing"
	"time"

	"autoloop/internal/telemetry"
)

// ingestBatch builds one sampling round: 32 nodes × 8 metrics, the shape of
// a holistic monitoring sweep.
func ingestBatch(t time.Duration) []telemetry.Point {
	pts := make([]telemetry.Point, 0, 32*8)
	for n := 0; n < 32; n++ {
		labels := telemetry.Labels{"node": fmt.Sprintf("n%03d", n)}
		for m := 0; m < 8; m++ {
			pts = append(pts, telemetry.Point{
				Name:   fmt.Sprintf("node.metric%d", m),
				Labels: labels,
				Time:   t,
				Value:  float64(n * m),
			})
		}
	}
	return pts
}

// retime advances every point in the pre-built round to tick i, so the timed
// loop measures ingestion, not batch construction.
func retime(pts []telemetry.Point, i int) {
	t := time.Duration(i) * time.Second
	for j := range pts {
		pts[j].Time = t
	}
}

// BenchmarkTelemetryIngest measures one sampling round flowing into the
// TSDB through the batched single-lock path.
func BenchmarkTelemetryIngest(b *testing.B) {
	db := New(time.Hour)
	pts := ingestBatch(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		retime(pts, i)
		if err := db.AppendBatch(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryIngestPerPoint is the pre-batching baseline: one lock
// round-trip per point.
func BenchmarkTelemetryIngestPerPoint(b *testing.B) {
	db := New(time.Hour)
	pts := ingestBatch(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		retime(pts, i)
		for _, p := range pts {
			if err := db.Append(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}
