package tsdb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"autoloop/internal/telemetry"
)

// ingestBatch builds one sampling round: 32 nodes × 8 metrics, the shape of
// a holistic monitoring sweep.
func ingestBatch(t time.Duration) []telemetry.Point {
	pts := make([]telemetry.Point, 0, 32*8)
	for n := 0; n < 32; n++ {
		labels := telemetry.Labels{"node": fmt.Sprintf("n%03d", n)}
		for m := 0; m < 8; m++ {
			pts = append(pts, telemetry.Point{
				Name:   fmt.Sprintf("node.metric%d", m),
				Labels: labels,
				Time:   t,
				Value:  float64(n * m),
			})
		}
	}
	return pts
}

// retime advances every point in the pre-built round to tick i, so the timed
// loop measures ingestion, not batch construction.
func retime(pts []telemetry.Point, i int) {
	t := time.Duration(i) * time.Second
	for j := range pts {
		pts[j].Time = t
	}
}

// BenchmarkTelemetryIngest measures one sampling round flowing into the
// TSDB through the batched single-lock path.
func BenchmarkTelemetryIngest(b *testing.B) {
	db := New(time.Hour)
	pts := ingestBatch(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		retime(pts, i)
		if err := db.AppendBatch(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// highCardSetup ingests a 10k-series fleet (one metric, node+rack labels,
// 8 samples each) into both the sharded DB and the linear-scan reference.
func highCardSetup(b *testing.B, series int) (*DB, *refDB, telemetry.Labels) {
	b.Helper()
	db := New(0)
	ref := newRefDB(0)
	for n := 0; n < series; n++ {
		labels := telemetry.Labels{
			"node": fmt.Sprintf("n%05d", n),
			"rack": fmt.Sprintf("r%03d", n/64),
		}
		for i := 0; i < 8; i++ {
			p := telemetry.Point{Name: "hc.load", Labels: labels, Time: time.Duration(i) * time.Second, Value: float64(n + i)}
			if err := db.Append(p); err != nil {
				b.Fatal(err)
			}
			if err := ref.append(p); err != nil {
				b.Fatal(err)
			}
		}
	}
	// One rack = 64 of the 10k series: a selective matcher.
	return db, ref, telemetry.Labels{"rack": "r003"}
}

// BenchmarkQueryMatcher measures a label-matcher query at 10k-series
// cardinality on the sharded, label-indexed store: the matcher resolves
// through rack=r003's posting lists instead of scanning every series of the
// metric. Compare against BenchmarkQueryMatcherLinear.
func BenchmarkQueryMatcher(b *testing.B) {
	db, _, matcher := highCardSetup(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := db.Query("hc.load", matcher, 0, time.Minute); len(got) != 64 {
			b.Fatalf("matched %d series, want 64", len(got))
		}
	}
}

// BenchmarkQueryMatcherLinear is the pre-sharding baseline: the same query
// answered by a linear scan over all 10k series of the metric.
func BenchmarkQueryMatcherLinear(b *testing.B) {
	_, ref, matcher := highCardSetup(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ref.query("hc.load", matcher, 0, time.Minute); len(got) != 64 {
			b.Fatalf("matched %d series, want 64", len(got))
		}
	}
}

// BenchmarkShardedAppend measures parallel appenders over a high-cardinality
// store: 10k background series plus 1k private series per appender
// goroutine, so writers land on different lock stripes and throughput scales
// with GOMAXPROCS.
func BenchmarkShardedAppend(b *testing.B) {
	db := New(time.Hour)
	for n := 0; n < 10240; n++ {
		labels := telemetry.Labels{"node": fmt.Sprintf("bg%05d", n)}
		if err := db.Append(telemetry.Point{Name: "shard.load", Labels: labels, Value: 1}); err != nil {
			b.Fatal(err)
		}
	}
	var gid atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := gid.Add(1)
		labels := make([]telemetry.Labels, 1024)
		for i := range labels {
			labels[i] = telemetry.Labels{"node": fmt.Sprintf("g%03d.n%04d", g, i)}
		}
		j := 0
		for pb.Next() {
			p := telemetry.Point{
				Name:   "shard.load",
				Labels: labels[j%1024],
				Time:   time.Duration(1+j/1024) * time.Second,
				Value:  float64(j),
			}
			if err := db.Append(p); err != nil {
				b.Fatal(err)
			}
			j++
		}
	})
}

// BenchmarkShardedAppendSingleLock serializes the same parallel workload
// through one global mutex — the pre-sharding locking discipline — so the
// delta to BenchmarkShardedAppend is what the lock stripes buy under
// parallel ingest.
func BenchmarkShardedAppendSingleLock(b *testing.B) {
	db := New(time.Hour)
	for n := 0; n < 10240; n++ {
		labels := telemetry.Labels{"node": fmt.Sprintf("bg%05d", n)}
		if err := db.Append(telemetry.Point{Name: "shard.load", Labels: labels, Value: 1}); err != nil {
			b.Fatal(err)
		}
	}
	var mu sync.Mutex
	var gid atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := gid.Add(1)
		labels := make([]telemetry.Labels, 1024)
		for i := range labels {
			labels[i] = telemetry.Labels{"node": fmt.Sprintf("g%03d.n%04d", g, i)}
		}
		j := 0
		for pb.Next() {
			p := telemetry.Point{
				Name:   "shard.load",
				Labels: labels[j%1024],
				Time:   time.Duration(1+j/1024) * time.Second,
				Value:  float64(j),
			}
			mu.Lock()
			err := db.Append(p)
			mu.Unlock()
			if err != nil {
				b.Fatal(err)
			}
			j++
		}
	})
}

// BenchmarkTelemetryIngestPerPoint is the pre-batching baseline: one lock
// round-trip per point.
func BenchmarkTelemetryIngestPerPoint(b *testing.B) {
	db := New(time.Hour)
	pts := ingestBatch(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		retime(pts, i)
		for _, p := range pts {
			if err := db.Append(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// windowQuerySetup seeds a fleet-shaped store for the window-read
// benchmarks: 16 OSTs × 512 samples, the per-tick Analyze window of the
// storage loop.
func windowQuerySetup(b *testing.B) *DB {
	b.Helper()
	db := New(0)
	for s := 0; s < 16; s++ {
		labels := telemetry.Labels{"ost": fmt.Sprintf("ost%02d", s)}
		for i := 0; i < 512; i++ {
			if err := db.Append(telemetry.Point{
				Name: "pfs.ost.lat_ms", Labels: labels,
				Time: time.Duration(i) * time.Second, Value: float64(i % 37),
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	return db
}

// BenchmarkWindowQuery measures one tick-time window read over the fleet:
// the materializing Query path (fresh []Series, label clones, and sample
// copies per call) against the zero-copy fill-buffer WindowInto path (same
// values, caller-owned buffer, zero allocations). The "into" row is the
// gated number.
func BenchmarkWindowQuery(b *testing.B) {
	b.Run("materialize", func(b *testing.B) {
		db := windowQuerySetup(b)
		b.ReportAllocs()
		b.ResetTimer()
		total := 0
		for i := 0; i < b.N; i++ {
			var n int
			for _, s := range db.Query("pfs.ost.lat_ms", nil, 0, time.Hour) {
				n += len(s.Samples)
			}
			total = n
		}
		if total != 16*512 {
			b.Fatalf("read %d samples, want %d", total, 16*512)
		}
	})
	b.Run("into", func(b *testing.B) {
		db := windowQuerySetup(b)
		var buf []float64
		buf = db.WindowInto(buf[:0], "pfs.ost.lat_ms", nil, 0, time.Hour)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = db.WindowInto(buf[:0], "pfs.ost.lat_ms", nil, 0, time.Hour)
		}
		if len(buf) != 16*512 {
			b.Fatalf("read %d values, want %d", len(buf), 16*512)
		}
	})
	b.Run("visit", func(b *testing.B) {
		db := windowQuerySetup(b)
		var total int
		visit := telemetry.SeriesVisitor(func(_ telemetry.Labels, samples []telemetry.Sample) {
			total += len(samples)
		})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			total = 0
			db.QueryVisit("pfs.ost.lat_ms", nil, 0, time.Hour, visit)
		}
		if total != 16*512 {
			b.Fatalf("visited %d samples, want %d", total, 16*512)
		}
	})
}
