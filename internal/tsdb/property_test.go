package tsdb

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"autoloop/internal/telemetry"
)

// refDB is the trivial single-map, linear-scan reference implementation of
// the store's visible semantics — the pre-sharding design kept as an oracle.
// The property test below drives it in lockstep with the sharded DB and
// demands identical answers; it is the tsdb analogue of the bus package's
// FuzzTopicMatch-vs-naive-matcher check.
type refDB struct {
	byName    map[string]map[string]*refSeries
	retention time.Duration
	appended  uint64
	rules     []RollupRule
}

type refSeries struct {
	name   string
	labels telemetry.Labels
	// samples is the retained window; all keeps the full history so rollup
	// answers can be recomputed offline with Downsample.
	samples []telemetry.Sample
	all     []telemetry.Sample
}

func newRefDB(retention time.Duration) *refDB {
	return &refDB{byName: make(map[string]map[string]*refSeries), retention: retention}
}

func (db *refDB) append(p telemetry.Point) error {
	if p.Name == "" {
		return fmt.Errorf("ref: empty metric name")
	}
	if math.IsNaN(p.Value) {
		return fmt.Errorf("ref: NaN")
	}
	fams := db.byName[p.Name]
	if fams == nil {
		fams = make(map[string]*refSeries)
		db.byName[p.Name] = fams
	}
	key := p.Labels.Key()
	s := fams[key]
	if s == nil {
		s = &refSeries{name: p.Name, labels: p.Labels.Clone()}
		fams[key] = s
	}
	if n := len(s.samples); n > 0 {
		last := s.samples[n-1].Time
		if p.Time < last {
			return fmt.Errorf("ref: out of order")
		}
		if p.Time == last {
			s.samples[n-1].Value = p.Value
			s.all[len(s.all)-1].Value = p.Value
			return nil
		}
	}
	s.samples = append(s.samples, telemetry.Sample{Time: p.Time, Value: p.Value})
	s.all = append(s.all, telemetry.Sample{Time: p.Time, Value: p.Value})
	db.appended++
	if db.retention > 0 {
		cutoff := p.Time - db.retention
		i := 0
		for i < len(s.samples) && s.samples[i].Time < cutoff {
			i++
		}
		s.samples = s.samples[i:]
	}
	return nil
}

// query is the linear-scan baseline: walk every series of the metric, match
// labels one by one, then filter samples by a linear time scan.
func (db *refDB) query(name string, matcher telemetry.Labels, from, to time.Duration) []telemetry.Series {
	var out []telemetry.Series
	for _, s := range db.sorted(name) {
		if !s.labels.Matches(matcher) {
			continue
		}
		var cp []telemetry.Sample
		for _, smp := range s.samples {
			if smp.Time >= from && smp.Time <= to {
				cp = append(cp, smp)
			}
		}
		if len(cp) == 0 {
			continue
		}
		out = append(out, telemetry.Series{Name: name, Labels: s.labels.Clone(), Samples: cp})
	}
	return out
}

func (db *refDB) latest(name string, matcher telemetry.Labels) []telemetry.Point {
	var out []telemetry.Point
	for _, s := range db.sorted(name) {
		if !s.labels.Matches(matcher) || len(s.samples) == 0 {
			continue
		}
		last := s.samples[len(s.samples)-1]
		out = append(out, telemetry.Point{Name: name, Labels: s.labels.Clone(), Time: last.Time, Value: last.Value})
	}
	return out
}

func (db *refDB) latestValue(name string, matcher telemetry.Labels) (float64, bool) {
	pts := db.latest(name, matcher)
	if len(pts) == 0 {
		return 0, false
	}
	return pts[len(pts)-1].Value, true
}

// sorted returns the metric's series in label-key order.
func (db *refDB) sorted(name string) []*refSeries {
	fams := db.byName[name]
	keys := make([]string, 0, len(fams))
	for k := range fams {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*refSeries, len(keys))
	for i, k := range keys {
		out[i] = fams[k]
	}
	return out
}

// queryRollup recomputes the rollup offline: Downsample over the full
// (untruncated) history of each matching series — valid because the
// workload registers retention-affected rules before ingestion starts, so
// the continuous engine saw every sample too.
func (db *refDB) queryRollup(name string, matcher telemetry.Labels, step time.Duration, agg Agg, from, to time.Duration) []telemetry.Series {
	var out []telemetry.Series
	for _, s := range db.sorted(name) {
		if !s.labels.Matches(matcher) {
			continue
		}
		full := Downsample(telemetry.Series{Name: name, Labels: s.labels.Clone(), Samples: s.all}, step, agg)
		var cp []telemetry.Sample
		for _, smp := range full.Samples {
			if smp.Time >= from && smp.Time <= to {
				cp = append(cp, smp)
			}
		}
		if len(cp) == 0 {
			continue
		}
		out = append(out, telemetry.Series{Name: name, Labels: full.Labels, Samples: cp})
	}
	return out
}

// workloadLabels is the label pool the randomized workload draws from.
func workloadLabels(rng *rand.Rand) telemetry.Labels {
	l := telemetry.Labels{"node": fmt.Sprintf("n%d", rng.Intn(8))}
	if rng.Intn(3) == 0 {
		l["job"] = fmt.Sprintf("j%d", rng.Intn(4))
	}
	if rng.Intn(5) == 0 {
		l["rack"] = fmt.Sprintf("r%d", rng.Intn(2))
	}
	return l
}

func workloadMatcher(rng *rand.Rand) telemetry.Labels {
	switch rng.Intn(4) {
	case 0:
		return nil
	case 1:
		return telemetry.Labels{"node": fmt.Sprintf("n%d", rng.Intn(8))}
	case 2:
		return telemetry.Labels{"job": fmt.Sprintf("j%d", rng.Intn(4))}
	default:
		return telemetry.Labels{"node": fmt.Sprintf("n%d", rng.Intn(8)), "rack": fmt.Sprintf("r%d", rng.Intn(2))}
	}
}

// TestShardedMatchesReference runs randomized append/query/retention/rollup
// workloads against the sharded DB and the single-map reference and demands
// identical results throughout.
func TestShardedMatchesReference(t *testing.T) {
	retentions := []time.Duration{0, 0, 45 * time.Second, 3 * time.Minute}
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			retention := retentions[rng.Intn(len(retentions))]
			db := New(retention)
			ref := newRefDB(retention)

			// Rules whose equivalence depends on seeing every raw sample are
			// registered before ingestion; a mean rule is added mid-workload
			// in retention-free runs to exercise backfill.
			upfront := []RollupRule{
				{Metric: "m0", Step: 5 * time.Second, Agg: AggMax},
				{Metric: "m1", Step: 7 * time.Second, Agg: AggP95},
			}
			for _, r := range upfront {
				if err := db.AddRollup(r); err != nil {
					t.Fatal(err)
				}
				ref.rules = append(ref.rules, r)
			}
			lateRule := RollupRule{Metric: "m0", Step: 3 * time.Second, Agg: AggMean}

			var now time.Duration
			names := []string{"m0", "m1", "m2"}
			const ops = 3000
			for op := 0; op < ops; op++ {
				if retention == 0 && op == ops/2 {
					if err := db.AddRollup(lateRule); err != nil {
						t.Fatal(err)
					}
					ref.rules = append(ref.rules, lateRule)
				}
				switch r := rng.Intn(100); {
				case r < 55: // single append
					p := telemetry.Point{
						Name:   names[rng.Intn(len(names))],
						Labels: workloadLabels(rng),
						Time:   now - time.Duration(rng.Intn(4))*time.Second, // occasionally out of order
						Value:  float64(rng.Intn(1000)) / 10,
					}
					if rng.Intn(50) == 0 {
						p.Name = "" // both must reject
					}
					if rng.Intn(50) == 0 {
						p.Value = math.NaN()
					}
					gotErr := db.Append(p) != nil
					wantErr := ref.append(p) != nil
					if gotErr != wantErr {
						t.Fatalf("op %d: append error mismatch: sharded=%v ref=%v for %v", op, gotErr, wantErr, p)
					}
					now += time.Duration(rng.Intn(3)) * time.Second
				case r < 70: // batch append
					n := 1 + rng.Intn(12)
					pts := make([]telemetry.Point, n)
					for i := range pts {
						pts[i] = telemetry.Point{
							Name:   names[rng.Intn(len(names))],
							Labels: workloadLabels(rng),
							Time:   now,
							Value:  float64(rng.Intn(1000)) / 10,
						}
						now += time.Duration(rng.Intn(2)) * time.Second
					}
					gotErr := db.AppendBatch(pts) != nil
					var wantErr bool
					for _, p := range pts {
						if ref.append(p) != nil {
							wantErr = true
						}
					}
					if gotErr != wantErr {
						t.Fatalf("op %d: batch error mismatch", op)
					}
				case r < 85: // range query
					name := names[rng.Intn(len(names))]
					matcher := workloadMatcher(rng)
					from := time.Duration(rng.Intn(int(now/time.Second)+1)) * time.Second
					to := from + time.Duration(rng.Intn(120))*time.Second
					got := db.Query(name, matcher, from, to)
					want := ref.query(name, matcher, from, to)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("op %d: query(%s, %v, %v, %v) mismatch:\n got %v\nwant %v", op, name, matcher, from, to, got, want)
					}
				case r < 95: // instant lookups
					name := names[rng.Intn(len(names))]
					matcher := workloadMatcher(rng)
					if !reflect.DeepEqual(db.Latest(name, matcher), ref.latest(name, matcher)) {
						t.Fatalf("op %d: Latest mismatch", op)
					}
					gv, gok := db.LatestValue(name, matcher)
					wv, wok := ref.latestValue(name, matcher)
					if gok != wok || gv != wv {
						t.Fatalf("op %d: LatestValue = (%v, %v), want (%v, %v)", op, gv, gok, wv, wok)
					}
				default: // metadata
					if got, want := db.Appended(), ref.appended; got != want {
						t.Fatalf("op %d: Appended = %d, want %d", op, got, want)
					}
					refSeriesCount := 0
					for _, fams := range ref.byName {
						refSeriesCount += len(fams)
					}
					if got := db.NumSeries(); got != refSeriesCount {
						t.Fatalf("op %d: NumSeries = %d, want %d", op, got, refSeriesCount)
					}
				}
			}

			// Final sweep: every metric's full window, plus every rollup.
			for _, name := range names {
				got := db.Query(name, nil, 0, now+time.Hour)
				want := ref.query(name, nil, 0, now+time.Hour)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("final query %s mismatch:\n got %v\nwant %v", name, got, want)
				}
			}
			for _, rule := range ref.rules {
				got, ok := db.QueryRollup(rule.Metric, nil, rule.Step, rule.Agg, 0, now+time.Hour)
				if !ok {
					t.Fatalf("rollup %v not registered on sharded DB", rule)
				}
				want := ref.queryRollup(rule.Metric, nil, rule.Step, rule.Agg, 0, now+time.Hour)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("rollup %v mismatch:\n got %v\nwant %v", rule, got, want)
				}
			}
		})
	}
}
