package tsdb

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"autoloop/internal/telemetry"
	"autoloop/internal/wal"
)

// Write-ahead journaling. When a Journaler is attached, every accepted
// append (including an equal-timestamp overwrite, which mutates the tail) is
// encoded and emitted as a wal.KindTSDBAppend record while the owning
// shard's write lock is still held, so the per-series record order in the
// log is exactly the apply order even under concurrent appenders. Rejected
// points (empty name, NaN, out-of-order) never reach the journal: the log
// holds only mutations, and replaying it cannot fail validation.
//
// Recovery is the inverse: RestoreSnapshot rebuilds the store from the
// newest snapshot, then RestoreFrom (or ApplyWAL per record) replays the WAL
// tail. Both must run before Journal is attached — replay goes through a
// non-journaling apply path, but appends racing a restore would interleave
// journal records with replayed ones.

// Journaler is the sink accepted appends are logged to; *wal.WAL satisfies
// it. Append must be safe for concurrent use and must preserve call order
// per caller (the WAL's group-commit buffer does).
type Journaler interface {
	Append(kind uint8, payload []byte) (uint64, error)
}

// Journal attaches the write-ahead journal. It must be called before
// ingestion starts (and after any RestoreSnapshot/RestoreFrom): the field is
// read on the append hot path without synchronization, relying on the
// happens-before edge of starting the appender goroutines.
func (db *DB) Journal(j Journaler) { db.journal = j }

// encBuf is the pooled encode scratch of the journal hot path; the buffer is
// reused across appends so a steady-state journaled append allocates nothing.
type encBuf struct{ b []byte }

var encScratch = sync.Pool{New: func() interface{} { return new(encBuf) }}

// appendPointEnc appends one point's binary journal encoding to buf:
//
//	uvarint len(name), name,
//	uvarint len(labels), then per label uvarint len(k), k, uvarint len(v), v,
//	varint time (ns), 8B little-endian IEEE-754 value.
//
// Label order is the map's iteration order — the decoder rebuilds a map, so
// the order carries no meaning and sorting would cost the hot path an
// allocation.
func appendPointEnc(buf []byte, p *telemetry.Point) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(p.Name)))
	buf = append(buf, p.Name...)
	buf = binary.AppendUvarint(buf, uint64(len(p.Labels)))
	for k, v := range p.Labels {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, v...)
	}
	buf = binary.AppendVarint(buf, int64(p.Time))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Value))
	return buf
}

// decodeString reads one uvarint-prefixed string.
func decodeString(buf []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || n > uint64(len(buf)-sz) {
		return "", nil, fmt.Errorf("tsdb: journal decode: truncated string")
	}
	return string(buf[sz : sz+int(n)]), buf[sz+int(n):], nil
}

// decodePointEnc decodes one point, returning the remaining buffer.
func decodePointEnc(buf []byte) (telemetry.Point, []byte, error) {
	var p telemetry.Point
	var err error
	if p.Name, buf, err = decodeString(buf); err != nil {
		return p, nil, err
	}
	nl, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return p, nil, fmt.Errorf("tsdb: journal decode: truncated label count")
	}
	buf = buf[sz:]
	if nl > 0 {
		p.Labels = make(telemetry.Labels, nl)
		for i := uint64(0); i < nl; i++ {
			var k, v string
			if k, buf, err = decodeString(buf); err != nil {
				return p, nil, err
			}
			if v, buf, err = decodeString(buf); err != nil {
				return p, nil, err
			}
			p.Labels[k] = v
		}
	}
	t, sz := binary.Varint(buf)
	if sz <= 0 {
		return p, nil, fmt.Errorf("tsdb: journal decode: truncated time")
	}
	buf = buf[sz:]
	if len(buf) < 8 {
		return p, nil, fmt.Errorf("tsdb: journal decode: truncated value")
	}
	p.Time = time.Duration(t)
	p.Value = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	return p, buf[8:], nil
}

// journalLocked encodes and emits one accepted point. The caller holds the
// owning shard's write lock; wal.Append nests its own mutex inside the shard
// lock (never the reverse), so the order is deadlock-free.
func (db *DB) journalLocked(p *telemetry.Point) error {
	eb := encScratch.Get().(*encBuf)
	eb.b = appendPointEnc(eb.b[:0], p)
	_, err := db.journal.Append(wal.KindTSDBAppend, eb.b)
	encScratch.Put(eb)
	return err
}

// ApplyWAL applies one wal.KindTSDBAppend record payload (one or more
// encoded points). A point strictly behind its series' tail is skipped
// rather than rejected, and one equal to the tail re-applies as an
// idempotent overwrite: snapshots are taken under live ingestion, so the
// WAL tail being replayed may overlap records the snapshot already
// reflects, and per-series log order equals apply order, which makes
// re-application a no-op.
func (db *DB) ApplyWAL(payload []byte) error {
	for len(payload) > 0 {
		p, rest, err := decodePointEnc(payload)
		if err != nil {
			return err
		}
		h := identityOf(&p)
		sh := &db.shards[shardIndex(h)]
		sh.mu.Lock()
		err = db.replayLocked(sh, &p, h)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
		payload = rest
	}
	return nil
}

// replayLocked applies one journaled point under the shard lock, skipping
// points the snapshot this replay tails already covers.
func (db *DB) replayLocked(sh *shard, p *telemetry.Point, h uint64) error {
	if s := sh.lookup(h, p); s != nil {
		if n := len(s.samples); n > 0 && p.Time < s.samples[n-1].Time {
			return nil // already reflected by the snapshot
		}
	}
	return db.appendLocked(sh, p, h)
}

// ReplaySource is the record iterator RestoreFrom consumes; *wal.Reader
// satisfies it.
type ReplaySource interface {
	Next() (wal.Record, error)
}

// RestoreFrom replays every wal.KindTSDBAppend record from src into the
// database, ignoring records of other kinds, until the source reports a
// clean end (io.EOF). Corruption and decode errors are returned as-is. It
// must run before Journal is attached.
func (db *DB) RestoreFrom(src ReplaySource) error {
	for {
		rec, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if rec.Kind != wal.KindTSDBAppend {
			continue
		}
		if err := db.ApplyWAL(rec.Payload); err != nil {
			return fmt.Errorf("tsdb: replay seq %d: %w", rec.Seq, err)
		}
	}
}
