package tsdb

import (
	"testing"
	"time"

	"autoloop/internal/telemetry"
)

func TestAppendBatchMatchesPerPointAppend(t *testing.T) {
	batched := New(0)
	perPoint := New(0)
	var pts []telemetry.Point
	for i := 0; i < 10; i++ {
		pts = append(pts,
			telemetry.Point{Name: "a", Labels: telemetry.Labels{"n": "1"}, Time: time.Duration(i) * time.Second, Value: float64(i)},
			telemetry.Point{Name: "b", Time: time.Duration(i) * time.Second, Value: float64(-i)},
		)
	}
	if err := batched.AppendBatch(pts); err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := perPoint.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if batched.Appended() != perPoint.Appended() {
		t.Errorf("Appended: batched %d, per-point %d", batched.Appended(), perPoint.Appended())
	}
	for _, name := range []string{"a", "b"} {
		got := batched.Query(name, nil, 0, time.Hour)
		want := perPoint.Query(name, nil, 0, time.Hour)
		if len(got) != len(want) {
			t.Fatalf("%s: %d series vs %d", name, len(got), len(want))
		}
		for i := range got {
			if len(got[i].Samples) != len(want[i].Samples) {
				t.Fatalf("%s[%d]: %d samples vs %d", name, i, len(got[i].Samples), len(want[i].Samples))
			}
			for j := range got[i].Samples {
				if got[i].Samples[j] != want[i].Samples[j] {
					t.Fatalf("%s[%d][%d]: %v vs %v", name, i, j, got[i].Samples[j], want[i].Samples[j])
				}
			}
		}
	}
}

func TestAppendBatchFirstErrorAttemptsAll(t *testing.T) {
	db := New(0)
	pts := []telemetry.Point{
		{Name: "ok", Time: time.Second, Value: 1},
		{Name: "", Time: time.Second, Value: 2}, // invalid: empty name
		{Name: "ok", Time: 2 * time.Second, Value: 3},
	}
	if err := db.AppendBatch(pts); err == nil {
		t.Fatal("want error for empty metric name")
	}
	s, ok := db.QueryOne("ok", nil, 0, time.Hour)
	if !ok || len(s.Samples) != 2 {
		t.Errorf("valid points not all appended: %+v", s)
	}
	if err := db.AppendBatch(nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}
