package tsdb

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"autoloop/internal/telemetry"
)

// fillRandom seeds db (and returns the points) with a randomized multi-shard
// layout: several metrics, fleet-style label sets, random sample counts.
func fillRandom(t *testing.T, db *DB, rng *rand.Rand) {
	t.Helper()
	for m := 0; m < 4; m++ {
		name := fmt.Sprintf("m%d", m)
		series := 1 + rng.Intn(24)
		for s := 0; s < series; s++ {
			labels := telemetry.Labels{"node": fmt.Sprintf("n%03d", s)}
			if rng.Intn(3) == 0 {
				labels["rack"] = fmt.Sprintf("r%d", s%3)
			}
			samples := rng.Intn(50)
			for i := 0; i < samples; i++ {
				if err := db.Append(telemetry.Point{
					Name: name, Labels: labels,
					Time:  time.Duration(i) * time.Second,
					Value: rng.NormFloat64(),
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestWindowIntoMatchesQuery checks, over randomized stores, matchers, and
// ranges, that WindowInto appends exactly the concatenation of Query's
// series values in label-key order, and QueryVisit visits exactly Query's
// series set.
func TestWindowIntoMatchesQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		db := New(0)
		fillRandom(t, db, rng)
		matchers := []telemetry.Labels{nil, {"rack": "r1"}, {"node": "n002"}, {"nope": "x"}}
		for m := 0; m < 4; m++ {
			name := fmt.Sprintf("m%d", m)
			matcher := matchers[rng.Intn(len(matchers))]
			from := time.Duration(rng.Intn(30)) * time.Second
			to := from + time.Duration(rng.Intn(30))*time.Second

			var want []float64
			ss := db.Query(name, matcher, from, to)
			for _, s := range ss {
				want = append(want, s.Values()...)
			}
			got := db.WindowInto(nil, name, matcher, from, to)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("trial %d %s%v [%v,%v]: WindowInto=%v want %v", trial, name, matcher, from, to, got, want)
			}
			// Appending must preserve the prefix.
			prefix := []float64{1, 2, 3}
			got2 := db.WindowInto(prefix, name, matcher, from, to)
			if fmt.Sprint(got2[:3]) != fmt.Sprint(prefix) || fmt.Sprint(got2[3:]) != fmt.Sprint(want) {
				t.Fatalf("trial %d: WindowInto with prefix = %v", trial, got2)
			}

			// QueryVisit covers the same series set with the same samples.
			visited := map[string][]telemetry.Sample{}
			db.QueryVisit(name, matcher, from, to, func(labels telemetry.Labels, samples []telemetry.Sample) {
				cp := make([]telemetry.Sample, len(samples))
				copy(cp, samples)
				visited[labels.Key()] = cp
			})
			if len(visited) != len(ss) {
				t.Fatalf("trial %d: QueryVisit visited %d series, Query returned %d", trial, len(visited), len(ss))
			}
			for _, s := range ss {
				if fmt.Sprint(visited[s.Labels.Key()]) != fmt.Sprint(s.Samples) {
					t.Fatalf("trial %d: QueryVisit samples for %v = %v, want %v",
						trial, s.Labels, visited[s.Labels.Key()], s.Samples)
				}
			}
		}
	}
}

// TestLatestIntoMatchesLatest checks LatestInto against Latest on randomized
// stores: same points, same label-key order, prefix preserved.
func TestLatestIntoMatchesLatest(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		db := New(0)
		fillRandom(t, db, rng)
		for m := 0; m < 4; m++ {
			name := fmt.Sprintf("m%d", m)
			matcher := []telemetry.Labels{nil, {"rack": "r0"}}[rng.Intn(2)]
			want := db.Latest(name, matcher)
			got := db.LatestInto(nil, name, matcher)
			if len(got) != len(want) {
				t.Fatalf("trial %d: LatestInto %d points, Latest %d", trial, len(got), len(want))
			}
			for i := range want {
				if got[i].Name != want[i].Name || got[i].Time != want[i].Time || got[i].Value != want[i].Value ||
					got[i].Labels.Key() != want[i].Labels.Key() {
					t.Fatalf("trial %d point %d: %+v want %+v", trial, i, got[i], want[i])
				}
			}
			if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a].Labels.Key() < got[b].Labels.Key() }) {
				t.Fatalf("trial %d: LatestInto not in label-key order", trial)
			}
		}
	}
}

// TestVisitSurfaceAllocs is the steady-state allocation gate for the
// fill-buffer query surface: with warm buffers, WindowInto, LatestInto, and
// QueryVisit allocate nothing per call.
func TestVisitSurfaceAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the gate runs in the non-race jobs")
	}
	db := New(0)
	for s := 0; s < 16; s++ {
		labels := telemetry.Labels{"ost": fmt.Sprintf("ost%02d", s)}
		for i := 0; i < 256; i++ {
			if err := db.Append(telemetry.Point{Name: "lat", Labels: labels, Time: time.Duration(i) * time.Second, Value: float64(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	var vals []float64
	var pts []telemetry.Point
	// Warm the buffers and the pooled scratch once.
	vals = db.WindowInto(vals[:0], "lat", nil, 0, time.Hour)
	pts = db.LatestInto(pts[:0], "lat", nil)

	if allocs := testing.AllocsPerRun(100, func() {
		vals = db.WindowInto(vals[:0], "lat", nil, 0, time.Hour)
	}); allocs != 0 {
		t.Errorf("WindowInto allocates %v per call; want 0", allocs)
	}
	if len(vals) != 16*256 {
		t.Fatalf("WindowInto returned %d values, want %d", len(vals), 16*256)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		pts = db.LatestInto(pts[:0], "lat", nil)
	}); allocs != 0 {
		t.Errorf("LatestInto allocates %v per call; want 0", allocs)
	}
	var sum float64
	visit := telemetry.SeriesVisitor(func(_ telemetry.Labels, samples []telemetry.Sample) {
		sum += samples[len(samples)-1].Value
	})
	if allocs := testing.AllocsPerRun(100, func() {
		db.QueryVisit("lat", nil, 0, time.Hour, visit)
	}); allocs != 0 {
		t.Errorf("QueryVisit allocates %v per call; want 0", allocs)
	}
	if sum == 0 {
		t.Error("QueryVisit visited nothing")
	}
}
