package tsdb

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"autoloop/internal/telemetry"
)

// Snapshot serialization. A snapshot captures everything replay cannot
// cheaply rebuild: every series' live raw samples plus the full state of its
// continuous rollups — the flushed rollup samples AND the open bucket's raw
// values. Rollup state must be explicit because rollup retention outlives
// raw retention: by the time a snapshot is taken, the samples that produced
// an old rollup bucket are long expired, so re-observing raw samples could
// never reconstruct it.
//
// Shard placement is NOT serialized: the identity hash is seeded per process,
// so a restored series may land on a different shard than it occupied in the
// previous run. That is invisible to callers — every query path sorts its
// results by series label key. The Appended counter is carried as a single
// total and credited to shard 0 on restore.

// seriesSnap is one series' serialized state.
type seriesSnap struct {
	Name    string             `json:"name"`
	Labels  telemetry.Labels   `json:"labels,omitempty"`
	Samples []telemetry.Sample `json:"samples,omitempty"`
	Rollups []rollupSnap       `json:"rollups,omitempty"`
}

// rollupSnap is one seriesRollup's serialized state, keyed by the rule's
// identity (metric is the owning series' name).
type rollupSnap struct {
	Step      time.Duration      `json:"step"`
	Agg       Agg                `json:"agg"`
	Retention time.Duration      `json:"retention,omitempty"`
	Bucket    int64              `json:"bucket"`
	Values    []float64          `json:"values,omitempty"`
	Samples   []telemetry.Sample `json:"samples,omitempty"`
}

// dbSnap is the whole database's serialized state.
type dbSnap struct {
	Appended uint64       `json:"appended"`
	Series   []seriesSnap `json:"series,omitempty"`
}

// Snapshot serializes the database: every series' live samples and complete
// rollup states, plus the appended counter. Series are sorted by (name,
// label key) so the bytes are deterministic for a given logical state. Each
// shard is read-locked briefly in turn; taken under live ingestion the
// snapshot is a consistent-per-series (not globally instantaneous) cut,
// which recovery's skip-behind-tail replay is designed for.
func (db *DB) Snapshot() ([]byte, error) {
	var snap dbSnap
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		snap.Appended += sh.appended
		for name, fams := range sh.byName {
			for _, s := range fams {
				ss := seriesSnap{Name: name, Labels: s.labels.Clone()}
				if live := s.live(); len(live) > 0 {
					ss.Samples = append([]telemetry.Sample(nil), live...)
				}
				for _, sr := range s.rollups {
					rs := rollupSnap{
						Step:      sr.rule.Step,
						Agg:       sr.rule.Agg,
						Retention: sr.rule.Retention,
						Bucket:    sr.bucket,
					}
					if len(sr.values) > 0 {
						rs.Values = append([]float64(nil), sr.values...)
					}
					if live := sr.live(); len(live) > 0 {
						rs.Samples = append([]telemetry.Sample(nil), live...)
					}
					ss.Rollups = append(ss.Rollups, rs)
				}
				snap.Series = append(snap.Series, ss)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(snap.Series, func(a, b int) bool {
		sa, sb := &snap.Series[a], &snap.Series[b]
		if sa.Name != sb.Name {
			return sa.Name < sb.Name
		}
		return sa.Labels.Key() < sb.Labels.Key()
	})
	return json.Marshal(&snap)
}

// RestoreSnapshot rebuilds the database from a Snapshot payload. It must be
// called on a freshly created DB — after the application has registered its
// rollup rules and before any appends, replay, or Journal attach. Rollup
// states recorded in the snapshot are restored verbatim; a registered rule
// the snapshot does not know (added since the snapshot was taken) is
// backfilled from the restored raw samples, exactly as AddRollup would.
func (db *DB) RestoreSnapshot(data []byte) error {
	var snap dbSnap
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("tsdb: restore snapshot: %w", err)
	}
	rules := db.loadRules()
	for si := range snap.Series {
		ss := &snap.Series[si]
		if ss.Name == "" {
			return fmt.Errorf("tsdb: restore snapshot: series %d has no name", si)
		}
		p := telemetry.Point{Name: ss.Name, Labels: ss.Labels}
		h := identityOf(&p)
		sh := &db.shards[shardIndex(h)]
		sh.mu.Lock()
		if sh.lookup(h, &p) != nil {
			sh.mu.Unlock()
			return fmt.Errorf("tsdb: restore snapshot: duplicate series %s%s", ss.Name, ss.Labels)
		}
		// Create without attaching rules: rollup states come from the
		// snapshot, not from fresh (empty) rule instances.
		s := sh.create(&p, h, nil, db.noteName)
		s.samples = ss.Samples
		for _, rs := range ss.Rollups {
			s.rollups = append(s.rollups, &seriesRollup{
				rule:    RollupRule{Metric: ss.Name, Step: rs.Step, Agg: rs.Agg, Retention: rs.Retention},
				bucket:  rs.Bucket,
				values:  rs.Values,
				samples: rs.Samples,
			})
		}
		// Backfill registered rules the snapshot predates.
		for i := range rules {
			if rules[i].Metric != ss.Name || s.hasRollup(rules[i]) {
				continue
			}
			sr := newSeriesRollup(rules[i])
			for _, smp := range s.live() {
				sr.observe(smp.Time, smp.Value, false)
			}
			s.rollups = append(s.rollups, sr)
		}
		sh.mu.Unlock()
	}
	sh0 := &db.shards[0]
	sh0.mu.Lock()
	sh0.appended += snap.Appended
	sh0.mu.Unlock()
	return nil
}
