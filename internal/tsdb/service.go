package tsdb

import (
	"encoding/json"
	"fmt"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/telemetry"
)

// Topics of the bus query surface: clients publish QueryRequest payloads on
// QueryTopic (in process or over the cmd/modad TCP bridge, which republishes
// client lines locally) and receive QueryResponse payloads on ResultTopic.
const (
	QueryTopic  = "tsdb.query"
	ResultTopic = "tsdb.result"
)

// QueryRequest is the wire form of one query against a served DB. Times are
// virtual milliseconds since the simulation epoch. Step selects a registered
// rollup (with Agg naming the rule's aggregation); Latest asks for each
// matching series' newest point instead of a range.
type QueryRequest struct {
	ID     string           `json:"id,omitempty"`
	Metric string           `json:"metric"`
	Match  telemetry.Labels `json:"match,omitempty"`
	FromMS int64            `json:"from_ms,omitempty"`
	ToMS   int64            `json:"to_ms,omitempty"`
	StepMS int64            `json:"step_ms,omitempty"`
	Agg    string           `json:"agg,omitempty"`
	Latest bool             `json:"latest,omitempty"`
}

// WireSample is one (time, value) pair of a response series.
type WireSample struct {
	TimeMS int64   `json:"t_ms"`
	Value  float64 `json:"v"`
}

// WireSeries is one series of a response.
type WireSeries struct {
	Metric  string           `json:"metric"`
	Labels  telemetry.Labels `json:"labels,omitempty"`
	Samples []WireSample     `json:"samples"`
}

// QueryResponse answers one QueryRequest, echoing its ID.
//
// A single-store response never sets Partial or Failed. A cluster
// coordinator merging per-worker answers sets Partial when at least one
// source failed to contribute and Failed names each gap, so callers can
// tell "empty because nothing matched" from "empty because the owner was
// unreachable".
type QueryResponse struct {
	ID     string       `json:"id,omitempty"`
	Series []WireSeries `json:"series,omitempty"`
	Err    string       `json:"err,omitempty"`
	// Partial marks a merged response missing at least one source's slice.
	Partial bool `json:"partial,omitempty"`
	// Failed attributes each missing slice to its source.
	Failed []SourceError `json:"failed,omitempty"`
}

// SourceError attributes one failed contribution to a merged response.
type SourceError struct {
	Source string `json:"source"`
	Err    string `json:"err"`
}

// Service answers QueryRequest envelopes published on a bus from a DB —
// the query endpoint cmd/modad exposes next to its envelope stream.
type Service struct {
	db     *DB
	cancel func()
	source string
}

// NewService returns a query service over db.
func NewService(db *DB) *Service {
	if db == nil {
		panic("tsdb: NewService with nil DB")
	}
	return &Service{db: db}
}

// Attach subscribes the service to QueryTopic on b, publishing responses on
// ResultTopic tagged with source. It returns s for chaining; Close detaches.
func (s *Service) Attach(b *bus.Bus, source string) *Service {
	if s.cancel != nil {
		panic("tsdb: Service attached twice")
	}
	s.source = source
	s.cancel = b.Subscribe(QueryTopic, func(env bus.Envelope) {
		var resp QueryResponse
		req, err := DecodeRequest(env.Payload)
		if err != nil {
			// An unreadable request must say so — answering "missing
			// metric" for a malformed payload sends the client debugging
			// the wrong field.
			resp = QueryResponse{ID: req.ID, Err: err.Error()}
		} else {
			resp = s.Answer(req)
		}
		b.Publish(bus.Envelope{Topic: ResultTopic, Time: env.Time, Source: s.source, Payload: resp})
	})
	return s
}

// Close detaches the service from its bus.
func (s *Service) Close() {
	if s.cancel != nil {
		s.cancel()
		s.cancel = nil
	}
}

// DecodeRequest tolerates both in-process payloads (a QueryRequest value)
// and wire payloads (the JSON-decoded map a TCP client's line arrives as) by
// round-tripping unknown shapes through JSON. A malformed payload returns a
// decode error instead of a zero request, so callers can distinguish "the
// request was unreadable" from "the request was missing a field".
func DecodeRequest(payload interface{}) (QueryRequest, error) {
	switch v := payload.(type) {
	case QueryRequest:
		return v, nil
	case *QueryRequest:
		return *v, nil
	default:
		data, err := json.Marshal(payload)
		if err != nil {
			return QueryRequest{}, fmt.Errorf("tsdb: decode query request: %w", err)
		}
		return DecodeRequestJSON(data)
	}
}

// DecodeRequestJSON decodes one JSON-encoded QueryRequest — the wire decode
// path shared by the bus service and the HTTP gateway's /v1/query.
func DecodeRequestJSON(data []byte) (QueryRequest, error) {
	var req QueryRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return QueryRequest{}, fmt.Errorf("tsdb: decode query request: %w", err)
	}
	return req, nil
}

// Answer executes one request against the DB.
func (s *Service) Answer(req QueryRequest) QueryResponse {
	resp := QueryResponse{ID: req.ID}
	if req.Metric == "" {
		resp.Err = "missing metric"
		return resp
	}
	from := time.Duration(req.FromMS) * time.Millisecond
	to := time.Duration(req.ToMS) * time.Millisecond
	switch {
	case req.Latest:
		for _, p := range s.db.Latest(req.Metric, req.Match) {
			resp.Series = append(resp.Series, WireSeries{
				Metric: p.Name, Labels: p.Labels,
				Samples: []WireSample{{TimeMS: p.Time.Milliseconds(), Value: p.Value}},
			})
		}
	case req.StepMS > 0:
		agg, ok := ParseAgg(req.Agg)
		if !ok {
			resp.Err = fmt.Sprintf("unknown agg %q", req.Agg)
			return resp
		}
		ss, ok := s.db.QueryRollup(req.Metric, req.Match, time.Duration(req.StepMS)*time.Millisecond, agg, from, to)
		if !ok {
			resp.Err = fmt.Sprintf("no rollup %s/%v/%s registered", req.Metric, time.Duration(req.StepMS)*time.Millisecond, req.Agg)
			return resp
		}
		resp.Series = wireSeries(ss)
	default:
		resp.Series = wireSeries(s.db.Query(req.Metric, req.Match, from, to))
	}
	return resp
}

func wireSeries(ss []telemetry.Series) []WireSeries {
	out := make([]WireSeries, 0, len(ss))
	for _, s := range ss {
		ws := WireSeries{Metric: s.Name, Labels: s.Labels, Samples: make([]WireSample, len(s.Samples))}
		for i, smp := range s.Samples {
			ws.Samples[i] = WireSample{TimeMS: smp.Time.Milliseconds(), Value: smp.Value}
		}
		out = append(out, ws)
	}
	return out
}
