package tsdb

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"autoloop/internal/telemetry"
)

// TestConcurrentAppendQueryRollup hammers the sharded store from parallel
// appenders, queriers, and a mid-flight rollup registration; run under
// -race in CI it guards the lock-striping discipline.
func TestConcurrentAppendQueryRollup(t *testing.T) {
	db := New(time.Hour)
	if err := db.AddRollup(RollupRule{Metric: "c.load", Step: 4 * time.Second, Agg: AggMean}); err != nil {
		t.Fatal(err)
	}
	const writers, samples = 8, 400
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			labels := telemetry.Labels{"node": fmt.Sprintf("w%d", w)}
			for i := 0; i < samples; i++ {
				p := telemetry.Point{Name: "c.load", Labels: labels, Time: time.Duration(i) * time.Second, Value: float64(i)}
				if err := db.Append(p); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				db.Query("c.load", telemetry.Labels{"node": "w0"}, 0, time.Hour)
				db.Latest("c.load", nil)
				db.LatestValue("c.load", telemetry.Labels{"node": "w1"})
				db.QueryRollup("c.load", nil, 4*time.Second, AggMean, 0, time.Hour)
				db.NumSeries()
				db.Appended()
			}
		}()
	}
	// A second rule lands while writers are running: backfill must not race.
	if err := db.AddRollup(RollupRule{Metric: "c.load", Step: 8 * time.Second, Agg: AggMax}); err != nil {
		t.Fatal(err)
	}
	// Writers finish first, then readers are told to stop.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done

	if got := db.Appended(); got != writers*samples {
		t.Errorf("Appended = %d, want %d", got, writers*samples)
	}
	if got := db.NumSeries(); got != writers {
		t.Errorf("NumSeries = %d, want %d", got, writers)
	}
	ss, ok := db.QueryRollup("c.load", nil, 8*time.Second, AggMax, 0, time.Hour)
	if !ok || len(ss) != writers {
		t.Errorf("late rollup has %d series (ok=%v), want %d", len(ss), ok, writers)
	}
}
