package tsdb

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"time"

	"autoloop/internal/telemetry"
	"autoloop/internal/wal"
)

// dumpDB serializes every raw series and every registered rollup of the
// database to canonical JSON, the byte-identical comparison recovery tests
// rely on.
func dumpDB(t *testing.T, db *DB) []byte {
	t.Helper()
	type dump struct {
		Appended uint64
		Series   map[string][]telemetry.Series
		Rollups  map[string][]telemetry.Series
	}
	d := dump{Appended: db.Appended(), Series: map[string][]telemetry.Series{}, Rollups: map[string][]telemetry.Series{}}
	for _, name := range db.MetricNames() {
		d.Series[name] = db.Query(name, nil, 0, 1<<62)
		for _, rule := range db.Rollups() {
			if rule.Metric != name {
				continue
			}
			if ss, ok := db.QueryRollup(name, nil, rule.Step, rule.Agg, 0, 1<<62); ok {
				d.Rollups[rule.String()] = ss
			}
		}
	}
	b, err := json.Marshal(&d)
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	return b
}

func jpt(name, node string, at time.Duration, v float64) telemetry.Point {
	return telemetry.Point{Name: name, Labels: telemetry.Labels{"node": node}, Time: at, Value: v}
}

// TestJournalReplayRoundTrip journals a mixed workload — multiple series,
// equal-timestamp overwrites, rejected appends — then replays the WAL into a
// fresh database and requires a byte-identical dump.
func TestJournalReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rule := RollupRule{Metric: "node.power.watts", Step: 10 * time.Second, Agg: AggMean, Retention: time.Hour}

	db1 := New(30 * time.Second)
	if err := db1.AddRollup(rule); err != nil {
		t.Fatalf("AddRollup: %v", err)
	}
	db1.Journal(w)
	for i := 0; i < 40; i++ {
		at := time.Duration(i) * time.Second
		if err := db1.Append(jpt("node.power.watts", "n01", at, 100+float64(i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := db1.Append(jpt("node.temp.celsius", "n01", at, 40+float64(i%7))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// An equal-timestamp overwrite mutates the tail and must be journaled.
	if err := db1.Append(jpt("node.power.watts", "n01", 39*time.Second, 555)); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	// Rejected appends must NOT reach the journal.
	if err := db1.Append(jpt("node.power.watts", "n01", 5*time.Second, 1)); err == nil {
		t.Fatal("out-of-order append accepted")
	}
	if err := db1.Append(jpt("node.power.watts", "n01", 50*time.Second, math.NaN())); err == nil {
		t.Fatal("NaN append accepted")
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	db2 := New(30 * time.Second)
	if err := db2.AddRollup(rule); err != nil {
		t.Fatalf("AddRollup: %v", err)
	}
	r, err := w.Replay(1)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if err := db2.RestoreFrom(r); err != nil {
		t.Fatalf("RestoreFrom: %v", err)
	}
	r.Close()
	w.Close()

	if a, b := dumpDB(t, db1), dumpDB(t, db2); string(a) != string(b) {
		t.Fatalf("replayed DB diverges:\n live: %s\n walr: %s", a, b)
	}
}

// TestJournalBatchPath journals through AppendBatch (one WAL record per
// touched shard) with a failing point mixed in, and checks replay parity.
func TestJournalBatchPath(t *testing.T) {
	w, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	db1 := New(0)
	db1.Journal(w)
	var batch []telemetry.Point
	for n := 0; n < 32; n++ {
		batch = append(batch, jpt("job.nodes", string(rune('a'+n)), time.Minute, float64(n)))
	}
	batch = append(batch, telemetry.Point{Name: "", Time: time.Minute, Value: 1}) // rejected
	if err := db1.AppendBatch(batch); err == nil {
		t.Fatal("batch with invalid point reported no error")
	}
	if err := db1.AppendBatch(batch[:8]); err != nil { // equal-time overwrites, all journaled
		t.Fatalf("AppendBatch: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	db2 := New(0)
	r, err := w.Replay(1)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if err := db2.RestoreFrom(r); err != nil {
		t.Fatalf("RestoreFrom: %v", err)
	}
	r.Close()
	w.Close()
	if a, b := dumpDB(t, db1), dumpDB(t, db2); string(a) != string(b) {
		t.Fatalf("batch replay diverges:\n live: %s\n walr: %s", a, b)
	}
}

// TestJournalOffIsIdentical checks journaling does not perturb semantics:
// the same workload with and without a journal produces identical dumps.
func TestJournalOffIsIdentical(t *testing.T) {
	w, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Close()
	run := func(j Journaler) *DB {
		db := New(time.Minute)
		db.AddRollup(RollupRule{Metric: "m", Step: 10 * time.Second, Agg: AggMax})
		if j != nil {
			db.Journal(j)
		}
		for i := 0; i < 200; i++ {
			db.Append(jpt("m", "x", time.Duration(i)*time.Second, float64(i)))
		}
		return db
	}
	if a, b := dumpDB(t, run(w)), dumpDB(t, run(nil)); string(a) != string(b) {
		t.Fatalf("journaling perturbed the store:\n on:  %s\n off: %s", a, b)
	}
}

// TestSnapshotRestoreRoundTrip exercises the explicit rollup-state carry:
// raw retention (30s) is far shorter than rollup retention, so the restored
// rollup history cannot be derived from the restored raw samples.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	rule := RollupRule{Metric: "node.power.watts", Step: 10 * time.Second, Agg: AggMean, Retention: time.Hour}
	db1 := New(30 * time.Second)
	if err := db1.AddRollup(rule); err != nil {
		t.Fatalf("AddRollup: %v", err)
	}
	for i := 0; i < 300; i++ {
		at := time.Duration(i) * time.Second
		if err := db1.Append(jpt("node.power.watts", "n01", at, float64(i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if i%2 == 0 {
			db1.Append(jpt("node.power.watts", "n02", at, float64(-i)))
		}
	}
	snap, err := db1.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	db2 := New(30 * time.Second)
	if err := db2.AddRollup(rule); err != nil {
		t.Fatalf("AddRollup: %v", err)
	}
	if err := db2.RestoreSnapshot(snap); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if a, b := dumpDB(t, db1), dumpDB(t, db2); string(a) != string(b) {
		t.Fatalf("snapshot restore diverges:\n live: %s\n snap: %s", a, b)
	}
	// The open bucket must have been restored too: the next append on both
	// databases lands in the same partial bucket and they stay identical.
	next := jpt("node.power.watts", "n01", 300*time.Second, 1234)
	if err := db1.Append(next); err != nil {
		t.Fatalf("Append live: %v", err)
	}
	if err := db2.Append(next); err != nil {
		t.Fatalf("Append restored: %v", err)
	}
	if a, b := dumpDB(t, db1), dumpDB(t, db2); string(a) != string(b) {
		t.Fatalf("post-restore append diverges:\n live: %s\n snap: %s", a, b)
	}
	// Deterministic snapshot bytes for a given logical state.
	again, err := db2.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot again: %v", err)
	}
	snap1b, err := db1.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot live: %v", err)
	}
	if string(again) != string(snap1b) {
		t.Fatal("snapshot bytes differ for identical logical state")
	}
}

// TestSnapshotThenTailReplay is the full recovery sequence: restore a
// snapshot covering seq S, then replay the WAL tail from S+1 — including the
// overlap case where records <= S are re-applied and must be skipped.
func TestSnapshotThenTailReplay(t *testing.T) {
	w, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rule := RollupRule{Metric: "m", Step: 5 * time.Second, Agg: AggSum}
	db1 := New(0)
	db1.AddRollup(rule)
	db1.Journal(w)
	for i := 0; i < 50; i++ {
		if err := db1.Append(jpt("m", "n01", time.Duration(i)*time.Second, float64(i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	covered := w.LastSeq()
	snap, err := db1.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	for i := 50; i < 80; i++ {
		if err := db1.Append(jpt("m", "n01", time.Duration(i)*time.Second, float64(i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	restore := func(from uint64) *DB {
		db := New(0)
		db.AddRollup(rule)
		if err := db.RestoreSnapshot(snap); err != nil {
			t.Fatalf("RestoreSnapshot: %v", err)
		}
		r, err := w.Replay(from)
		if err != nil {
			t.Fatalf("Replay: %v", err)
		}
		defer r.Close()
		if err := db.RestoreFrom(r); err != nil {
			t.Fatalf("RestoreFrom: %v", err)
		}
		return db
	}
	want := dumpDB(t, db1)
	if got := dumpDB(t, restore(covered+1)); string(got) != string(want) {
		t.Fatalf("tail replay diverges:\n live: %s\n rec:  %s", want, got)
	}
	// Replaying the WHOLE log over the snapshot must also converge: records
	// the snapshot covers are skipped, except the counter-free tail
	// overwrite, so only sample data is compared via queries.
	full := restore(1)
	if got, wantQ := full.Query("m", nil, 0, 1<<62), db1.Query("m", nil, 0, 1<<62); !reflect.DeepEqual(got, wantQ) {
		t.Fatalf("overlap replay diverges: %v vs %v", got, wantQ)
	}
	w.Close()
}

// TestJournaledAppendAllocs gates the journaled append hot path: attaching a
// WAL must keep steady-state appends allocation-free.
func TestJournaledAppendAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gate skipped under the race detector")
	}
	w, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Close()
	db := New(time.Hour)
	db.Journal(w)
	labels := telemetry.Labels{"node": "n01", "rack": "r1"}
	at := time.Duration(0)
	appendOne := func() {
		at += time.Second
		if err := db.Append(telemetry.Point{Name: "node.power.watts", Labels: labels, Time: at, Value: 42}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	for i := 0; i < 4096; i++ {
		appendOne()
	}
	if allocs := testing.AllocsPerRun(1000, appendOne); allocs != 0 {
		t.Fatalf("journaled append allocates %.1f/op, want 0", allocs)
	}
}
