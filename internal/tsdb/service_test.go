package tsdb

import (
	"strings"
	"testing"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/telemetry"
)

func serviceFixture(t *testing.T) (*DB, *bus.Bus, *[]QueryResponse) {
	t.Helper()
	db := New(0)
	if err := db.AddRollup(RollupRule{Metric: "cpu", Step: 10 * time.Second, Agg: AggMean}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		for _, node := range []string{"n1", "n2"} {
			if err := db.Append(pt("cpu", telemetry.Labels{"node": node}, time.Duration(i)*time.Second, float64(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	b := bus.New()
	svc := NewService(db).Attach(b, "test")
	t.Cleanup(svc.Close)
	var got []QueryResponse
	b.Subscribe(ResultTopic, func(env bus.Envelope) {
		got = append(got, env.Payload.(QueryResponse))
	})
	return db, b, &got
}

func ask(b *bus.Bus, req QueryRequest) {
	b.Publish(bus.Envelope{Topic: QueryTopic, Time: time.Second, Payload: req})
}

func TestServiceRangeQuery(t *testing.T) {
	_, b, got := serviceFixture(t)
	ask(b, QueryRequest{ID: "q1", Metric: "cpu", Match: telemetry.Labels{"node": "n1"}, FromMS: 5000, ToMS: 8000})
	if len(*got) != 1 {
		t.Fatalf("got %d responses, want 1", len(*got))
	}
	resp := (*got)[0]
	if resp.ID != "q1" || resp.Err != "" {
		t.Fatalf("resp = %+v", resp)
	}
	if len(resp.Series) != 1 || len(resp.Series[0].Samples) != 4 {
		t.Fatalf("series = %+v", resp.Series)
	}
	if resp.Series[0].Samples[0].TimeMS != 5000 {
		t.Errorf("first sample at %d ms, want 5000", resp.Series[0].Samples[0].TimeMS)
	}
}

func TestServiceLatestAndRollup(t *testing.T) {
	_, b, got := serviceFixture(t)
	ask(b, QueryRequest{ID: "latest", Metric: "cpu", Latest: true})
	ask(b, QueryRequest{ID: "roll", Metric: "cpu", StepMS: 10000, Agg: "mean", ToMS: 3600000})
	if len(*got) != 2 {
		t.Fatalf("got %d responses, want 2", len(*got))
	}
	latest := (*got)[0]
	if len(latest.Series) != 2 || latest.Series[0].Samples[0].Value != 29 {
		t.Fatalf("latest = %+v", latest)
	}
	roll := (*got)[1]
	if roll.Err != "" || len(roll.Series) != 2 {
		t.Fatalf("rollup = %+v", roll)
	}
	// Buckets 0..9 and 10..19 are flushed, 20..29 is the open partial.
	if n := len(roll.Series[0].Samples); n != 3 {
		t.Fatalf("rollup buckets = %d, want 3", n)
	}
	if v := roll.Series[0].Samples[0].Value; v != 4.5 {
		t.Errorf("bucket 0 mean = %v, want 4.5", v)
	}
}

func TestServiceErrors(t *testing.T) {
	_, b, got := serviceFixture(t)
	ask(b, QueryRequest{ID: "e1"})                                             // missing metric
	ask(b, QueryRequest{ID: "e2", Metric: "cpu", StepMS: 10000, Agg: "bogus"}) // bad agg
	ask(b, QueryRequest{ID: "e3", Metric: "cpu", StepMS: 99000, Agg: "mean"})  // no such rule
	ask(b, QueryRequest{ID: "e4", Metric: "nope", FromMS: 0, ToMS: 1000})      // unknown metric: empty, no error
	for i, wantErr := range []bool{true, true, true, false} {
		resp := (*got)[i]
		if (resp.Err != "") != wantErr {
			t.Errorf("resp %d: err = %q, wantErr=%v", i, resp.Err, wantErr)
		}
	}
}

// TestServiceWireDecode feeds the request the way a TCP client's line
// arrives: as generic JSON-decoded payload.
func TestServiceWireDecode(t *testing.T) {
	_, b, got := serviceFixture(t)
	line := []byte(`{"topic":"tsdb.query","time":1000000000,"payload":{"id":"w1","metric":"cpu","match":{"node":"n2"},"latest":true}}` + "\n")
	env, err := bus.Decode(line)
	if err != nil {
		t.Fatal(err)
	}
	b.Publish(env)
	if len(*got) != 1 {
		t.Fatalf("got %d responses", len(*got))
	}
	resp := (*got)[0]
	if resp.ID != "w1" || len(resp.Series) != 1 || resp.Series[0].Labels["node"] != "n2" {
		t.Fatalf("wire resp = %+v", resp)
	}
}

// TestServiceMalformedWirePayload: an unreadable payload must answer with a
// decode error, not the misleading "missing metric".
func TestServiceMalformedWirePayload(t *testing.T) {
	_, b, got := serviceFixture(t)
	line := []byte(`{"topic":"tsdb.query","time":1000000000,"payload":{"metric":123,"latest":"yes"}}` + "\n")
	env, err := bus.Decode(line)
	if err != nil {
		t.Fatal(err)
	}
	b.Publish(env)
	if len(*got) != 1 {
		t.Fatalf("got %d responses", len(*got))
	}
	resp := (*got)[0]
	if resp.Err == "" || !strings.Contains(resp.Err, "decode query request") {
		t.Fatalf("Err = %q, want a decode error", resp.Err)
	}
	if strings.Contains(resp.Err, "missing metric") {
		t.Fatalf("Err = %q still reports the misleading missing-metric text", resp.Err)
	}
}

// TestDecodeRequestPassthrough pins the in-process fast paths.
func TestDecodeRequestPassthrough(t *testing.T) {
	want := QueryRequest{ID: "x", Metric: "cpu"}
	if got, err := DecodeRequest(want); err != nil || got.ID != "x" || got.Metric != "cpu" {
		t.Fatalf("value passthrough = %+v, %v", got, err)
	}
	if got, err := DecodeRequest(&want); err != nil || got.ID != "x" || got.Metric != "cpu" {
		t.Fatalf("pointer passthrough = %+v, %v", got, err)
	}
	if _, err := DecodeRequestJSON([]byte(`{"metric":`)); err == nil {
		t.Fatal("truncated JSON decoded without error")
	}
}
