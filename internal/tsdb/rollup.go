package tsdb

import (
	"fmt"
	"time"

	"autoloop/internal/telemetry"
)

// RollupRule declares one continuous rollup: every series of Metric is
// downsampled online into fixed Step buckets reduced with Agg, maintained
// incrementally at append time instead of recomputed per query. Rollup
// samples have their own Retention (0 keeps them forever), so coarse history
// stays queryable long after raw samples have been expired — the "store
// aggregates, drop raw" tiering that production MODA stacks (DCDB, Examon)
// use to survive high-cardinality telemetry.
type RollupRule struct {
	Metric string
	Step   time.Duration
	Agg    Agg
	// Retention bounds how long flushed rollup samples are kept; 0 keeps
	// them forever. It is independent of the database's raw retention.
	Retention time.Duration
}

// String implements fmt.Stringer ("node.temp.celsius/5m0s/mean").
func (r RollupRule) String() string {
	return fmt.Sprintf("%s/%v/%v", r.Metric, r.Step, r.Agg)
}

// same reports whether two rules target the same (metric, step, agg) rollup.
func (r RollupRule) same(o RollupRule) bool {
	return r.Metric == o.Metric && r.Step == o.Step && r.Agg == o.Agg
}

// seriesRollup is the per-series state of one rule: the flushed buckets plus
// the open bucket's raw values. Buckets are flushed when an append crosses a
// step boundary, stamped with the bucket end (never claiming knowledge of
// the future), exactly mirroring Downsample's offline semantics.
type seriesRollup struct {
	rule    RollupRule
	bucket  int64     // open bucket index, meaningful when len(values) > 0
	values  []float64 // raw values of the open bucket
	samples []telemetry.Sample
	head    int // first live flushed sample (rollup retention)
}

func newSeriesRollup(rule RollupRule) *seriesRollup { return &seriesRollup{rule: rule} }

// live returns the retained flushed samples.
func (sr *seriesRollup) live() []telemetry.Sample { return sr.samples[sr.head:] }

// observe folds one raw sample into the rollup. overwrite marks a
// tail-timestamp overwrite, which replaces the open bucket's newest value
// instead of adding one.
func (sr *seriesRollup) observe(t time.Duration, v float64, overwrite bool) {
	idx := int64(t / sr.rule.Step)
	if len(sr.values) > 0 {
		if overwrite && idx == sr.bucket {
			sr.values[len(sr.values)-1] = v
			return
		}
		if idx != sr.bucket {
			sr.flush()
		}
	}
	sr.bucket = idx
	sr.values = append(sr.values, v)
}

// flush closes the open bucket into a flushed sample and applies the rule's
// retention with the same O(1)-amortized head scheme raw series use.
func (sr *seriesRollup) flush() {
	end := time.Duration(sr.bucket+1) * sr.rule.Step
	sr.samples = append(sr.samples, telemetry.Sample{Time: end, Value: sr.rule.Agg.apply(sr.values)})
	sr.values = sr.values[:0]
	if sr.rule.Retention > 0 {
		sr.truncateBefore(end - sr.rule.Retention)
	}
}

func (sr *seriesRollup) truncateBefore(cutoff time.Duration) {
	live := sr.live()
	i := 0
	for i < len(live) && live[i].Time < cutoff {
		i++
	}
	if i == 0 {
		return
	}
	sr.head += i
	if sr.head > len(sr.samples)-sr.head {
		n := copy(sr.samples, sr.samples[sr.head:])
		sr.samples = sr.samples[:n]
		sr.head = 0
	}
}

// window returns the rollup samples in [from, to], including the open
// bucket's partial aggregate when its end falls inside the range — the same
// convention Downsample uses for a trailing partial bucket. The result is
// freshly allocated.
func (sr *seriesRollup) window(from, to time.Duration) []telemetry.Sample {
	live := sr.live()
	lo, hi := rangeBounds(live, from, to)
	var out []telemetry.Sample
	if lo < hi {
		out = make([]telemetry.Sample, hi-lo, hi-lo+1)
		copy(out, live[lo:hi])
	}
	if len(sr.values) > 0 {
		if end := time.Duration(sr.bucket+1) * sr.rule.Step; end >= from && end <= to {
			out = append(out, telemetry.Sample{Time: end, Value: sr.rule.Agg.apply(sr.values)})
		}
	}
	return out
}

// AddRollup registers a continuous rollup rule. Series of the metric that
// already hold raw samples are backfilled by replaying their retained
// window, and series created later attach the rule at birth, so callers may
// register rules before or after ingestion starts. Registering a rule with
// the same (metric, step, agg) twice is an error.
func (db *DB) AddRollup(rule RollupRule) error {
	if rule.Metric == "" {
		return fmt.Errorf("tsdb: rollup rule with empty metric")
	}
	if rule.Step <= 0 {
		return fmt.Errorf("tsdb: rollup rule for %s with non-positive step %v", rule.Metric, rule.Step)
	}
	db.rollupMu.Lock()
	old := db.loadRules()
	for _, have := range old {
		if have.same(rule) {
			db.rollupMu.Unlock()
			return fmt.Errorf("tsdb: duplicate rollup rule %v", rule)
		}
	}
	rules := make([]RollupRule, len(old), len(old)+1)
	copy(rules, old)
	rules = append(rules, rule)
	db.rules.Store(&rules)
	db.rollupMu.Unlock()

	// Backfill outside the registration lock: appenders racing this loop
	// either created their series after rules.Store (rule attached at birth,
	// skipped here) or appended raw samples that the replay below includes.
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.Lock()
		for _, s := range sh.byName[rule.Metric] {
			if s.hasRollup(rule) {
				continue
			}
			sr := newSeriesRollup(rule)
			for _, smp := range s.live() {
				sr.observe(smp.Time, smp.Value, false)
			}
			s.rollups = append(s.rollups, sr)
		}
		sh.mu.Unlock()
	}
	return nil
}

// hasRollup reports whether the series already tracks rule. Callers must
// hold the shard lock.
func (s *memSeries) hasRollup(rule RollupRule) bool {
	for _, sr := range s.rollups {
		if sr.rule.same(rule) {
			return true
		}
	}
	return false
}

// Rollups returns the registered rules in registration order.
func (db *DB) Rollups() []RollupRule {
	rules := db.loadRules()
	out := make([]RollupRule, len(rules))
	copy(out, rules)
	return out
}

// QueryRollup returns, for every series of metric matching the matcher, the
// continuously maintained rollup samples of the registered (metric, step,
// agg) rule restricted to [from, to]. Series are sorted by label key, and
// ok is false when no such rule is registered. Because rollups have their
// own retention, the window may reach far beyond the raw samples' lifetime.
func (db *DB) QueryRollup(metric string, matcher telemetry.Labels, step time.Duration, agg Agg, from, to time.Duration) (out []telemetry.Series, ok bool) {
	rule := RollupRule{Metric: metric, Step: step, Agg: agg}
	found := false
	for _, have := range db.loadRules() {
		if have.same(rule) {
			found = true
			break
		}
	}
	if !found {
		return nil, false
	}
	out = db.collectSeries(metric, matcher, func(s *memSeries) ([]telemetry.Sample, bool) {
		for _, sr := range s.rollups {
			if sr.rule.same(rule) {
				samples := sr.window(from, to)
				return samples, len(samples) > 0
			}
		}
		return nil, false
	})
	return out, true
}
