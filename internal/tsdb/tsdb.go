// Package tsdb implements an in-memory time-series database for operational
// telemetry: append-only labeled series with range and instant queries,
// downsampling, aggregation, retention, and continuous rollups.
//
// It is the storage substrate behind the Monitor phase and the raw-data part
// of the Knowledge component. The query surface is intentionally close to
// what a production MODA stack (DCDB, Prometheus, Examon) exposes, so loop
// components written against it would port to a real deployment by swapping
// this package behind the same calls.
//
// Internally the store is sharded: series are distributed over lock stripes
// by an identity hash, each shard carries an inverted label index
// (key=value -> posting list) so matcher queries intersect postings instead
// of scanning every series of a metric, and range bounds inside a series are
// binary-searched. Registered RollupRules are maintained incrementally at
// append time and queried with QueryRollup, staying available beyond the raw
// samples' retention.
package tsdb

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"autoloop/internal/telemetry"
	"autoloop/internal/wal"
)

// DB is an in-memory sharded time-series database. It is safe for concurrent
// use; under the simulator all access is single-threaded, but cmd/modad
// serves network queries from multiple goroutines and fleet benchmarks
// append from parallel workers.
type DB struct {
	shards    [numShards]shard
	retention time.Duration // 0 means keep everything

	// rules is the registered rollup-rule set, swapped atomically so the
	// append hot path reads it with a single pointer load. rollupMu
	// serializes writers (AddRollup).
	rules    atomic.Pointer[[]RollupRule]
	rollupMu sync.Mutex

	// nameMu guards names, the set of metric names ever appended; series
	// creation is rare, so a single small mutex does not stripe.
	nameMu sync.Mutex
	names  map[string]struct{}

	// journal, when non-nil, receives every accepted append as a WAL record
	// emitted under the owning shard's lock (see journal.go). Set via
	// Journal before ingestion starts; read on the hot path unsynchronized.
	journal Journaler
}

// New returns an empty database that retains samples for the given duration;
// retention <= 0 keeps all samples forever.
func New(retention time.Duration) *DB {
	db := &DB{retention: retention, names: make(map[string]struct{})}
	for i := range db.shards {
		db.shards[i].byName = make(map[string]map[string]*memSeries)
		db.shards[i].postings = make(map[labelPair][]*memSeries)
		db.shards[i].byHash = make(map[uint64][]*memSeries)
	}
	return db
}

func (db *DB) loadRules() []RollupRule {
	if p := db.rules.Load(); p != nil {
		return *p
	}
	return nil
}

// noteName records a metric name on first series creation.
func (db *DB) noteName(name string) {
	db.nameMu.Lock()
	db.names[name] = struct{}{}
	db.nameMu.Unlock()
}

// Append inserts a point. Out-of-order points (earlier than the series tail)
// are rejected with an error; equal timestamps overwrite the tail value so
// that idempotent re-collection is harmless.
func (db *DB) Append(p telemetry.Point) error {
	h := identityOf(&p)
	sh := &db.shards[shardIndex(h)]
	sh.mu.Lock()
	err := db.appendLocked(sh, &p, h)
	if err == nil && db.journal != nil {
		// Journal while still holding the shard lock so the per-series
		// record order in the log equals the apply order.
		err = db.journalLocked(&p)
	}
	sh.mu.Unlock()
	return err
}

// appendLocked is one point's append under the owning shard's write lock.
func (db *DB) appendLocked(sh *shard, p *telemetry.Point, h uint64) error {
	if p.Name == "" {
		return fmt.Errorf("tsdb: append with empty metric name")
	}
	if math.IsNaN(p.Value) {
		return fmt.Errorf("tsdb: append NaN for %s%s", p.Name, p.Labels)
	}
	s := sh.lookup(h, p)
	if s == nil {
		// Rules are loaded under the shard lock (an atomic pointer read):
		// see shard.create for the AddRollup race reasoning.
		s = sh.create(p, h, db.loadRules(), db.noteName)
	}
	if n := len(s.samples); n > 0 {
		last := s.samples[n-1].Time
		if p.Time < last {
			return fmt.Errorf("tsdb: out-of-order append for %s%s: %v < %v", p.Name, p.Labels, p.Time, last)
		}
		if p.Time == last {
			s.samples[n-1].Value = p.Value
			for _, sr := range s.rollups {
				sr.observe(p.Time, p.Value, true)
			}
			return nil
		}
	}
	s.samples = append(s.samples, telemetry.Sample{Time: p.Time, Value: p.Value})
	for _, sr := range s.rollups {
		sr.observe(p.Time, p.Value, false)
	}
	sh.appended++ // under sh.mu, so no shared cache line bounces per append
	if db.retention > 0 {
		s.truncateBefore(p.Time - db.retention)
	}
	return nil
}

// batchBuffers is the pooled scratch AppendBatch groups a batch with: the
// per-point identity hashes and the counting-sorted point order.
type batchBuffers struct {
	hs    []uint64
	order []int32
}

var batchScratch = sync.Pool{New: func() interface{} { return new(batchBuffers) }}

// AppendBatch inserts every point in one grouped pass: a counting sort by
// shard visits each point exactly once, then each touched shard is locked
// exactly once and its points appended in original batch order. The
// earliest-indexed error is returned (but all points are attempted). It
// implements telemetry.Sink.
func (db *DB) AppendBatch(pts []telemetry.Point) error {
	if len(pts) == 0 {
		return nil
	}
	scratch := batchScratch.Get().(*batchBuffers)
	if cap(scratch.hs) < len(pts) {
		scratch.hs = make([]uint64, len(pts))
		scratch.order = make([]int32, len(pts))
	}
	hs := scratch.hs[:len(pts)]
	order := scratch.order[:len(pts)]
	var counts [numShards]int32
	for i := range pts {
		hs[i] = identityOf(&pts[i])
		counts[shardIndex(hs[i])]++
	}
	// counts -> start offsets; filling order in point order keeps each
	// shard's slice sorted by original batch index.
	var offsets [numShards]int32
	var sum int32
	for si := range counts {
		offsets[si] = sum
		sum += counts[si]
	}
	fill := offsets
	for i := range pts {
		si := shardIndex(hs[i])
		order[fill[si]] = int32(i)
		fill[si]++
	}
	var first error
	firstAt := int32(len(pts))
	var jerr error
	var eb *encBuf
	if db.journal != nil {
		eb = encScratch.Get().(*encBuf)
	}
	for si := 0; si < numShards; si++ {
		if counts[si] == 0 {
			continue
		}
		sh := &db.shards[si]
		sh.mu.Lock()
		if eb != nil {
			eb.b = eb.b[:0]
		}
		for _, i := range order[offsets[si] : offsets[si]+counts[si]] {
			if err := db.appendLocked(sh, &pts[i], hs[i]); err != nil {
				if i < firstAt {
					first, firstAt = err, i
				}
			} else if eb != nil {
				eb.b = appendPointEnc(eb.b, &pts[i])
			}
		}
		// One WAL record per touched shard, emitted before the shard
		// unlocks so per-series log order equals apply order.
		if eb != nil && len(eb.b) > 0 {
			if _, err := db.journal.Append(wal.KindTSDBAppend, eb.b); err != nil && jerr == nil {
				jerr = err
			}
		}
		sh.mu.Unlock()
	}
	if eb != nil {
		encScratch.Put(eb)
	}
	batchScratch.Put(scratch)
	if first == nil {
		first = jerr
	}
	return first
}

// Appended reports the total number of samples stored since creation
// (overwrites of an existing tail timestamp do not count).
func (db *DB) Appended() uint64 {
	var n uint64
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		n += sh.appended
		sh.mu.RUnlock()
	}
	return n
}

// NumSeries reports the current series cardinality.
func (db *DB) NumSeries() int {
	n := 0
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for _, fams := range sh.byName {
			n += len(fams)
		}
		sh.mu.RUnlock()
	}
	return n
}

// MetricNames returns all metric names in sorted order.
func (db *DB) MetricNames() []string {
	db.nameMu.Lock()
	names := make([]string, 0, len(db.names))
	for n := range db.names {
		names = append(names, n)
	}
	db.nameMu.Unlock()
	sort.Strings(names)
	return names
}

// forEachMatch invokes visit under each shard's read lock for every series
// matching (name, matcher), resolving candidates through the inverted label
// index. Visit order is unspecified (shard then map order); callers that
// return data must sort by series label key for determinism.
func (db *DB) forEachMatch(name string, matcher telemetry.Labels, visit func(*memSeries)) {
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		fams, list, ok := sh.candidates(name, matcher)
		if ok {
			if fams != nil {
				for _, s := range fams {
					if s.labels.Matches(matcher) {
						visit(s)
					}
				}
			} else {
				for _, s := range list {
					if s.name == name && s.labels.Matches(matcher) {
						visit(s)
					}
				}
			}
		}
		sh.mu.RUnlock()
	}
}

// collectSeries visits every series matching (name, matcher) under its
// shard's read lock. fn returns the samples to keep (copied out under the
// lock) or keep=false to drop the series. Results are sorted by label key,
// so every query path is deterministic regardless of shard and map
// iteration order.
func (db *DB) collectSeries(name string, matcher telemetry.Labels, fn func(*memSeries) (samples []telemetry.Sample, keep bool)) []telemetry.Series {
	type item struct {
		key string
		s   telemetry.Series
	}
	var items []item
	db.forEachMatch(name, matcher, func(s *memSeries) {
		if samples, keep := fn(s); keep {
			items = append(items, item{s.key, telemetry.Series{Name: name, Labels: s.labels.Clone(), Samples: samples}})
		}
	})
	if len(items) == 0 {
		return nil
	}
	sort.Slice(items, func(a, b int) bool { return items[a].key < items[b].key })
	out := make([]telemetry.Series, len(items))
	for i := range items {
		out[i] = items[i].s
	}
	return out
}

// Query returns, for the metric name, every series whose labels match the
// matcher, restricted to samples in [from, to]. Label matchers resolve
// through the inverted index (postings intersection) instead of scanning
// every series of the metric, and the time range is binary-searched inside
// each series. Series are returned sorted by label key so that results are
// deterministic. The returned series share no storage with the database.
func (db *DB) Query(name string, matcher telemetry.Labels, from, to time.Duration) []telemetry.Series {
	return db.collectSeries(name, matcher, func(s *memSeries) ([]telemetry.Sample, bool) {
		live := s.live()
		lo, hi := rangeBounds(live, from, to)
		if lo >= hi {
			return nil, false
		}
		cp := make([]telemetry.Sample, hi-lo)
		copy(cp, live[lo:hi])
		return cp, true
	})
}

// QueryOne is Query for callers expecting exactly one matching series; it
// reports false when zero or multiple series match.
func (db *DB) QueryOne(name string, matcher telemetry.Labels, from, to time.Duration) (telemetry.Series, bool) {
	ss := db.Query(name, matcher, from, to)
	if len(ss) != 1 {
		return telemetry.Series{}, false
	}
	return ss[0], true
}

// Latest returns the most recent sample of every matching series, reading
// each series' tail directly — no sample window is copied or scanned.
func (db *DB) Latest(name string, matcher telemetry.Labels) []telemetry.Point {
	type item struct {
		key string
		p   telemetry.Point
	}
	var items []item
	db.forEachMatch(name, matcher, func(s *memSeries) {
		live := s.live()
		if len(live) == 0 {
			return
		}
		last := live[len(live)-1]
		items = append(items, item{s.key, telemetry.Point{Name: name, Labels: s.labels.Clone(), Time: last.Time, Value: last.Value}})
	})
	if len(items) == 0 {
		return nil
	}
	sort.Slice(items, func(a, b int) bool { return items[a].key < items[b].key })
	out := make([]telemetry.Point, len(items))
	for i := range items {
		out[i] = items[i].p
	}
	return out
}

// LatestValue returns the newest value of the last matching series in label
// key order (the single series' value when exactly one matches), or
// ok=false when none matches. Unlike Latest it allocates nothing: the
// matching series' tails are read in place.
func (db *DB) LatestValue(name string, matcher telemetry.Labels) (float64, bool) {
	var bestKey string
	var val float64
	found := false
	db.forEachMatch(name, matcher, func(s *memSeries) {
		live := s.live()
		if len(live) == 0 {
			return
		}
		if !found || s.key > bestKey {
			bestKey, val, found = s.key, live[len(live)-1].Value, true
		}
	})
	return val, found
}
